package ropsim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"ropsim/internal/stats"
)

// Artifact collects the per-run metric snapshots of an evaluation into
// one machine-readable document: each completed simulation records its
// registry snapshot under its run label ("fig1/libquantum/base",
// "alone/lbm", ...). Serialization is deterministic — runs sorted by
// label, stable key order, schema-versioned — so two evaluations of the
// same configuration and seed produce byte-identical artifacts at any
// -jobs count (golden tests and cross-PR diffs rely on this).
//
// Record is safe for concurrent use: parallel runner workers feed one
// shared artifact. Reads (WriteJSON, Snapshots, Len) must not race with
// in-flight runs; the harness writes the artifact after every batch has
// completed.
type Artifact struct {
	mu   sync.Mutex
	runs map[string]stats.Snapshot
}

// NewArtifact returns an empty artifact collector.
func NewArtifact() *Artifact {
	return &Artifact{runs: map[string]stats.Snapshot{}}
}

// Record stores one run's snapshot under its label. Recording the same
// label again overwrites the previous snapshot (experiment labels are
// unique within an evaluation; a repeat is a re-run of the same
// configuration).
func (a *Artifact) Record(label string, s stats.Snapshot) {
	a.mu.Lock()
	a.runs[label] = s
	a.mu.Unlock()
}

// Len reports the number of recorded runs.
func (a *Artifact) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.runs)
}

// RunStats is one recorded run inside a serialized artifact.
type RunStats struct {
	// Label identifies the run (experiment id / benchmark / variant).
	Label string `json:"label"`
	// Metrics is the run's registry snapshot.
	Metrics stats.Snapshot `json:"metrics"`
}

// Snapshots returns the recorded runs sorted by label.
func (a *Artifact) Snapshots() []RunStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	labels := make([]string, 0, len(a.runs))
	for l := range a.runs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]RunStats, len(labels))
	for i, l := range labels {
		out[i] = RunStats{Label: l, Metrics: a.runs[l]}
	}
	return out
}

// artifactJSON is the serialized artifact layout (see docs/METRICS.md).
type artifactJSON struct {
	// Schema is the stats.SchemaVersion the artifact was written under.
	Schema int `json:"schema"`
	// Runs lists every recorded run, sorted by label.
	Runs []RunStats `json:"runs"`
}

// WriteJSON serializes the artifact as indented JSON with runs sorted
// by label. Output is byte-deterministic for deterministic runs.
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(artifactJSON{Schema: stats.SchemaVersion, Runs: a.Snapshots()})
}

// WriteCSV serializes the artifact as "label,path,kind,field,value"
// rows (with a header), one row per metric field per run, in label then
// path order.
func (a *Artifact) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "label,path,kind,field,value\n"); err != nil {
		return err
	}
	for _, run := range a.Snapshots() {
		var sb strings.Builder
		if err := run.Metrics.WriteCSV(&sb); err != nil {
			return err
		}
		rows := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
		label := run.Label
		if strings.ContainsAny(label, ",\"") {
			label = `"` + strings.ReplaceAll(label, `"`, `""`) + `"`
		}
		for _, row := range rows[1:] { // skip the per-snapshot header
			if _, err := io.WriteString(w, label+","+row+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFile writes the artifact to path, choosing the format from the
// extension: ".csv" selects CSV, anything else JSON.
func (a *Artifact) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("stats artifact: %w", err)
	}
	if filepath.Ext(path) == ".csv" {
		err = a.WriteCSV(f)
	} else {
		err = a.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("stats artifact %s: %w", path, err)
	}
	return nil
}
