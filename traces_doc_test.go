package ropsim

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ropsim/internal/workload"
)

// traceExports parses the non-test files of internal/trace and returns
// every exported package-level symbol name plus every exported method
// as "Type.Method", so the docs gate tracks the package surface
// automatically instead of via a hand-kept list.
func traceExports(t *testing.T) []string {
	t.Helper()
	dir := filepath.Join("internal", "trace")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv == nil || len(d.Recv.List) == 0 {
					names = append(names, d.Name.Name)
					continue
				}
				typ := d.Recv.List[0].Type
				if st, ok := typ.(*ast.StarExpr); ok {
					typ = st.X
				}
				if id, ok := typ.(*ast.Ident); ok && id.IsExported() {
					names = append(names, id.Name+"."+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							names = append(names, s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() {
								names = append(names, n.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(names) < 20 {
		t.Fatalf("found only %d exported internal/trace symbols — parser out of sync?", len(names))
	}
	return names
}

// roptraceFlags extracts every flag name defined in cmd/roptrace's
// source, so new tool flags cannot ship undocumented.
func roptraceFlags(t *testing.T) []string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("cmd", "roptrace", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`fs\.(?:String|Int|Int64|Bool|Duration)\("([^"]+)"`)
	seen := map[string]bool{}
	var flags []string
	for _, m := range re.FindAllStringSubmatch(string(src), -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			flags = append(flags, m[1])
		}
	}
	if len(flags) < 5 {
		t.Fatalf("found only %d roptrace flags — regexp out of sync?", len(flags))
	}
	return flags
}

// TestTracesDocComplete enforces the trace-format documentation
// contract: docs/TRACES.md must document every exported internal/trace
// symbol (package-level names and Type.Method pairs, extracted by
// go/ast), every cmd/roptrace flag, the new ropsim -capture-trace
// flag, the trace: workload-source syntax, the roptrace subcommands,
// every committed zoo trace, and the replay/fit metric names.
func TestTracesDocComplete(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("docs", "TRACES.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	for _, sym := range traceExports(t) {
		if !strings.Contains(text, sym) {
			t.Errorf("docs/TRACES.md does not document internal/trace symbol %s", sym)
		}
	}
	for _, fl := range roptraceFlags(t) {
		if !strings.Contains(text, "-"+fl) {
			t.Errorf("docs/TRACES.md does not document roptrace flag -%s", fl)
		}
	}
	for _, must := range []string{
		"-capture-trace", "trace:",
		"convert", "inspect", "validate", "clone", "zoo",
		"records_replayed", "folded_lines", "fit_error",
		"trace_replay_reqs_per_sec",
		"CaptureTraces", "CoreTraces",
	} {
		if !strings.Contains(text, must) {
			t.Errorf("docs/TRACES.md does not mention %q", must)
		}
	}
	for _, name := range workload.ZooNames() {
		if !strings.Contains(text, "testdata/traces/"+name+".ropt") {
			t.Errorf("docs/TRACES.md zoo catalog is missing %s", name)
		}
	}
}
