package ropsim

import (
	"testing"

	"ropsim/internal/memctrl"
)

// TestCrossCheckWake drives full simulations in every refresh mode with
// memctrl.CrossCheckWake enabled: the controller ticks at the original
// per-cycle polling cadence and panics if the exact wake computation
// (memctrl's nextWake) would have slept past any cycle where a tick
// issued a command or advanced controller state. This pins the wake
// discipline's exactness independently of the golden-table tests: those
// catch a divergence, this localizes it to the first missed cycle.
func TestCrossCheckWake(t *testing.T) {
	memctrl.CrossCheckWake = true
	defer func() { memctrl.CrossCheckWake = false }()
	o := QuickOptions()
	o.Jobs = 1
	modes := []Mode{
		ModeBaseline, ModeNoRefresh, ModeROP, ModeElastic, ModePausing,
		ModeBankRefresh, ModeROPBank, ModeSubarrayRefresh,
	}
	benches := []string{"libquantum", "lbm"}
	if testing.Short() {
		benches = benches[:1]
	}
	for _, b := range benches {
		for _, mode := range modes {
			for _, closed := range []bool{false, true} {
				cfg := o.single(b, mode)
				cfg.ClosedPage = closed
				if _, err := Run(cfg); err != nil {
					t.Fatalf("%s/%v/closed=%v: %v", b, mode, closed, err)
				}
			}
		}
	}
}
