# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

# Latest committed baseline, used as the regression reference.
REF ?= $(lastword $(sort $(wildcard BENCH_*.json)))

.PHONY: test race lint lint-fix-check bench bench-gate microbench quick distributed chaos traces

# test builds everything and runs the full suite (tier-1 gate).
test:
	$(GO) build ./...
	$(GO) test ./...

# race runs the suite under the race detector at reduced scale.
race:
	$(GO) test -race -short ./internal/... .

# LINT_FACTCACHE holds serialized cross-package fact summaries so
# unchanged packages skip fact recomputation (CI restores it with
# actions/cache).
LINT_FACTCACHE := .lintcache/facts

# lint runs the simlint suite (docs/LINT.md): determinism, unit-safety,
# event-queue discipline and metrics-registration analyzers.
lint:
	$(GO) run ./cmd/simlint -time -factcache $(LINT_FACTCACHE) ./...

# lint-fix-check is lint plus stale-escape-hatch detection: justified
# //simlint: annotations that no longer suppress anything fail the run.
lint-fix-check:
	$(GO) run ./cmd/simlint -unused -time -factcache $(LINT_FACTCACHE) ./...

# bench measures the hot-path baseline and emits BENCH_<today>.json
# (docs/PERFORMANCE.md documents the schema and how to read it).
bench:
	$(GO) run ./cmd/benchgate

# bench-gate re-measures and fails if the quick Fig1 campaign regressed
# more than 15% against the committed reference ($(REF)).
bench-gate:
	$(GO) run ./cmd/benchgate -out BENCH_ci.json -ref $(REF)

# microbench runs the per-subsystem benchmarks with benchstat-friendly
# output (pipe two runs into benchstat to compare).
microbench:
	$(GO) test -run '^$$' -bench . -benchmem -count 5 ./internal/event ./internal/memctrl

# quick regenerates the quick-scale Fig1/Table1 artifacts with the
# protocol sanitizer enabled.
quick:
	$(GO) run ./cmd/ropexp -exp fig1,tab1 -quick -check -stats-out quick-stats.json

# distributed runs the distributed-campaign byte-identity gate:
# coordinator + 2 workers, one SIGKILLed mid-run, artifact compared
# against a single-process golden (docs/ROBUSTNESS.md).
distributed:
	sh scripts/distributed_ci.sh

# traces runs the trace-format gate: every committed zoo trace must
# validate, round-trip .ropt -> text -> .ropt byte-identically, and a
# checked replay must match the committed golden (docs/TRACES.md).
traces:
	sh scripts/traces_ci.sh

# chaos runs the heavier in-tree chaos test through the real binaries
# (3 workers: one SIGKILLed, one SIGSTOP-wedged, plus a replacement).
chaos:
	$(GO) test -run TestFaultDistributedWorkerLossByteIdentical -v -count=1 .
