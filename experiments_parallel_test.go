package ropsim

import (
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ropsim/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// equivOptions is the scale of the serial-vs-parallel equivalence runs:
// QuickOptions run lengths, with the benchmark set trimmed in -short
// mode so the race-detector CI lane stays fast.
func equivOptions(t *testing.T) ExpOptions {
	o := QuickOptions()
	if testing.Short() {
		o.Benches = []string{"libquantum", "bzip2", "lbm", "gcc"}
		o.Mixes = []Mix{{Name: "WLt", Members: []string{"libquantum", "lbm", "bzip2", "gobmk"}}}
	}
	return o
}

// renderAll renders a set of tables into one byte stream.
func renderAll(tables ...*Table) string {
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestSerialParallelEquivalence is the archetype's headline test: the
// same experiments at the same seed must render byte-identical tables
// whether the harness runs serially (Jobs=1) or across 8 workers.
func TestSerialParallelEquivalence(t *testing.T) {
	run := func(jobs int) string {
		o := equivOptions(t)
		o.Jobs = jobs
		f1, err := Fig1(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		f2, f3, f4, t1, err := RefreshBehaviour(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		f10, f11, err := Fig10and11(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		g, err := AblationGate(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return renderAll(f1, f2, f3, f4, t1, f10, f11, g)
	}

	serial := run(1)
	parallel := run(8)
	if serial != parallel {
		t.Fatalf("serial and parallel tables differ:\n--- serial ---\n%s\n--- jobs=8 ---\n%s", serial, parallel)
	}
}

// TestGoldenQuickTables locks the QuickOptions Fig1 and Table I outputs
// against testdata snapshots, so refactors cannot silently shift the
// reported IPC/energy/lambda/beta numbers. Regenerate deliberately with
//
//	go test -run TestGoldenQuickTables -update .
func TestGoldenQuickTables(t *testing.T) {
	if testing.Short() {
		t.Skip("golden comparison runs the full QuickOptions benchmark set")
	}
	o := QuickOptions()
	o.Jobs = 4

	f1, err := Fig1(o)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, t1, err := RefreshBehaviour(o)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		file  string
		table *Table
	}{
		{"fig1_quick.golden", f1},
		{"tab1_quick.golden", t1},
	} {
		path := filepath.Join("testdata", tc.file)
		got := tc.table.String()
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden %s (generate with -update): %v", path, err)
		}
		if got != string(want) {
			t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", tc.table.ID, got, want)
		}
	}
}

// TestSeedStability guards against hidden global state: two simulations
// of an identical Config must produce identical Result structs. Without
// this, sharing a process between pool workers could never be safe.
func TestSeedStability(t *testing.T) {
	for _, cfg := range []Config{
		func() Config {
			c := Default("libquantum")
			c.Mode = ModeROP
			c.Instructions = 200_000
			c.ROPTrainRefreshes = 5
			return c
		}(),
		func() Config {
			c := Default("libquantum", "lbm", "bzip2", "gobmk")
			c.Mode = ModeBaseline
			c.Instructions = 80_000
			return c
		}(),
	} {
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("two runs of %v/%d cores diverged:\n%+v\nvs\n%+v",
				cfg.Mode, len(cfg.Benches), a, b)
		}
	}
}

// TestParallelErrorPropagation checks that a failing run aborts the
// whole experiment with the run's label in the error, under parallel
// execution just like serial.
func TestParallelErrorPropagation(t *testing.T) {
	o := QuickOptions()
	o.Benches = []string{"libquantum", "nosuchbench"}
	for _, jobs := range []int{1, 8} {
		o.Jobs = jobs
		_, err := Fig1(o)
		if err == nil {
			t.Fatalf("jobs=%d: bogus benchmark did not fail", jobs)
		}
		if !strings.Contains(err.Error(), "fig1/nosuchbench") {
			t.Errorf("jobs=%d: error %q missing failing run's label", jobs, err)
		}
	}
}

// TestExperimentCancellation checks that a cancelled ExpOptions.Ctx
// aborts an experiment with the context's error.
func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := QuickOptions()
	o.Jobs = 4
	o.Ctx = ctx
	_, err := Fig1(o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSharedPoolStats checks that a caller-provided pool accumulates
// run counts and timings across experiments, which is what ropexp
// reports after an evaluation.
func TestSharedPoolStats(t *testing.T) {
	o := QuickOptions()
	o.Benches = []string{"libquantum", "bzip2"}
	o.Pool = runner.New(4)
	if _, err := Fig1(o); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationGate(o); err != nil {
		t.Fatal(err)
	}
	s := o.Pool.Stats()
	// Fig1: 2 benches x (base, noref); AblationGate: 2 x (base + 3 gates).
	if want := int64(2*2 + 2*4); s.Completed != want {
		t.Errorf("pool completed %d runs, want %d", s.Completed, want)
	}
	if s.Failed != 0 || s.Wall <= 0 || s.Busy <= 0 {
		t.Errorf("implausible stats: %+v", s)
	}
}
