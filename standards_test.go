package ropsim

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"ropsim/internal/dram"
	"ropsim/internal/memctrl"
)

// standardArtifactOptions is artifactOptions for a non-default DRAM
// standard: the same two-benchmark quick Fig1 scale, simulated on the
// named standard.
func standardArtifactOptions(standard string, jobs int) (ExpOptions, *Artifact) {
	o, art := artifactOptions(jobs)
	o.Standard = standard
	return o, art
}

// TestGoldenStandardArtifacts locks quick-campaign stats artifacts for
// the non-DDR4 standards (DDR5 same-bank refresh, LPDDR4 per-bank
// refresh) against testdata snapshots, and requires jobs=1 and jobs=8 to
// produce byte-identical artifacts on each. Regenerate deliberately with
//
//	go test -run TestGoldenStandardArtifacts -update .
func TestGoldenStandardArtifacts(t *testing.T) {
	for _, std := range []string{"DDR5-4800", "LPDDR4-3200"} {
		t.Run(std, func(t *testing.T) {
			render := func(jobs int) string {
				o, art := standardArtifactOptions(std, jobs)
				if _, err := Fig1(o); err != nil {
					t.Fatalf("jobs=%d: %v", jobs, err)
				}
				var buf bytes.Buffer
				if err := art.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			serial := render(1)
			if parallel := render(8); serial != parallel {
				t.Fatalf("%s artifacts differ between jobs=1 and jobs=8:\n--- serial ---\n%.1500s\n--- jobs=8 ---\n%.1500s",
					std, serial, parallel)
			}
			name := "stats_fig1_" + strings.ToLower(std) + "_quick.golden.json"
			path := filepath.Join("testdata", name)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(serial), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (generate with -update): %v", path, err)
			}
			if serial != string(want) {
				t.Errorf("%s artifact drifted from golden (regenerate with -update if intended):\n--- got ---\n%.1500s\n--- want ---\n%.1500s",
					std, serial, want)
			}
		})
	}
}

// TestStandardsCheckClean runs every registered standard under its
// native refresh pairing with the JEDEC timing checker armed: one
// illegal command fails the run. This is the conformance suite's
// full-simulation tier — the same check CI repeats per standard.
func TestStandardsCheckClean(t *testing.T) {
	o := QuickOptions()
	o.Instructions = 150_000
	o.Check = true
	for _, std := range dram.Standards() {
		base, rop := ModeBaseline, ModeROP
		if std.Refresh().Granularity != dram.GranularityAllBank {
			base, rop = ModeBankRefresh, ModeROPBank
		}
		modes := []Mode{base, rop}
		if testing.Short() {
			modes = modes[:1]
		}
		for _, mode := range modes {
			cfg := o.single("libquantum", mode)
			cfg.Standard = std.Name()
			if _, err := Run(cfg); err != nil {
				t.Errorf("%s/%v: %v", std.Name(), mode, err)
			}
		}
	}
}

// TestCrossCheckWakeAllStandards extends the exact-wake cross-check to
// every registered standard: in each refresh mode and page policy the
// controller's nextWake must never sleep past a productive cycle, on
// DDR5's grouped same-bank slots and LPDDR4's per-bank round-robin just
// as on DDR4.
func TestCrossCheckWakeAllStandards(t *testing.T) {
	memctrl.CrossCheckWake = true
	defer func() { memctrl.CrossCheckWake = false }()
	o := QuickOptions()
	o.Jobs = 1
	o.Instructions = 120_000
	modes := []Mode{
		ModeBaseline, ModeNoRefresh, ModeROP, ModeElastic, ModePausing,
		ModeBankRefresh, ModeROPBank, ModeSubarrayRefresh,
		ModeOutOfOrderBank, ModeDARP, ModeSARP,
	}
	if testing.Short() {
		modes = []Mode{ModeBaseline, ModeBankRefresh, ModeROPBank, ModeDARP, ModeSARP}
	}
	for _, std := range DRAMStandards() {
		for _, mode := range modes {
			for _, closed := range []bool{false, true} {
				cfg := o.single("libquantum", mode)
				cfg.Standard = std
				cfg.ClosedPage = closed
				if _, err := Run(cfg); err != nil {
					t.Fatalf("%s/%v/closed=%v: %v", std, mode, closed, err)
				}
			}
		}
	}
}

// TestCrossStandardTable smoke-runs the xstd sweep at quick scale and
// checks its shape and invariants: one row per standard × bench, IPC
// columns positive, the no-refresh ideal at least matching the
// refreshing baseline within noise, and a positive refresh-busy
// fraction on every standard.
func TestCrossStandardTable(t *testing.T) {
	o := QuickOptions()
	o.Benches = []string{"libquantum"}
	tab, err := CrossStandard(o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "xstd" {
		t.Errorf("table ID = %q, want xstd", tab.ID)
	}
	if want := len(DRAMStandards()); len(tab.Rows) != want {
		t.Fatalf("xstd has %d rows, want %d", len(tab.Rows), want)
	}
	cell := func(row []string, i int) float64 {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			t.Fatalf("row %v column %d: %v", row, i, err)
		}
		return v
	}
	seen := map[string]bool{}
	for _, row := range tab.Rows {
		std := row[0]
		seen[std] = true
		ipcBase, ipcROP, ipcNoref := cell(row, 2), cell(row, 3), cell(row, 4)
		busy := cell(row, 6)
		if ipcBase <= 0 || ipcROP <= 0 || ipcNoref <= 0 {
			t.Errorf("%s: non-positive IPC row %v", std, row)
		}
		if ipcNoref < ipcBase*0.98 {
			t.Errorf("%s: no-refresh IPC %.4f below baseline %.4f", std, ipcNoref, ipcBase)
		}
		if busy <= 0 || busy > 50 {
			t.Errorf("%s: implausible refresh-busy %.2f%%", std, busy)
		}
	}
	for _, std := range DRAMStandards() {
		if !seen[std] {
			t.Errorf("xstd sweep missing standard %s", std)
		}
	}
}

// TestUnknownStandardFailsEarly pins the config-validation path: a
// mistyped standard name must fail before any simulation work, with an
// error that lists the valid choices.
func TestUnknownStandardFailsEarly(t *testing.T) {
	cfg := Default("libquantum")
	cfg.Standard = "DDR6-9000"
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted an unknown standard")
	} else if !strings.Contains(err.Error(), "DDR5-4800") {
		t.Errorf("error should list registered standards, got: %v", err)
	}
}

// TestStandardsDocComplete enforces the documentation contract: every
// registered standard must be named in DESIGN.md (the device-model
// section) and EXPERIMENTS.md (the cross-standard sweep recipe), so a
// new registration cannot ship undocumented.
func TestStandardsDocComplete(t *testing.T) {
	for _, doc := range []string{"DESIGN.md", "EXPERIMENTS.md"} {
		text, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, std := range DRAMStandards() {
			if !strings.Contains(string(text), std) {
				t.Errorf("%s does not mention standard %s", doc, std)
			}
		}
	}
}
