package ropsim

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// policiesArtifactOptions is artifactOptions restricted to a fast slice
// of the policies sweep: the first two paper mixes at the 8 Gb datasheet
// density and the 32 Gb projection.
func policiesArtifactOptions(jobs int) (ExpOptions, *Artifact) {
	o, art := artifactOptions(jobs)
	o.Mixes = Mixes()[:2]
	o.DensitiesGb = []int{8, 32}
	return o, art
}

// TestGoldenPoliciesArtifact is the policy lab's determinism gate: the
// quick policies sweep must render byte-identical tables and stats
// artifacts whether the harness runs serially or across 8 workers, and
// the table is locked against a testdata snapshot so refactors cannot
// silently shift the reported speedups. Regenerate deliberately with
//
//	go test -run TestGoldenPoliciesArtifact -update .
func TestGoldenPoliciesArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("golden comparison runs two mixes at two densities across six policies")
	}
	render := func(jobs int) (string, string) {
		o, art := policiesArtifactOptions(jobs)
		tab, err := Policies(o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := art.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return tab.String(), buf.String()
	}
	serialTab, serialArt := render(1)
	parTab, parArt := render(8)
	if serialTab != parTab {
		t.Fatalf("policies tables differ between jobs=1 and jobs=8:\n--- serial ---\n%s\n--- jobs=8 ---\n%s",
			serialTab, parTab)
	}
	if serialArt != parArt {
		t.Fatalf("policies artifacts differ between jobs=1 and jobs=8:\n--- serial ---\n%.1500s\n--- jobs=8 ---\n%.1500s",
			serialArt, parArt)
	}

	path := filepath.Join("testdata", "policies_quick.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(serialTab), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (generate with -update): %v", path, err)
	}
	if serialTab != string(want) {
		t.Errorf("policies table drifted from golden (regenerate with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			serialTab, want)
	}
}

// TestPoliciesTableShape smoke-runs a one-mix, one-density policies
// sweep and checks its invariants: speedups normalized to the native
// baseline (Baseline column exactly 1), every ratio positive, the
// no-refresh ideal at least matching the baseline within noise, and a
// positive refresh-busy fraction.
func TestPoliciesTableShape(t *testing.T) {
	o := QuickOptions()
	o.Mixes = Mixes()[:1]
	o.DensitiesGb = []int{32}
	tab, err := Policies(o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "policies" {
		t.Errorf("table ID = %q, want policies", tab.ID)
	}
	// One mix row plus the per-density GEOMEAN row.
	if len(tab.Rows) != 2 {
		t.Fatalf("policies has %d rows, want 2: %v", len(tab.Rows), tab.Rows)
	}
	cell := func(row []string, i int) float64 {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			t.Fatalf("row %v column %d: %v", row, i, err)
		}
		return v
	}
	row := tab.Rows[0]
	if row[0] != "32" {
		t.Errorf("density column = %q, want 32", row[0])
	}
	if base := cell(row, 2); base != 1 {
		t.Errorf("baseline speedup column = %v, want exactly 1", base)
	}
	noref := cell(row, 7)
	for i := 3; i <= 7; i++ {
		if v := cell(row, i); v <= 0 {
			t.Errorf("column %d non-positive: %v", i, row)
		}
	}
	if noref < 0.98 {
		t.Errorf("no-refresh speedup %.4f below baseline", noref)
	}
	if busy := cell(row, 8); busy <= 0 || busy > 50 {
		t.Errorf("implausible refresh-busy %.2f%%", busy)
	}
}

// refreshModeConsts parses internal/memctrl/controller.go and returns
// the names of every Mode constant, so documentation gates track the
// registered policy set automatically instead of a hand-kept list.
func refreshModeConsts(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("internal", "memctrl", "controller.go"), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, n := range vs.Names {
				if strings.HasPrefix(n.Name, "Mode") && n.IsExported() {
					names = append(names, n.Name)
				}
			}
		}
	}
	if len(names) < 8 {
		t.Fatalf("found only %d Mode constants in controller.go — parser out of sync?", len(names))
	}
	return names
}

// TestPoliciesDocComplete enforces the policy-taxonomy contract: every
// Mode constant registered in internal/memctrl must be documented in
// docs/POLICIES.md, and the checked-in experiments_output.txt must
// include the policies sweep so the committed artifact cannot go stale
// against the experiment set.
func TestPoliciesDocComplete(t *testing.T) {
	text, err := os.ReadFile(filepath.Join("docs", "POLICIES.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range refreshModeConsts(t) {
		if !strings.Contains(string(text), name) {
			t.Errorf("docs/POLICIES.md does not document %s", name)
		}
	}
	out, err := os.ReadFile("experiments_output.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"policies", "fig1", "xstd"} {
		if !strings.Contains(string(out), "== "+id) {
			t.Errorf("experiments_output.txt is stale: missing table %q (regenerate with go run ./cmd/ropexp -exp all)", id)
		}
	}
}
