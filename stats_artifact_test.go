package ropsim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"

	"ropsim/internal/stats"
)

// artifactOptions is the quick scale used by the artifact tests: a
// two-benchmark Fig1 run, small enough for CI but covering baseline and
// no-refresh modes.
func artifactOptions(jobs int) (ExpOptions, *Artifact) {
	o := QuickOptions()
	o.Benches = []string{"libquantum", "bzip2"}
	o.Jobs = jobs
	o.Artifact = NewArtifact()
	return o, o.Artifact
}

// TestGoldenStatsArtifact locks the -stats-out JSON artifact of a
// quick-scale Fig1 run against a testdata snapshot, so refactors cannot
// silently change the metric namespace, the schema, or the emitted
// values. Regenerate deliberately with
//
//	go test -run TestGoldenStatsArtifact -update .
func TestGoldenStatsArtifact(t *testing.T) {
	o, art := artifactOptions(4)
	if _, err := Fig1(o); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := art.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	path := filepath.Join("testdata", "stats_fig1_quick.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (generate with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("stats artifact drifted from golden (regenerate with -update if intended):\n--- got ---\n%.2000s\n--- want ---\n%.2000s", got, want)
	}
}

// TestStatsArtifactParallelEquivalence is the artifact half of the
// serial-vs-parallel guarantee: the same experiment at the same seed
// must emit a byte-identical -stats-out artifact whether runs execute
// serially or across 8 workers.
func TestStatsArtifactParallelEquivalence(t *testing.T) {
	render := func(jobs int) string {
		o, art := artifactOptions(jobs)
		if _, err := Fig1(o); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := art.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("stats artifacts differ between jobs=1 and jobs=8:\n--- serial ---\n%.2000s\n--- jobs=8 ---\n%.2000s", serial, parallel)
	}
}

// TestParallelRegistryIsolation is the race-detector guarantee behind
// the metrics layer: every simulation run owns a private registry, so
// concurrent runs (as scheduled by the parallel experiment runner)
// never share metric state. Under -race this test fails if any counter,
// gauge closure, or registry map is shared across runs; without -race
// it still checks that concurrent identical runs produce identical
// snapshots.
func TestParallelRegistryIsolation(t *testing.T) {
	cfg := Default("libquantum")
	cfg.Mode = ModeROP
	cfg.Instructions = 60_000
	cfg.ROPTrainRefreshes = 4

	const n = 8
	snaps := make([]stats.Snapshot, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Run(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			snaps[i] = res.Metrics
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(snaps[0], snaps[i]) {
			t.Fatalf("concurrent identical runs produced different snapshots (run 0 vs %d)", i)
		}
	}
	if len(snaps[0].Metrics) == 0 {
		t.Fatal("snapshot is empty; registry wiring is broken")
	}
}

// TestResultMetricsConsistency cross-checks the snapshot against the
// flat Result fields that predate the registry: both must report the
// same refresh count, SRAM statistics and energy total.
func TestResultMetricsConsistency(t *testing.T) {
	cfg := Default("libquantum")
	cfg.Mode = ModeROP
	cfg.Instructions = 120_000
	cfg.ROPTrainRefreshes = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Metrics
	if s.Schema != stats.SchemaVersion {
		t.Errorf("snapshot schema = %d, want %d", s.Schema, stats.SchemaVersion)
	}
	for _, tc := range []struct {
		path, field string
		want        float64
	}{
		{"memctrl.refreshes_issued", "value", float64(res.Refreshes)},
		{"memctrl.sram_served", "value", float64(res.SRAMServed)},
		{"memctrl.rop.sram.lookups", "value", float64(res.SRAMLookups)},
		{"memctrl.rop.sram.hits", "value", float64(res.SRAMHits)},
		{"memctrl.rop.sram.hit_rate", "value", res.SRAMHitRate},
		{"energy.total_j", "value", res.Energy.Total()},
		{"sim.elapsed_bus_cycles", "value", float64(res.ElapsedBus)},
		{"sim.llc_miss_rate", "value", res.LLCMissRate},
		{"cpu.core0.ipc", "value", res.Cores[0].IPC},
	} {
		got, ok := s.Field(tc.path, tc.field)
		if !ok {
			t.Errorf("snapshot missing %s", tc.path)
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %v, Result reports %v", tc.path, got, tc.want)
		}
	}
	// The histogram must have observed exactly the demand reads the
	// latency mean covers.
	histN, ok := s.Field("memctrl.read_latency_hist", "count")
	meanN, ok2 := s.Field("memctrl.read_latency", "count")
	if !ok || !ok2 || histN != meanN {
		t.Errorf("read latency histogram count %v != mean count %v", histN, meanN)
	}
}

// TestMetricsDocComplete enforces the docs/METRICS.md contract: every
// metric path a run can emit (including the ROP-only subtree) must
// appear in the document. Core-indexed paths are documented once as
// cpu.coreN.*.
func TestMetricsDocComplete(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "METRICS.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	cfg := Default("libquantum")
	cfg.Mode = ModeROP
	cfg.Instructions = 60_000
	cfg.ROPTrainRefreshes = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coreN := regexp.MustCompile(`\bcore\d+\b`)
	for _, p := range res.Metrics.Paths() {
		want := coreN.ReplaceAllString(p, "coreN")
		if !strings.Contains(text, "`"+want+"`") {
			t.Errorf("docs/METRICS.md does not document metric path %q", want)
		}
	}
}

// TestArtifactCSV checks the CSV rendering: a header, label-prefixed
// rows, and deterministic output.
func TestArtifactCSV(t *testing.T) {
	cfg := Default("libquantum")
	cfg.Instructions = 60_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	art := NewArtifact()
	art.Record("quick/libquantum", res.Metrics)
	var buf bytes.Buffer
	if err := art.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if lines[0] != "label,path,kind,field,value" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("CSV implausibly short: %d lines", len(lines))
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "quick/libquantum,") {
			t.Fatalf("row missing label prefix: %q", l)
		}
	}
}
