package ropsim

import (
	"context"
	"encoding/json"
	"fmt"
)

// This file adapts the simulator to the distributed campaign wire
// format (internal/campaign): run configs and results cross the wire
// as JSON. Config is plain data and Result round-trips JSON
// byte-exactly (the journal resume tests pin this), so a run executed
// on a worker records the same artifact bytes as one executed
// in-process — the foundation of the campaign determinism contract.

// RemoteExec adapts a run function to the campaign executor shape:
// it decodes a wire config, runs it, and encodes the result. Both
// cmd/ropworker and ropexp -connect wrap their pool-scheduled RunCtx
// in this; ropexp -serve uses it for the coordinator's in-process
// fallback executor.
func RemoteExec(run func(ctx context.Context, label string, cfg Config) (*Result, error)) func(ctx context.Context, label string, cfg []byte) ([]byte, error) {
	return func(ctx context.Context, label string, raw []byte) ([]byte, error) {
		var cfg Config
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, fmt.Errorf("%s: bad wire config: %w", label, err)
		}
		res, err := run(ctx, label, cfg)
		if err != nil {
			return nil, err
		}
		out, err := json.Marshal(res)
		if err != nil {
			return nil, fmt.Errorf("%s: encode result: %w", label, err)
		}
		return out, nil
	}
}

// RemoteDo adapts a campaign coordinator's Do method to the
// ExpOptions.Remote shape: it encodes the run config for the wire,
// dispatches it, and decodes the result that streams back.
func RemoteDo(do func(ctx context.Context, label string, cfg []byte) ([]byte, error)) func(ctx context.Context, label string, cfg Config) (*Result, error) {
	return func(ctx context.Context, label string, cfg Config) (*Result, error) {
		raw, err := json.Marshal(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: encode wire config: %w", label, err)
		}
		out, err := do(ctx, label, raw)
		if err != nil {
			return nil, err
		}
		var res Result
		if err := json.Unmarshal(out, &res); err != nil {
			return nil, fmt.Errorf("%s: bad wire result: %w", label, err)
		}
		return &res, nil
	}
}
