package ropsim

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestPerformanceDocComplete enforces the docs/PERFORMANCE.md contract
// the way TestMetricsDocComplete and TestRobustnessDocComplete enforce
// theirs: the operational surface a user depends on — make targets,
// benchgate flags, every hot-path benchmark, every metric recorded in
// the committed baseline artifacts — must appear in the document, so a
// new benchmark or baseline metric cannot land undocumented.
func TestPerformanceDocComplete(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "PERFORMANCE.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	// The make targets of the bench workflow, which must also exist in
	// the Makefile itself.
	mk, err := os.ReadFile("Makefile")
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []string{"bench", "bench-gate", "microbench"} {
		if !strings.Contains(text, "make "+target) {
			t.Errorf("docs/PERFORMANCE.md does not document `make %s`", target)
		}
		if !strings.Contains(string(mk), "\n"+target+":") {
			t.Errorf("Makefile has no %q target but docs/PERFORMANCE.md relies on it", target)
		}
	}

	// Every benchgate flag must be documented.
	gateSrc, err := os.ReadFile(filepath.Join("cmd", "benchgate", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	flagRe := regexp.MustCompile(`flag\.\w+\("([a-z-]+)"`)
	for _, m := range flagRe.FindAllStringSubmatch(string(gateSrc), -1) {
		if !strings.Contains(text, "`-"+m[1]+"`") {
			t.Errorf("docs/PERFORMANCE.md does not document benchgate flag -%s", m[1])
		}
	}

	// Every hot-path microbenchmark must be listed.
	benchRe := regexp.MustCompile(`func (Benchmark\w+)\(`)
	for _, file := range []string{
		filepath.Join("internal", "event", "bench_test.go"),
		filepath.Join("internal", "event", "oracle_bench_test.go"),
		filepath.Join("internal", "memctrl", "bench_test.go"),
	} {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range benchRe.FindAllStringSubmatch(string(src), -1) {
			if !strings.Contains(text, m[1]) {
				t.Errorf("docs/PERFORMANCE.md does not mention %s (%s)", m[1], file)
			}
		}
	}

	// At least one baseline artifact must be committed (the acceptance
	// record), the doc must reference the latest one by name, and every
	// metric it records must be explained in the doc.
	baselines, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	baselines = filterCommittedBaselines(baselines)
	if len(baselines) == 0 {
		t.Fatal("no committed BENCH_*.json baseline artifact found")
	}
	sort.Strings(baselines)
	latest := baselines[len(baselines)-1]
	if !strings.Contains(text, latest) {
		t.Errorf("docs/PERFORMANCE.md does not reference the latest baseline %s", latest)
	}
	for _, path := range baselines {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var b struct {
			Schema  int `json:"schema"`
			Results []struct {
				Name string `json:"name"`
				Gate bool   `json:"gate"`
			} `json:"results"`
		}
		if err := json.Unmarshal(data, &b); err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		if want := fmt.Sprintf(`"schema": %d`, b.Schema); !strings.Contains(text, want) {
			t.Errorf("docs/PERFORMANCE.md example does not show schema version %d (%s)", b.Schema, path)
		}
		gated := false
		for _, r := range b.Results {
			if !strings.Contains(text, "`"+r.Name+"`") {
				t.Errorf("docs/PERFORMANCE.md does not explain metric %q recorded in %s", r.Name, path)
			}
			gated = gated || r.Gate
		}
		if !gated {
			t.Errorf("%s flags no metric with \"gate\": true; the CI regression gate would be a no-op", path)
		}
	}
}

// filterCommittedBaselines drops scratch artifacts a local bench run
// may leave in the working tree (the CI output name).
func filterCommittedBaselines(paths []string) []string {
	var out []string
	for _, p := range paths {
		if p == "BENCH_ci.json" {
			continue
		}
		out = append(out, p)
	}
	return out
}
