package ropsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"ropsim/internal/campaign"
)

// TestFaultDistributedWorkerLossByteIdentical drives the real
// coordinator/worker binaries through the distributed chaos story: a
// campaign sharded across three workers loses one to SIGKILL and a
// second to a wedge (SIGSTOP: heartbeats stop, but the socket stays
// open) mid-run, attaches a replacement, and must still finish with a
// -stats-out artifact byte-identical to a single-process -jobs 2 run.
// This is the campaign determinism contract of docs/ROBUSTNESS.md end
// to end: lease revocation, heartbeat-deadline detection, re-dispatch,
// and exactly-once completion.
func TestFaultDistributedWorkerLossByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the ropexp and ropworker binaries; skipped in -short")
	}
	dir := t.TempDir()
	ropexp := filepath.Join(dir, "ropexp")
	ropworker := filepath.Join(dir, "ropworker")
	for exe, pkg := range map[string]string{ropexp: "./cmd/ropexp", ropworker: "./cmd/ropworker"} {
		build := exec.Command("go", "build", "-o", exe, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	refOut := filepath.Join(dir, "ref.json")
	distOut := filepath.Join(dir, "dist.json")
	journal := filepath.Join(dir, "dist.jsonl")

	// Sized like the SIGINT test: a few seconds of campaign, so the
	// worker kills land mid-run with room for re-dispatch after.
	args := []string{"-exp", "fig1", "-insts", "10000000"}

	// Reference: the same campaign, single-process.
	ref := exec.Command(ropexp, append(args, "-jobs", "2", "-stats-out", refOut)...)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference campaign: %v\n%s", err, out)
	}

	// Free loopback ports for the coordinator and its HTTP endpoint.
	freePort := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		return ln.Addr().String()
	}
	addr, httpAddr := freePort(), freePort()

	var coordErr bytes.Buffer
	coord := exec.Command(ropexp, append(args,
		"-jobs", "4",
		"-serve", addr,
		"-http", httpAddr,
		"-heartbeat", "100ms",
		"-heartbeat-timeout", "500ms",
		"-journal", journal,
		"-stats-out", distOut)...)
	coord.Stderr = &coordErr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	worker := func(name string) *exec.Cmd {
		w := exec.Command(ropworker, "-connect", addr, "-jobs", "1", "-name", name)
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		return w
	}
	w1 := worker("w1-doomed")
	w2 := worker("w2-wedged")
	w3 := worker("w3-steady")
	for _, w := range []*exec.Cmd{w1, w2, w3} {
		defer w.Process.Kill()
	}
	// The wedged worker must be resumed before it can be reaped.
	defer w2.Process.Signal(syscall.SIGCONT)

	// Let the chaos land mid-campaign: wait (via the live progress
	// endpoint) until all three workers are attached and the journal
	// shows checkpointed runs, then strike.
	progress := func() campaign.Status {
		var st campaign.Status
		resp, err := http.Get("http://" + httpAddr + "/progress")
		if err != nil {
			return st
		}
		defer resp.Body.Close()
		json.NewDecoder(resp.Body).Decode(&st)
		return st
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := os.Stat(journal)
		if err == nil && st.Size() > 0 && len(progress().Workers) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never got underway with 3 workers (progress: %+v); coordinator stderr:\n%s",
				progress(), coordErr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := w1.Process.Kill(); err != nil { // SIGKILL: connection drops
		t.Fatal(err)
	}
	if err := w2.Process.Signal(syscall.SIGSTOP); err != nil { // wedge: socket open, heartbeats stop
		t.Fatal(err)
	}
	w4 := worker("w4-replacement")
	defer w4.Process.Kill()

	if err := coord.Wait(); err != nil {
		t.Fatalf("distributed campaign: %v\nstderr:\n%s", err, coordErr.String())
	}
	stderr := coordErr.String()
	if !bytes.Contains([]byte(stderr), []byte("lost")) {
		t.Errorf("coordinator never reported the SIGKILLed worker lost; stderr:\n%s", stderr)
	}
	if !bytes.Contains([]byte(stderr), []byte("heartbeat deadline exceeded")) {
		t.Errorf("coordinator never reaped the wedged worker; stderr:\n%s", stderr)
	}

	want, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(distOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("distributed artifact differs from the single-process reference (%d vs %d bytes)",
			len(got), len(want))
	}
	fmt.Fprintf(os.Stderr, "chaos campaign survived; coordinator stderr:\n%s", stderr)
}
