module ropsim

go 1.22
