package addr

import (
	"testing"
	"testing/quick"
)

func TestDDR4GeometryValid(t *testing.T) {
	for _, ranks := range []int{1, 2, 4} {
		g := DDR4Geometry(ranks)
		if err := g.Validate(); err != nil {
			t.Errorf("DDR4Geometry(%d): %v", ranks, err)
		}
		if g.Ranks != ranks {
			t.Errorf("Ranks = %d, want %d", g.Ranks, ranks)
		}
	}
}

func TestGeometryValidateRejects(t *testing.T) {
	bad := []Geometry{
		{Channels: 0, Ranks: 1, Banks: 8, Rows: 16, ColumnLines: 16},
		{Channels: 1, Ranks: 3, Banks: 8, Rows: 16, ColumnLines: 16},
		{Channels: 1, Ranks: 1, Banks: -8, Rows: 16, ColumnLines: 16},
		{Channels: 1, Ranks: 1, Banks: 8, Rows: 17, ColumnLines: 16},
		{Channels: 1, Ranks: 1, Banks: 8, Rows: 16, ColumnLines: 0},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, g)
		}
	}
}

func TestTotalLines(t *testing.T) {
	g := Geometry{Channels: 1, Ranks: 2, Banks: 4, Rows: 8, ColumnLines: 16}
	if got := g.TotalLines(); got != 2*4*8*16 {
		t.Errorf("TotalLines = %d, want %d", got, 2*4*8*16)
	}
}

func smallGeo() Geometry {
	return Geometry{Channels: 1, Ranks: 4, Banks: 8, Rows: 64, ColumnLines: 16}
}

func TestInterleavedInRange(t *testing.T) {
	g := smallGeo()
	m := NewInterleaved(g)
	f := func(line uint64) bool {
		l := m.Map(line, 0)
		return l.Channel >= 0 && l.Channel < g.Channels &&
			l.Rank >= 0 && l.Rank < g.Ranks &&
			l.Bank >= 0 && l.Bank < g.Banks &&
			l.Row >= 0 && l.Row < g.Rows &&
			l.Col >= 0 && l.Col < g.ColumnLines
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleavedBijectiveOverOneWrap(t *testing.T) {
	// Property: within one full pass over the address space, the mapping
	// is a bijection (no two lines collide).
	g := Geometry{Channels: 1, Ranks: 2, Banks: 4, Rows: 8, ColumnLines: 4}
	m := NewInterleaved(g)
	seen := make(map[Loc]uint64)
	for line := uint64(0); line < g.TotalLines(); line++ {
		l := m.Map(line, 0)
		if prev, dup := seen[l]; dup {
			t.Fatalf("lines %d and %d both map to %+v", prev, line, l)
		}
		seen[l] = line
	}
	if uint64(len(seen)) != g.TotalLines() {
		t.Fatalf("mapped %d distinct locations, want %d", len(seen), g.TotalLines())
	}
}

func TestInterleavedFansOutBanksThenRanks(t *testing.T) {
	g := smallGeo()
	m := NewInterleaved(g)
	// Consecutive lines walk the banks first, then the ranks.
	for i := 0; i < g.Banks; i++ {
		if got := m.Map(uint64(i), 0).Bank; got != i {
			t.Errorf("line %d bank = %d, want %d", i, got, i)
		}
	}
	a := m.Map(0, 0)
	b := m.Map(uint64(g.Banks), 0)
	if b.Rank != (a.Rank+1)%g.Ranks {
		t.Errorf("line %d rank = %d, want next rank after %d", g.Banks, b.Rank, a.Rank)
	}
}

func TestInterleavedBankStreamSequentialColumns(t *testing.T) {
	// Within one bank, a sequential global stream walks columns
	// sequentially (row-buffer locality preserved).
	g := smallGeo()
	m := NewInterleaved(g)
	stride := uint64(g.Banks * g.Ranks * g.Channels)
	prev := m.Map(3, 0) // bank 3
	for i := uint64(1); i < 20; i++ {
		cur := m.Map(3+i*stride, 0)
		if cur.Bank != prev.Bank || cur.Rank != prev.Rank {
			t.Fatalf("stride walk left the bank: %+v -> %+v", prev, cur)
		}
		wantCol := (prev.Col + 1) % g.ColumnLines
		if cur.Col != wantCol {
			t.Fatalf("columns not sequential: %+v -> %+v", prev, cur)
		}
		prev = cur
	}
}

func TestInterleavedSpreadsRanks(t *testing.T) {
	g := smallGeo()
	m := NewInterleaved(g)
	ranks := map[int]bool{}
	// One burst of Banks*Ranks consecutive lines touches every rank.
	for i := uint64(0); i < uint64(g.Banks*g.Ranks); i++ {
		ranks[m.Map(i, 0).Rank] = true
	}
	if len(ranks) != g.Ranks {
		t.Errorf("interleaved mapping touched %d ranks, want %d", len(ranks), g.Ranks)
	}
}

func TestRankPartitionedPinsRank(t *testing.T) {
	g := smallGeo()
	m := NewRankPartitioned(g)
	f := func(line uint64, src uint8) bool {
		core := int(src % 4)
		return m.Map(line, core).Rank == core%g.Ranks
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRankPartitionedInRange(t *testing.T) {
	g := smallGeo()
	m := NewRankPartitioned(g)
	f := func(line uint64, src uint8) bool {
		l := m.Map(line, int(src))
		return l.Bank >= 0 && l.Bank < g.Banks &&
			l.Row >= 0 && l.Row < g.Rows &&
			l.Col >= 0 && l.Col < g.ColumnLines
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankLineRoundTrip(t *testing.T) {
	g := smallGeo()
	for row := 0; row < g.Rows; row += 7 {
		for col := 0; col < g.ColumnLines; col++ {
			l := Loc{Channel: 0, Rank: 1, Bank: 3, Row: row, Col: col}
			line := l.BankLine(g)
			back := LocFromBankLine(g, 0, 1, 3, line)
			if back != l {
				t.Fatalf("round trip %+v -> %d -> %+v", l, line, back)
			}
		}
	}
}

func TestLocFromBankLineWraps(t *testing.T) {
	g := smallGeo()
	size := int64(g.Rows) * int64(g.ColumnLines)
	a := LocFromBankLine(g, 0, 0, 0, 5)
	b := LocFromBankLine(g, 0, 0, 0, 5+size)
	c := LocFromBankLine(g, 0, 0, 0, 5-size)
	if a != b || a != c {
		t.Errorf("wrap mismatch: %+v %+v %+v", a, b, c)
	}
	// Negative offsets stay in range.
	l := LocFromBankLine(g, 0, 0, 0, -1)
	if l.Row < 0 || l.Col < 0 || l.Row >= g.Rows || l.Col >= g.ColumnLines {
		t.Errorf("negative bank line out of range: %+v", l)
	}
}

func TestBankLineAdjacency(t *testing.T) {
	// Property: consecutive bank lines differ by one column or wrap to
	// the next row.
	g := smallGeo()
	f := func(raw uint16) bool {
		line := int64(raw) % (int64(g.Rows)*int64(g.ColumnLines) - 1)
		a := LocFromBankLine(g, 0, 0, 0, line)
		b := LocFromBankLine(g, 0, 0, 0, line+1)
		if a.Row == b.Row {
			return b.Col == a.Col+1
		}
		return b.Row == a.Row+1 && b.Col == 0 && a.Col == g.ColumnLines-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
