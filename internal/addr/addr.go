// Package addr implements physical-address decomposition for the
// simulated DRAM system: splitting a cache-line address into channel,
// rank, bank, row and column coordinates under the two mapping schemes
// the paper evaluates — plain rank-interleaving (Baseline) and the
// rank-aware partitioned mapping ROP uses to keep each application's
// traffic on its own rank (paper §IV-A, "Rank-aware Mapping").
package addr

import "fmt"

// LineBytes is the cache-line (and DRAM burst) size in bytes.
const LineBytes = 64

// Geometry describes the simulated DRAM organization. The paper's
// configuration (Table III) is one DDR4 channel with 1 rank (single-core)
// or 4 ranks (4-core), 8 banks per rank.
type Geometry struct {
	Channels    int // independent channels
	Ranks       int // ranks per channel
	Banks       int // banks per rank
	Rows        int // rows per bank
	ColumnLines int // cache lines per row (row size / LineBytes)
}

// DDR4Geometry returns the paper's DRAM organization with the given
// number of ranks: 8 banks/rank, 8 KiB rows (128 lines), 32 Ki rows/bank
// (2 GiB per rank).
func DDR4Geometry(ranks int) Geometry {
	return Geometry{
		Channels:    1,
		Ranks:       ranks,
		Banks:       8,
		Rows:        32768,
		ColumnLines: 128,
	}
}

// Validate reports an error when any dimension is non-positive or not a
// power of two (the bit-slicing mappers require power-of-two sizes).
func (g Geometry) Validate() error {
	check := func(name string, v int) error {
		if v <= 0 {
			return fmt.Errorf("addr: %s must be positive, got %d", name, v)
		}
		if v&(v-1) != 0 {
			return fmt.Errorf("addr: %s must be a power of two, got %d", name, v)
		}
		return nil
	}
	if err := check("Channels", g.Channels); err != nil {
		return err
	}
	if err := check("Ranks", g.Ranks); err != nil {
		return err
	}
	if err := check("Banks", g.Banks); err != nil {
		return err
	}
	if err := check("Rows", g.Rows); err != nil {
		return err
	}
	return check("ColumnLines", g.ColumnLines)
}

// TotalLines reports the number of cache lines the geometry addresses.
func (g Geometry) TotalLines() uint64 {
	return uint64(g.Channels) * uint64(g.Ranks) * uint64(g.Banks) *
		uint64(g.Rows) * uint64(g.ColumnLines)
}

// Loc is a fully decomposed DRAM coordinate for one cache line.
type Loc struct {
	// Channel indexes the memory channel (0-based; one channel here).
	Channel int
	// Rank indexes the rank within the channel (refresh granularity in
	// the paper's baseline).
	Rank int
	// Bank indexes the bank within the rank.
	Bank int
	// Row indexes the DRAM row within the bank (open-row granularity).
	Row int
	// Col indexes the cache-line-sized column within the row.
	Col int
}

// BankLine reports the cache-line offset of the location within its bank
// (row-major). This is the "address" the ROP prediction table stores as
// LastAddr (paper §IV-C: "cache line offset within the bank").
func (l Loc) BankLine(g Geometry) int64 {
	return int64(l.Row)*int64(g.ColumnLines) + int64(l.Col)
}

// LocFromBankLine reconstructs a Loc in the given channel/rank/bank from
// a bank-line offset, wrapping modulo the bank size so that predicted
// addresses that run off the end of the bank remain valid.
func LocFromBankLine(g Geometry, channel, rank, bank int, line int64) Loc {
	size := int64(g.Rows) * int64(g.ColumnLines)
	line %= size
	if line < 0 {
		line += size
	}
	return Loc{
		Channel: channel,
		Rank:    rank,
		Bank:    bank,
		Row:     int(line / int64(g.ColumnLines)),
		Col:     int(line % int64(g.ColumnLines)),
	}
}

// Mapper converts a cache-line index (byte address / LineBytes) produced
// by core src into a DRAM location.
type Mapper interface {
	// Map decodes line for the given source core.
	Map(line uint64, src int) Loc
	// Geometry reports the geometry the mapper targets.
	Geometry() Geometry
}

// Interleaved is the baseline mapping: cache-line interleaving across
// banks and ranks (the low-order line bits select bank, then rank, then
// channel, then column, then row). Sequential streams fan out over every
// bank and rank for bandwidth — and, within each bank, still walk
// columns sequentially, preserving row-buffer locality. Because every
// application's lines spread over all ranks, any rank's refresh stalls
// every application: the interference the paper's Baseline exhibits.
type Interleaved struct {
	g Geometry
}

// NewInterleaved builds the baseline mapper. It panics on an invalid
// geometry, which is a configuration bug.
func NewInterleaved(g Geometry) *Interleaved {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return &Interleaved{g: g}
}

// Geometry implements Mapper.
func (m *Interleaved) Geometry() Geometry { return m.g }

// Map implements Mapper. The source core is ignored: all cores share the
// full address space.
func (m *Interleaved) Map(line uint64, _ int) Loc {
	g := m.g
	bank := int(line % uint64(g.Banks))
	line /= uint64(g.Banks)
	rank := int(line % uint64(g.Ranks))
	line /= uint64(g.Ranks)
	ch := int(line % uint64(g.Channels))
	line /= uint64(g.Channels)
	col := int(line % uint64(g.ColumnLines))
	line /= uint64(g.ColumnLines)
	row := int(line % uint64(g.Rows))
	return Loc{Channel: ch, Rank: rank, Bank: bank, Row: row, Col: col}
}

// RankPartitioned assigns each source core a dedicated rank (paper's
// rank-partitioning: core i's entire footprint lives in rank i mod
// Ranks), eliminating inter-application rank interference and making the
// per-rank access stream predictable for the ROP prefetcher.
type RankPartitioned struct {
	g Geometry
}

// NewRankPartitioned builds the rank-aware mapper. It panics on an
// invalid geometry.
func NewRankPartitioned(g Geometry) *RankPartitioned {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return &RankPartitioned{g: g}
}

// Geometry implements Mapper.
func (m *RankPartitioned) Geometry() Geometry { return m.g }

// Map implements Mapper: rank comes from the source core; the remaining
// bits interleave banks at line granularity inside that rank, then
// select column and row as in the baseline mapping.
func (m *RankPartitioned) Map(line uint64, src int) Loc {
	g := m.g
	rank := src % g.Ranks
	if rank < 0 {
		rank += g.Ranks
	}
	bank := int(line % uint64(g.Banks))
	line /= uint64(g.Banks)
	ch := int(line % uint64(g.Channels))
	line /= uint64(g.Channels)
	col := int(line % uint64(g.ColumnLines))
	line /= uint64(g.ColumnLines)
	row := int(line % uint64(g.Rows))
	return Loc{Channel: ch, Rank: rank, Bank: bank, Row: row, Col: col}
}
