package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The fact engine: cross-package behavior summaries.
//
// The original simlint analyzers were strictly single-package — an
// analyzer could see that a loop calls conn.recv, but not that recv
// ultimately blocks on a socket read two packages away. The fact
// engine closes that gap the way golang.org/x/tools/go/analysis facts
// do, but self-contained: after each package is type-checked, a small
// summary (a PackageFacts) is computed for every function — may it
// block, and on what (BlockClass); does it spawn goroutines; does it
// signal completion (WaitGroup.Done, channel send/close); which of its
// results carry wire-derived integers — and recorded in the load-wide
// FactSet. Packages are loaded in `go list -deps` order (dependencies
// first), so by the time a package is summarized, every module package
// it imports already has facts; standard-library behavior is seeded
// from a curated table keyed by go/types full names. Analyzers reach
// the engine through Pass.Facts().
//
// Facts serialize to canonical JSON keyed by the same `go list
// -export` package graph the loader walks: with a cache directory
// configured (simlint -factcache, cached by CI), a package whose
// sources and dependency facts are unchanged reuses its serialized
// summary instead of recomputing.

// FactSchema versions the serialized fact format; a bump invalidates
// every cache entry.
const FactSchema = 1

// BlockClass is a bitmask describing how a function may block.
type BlockClass uint8

// Block classes. A function's Blocks fact is the union over its body
// and its (transitive) callees.
const (
	// BlockChan marks channel sends, receives, selects without a
	// default, ranges over channels, and sync.WaitGroup.Wait.
	BlockChan BlockClass = 1 << iota
	// BlockIO marks host I/O: socket and file reads/writes, dials,
	// accepts, and time.Sleep.
	BlockIO
	// BlockLock marks sync.Mutex/RWMutex acquisition.
	BlockLock
	// BlockCond marks sync.Cond.Wait.
	BlockCond
)

// String renders the class set as "chan|io|lock|cond" (or "none").
func (c BlockClass) String() string {
	var parts []string
	for _, e := range []struct {
		bit  BlockClass
		name string
	}{{BlockChan, "chan"}, {BlockIO, "io"}, {BlockLock, "lock"}, {BlockCond, "cond"}} {
		if c&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// MayBlock reports whether the class set intersects mask.
func (c BlockClass) MayBlock(mask BlockClass) bool { return c&mask != 0 }

// FuncFact summarizes one function's externally visible behavior.
type FuncFact struct {
	// Blocks is the union of ways the function (or a transitive
	// callee) may block.
	Blocks BlockClass `json:"blocks,omitempty"`
	// Spawns reports that the function (or a transitive callee) starts
	// a goroutine.
	Spawns bool `json:"spawns,omitempty"`
	// Signals reports that the function signals completion to an
	// observer: it calls sync.WaitGroup.Done, sends on a channel, or
	// closes one (directly or through a callee).
	Signals bool `json:"signals,omitempty"`
	// WireResults is a bitmask of result indices whose values derive
	// from wire decoding (encoding/binary reads) without an
	// intervening clamp.
	WireResults uint32 `json:"wire_results,omitempty"`
}

// zero reports whether the fact carries no information (and can be
// omitted from serialization).
func (f FuncFact) zero() bool {
	return f.Blocks == 0 && !f.Spawns && !f.Signals && f.WireResults == 0
}

// PackageFacts is one package's serialized fact summary.
type PackageFacts struct {
	// Schema is the fact format version (FactSchema).
	Schema int `json:"schema"`
	// Path is the package import path.
	Path string `json:"path"`
	// Funcs maps go/types full function names (e.g.
	// "(*pkg.Conn).send") to their facts; zero facts are omitted.
	Funcs map[string]FuncFact `json:"funcs,omitempty"`

	// taintedFields records wire-tainted struct fields ("Type.field")
	// during computation; package-internal, not serialized (unexported
	// fields cannot be read cross-package anyway).
	taintedFields map[string]bool
}

// FactSet holds the facts of every package in one load, plus the
// standard-library seed table.
type FactSet struct {
	pkgs map[string]*PackageFacts
}

// NewFactSet returns an empty fact set (stdlib seeds are always
// available).
func NewFactSet() *FactSet {
	return &FactSet{pkgs: map[string]*PackageFacts{}}
}

// Package returns the recorded facts for the package at path, or nil.
func (s *FactSet) Package(path string) *PackageFacts {
	if s == nil {
		return nil
	}
	return s.pkgs[path]
}

// FuncFact resolves the fact for fn: the standard-library seed table
// first, then the computed per-package tables. Unknown functions get
// the zero fact (assumed non-blocking; docs/LINT.md records the
// approximation).
func (s *FactSet) FuncFact(fn *types.Func) FuncFact {
	if fn == nil {
		return FuncFact{}
	}
	name := fn.FullName()
	if f, ok := stdlibFacts[name]; ok {
		return f
	}
	if s == nil || fn.Pkg() == nil {
		return FuncFact{}
	}
	pf := s.pkgs[fn.Pkg().Path()]
	if pf == nil {
		return FuncFact{}
	}
	return pf.Funcs[name]
}

// stdlibFacts seeds behavior for standard-library functions and
// interface methods the repo's concurrency code flows through. Keys
// are go/types full names; interface methods use the interface's name
// ("(io.Reader).Read"), so calls through any implementation resolve.
var stdlibFacts = map[string]FuncFact{
	// sync: joins, condition variables, locks.
	"(*sync.WaitGroup).Wait": {Blocks: BlockChan},
	"(*sync.WaitGroup).Done": {Signals: true},
	"(*sync.Cond).Wait":      {Blocks: BlockCond},
	"(*sync.Mutex).Lock":     {Blocks: BlockLock},
	"(*sync.RWMutex).Lock":   {Blocks: BlockLock},
	"(*sync.RWMutex).RLock":  {Blocks: BlockLock},
	// time.
	"time.Sleep": {Blocks: BlockIO},
	// io.
	"io.ReadFull":       {Blocks: BlockIO},
	"io.ReadAtLeast":    {Blocks: BlockIO},
	"io.ReadAll":        {Blocks: BlockIO},
	"io.Copy":           {Blocks: BlockIO},
	"io.CopyN":          {Blocks: BlockIO},
	"(io.Reader).Read":  {Blocks: BlockIO},
	"(io.Writer).Write": {Blocks: BlockIO},
	// bufio.
	"(*bufio.Reader).Read":       {Blocks: BlockIO},
	"(*bufio.Reader).ReadByte":   {Blocks: BlockIO},
	"(*bufio.Reader).ReadBytes":  {Blocks: BlockIO},
	"(*bufio.Reader).ReadString": {Blocks: BlockIO},
	"(*bufio.Reader).ReadSlice":  {Blocks: BlockIO},
	"(*bufio.Reader).Peek":       {Blocks: BlockIO},
	"(*bufio.Reader).Discard":    {Blocks: BlockIO},
	"(*bufio.Scanner).Scan":      {Blocks: BlockIO},
	"(*bufio.Writer).Write":      {Blocks: BlockIO},
	"(*bufio.Writer).Flush":      {Blocks: BlockIO},
	// net.
	"net.Dial":                  {Blocks: BlockIO},
	"net.DialTimeout":           {Blocks: BlockIO},
	"net.Listen":                {Blocks: BlockIO},
	"(*net.Dialer).Dial":        {Blocks: BlockIO},
	"(*net.Dialer).DialContext": {Blocks: BlockIO},
	"(net.Listener).Accept":     {Blocks: BlockIO},
	"(net.Conn).Read":           {Blocks: BlockIO},
	"(net.Conn).Write":          {Blocks: BlockIO},
	"(*net.TCPListener).Accept": {Blocks: BlockIO},
	// os.
	"(*os.File).Read":    {Blocks: BlockIO},
	"(*os.File).ReadAt":  {Blocks: BlockIO},
	"(*os.File).Write":   {Blocks: BlockIO},
	"(*os.File).WriteAt": {Blocks: BlockIO},
	"(*os.File).Sync":    {Blocks: BlockIO},
	"os.ReadFile":        {Blocks: BlockIO},
	"os.WriteFile":       {Blocks: BlockIO},
	// os/exec.
	"(*os/exec.Cmd).Run":            {Blocks: BlockIO},
	"(*os/exec.Cmd).Wait":           {Blocks: BlockIO},
	"(*os/exec.Cmd).Output":         {Blocks: BlockIO},
	"(*os/exec.Cmd).CombinedOutput": {Blocks: BlockIO},
	// net/http.
	"(*net/http.Client).Do":              {Blocks: BlockIO},
	"(*net/http.Client).Get":             {Blocks: BlockIO},
	"(*net/http.Client).Post":            {Blocks: BlockIO},
	"net/http.ListenAndServe":            {Blocks: BlockIO},
	"(*net/http.Server).ListenAndServe":  {Blocks: BlockIO},
	"(*net/http.Server).Serve":           {Blocks: BlockIO},
	"(*net/http.Server).Shutdown":        {Blocks: BlockIO},
	// encoding/json stream decoding reads from the underlying reader.
	"(*encoding/json.Decoder).Decode": {Blocks: BlockIO},
	// encoding/binary: the wire-integer sources boundalloc taints.
	"encoding/binary.Uvarint":                {WireResults: 1},
	"encoding/binary.Varint":                 {WireResults: 1},
	"encoding/binary.ReadUvarint":            {Blocks: BlockIO, WireResults: 1},
	"encoding/binary.ReadVarint":             {Blocks: BlockIO, WireResults: 1},
	"(encoding/binary.ByteOrder).Uint16":     {WireResults: 1},
	"(encoding/binary.ByteOrder).Uint32":     {WireResults: 1},
	"(encoding/binary.ByteOrder).Uint64":     {WireResults: 1},
	"(encoding/binary.littleEndian).Uint16":  {WireResults: 1},
	"(encoding/binary.littleEndian).Uint32":  {WireResults: 1},
	"(encoding/binary.littleEndian).Uint64":  {WireResults: 1},
	"(encoding/binary.bigEndian).Uint16":     {WireResults: 1},
	"(encoding/binary.bigEndian).Uint32":     {WireResults: 1},
	"(encoding/binary.bigEndian).Uint64":     {WireResults: 1},
}

// calleeFunc resolves a call expression's static callee, or nil for
// dynamic calls (function values), builtins and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// addPackageFacts computes and records facts for one unit. Non-test
// files only: the analyzers that consume facts skip _test.go files,
// and test helpers would only widen the summaries. Iterates to a
// fixpoint so intra-package (mutual) recursion converges.
func (s *FactSet) addPackageFacts(u *Unit) *PackageFacts {
	pf := &PackageFacts{
		Schema:        FactSchema,
		Path:          u.Path,
		Funcs:         map[string]FuncFact{},
		taintedFields: map[string]bool{},
	}
	s.pkgs[u.Path] = pf

	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnDecl
	for _, f := range u.Files {
		if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := u.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, fnDecl{obj: obj, decl: fd})
		}
	}
	// Fixpoint: facts only grow (bit union), so iteration terminates.
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			ff := behaviorFact(u, s, fd.decl.Body)
			ff.WireResults = wireResultFact(u, s, pf, fd.obj, fd.decl)
			key := fd.obj.FullName()
			if pf.Funcs[key] != ff {
				pf.Funcs[key] = ff
				changed = true
			}
		}
	}
	for k, f := range pf.Funcs {
		if f.zero() {
			delete(pf.Funcs, k)
		}
	}
	return pf
}

// behaviorFact computes the Blocks/Spawns/Signals components for one
// function body. Goroutine bodies are excluded (they run
// asynchronously; their spawn is recorded, not their blocking), but
// deferred and stored closures are included — a safe
// over-approximation.
func behaviorFact(u *Unit, s *FactSet, body ast.Node) FuncFact {
	var ff FuncFact
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			ff.Spawns = true
			return false
		case *ast.SendStmt:
			ff.Blocks |= BlockChan
			ff.Signals = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ff.Blocks |= BlockChan
			}
		case *ast.RangeStmt:
			if tv, ok := u.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					ff.Blocks |= BlockChan
				}
			}
		case *ast.SelectStmt:
			// A select with a default case never blocks; walk only the
			// clause bodies so its comm operations are not miscounted.
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				ff.Blocks |= BlockChan
				return true
			}
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						ast.Inspect(st, walk)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if isBuiltin(u.Info, n, "close") {
				ff.Signals = true
				return true
			}
			if fn := calleeFunc(u.Info, n); fn != nil {
				cf := s.FuncFact(fn)
				ff.Blocks |= cf.Blocks
				ff.Signals = ff.Signals || cf.Signals
				ff.Spawns = ff.Spawns || cf.Spawns
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return ff
}

// wireResultFact computes the WireResults bitmask for one declared
// function: the taint engine runs over the body and every return
// statement's tainted (unclamped) expressions mark their result
// index. Struct fields assigned unclamped wire values taint reads of
// the same field within the package, so accessor methods propagate.
func wireResultFact(u *Unit, s *FactSet, pf *PackageFacts, obj *types.Func, decl *ast.FuncDecl) uint32 {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return 0
	}
	var mask uint32
	tw := newTaintWalker(u, s, pf)
	tw.onReturn = func(ret *ast.ReturnStmt) {
		for i, e := range ret.Results {
			if i < 32 && tw.tainted(e) {
				mask |= 1 << uint(i)
			}
		}
	}
	tw.walkBody(decl.Body)
	return mask
}

// taintWalker tracks, in statement order, which local variables carry
// unclamped wire-derived values. It deliberately approximates: taint
// propagates through arithmetic, conversions and multi-assignment; any
// guarding comparison that mentions a tainted variable clamps it (the
// canonical clamp compares against a named constant, but an equality
// check against a structurally implied size is just as binding); and
// control flow inside branches is walked with the current state. The
// analyzers built on it (boundalloc) only need "allocated with no
// prior validation at all" to be reliable.
type taintWalker struct {
	u   *Unit
	set *FactSet
	pf  *PackageFacts

	vars map[types.Object]bool

	// onReturn, onAlloc and onAssign are the client hooks; nil hooks
	// are skipped. onAlloc fires for make() size/cap arguments and
	// io.CopyN-style byte counts that are tainted at that point.
	onReturn func(*ast.ReturnStmt)
	onAlloc  func(pos token.Pos, what string, expr ast.Expr)
}

// newTaintWalker builds a walker over one function body.
func newTaintWalker(u *Unit, s *FactSet, pf *PackageFacts) *taintWalker {
	return &taintWalker{u: u, set: s, pf: pf, vars: map[types.Object]bool{}}
}

// fieldKey names a struct field for package-local field taint, or ""
// when the selector is not a field of a package-local named type.
func (t *taintWalker) fieldKey(sel *ast.SelectorExpr) string {
	s, ok := t.u.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != t.u.Path {
		return ""
	}
	return named.Obj().Name() + "." + sel.Sel.Name
}

// tainted reports whether the expression carries unclamped wire data.
func (t *taintWalker) tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := t.u.Info.Uses[e]
		if obj == nil {
			obj = t.u.Info.Defs[e]
		}
		return obj != nil && t.vars[obj]
	case *ast.ParenExpr:
		return t.tainted(e.X)
	case *ast.UnaryExpr:
		return t.tainted(e.X)
	case *ast.BinaryExpr:
		return t.tainted(e.X) || t.tainted(e.Y)
	case *ast.SelectorExpr:
		if key := t.fieldKey(e); key != "" && t.pf != nil && t.pf.taintedFields[key] {
			return true
		}
		return false
	case *ast.CallExpr:
		// A conversion propagates its operand's taint; min/max against
		// any bound is a clamp; a call with a wire-derived first result
		// is a source.
		if tv, ok := t.u.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return t.tainted(e.Args[0])
		}
		if isBuiltin(t.u.Info, e, "min") || isBuiltin(t.u.Info, e, "max") {
			return false
		}
		if fn := calleeFunc(t.u.Info, e); fn != nil {
			return t.set.FuncFact(fn).WireResults&1 != 0
		}
	}
	return false
}

// clampCond clears the taint of every variable (and package-local
// field) mentioned in a comparison inside the condition expression.
func (t *taintWalker) clampCond(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			t.clampExpr(bin.X)
			t.clampExpr(bin.Y)
		}
		return true
	})
}

// clampExpr clears taint from every identifier and field reached by
// the expression.
func (t *taintWalker) clampExpr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := t.u.Info.Uses[n]; obj != nil {
				delete(t.vars, obj)
			}
		case *ast.SelectorExpr:
			if key := t.fieldKey(n); key != "" && t.pf != nil {
				delete(t.pf.taintedFields, key)
			}
		}
		return true
	})
}

// assign records the taint flowing from one assignment or define.
func (t *taintWalker) assign(st *ast.AssignStmt) {
	// Multi-value call: x, n := wireFn(...) taints per result bit.
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
			var mask uint32
			if fn := calleeFunc(t.u.Info, call); fn != nil {
				mask = t.set.FuncFact(fn).WireResults
			}
			for i, lhs := range st.Lhs {
				t.setTaint(lhs, i < 32 && mask&(1<<uint(i)) != 0)
			}
			return
		}
	}
	for i, lhs := range st.Lhs {
		if i < len(st.Rhs) {
			t.setTaint(lhs, t.tainted(st.Rhs[i]))
		}
	}
}

// setTaint marks or clears one assignment target.
func (t *taintWalker) setTaint(lhs ast.Expr, tainted bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := t.u.Info.Defs[lhs]
		if obj == nil {
			obj = t.u.Info.Uses[lhs]
		}
		if obj == nil {
			return
		}
		if tainted {
			t.vars[obj] = true
		} else {
			delete(t.vars, obj)
		}
	case *ast.SelectorExpr:
		if key := t.fieldKey(lhs); key != "" && t.pf != nil && tainted {
			t.pf.taintedFields[key] = true
		}
	}
}

// checkAlloc fires the onAlloc hook for tainted allocation sizes in
// the expression: make() size/cap arguments and io.CopyN byte counts.
func (t *taintWalker) checkAlloc(e ast.Expr) {
	if t.onAlloc == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltin(t.u.Info, call, "make") {
			for i, arg := range call.Args[1:] {
				if t.tainted(arg) {
					what := "size"
					if i == 1 {
						what = "capacity"
					}
					t.onAlloc(arg.Pos(), "make "+what, arg)
				}
			}
		}
		if fn := calleeFunc(t.u.Info, call); fn != nil && fn.FullName() == "io.CopyN" && len(call.Args) == 3 {
			if t.tainted(call.Args[2]) {
				t.onAlloc(call.Args[2].Pos(), "io.CopyN byte count", call.Args[2])
			}
		}
		return true
	})
}

// recordComposite taints package-local fields set from tainted values
// in composite literals (T{field: wireValue}).
func (t *taintWalker) recordComposite(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		tv, ok := t.u.Info.Types[lit]
		if !ok {
			return true
		}
		typ := tv.Type
		if ptr, ok := typ.(*types.Pointer); ok {
			typ = ptr.Elem()
		}
		named, ok := typ.(*types.Named)
		if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != t.u.Path {
			return true
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if t.tainted(kv.Value) && t.pf != nil {
				t.pf.taintedFields[named.Obj().Name()+"."+key.Name] = true
			}
		}
		return true
	})
}

// walkBody runs the walker over a function body in statement order.
func (t *taintWalker) walkBody(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	t.walkStmts(body.List)
}

// walkStmts processes a statement list linearly, descending into
// branch and loop bodies with the current state (branch-local taint
// effects are a safe over-approximation for a lint).
func (t *taintWalker) walkStmts(stmts []ast.Stmt) {
	for _, st := range stmts {
		t.walkStmt(st)
	}
}

// walkStmt processes one statement.
func (t *taintWalker) walkStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			t.checkAlloc(rhs)
			t.recordComposite(rhs)
		}
		t.assign(st)
	case *ast.ExprStmt:
		t.checkAlloc(st.X)
	case *ast.DeferStmt:
		t.checkAlloc(st.Call)
	case *ast.GoStmt:
		// Runs asynchronously; argument expressions still evaluate here.
		for _, a := range st.Call.Args {
			t.checkAlloc(a)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			t.checkAlloc(e)
			t.recordComposite(e)
		}
		if t.onReturn != nil {
			t.onReturn(st)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			t.walkStmt(st.Init)
		}
		t.checkAlloc(st.Cond)
		t.clampCond(st.Cond)
		t.walkStmts(st.Body.List)
		if st.Else != nil {
			t.walkStmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			t.walkStmt(st.Init)
		}
		if st.Cond != nil {
			t.clampCond(st.Cond)
		}
		t.walkStmts(st.Body.List)
		if st.Post != nil {
			t.walkStmt(st.Post)
		}
	case *ast.RangeStmt:
		t.walkStmts(st.Body.List)
	case *ast.BlockStmt:
		t.walkStmts(st.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			t.walkStmt(st.Init)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				t.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				t.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				t.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		t.walkStmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						t.checkAlloc(vs.Values[i])
						if obj := t.u.Info.Defs[name]; obj != nil && t.tainted(vs.Values[i]) {
							t.vars[obj] = true
						}
					}
				}
			}
		}
	}
}

// Serialization: canonical JSON keyed by the export graph.

// encodeFacts renders a package's facts as canonical JSON (maps
// marshal with sorted keys, so equal facts are byte-equal).
func encodeFacts(pf *PackageFacts) ([]byte, error) {
	return json.MarshalIndent(pf, "", "  ")
}

// decodeFacts parses a serialized package fact summary, rejecting
// schema mismatches.
func decodeFacts(data []byte, wantPath string) (*PackageFacts, error) {
	var pf PackageFacts
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("lint: decoding facts: %v", err)
	}
	if pf.Schema != FactSchema {
		return nil, fmt.Errorf("lint: fact schema %d, want %d", pf.Schema, FactSchema)
	}
	if pf.Path != wantPath {
		return nil, fmt.Errorf("lint: facts for %q, want %q", pf.Path, wantPath)
	}
	if pf.Funcs == nil {
		pf.Funcs = map[string]FuncFact{}
	}
	pf.taintedFields = map[string]bool{}
	return &pf, nil
}

// factCacheKey derives the cache filename for one package: a digest of
// the fact schema, the import path, every source file's content, and
// the (already canonical) serialized facts of its module dependencies
// — the same dependency graph `go list -export` walked, so a change
// anywhere below a package invalidates its entry.
func factCacheKey(u *Unit, depFacts [][]byte, srcs [][]byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "simlint-facts/%d\n%s\n", FactSchema, u.Path)
	for _, src := range srcs {
		h.Write(src)
		h.Write([]byte{0})
	}
	for _, df := range depFacts {
		h.Write(df)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// loadOrComputeFacts resolves one unit's facts through the cache
// directory (when set), falling back to computation. depFacts are the
// serialized facts of the unit's module imports in sorted import-path
// order; srcs the unit's non-test source file contents.
func (s *FactSet) loadOrComputeFacts(u *Unit, cacheDir string, depFacts [][]byte, srcs [][]byte) ([]byte, error) {
	if cacheDir == "" {
		pf := s.addPackageFacts(u)
		return encodeFacts(pf)
	}
	key := factCacheKey(u, depFacts, srcs)
	path := filepath.Join(cacheDir, key+".json")
	if data, err := os.ReadFile(path); err == nil {
		if pf, err := decodeFacts(data, u.Path); err == nil {
			s.pkgs[u.Path] = pf
			return data, nil
		}
		// Corrupt or stale-schema entry: fall through and recompute.
	}
	pf := s.addPackageFacts(u)
	data, err := encodeFacts(pf)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return data, nil // cache unwritable: facts still computed
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err == nil {
		os.Rename(tmp, path)
	}
	return data, nil
}

// computeAllFacts populates the fact set for units in load order
// (dependencies first, the `go list -deps` contract), consulting the
// cache directory when configured. Returns the serialized facts per
// path so dependents can key their cache entries on them.
func computeAllFacts(units []*Unit, cacheDir string) (*FactSet, error) {
	set := NewFactSet()
	encoded := map[string][]byte{}
	for _, u := range units {
		var depFacts [][]byte
		var depPaths []string
		for _, imp := range u.Pkg.Imports() {
			if _, ok := encoded[imp.Path()]; ok {
				depPaths = append(depPaths, imp.Path())
			}
		}
		sort.Strings(depPaths)
		for _, p := range depPaths {
			depFacts = append(depFacts, encoded[p])
		}
		var srcs [][]byte
		if cacheDir != "" {
			for _, f := range u.Files {
				name := u.Fset.Position(f.Pos()).Filename
				if strings.HasSuffix(name, "_test.go") {
					continue
				}
				data, err := os.ReadFile(name)
				if err != nil {
					return nil, fmt.Errorf("lint: hashing %s: %v", name, err)
				}
				srcs = append(srcs, data)
			}
		}
		data, err := set.loadOrComputeFacts(u, cacheDir, depFacts, srcs)
		if err != nil {
			return nil, err
		}
		encoded[u.Path] = data
		u.Facts = set
	}
	return set, nil
}
