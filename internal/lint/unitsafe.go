package lint

import (
	"go/ast"
	"go/token"
)

// Unitsafe polices the boundary of the event.Cycle unit. Go's type
// system already refuses to mix Cycle with int variables implicitly;
// the remaining hole is the explicit conversion event.Cycle(x), which
// will happily launder a raw nanosecond integer, a float, or any other
// mis-denominated value into the timing domain. Inside the simulation
// packages a non-constant conversion to event.Cycle (or event.CPUCycle)
// is allowed only when:
//
//   - it is a dimensionless scale factor applied immediately to a
//     Cycle quantity — an operand of * or / whose sibling operand is
//     already Cycle-typed (REFI / Cycle(ranks), Cycle(n) * segLen); or
//   - it happens inside ropsim/internal/event itself, where the
//     sanctioned helpers (FromNanos, FromFloat, ToBus, ToCPU) live; or
//   - it carries a //simlint:cycles "why" annotation.
//
// Constant conversions (event.Cycle(280), const sentinels) are always
// fine: the unit is asserted at a single literal, not laundered from a
// variable.
var Unitsafe = &Analyzer{
	Name:     "unitsafe",
	Doc:      "flags non-constant conversions to event.Cycle outside the unit helpers and dimensionless scaling positions (escape: //simlint:cycles)",
	Suppress: "cycles",
	Run:      runUnitsafe,
}

func runUnitsafe(pass *Pass) {
	if !inSimDomain(pass.Path()) || pass.Path() == eventPkgPath {
		return
	}
	for _, f := range pass.Files {
		// parents maps each visited node to its parent so a conversion
		// can see the binary expression it sits in.
		parents := map[ast.Node]ast.Node{}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			if len(stack) > 0 {
				parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)

			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.Info().Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			isCycle := namedFrom(tv.Type, eventPkgPath, "Cycle")
			isCPU := namedFrom(tv.Type, eventPkgPath, "CPUCycle")
			if !isCycle && !isCPU {
				return true
			}
			// Constant argument: the unit is asserted at a literal.
			if av, ok := pass.Info().Types[call.Args[0]]; ok && av.Value != nil {
				return true
			}
			// Dimensionless scaling: Cycle(n) directly multiplying or
			// dividing a Cycle-typed sibling keeps the units sound
			// (scalar × cycles = cycles).
			node := unparen(call, parents)
			if bin, ok := parents[node].(*ast.BinaryExpr); ok &&
				(bin.Op == token.MUL || bin.Op == token.QUO) {
				var sibling ast.Expr = bin.X
				if ast.Node(bin.X) == node {
					sibling = bin.Y
				}
				if sv, ok := pass.Info().Types[sibling]; ok &&
					(namedFrom(sv.Type, eventPkgPath, "Cycle") || namedFrom(sv.Type, eventPkgPath, "CPUCycle")) {
					return true
				}
			}
			name := "Cycle"
			if isCPU {
				name = "CPUCycle"
			}
			pass.Reportf(call.Pos(),
				"non-constant conversion to event.%s mixes raw integer timing with the cycle domain; use event.FromNanos/event.FromFloat or annotate //simlint:cycles %q",
				name, "why the operand is already cycle-denominated")
			return true
		})
	}
}

// unparen walks up through enclosing parentheses.
func unparen(n ast.Node, parents map[ast.Node]ast.Node) ast.Node {
	for {
		p, ok := parents[n].(*ast.ParenExpr)
		if !ok {
			return n
		}
		n = p
	}
}
