package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Loading: simlint type-checks packages with the standard library only.
// `go list -export -deps -json` supplies, offline, everything the
// x/tools packages loader would: file lists per package and compiler
// export data for every dependency (standard library included). Target
// packages are then parsed with comments and type-checked by go/types
// through a gc-export-data importer. In-package _test.go files are
// type-checked together with their package so the test-aware analyzers
// (wallclock) see them; external _test packages (package foo_test) are
// rare in this repo and skipped — docs/LINT.md records the limitation.

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath  string
	Dir         string
	GoFiles     []string
	TestGoFiles []string
	Export      string
	Standard    bool
	Module      *struct{ Path string }
}

// goList runs `go list -export -deps -json` over patterns in dir and
// decodes the package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,Export,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup adapts a path→export-file map to the lookup function
// go/importer's gc mode expects.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Load lists, parses and type-checks the module packages matching
// patterns (relative to dir), returning one Unit per package with test
// files included. The packages must build; a compile error surfaces as
// a load error, which is the right failure mode for a lint gate.
// Cross-package facts are computed in dependency order (no cache).
func Load(dir string, patterns []string) ([]*Unit, error) {
	return LoadCached(dir, patterns, "")
}

// LoadCached is Load with a fact-cache directory: serialized
// per-package fact summaries (facts.go) are reused when a package's
// sources and its dependencies' facts are unchanged — the same
// `go list -export` package graph keys both the type-check and the
// cache. Empty cacheDir disables caching. This is the `simlint
// -factcache` path; CI points it at a restored actions/cache
// directory.
func LoadCached(dir string, patterns []string, cacheDir string) ([]*Unit, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []*listedPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	type parsed struct {
		pkg   *listedPackage
		files []*ast.File
	}
	var units []parsed
	testImports := map[string]bool{}
	for _, p := range targets {
		var files []*ast.File
		for _, lists := range [][]string{p.GoFiles, p.TestGoFiles} {
			for _, name := range lists {
				f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
				if err != nil {
					return nil, fmt.Errorf("parsing %s: %v", name, err)
				}
				files = append(files, f)
			}
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				path := imp.Path.Value
				path = path[1 : len(path)-1] // strip quotes
				if _, ok := exports[path]; !ok {
					testImports[path] = true
				}
			}
		}
		units = append(units, parsed{pkg: p, files: files})
	}

	// Test files may import packages outside the non-test dependency
	// graph (testing, os/exec, ...); fetch their export data with a
	// second listing.
	if len(testImports) > 0 {
		var missing []string
		for path := range testImports {
			missing = append(missing, path)
		}
		sort.Strings(missing)
		extra, err := goList(dir, missing)
		if err != nil {
			return nil, err
		}
		for _, p := range extra {
			if p.Export != "" {
				if _, ok := exports[p.ImportPath]; !ok {
					exports[p.ImportPath] = p.Export
				}
			}
		}
	}

	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Unit
	for _, u := range units {
		info := newTypesInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(u.pkg.ImportPath, fset, u.files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", u.pkg.ImportPath, err)
		}
		out = append(out, &Unit{
			Path:  u.pkg.ImportPath,
			Fset:  fset,
			Files: u.files,
			Pkg:   pkg,
			Info:  info,
		})
	}
	// `go list -deps` emits dependencies before dependents, and the
	// unit slice preserves that order, so the fact fixpoint for each
	// package sees finished summaries for everything it imports.
	if _, err := computeAllFacts(out, cacheDir); err != nil {
		return nil, err
	}
	return out, nil
}

// newTypesInfo allocates the go/types fact maps every analyzer needs.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
