package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Boundalloc turns the "hostile input never over-allocates" property
// of the trace readers and the campaign frame protocol from test
// coverage into a build-time invariant: an allocation size (a make()
// length or capacity, or an io.CopyN byte count) whose value is
// wire-derived — produced by encoding/binary decoding, or returned by
// a function the fact engine marks WireResults, in this package or any
// dependency — must pass an explicit clamp before the allocation.
//
// A clamp is any guarding comparison that mentions the tainted value:
// the canonical form compares against a named constant
// (`if n > maxFrame { return err }`), but an equality check against a
// structurally implied size (`if blockCount != wantBlocks`) binds just
// as hard. The taint analysis is function-local and statement-ordered;
// wire values stored unclamped into struct fields taint later reads of
// the same field within the package, so a constructor that validates
// before storing keeps its accessors clean. Escape:
// //simlint:boundalloc "why" — for sizes bounded by construction in a
// way the walker cannot see.
var Boundalloc = &Analyzer{
	Name:     "boundalloc",
	Doc:      "flags make()/io.CopyN sizes derived from wire input (encoding/binary, WireResults facts) with no clamping comparison before allocation (escape: //simlint:boundalloc)",
	Suppress: "boundalloc",
	Run:      runBoundalloc,
}

// wireDecodePackages are the packages that parse hostile bytes: the
// trace front-end (.ropt readers), the campaign frame protocol, and
// the workload decoders they feed.
var wireDecodePackages = map[string]bool{
	"ropsim/internal/trace":    true,
	"ropsim/internal/campaign": true,
	"ropsim/internal/workload": true,
}

func runBoundalloc(pass *Pass) {
	if !wireDecodePackages[pass.Path()] {
		return
	}
	pf := pass.Facts().Package(pass.Path())
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset().Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tw := newTaintWalker(pass.Unit, pass.Facts(), pf)
			tw.onAlloc = func(pos token.Pos, what string, expr ast.Expr) {
				pass.Reportf(pos,
					"%s %q derives from wire input with no clamping comparison before allocation; validate against a named bound first (escape: //simlint:boundalloc)",
					what, exprString(expr))
			}
			tw.walkBody(fd.Body)
		}
	}
}
