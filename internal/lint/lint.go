// Package lint is simlint: a family of static analyzers that enforce
// the reproduction's determinism, unit-safety and event-queue
// invariants at build time, before any campaign runs. The invariants it
// guards — no wall-clock or global RNG in the simulated domain, no
// map-iteration-order dependence in snapshot paths, no mixing of
// event.Cycle with raw integer timing values, no events scheduled into
// the past, no metric field left out of RegisterMetrics — are exactly
// the properties the byte-identical golden artifacts depend on; the
// runtime oracles and golden tests catch violations after they ship,
// simlint catches the whole class at `make lint` time.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, analysistest-style fixtures) but is self-contained
// on the standard library: packages are loaded through `go list
// -export` and type-checked with go/types against compiler export
// data, so the module needs no external dependencies. cmd/simlint is
// the multichecker binary; docs/LINT.md is the analyzer catalog.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// An Analyzer is one static check. Run inspects a type-checked package
// (a Pass) and reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in docs/LINT.md.
	Name string
	// Doc is the one-paragraph description shown by `simlint -help`.
	Doc string
	// Suppress is the simlint annotation name that silences this
	// analyzer's diagnostics when carried with a justification string
	// (e.g. "ordered" for //simlint:ordered "why"). Empty means the
	// analyzer cannot be suppressed.
	Suppress string
	// IncludeTests makes the analyzer inspect _test.go files too;
	// analyzers that only constrain shipped simulation code leave it
	// false.
	IncludeTests bool
	// Run performs the analysis on one package.
	Run func(*Pass)
}

// A Diagnostic is one finding, positioned and attributed to its
// analyzer. Diagnostics are plain data so cmd/simlint and the fixture
// harness can render or match them freely.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Justification carries, for the "simlint" pseudo-analyzer's
	// malformed/unused annotation findings, the annotation's quoted
	// justification string (empty for ordinary analyzer findings). It
	// rides along so `simlint -json` consumers see why an escape hatch
	// claimed to exist.
	Justification string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Unit is one type-checked package as produced by Load (or the
// fixture loader in linttest): syntax with comments, type information,
// and the import path the analyzers scope on.
type Unit struct {
	// Path is the package's import path (e.g. "ropsim/internal/dram").
	Path string
	// Fset positions every file in the unit.
	Fset *token.FileSet
	// Files holds the parsed sources, test files included.
	Files []*ast.File
	// Pkg and Info carry the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
	// Facts is the load-wide cross-package fact set (facts.go); the
	// loader populates it in dependency order, so by the time an
	// analyzer sees this unit, every imported module package already
	// has computed facts. Nil only for hand-built units in tests.
	Facts *FactSet
}

// A Pass connects one Analyzer to one Unit and collects its findings.
type Pass struct {
	Analyzer *Analyzer
	Unit     *Unit
	// Files is the file subset the analyzer should inspect: all files
	// when IncludeTests is set, non-test files otherwise.
	Files []*ast.File

	ann   *annotations
	diags *[]Diagnostic
}

// Fset returns the unit's file set.
func (p *Pass) Fset() *token.FileSet { return p.Unit.Fset }

// Pkg returns the unit's type-checked package.
func (p *Pass) Pkg() *types.Package { return p.Unit.Pkg }

// Info returns the unit's type information.
func (p *Pass) Info() *types.Info { return p.Unit.Info }

// Path returns the unit's import path.
func (p *Pass) Path() string { return p.Unit.Path }

// Facts returns the load-wide cross-package fact set. A nil result is
// safe to query: every FactSet method tolerates a nil receiver and
// still resolves the standard-library seed table, so analyzers never
// need to nil-check.
func (p *Pass) Facts() *FactSet { return p.Unit.Facts }

// IsTestFile reports whether the file at pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Unit.Fset.Position(pos).Filename, "_test.go")
}

// Reportf records a finding at pos unless a justified suppression
// annotation for this analyzer covers the position (package-, file- or
// line-scoped; see annotations.go). A matching but unjustified
// annotation does not suppress — the framework separately reports it as
// malformed, so an escape hatch can never be used silently.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Unit.Fset.Position(pos)
	if p.Analyzer.Suppress != "" {
		if a := p.ann.covering(p.Analyzer.Suppress, position.Filename, position.Line); a != nil && a.justified() {
			a.used = true
			return
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Options configures a Run over loaded units.
type Options struct {
	// ReportUnusedAnnotations adds a diagnostic for every justified
	// simlint annotation that suppressed nothing — a stale escape hatch
	// left behind after the violation it excused was fixed. This is the
	// `make lint-fix-check` mode.
	ReportUnusedAnnotations bool
}

// Run applies the analyzers to every unit and returns the combined
// findings sorted by position. Beyond the analyzers' own findings it
// reports, under the pseudo-analyzer name "simlint", every malformed
// annotation (unknown name, missing justification string) and — with
// Options.ReportUnusedAnnotations — every justified annotation that
// never suppressed a diagnostic.
func Run(units []*Unit, analyzers []*Analyzer, opts Options) []Diagnostic {
	diags, _ := RunTimed(units, analyzers, opts)
	return diags
}

// AnalyzerTiming is one analyzer's accumulated wall time across every
// unit of a run, for the `simlint -time` summary. Timing a *lint* in
// wall-clock terms is fine — the linter is host tooling, outside the
// simulated clock domain the wallclock analyzer polices.
type AnalyzerTiming struct {
	// Name is the analyzer name ("simlint" covers annotation parsing
	// and bookkeeping).
	Name string
	// Elapsed is the total wall time the analyzer's Run consumed.
	Elapsed time.Duration
}

// RunTimed is Run plus a per-analyzer wall-time summary, ordered by
// the analyzer order given (with the "simlint" annotation bookkeeping
// entry last).
func RunTimed(units []*Unit, analyzers []*Analyzer, opts Options) ([]Diagnostic, []AnalyzerTiming) {
	valid := map[string]bool{}
	for _, a := range analyzers {
		if a.Suppress != "" {
			valid[a.Suppress] = true
		}
	}
	elapsed := map[string]time.Duration{}
	var diags []Diagnostic
	for _, u := range units {
		annStart := time.Now()
		ann := parseAnnotations(u.Fset, u.Files, valid)
		elapsed["simlint"] += time.Since(annStart)
		for _, a := range analyzers {
			files := u.Files
			if !a.IncludeTests {
				files = nil
				for _, f := range u.Files {
					if !strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
						files = append(files, f)
					}
				}
			}
			pass := &Pass{Analyzer: a, Unit: u, Files: files, ann: ann, diags: &diags}
			start := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(start)
		}
		annStart = time.Now()
		for _, a := range ann.list {
			if a.malformed != "" {
				diags = append(diags, Diagnostic{Analyzer: "simlint", Pos: a.pos, Message: a.malformed, Justification: a.justification})
			} else if opts.ReportUnusedAnnotations && !a.used {
				diags = append(diags, Diagnostic{
					Analyzer: "simlint",
					Pos:      a.pos,
					Message: fmt.Sprintf("unused //simlint:%s annotation: it suppresses no diagnostic and should be removed",
						a.name),
					Justification: a.justification,
				})
			}
		}
		elapsed["simlint"] += time.Since(annStart)
	}
	timings := make([]AnalyzerTiming, 0, len(analyzers)+1)
	for _, a := range analyzers {
		timings = append(timings, AnalyzerTiming{Name: a.Name, Elapsed: elapsed[a.Name]})
	}
	timings = append(timings, AnalyzerTiming{Name: "simlint", Elapsed: elapsed["simlint"]})
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, timings
}

// All returns the full simlint analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Detmap, Wallclock, Unitsafe, EventDiscipline, MetricsReg,
		Ctxpoll, Goroleak, Boundalloc, Locksafe}
}

// simDomain is the set of deterministic simulation packages: everything
// that executes inside (or feeds) the simulated clock domain, where
// wall-clock time, global RNG and map-iteration order must never leak
// into results. Host-side orchestration (internal/runner, internal/lint
// itself) is excluded; internal/runner is additionally covered by
// wallclock through its package annotation.
var simDomain = map[string]bool{
	"ropsim/internal/addr":     true,
	"ropsim/internal/analysis": true,
	"ropsim/internal/cache":    true,
	"ropsim/internal/core":     true,
	"ropsim/internal/cpu":      true,
	"ropsim/internal/dram":     true,
	"ropsim/internal/energy":   true,
	"ropsim/internal/event":    true,
	"ropsim/internal/memctrl":  true,
	"ropsim/internal/sim":      true,
	"ropsim/internal/stats":    true,
	"ropsim/internal/trace":    true,
	"ropsim/internal/vldp":     true,
	"ropsim/internal/workload": true,
}

// inSimDomain reports whether the unit is one of the deterministic
// simulation packages.
func inSimDomain(path string) bool { return simDomain[path] }

// eventPkgPath is the home of the Cycle type and the sanctioned unit
// conversion helpers.
const eventPkgPath = "ropsim/internal/event"

// statsPkgPath is the metrics package whose primitive types metricsreg
// keys on.
const statsPkgPath = "ropsim/internal/stats"

// namedFrom reports whether t (or the pointee, for pointers) is the
// named type pkgPath.name, and returns the named type when so.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// baseFile returns the basename of the file containing pos, for
// messages that should not embed absolute paths.
func baseFile(fset *token.FileSet, pos token.Pos) string {
	return filepath.Base(fset.Position(pos).Filename)
}

// exprString renders an expression for use in diagnostics and for
// structural comparison of small expressions.
func exprString(e ast.Expr) string { return types.ExprString(e) }
