package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ropsim/internal/lint"
)

// TestLintDocComplete enforces the docs/LINT.md contract the same way
// TestRobustnessDocComplete enforces docs/ROBUSTNESS.md: every analyzer
// must have a catalog section, every escape-hatch annotation must be
// documented with its exact //simlint: spelling, and the entry points a
// user depends on must appear — so a new analyzer or annotation cannot
// land undocumented.
func TestLintDocComplete(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "docs", "LINT.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	for _, a := range lint.All() {
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc string", a.Name)
		}
		if !strings.Contains(text, "### "+a.Name) {
			t.Errorf("docs/LINT.md has no catalog section for analyzer %q", a.Name)
		}
		if a.Suppress == "" {
			t.Errorf("analyzer %s has no escape-hatch annotation", a.Name)
			continue
		}
		if !strings.Contains(text, "//simlint:"+a.Suppress) {
			t.Errorf("docs/LINT.md does not document the //simlint:%s escape hatch", a.Suppress)
		}
		if !strings.Contains(text, "`"+a.Suppress+"`") {
			t.Errorf("docs/LINT.md annotation-name list is missing `%s`", a.Suppress)
		}
	}

	// The annotation grammar's scope suffixes and the entry points.
	for _, needle := range []string{
		":file", ":package",
		"make lint", "make lint-fix-check",
		"cmd/simlint", "-unused", "-json", "-time", "-factcache",
		"TestRepoLintClean", "govulncheck",
		"## Cross-package facts", "WireResults",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("docs/LINT.md does not mention %q", needle)
		}
	}
}
