package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

func TestBlockClassString(t *testing.T) {
	cases := []struct {
		c    BlockClass
		want string
	}{
		{0, "none"},
		{BlockChan, "chan"},
		{BlockIO, "io"},
		{BlockLock, "lock"},
		{BlockCond, "cond"},
		{BlockChan | BlockIO, "chan|io"},
		{BlockChan | BlockIO | BlockLock | BlockCond, "chan|io|lock|cond"},
	}
	for _, tc := range cases {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("BlockClass(%d).String() = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestBlockClassMayBlock(t *testing.T) {
	c := BlockChan | BlockIO
	if !c.MayBlock(BlockChan) || !c.MayBlock(BlockIO | BlockLock) {
		t.Errorf("%v should intersect chan and io|lock", c)
	}
	if c.MayBlock(BlockLock | BlockCond) {
		t.Errorf("%v should not intersect lock|cond", c)
	}
}

func TestFuncFactZero(t *testing.T) {
	if !(FuncFact{}).zero() {
		t.Error("empty fact should be zero")
	}
	for _, f := range []FuncFact{
		{Blocks: BlockIO},
		{Spawns: true},
		{Signals: true},
		{WireResults: 1},
	} {
		if f.zero() {
			t.Errorf("%+v should not be zero", f)
		}
	}
}

// TestStdlibSeeds spot-checks the seed table entries the analyzers
// lean on hardest; a missing or misclassified seed silently disables a
// whole class of findings.
func TestStdlibSeeds(t *testing.T) {
	cases := []struct {
		name string
		want FuncFact
	}{
		{"(*sync.WaitGroup).Wait", FuncFact{Blocks: BlockChan}},
		{"(*sync.WaitGroup).Done", FuncFact{Signals: true}},
		{"(*sync.Mutex).Lock", FuncFact{Blocks: BlockLock}},
		{"(*sync.Cond).Wait", FuncFact{Blocks: BlockCond}},
		{"(io.Reader).Read", FuncFact{Blocks: BlockIO}},
		{"(io.Writer).Write", FuncFact{Blocks: BlockIO}},
		{"time.Sleep", FuncFact{Blocks: BlockIO}},
		{"(encoding/binary.littleEndian).Uint32", FuncFact{WireResults: 1}},
		{"(encoding/binary.ByteOrder).Uint32", FuncFact{WireResults: 1}},
	}
	for _, tc := range cases {
		got, ok := stdlibFacts[tc.name]
		if !ok {
			t.Errorf("stdlibFacts missing seed for %s", tc.name)
			continue
		}
		if got != tc.want {
			t.Errorf("stdlibFacts[%s] = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestFuncFactLookup exercises the computed-table path and the nil
// safety contract: every FactSet method must tolerate a nil receiver,
// because fixture loads may run analyzers without facts attached.
func TestFuncFactLookup(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", "package p\nfunc F() {}\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Defs: map[*ast.Ident]types.Object{}}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := pkg.Scope().Lookup("F").(*types.Func)
	if fn == nil {
		t.Fatal("no *types.Func for F")
	}

	var nilSet *FactSet
	if got := nilSet.FuncFact(fn); got != (FuncFact{}) {
		t.Errorf("nil FactSet lookup = %+v, want zero", got)
	}
	if nilSet.Package("p") != nil {
		t.Error("nil FactSet Package should be nil")
	}

	s := NewFactSet()
	if got := s.FuncFact(fn); got != (FuncFact{}) {
		t.Errorf("unknown func lookup = %+v, want zero", got)
	}
	s.pkgs["p"] = &PackageFacts{
		Schema: FactSchema,
		Path:   "p",
		Funcs:  map[string]FuncFact{"p.F": {Spawns: true}},
	}
	if got := s.FuncFact(fn); !got.Spawns {
		t.Errorf("computed lookup = %+v, want Spawns", got)
	}
	if got := s.FuncFact(nil); got != (FuncFact{}) {
		t.Errorf("nil func lookup = %+v, want zero", got)
	}
}

func TestEncodeDecodeFactsRoundTrip(t *testing.T) {
	pf := &PackageFacts{
		Schema: FactSchema,
		Path:   "ropsim/internal/x",
		Funcs: map[string]FuncFact{
			"x.A": {Blocks: BlockChan | BlockIO, Spawns: true},
			"x.B": {Signals: true, WireResults: 0b101},
		},
	}
	data, err := encodeFacts(pf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeFacts(data, "ropsim/internal/x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != FactSchema || got.Path != pf.Path {
		t.Errorf("header mismatch: %+v", got)
	}
	if len(got.Funcs) != 2 || got.Funcs["x.A"] != pf.Funcs["x.A"] || got.Funcs["x.B"] != pf.Funcs["x.B"] {
		t.Errorf("funcs mismatch: %+v", got.Funcs)
	}
	if got.taintedFields == nil {
		t.Error("decode must initialize taintedFields")
	}

	if _, err := decodeFacts(data, "ropsim/internal/y"); err == nil {
		t.Error("path mismatch should be rejected")
	}
	if _, err := decodeFacts([]byte(`{"schema":99,"path":"ropsim/internal/x"}`), "ropsim/internal/x"); err == nil {
		t.Error("schema mismatch should be rejected")
	}
	if _, err := decodeFacts([]byte("not json"), "ropsim/internal/x"); err == nil {
		t.Error("garbage should be rejected")
	}
}

func TestFactCacheKey(t *testing.T) {
	u := &Unit{Path: "ropsim/internal/x"}
	src := [][]byte{[]byte("package x\n")}
	dep := [][]byte{[]byte(`{"schema":1}`)}
	k1 := factCacheKey(u, dep, src)
	if k2 := factCacheKey(u, dep, src); k2 != k1 {
		t.Error("key must be deterministic")
	}
	if k := factCacheKey(u, dep, [][]byte{[]byte("package x // edited\n")}); k == k1 {
		t.Error("source change must change the key")
	}
	if k := factCacheKey(u, [][]byte{[]byte(`{"schema":1,"x":1}`)}, src); k == k1 {
		t.Error("dependency fact change must change the key")
	}
	if k := factCacheKey(&Unit{Path: "ropsim/internal/y"}, dep, src); k == k1 {
		t.Error("import path must change the key")
	}
}

// TestFactCacheRoundTrip drives loadOrComputeFacts through a real
// cache directory: the first call populates it, the second must be
// served from the file (observable because we tamper with the cached
// entry and see the tampered facts come back).
func TestFactCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	u := &Unit{Path: "ropsim/internal/x"} // no files: computes empty facts

	s1 := NewFactSet()
	data, err := s1.loadOrComputeFacts(u, dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want exactly one cache entry, got %v (err %v)", entries, err)
	}

	// Tamper: inject a fact into the cached file. A second load with
	// identical inputs must return the tampered content, proving the
	// cache was consulted rather than recomputed.
	tampered := []byte(`{"schema":1,"path":"ropsim/internal/x","funcs":{"x.T":{"spawns":true}}}`)
	if err := os.WriteFile(entries[0], tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := NewFactSet()
	data2, err := s2.loadOrComputeFacts(u, dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(tampered) {
		t.Errorf("second load bypassed the cache:\n%s", data2)
	}
	if !s2.pkgs["ropsim/internal/x"].Funcs["x.T"].Spawns {
		t.Error("cached facts not installed into the set")
	}

	// A corrupt entry must fall back to recomputation, not fail.
	if err := os.WriteFile(entries[0], []byte("corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := NewFactSet()
	data3, err := s3.loadOrComputeFacts(u, dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data3) != string(data) {
		t.Errorf("recomputed facts differ from original:\n%s\nvs\n%s", data3, data)
	}
}
