package lint

import (
	"go/ast"
	"go/types"
)

// MetricsReg closes the gap between declaring a metric and shipping it:
// a struct field of a stats metric type (Counter, AtomicCounter, Mean,
// Ratio, Histogram) that its type's RegisterMetrics method never
// touches silently disappears from every run artifact — the counter
// increments, nobody ever sees it. In the simulation packages every
// exported metric field of a type with a RegisterMetrics method must be
// referenced inside that method, and a type with exported metric fields
// but no RegisterMetrics method at all is flagged on the type.
// Deliberately unregistered metrics (scratch counters used only by
// tests) carry //simlint:unregistered "why".
var MetricsReg = &Analyzer{
	Name:     "metricsreg",
	Doc:      "flags exported stats metric fields not registered in their type's RegisterMetrics (escape: //simlint:unregistered)",
	Suppress: "unregistered",
	Run:      runMetricsReg,
}

// metricTypeNames are the stats primitives whose struct fields must be
// registered.
var metricTypeNames = []string{"Counter", "AtomicCounter", "Mean", "Ratio", "Histogram"}

func runMetricsReg(pass *Pass) {
	if !inSimDomain(pass.Path()) || pass.Path() == statsPkgPath {
		return
	}

	// Map every named struct type in the package to the FuncDecl of its
	// RegisterMetrics method, if any.
	regBodies := map[*types.Named]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "RegisterMetrics" || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			tv, ok := pass.Info().Types[fd.Recv.List[0].Type]
			if !ok {
				continue
			}
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				regBodies[named] = fd
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkMetricStruct(pass, ts, st, regBodies)
			}
		}
	}
}

// checkMetricStruct verifies one struct type's metric fields against
// its RegisterMetrics body.
func checkMetricStruct(pass *Pass, ts *ast.TypeSpec, st *ast.StructType, regBodies map[*types.Named]*ast.FuncDecl) {
	obj, ok := pass.Info().Defs[ts.Name]
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}

	// Collect the exported metric fields, keyed by field object.
	type metricField struct {
		name string
		pos  ast.Node
	}
	var fields []metricField
	fieldObjs := map[string]bool{}
	for _, fl := range st.Fields.List {
		for _, name := range fl.Names {
			if !name.IsExported() {
				continue
			}
			def, ok := pass.Info().Defs[name]
			if !ok {
				continue
			}
			if isMetricType(def.Type()) {
				fields = append(fields, metricField{name: name.Name, pos: name})
				fieldObjs[name.Name] = true
			}
		}
	}
	if len(fields) == 0 {
		return
	}

	fd, ok := regBodies[named]
	if !ok {
		pass.Reportf(ts.Pos(),
			"type %s has exported metric fields (%s, ...) but no RegisterMetrics method; its statistics never reach run artifacts",
			ts.Name.Name, fields[0].name)
		return
	}

	// Every selector referencing a field of this struct inside the
	// RegisterMetrics body marks that field as registered.
	registered := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.Info().Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		if fieldObjs[sel.Sel.Name] && selectionOn(selection, named) {
			registered[sel.Sel.Name] = true
		}
		return true
	})

	for _, f := range fields {
		if !registered[f.name] {
			pass.Reportf(f.pos.Pos(),
				"metric field %s.%s is not registered in RegisterMetrics; it will be missing from every run artifact (escape: //simlint:unregistered)",
				ts.Name.Name, f.name)
		}
	}
}

// selectionOn reports whether the selection's receiver resolves to the
// named struct (directly or through a pointer).
func selectionOn(sel *types.Selection, named *types.Named) bool {
	t := sel.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}

// isMetricType reports whether t is (a pointer to) one of the stats
// metric primitives.
func isMetricType(t types.Type) bool {
	for _, name := range metricTypeNames {
		if namedFrom(t, statsPkgPath, name) {
			return true
		}
	}
	return false
}
