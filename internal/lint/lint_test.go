package lint_test

import (
	"testing"

	"ropsim/internal/lint"
	"ropsim/internal/lint/linttest"
)

// Each analyzer is exercised against a hermetic GOPATH-style fixture
// tree under testdata/: every tree contains at least one violation that
// must fire, the analyzer's allowed idioms that must stay silent, a
// justified escape-hatch annotation that must suppress, and an
// unjustified annotation that must both fail to suppress and be
// reported itself.

func TestDetmap(t *testing.T) {
	linttest.Run(t, "testdata/detmap", lint.Detmap,
		"ropsim/internal/sim", "ropsim/internal/runner")
}

func TestWallclock(t *testing.T) {
	linttest.Run(t, "testdata/wallclock", lint.Wallclock,
		"ropsim/internal/core", "ropsim/internal/runner",
		"ropsim/internal/campaign")
}

func TestUnitsafe(t *testing.T) {
	linttest.Run(t, "testdata/unitsafe", lint.Unitsafe,
		"ropsim/internal/memctrl")
}

func TestEventDiscipline(t *testing.T) {
	linttest.Run(t, "testdata/eventdiscipline", lint.EventDiscipline,
		"ropsim/internal/cpu")
}

func TestMetricsReg(t *testing.T) {
	linttest.Run(t, "testdata/metricsreg", lint.MetricsReg,
		"ropsim/internal/memctrl")
}

func TestCtxpoll(t *testing.T) {
	linttest.Run(t, "testdata/ctxpoll", lint.Ctxpoll,
		"ropsim/internal/campaign")
}

func TestGoroleak(t *testing.T) {
	linttest.Run(t, "testdata/goroleak", lint.Goroleak,
		"ropsim/internal/runner")
}

func TestBoundalloc(t *testing.T) {
	linttest.Run(t, "testdata/boundalloc", lint.Boundalloc,
		"ropsim/internal/trace")
}

func TestLocksafe(t *testing.T) {
	linttest.Run(t, "testdata/locksafe", lint.Locksafe,
		"ropsim/internal/campaign")
}

// TestAnnotationScopes pins the scoping grammar's edge cases: a
// file-scope directive above the package clause, line scope beating an
// overlapping package scope, and two analyzers' annotations sharing a
// line with only the suppressing one counted as used.
func TestAnnotationScopes(t *testing.T) {
	linttest.RunSuite(t, "testdata/annscope",
		[]*lint.Analyzer{lint.Detmap, lint.Wallclock},
		lint.Options{ReportUnusedAnnotations: true},
		"ropsim/internal/sim")
}

func TestUnusedAnnotationReporting(t *testing.T) {
	linttest.RunWithOptions(t, "testdata/unused", lint.Detmap,
		lint.Options{ReportUnusedAnnotations: true},
		"ropsim/internal/sim")
}

// TestRepoLintClean is the self-enforcing gate: the full simlint suite,
// unused-annotation reporting included, must come back empty on the
// real tree. This is `make lint` run as a test, so a violation cannot
// land even on machines that only run `go test ./...`.
func TestRepoLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	units, err := lint.Load("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	diags := lint.Run(units, lint.All(), lint.Options{ReportUnusedAnnotations: true})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
