// Package linttest is the fixture harness for the simlint analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture
// packages live in GOPATH-style trees (srcRoot/src/<importpath>/*.go)
// and declare their expected diagnostics inline with
//
//	code() // want `regexp`
//
// comments — one backquoted regexp per expected diagnostic on that
// line. The harness runs one analyzer over the requested fixture
// packages and fails the test on any unexpected diagnostic and on any
// want pattern that matched nothing, so every fixture simultaneously
// proves its analyzer fires where it must and stays silent where it
// must not.
package linttest

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"ropsim/internal/lint"
)

// wantRE finds a want marker and captures its pattern list.
var wantRE = regexp.MustCompile("// want((?:\\s+`[^`]+`)+)")

// patRE extracts the individual backquoted patterns.
var patRE = regexp.MustCompile("`([^`]+)`")

// Run analyzes the fixture packages under srcRoot with analyzer a and
// matches diagnostics against the fixtures' want comments.
func Run(t *testing.T, srcRoot string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	RunWithOptions(t, srcRoot, a, lint.Options{}, pkgPaths...)
}

// RunWithOptions is Run with explicit framework options — used to
// exercise unused-annotation reporting (the lint-fix-check mode).
func RunWithOptions(t *testing.T, srcRoot string, a *lint.Analyzer, opts lint.Options, pkgPaths ...string) {
	t.Helper()
	RunSuite(t, srcRoot, []*lint.Analyzer{a}, opts, pkgPaths...)
}

// RunSuite runs several analyzers together over one fixture tree —
// the shape the annotation-scoping tests need, since which annotation
// names are valid (and which suppressions count as used) depends on
// the full analyzer set of a run.
func RunSuite(t *testing.T, srcRoot string, analyzers []*lint.Analyzer, opts lint.Options, pkgPaths ...string) {
	t.Helper()
	units, err := lint.LoadTree(srcRoot, pkgPaths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags := lint.Run(units, analyzers, opts)

	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	seen := map[string]bool{}
	for _, u := range units {
		for _, f := range u.Files {
			name := u.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("reading fixture: %v", err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				k := key{name, i + 1}
				for _, pm := range patRE.FindAllStringSubmatch(m[1], -1) {
					wants[k] = append(wants[k], pm[1])
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, pat := range wants[k] {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", k.file, k.line, pat, err)
			}
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, pats := range wants {
		for _, pat := range pats {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, pat)
		}
	}
}
