package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadTree loads analyzer fixture packages from a GOPATH-style tree:
// srcRoot/src/<importpath>/*.go, in the manner of analysistest. Only
// the requested paths become Units; packages they import are resolved
// from the same tree (type-checked from source, so fixtures can fake
// ropsim/internal/event and friends hermetically) or, failing that,
// from compiler export data via `go list -export`.
func LoadTree(srcRoot string, paths ...string) ([]*Unit, error) {
	l := &treeLoader{
		src:     filepath.Join(srcRoot, "src"),
		listDir: srcRoot,
		fset:    token.NewFileSet(),
		units:   map[string]*Unit{},
		exports: map[string]string{},
		loading: map[string]bool{},
		facts:   NewFactSet(),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", exportLookup(l.exports))
	var out []*Unit
	for _, p := range paths {
		u, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
	return out, nil
}

// treeLoader loads fixture packages on demand and doubles as the
// types.Importer for their import graphs.
type treeLoader struct {
	src     string // the tree's src directory
	listDir string // where `go list` runs for non-fixture imports
	fset    *token.FileSet
	units   map[string]*Unit
	exports map[string]string
	loading map[string]bool
	gc      types.Importer
	facts   *FactSet
}

// Import resolves an import path for the type checker: fixture packages
// from the tree, everything else from export data.
func (l *treeLoader) Import(path string) (*types.Package, error) {
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		u, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	if _, ok := l.exports[path]; !ok {
		pkgs, err := goList(l.listDir, []string{path})
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				if _, ok := l.exports[p.ImportPath]; !ok {
					l.exports[p.ImportPath] = p.Export
				}
			}
		}
	}
	return l.gc.Import(path)
}

// load parses and type-checks one fixture package.
func (l *treeLoader) load(path string) (*Unit, error) {
	if u, ok := l.units[path]; ok {
		return u, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %s: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("fixture package %s: no .go files", path)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing fixture %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	u := &Unit{Path: path, Fset: l.fset, Files: files, Pkg: pkg, Info: info, Facts: l.facts}
	l.units[path] = u
	// Fixture imports resolve through Import above, so every fixture
	// dependency finished its own load — and fact computation — before
	// this package's type check returned; dependency order holds here
	// just as it does in LoadCached.
	l.facts.addPackageFacts(u)
	return u, nil
}
