package lint

import (
	"go/ast"
	"go/types"
)

// Wallclock flags host-time and global-RNG escapes inside the
// simulated domain: time.Now/Since/Until/Sleep and the package-level
// math/rand functions that share the global generator. Simulated time
// advances only through the event queue, and every random stream must
// be an explicitly seeded rand.New(rand.NewSource(seed)) owned by one
// component — anything else makes runs diverge between hosts or
// repetitions. Host-side code that legitimately measures wall time (the
// runner pool, the simulation watchdog) carries a file- or
// package-scoped //simlint:hostcode annotation. The analyzer inspects
// _test.go files too: tests feed the same golden artifacts.
//
// Beyond the simulated domain, the analyzer also covers host-side
// packages whose testability depends on an injected clock seam
// (wallclockHostPackages): internal/campaign must route every
// heartbeat and deadline through its Clock interface so lease expiry
// is reproducible under test, with zero escape hatches.
var Wallclock = &Analyzer{
	Name:         "wallclock",
	Doc:          "flags time.Now/Since/Until/Sleep and global math/rand use in simulation packages (escape: //simlint:hostcode)",
	Suppress:     "hostcode",
	IncludeTests: true,
	Run:          runWallclock,
}

// wallclockTimeFuncs are the time package functions that read or wait
// on the host clock.
var wallclockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
}

// wallclockGlobalRand are the math/rand package-level functions backed
// by the shared global generator. Constructors (New, NewSource,
// NewZipf) are fine: they build explicitly seeded local generators.
var wallclockGlobalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
}

// wallclockHostPackages are host-side packages the analyzer covers in
// addition to the simulated domain. The runner pool is included so its
// sanctioned host-timing stays confined to its package annotation; the
// campaign coordinator/worker is included so every heartbeat and
// deadline goes through the injected Clock seam (no annotation exists
// there — the package must stay violation-free outright). The worker
// binary and the experiment driver's worker loop are included for the
// same reason: they host campaign sessions, so any wall-clock use must
// either flow through the Clock seam or carry an explicit
// //simlint:hostcode justification where wall time genuinely is the
// job.
var wallclockHostPackages = map[string]bool{
	"ropsim/internal/runner":   true,
	"ropsim/internal/campaign": true,
	"ropsim/cmd/ropworker":     true,
	"ropsim/cmd/ropexp":        true,
}

func runWallclock(pass *Pass) {
	if !inSimDomain(pass.Path()) && !wallclockHostPackages[pass.Path()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info().Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods are fine: rand.Rand.Intn on an explicitly seeded
			// generator is exactly the sanctioned pattern — only the
			// package-level functions share global state.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallclockTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the host clock inside the simulated domain; simulated time comes from the event queue (escape: //simlint:hostcode)",
						fn.Name())
				}
			case "math/rand":
				if wallclockGlobalRand[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"rand.%s uses the global generator; use an explicitly seeded rand.New(rand.NewSource(seed)) so runs are reproducible",
						fn.Name())
				}
			}
			return true
		})
	}
}
