package lint

import (
	"go/ast"
	"go/token"
)

// Goroleak requires every `go` statement in the campaign and runner
// packages to have a join path — some way for the spawner (or an
// observer) to learn the goroutine finished, so shutdown can't strand
// work mid-write and tests can't leak goroutines between cases. Two
// shapes satisfy it:
//
//  1. Add-before-spawn: a sync.WaitGroup .Add call appears earlier in
//     the same function body than the `go` statement, the classic
//     wg.Add(1); go func() { defer wg.Done(); ... }() lifecycle.
//  2. Signalling body: the spawned function itself signals completion —
//     it sends on a channel, closes one, or calls WaitGroup.Done
//     (directly, or through a callee the fact engine marks Signals) —
//     so a receiver holds the join.
//
// Anything else is a naked goroutine and a finding. The analysis is a
// per-function over-approximation (an Add anywhere earlier in the
// function vouches for every later spawn; any transitive signal
// counts), which keeps the sanctioned idioms quiet while still
// refusing fire-and-forget spawns with no completion story at all.
// Escape: //simlint:goroleak "why" — for goroutines that are
// deliberately unjoined because joining could block shutdown behind a
// wedged peer (the coordinator's per-connection handlers; the chaos
// suite pins that drain survives a SIGSTOP'd worker).
var Goroleak = &Analyzer{
	Name:     "goroleak",
	Doc:      "flags `go` statements in internal/campaign and internal/runner with no join path (WaitGroup add-before-spawn, done channel, or signalling body) (escape: //simlint:goroleak)",
	Suppress: "goroleak",
	Run:      runGoroleak,
}

func runGoroleak(pass *Pass) {
	if !concurrencyPackages[pass.Path()] {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpawns(pass, fd.Body)
		}
	}
}

// checkSpawns flags unjoined go statements in one function body,
// treating nested function literals as part of the same body (an Add
// in the enclosing function still precedes a spawn inside a closure).
func checkSpawns(pass *Pass, body *ast.BlockStmt) {
	addPositions := waitGroupAdds(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		for _, addPos := range addPositions {
			if addPos < gs.Pos() {
				return true // add-before-spawn
			}
		}
		if spawnSignals(pass, gs.Call) {
			return true // done channel / WaitGroup.Done in the body
		}
		pass.Reportf(gs.Pos(),
			"goroutine has no join path: add to a WaitGroup before spawning, or have the body signal completion (done channel, close, WaitGroup.Done) (escape: //simlint:goroleak)")
		return true
	})
}

// waitGroupAdds collects the positions of every sync.WaitGroup .Add
// call in the body.
func waitGroupAdds(pass *Pass, body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info(), call)
		if fn != nil && fn.FullName() == "(*sync.WaitGroup).Add" {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// spawnSignals reports whether the spawned call's body signals
// completion: for a function literal, the behavior fact of the literal
// body; for a named function or method, its fact-engine summary.
func spawnSignals(pass *Pass, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ff := behaviorFact(pass.Unit, pass.Facts(), lit.Body)
		return ff.Signals
	}
	if fn := calleeFunc(pass.Info(), call); fn != nil {
		return pass.Facts().FuncFact(fn).Signals
	}
	return false
}
