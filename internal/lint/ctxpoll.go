package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxpoll guards the coordinator drain/abort and worker reconnect
// paths: a loop in the campaign or runner packages that can block —
// directly on a channel operation, or through a callee the fact engine
// knows may block on channels, I/O or a condition variable — must stay
// cancellable, by selecting on ctx.Done() or polling ctx.Err() on the
// loop's own path. The check applies only inside functions that
// actually have a context.Context in scope (parameter, local, or
// captured); loops governed by other cancellation mechanisms (the
// coordinator's done channel) are out of its jurisdiction. Nested
// function literals and `go` statements are excluded from a loop's
// blocking scan — their bodies run on another goroutine or at another
// time — and likewise cannot satisfy the consult requirement for the
// enclosing loop. Escape: //simlint:ctxpoll "why" for loops whose
// blocking is bounded by other means (e.g. a Cond.Wait drain loop
// whose waiters are themselves ctx-bound).
var Ctxpoll = &Analyzer{
	Name:     "ctxpoll",
	Doc:      "flags blocking loops in internal/campaign and internal/runner that never consult their context.Context (escape: //simlint:ctxpoll)",
	Suppress: "ctxpoll",
	Run:      runCtxpoll,
}

// concurrencyPackages are the host-side packages whose goroutine and
// lock discipline the byte-identical-artifact guarantee depends on:
// the distributed campaign service and the local runner pool. ctxpoll,
// goroleak and locksafe all scope here.
var concurrencyPackages = map[string]bool{
	"ropsim/internal/campaign": true,
	"ropsim/internal/runner":   true,
}

// ctxBlockMask is the blocking classes a loop must stay cancellable
// against. BlockLock is excluded: lock acquisition is bounded by
// locksafe's no-blocking-while-held rule, not by cancellation.
const ctxBlockMask = BlockChan | BlockIO | BlockCond

func runCtxpoll(pass *Pass) {
	if !concurrencyPackages[pass.Path()] {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasContextInScope(pass, fd) {
				continue
			}
			checkLoops(pass, fd.Body)
		}
	}
}

// hasContextInScope reports whether the function declares, receives or
// references any context.Context-typed identifier — the gate for
// ctxpoll's jurisdiction.
func hasContextInScope(pass *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := pass.Info().Uses[id]
		if obj == nil {
			obj = pass.Info().Defs[id]
		}
		if obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkLoops walks a body, flagging blocking loops that never consult
// a context.
func checkLoops(pass *Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		var loopBody *ast.BlockStmt
		var cond ast.Expr
		switch n := n.(type) {
		case *ast.ForStmt:
			loopBody = n.Body
			cond = n.Cond
		case *ast.RangeStmt:
			loopBody = n.Body
		default:
			return true
		}
		blocks := loopBlocking(pass, loopBody)
		if blocks == 0 {
			return true
		}
		if loopConsultsCtx(pass, loopBody, cond) {
			return true
		}
		pass.Reportf(n.Pos(),
			"loop may block (%s) without consulting its context: select on ctx.Done() or poll ctx.Err() so cancellation can interrupt it (escape: //simlint:ctxpoll)",
			blocks)
		return true
	})
}

// loopBlocking computes the blocking classes reachable on a loop
// body's own goroutine and iteration: channel operations, selects
// without a default, ranges over channels, and calls whose fact
// engine summary intersects ctxBlockMask. FuncLit and GoStmt subtrees
// are skipped.
func loopBlocking(pass *Pass, body *ast.BlockStmt) BlockClass {
	var blocks BlockClass
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			blocks |= BlockChan
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocks |= BlockChan
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info().Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					blocks |= BlockChan
				}
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					return true // has default: never blocks
				}
			}
			blocks |= BlockChan
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info(), n); fn != nil {
				blocks |= pass.Facts().FuncFact(fn).Blocks & ctxBlockMask
			}
		}
		return true
	})
	return blocks
}

// loopConsultsCtx reports whether the loop body (or its condition)
// receives from a context's Done() channel or calls its Err() method,
// outside nested function literals.
func loopConsultsCtx(pass *Pass, body *ast.BlockStmt, cond ast.Expr) bool {
	consults := false
	check := func(n ast.Node) bool {
		if consults {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return true
		}
		if tv, ok := pass.Info().Types[sel.X]; ok && isContextType(tv.Type) {
			consults = true
			return false
		}
		return true
	}
	ast.Inspect(body, check)
	if cond != nil && !consults {
		ast.Inspect(cond, check)
	}
	return consults
}
