package lint

import (
	"go/ast"
	"go/types"
)

// Detmap flags `range` over a map in the deterministic simulation
// packages. Go randomizes map iteration order per run, so any map range
// whose effect depends on visit order — building a report, emitting a
// snapshot, breaking a tie — silently destroys byte-reproducibility.
// The one allowed shape is the collect-keys idiom, whose body is exactly
// one append of the key into a slice (to be sorted before use):
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//
// Genuinely order-independent folds (summing values, set union) carry a
// //simlint:ordered "why" annotation instead.
var Detmap = &Analyzer{
	Name:     "detmap",
	Doc:      "flags map iteration in deterministic packages unless keys are collected for sorting or the loop is annotated //simlint:ordered",
	Suppress: "ordered",
	Run:      runDetmap,
}

func runDetmap(pass *Pass) {
	if !inSimDomain(pass.Path()) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info().Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollectLoop(rng) {
				return true
			}
			pass.Reportf(rng.Pos(),
				"range over map is iteration-order dependent; collect the keys into a slice and sort it, or annotate the loop with //simlint:ordered %q",
				"why order cannot matter")
			return true
		})
	}
}

// isKeyCollectLoop reports whether the range statement is the allowed
// collect-keys idiom: key variable bound, value ignored, and a body of
// exactly one `s = append(s, k)`.
func isKeyCollectLoop(rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rng.Value != nil {
		if v, ok := rng.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	// The appended element must be the key, and the append target the
	// assignment's destination.
	if arg, ok := call.Args[1].(*ast.Ident); !ok || arg.Name != key.Name {
		return false
	}
	return exprString(assign.Lhs[0]) == exprString(call.Args[0])
}
