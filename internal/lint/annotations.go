package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// simlint annotations are the suite's escape hatches. Grammar:
//
//	//simlint:NAME "justification"            (line scope)
//	//simlint:NAME:file "justification"       (whole file)
//	//simlint:NAME:package "justification"    (whole package, incl. tests)
//
// NAME is an analyzer's Suppress name (ordered, hostcode, cycles,
// discipline, unregistered). The justification string is mandatory: an
// annotation without one never suppresses and is itself reported, so a
// silent escape cannot land. A line-scoped annotation covers the line
// it sits on (trailing comment) and the line immediately after its
// comment group (preceding comment). docs/LINT.md documents the syntax
// with worked examples.

type annScope int

const (
	scopeLine annScope = iota
	scopeFile
	scopePackage
)

// annotation is one parsed //simlint: directive.
type annotation struct {
	name          string
	scope         annScope
	justification string
	file          string // filename carrying the annotation
	lines         [2]int // line-scope: lines the annotation covers
	pos           token.Position
	malformed     string // non-empty: why the directive is invalid
	used          bool   // a diagnostic was suppressed by it
}

// justified reports whether the annotation is valid and carries a
// justification.
func (a *annotation) justified() bool {
	return a.malformed == "" && a.justification != ""
}

// annotations indexes every simlint directive of one package.
type annotations struct {
	list []*annotation
}

// directiveRE matches "//simlint:name" or "//simlint:name:scope",
// leaving the remainder (justification) for separate validation.
var directiveRE = regexp.MustCompile(`^//simlint:([a-z]+)(?::(file|package))?(?:\s+(.*))?$`)

// justificationRE requires a double-quoted, non-empty string. A
// trailing //-comment after the string is tolerated (fixture files use
// it for // want markers).
var justificationRE = regexp.MustCompile(`^"([^"]+)"\s*(?://.*)?$`)

// parseAnnotations scans the files' comments for simlint directives.
// valid is the set of known annotation names (the analyzers' Suppress
// names); unknown names are recorded as malformed so typos fail loudly
// instead of silently not suppressing.
func parseAnnotations(fset *token.FileSet, files []*ast.File, valid map[string]bool) *annotations {
	known := make([]string, 0, len(valid))
	for name := range valid {
		known = append(known, name)
	}
	sort.Strings(known)
	anns := &annotations{}
	for _, f := range files {
		filename := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//simlint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				a := &annotation{file: filename, pos: pos}
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					a.malformed = fmt.Sprintf("malformed simlint annotation %q", c.Text)
					anns.list = append(anns.list, a)
					continue
				}
				a.name = m[1]
				switch m[2] {
				case "file":
					a.scope = scopeFile
				case "package":
					a.scope = scopePackage
				default:
					a.scope = scopeLine
					// Cover the directive's own line (trailing form) and
					// the line right after the comment group (preceding
					// form).
					a.lines = [2]int{pos.Line, fset.Position(cg.End()).Line + 1}
				}
				if !valid[a.name] {
					a.malformed = fmt.Sprintf("unknown simlint annotation name %q (known: %s)", a.name, strings.Join(known, ", "))
					anns.list = append(anns.list, a)
					continue
				}
				jm := justificationRE.FindStringSubmatch(strings.TrimSpace(m[3]))
				if jm == nil {
					a.malformed = fmt.Sprintf("simlint annotation //simlint:%s requires a non-empty quoted justification string", a.name)
					anns.list = append(anns.list, a)
					continue
				}
				a.justification = jm[1]
				anns.list = append(anns.list, a)
			}
		}
	}
	return anns
}

// covering returns a valid annotation of the given name whose scope
// covers (file, line), or nil. Line scope wins over file scope over
// package scope, though any match suffices to suppress.
func (s *annotations) covering(name, file string, line int) *annotation {
	var match *annotation
	for _, a := range s.list {
		if a.name != name || a.malformed != "" {
			continue
		}
		switch a.scope {
		case scopeLine:
			if a.file == file && (a.lines[0] == line || a.lines[1] == line) {
				return a
			}
		case scopeFile:
			if a.file == file {
				match = a
			}
		case scopePackage:
			if match == nil {
				match = a
			}
		}
	}
	return match
}
