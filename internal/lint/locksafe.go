package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Locksafe enforces two lock-discipline rules in the campaign and
// runner packages, where a stalled critical section stalls the whole
// campaign:
//
//  1. No blocking while held: between a sync.Mutex/RWMutex Lock (or
//     RLock) and the matching Unlock, the function must not perform a
//     channel send/receive, a select without a default, a range over a
//     channel, or a call whose fact-engine summary says it may block
//     on channels or I/O. sync.Cond.Wait is explicitly allowed — it
//     requires the held lock and releases it while waiting. A deferred
//     unlock keeps the lock held to the end of the function, so the
//     rule covers everything after the Lock.
//  2. Unlock must cover every return: a return reached while a lock is
//     held — no explicit unlock on the path, no deferred unlock
//     registered — is a finding; `defer mu.Unlock()` is the sanctioned
//     shape because it dominates every return by construction.
//
// The tracking is statement-ordered and per-function, with branch
// bodies analyzed under a cloned lock set and rejoined by
// intersection: a lock released on every branch (the Memo.Do
// early-unlock idiom) is released afterward, a lock only conditionally
// released stays held for rule 2's purposes on the fall-through path.
// Calls through function values are invisible to the fact engine and
// not checked. Locks are identified by their receiver expression text
// ("c.mu"), so aliasing a mutex through a pointer copy evades the
// analysis — don't. Escape: //simlint:locksafe "why" — for locks whose
// job is to serialize the blocking operation itself (the campaign
// frame-write mutex).
var Locksafe = &Analyzer{
	Name:     "locksafe",
	Doc:      "flags channel operations, blocking calls, and uncovered returns while a sync.Mutex/RWMutex is held in internal/campaign and internal/runner (escape: //simlint:locksafe)",
	Suppress: "locksafe",
	Run:      runLocksafe,
}

// locksafeBlockMask is the blocking classes forbidden while holding a
// lock. BlockLock is excluded (nested ordered locking is a deadlock
// question this lint does not decide) and BlockCond is excluded
// (Cond.Wait requires the held lock).
const locksafeBlockMask = BlockChan | BlockIO

func runLocksafe(pass *Pass) {
	if !concurrencyPackages[pass.Path()] {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lt := &lockTracker{pass: pass, held: map[string]bool{}, deferred: map[string]bool{}}
			lt.walkStmts(fd.Body.List)
		}
	}
}

// lockTracker walks one function in statement order, maintaining the
// set of held lock keys (receiver expression text) and the set with a
// deferred unlock registered.
type lockTracker struct {
	pass     *Pass
	held     map[string]bool
	deferred map[string]bool
	// terminated marks a state that ended in a return: it never reaches
	// the statement after its branch, so join skips it.
	terminated bool
}

// lockMethod classifies a call as a lock acquisition or release on a
// sync.Mutex/RWMutex receiver, returning the lock key and which.
func (lt *lockTracker) lockMethod(call *ast.CallExpr) (key string, acquire, release bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn := calleeFunc(lt.pass.Info(), call)
	if fn == nil {
		return "", false, false
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		return exprString(sel.X), true, false
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		return exprString(sel.X), false, true
	}
	return "", false, false
}

// clone copies the tracker state for a branch body.
func (lt *lockTracker) clone() *lockTracker {
	c := &lockTracker{pass: lt.pass, held: map[string]bool{}, deferred: map[string]bool{}}
	for k := range lt.held {
		c.held[k] = true
	}
	for k := range lt.deferred {
		c.deferred[k] = true
	}
	return c
}

// join rejoins branch states: a lock is held afterward only if every
// falling-through branch leaves it held (intersection); deferred
// unlocks accumulate (union — a defer registered on any path is
// registered for the rest of the function at runtime only on that
// path, but treating it as registered is the quiet direction for
// rule 2 and does not weaken rule 1, which keys on held alone).
// Branches that ended in a return never reach the statement after the
// construct and are excluded; if every branch returned, the current
// state stands (the fall-through is unreachable anyway).
func (lt *lockTracker) join(branches ...*lockTracker) {
	live := branches[:0:0]
	for _, b := range branches {
		if !b.terminated {
			live = append(live, b)
		}
	}
	if len(live) == 0 {
		return
	}
	for k := range lt.held {
		for _, b := range live {
			if !b.held[k] {
				delete(lt.held, k)
				break
			}
		}
	}
	for _, b := range live {
		for k := range b.deferred {
			lt.deferred[k] = true
		}
	}
}

// anyHeld reports whether any lock is currently held, returning one
// key for the message.
func (lt *lockTracker) anyHeld() (string, bool) {
	for k := range lt.held {
		return k, true
	}
	return "", false
}

// heldWithoutDefer returns a held lock with no deferred unlock
// registered, if any.
func (lt *lockTracker) heldWithoutDefer() (string, bool) {
	for k := range lt.held {
		if !lt.deferred[k] {
			return k, true
		}
	}
	return "", false
}

// checkBlocking flags blocking operations in the expression while a
// lock is held. FuncLit subtrees are skipped (they run later, not in
// the critical section); lock/unlock calls themselves are handled by
// the caller.
func (lt *lockTracker) checkBlocking(n ast.Node) {
	key, held := lt.anyHeld()
	if !held || n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			lt.pass.Reportf(n.Pos(), "channel send while %s is held; move it after the unlock (escape: //simlint:locksafe)", key)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				lt.pass.Reportf(n.Pos(), "channel receive while %s is held; move it after the unlock (escape: //simlint:locksafe)", key)
			}
		case *ast.CallExpr:
			if k, acq, rel := lt.lockMethod(n); k != "" && (acq || rel) {
				return true
			}
			if fn := calleeFunc(lt.pass.Info(), n); fn != nil {
				if blocks := lt.pass.Facts().FuncFact(fn).Blocks & locksafeBlockMask; blocks != 0 {
					lt.pass.Reportf(n.Pos(), "call to %s may block (%s) while %s is held (escape: //simlint:locksafe)",
						fn.Name(), blocks, key)
				}
			}
		}
		return true
	})
}

// walkStmts processes a statement list in order.
func (lt *lockTracker) walkStmts(stmts []ast.Stmt) {
	for _, st := range stmts {
		lt.walkStmt(st)
	}
}

// applyCalls updates held/deferred for lock method calls in the
// expression (in source order, which Inspect provides).
func (lt *lockTracker) applyCalls(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, acq, rel := lt.lockMethod(call); key != "" {
			if acq {
				lt.held[key] = true
			} else if rel {
				delete(lt.held, key)
				delete(lt.deferred, key)
			}
		}
		return true
	})
}

// walkStmt processes one statement: first rule-1 blocking checks under
// the pre-state, then lock-state updates, descending into compound
// statements with clone/join.
func (lt *lockTracker) walkStmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		lt.checkBlocking(st)
		lt.applyCalls(st)
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt:
		lt.checkBlocking(st)
		lt.applyCalls(st)
	case *ast.SendStmt:
		lt.checkBlocking(st)
	case *ast.DeferStmt:
		if key, _, rel := lt.lockMethod(st.Call); rel {
			lt.deferred[key] = true
		}
		// A deferred call's body runs at return; its argument
		// expressions evaluate now but cannot block in the shapes this
		// rule covers.
	case *ast.ReturnStmt:
		lt.checkBlocking(st)
		if key, bad := lt.heldWithoutDefer(); bad {
			lt.pass.Reportf(st.Pos(),
				"return while %s is held with no deferred unlock; use `defer %s.Unlock()` so every return releases it (escape: //simlint:locksafe)",
				key, key)
		}
		lt.terminated = true
	case *ast.IfStmt:
		if st.Init != nil {
			lt.walkStmt(st.Init)
		}
		lt.checkBlocking(st.Cond)
		lt.applyCalls(st.Cond)
		thenBr := lt.clone()
		thenBr.walkStmts(st.Body.List)
		elseBr := lt.clone()
		if st.Else != nil {
			elseBr.walkStmt(st.Else)
		}
		// A branch ending in return/panic doesn't constrain the
		// fall-through state; approximating by intersection of both
		// branch exits is still safe for rule 1 and matches the
		// early-unlock idiom for rule 2.
		lt.join(thenBr, elseBr)
	case *ast.ForStmt:
		if st.Init != nil {
			lt.walkStmt(st.Init)
		}
		lt.checkBlocking(st.Cond)
		body := lt.clone()
		body.walkStmts(st.Body.List)
		if st.Post != nil {
			body.walkStmt(st.Post)
		}
		lt.join(body)
	case *ast.RangeStmt:
		lt.checkBlocking(st.X)
		if key, held := lt.anyHeld(); held {
			if tv, ok := lt.pass.Info().Types[st.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					lt.pass.Reportf(st.Pos(), "range over a channel while %s is held (escape: //simlint:locksafe)", key)
				}
			}
		}
		body := lt.clone()
		body.walkStmts(st.Body.List)
		lt.join(body)
	case *ast.BlockStmt:
		lt.walkStmts(st.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			lt.walkStmt(st.Init)
		}
		lt.checkBlocking(st.Tag)
		var branches []*lockTracker
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				b := lt.clone()
				b.walkStmts(cc.Body)
				branches = append(branches, b)
			}
		}
		if len(branches) > 0 {
			lt.join(branches...)
		}
	case *ast.TypeSwitchStmt:
		var branches []*lockTracker
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				b := lt.clone()
				b.walkStmts(cc.Body)
				branches = append(branches, b)
			}
		}
		if len(branches) > 0 {
			lt.join(branches...)
		}
	case *ast.SelectStmt:
		// Check only the select header here: a no-default select blocks
		// the critical section. Clause bodies are walked below under
		// their own branch states, so they are not double-reported.
		if key, held := lt.anyHeld(); held {
			hasDefault := false
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				lt.pass.Reportf(st.Pos(), "select without default while %s is held; it can park the critical section (escape: //simlint:locksafe)", key)
			}
		}
		var branches []*lockTracker
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				b := lt.clone()
				b.walkStmts(cc.Body)
				branches = append(branches, b)
			}
		}
		if len(branches) > 0 {
			lt.join(branches...)
		}
	case *ast.LabeledStmt:
		lt.walkStmt(st.Stmt)
	case *ast.GoStmt:
		// The spawned body runs outside this critical section; goroleak
		// owns its lifecycle.
	}
}
