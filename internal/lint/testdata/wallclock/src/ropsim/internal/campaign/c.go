// Package campaign mirrors the distributed-campaign coordinator: a
// host-side package with NO hostcode annotation — heartbeats and
// deadlines must flow through an injected clock seam, so raw host-time
// reads are violations outright.
package campaign

import "time"

// Clock mirrors the real package's injected seam.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
}

func badDeadline(last time.Time) bool {
	return time.Since(last) > time.Second // want `reads the host clock`
}

func badBeat() time.Time {
	return time.Now() // want `reads the host clock`
}

func goodDeadline(clk Clock, last time.Time, miss time.Duration) bool {
	return clk.Now().Sub(last) > miss
}

func goodWait(clk Clock, every time.Duration) <-chan time.Time {
	return clk.After(every)
}
