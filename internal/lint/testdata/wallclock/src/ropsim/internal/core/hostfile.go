package core

//simlint:hostcode:file "bring-up progress logging runs on the host side and never feeds simulated state"

import "time"

func hostProgress() time.Time { return time.Now() }

func hostElapsed(start time.Time) time.Duration { return time.Since(start) }
