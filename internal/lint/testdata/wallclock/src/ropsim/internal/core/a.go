package core

import (
	"math/rand"
	"time"
)

func bad() int {
	_ = time.Now()               // want `reads the host clock`
	time.Sleep(time.Millisecond) // want `reads the host clock`
	return rand.Intn(8)          // want `global generator`
}

func good(seed int64, start time.Time) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

func justified() time.Time {
	//simlint:hostcode "self-test of the host progress logger, not simulated time"
	return time.Now()
}

func unjustified() time.Time {
	//simlint:hostcode // want `requires a non-empty quoted justification`
	return time.Now() // want `reads the host clock`
}
