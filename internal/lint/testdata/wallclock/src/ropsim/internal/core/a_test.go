package core

import (
	"testing"
	"time"
)

// wallclock inspects _test.go files too: tests feed the same golden
// artifacts as shipped code.
func TestWallclockAppliesToTests(t *testing.T) {
	_ = time.Now() // want `reads the host clock`
}
