// Package runner mirrors the host-side worker pool, whose whole job is
// timing real execution — the package-scoped annotation covers it.
//
//simlint:hostcode:package "the worker pool times real host execution; no simulated state depends on it"
package runner

import "time"

func Elapsed(start time.Time) time.Duration { return time.Since(start) }
