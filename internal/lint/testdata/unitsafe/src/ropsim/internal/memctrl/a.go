package memctrl

import "ropsim/internal/event"

func bad(rawNS int, f float64) event.Cycle {
	c := event.Cycle(rawNS) // want `non-constant conversion to event.Cycle`
	c += event.Cycle(f)     // want `non-constant conversion to event.Cycle`
	return c
}

func badCPU(x int) event.CPUCycle {
	return event.CPUCycle(x) // want `non-constant conversion to event.CPUCycle`
}

func good(refi event.Cycle, ranks int) event.Cycle {
	per := refi / event.Cycle(ranks)  // dimensionless divisor of a Cycle quantity
	span := event.Cycle(ranks) * refi // dimensionless multiplier
	fixed := event.Cycle(280)         // constant: the unit is asserted at a literal
	derived := event.FromNanos(13.75) + event.FromFloat(0.5*float64(refi))
	return per + span + fixed + derived
}

func justified(deadline int64) event.Cycle {
	//simlint:cycles "deadline round-trips through event.Nanos upstream and is already bus cycles"
	return event.Cycle(deadline)
}

func unjustified(deadline int64) event.Cycle {
	//simlint:cycles // want `requires a non-empty quoted justification`
	return event.Cycle(deadline) // want `non-constant conversion to event.Cycle`
}

func sumIsNotScaling(a, b int) event.Cycle {
	return event.Cycle(a+b) + event.Cycle(1) // want `non-constant conversion to event.Cycle`
}
