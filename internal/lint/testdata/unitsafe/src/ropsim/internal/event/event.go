// Package event is a hermetic stand-in for ropsim/internal/event: the
// unitsafe fixtures only need the Cycle types and the sanctioned
// conversion helpers to exist at this import path.
package event

type Cycle int64

type CPUCycle int64

const PicosPerBusCycle = 1250

func FromNanos(ns float64) Cycle {
	ps := int64(ns * 1000)
	return Cycle((ps + PicosPerBusCycle - 1) / PicosPerBusCycle)
}

func FromFloat(cycles float64) Cycle { return Cycle(cycles) }
