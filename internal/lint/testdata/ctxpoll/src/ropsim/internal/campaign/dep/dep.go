// Package dep supplies cross-package callees whose blocking behavior
// the fact engine must surface to the ctxpoll fixtures: nothing in the
// campaign fixture package tells the analyzer Recv blocks — only this
// package's computed facts do.
package dep

// Recv blocks on a channel receive.
func Recv(ch chan int) int { return <-ch }

// Pure never blocks.
func Pure(x int) int { return x * 2 }
