// Package campaign mirrors the coordinator/worker loops: any loop that
// can block — directly or through a callee the fact engine marks
// MayBlock — must consult its context so drain/abort can interrupt it.
package campaign

import (
	"context"
	"sync"

	"ropsim/internal/campaign/dep"
)

// badRecv blocks on a channel every iteration and never looks at ctx.
func badRecv(ctx context.Context, ch chan int) int {
	total := 0
	for { // want `loop may block \(chan\) without consulting its context`
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

// badCallee blocks through a cross-package callee: dep.Recv's fact
// says it blocks on channels, even though nothing here does directly.
func badCallee(ctx context.Context, ch chan int) {
	for i := 0; i < 10; i++ { // want `loop may block \(chan\) without consulting its context`
		dep.Recv(ch)
	}
}

// badWait blocks on a WaitGroup join inside the loop.
func badWait(ctx context.Context, wg *sync.WaitGroup) {
	for i := 0; i < 3; i++ { // want `loop may block \(chan\) without consulting its context`
		wg.Wait()
	}
}

// goodSelect consults via a Done select case.
func goodSelect(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

// goodPoll consults by polling Err each iteration.
func goodPoll(ctx context.Context, ch chan int) int {
	total := 0
	for {
		if ctx.Err() != nil {
			return total
		}
		total += <-ch
	}
}

// goodCondition consults in the loop condition itself.
func goodCondition(ctx context.Context, ch chan int) int {
	total := 0
	for ctx.Err() == nil {
		total += <-ch
	}
	return total
}

// goodNonBlocking never blocks, so no consult is required.
func goodNonBlocking(ctx context.Context, xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// goodNoCtx has no context in scope: other cancellation mechanisms
// (a done channel) are outside ctxpoll's jurisdiction.
func goodNoCtx(ch chan int, done chan struct{}) int {
	total := 0
	for {
		select {
		case <-done:
			return total
		case v := <-ch:
			total += v
		}
	}
}

// goodSpawn only blocks inside a spawned goroutine, which runs on its
// own; the loop itself never blocks.
func goodSpawn(ctx context.Context, ch chan int, wg *sync.WaitGroup) {
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ch
		}()
	}
}

// justified carries a reasoned escape hatch: the drain-loop shape
// whose waiters are bounded elsewhere.
func justified(ctx context.Context, ch chan int) int {
	total := 0
	//simlint:ctxpoll "every sender is bound to ctx by its own select, so the receive cannot outlive cancellation"
	for v := range ch {
		total += v
	}
	return total
}

// unjustified must both fail to suppress and be reported itself.
func unjustified(ctx context.Context, ch chan int) int {
	total := 0
	//simlint:ctxpoll // want `requires a non-empty quoted justification`
	for { // want `loop may block \(chan\) without consulting its context`
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}
