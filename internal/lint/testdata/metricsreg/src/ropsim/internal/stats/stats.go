// Package stats is a hermetic stand-in for ropsim/internal/stats: the
// metricsreg fixtures need the metric primitive types and a Registry to
// exist at this import path.
package stats

type Counter struct{ n int64 }

type AtomicCounter struct{ n int64 }

type Mean struct {
	sum float64
	n   int64
}

type Ratio struct{ num, den int64 }

type Histogram struct{ buckets []int64 }

type Registry struct{}

func (r *Registry) Register(name string, metric any) {}
