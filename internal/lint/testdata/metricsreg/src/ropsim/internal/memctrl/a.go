package memctrl

import "ropsim/internal/stats"

// Good registers every exported metric field: no diagnostics.
type Good struct {
	Hits   stats.Counter
	Misses stats.Counter
	hidden stats.Counter // unexported: out of scope
}

func (g *Good) RegisterMetrics(r *stats.Registry) {
	r.Register("hits", &g.Hits)
	r.Register("misses", &g.Misses)
}

type Partial struct {
	Reads  stats.Counter
	Writes stats.Counter // want `not registered in RegisterMetrics`
	//simlint:unregistered "scratch counter consumed only by unit tests, never exported to artifacts"
	Scratch stats.Counter
	//simlint:unregistered // want `requires a non-empty quoted justification`
	Leaky stats.Histogram // want `not registered in RegisterMetrics`
}

func (p *Partial) RegisterMetrics(r *stats.Registry) {
	r.Register("reads", &p.Reads)
}

type Orphan struct { // want `no RegisterMetrics method`
	Evictions stats.AtomicCounter
}

// NoMetrics has no metric fields, so needing no RegisterMetrics is
// fine.
type NoMetrics struct {
	Name  string
	limit int
}
