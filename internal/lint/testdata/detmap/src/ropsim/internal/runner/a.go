package runner

// The runner is host-side orchestration, outside the deterministic
// simulation domain: detmap must stay silent here.
func hostSide(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
