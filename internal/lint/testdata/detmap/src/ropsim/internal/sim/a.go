package sim

import "sort"

// snapshot uses the one allowed map-range shape: collect the keys, sort
// them, then visit deterministically.
func snapshot(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func bad(m map[string]int) int {
	t := 0
	for _, v := range m { // want `iteration-order dependent`
		t += v
	}
	return t
}

func justified(m map[string]int) int {
	t := 0
	//simlint:ordered "integer sum is commutative; visit order cannot affect the result"
	for _, v := range m {
		t += v
	}
	return t
}

func unjustified(m map[string]int) int {
	t := 0
	//simlint:ordered // want `requires a non-empty quoted justification`
	for _, v := range m { // want `iteration-order dependent`
		t += v
	}
	return t
}

func typo(m map[string]int) int {
	t := 0
	//simlint:orderd "sum" // want `unknown simlint annotation name`
	for _, v := range m { // want `iteration-order dependent`
		t += v
	}
	return t
}

func notCollectIdiom(m map[string]int) []string {
	var keys []string
	for k := range m { // want `iteration-order dependent`
		keys = append(keys, k+"!")
	}
	return keys
}
