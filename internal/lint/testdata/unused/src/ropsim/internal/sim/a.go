package sim

// The file-scoped annotation below suppresses nothing: with
// ReportUnusedAnnotations set (the lint-fix-check mode) it must be
// reported as a stale escape hatch.

//simlint:ordered:file "there used to be a map fold here" // want `unused //simlint:ordered annotation`

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
