// Package runner mirrors the pool's goroutine lifecycles: every spawn
// needs a join path — a WaitGroup added to before the spawn, or a body
// that signals completion (done channel, close, WaitGroup.Done).
package runner

import (
	"sync"

	"ropsim/internal/runner/dep"
)

// work is a plain callee with no completion signal of its own.
func work(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// badNaked is a fire-and-forget spawn: nobody can ever learn it
// finished.
func badNaked(xs []int) {
	go func() { // want `goroutine has no join path`
		work(xs)
	}()
}

// badNamed spawns a named function that the fact engine knows never
// signals.
func badNamed(xs []int) {
	go dep.Quiet(xs) // want `goroutine has no join path`
}

// goodAddBeforeSpawn is the classic WaitGroup lifecycle.
func goodAddBeforeSpawn(xs []int, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work(xs)
	}()
}

// goodDoneChannel closes a channel the spawner can receive from.
func goodDoneChannel(xs []int) chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work(xs)
	}()
	return done
}

// goodResultChannel sends its result, which is itself the join.
func goodResultChannel(xs []int) chan int {
	out := make(chan int, 1)
	go func() {
		out <- work(xs)
	}()
	return out
}

// goodNamedSignal spawns a cross-package function whose fact says it
// signals completion (dep.Notify closes its channel).
func goodNamedSignal(done chan struct{}) {
	go dep.Notify(done)
}

// goodTransitive signals through a callee: the closure calls a local
// helper whose fact carries Signals.
func goodTransitive(xs []int, out chan int) {
	go func() {
		deliver(out, work(xs))
	}()
}

// deliver sends the result on the channel.
func deliver(out chan int, v int) { out <- v }

// justified records why a deliberately unjoined goroutine is safe.
func justified(xs []int) {
	//simlint:goroleak "per-connection handler: joining would let a wedged peer block drain; sockets unblock it on close"
	go work(xs)
}

// unjustified must both fail to suppress and be reported itself.
func unjustified(xs []int) {
	//simlint:goroleak // want `requires a non-empty quoted justification`
	go work(xs) // want `goroutine has no join path`
}
