// Package dep supplies cross-package spawn targets for the goroleak
// fixtures: whether a spawned function signals completion is a fact
// computed here and consumed in the runner fixture package.
package dep

// Quiet does work and never signals anyone.
func Quiet(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Notify closes the channel when done — a join path for whoever holds
// the other end.
func Notify(done chan struct{}) {
	close(done)
}
