// Cross-analyzer interaction: a line can carry annotations for two
// different analyzers. Only the one that actually suppresses a finding
// counts as used; the other is stale even though the line it covers
// does have (a different analyzer's) finding.
package sim

import "time"

// stamp has a wallclock finding; the hostcode annotation suppresses it
// and the ordered annotation on the same line suppresses nothing.
func stamp() int64 {
	//simlint:hostcode "fixture probe: pretend this is a host-side timestamp"
	//simlint:ordered "no map iteration happens here, so this claim is dead weight" // want `unused //simlint:ordered annotation`
	return time.Now().UnixNano()
}
