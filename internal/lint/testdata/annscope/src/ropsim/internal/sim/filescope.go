// A file-scope annotation placed above the package clause must still
// be parsed and must suppress every matching finding in this file —
// and only this file.

//simlint:ordered:file "every fold in this file is commutative; visit order cannot change a result"

package sim

// foldA is suppressed by the file-scope annotation above.
func foldA(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// foldB in the same file rides the same annotation.
func foldB(m map[string]bool) int {
	n := 0
	for range m {
		n++
	}
	return n
}
