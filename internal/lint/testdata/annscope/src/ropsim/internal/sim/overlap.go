// Overlapping scopes: a line-scope annotation wins over a package-scope
// one covering the same finding, so the package-scope directive
// suppresses nothing and must be reported as stale under -unused.
package sim

//simlint:ordered:package "blanket claim that never gets used because narrower scopes win" // want `unused //simlint:ordered annotation`

// overlapped carries its own line-scope justification; the package
// annotation above must not be the one credited.
func overlapped(m map[string]int) int {
	t := 0
	//simlint:ordered "product of positive ints is commutative"
	for _, v := range m {
		t *= v
	}
	return t
}
