// Package workload is a hermetic stand-in exposing a Must* constructor
// beside its error-returning variant.
package workload

import "errors"

type Profile struct{ Name string }

func Get(name string) (*Profile, error) {
	if name == "" {
		return nil, errors.New("empty workload name")
	}
	return &Profile{Name: name}, nil
}

func MustGet(name string) *Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}
