// Package event is a hermetic stand-in for ropsim/internal/event: the
// eventdiscipline fixtures need the queue's scheduling methods and the
// handle types to exist at this import path.
package event

type Cycle int64

type Handle struct{ id, gen uint64 }

type ChainHandle struct{ Handle }

type Queue struct{ now Cycle }

func (q *Queue) Now() Cycle { return q.now }

func (q *Queue) Schedule(at Cycle, fn func()) Handle { return Handle{} }

func (q *Queue) ScheduleChained(at Cycle, fn func()) ChainHandle { return ChainHandle{} }

func (q *Queue) RetargetChained(h ChainHandle, at Cycle) {}
