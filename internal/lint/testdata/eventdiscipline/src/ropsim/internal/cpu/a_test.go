package cpu

import (
	"testing"

	"ropsim/internal/workload"
)

// Must* constructors are reserved for _test.go files: no diagnostic
// here.
func TestMustAllowedInTests(t *testing.T) {
	p := workload.MustGet("alpha")
	if p.Name != "alpha" {
		t.Fatal(p.Name)
	}
}
