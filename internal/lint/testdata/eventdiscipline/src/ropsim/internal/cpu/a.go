package cpu

import (
	"ropsim/internal/event"
	"ropsim/internal/workload"
)

func bad(q *event.Queue, now event.Cycle, h event.ChainHandle) {
	q.Schedule(event.Cycle(-1), func() {})  // want `negative cycle`
	q.Schedule(now-1, func() {})            // want `at or before the current cycle`
	q.ScheduleChained(q.Now()-3, func() {}) // want `at or before the current cycle`
	q.RetargetChained(h, now-4)             // want `at or before the current cycle`
	_ = event.Handle{}                      // want `forges an event.Handle`
	_ = workload.MustGet("alpha")           // want `panics on failure`
}

func good(q *event.Queue, now event.Cycle, h event.ChainHandle) {
	q.Schedule(now+1, func() {})
	q.ScheduleChained(now+2, func() {})
	q.RetargetChained(h, now+4)
	p, err := workload.Get("alpha")
	_, _ = p, err
}

func justified(q *event.Queue, now event.Cycle) {
	//simlint:discipline "replay path re-posts the current event; the queue is drained first"
	q.Schedule(now-1, func() {})
}

func unjustified(q *event.Queue, now event.Cycle) {
	//simlint:discipline // want `requires a non-empty quoted justification`
	q.Schedule(now-1, func() {}) // want `at or before the current cycle`
}
