// Package trace mirrors the .ropt readers: every allocation sized by a
// wire-decoded integer must pass a clamping comparison first, so a
// hostile header can never drive memory use.
package trace

import (
	"bytes"
	"encoding/binary"
	"io"

	"ropsim/internal/trace/wire"
)

// maxRecords is the named bound the canonical clamp compares against.
const maxRecords = 1 << 20

// badDirect allocates straight from a decoded length.
func badDirect(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	return make([]byte, n) // want `derives from wire input with no clamping comparison`
}

// badArithmetic launders the taint through arithmetic.
func badArithmetic(hdr []byte) []byte {
	n := int(binary.LittleEndian.Uint16(hdr)) * 16
	return make([]byte, n+8) // want `derives from wire input with no clamping comparison`
}

// badCopyN drives an io.CopyN byte count from the wire.
func badCopyN(dst io.Writer, hdr []byte, r io.Reader) error {
	n := binary.LittleEndian.Uint64(hdr)
	_, err := io.CopyN(dst, r, int64(n)) // want `derives from wire input with no clamping comparison`
	return err
}

// badCrossPackage allocates from a count a dependency decoded and
// returned unclamped — only wire.Count's WireResults fact reveals it.
func badCrossPackage(hdr []byte) []byte {
	n := wire.Count(hdr)
	return make([]byte, n) // want `derives from wire input with no clamping comparison`
}

// goodClamped passes the canonical named-constant clamp.
func goodClamped(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxRecords {
		return nil
	}
	return make([]byte, n)
}

// goodEqualityBound binds the count to a structurally implied size:
// an equality check is as hard a clamp as a range check.
func goodEqualityBound(hdr []byte, want uint32) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	if n != want {
		return nil
	}
	return make([]byte, n)
}

// goodCrossPackageClamped consumes a dependency count that the
// dependency itself validated before returning.
func goodCrossPackageClamped(hdr []byte) []byte {
	n := wire.SafeCount(hdr)
	return make([]byte, n)
}

// goodConstSize never touches the wire.
func goodConstSize(r io.Reader) ([]byte, error) {
	buf := make([]byte, 64)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// header stores a validated count: the constructor clamps before the
// field assignment, so the accessor's allocations stay clean.
type header struct {
	count uint32
}

// parseHeader validates before storing.
func parseHeader(hdr []byte) (header, bool) {
	n := binary.LittleEndian.Uint32(hdr)
	if n > maxRecords {
		return header{}, false
	}
	return header{count: n}, true
}

// alloc sizes from the validated field.
func (h header) alloc() []byte {
	return make([]byte, h.count)
}

// rawHeader stores the count unvalidated, so field reads stay tainted.
type rawHeader struct {
	count uint32
}

// parseRawHeader skips validation.
func parseRawHeader(hdr []byte) rawHeader {
	return rawHeader{count: binary.LittleEndian.Uint32(hdr)}
}

// badFieldAlloc allocates from the unvalidated field.
func (h rawHeader) badFieldAlloc() []byte {
	return make([]byte, h.count) // want `derives from wire input with no clamping comparison`
}

// justified documents a bound the walker cannot see.
func justified(hdr []byte) *bytes.Buffer {
	n := binary.LittleEndian.Uint16(hdr)
	//simlint:boundalloc "a uint16 length is bounded at 64 KiB by its type, below every budget in the reader"
	buf := bytes.NewBuffer(make([]byte, n))
	return buf
}

// unjustified must both fail to suppress and be reported itself.
func unjustified(hdr []byte) []byte {
	n := binary.LittleEndian.Uint32(hdr)
	//simlint:boundalloc // want `requires a non-empty quoted justification`
	return make([]byte, n) // want `derives from wire input with no clamping comparison`
}
