// Package wire supplies cross-package wire-decoding helpers for the
// boundalloc fixtures: whether a returned count is still tainted is a
// WireResults fact computed here and consumed in the trace fixture
// package.
package wire

import "encoding/binary"

// wireMax bounds SafeCount's result.
const wireMax = 4096

// Count returns a decoded length without validating it — its first
// result carries the WireDerived fact.
func Count(hdr []byte) uint32 {
	return binary.LittleEndian.Uint32(hdr)
}

// SafeCount clamps before returning, discharging the taint.
func SafeCount(hdr []byte) uint32 {
	n := binary.LittleEndian.Uint32(hdr)
	if n > wireMax {
		return 0
	}
	return n
}
