// Package dep supplies a cross-package blocking callee for the
// locksafe fixtures: that Flush blocks on I/O is a fact computed here,
// invisible to the campaign fixture's own syntax.
package dep

import (
	"encoding/binary"
	"io"
)

// Flush writes the batch to the sink — host I/O, per the io.Writer
// seed fact.
func Flush(w io.Writer, xs []int) error {
	buf := make([]byte, 8)
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf, uint64(x))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
