// Package campaign mirrors the coordinator's critical sections: a held
// mutex must never reach a channel operation or a blocking call, and
// every return under a lock needs a deferred unlock behind it.
package campaign

import (
	"io"
	"sync"

	"ropsim/internal/campaign/dep"
)

// state is the shared structure the fixtures lock.
type state struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	cond    *sync.Cond
	pending []int
}

// badSend sends on a channel inside the critical section.
func (s *state) badSend(ch chan int, v int) {
	s.mu.Lock()
	s.pending = append(s.pending, v)
	ch <- v // want `channel send while s.mu is held`
	s.mu.Unlock()
}

// badRecv parks the critical section on a receive.
func (s *state) badRecv(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch // want `channel receive while s.mu is held`
}

// badSelect can park the critical section in a select.
func (s *state) badSelect(a, b chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while s.mu is held`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// badBlockingCall reaches socket I/O through a cross-package callee:
// only dep.Flush's fact says it blocks.
func (s *state) badBlockingCall(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dep.Flush(w, s.pending) // want `call to Flush may block \(io\) while s.mu is held`
}

// badReturnHeld leaks the lock on the early return path.
func (s *state) badReturnHeld(v int) bool {
	s.mu.Lock()
	if v < 0 {
		return false // want `return while s.mu is held with no deferred unlock`
	}
	s.pending = append(s.pending, v)
	s.mu.Unlock()
	return true
}

// goodDefer is the sanctioned shape: deferred unlock, no blocking
// inside.
func (s *state) goodDefer(v int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, v)
	return len(s.pending)
}

// goodEarlyUnlock releases on every branch before the blocking
// operation — the Memo.Do idiom.
func (s *state) goodEarlyUnlock(ch chan int, compute bool) int {
	s.mu.Lock()
	if compute {
		s.mu.Unlock()
		return <-ch
	}
	s.mu.Unlock()
	return <-ch
}

// goodSendAfterUnlock moves the send out of the critical section.
func (s *state) goodSendAfterUnlock(ch chan int, v int) {
	s.mu.Lock()
	s.pending = append(s.pending, v)
	s.mu.Unlock()
	ch <- v
}

// goodCondWait may wait on the condition variable: Cond.Wait requires
// the held lock and releases it while parked.
func (s *state) goodCondWait() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) == 0 {
		s.cond.Wait()
	}
	return s.pending[0]
}

// goodRWRead takes the read lock around pure reads.
func (s *state) goodRWRead() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return len(s.pending)
}

// goodSelectDefault never parks: the default case makes the select
// non-blocking.
func (s *state) goodSelectDefault(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// justified documents a lock whose job is serializing the blocking
// operation itself.
func (s *state) justified(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//simlint:locksafe "this mutex exists to serialize whole-batch flushes; the blocking write is the critical section"
	dep.Flush(w, s.pending)
}

// unjustified must both fail to suppress and be reported itself.
func (s *state) unjustified(ch chan int, v int) {
	s.mu.Lock()
	//simlint:locksafe // want `requires a non-empty quoted justification`
	ch <- v // want `channel send while s.mu is held`
	s.mu.Unlock()
}
