package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// EventDiscipline enforces the event-queue contract in the simulation
// packages:
//
//  1. Schedule/ScheduleChained/RetargetChained calls whose cycle
//     argument is derivably in the past — a negative constant, or
//     `now - k` for the current cycle and a positive constant — are
//     flagged; the queue panics on them at runtime, simlint catches
//     them at build time.
//  2. Composite literals forging event.Handle or event.ChainHandle
//     outside internal/event are flagged: a fabricated handle defeats
//     the generation check that protects recycled events.
//  3. References to Must* constructors (MustNew, MustGet, ...) outside
//     _test.go files are flagged: shipped simulation code takes the
//     error-returning constructor so a bad configuration is a run
//     error, not a panic mid-campaign.
var EventDiscipline = &Analyzer{
	Name:     "eventdiscipline",
	Doc:      "flags derivably-past Schedule cycles, forged event handles, and Must* constructors outside tests (escape: //simlint:discipline)",
	Suppress: "discipline",
	Run:      runEventDiscipline,
}

// scheduleCycleArg maps event.Queue scheduling methods to the index of
// their cycle argument.
var scheduleCycleArg = map[string]int{
	"Schedule":        0,
	"ScheduleChained": 0,
	"RetargetChained": 1,
}

func runEventDiscipline(pass *Pass) {
	if !inSimDomain(pass.Path()) || pass.Path() == eventPkgPath {
		return
	}
	info := pass.Info()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkScheduleCall(pass, n)
			case *ast.CompositeLit:
				if tv, ok := info.Types[n]; ok {
					for _, name := range []string{"Handle", "ChainHandle"} {
						if namedFrom(tv.Type, eventPkgPath, name) {
							pass.Reportf(n.Pos(),
								"composite literal forges an event.%s; handles come only from the queue's Schedule methods (the zero value refers to nothing)",
								name)
						}
					}
				}
			case *ast.Ident:
				// Every reference to a function — bare, qualified
				// (pkg.MustGet) or method — surfaces as exactly one
				// Ident with a Uses entry, so this case cannot
				// double-report.
				checkMustRef(pass, n)
			}
			return true
		})
	}
}

// checkMustRef flags a use of a Must-prefixed function or method from a
// module package in non-test simulation code.
func checkMustRef(pass *Pass, id *ast.Ident) {
	if pass.IsTestFile(id.Pos()) {
		return
	}
	obj, ok := pass.Info().Uses[id]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "ropsim") {
		return
	}
	name := fn.Name()
	if !strings.HasPrefix(name, "Must") || len(name) == len("Must") {
		return
	}
	if r := rune(name[len("Must")]); !unicode.IsUpper(r) {
		return
	}
	pass.Reportf(id.Pos(),
		"%s panics on failure and is reserved for _test.go files; call the error-returning variant in simulation code",
		name)
}

// checkScheduleCall flags scheduling calls whose cycle argument is
// derivably at or before the current cycle.
func checkScheduleCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	argIdx, ok := scheduleCycleArg[sel.Sel.Name]
	if !ok || len(call.Args) <= argIdx {
		return
	}
	// Only calls on the event queue (or a type embedding its methods).
	obj, ok := pass.Info().Uses[sel.Sel]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != eventPkgPath {
		return
	}
	arg := call.Args[argIdx]
	if tv, ok := pass.Info().Types[arg]; ok && tv.Value != nil {
		if constant.Sign(tv.Value) < 0 {
			pass.Reportf(arg.Pos(),
				"%s with a negative cycle is always in the past; the queue will panic", sel.Sel.Name)
		}
		return
	}
	// now - k, with `now` the current cycle and k a positive constant.
	bin, ok := arg.(*ast.BinaryExpr)
	if !ok || bin.Op != token.SUB || !isCurrentCycleExpr(bin.X) {
		return
	}
	if tv, ok := pass.Info().Types[bin.Y]; ok && tv.Value != nil && constant.Sign(tv.Value) > 0 {
		pass.Reportf(arg.Pos(),
			"%s at %s schedules at or before the current cycle; the queue panics on past events",
			sel.Sel.Name, exprString(arg))
	}
}

// isCurrentCycleExpr recognizes spellings of "the current cycle": an
// identifier named now, or a call to a Now() method.
func isCurrentCycleExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "now"
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Now" && len(e.Args) == 0
		}
	}
	return false
}
