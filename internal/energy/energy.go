// Package energy estimates DRAM and SRAM-buffer energy the way the
// paper does: DRAM power from an IDD-based model with the same formula
// structure as the Micron System Power Calculator, and SRAM access
// energy from the CACTI-derived constants in the paper's Table III.
// Energy differences between configurations are driven by command counts
// and execution time, which is exactly the effect the paper measures
// (shorter runs draw less background power; refreshes add IDD5 bursts).
package energy

import (
	"sort"

	"fmt"

	"ropsim/internal/dram"
	"ropsim/internal/event"
	"ropsim/internal/stats"
)

// Params holds the electrical parameters of one DRAM device (chip) and
// the rank composition. Currents are in milliamps, voltage in volts.
type Params struct {
	VDD float64 // supply voltage in volts

	IDD0  float64 // one-bank ACT-PRE current
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5B float64 // burst refresh

	ChipsPerRank int // devices ganged per rank (8 x8 chips = 64-bit channel)
}

// DDR4Power returns typical 8 Gb DDR4-1600 x8 datasheet currents with
// eight chips per rank (a 64-bit channel).
func DDR4Power() Params {
	return Params{
		VDD:          1.2,
		IDD0:         58,
		IDD2N:        44,
		IDD3N:        62,
		IDD4R:        140,
		IDD4W:        132,
		IDD5B:        255,
		ChipsPerRank: 8,
	}
}

// Validate reports an error for non-physical parameters.
func (p Params) Validate() error {
	if p.VDD <= 0 || p.ChipsPerRank <= 0 {
		return fmt.Errorf("energy: bad VDD/chips %+v", p)
	}
	for _, v := range []float64{p.IDD0, p.IDD2N, p.IDD3N, p.IDD4R, p.IDD4W, p.IDD5B} {
		if v <= 0 {
			return fmt.Errorf("energy: non-positive IDD in %+v", p)
		}
	}
	if p.IDD3N < p.IDD2N {
		return fmt.Errorf("energy: IDD3N below IDD2N")
	}
	return nil
}

// Counts are the per-run DRAM command counts feeding the model.
type Counts struct {
	// ACT, RD, WR and REF count the activate, read, write and refresh
	// commands issued over the run (PREs are paired with ACTs).
	ACT, RD, WR, REF int64
	// RefLockedCycles, when positive, overrides REF*tRFC as the total
	// refresh-locked time (needed for partial-refresh policies such as
	// Refresh Pausing).
	RefLockedCycles int64
	// Ranks is the number of ranks drawing background current.
	Ranks int
}

// SRAMCounts are the prefetch-buffer access counts.
type SRAMCounts struct {
	Reads  int64 // buffer lookups
	Writes int64 // buffer fills
	Lines  int   // buffer capacity, selects the per-access energy
}

// sramAccessNJ maps buffer capacity to per-access energy in nanojoules
// (paper Table III, CACTI 5.3).
var sramAccessNJ = map[int]float64{
	16:  0.0132,
	32:  0.0135,
	64:  0.0137,
	128: 0.0152,
}

// SRAMAccessNJ returns the per-access energy for a buffer of the given
// capacity, falling back to the nearest tabulated size.
func SRAMAccessNJ(lines int) float64 {
	if e, ok := sramAccessNJ[lines]; ok {
		return e
	}
	// Iterate the tabulated sizes in sorted order so the nearest-size
	// tie-break (e.g. lines=24, equidistant from 16 and 32) is
	// deterministic rather than map-iteration-order dependent; ties go
	// to the smaller size.
	sizes := make([]int, 0, len(sramAccessNJ))
	for size := range sramAccessNJ {
		sizes = append(sizes, size)
	}
	sort.Ints(sizes)
	best, bestDiff := 64, 1<<30
	for _, size := range sizes {
		diff := size - lines
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			best, bestDiff = size, diff
		}
	}
	return sramAccessNJ[best]
}

// Breakdown is the energy report in joules.
type Breakdown struct {
	BackgroundJ float64 // standby (IDD2N/IDD3N) energy
	ActPreJ     float64 // activate + precharge energy
	ReadJ       float64 // read burst energy
	WriteJ      float64 // write burst energy
	RefreshJ    float64 // refresh (IDD5B) energy
	SRAMJ       float64 // ROP prefetch-buffer access energy (paper Table III)
}

// Total reports the sum of all components.
func (b Breakdown) Total() float64 {
	return b.BackgroundJ + b.ActPreJ + b.ReadJ + b.WriteJ + b.RefreshJ + b.SRAMJ
}

// RegisterMetrics registers the breakdown's components (joules) as
// gauges into r (typically an "energy"-scoped sub-registry). The gauges
// read through the pointer at snapshot time, so callers may register an
// empty breakdown and fill it in before snapshotting.
func (b *Breakdown) RegisterMetrics(r *stats.Registry) {
	r.Gauge("background_j", func() float64 { return b.BackgroundJ })
	r.Gauge("act_pre_j", func() float64 { return b.ActPreJ })
	r.Gauge("read_j", func() float64 { return b.ReadJ })
	r.Gauge("write_j", func() float64 { return b.WriteJ })
	r.Gauge("refresh_j", func() float64 { return b.RefreshJ })
	r.Gauge("sram_j", func() float64 { return b.SRAMJ })
	r.Gauge("total_j", func() float64 { return b.Total() })
}

// Compute estimates the energy of a run: elapsed simulated time plus the
// command counts. The active-standby fraction is approximated from the
// activate count (each ACT keeps its rank active for about tRAS+tRP),
// the standard simplification when per-cycle bank-state integration is
// not captured.
func Compute(p Params, t dram.Params, elapsed event.Cycle, c Counts, s SRAMCounts) (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	if elapsed < 0 || c.Ranks <= 0 {
		return Breakdown{}, fmt.Errorf("energy: bad inputs elapsed=%d ranks=%d", elapsed, c.Ranks)
	}
	chips := float64(p.ChipsPerRank)
	secPerCycle := event.Seconds(1)
	elapsedSec := float64(elapsed) * secPerCycle
	mAtoA := 1e-3

	var b Breakdown

	// Background: ranks sit in active standby for ~tRAS+tRP per ACT and
	// precharge standby otherwise.
	activeSec := float64(c.ACT) * float64(t.RAS+t.RP) * secPerCycle
	totalRankSec := elapsedSec * float64(c.Ranks)
	if activeSec > totalRankSec {
		activeSec = totalRankSec
	}
	preSec := totalRankSec - activeSec
	b.BackgroundJ = p.VDD * mAtoA * chips * (p.IDD3N*activeSec + p.IDD2N*preSec)

	// ACT/PRE pairs: incremental energy of one activate cycle over the
	// standby baseline, integrated over tRC.
	tRCsec := float64(t.RC) * secPerCycle
	actIncr := p.IDD0 - (p.IDD3N*float64(t.RAS)+p.IDD2N*float64(t.RC-t.RAS))/float64(t.RC)
	if actIncr < 0 {
		actIncr = 0
	}
	b.ActPreJ = p.VDD * mAtoA * chips * actIncr * tRCsec * float64(c.ACT)

	// Column bursts: incremental current over active standby for the
	// burst duration.
	burstSec := float64(t.DataCycles()) * secPerCycle
	b.ReadJ = p.VDD * mAtoA * chips * (p.IDD4R - p.IDD3N) * burstSec * float64(c.RD)
	b.WriteJ = p.VDD * mAtoA * chips * (p.IDD4W - p.IDD3N) * burstSec * float64(c.WR)

	// Refresh: IDD5 burst over the locked time (tRFC per REF command,
	// or the measured locked cycles under partial-refresh policies).
	lockedSec := float64(c.REF) * float64(t.RFC) * secPerCycle
	if c.RefLockedCycles > 0 {
		lockedSec = float64(c.RefLockedCycles) * secPerCycle
	}
	b.RefreshJ = p.VDD * mAtoA * chips * (p.IDD5B - p.IDD2N) * lockedSec

	// SRAM buffer accesses.
	b.SRAMJ = SRAMAccessNJ(s.Lines) * 1e-9 * float64(s.Reads+s.Writes)

	return b, nil
}
