package energy

import (
	"testing"

	"ropsim/internal/dram"
	"ropsim/internal/event"
)

func TestParamsValidate(t *testing.T) {
	if err := DDR4Power().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DDR4Power()
	bad.IDD3N = 10 // below IDD2N
	if bad.Validate() == nil {
		t.Error("accepted IDD3N < IDD2N")
	}
	bad = DDR4Power()
	bad.VDD = 0
	if bad.Validate() == nil {
		t.Error("accepted zero VDD")
	}
}

func TestSRAMAccessTable(t *testing.T) {
	// Table III values, exactly.
	cases := map[int]float64{16: 0.0132, 32: 0.0135, 64: 0.0137, 128: 0.0152}
	for lines, want := range cases {
		if got := SRAMAccessNJ(lines); got != want {
			t.Errorf("SRAMAccessNJ(%d) = %g, want %g", lines, got, want)
		}
	}
	// Nearest-size fallback.
	if got := SRAMAccessNJ(60); got != 0.0137 {
		t.Errorf("SRAMAccessNJ(60) = %g, want 64-line value", got)
	}
	if got := SRAMAccessNJ(1000); got != 0.0152 {
		t.Errorf("SRAMAccessNJ(1000) = %g, want 128-line value", got)
	}
}

// mustCompute is Compute with a fatal on error (the inputs in these
// tests are statically valid).
func mustCompute(t *testing.T, p Params, d dram.Params, elapsed event.Cycle, c Counts, s SRAMCounts) Breakdown {
	t.Helper()
	b, err := Compute(p, d, elapsed, c, s)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return b
}

func TestIdleEnergyIsBackgroundOnly(t *testing.T) {
	p := DDR4Power()
	d := dram.DDR4_1600(dram.Refresh1x)
	b := mustCompute(t, p, d, 1_000_000, Counts{Ranks: 1}, SRAMCounts{Lines: 64})
	if b.BackgroundJ <= 0 {
		t.Error("idle run has zero background energy")
	}
	if b.ActPreJ != 0 || b.ReadJ != 0 || b.WriteJ != 0 || b.RefreshJ != 0 || b.SRAMJ != 0 {
		t.Errorf("idle run has dynamic energy: %+v", b)
	}
	if b.Total() != b.BackgroundJ {
		t.Error("Total mismatch")
	}
}

func TestRefreshAddsEnergy(t *testing.T) {
	p := DDR4Power()
	d := dram.DDR4_1600(dram.Refresh1x)
	elapsed := 100 * d.REFI
	without := mustCompute(t, p, d, elapsed, Counts{Ranks: 1}, SRAMCounts{Lines: 64})
	with := mustCompute(t, p, d, elapsed, Counts{Ranks: 1, REF: 100}, SRAMCounts{Lines: 64})
	if with.Total() <= without.Total() {
		t.Error("refreshes did not add energy")
	}
	// Refresh overhead at idle should be a noticeable but minority
	// share (order 10-20% for these parameters).
	frac := with.RefreshJ / with.Total()
	if frac < 0.05 || frac > 0.5 {
		t.Errorf("refresh fraction %.3f outside plausible band", frac)
	}
}

func TestLongerRunsCostMore(t *testing.T) {
	p := DDR4Power()
	d := dram.DDR4_1600(dram.Refresh1x)
	c := Counts{Ranks: 2, ACT: 1000, RD: 5000, WR: 2000, REF: 50}
	short := mustCompute(t, p, d, 1_000_000, c, SRAMCounts{Lines: 64})
	long := mustCompute(t, p, d, 2_000_000, c, SRAMCounts{Lines: 64})
	if long.Total() <= short.Total() {
		t.Error("longer elapsed time did not increase energy")
	}
	if long.ReadJ != short.ReadJ || long.RefreshJ != short.RefreshJ {
		t.Error("command energies changed with elapsed time")
	}
}

func TestCommandEnergiesScaleLinearly(t *testing.T) {
	p := DDR4Power()
	d := dram.DDR4_1600(dram.Refresh1x)
	one := mustCompute(t, p, d, 1_000_000, Counts{Ranks: 1, RD: 1000}, SRAMCounts{Lines: 64})
	two := mustCompute(t, p, d, 1_000_000, Counts{Ranks: 1, RD: 2000}, SRAMCounts{Lines: 64})
	if diff := two.ReadJ - 2*one.ReadJ; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("read energy not linear: %g vs %g", two.ReadJ, 2*one.ReadJ)
	}
}

func TestSRAMEnergyCounted(t *testing.T) {
	p := DDR4Power()
	d := dram.DDR4_1600(dram.Refresh1x)
	b := mustCompute(t, p, d, 1000, Counts{Ranks: 1}, SRAMCounts{Reads: 100, Writes: 50, Lines: 16})
	want := 150 * 0.0132e-9
	if diff := b.SRAMJ - want; diff > 1e-18 || diff < -1e-18 {
		t.Errorf("SRAMJ = %g, want %g", b.SRAMJ, want)
	}
}

func TestActiveStandbyCapped(t *testing.T) {
	// Absurd ACT counts cannot push active time beyond elapsed time.
	p := DDR4Power()
	d := dram.DDR4_1600(dram.Refresh1x)
	b := mustCompute(t, p, d, 1000, Counts{Ranks: 1, ACT: 1 << 40}, SRAMCounts{Lines: 64})
	// Background energy is bounded by all-active for the whole run.
	maxBg := p.VDD * 1e-3 * float64(p.ChipsPerRank) * p.IDD3N *
		float64(1000) * 1.25e-9
	if b.BackgroundJ > maxBg*1.0001 {
		t.Errorf("background %g exceeds all-active bound %g", b.BackgroundJ, maxBg)
	}
}

func TestComputeRejectsBadInput(t *testing.T) {
	if _, err := Compute(DDR4Power(), dram.DDR4_1600(dram.Refresh1x), 10, Counts{}, SRAMCounts{Lines: 64}); err == nil {
		t.Error("Compute accepted zero ranks")
	}
	bad := DDR4Power()
	bad.VDD = 0
	if _, err := Compute(bad, dram.DDR4_1600(dram.Refresh1x), 10, Counts{Ranks: 1}, SRAMCounts{Lines: 64}); err == nil {
		t.Error("Compute accepted zero VDD")
	}
}
