package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(2 * MiB).Validate(); err != nil {
		t.Errorf("default 2MB config invalid: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 16},
		{SizeBytes: 1 << 20, LineBytes: 60, Ways: 16},
		{SizeBytes: 1 << 20, LineBytes: 64, Ways: 0},
		{SizeBytes: 64 * 8, LineBytes: 64, Ways: 16},  // fewer lines than ways
		{SizeBytes: 3 << 20, LineBytes: 64, Ways: 16}, // sets not power of two
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := MustNew(Config{SizeBytes: 64 * 64, LineBytes: 64, Ways: 4}) // 64 lines, 16 sets of 4 ways
	if r := c.Access(1, false); r.Hit {
		t.Error("first access hit")
	}
	if r := c.Access(1, false); !r.Hit {
		t.Error("second access missed")
	}
	if c.Hits.Value() != 1 || c.Misses.Value() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits.Value(), c.Misses.Value())
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set of 2 ways: lines mapping to set 0 with stride NumSets.
	c := MustNew(Config{SizeBytes: 2 * 64 * 2, LineBytes: 64, Ways: 2})
	sets := uint64(c.NumSets())
	a, b, d := uint64(0), sets, 2*sets
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is MRU
	c.Access(d, false) // evicts b
	if !c.Contains(a) || !c.Contains(d) {
		t.Error("expected a and d cached")
	}
	if c.Contains(b) {
		t.Error("LRU victim b still cached")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := MustNew(Config{SizeBytes: 2 * 64, LineBytes: 64, Ways: 1})
	sets := uint64(c.NumSets())
	c.Access(0, true) // dirty
	r := c.Access(sets, false)
	if !r.EvictedValid || r.EvictedLine != 0 {
		t.Errorf("expected dirty writeback of line 0, got %+v", r)
	}
	// Clean eviction produces no writeback.
	r = c.Access(2*sets, false)
	if r.EvictedValid {
		t.Errorf("clean eviction produced writeback: %+v", r)
	}
	if c.Writebacks.Value() != 1 {
		t.Errorf("writebacks = %d, want 1", c.Writebacks.Value())
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := MustNew(Config{SizeBytes: 2 * 64, LineBytes: 64, Ways: 1})
	sets := uint64(c.NumSets())
	c.Access(0, false) // clean fill
	c.Access(0, true)  // write hit marks dirty
	r := c.Access(sets, false)
	if !r.EvictedValid {
		t.Error("write-hit line evicted without writeback")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	cfg := Config{SizeBytes: 64 * 1024, LineBytes: 64, Ways: 16}
	c := MustNew(cfg)
	lines := cfg.SizeBytes / cfg.LineBytes
	// Touch every line once (cold misses), then loop: all hits.
	for l := 0; l < lines; l++ {
		c.Access(uint64(l), false)
	}
	c.Hits.Reset()
	c.Misses.Reset()
	for pass := 0; pass < 3; pass++ {
		for l := 0; l < lines; l++ {
			c.Access(uint64(l), false)
		}
	}
	if c.Misses.Value() != 0 {
		t.Errorf("%d misses on resident working set", c.Misses.Value())
	}
}

func TestWorkingSetThrashes(t *testing.T) {
	// Sequential loop over 2x capacity with LRU yields ~0% hits.
	cfg := Config{SizeBytes: 64 * 1024, LineBytes: 64, Ways: 16}
	c := MustNew(cfg)
	lines := 2 * cfg.SizeBytes / cfg.LineBytes
	for pass := 0; pass < 3; pass++ {
		for l := 0; l < lines; l++ {
			c.Access(uint64(l), false)
		}
	}
	if c.Hits.Value() != 0 {
		t.Errorf("LRU loop over 2x capacity hit %d times", c.Hits.Value())
	}
}

func TestHitRate(t *testing.T) {
	c := MustNew(Config{SizeBytes: 64 * 64, LineBytes: 64, Ways: 4})
	if c.HitRate() != 0 {
		t.Error("empty cache hit rate non-zero")
	}
	c.Access(0, false)
	c.Access(0, false)
	if got := c.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", got)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	// Property: after any access sequence, the number of distinct
	// resident lines is at most capacity.
	f := func(seed int64) bool {
		cfg := Config{SizeBytes: 32 * 64, LineBytes: 64, Ways: 4}
		c := MustNew(cfg)
		rng := rand.New(rand.NewSource(seed))
		inserted := map[uint64]bool{}
		for i := 0; i < 2000; i++ {
			l := uint64(rng.Intn(256))
			c.Access(l, rng.Intn(2) == 0)
			inserted[l] = true
		}
		resident := 0
		for l := range inserted {
			if c.Contains(l) {
				resident++
			}
		}
		return resident <= cfg.SizeBytes/cfg.LineBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAccessedLineAlwaysResident(t *testing.T) {
	// Property: immediately after Access(l), Contains(l) is true.
	f := func(seed int64) bool {
		c := MustNew(Config{SizeBytes: 16 * 64, LineBytes: 64, Ways: 2})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			l := uint64(rng.Intn(128))
			c.Access(l, false)
			if !c.Contains(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHitsPlusMissesEqualsAccesses(t *testing.T) {
	c := MustNew(DefaultConfig(MiB))
	rng := rand.New(rand.NewSource(99))
	const n = 10000
	for i := 0; i < n; i++ {
		c.Access(uint64(rng.Intn(1<<16)), rng.Intn(3) == 0)
	}
	if c.Hits.Value()+c.Misses.Value() != n {
		t.Errorf("hits+misses = %d, want %d", c.Hits.Value()+c.Misses.Value(), n)
	}
}

func TestLargerCacheNeverWorse(t *testing.T) {
	// Property (for LRU): a 2x larger cache of the same shape has at
	// least as many hits on any trace (inclusion property holds for
	// fully-LRU same-set-count scaling by ways).
	rng := rand.New(rand.NewSource(5))
	trace := make([]uint64, 20000)
	for i := range trace {
		trace[i] = uint64(rng.Intn(4096))
	}
	small := MustNew(Config{SizeBytes: 128 * 1024, LineBytes: 64, Ways: 8})
	big := MustNew(Config{SizeBytes: 256 * 1024, LineBytes: 64, Ways: 16}) // same set count
	for _, l := range trace {
		small.Access(l, false)
		big.Access(l, false)
	}
	if big.Hits.Value() < small.Hits.Value() {
		t.Errorf("bigger cache hit less: %d < %d", big.Hits.Value(), small.Hits.Value())
	}
}
