// Package cache implements the simulated last-level cache: set
// associative, write-back, write-allocate, with true-LRU replacement.
// The paper's configuration uses a 2 MB LLC for single-core runs and
// 4 MB for 4-core runs, and sweeps 1-8 MB in the sensitivity study
// (Figs 12-14).
package cache

import (
	"fmt"

	"ropsim/internal/stats"
)

// Config describes an LLC instance.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // cache-line size
	Ways      int // associativity
}

// MiB is a convenience constant for sizing configs.
const MiB = 1 << 20

// DefaultConfig returns the paper's LLC shape at the given capacity:
// 64-byte lines, 16-way.
func DefaultConfig(sizeBytes int) Config {
	return Config{SizeBytes: sizeBytes, LineBytes: 64, Ways: 16}
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive config %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: LineBytes %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of line size %d", c.SizeBytes, c.LineBytes)
	}
	sets := lines / c.Ways
	if sets == 0 {
		return fmt.Errorf("cache: fewer lines (%d) than ways (%d)", lines, c.Ways)
	}
	if sets*c.Ways != lines {
		return fmt.Errorf("cache: %d lines not divisible into %d ways", lines, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// way is one line slot: the cached line index and its dirty bit.
type way struct {
	line  uint64
	valid bool
	dirty bool
}

// Cache is a set-associative LRU cache keyed by cache-line index (not
// byte address). Each set keeps its ways in LRU order: index 0 is the
// most recently used.
type Cache struct {
	cfg  Config
	sets [][]way
	mask uint64

	// Hits/Misses/Writebacks feed the experiment reports.
	Hits, Misses, Writebacks stats.Counter
}

// New builds a cache. It rejects an invalid configuration with the
// validation error (a bad CLI flag surfaces as a clean one-line error,
// not a stack trace).
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numSets := cfg.SizeBytes / cfg.LineBytes / cfg.Ways
	sets := make([][]way, numSets)
	backing := make([]way, numSets*cfg.Ways)
	for i := range sets {
		sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	return &Cache{cfg: cfg, sets: sets, mask: uint64(numSets - 1)}, nil
}

// MustNew is New for statically known-good configurations (tests,
// examples); it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// RegisterMetrics registers the cache's access counters and derived
// miss rate into r (typically an "llc"-scoped sub-registry).
func (c *Cache) RegisterMetrics(r *stats.Registry) {
	r.Register("hits", &c.Hits)
	r.Register("misses", &c.Misses)
	r.Register("writebacks", &c.Writebacks)
	r.Gauge("miss_rate", func() float64 {
		total := c.Hits.Value() + c.Misses.Value()
		if total == 0 {
			return 0
		}
		return float64(c.Misses.Value()) / float64(total)
	})
}

// Config reports the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// NumSets reports the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// Result describes the outcome of one access.
type Result struct {
	// Hit reports whether the line was present.
	Hit bool
	// EvictedValid reports a dirty victim that must be written back to
	// memory; it is false on hits and clean evictions.
	EvictedValid bool
	// EvictedLine is the dirty victim's cache-line address (valid only
	// when EvictedValid is set).
	EvictedLine uint64
}

// Access looks up line, allocating on miss (write-allocate) and marking
// dirty on write. The returned Result reports whether a dirty victim
// needs writing back.
func (c *Cache) Access(line uint64, write bool) Result {
	set := c.sets[line&c.mask]
	for i := range set {
		if set[i].valid && set[i].line == line {
			w := set[i]
			copy(set[1:i+1], set[:i]) // move to MRU
			w.dirty = w.dirty || write
			set[0] = w
			c.Hits.Inc()
			return Result{Hit: true}
		}
	}
	c.Misses.Inc()
	victim := set[len(set)-1]
	copy(set[1:], set[:len(set)-1])
	set[0] = way{line: line, valid: true, dirty: write}
	if victim.valid && victim.dirty {
		c.Writebacks.Inc()
		return Result{EvictedValid: true, EvictedLine: victim.line}
	}
	return Result{}
}

// Contains reports whether line is cached, without touching LRU state or
// counters (a test/inspection helper).
func (c *Cache) Contains(line uint64) bool {
	set := c.sets[line&c.mask]
	for i := range set {
		if set[i].valid && set[i].line == line {
			return true
		}
	}
	return false
}

// HitRate reports hits/(hits+misses), or 0 before any access.
func (c *Cache) HitRate() float64 {
	total := c.Hits.Value() + c.Misses.Value()
	if total == 0 {
		return 0
	}
	return float64(c.Hits.Value()) / float64(total)
}
