package dram

import (
	"fmt"

	"ropsim/internal/addr"
	"ropsim/internal/event"
)

// Checker independently validates a stream of issued commands against the
// JEDEC timing rules. It deliberately shares no state-update code with
// Device so that tests can cross-check the two implementations: any
// command Device admits must also pass the Checker.
type Checker struct {
	p   Params
	geo addr.Geometry

	// REFsaDur overrides the subarray-lock duration the checker models
	// for CmdREFsa: zero selects tRFCsa (ModeSubarrayRefresh); SARP runs
	// set it to tRFCpb, since SARP confines a full per-bank refresh to
	// one subarray per command (Chang et al. HPCA'14).
	REFsaDur event.Cycle

	open       [][]int64       // open row per rank/bank, noRow if closed
	lastACT    [][]event.Cycle // per bank
	lastPRE    [][]event.Cycle
	lastRDCmd  [][]event.Cycle
	lastWRCmd  [][]event.Cycle
	rankACTs   [][]event.Cycle // ACT history per rank (for tRRD/tFAW)
	lastWREnd  []event.Cycle   // per rank: end of last write burst
	refEnd     []event.Cycle   // per rank
	bankRefEnd [][]event.Cycle // per bank: end of an in-flight REFpb
	saRefEnd   [][][]event.Cycle // per bank: subarray-refresh ends, lazily allocated
	busBusyTil event.Cycle
	seen       bool // any command seen yet
	lastAt     event.Cycle
}

const neverIssued = event.Cycle(-1 << 60)

// NewChecker builds a checker for the given parameters and geometry.
func NewChecker(p Params, geo addr.Geometry) *Checker {
	c := &Checker{p: p, geo: geo}
	c.open = make([][]int64, geo.Ranks)
	c.lastACT = make([][]event.Cycle, geo.Ranks)
	c.lastPRE = make([][]event.Cycle, geo.Ranks)
	c.lastRDCmd = make([][]event.Cycle, geo.Ranks)
	c.lastWRCmd = make([][]event.Cycle, geo.Ranks)
	c.rankACTs = make([][]event.Cycle, geo.Ranks)
	c.lastWREnd = make([]event.Cycle, geo.Ranks)
	c.refEnd = make([]event.Cycle, geo.Ranks)
	c.bankRefEnd = make([][]event.Cycle, geo.Ranks)
	c.saRefEnd = make([][][]event.Cycle, geo.Ranks)
	for r := 0; r < geo.Ranks; r++ {
		c.bankRefEnd[r] = fillNever(geo.Banks)
		c.saRefEnd[r] = make([][]event.Cycle, geo.Banks)
		c.open[r] = make([]int64, geo.Banks)
		c.lastACT[r] = fillNever(geo.Banks)
		c.lastPRE[r] = fillNever(geo.Banks)
		c.lastRDCmd[r] = fillNever(geo.Banks)
		c.lastWRCmd[r] = fillNever(geo.Banks)
		c.lastWREnd[r] = neverIssued
		c.refEnd[r] = neverIssued
		for b := range c.open[r] {
			c.open[r][b] = noRow
		}
	}
	return c
}

func fillNever(n int) []event.Cycle {
	s := make([]event.Cycle, n)
	for i := range s {
		s[i] = neverIssued
	}
	return s
}

// subarrayOf mirrors Device.SubarrayOf independently (the checker
// shares no code with Device by design): rows partition evenly into
// Subarrays regions, with the remainder clamped into the last.
func (c *Checker) subarrayOf(row int) int {
	if c.p.Subarrays <= 0 {
		return 0
	}
	per := c.geo.Rows / c.p.Subarrays
	if per == 0 {
		return 0
	}
	sa := row / per
	if sa >= c.p.Subarrays {
		sa = c.p.Subarrays - 1
	}
	return sa
}

func (c *Checker) violation(cmd Command, format string, args ...any) error {
	return fmt.Errorf("dram: %s@%d r%d b%d: %s", cmd.Kind, cmd.At, cmd.Rank, cmd.Bank,
		fmt.Sprintf(format, args...))
}

func (c *Checker) requireGap(cmd Command, since event.Cycle, gap event.Cycle, rule string) error {
	if since == neverIssued {
		return nil
	}
	if cmd.At < since+gap {
		return c.violation(cmd, "%s violated: last at %d, need +%d", rule, since, gap)
	}
	return nil
}

// Check validates one command and, when legal, applies its state effects.
// Commands must be fed in non-decreasing time order.
func (c *Checker) Check(cmd Command) error {
	if c.seen && cmd.At < c.lastAt {
		return c.violation(cmd, "command stream not time-ordered (prev %d)", c.lastAt)
	}
	c.seen = true
	c.lastAt = cmd.At
	if cmd.Rank < 0 || cmd.Rank >= c.geo.Ranks {
		return c.violation(cmd, "rank out of range")
	}
	if cmd.Kind != CmdREF && (cmd.Bank < 0 || cmd.Bank >= c.geo.Banks) {
		return c.violation(cmd, "bank out of range")
	}
	r, b := cmd.Rank, cmd.Bank
	if cmd.At < c.refEnd[r] {
		return c.violation(cmd, "rank frozen by refresh until %d", c.refEnd[r])
	}

	switch cmd.Kind {
	case CmdACT:
		if c.open[r][b] != noRow {
			return c.violation(cmd, "bank already open (row %d)", c.open[r][b])
		}
		if cmd.At < c.bankRefEnd[r][b] {
			return c.violation(cmd, "bank frozen by per-bank refresh until %d", c.bankRefEnd[r][b])
		}
		if sas := c.saRefEnd[r][b]; sas != nil {
			if sa := c.subarrayOf(cmd.Row); cmd.At < sas[sa] {
				return c.violation(cmd, "ACT into subarray %d refreshing until %d", sa, sas[sa])
			}
		}
		if err := c.requireGap(cmd, c.lastACT[r][b], c.p.RC, "tRC"); err != nil {
			return err
		}
		if err := c.requireGap(cmd, c.lastPRE[r][b], c.p.RP, "tRP"); err != nil {
			return err
		}
		acts := c.rankACTs[r]
		if len(acts) > 0 {
			if err := c.requireGap(cmd, acts[len(acts)-1], c.p.RRD, "tRRD"); err != nil {
				return err
			}
		}
		if len(acts) >= 4 {
			if err := c.requireGap(cmd, acts[len(acts)-4], c.p.FAW, "tFAW"); err != nil {
				return err
			}
		}
		c.open[r][b] = int64(cmd.Row)
		c.lastACT[r][b] = cmd.At
		c.rankACTs[r] = append(acts, cmd.At)

	case CmdPRE:
		if c.open[r][b] == noRow {
			return c.violation(cmd, "bank already precharged")
		}
		if err := c.requireGap(cmd, c.lastACT[r][b], c.p.RAS, "tRAS"); err != nil {
			return err
		}
		if err := c.requireGap(cmd, c.lastRDCmd[r][b], c.p.RTP, "tRTP"); err != nil {
			return err
		}
		if c.lastWRCmd[r][b] != neverIssued {
			wrEnd := c.lastWRCmd[r][b] + c.p.CWL + c.p.DataCycles()
			if cmd.At < wrEnd+c.p.WR {
				return c.violation(cmd, "tWR violated: write data ended %d", wrEnd)
			}
		}
		c.open[r][b] = noRow
		c.lastPRE[r][b] = cmd.At

	case CmdRD, CmdWR:
		if c.open[r][b] == noRow {
			return c.violation(cmd, "column command to precharged bank")
		}
		if err := c.requireGap(cmd, c.lastACT[r][b], c.p.RCD, "tRCD"); err != nil {
			return err
		}
		for ob := 0; ob < c.geo.Banks; ob++ {
			if err := c.requireGap(cmd, c.lastRDCmd[r][ob], c.p.CCD, "tCCD"); err != nil {
				return err
			}
			if err := c.requireGap(cmd, c.lastWRCmd[r][ob], c.p.CCD, "tCCD"); err != nil {
				return err
			}
		}
		var dataStart event.Cycle
		if cmd.Kind == CmdRD {
			if c.lastWREnd[r] != neverIssued && cmd.At < c.lastWREnd[r]+c.p.WTR {
				return c.violation(cmd, "tWTR violated: write data ended %d", c.lastWREnd[r])
			}
			dataStart = cmd.At + c.p.CL
			c.lastRDCmd[r][b] = cmd.At
		} else {
			dataStart = cmd.At + c.p.CWL
			c.lastWRCmd[r][b] = cmd.At
			c.lastWREnd[r] = dataStart + c.p.DataCycles()
		}
		if dataStart < c.busBusyTil {
			return c.violation(cmd, "data bus busy until %d, burst starts %d", c.busBusyTil, dataStart)
		}
		c.busBusyTil = dataStart + c.p.DataCycles()

	case CmdREF:
		for ob := 0; ob < c.geo.Banks; ob++ {
			if c.open[r][ob] != noRow {
				return c.violation(cmd, "REF with bank %d open", ob)
			}
			if cmd.At < c.bankRefEnd[r][ob] {
				return c.violation(cmd, "REF over bank %d's per-bank refresh (until %d)",
					ob, c.bankRefEnd[r][ob])
			}
			if err := c.requireGap(Command{Kind: CmdREF, At: cmd.At, Rank: r, Bank: ob},
				c.lastPRE[r][ob], c.p.RP, "tRP-before-REF"); err != nil {
				return err
			}
		}
		c.refEnd[r] = cmd.At + c.p.RFC

	case CmdREFpb:
		if c.p.RFCpb <= 0 {
			return c.violation(cmd, "REFpb without RFCpb timing")
		}
		if c.open[r][b] != noRow {
			return c.violation(cmd, "REFpb with bank open (row %d)", c.open[r][b])
		}
		if cmd.At < c.bankRefEnd[r][b] {
			return c.violation(cmd, "bank already refreshing until %d", c.bankRefEnd[r][b])
		}
		if err := c.requireGap(cmd, c.lastPRE[r][b], c.p.RP, "tRP-before-REFpb"); err != nil {
			return err
		}
		if err := c.requireGap(cmd, c.lastACT[r][b], c.p.RC, "tRC-before-REFpb"); err != nil {
			return err
		}
		c.bankRefEnd[r][b] = cmd.At + c.p.RFCpb

	case CmdREFsa:
		// Mirrors Device.IssueREFsa / IssueREFpbSub semantics: the target
		// subarray must be quiet (no open row inside it, no refresh in
		// flight on it), but the bank itself keeps serving, so there is
		// deliberately no tRP/tRC gating against the whole bank.
		dur := c.REFsaDur
		if dur <= 0 {
			dur = c.p.RFCsa
		}
		if dur <= 0 || c.p.Subarrays <= 0 {
			return c.violation(cmd, "REFsa without subarray timing")
		}
		if cmd.Sub < 0 || cmd.Sub >= c.p.Subarrays {
			return c.violation(cmd, "subarray %d out of range", cmd.Sub)
		}
		if cmd.At < c.bankRefEnd[r][b] {
			return c.violation(cmd, "REFsa over bank's per-bank refresh (until %d)", c.bankRefEnd[r][b])
		}
		if c.open[r][b] != noRow && c.subarrayOf(int(c.open[r][b])) == cmd.Sub {
			return c.violation(cmd, "REFsa with the target subarray's row open (row %d)", c.open[r][b])
		}
		if sas := c.saRefEnd[r][b]; sas != nil && cmd.At < sas[cmd.Sub] {
			return c.violation(cmd, "subarray already refreshing until %d", sas[cmd.Sub])
		}
		if c.saRefEnd[r][b] == nil {
			c.saRefEnd[r][b] = fillNever(c.p.Subarrays)
		}
		c.saRefEnd[r][b][cmd.Sub] = cmd.At + dur

	default:
		return c.violation(cmd, "unknown command kind")
	}
	return nil
}
