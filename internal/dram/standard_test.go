package dram

import (
	"reflect"
	"strings"
	"testing"

	"ropsim/internal/event"
)

// wantStandards is the full expected registry. Adding a standard must
// extend this list (and the pin/conformance tables that key off it).
var wantStandards = []string{
	"DDR4-1600", "DDR4-2400", "DDR4-3200", "DDR5-4800", "LPDDR4-3200",
}

func TestRegistryComplete(t *testing.T) {
	if got := StandardNames(); !reflect.DeepEqual(got, wantStandards) {
		t.Fatalf("StandardNames() = %v, want %v", got, wantStandards)
	}
	if len(Standards()) != len(wantStandards) {
		t.Fatalf("Standards() has %d entries, want %d", len(Standards()), len(wantStandards))
	}
}

func TestLookupDefaultAndErrors(t *testing.T) {
	std, err := Lookup("")
	if err != nil {
		t.Fatalf("Lookup(\"\"): %v", err)
	}
	if std.Name() != DefaultStandard {
		t.Fatalf("Lookup(\"\") = %q, want default %q", std.Name(), DefaultStandard)
	}
	if _, err := Lookup("DDR3-800"); err == nil {
		t.Fatal("Lookup accepted an unknown standard")
	} else if !strings.Contains(err.Error(), "DDR4-1600") {
		t.Fatalf("unknown-standard error should list the registry, got: %v", err)
	}
}

// TestDDR4ConstructorMatchesRegistry pins the historical DDR4_1600
// constructor to the registry entry it now delegates to: byte-identical
// Params for every FGR mode, so golden artifacts cannot drift.
func TestDDR4ConstructorMatchesRegistry(t *testing.T) {
	std, err := Lookup("DDR4-1600")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []RefreshMode{Refresh1x, Refresh2x, Refresh4x} {
		want, err := std.Params(mode)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if got := DDR4_1600(mode); got != want {
			t.Errorf("mode %v: DDR4_1600 = %+v\nregistry = %+v", mode, got, want)
		}
	}
}

// TestAllStandardsBuildDevices exercises every registered standard ×
// every declared FGR mode end-to-end: Params validate, a device builds,
// and the refresh descriptor is self-consistent.
func TestAllStandardsBuildDevices(t *testing.T) {
	for _, std := range Standards() {
		desc := std.Refresh()
		if len(desc.Modes) == 0 {
			t.Errorf("%s: no refresh modes declared", std.Name())
			continue
		}
		if desc.Granularity == GranularitySameBank && desc.BankGroups <= 1 {
			t.Errorf("%s: same-bank refresh needs BankGroups > 1, got %d",
				std.Name(), desc.BankGroups)
		}
		geo := std.Geometry(2)
		if err := geo.Validate(); err != nil {
			t.Errorf("%s: geometry: %v", std.Name(), err)
			continue
		}
		for _, mode := range desc.Modes {
			p, err := std.Params(mode)
			if err != nil {
				t.Errorf("%s/%v: %v", std.Name(), mode, err)
				continue
			}
			if err := p.Validate(); err != nil {
				t.Errorf("%s/%v: %v", std.Name(), mode, err)
				continue
			}
			if p.RFCpb <= 0 {
				t.Errorf("%s/%v: RFCpb must be positive (bank refresh runs on every standard)",
					std.Name(), mode)
			}
			d := NewDevice(p, geo)
			if d.RefreshSlots() <= 0 {
				t.Errorf("%s/%v: no refresh slots", std.Name(), mode)
			}
		}
	}
}

func TestUnsupportedModesError(t *testing.T) {
	cases := []struct {
		standard string
		mode     RefreshMode
	}{
		{"DDR5-4800", Refresh4x},
		{"LPDDR4-3200", Refresh2x},
		{"LPDDR4-3200", Refresh4x},
	}
	for _, tc := range cases {
		std, err := Lookup(tc.standard)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := std.Params(tc.mode); err == nil {
			t.Errorf("%s accepted unsupported mode %v", tc.standard, tc.mode)
		}
	}
}

// TestRefreshSlotLayout pins the slot-to-banks mapping: same-bank DDR5
// groups one bank per bank group into each slot; every other standard
// keeps the legacy one-bank-per-slot layout (so DDR4/LPDDR4 bank-refresh
// schedules are byte-identical to the pre-registry simulator).
func TestRefreshSlotLayout(t *testing.T) {
	for _, std := range Standards() {
		p, err := std.Params(std.Refresh().Modes[0])
		if err != nil {
			t.Fatal(err)
		}
		geo := std.Geometry(1)
		d := NewDevice(p, geo)
		if std.Refresh().Granularity == GranularitySameBank {
			per := geo.Banks / std.Refresh().BankGroups
			if d.RefreshSlots() != per {
				t.Errorf("%s: RefreshSlots = %d, want %d", std.Name(), d.RefreshSlots(), per)
			}
			for s := 0; s < d.RefreshSlots(); s++ {
				want := make([]int, 0, std.Refresh().BankGroups)
				for g := 0; g < std.Refresh().BankGroups; g++ {
					want = append(want, g*per+s)
				}
				if got := d.SlotBanks(s); !reflect.DeepEqual(got, want) {
					t.Errorf("%s slot %d: banks %v, want %v", std.Name(), s, got, want)
				}
			}
		} else {
			if d.RefreshSlots() != geo.Banks {
				t.Errorf("%s: RefreshSlots = %d, want %d", std.Name(), d.RefreshSlots(), geo.Banks)
			}
			for s := 0; s < d.RefreshSlots(); s++ {
				if got := d.SlotBanks(s); !reflect.DeepEqual(got, []int{s}) {
					t.Errorf("%s slot %d: banks %v, want [%d]", std.Name(), s, got, s)
				}
			}
		}
		for b := 0; b < geo.Banks; b++ {
			found := false
			for _, sb := range d.SlotBanks(d.SlotOf(b)) {
				if sb == b {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: SlotOf(%d) = %d does not cover bank %d",
					std.Name(), b, d.SlotOf(b), b)
			}
		}
	}
}

// TestIssueREFSlotSameBank checks DDR5 same-bank refresh semantics: one
// slot command locks the slot's whole bank set for tRFCsb, counts as one
// refresh command, and leaves the other bank indices operational.
func TestIssueREFSlotSameBank(t *testing.T) {
	std, err := Lookup("DDR5-4800")
	if err != nil {
		t.Fatal(err)
	}
	p, err := std.Params(Refresh1x)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDevice(p, std.Geometry(1))
	end := d.IssueREFSlot(0, 0, 0)
	if want := p.RFCpb; end != want {
		t.Fatalf("unlock cycle %d, want %d", end, want)
	}
	for _, b := range d.SlotBanks(0) {
		if !d.BankRefreshing(0, b, end-1) {
			t.Errorf("bank %d not locked by slot refresh", b)
		}
		if d.BankRefreshing(0, b, end) {
			t.Errorf("bank %d still locked at unlock cycle", b)
		}
	}
	for s := 1; s < d.RefreshSlots(); s++ {
		for _, b := range d.SlotBanks(s) {
			if d.BankRefreshing(0, b, 1) {
				t.Errorf("bank %d of idle slot %d locked", b, s)
			}
		}
	}
	if got := d.NumREF.Value(); got != 1 {
		t.Errorf("NumREF = %d, want 1 (one command per slot)", got)
	}
	if got, want := d.RefLockedCycles.Value(), int64(p.RFCpb)*int64(len(d.SlotBanks(0))); got != want {
		t.Errorf("RefLockedCycles = %d, want %d (each locked bank accounts)", got, want)
	}
	// The next refresh of the same slot must wait out the in-flight one.
	if at := d.EarliestREFSlot(0, 0, 0); at != end {
		t.Errorf("EarliestREFSlot during refresh = %d, want %d", at, end)
	}
}

// TestIssueREFSlotSingletonMatchesREFpb pins the backward-compatible
// path: for standards without same-bank refresh, a slot refresh is
// exactly the legacy per-bank refresh.
func TestIssueREFSlotSingletonMatchesREFpb(t *testing.T) {
	for _, name := range []string{"DDR4-1600", "LPDDR4-3200"} {
		std, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := std.Params(Refresh1x)
		if err != nil {
			t.Fatal(err)
		}
		slotDev := NewDevice(p, std.Geometry(1))
		pbDev := NewDevice(p, std.Geometry(1))
		const bank = 3
		if a, b := slotDev.EarliestREFSlot(7, 0, bank), pbDev.EarliestREFpb(7, 0, bank); a != b {
			t.Errorf("%s: EarliestREFSlot = %d, EarliestREFpb = %d", name, a, b)
		}
		if a, b := slotDev.IssueREFSlot(7, 0, bank), pbDev.IssueREFpb(7, 0, bank); a != b {
			t.Errorf("%s: IssueREFSlot end = %d, IssueREFpb end = %d", name, a, b)
		}
		if a, b := slotDev.EarliestACT(8, 0, bank), pbDev.EarliestACT(8, 0, bank); a != b {
			t.Errorf("%s: post-refresh EarliestACT diverges: slot %d, pb %d", name, a, b)
		}
	}
}

func TestRegisterRejectsBrokenStandards(t *testing.T) {
	defer func(saved []Standard) { registry = saved }(registry)

	mustPanic := func(name string, s Standard) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register accepted %s", name)
			}
		}()
		Register(s)
	}
	dup, err := Lookup("DDR4-1600")
	if err != nil {
		t.Fatal(err)
	}
	mustPanic("a duplicate name", dup)
	mustPanic("a standard with no modes", &tableStandard{
		name: "empty", core: ddr4Core(),
		fgr: map[RefreshMode]RefreshTiming{}, desc: RefreshDescriptor{},
	})
	broken := &tableStandard{
		name: "broken", core: coreTable{BL: 8, CCD: 4, RTR: 2}, // all ns timings zero
		fgr:   map[RefreshMode]RefreshTiming{Refresh1x: {REFINanos: 7800, RFCNanos: 350}},
		desc:  RefreshDescriptor{Modes: []RefreshMode{Refresh1x}},
		banks: 8, rows: 128, cols: 32,
	}
	mustPanic("an invalid timing table", broken)
}

// TestGranularityStrings covers the Stringer for the new enum.
func TestGranularityStrings(t *testing.T) {
	cases := map[Granularity]string{
		GranularityAllBank:  "all-bank",
		GranularitySameBank: "same-bank",
		GranularityPerBank:  "per-bank",
		Granularity(9):      "Granularity(9)",
	}
	for g, want := range cases {
		if g.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(g), g.String(), want)
		}
	}
	if CmdREFpb.String() != "REFpb" {
		t.Errorf("CmdREFpb.String() = %q", CmdREFpb.String())
	}
}

// TestBurstScalesWithDataRate checks that faster interfaces move a burst
// in fewer 1.25 ns bus ticks, and that DDR4-1600 keeps the legacy BL/2.
func TestBurstScalesWithDataRate(t *testing.T) {
	want := map[string]event.Cycle{
		"DDR4-1600":   4, // 5 ns
		"DDR4-2400":   3, // 3.33 ns
		"DDR4-3200":   2, // 2.5 ns
		"DDR5-4800":   3, // BL16 at 4800 MT/s = 3.33 ns
		"LPDDR4-3200": 4, // BL16 at 3200 MT/s = 5 ns
	}
	for name, cycles := range want {
		std, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := std.Params(Refresh1x)
		if err != nil {
			t.Fatal(err)
		}
		if p.DataCycles() != cycles {
			t.Errorf("%s: DataCycles = %d, want %d", name, p.DataCycles(), cycles)
		}
	}
	legacy := DDR4_1600(Refresh1x)
	legacy.Burst = 0
	if legacy.DataCycles() != 4 {
		t.Errorf("BL/2 fallback = %d, want 4", legacy.DataCycles())
	}
}
