package dram

import (
	"fmt"

	"ropsim/internal/addr"
	"ropsim/internal/event"
	"ropsim/internal/stats"
)

// CommandKind enumerates the DRAM commands the controller can issue.
type CommandKind int

// DRAM command kinds.
const (
	CmdACT CommandKind = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
	// CmdREFpb is a bank-granularity refresh (LPDDR4 REFpb / DDR5
	// REFsb / the paper's §VII bank refresh): only the target bank
	// locks, for tRFCpb. A same-bank refresh emits one CmdREFpb per
	// bank of its set.
	CmdREFpb
	// CmdREFsa is a subarray-scoped refresh: only the Sub subarray of
	// the target bank locks, so the bank's other subarrays keep serving
	// accesses. ModeSubarrayRefresh issues it with duration tRFCsa; SARP
	// (Chang et al. HPCA'14) issues it with duration tRFCpb — a full
	// per-bank refresh confined to one subarray region per command.
	CmdREFsa
)

// String implements fmt.Stringer.
func (k CommandKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	case CmdREFpb:
		return "REFpb"
	case CmdREFsa:
		return "REFsa"
	}
	return fmt.Sprintf("CommandKind(%d)", int(k))
}

// Command is one issued DRAM command, used by the validity checker and
// by trace capture.
type Command struct {
	Kind CommandKind // which DRAM command was issued
	At   event.Cycle // issue time in bus cycles
	Rank int         // target rank
	Bank int         // unused for REF
	Row  int         // ACT only
	Col  int         // RD/WR only
	Sub  int         // REFsa only: the refreshed subarray
}

const noRow = -1

// bank holds the per-bank state machine: which row is open and the
// earliest cycle at which each command class may next be issued.
type bank struct {
	openRow int64 // noRow when precharged

	actAllowed event.Cycle // earliest next ACT
	preAllowed event.Cycle // earliest next PRE
	rdAllowed  event.Cycle // earliest next RD (row must also be open)
	wrAllowed  event.Cycle // earliest next WR

	refBusyUntil event.Cycle // bank locked by a per-bank refresh

	// saRefBusyUntil locks individual subarrays (subarray-level
	// refresh); lazily allocated.
	saRefBusyUntil []event.Cycle
}

// rank holds per-rank constraints shared by its banks.
type rank struct {
	banks []bank

	rrdAllowed   event.Cycle    // ACT-to-ACT across banks (tRRD)
	faw          [4]event.Cycle // times of the last four ACTs
	fawIdx       int
	rdAfterWrite event.Cycle // tWTR: end of write data + WTR
	refBusyUntil event.Cycle // rank frozen by refresh until this cycle
}

// Device models one DRAM channel: its ranks, banks and shared data bus.
// The controller asks Earliest* for the first legal issue cycle of a
// command and then commits it with Issue*.
type Device struct {
	p     Params
	geo   addr.Geometry
	ranks []rank

	// slotBanks maps each refresh slot to the banks one bank-granularity
	// refresh command locks: singletons for per-bank refresh, one bank
	// per bank group for DDR5-style same-bank refresh (see RefreshSlots).
	slotBanks [][]int

	busFreeAt   event.Cycle // data bus free from this cycle on
	lastBusRank int         // rank that last owned the data bus

	// Counters feed the energy model and the experiment reports.
	NumACT, NumPRE, NumRD, NumWR, NumREF stats.Counter
	// RefLockedCycles accumulates the total time ranks spent locked by
	// refresh activity (full refreshes and paused segments alike), for
	// energy accounting under partial-refresh policies.
	RefLockedCycles stats.Counter
}

// RegisterMetrics registers the device's command and refresh-lock
// counters into r (typically a "dram"-scoped sub-registry). Counts are
// channel totals; ref_locked_cycles is in bus cycles.
func (d *Device) RegisterMetrics(r *stats.Registry) {
	r.Register("num_act", &d.NumACT)
	r.Register("num_pre", &d.NumPRE)
	r.Register("num_rd", &d.NumRD)
	r.Register("num_wr", &d.NumWR)
	r.Register("num_ref", &d.NumREF)
	r.Register("ref_locked_cycles", &d.RefLockedCycles)
}

// NewDevice builds a device for one channel of the given geometry. It
// panics on invalid parameters: both are fixed configuration.
func NewDevice(p Params, geo addr.Geometry) *Device {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if err := geo.Validate(); err != nil {
		panic(err)
	}
	d := &Device{p: p, geo: geo, lastBusRank: -1}
	d.ranks = make([]rank, geo.Ranks)
	for r := range d.ranks {
		d.ranks[r].banks = make([]bank, geo.Banks)
		for b := range d.ranks[r].banks {
			d.ranks[r].banks[b].openRow = noRow
		}
		for i := range d.ranks[r].faw {
			d.ranks[r].faw[i] = fawNever
		}
	}
	d.slotBanks = buildSlotBanks(p, geo)
	return d
}

// buildSlotBanks precomputes the slot-to-banks map: under same-bank
// refresh slot s covers bank index s of every bank group (banks are
// numbered group-major, so the set is {s, s+banksPerGroup, ...});
// otherwise every bank is its own slot.
func buildSlotBanks(p Params, geo addr.Geometry) [][]int {
	if p.NativeGranularity == GranularitySameBank && p.BankGroups > 1 {
		if geo.Banks%p.BankGroups != 0 {
			panic(fmt.Sprintf("dram: %d banks not divisible into %d bank groups",
				geo.Banks, p.BankGroups))
		}
		per := geo.Banks / p.BankGroups
		sets := make([][]int, per)
		for s := 0; s < per; s++ {
			for g := 0; g < p.BankGroups; g++ {
				sets[s] = append(sets[s], g*per+s)
			}
		}
		return sets
	}
	sets := make([][]int, geo.Banks)
	for b := 0; b < geo.Banks; b++ {
		sets[b] = []int{b}
	}
	return sets
}

// RefreshSlots reports how many bank-granularity refresh commands one
// full refresh round takes: banks-per-group under same-bank refresh
// (one REFsb covers a whole bank set), the bank count otherwise.
func (d *Device) RefreshSlots() int { return len(d.slotBanks) }

// SlotBanks reports the banks the given refresh slot's command locks.
// The returned slice is shared; callers must not mutate it.
func (d *Device) SlotBanks(slot int) []int { return d.slotBanks[slot] }

// SlotOf reports which refresh slot covers the given bank.
func (d *Device) SlotOf(bank int) int {
	if n := len(d.slotBanks); n < d.geo.Banks {
		return bank % n // same-bank sets: slot = bank index within group
	}
	return bank
}

// Params reports the device timing parameters.
func (d *Device) Params() Params { return d.p }

// Geometry reports the device geometry.
func (d *Device) Geometry() addr.Geometry { return d.geo }

// OpenRow reports the row open in the given bank, or -1 when precharged.
func (d *Device) OpenRow(rankID, bankID int) int64 {
	return d.ranks[rankID].banks[bankID].openRow
}

// Refreshing reports whether the rank is frozen by a refresh at cycle
// now.
func (d *Device) Refreshing(rankID int, now event.Cycle) bool {
	return now < d.ranks[rankID].refBusyUntil
}

// BankRefreshing reports whether the bank is locked by a per-bank
// refresh at cycle now.
func (d *Device) BankRefreshing(rankID, bankID int, now event.Cycle) bool {
	return now < d.ranks[rankID].banks[bankID].refBusyUntil
}

// SubarrayOf reports which subarray a row belongs to.
func (d *Device) SubarrayOf(row int) int {
	if d.p.Subarrays <= 0 {
		return 0
	}
	per := d.geo.Rows / d.p.Subarrays
	if per == 0 {
		return 0
	}
	sa := row / per
	if sa >= d.p.Subarrays {
		sa = d.p.Subarrays - 1
	}
	return sa
}

// SubarrayRefreshing reports whether the subarray holding row is locked
// by a subarray-level refresh at cycle now.
func (d *Device) SubarrayRefreshing(rankID, bankID, row int, now event.Cycle) bool {
	bk := &d.ranks[rankID].banks[bankID]
	if bk.saRefBusyUntil == nil {
		return false
	}
	return now < bk.saRefBusyUntil[d.SubarrayOf(row)]
}

// EarliestREFsa reports the first cycle ≥ now at which a subarray-level
// refresh of the given subarray is legal. The subarray's rows need not
// be closed — only ACTs targeting the refreshing subarray conflict — but
// an open row inside it must be precharged first; callers ensure that.
func (d *Device) EarliestREFsa(now event.Cycle, rankID, bankID, sa int) event.Cycle {
	rk := &d.ranks[rankID]
	bk := &rk.banks[bankID]
	t := maxCycle(now, rk.refBusyUntil, bk.refBusyUntil)
	if bk.saRefBusyUntil != nil {
		t = maxCycle(t, bk.saRefBusyUntil[sa])
	}
	return t
}

// IssueREFsa commits a subarray-level refresh: only the target subarray
// locks, for tRFCsa. The bank's other subarrays keep operating (their
// ACTs proceed). It returns the unlock cycle.
func (d *Device) IssueREFsa(at event.Cycle, rankID, bankID, sa int) event.Cycle {
	if d.p.RFCsa <= 0 || d.p.Subarrays <= 0 {
		panic("dram: REFsa without subarray timing")
	}
	if sa < 0 || sa >= d.p.Subarrays {
		panic("dram: subarray out of range")
	}
	bk := &d.ranks[rankID].banks[bankID]
	if bk.openRow != noRow && d.SubarrayOf(int(bk.openRow)) == sa {
		panic("dram: REFsa with the target subarray's row open")
	}
	if bk.saRefBusyUntil == nil {
		bk.saRefBusyUntil = make([]event.Cycle, d.p.Subarrays)
	}
	end := at + d.p.RFCsa
	bk.saRefBusyUntil[sa] = end
	d.NumREF.Inc()
	d.RefLockedCycles.Add(int64(d.p.RFCsa))
	return end
}

// AnySubarrayRefreshing reports whether any subarray of the bank is
// locked by a subarray-scoped refresh at cycle now. SARP's
// parallel-service accounting uses it to count demand commands served
// while the bank is mid-refresh.
func (d *Device) AnySubarrayRefreshing(rankID, bankID int, now event.Cycle) bool {
	bk := &d.ranks[rankID].banks[bankID]
	for _, t := range bk.saRefBusyUntil {
		if now < t {
			return true
		}
	}
	return false
}

// EarliestREFpbSub reports the first cycle ≥ now at which a SARP
// subarray-confined bank refresh of the slot's banks is legal: like a
// slot refresh, but only the target subarray of each bank must be
// quiet — open rows in other subarrays keep the banks serving.
func (d *Device) EarliestREFpbSub(now event.Cycle, rankID, slot, sa int) event.Cycle {
	t := now
	for _, b := range d.slotBanks[slot] {
		t = maxCycle(t, d.EarliestREFsa(now, rankID, b, sa))
	}
	return t
}

// IssueREFpbSub commits one SARP refresh command (Chang et al.
// HPCA'14): each bank of the slot locks only subarray sa, for tRFCpb —
// the full per-bank refresh current and duration, confined by SARP's
// per-subarray peripherals to one subarray region per command. Demand
// to the banks' other subarrays proceeds throughout. One command
// increments NumREF once; the locked time accounts each bank's frozen
// subarray window. It returns the unlock cycle.
func (d *Device) IssueREFpbSub(at event.Cycle, rankID, slot, sa int) event.Cycle {
	if d.p.RFCpb <= 0 || d.p.Subarrays <= 0 {
		panic("dram: REFpbSub without RFCpb/subarray timing")
	}
	if sa < 0 || sa >= d.p.Subarrays {
		panic("dram: subarray out of range")
	}
	end := at + d.p.RFCpb
	for _, b := range d.slotBanks[slot] {
		bk := &d.ranks[rankID].banks[b]
		if bk.openRow != noRow && d.SubarrayOf(int(bk.openRow)) == sa {
			panic("dram: REFpbSub with the target subarray's row open")
		}
		if bk.saRefBusyUntil == nil {
			bk.saRefBusyUntil = make([]event.Cycle, d.p.Subarrays)
		}
		bk.saRefBusyUntil[sa] = end
		d.RefLockedCycles.Add(int64(d.p.RFCpb))
	}
	d.NumREF.Inc()
	return end
}

// EarliestREFpb reports the first cycle ≥ now at which a per-bank
// refresh of the given (closed) bank is legal.
func (d *Device) EarliestREFpb(now event.Cycle, rankID, bankID int) event.Cycle {
	rk := &d.ranks[rankID]
	bk := &rk.banks[bankID]
	return maxCycle(now, bk.actAllowed, bk.refBusyUntil, rk.refBusyUntil)
}

// IssueREFpb commits a per-bank refresh: only the target bank locks for
// tRFCpb; sibling banks keep operating. It returns the unlock cycle.
func (d *Device) IssueREFpb(at event.Cycle, rankID, bankID int) event.Cycle {
	rk := &d.ranks[rankID]
	bk := &rk.banks[bankID]
	if bk.openRow != noRow {
		panic("dram: REFpb with open bank")
	}
	if d.p.RFCpb <= 0 {
		panic("dram: REFpb without RFCpb timing")
	}
	end := at + d.p.RFCpb
	bk.refBusyUntil = end
	bk.actAllowed = maxCycle(bk.actAllowed, end)
	d.NumREF.Inc()
	d.RefLockedCycles.Add(int64(d.p.RFCpb))
	return end
}

// EarliestREFSlot reports the first cycle ≥ now at which the given
// refresh slot's bank-granularity refresh is legal: the latest
// EarliestREFpb over the slot's (closed) bank set. For singleton slots
// it is exactly EarliestREFpb.
func (d *Device) EarliestREFSlot(now event.Cycle, rankID, slot int) event.Cycle {
	t := now
	for _, b := range d.slotBanks[slot] {
		t = maxCycle(t, d.EarliestREFpb(now, rankID, b))
	}
	return t
}

// IssueREFSlot commits one bank-granularity refresh command for the
// slot: every bank in the slot's set locks for tRFCpb (DDR5 REFsb
// refreshes the same bank index in all groups at once; per-bank
// standards lock just the one bank). One command increments NumREF
// once; the locked time accounts each frozen bank. It returns the
// unlock cycle.
func (d *Device) IssueREFSlot(at event.Cycle, rankID, slot int) event.Cycle {
	if d.p.RFCpb <= 0 {
		panic("dram: REF slot without RFCpb timing")
	}
	rk := &d.ranks[rankID]
	end := at + d.p.RFCpb
	for _, b := range d.slotBanks[slot] {
		bk := &rk.banks[b]
		if bk.openRow != noRow {
			panic("dram: slot refresh with open bank")
		}
		bk.refBusyUntil = end
		bk.actAllowed = maxCycle(bk.actAllowed, end)
		d.RefLockedCycles.Add(int64(d.p.RFCpb))
	}
	d.NumREF.Inc()
	return end
}

// RefreshEnd reports when the rank's current refresh lock ends (a cycle
// in the past if the rank is not refreshing).
func (d *Device) RefreshEnd(rankID int) event.Cycle {
	return d.ranks[rankID].refBusyUntil
}

func maxCycle(vs ...event.Cycle) event.Cycle {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// fawNever marks an empty slot in the four-activate ring buffer.
const fawNever = event.Cycle(-1)

// fawAllowed reports the earliest cycle a new ACT satisfies the
// four-activate window: the fourth-newest ACT must be at least tFAW old.
func (r *rank) fawAllowed(p Params) event.Cycle {
	oldest := r.faw[r.fawIdx] // ring buffer: current index holds the 4th-newest
	if oldest == fawNever {
		return 0
	}
	return oldest + p.FAW
}

// EarliestACT reports the first cycle ≥ now at which ACT(rank,bank) is
// legal. The bank must be precharged; callers check OpenRow first.
func (d *Device) EarliestACT(now event.Cycle, rankID, bankID int) event.Cycle {
	rk := &d.ranks[rankID]
	bk := &rk.banks[bankID]
	return maxCycle(now, bk.actAllowed, bk.refBusyUntil, rk.rrdAllowed, rk.fawAllowed(d.p), rk.refBusyUntil)
}

// EarliestACTRow is EarliestACT extended with subarray-level refresh
// awareness: an ACT into a refreshing subarray waits for its unlock.
func (d *Device) EarliestACTRow(now event.Cycle, rankID, bankID, row int) event.Cycle {
	t := d.EarliestACT(now, rankID, bankID)
	bk := &d.ranks[rankID].banks[bankID]
	if bk.saRefBusyUntil != nil {
		t = maxCycle(t, bk.saRefBusyUntil[d.SubarrayOf(row)])
	}
	return t
}

// IssueACT commits an activate at cycle at (which must come from
// EarliestACT or later). It opens the row and advances timing state.
func (d *Device) IssueACT(at event.Cycle, rankID, bankID, row int) {
	rk := &d.ranks[rankID]
	bk := &rk.banks[bankID]
	if bk.openRow != noRow {
		panic("dram: ACT on bank with open row")
	}
	bk.openRow = int64(row)
	bk.rdAllowed = maxCycle(bk.rdAllowed, at+d.p.RCD)
	bk.wrAllowed = maxCycle(bk.wrAllowed, at+d.p.RCD)
	bk.preAllowed = maxCycle(bk.preAllowed, at+d.p.RAS)
	bk.actAllowed = maxCycle(bk.actAllowed, at+d.p.RC)
	rk.rrdAllowed = maxCycle(rk.rrdAllowed, at+d.p.RRD)
	rk.faw[rk.fawIdx] = at
	rk.fawIdx = (rk.fawIdx + 1) % len(rk.faw)
	d.NumACT.Inc()
}

// EarliestPRE reports the first cycle ≥ now at which PRE(rank,bank) is
// legal.
func (d *Device) EarliestPRE(now event.Cycle, rankID, bankID int) event.Cycle {
	rk := &d.ranks[rankID]
	bk := &rk.banks[bankID]
	return maxCycle(now, bk.preAllowed, rk.refBusyUntil)
}

// IssuePRE commits a precharge: closes the row and starts tRP.
func (d *Device) IssuePRE(at event.Cycle, rankID, bankID int) {
	bk := &d.ranks[rankID].banks[bankID]
	if bk.openRow == noRow {
		panic("dram: PRE on precharged bank")
	}
	bk.openRow = noRow
	bk.actAllowed = maxCycle(bk.actAllowed, at+d.p.RP)
	d.NumPRE.Inc()
}

// busAvailable reports the first cycle ≥ want at which the data bus is
// free for rankID, including the rank-to-rank switch penalty.
func (d *Device) busAvailable(want event.Cycle, rankID int) event.Cycle {
	free := d.busFreeAt
	if d.lastBusRank >= 0 && d.lastBusRank != rankID {
		free += d.p.RTR
	}
	return maxCycle(want, free)
}

// EarliestRD reports the first cycle ≥ now at which RD(rank,bank) is
// legal. The target row must already be open.
func (d *Device) EarliestRD(now event.Cycle, rankID, bankID int) event.Cycle {
	rk := &d.ranks[rankID]
	bk := &rk.banks[bankID]
	t := maxCycle(now, bk.rdAllowed, rk.rdAfterWrite, rk.refBusyUntil)
	// The burst occupies the bus [t+CL, t+CL+BL/2); push t until it fits.
	for {
		dataStart := t + d.p.CL
		avail := d.busAvailable(dataStart, rankID)
		if avail == dataStart {
			return t
		}
		t += avail - dataStart
	}
}

// IssueRD commits a read. It returns the cycle at which the burst
// completes (data available to the controller).
func (d *Device) IssueRD(at event.Cycle, rankID, bankID int) event.Cycle {
	rk := &d.ranks[rankID]
	bk := &rk.banks[bankID]
	if bk.openRow == noRow {
		panic("dram: RD on precharged bank")
	}
	bk.rdAllowed = maxCycle(bk.rdAllowed, at+d.p.CCD)
	bk.wrAllowed = maxCycle(bk.wrAllowed, at+d.p.CCD)
	bk.preAllowed = maxCycle(bk.preAllowed, at+d.p.RTP)
	dataStart := at + d.p.CL
	dataEnd := dataStart + d.p.DataCycles()
	d.busFreeAt = dataEnd
	d.lastBusRank = rankID
	// Column commands to sibling banks share the command/column pipes.
	for b := range rk.banks {
		rk.banks[b].rdAllowed = maxCycle(rk.banks[b].rdAllowed, at+d.p.CCD)
		rk.banks[b].wrAllowed = maxCycle(rk.banks[b].wrAllowed, at+d.p.CCD)
	}
	d.NumRD.Inc()
	return dataEnd
}

// EarliestWR reports the first cycle ≥ now at which WR(rank,bank) is
// legal. The target row must already be open.
func (d *Device) EarliestWR(now event.Cycle, rankID, bankID int) event.Cycle {
	rk := &d.ranks[rankID]
	bk := &rk.banks[bankID]
	t := maxCycle(now, bk.wrAllowed, rk.refBusyUntil)
	for {
		dataStart := t + d.p.CWL
		avail := d.busAvailable(dataStart, rankID)
		if avail == dataStart {
			return t
		}
		t += avail - dataStart
	}
}

// IssueWR commits a write. It returns the cycle at which the write data
// burst has been transferred.
func (d *Device) IssueWR(at event.Cycle, rankID, bankID int) event.Cycle {
	rk := &d.ranks[rankID]
	bk := &rk.banks[bankID]
	if bk.openRow == noRow {
		panic("dram: WR on precharged bank")
	}
	dataStart := at + d.p.CWL
	dataEnd := dataStart + d.p.DataCycles()
	bk.preAllowed = maxCycle(bk.preAllowed, dataEnd+d.p.WR)
	rk.rdAfterWrite = maxCycle(rk.rdAfterWrite, dataEnd+d.p.WTR)
	d.busFreeAt = dataEnd
	d.lastBusRank = rankID
	for b := range rk.banks {
		rk.banks[b].rdAllowed = maxCycle(rk.banks[b].rdAllowed, at+d.p.CCD)
		rk.banks[b].wrAllowed = maxCycle(rk.banks[b].wrAllowed, at+d.p.CCD)
	}
	d.NumWR.Inc()
	return dataEnd
}

// NextReadyCycle reports the earliest cycle ≥ now at which the next
// command needed by a request targeting (rankID, bankID, row) could
// legally issue: the column command (RD, or WR when isWrite) when the
// row is already open, PRE when a different row occupies the bank, and
// ACT (subarray-refresh aware) when the bank is precharged. It is the
// memory controller's wake-time oracle: device timing state only
// advances when commands issue, so between issues the controller can
// sleep until the returned cycle without missing an opportunity —
// this replaces the old tick-every-cycle retry polling. Like every
// Earliest* query it is stable: asking again at the returned cycle
// yields the same cycle.
func (d *Device) NextReadyCycle(now event.Cycle, rankID, bankID, row int, isWrite bool) event.Cycle {
	open := d.ranks[rankID].banks[bankID].openRow
	switch {
	case open == int64(row):
		if isWrite {
			return d.EarliestWR(now, rankID, bankID)
		}
		return d.EarliestRD(now, rankID, bankID)
	case open != noRow:
		return d.EarliestPRE(now, rankID, bankID)
	default:
		return d.EarliestACTRow(now, rankID, bankID, row)
	}
}

// AllBanksClosed reports whether every bank in the rank is precharged —
// the precondition for REF.
func (d *Device) AllBanksClosed(rankID int) bool {
	for b := range d.ranks[rankID].banks {
		if d.ranks[rankID].banks[b].openRow != noRow {
			return false
		}
	}
	return true
}

// EarliestREF reports the first cycle ≥ now at which REF(rank) is legal,
// assuming all banks are (or will be by then) precharged. Callers must
// ensure AllBanksClosed before issuing.
func (d *Device) EarliestREF(now event.Cycle, rankID int) event.Cycle {
	rk := &d.ranks[rankID]
	t := maxCycle(now, rk.refBusyUntil)
	for b := range rk.banks {
		// tRP must have elapsed since the closing PRE; actAllowed encodes it.
		t = maxCycle(t, rk.banks[b].actAllowed)
	}
	return t
}

// IssueREF commits a refresh: the rank is frozen for tRFC and no bank may
// activate until the refresh completes. It returns the unlock cycle.
func (d *Device) IssueREF(at event.Cycle, rankID int) event.Cycle {
	end := d.lockForRefresh(at, rankID, d.p.RFC)
	d.NumREF.Inc()
	return end
}

// IssueREFSegment commits one pausable-refresh segment (Refresh Pausing,
// Nair et al. HPCA'13): the rank freezes for dur instead of the full
// tRFC. The caller accounts for how many segments complete one logical
// refresh. It returns the unlock cycle.
func (d *Device) IssueREFSegment(at event.Cycle, rankID int, dur event.Cycle) event.Cycle {
	if dur <= 0 {
		panic("dram: non-positive refresh segment")
	}
	return d.lockForRefresh(at, rankID, dur)
}

// lockForRefresh freezes the rank for dur starting at at.
func (d *Device) lockForRefresh(at event.Cycle, rankID int, dur event.Cycle) event.Cycle {
	rk := &d.ranks[rankID]
	if !d.AllBanksClosed(rankID) {
		panic("dram: REF with open banks")
	}
	end := at + dur
	rk.refBusyUntil = end
	for b := range rk.banks {
		rk.banks[b].actAllowed = maxCycle(rk.banks[b].actAllowed, end)
	}
	d.RefLockedCycles.Add(int64(dur))
	return end
}
