package dram

import (
	"fmt"
	"sort"

	"ropsim/internal/addr"
	"ropsim/internal/event"
)

// Granularity enumerates the native refresh granularity of a DRAM
// standard: the finest per-command refresh unit its command set exposes.
// It drives which banks one fine-granularity refresh command locks (see
// Device.SlotBanks) and which refresh policy a cross-standard sweep
// treats as the standard's native one.
type Granularity int

// Native refresh granularities.
const (
	// GranularityAllBank is DDR4-style REF: one command freezes the
	// whole rank for tRFC.
	GranularityAllBank Granularity = iota
	// GranularitySameBank is DDR5 REFsb: one command refreshes the same
	// bank index in every bank group simultaneously, locking that bank
	// set for tRFCsb while the other bank indices keep serving.
	GranularitySameBank
	// GranularityPerBank is LPDDR4 REFpb: one command refreshes a single
	// bank for tRFCpb; banks take turns in round-robin order.
	GranularityPerBank
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	switch g {
	case GranularityAllBank:
		return "all-bank"
	case GranularitySameBank:
		return "same-bank"
	case GranularityPerBank:
		return "per-bank"
	}
	return fmt.Sprintf("Granularity(%d)", int(g))
}

// RefreshTiming is one row of a standard's fine-granularity refresh
// trade-off table, in datasheet nanoseconds. Each supported RefreshMode
// maps to one row: finer modes shorten the refresh interval and the
// per-command refresh cycle time together (JEDEC FGR).
type RefreshTiming struct {
	// REFINanos is the average refresh interval tREFI in ns.
	REFINanos float64
	// RFCNanos is the all-bank refresh cycle time tRFC in ns.
	RFCNanos float64
	// RFCpbNanos is the per-bank (or DDR5 same-bank) refresh cycle time
	// in ns; zero when the standard has no bank-granularity refresh.
	RFCpbNanos float64
	// RFCsaNanos is the per-subarray refresh cycle time in ns (the
	// paper's §VII hypothetical finest granularity).
	RFCsaNanos float64
}

// RefreshDescriptor describes a standard's refresh schedule: its native
// granularity, the bank-group structure that same-bank refresh spans,
// and which fine-granularity modes its trade-off table defines.
type RefreshDescriptor struct {
	// Granularity is the standard's native refresh granularity.
	Granularity Granularity
	// BankGroups is the bank-group count a same-bank refresh command
	// spans (DDR5: 8); zero for standards without same-bank refresh.
	BankGroups int
	// Modes lists the supported fine-granularity refresh modes in
	// ascending fineness; Params returns an error for any other mode.
	Modes []RefreshMode
}

// Standard is one composable DRAM standard / speed grade: a named
// command-timing table, a device geometry, and a refresh schedule
// descriptor. Every registered Standard can run under every refresh
// policy the controller implements; the timing table is materialized
// into typed event.Cycle entries by Params.
type Standard interface {
	// Name is the registry key, e.g. "DDR4-1600".
	Name() string
	// Params materializes the timing table for the given fine-grained
	// refresh mode. It returns an error when the standard's refresh
	// table has no row for the mode.
	Params(mode RefreshMode) (Params, error)
	// Geometry builds the channel geometry for the given rank count.
	Geometry(ranks int) addr.Geometry
	// Refresh describes the standard's refresh schedule.
	Refresh() RefreshDescriptor
}

// DefaultStandard names the paper's device; an empty standard selection
// resolves to it.
const DefaultStandard = "DDR4-1600"

// registry holds the registered standards in registration order (init
// order is deterministic, so listings are stable across runs).
var registry []Standard

// Register adds a standard to the registry. It panics on a duplicate
// name or on a standard whose timing table fails validation for any
// declared mode: registration happens at init time and a broken table
// must fail loudly, not at first use. Not safe for concurrent use;
// call from init functions only.
func Register(s Standard) {
	for _, have := range registry {
		if have.Name() == s.Name() {
			panic(fmt.Sprintf("dram: duplicate standard %q", s.Name()))
		}
	}
	desc := s.Refresh()
	if len(desc.Modes) == 0 {
		panic(fmt.Sprintf("dram: standard %q declares no refresh modes", s.Name()))
	}
	for _, m := range desc.Modes {
		p, err := s.Params(m)
		if err != nil {
			panic(fmt.Sprintf("dram: standard %q mode %v: %v", s.Name(), m, err))
		}
		if err := p.Validate(); err != nil {
			panic(fmt.Sprintf("dram: standard %q mode %v: %v", s.Name(), m, err))
		}
	}
	registry = append(registry, s)
}

// Lookup resolves a registered standard by name; the empty string
// resolves to DefaultStandard. Unknown names list the registry in the
// error so a mistyped CLI flag surfaces the valid choices.
func Lookup(name string) (Standard, error) {
	if name == "" {
		name = DefaultStandard
	}
	for _, s := range registry {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("dram: unknown standard %q (have %v)", name, StandardNames())
}

// Standards returns the registered standards in registration order.
// The returned slice is shared; callers must not mutate it.
func Standards() []Standard {
	return registry
}

// StandardNames returns the registered standard names, sorted.
func StandardNames() []string {
	names := make([]string, 0, len(registry))
	for _, s := range registry {
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return names
}

// coreTable is the nanosecond command-timing table shared by the
// table-driven standards. Datasheet values stay in ns and convert to
// bus cycles (1.25 ns tick) through event.FromNanos at Params time;
// entries that JEDEC defines in controller clocks rather than absolute
// time (CCD, RTR) are held directly as bus-cycle counts.
type coreTable struct {
	CLNanos    float64     // CAS (read) latency in ns
	CWLNanos   float64     // CAS write latency in ns
	RCDNanos   float64     // tRCD in ns
	RPNanos    float64     // tRP in ns
	RASNanos   float64     // tRAS in ns
	RCNanos    float64     // tRC in ns
	BL         int         // burst length in transfers
	CCD        event.Cycle // column-to-column gap, in bus cycles
	RRDNanos   float64     // tRRD in ns
	FAWNanos   float64     // tFAW in ns
	WRNanos    float64     // tWR in ns
	WTRNanos   float64     // tWTR in ns
	RTPNanos   float64     // tRTP in ns
	RTR        event.Cycle // rank-to-rank bus switch penalty, in bus cycles
	BurstNanos float64     // data-bus occupancy of one burst in ns
	Subarrays  int         // subarrays per bank (paper §VII modeling)
}

// tableStandard is a Standard built from a ns timing table plus a
// per-mode refresh trade-off table. All registered standards use it;
// a standard with exotic behavior can implement Standard directly.
type tableStandard struct {
	name  string                        // registry key ("DDR4-1600")
	label string                        // Params.Name prefix ("DDR4-1600/8Gb")
	core  coreTable                     // command timings
	fgr   map[RefreshMode]RefreshTiming // refresh trade-off table
	desc  RefreshDescriptor             // refresh schedule descriptor
	banks int                           // banks per rank
	rows  int                           // rows per bank
	cols  int                           // column lines per row
}

// Name implements Standard.
func (s *tableStandard) Name() string { return s.name }

// Refresh implements Standard.
func (s *tableStandard) Refresh() RefreshDescriptor { return s.desc }

// Geometry implements Standard.
func (s *tableStandard) Geometry(ranks int) addr.Geometry {
	return addr.Geometry{Channels: 1, Ranks: ranks, Banks: s.banks,
		Rows: s.rows, ColumnLines: s.cols}
}

// Params implements Standard: the ns table is materialized into typed
// bus-cycle entries (rounding up, via event.FromNanos) for the given
// fine-grained refresh mode.
func (s *tableStandard) Params(mode RefreshMode) (Params, error) {
	rt, ok := s.fgr[mode]
	if !ok {
		return Params{}, fmt.Errorf("dram: standard %s does not support refresh mode %v (modes %v)",
			s.name, mode, s.desc.Modes)
	}
	t := s.core
	p := Params{
		Name:              s.label + "/" + mode.String(),
		CL:                event.FromNanos(t.CLNanos),
		CWL:               event.FromNanos(t.CWLNanos),
		RCD:               event.FromNanos(t.RCDNanos),
		RP:                event.FromNanos(t.RPNanos),
		RAS:               event.FromNanos(t.RASNanos),
		RC:                event.FromNanos(t.RCNanos),
		BL:                t.BL,
		CCD:               t.CCD,
		RRD:               event.FromNanos(t.RRDNanos),
		FAW:               event.FromNanos(t.FAWNanos),
		WR:                event.FromNanos(t.WRNanos),
		WTR:               event.FromNanos(t.WTRNanos),
		RTP:               event.FromNanos(t.RTPNanos),
		RTR:               t.RTR,
		Burst:             event.FromNanos(t.BurstNanos),
		Subarrays:         t.Subarrays,
		NativeGranularity: s.desc.Granularity,
		BankGroups:        s.desc.BankGroups,
		REFI:              event.FromNanos(rt.REFINanos),
		RFC:               event.FromNanos(rt.RFCNanos),
	}
	if rt.RFCpbNanos > 0 {
		p.RFCpb = event.FromNanos(rt.RFCpbNanos)
	}
	if rt.RFCsaNanos > 0 {
		p.RFCsa = event.FromNanos(rt.RFCsaNanos)
	}
	return p, nil
}

// ddr4Core returns the command-timing entries every modeled DDR4 speed
// grade shares structurally (BL8 over a 64-bit bus, cycle-defined
// CCD/RTR, 8 subarrays per bank); speed-grade ns values are filled in
// by the caller.
func ddr4Core() coreTable {
	return coreTable{BL: 8, CCD: 4, RTR: 2, Subarrays: 8}
}

// ddr4FGR is the 8 Gb DDR4 fine-granularity refresh trade-off table
// (JESD79-4 Table 131: tREFI and tRFC1/2/4; tRFCpb/tRFCsa per the
// paper's §VII bank/subarray modeling). It is shared by every DDR4
// speed grade: refresh is a function of the die, not the interface
// clock.
func ddr4FGR() map[RefreshMode]RefreshTiming {
	return map[RefreshMode]RefreshTiming{
		Refresh1x: {REFINanos: 7800, RFCNanos: 350, RFCpbNanos: 140, RFCsaNanos: 60},
		Refresh2x: {REFINanos: 3900, RFCNanos: 260, RFCpbNanos: 110, RFCsaNanos: 50},
		Refresh4x: {REFINanos: 1950, RFCNanos: 160, RFCpbNanos: 70, RFCsaNanos: 40},
	}
}

// ddr4Modes lists the DDR4 FGR modes in ascending fineness.
func ddr4Modes() []RefreshMode { return []RefreshMode{Refresh1x, Refresh2x, Refresh4x} }

func init() {
	// DDR4-1600: the paper's device (Table III). Its cycle values are
	// pinned by TestStandardPins and must stay byte-identical to the
	// historical DDR4_1600 constructor: every golden artifact anchors
	// on them.
	c1600 := ddr4Core()
	c1600.CLNanos, c1600.CWLNanos = 13.75, 11.25
	c1600.RCDNanos, c1600.RPNanos = 13.75, 13.75
	c1600.RASNanos, c1600.RCNanos = 35, 48.75
	c1600.RRDNanos, c1600.FAWNanos = 7.5, 35
	c1600.WRNanos, c1600.WTRNanos, c1600.RTPNanos = 15, 7.5, 7.5
	c1600.BurstNanos = 5 // 8 beats at 1600 MT/s
	Register(&tableStandard{
		name: "DDR4-1600", label: "DDR4-1600/8Gb",
		core: c1600, fgr: ddr4FGR(),
		desc:  RefreshDescriptor{Granularity: GranularityAllBank, Modes: ddr4Modes()},
		banks: 8, rows: 32768, cols: 128,
	})

	// DDR4-2400 (CL15 bin, 8 Gb): same die and refresh table as
	// DDR4-1600, faster interface (tighter CAS/RCD/RP, shorter burst).
	c2400 := ddr4Core()
	c2400.CLNanos, c2400.CWLNanos = 12.5, 10
	c2400.RCDNanos, c2400.RPNanos = 12.5, 12.5
	c2400.RASNanos, c2400.RCNanos = 32, 45
	c2400.RRDNanos, c2400.FAWNanos = 4.9, 30
	c2400.WRNanos, c2400.WTRNanos, c2400.RTPNanos = 15, 7.5, 7.5
	c2400.BurstNanos = 10.0 / 3 // 8 beats at 2400 MT/s
	Register(&tableStandard{
		name: "DDR4-2400", label: "DDR4-2400/8Gb",
		core: c2400, fgr: ddr4FGR(),
		desc:  RefreshDescriptor{Granularity: GranularityAllBank, Modes: ddr4Modes()},
		banks: 8, rows: 32768, cols: 128,
	})

	// DDR4-3200 (CL22 bin, 8 Gb): the fastest standard DDR4 grade.
	c3200 := ddr4Core()
	c3200.CLNanos, c3200.CWLNanos = 13.75, 10
	c3200.RCDNanos, c3200.RPNanos = 13.75, 13.75
	c3200.RASNanos, c3200.RCNanos = 32, 45.75
	c3200.RRDNanos, c3200.FAWNanos = 4.9, 25
	c3200.WRNanos, c3200.WTRNanos, c3200.RTPNanos = 15, 7.5, 7.5
	c3200.BurstNanos = 2.5 // 8 beats at 3200 MT/s
	Register(&tableStandard{
		name: "DDR4-3200", label: "DDR4-3200/8Gb",
		core: c3200, fgr: ddr4FGR(),
		desc:  RefreshDescriptor{Granularity: GranularityAllBank, Modes: ddr4Modes()},
		banks: 8, rows: 32768, cols: 128,
	})

	// DDR5-4800 (16 Gb, CL40 bin): 32 banks in 8 bank groups, BL16, and
	// native same-bank refresh — one REFsb refreshes the same bank index
	// in all 8 groups for tRFCsb, while the other three bank indices
	// keep serving. JESD79-5 defines FGR modes 1x and 2x only.
	Register(&tableStandard{
		name: "DDR5-4800", label: "DDR5-4800/16Gb",
		core: coreTable{
			CLNanos: 16.67, CWLNanos: 15.83,
			RCDNanos: 16.67, RPNanos: 16.67,
			RASNanos: 32, RCNanos: 50,
			BL: 16, CCD: 6,
			RRDNanos: 5, FAWNanos: 20,
			WRNanos: 30, WTRNanos: 10, RTPNanos: 7.5,
			RTR:        2,
			BurstNanos: 10.0 / 3, // 16 beats at 4800 MT/s
			Subarrays:  8,
		},
		fgr: map[RefreshMode]RefreshTiming{
			Refresh1x: {REFINanos: 3900, RFCNanos: 295, RFCpbNanos: 130, RFCsaNanos: 55},
			Refresh2x: {REFINanos: 1950, RFCNanos: 160, RFCpbNanos: 130, RFCsaNanos: 55},
		},
		desc: RefreshDescriptor{Granularity: GranularitySameBank, BankGroups: 8,
			Modes: []RefreshMode{Refresh1x, Refresh2x}},
		banks: 32, rows: 32768, cols: 128,
	})

	// LPDDR4-3200 (8 Gb): BL16 and native per-bank refresh — REFpb
	// cycles through the 8 banks in round-robin order at tREFIpb =
	// tREFI/8, locking one bank for tRFCpb each. LPDDR4 has no JEDEC
	// FGR trade-off table (per-bank refresh is its fine granularity),
	// so 1x is the only mode.
	Register(&tableStandard{
		name: "LPDDR4-3200", label: "LPDDR4-3200/8Gb",
		core: coreTable{
			CLNanos: 17.5, CWLNanos: 8.75,
			RCDNanos: 18, RPNanos: 18,
			RASNanos: 42, RCNanos: 63,
			BL: 16, CCD: 4,
			RRDNanos: 7.5, FAWNanos: 30,
			WRNanos: 18, WTRNanos: 10, RTPNanos: 7.5,
			RTR:        2,
			BurstNanos: 5, // 16 beats at 3200 MT/s
			Subarrays:  8,
		},
		fgr: map[RefreshMode]RefreshTiming{
			Refresh1x: {REFINanos: 3904, RFCNanos: 180, RFCpbNanos: 90, RFCsaNanos: 45},
		},
		desc: RefreshDescriptor{Granularity: GranularityPerBank,
			Modes: []RefreshMode{Refresh1x}},
		banks: 8, rows: 32768, cols: 128,
	})
}
