package dram

import (
	"math/rand"
	"testing"

	"ropsim/internal/event"
)

// driveConformance runs a random but greedy-legal command stream through
// the device and cross-checks every issued command against the
// independent Checker — the cross-standard conformance property: any
// command the device admits must pass the checker, for every standard.
// steps and seed parameterize the stream so the fuzz target can reuse it.
func driveConformance(t *testing.T, std Standard, mode RefreshMode, seed int64, steps int) {
	t.Helper()
	p, err := std.Params(mode)
	if err != nil {
		t.Fatalf("%s/%v: %v", std.Name(), mode, err)
	}
	geo := std.Geometry(2)
	geo.Rows = 128 // keep row indices small; timing does not depend on rows
	d := NewDevice(p, geo)
	c := NewChecker(p, geo)
	rng := rand.New(rand.NewSource(seed))
	now := event.Cycle(0)
	issue := func(cmd Command) {
		if err := c.Check(cmd); err != nil {
			t.Fatalf("%s/%v seed %d: device issued illegal command: %v",
				std.Name(), mode, seed, err)
		}
	}
	closeBank := func(r, b int) {
		if d.OpenRow(r, b) != noRow {
			at := d.EarliestPRE(now, r, b)
			d.IssuePRE(at, r, b)
			issue(Command{Kind: CmdPRE, At: at, Rank: r, Bank: b})
			now = at
		}
	}
	for i := 0; i < steps; i++ {
		r := rng.Intn(geo.Ranks)
		b := rng.Intn(geo.Banks)
		switch op := rng.Intn(12); {
		case op < 5: // column access, activating if needed
			row := rng.Intn(geo.Rows)
			if open := d.OpenRow(r, b); open != noRow && open != int64(row) {
				closeBank(r, b)
			}
			if d.OpenRow(r, b) == noRow {
				at := d.EarliestACT(now, r, b)
				d.IssueACT(at, r, b, row)
				issue(Command{Kind: CmdACT, At: at, Rank: r, Bank: b, Row: row})
				now = at
			}
			if rng.Intn(2) == 0 {
				at := d.EarliestRD(now, r, b)
				d.IssueRD(at, r, b)
				issue(Command{Kind: CmdRD, At: at, Rank: r, Bank: b})
				now = at
			} else {
				at := d.EarliestWR(now, r, b)
				d.IssueWR(at, r, b)
				issue(Command{Kind: CmdWR, At: at, Rank: r, Bank: b})
				now = at
			}
		case op < 6: // precharge if open
			closeBank(r, b)
		case op < 7: // all-bank refresh
			for ob := 0; ob < geo.Banks; ob++ {
				closeBank(r, ob)
			}
			at := d.EarliestREF(now, r)
			d.IssueREF(at, r)
			issue(Command{Kind: CmdREF, At: at, Rank: r})
			now = at
		case op < 9: // bank-granularity refresh of b's slot
			slot := d.SlotOf(b)
			for _, sb := range d.SlotBanks(slot) {
				closeBank(r, sb)
			}
			at := d.EarliestREFSlot(now, r, slot)
			d.IssueREFSlot(at, r, slot)
			for _, sb := range d.SlotBanks(slot) {
				issue(Command{Kind: CmdREFpb, At: at, Rank: r, Bank: sb})
			}
			now = at
		default: // idle a little
			now += event.Cycle(rng.Intn(20))
		}
	}
}

// TestConformanceAllStandards runs the device-vs-checker conformance
// property for every registered standard × declared FGR mode.
func TestConformanceAllStandards(t *testing.T) {
	steps := 3000
	if testing.Short() {
		steps = 600
	}
	for _, std := range Standards() {
		for _, mode := range std.Refresh().Modes {
			t.Run(std.Name()+"/"+mode.String(), func(t *testing.T) {
				for seed := int64(1); seed <= 3; seed++ {
					driveConformance(t, std, mode, seed, steps)
				}
			})
		}
	}
}

// FuzzConformance is the randomized-seed form of the conformance
// property: the fuzzer explores seeds, and every (standard, mode) pair
// must keep device and checker in agreement.
func FuzzConformance(f *testing.F) {
	for seed := int64(1); seed <= 5; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		for _, std := range Standards() {
			for _, mode := range std.Refresh().Modes {
				driveConformance(t, std, mode, seed, 400)
			}
		}
	})
}

// TestCheckerCatchesEarlyCommands issues streams that are exactly one
// cycle too early for one timing rule, per standard: the checker must
// reject what the device would never emit.
func TestCheckerCatchesEarlyCommands(t *testing.T) {
	for _, std := range Standards() {
		p, err := std.Params(std.Refresh().Modes[0])
		if err != nil {
			t.Fatal(err)
		}
		geo := std.Geometry(1)
		geo.Rows = 128
		cases := []struct {
			name string
			cmds []Command
		}{
			{"tRCD one early", []Command{
				{Kind: CmdACT, At: 0, Bank: 0, Row: 1},
				{Kind: CmdRD, At: p.RCD - 1, Bank: 0},
			}},
			{"tRP one early", []Command{
				{Kind: CmdACT, At: 0, Bank: 0, Row: 1},
				{Kind: CmdPRE, At: p.RAS, Bank: 0},
				{Kind: CmdACT, At: p.RAS + p.RP - 1, Bank: 0, Row: 2},
			}},
			{"tRFCpb one early", []Command{
				{Kind: CmdREFpb, At: 0, Bank: 0},
				{Kind: CmdACT, At: p.RFCpb - 1, Bank: 0, Row: 1},
			}},
			{"REFpb on open bank", []Command{
				{Kind: CmdACT, At: 0, Bank: 0, Row: 1},
				{Kind: CmdREFpb, At: p.RC, Bank: 0},
			}},
			{"tRFC one early", []Command{
				{Kind: CmdREF, At: 0},
				{Kind: CmdACT, At: p.RFC - 1, Bank: 0, Row: 1},
			}},
			{"REF over in-flight REFpb", []Command{
				{Kind: CmdREFpb, At: 0, Bank: 0},
				{Kind: CmdREF, At: p.RFCpb - 1},
			}},
		}
		for _, tc := range cases {
			c := NewChecker(p, geo)
			var lastErr error
			for _, cmd := range tc.cmds {
				if lastErr = c.Check(cmd); lastErr != nil {
					break
				}
			}
			if lastErr == nil {
				t.Errorf("%s: checker accepted %s", std.Name(), tc.name)
			}
		}
	}
}

// TestCheckerAcceptsBoundaryCommands is the complement: the same streams
// shifted one cycle later must pass, pinning the rules as ≥ not >.
func TestCheckerAcceptsBoundaryCommands(t *testing.T) {
	for _, std := range Standards() {
		p, err := std.Params(std.Refresh().Modes[0])
		if err != nil {
			t.Fatal(err)
		}
		geo := std.Geometry(1)
		geo.Rows = 128
		cases := []struct {
			name string
			cmds []Command
		}{
			{"tRCD boundary", []Command{
				{Kind: CmdACT, At: 0, Bank: 0, Row: 1},
				{Kind: CmdRD, At: p.RCD, Bank: 0},
			}},
			{"tRFCpb boundary", []Command{
				{Kind: CmdREFpb, At: 0, Bank: 0},
				{Kind: CmdACT, At: p.RFCpb, Bank: 0, Row: 1},
			}},
			{"tRFC boundary", []Command{
				{Kind: CmdREF, At: 0},
				{Kind: CmdACT, At: p.RFC, Bank: 0, Row: 1},
			}},
		}
		for _, tc := range cases {
			c := NewChecker(p, geo)
			for _, cmd := range tc.cmds {
				if err := c.Check(cmd); err != nil {
					t.Errorf("%s: checker rejected %s: %v", std.Name(), tc.name, err)
					break
				}
			}
		}
	}
}
