package dram

import (
	"math/rand"
	"testing"

	"ropsim/internal/addr"
	"ropsim/internal/event"
)

func testGeo() addr.Geometry {
	return addr.Geometry{Channels: 1, Ranks: 2, Banks: 8, Rows: 128, ColumnLines: 32}
}

func TestParamsValidate(t *testing.T) {
	for _, mode := range []RefreshMode{Refresh1x, Refresh2x, Refresh4x} {
		p := DDR4_1600(mode)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := DDR4_1600(Refresh1x)
	bad.RCD = 0
	if bad.Validate() == nil {
		t.Error("Validate accepted zero RCD")
	}
	bad = DDR4_1600(Refresh1x)
	bad.RC = 1
	if bad.Validate() == nil {
		t.Error("Validate accepted RC < RAS+RP")
	}
}

func TestRefreshDutyCycle(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := p.RefreshDutyCycle()
	// 280/6240 ≈ 4.49%.
	if d < 0.04 || d > 0.05 {
		t.Errorf("duty cycle = %g, want ≈0.045", d)
	}
	if NoRefresh(p).RefreshDutyCycle() != 0 {
		t.Error("NoRefresh duty cycle non-zero")
	}
}

func TestFGRModesShorterRFC(t *testing.T) {
	p1, p2, p4 := DDR4_1600(Refresh1x), DDR4_1600(Refresh2x), DDR4_1600(Refresh4x)
	if !(p1.RFC > p2.RFC && p2.RFC > p4.RFC) {
		t.Errorf("RFC should shrink with finer modes: %d %d %d", p1.RFC, p2.RFC, p4.RFC)
	}
	if !(p1.REFI > p2.REFI && p2.REFI > p4.REFI) {
		t.Errorf("REFI should shrink with finer modes: %d %d %d", p1.REFI, p2.REFI, p4.REFI)
	}
}

func TestBasicReadTiming(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	at := d.EarliestACT(0, 0, 0)
	if at != 0 {
		t.Fatalf("first ACT at %d, want 0", at)
	}
	d.IssueACT(at, 0, 0, 7)
	rd := d.EarliestRD(at, 0, 0)
	if rd != at+p.RCD {
		t.Fatalf("first RD at %d, want %d", rd, at+p.RCD)
	}
	done := d.IssueRD(rd, 0, 0)
	want := rd + p.CL + p.DataCycles()
	if done != want {
		t.Fatalf("read data done at %d, want %d", done, want)
	}
}

func TestRowBufferHitFasterThanConflict(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	// Hit: ACT once, two reads.
	d := NewDevice(p, testGeo())
	d.IssueACT(0, 0, 0, 1)
	r1 := d.EarliestRD(p.RCD, 0, 0)
	done1 := d.IssueRD(r1, 0, 0)
	r2 := d.EarliestRD(done1, 0, 0)
	hitDone := d.IssueRD(r2, 0, 0)

	// Conflict: ACT row 1, read, then PRE + ACT row 2, read.
	d2 := NewDevice(p, testGeo())
	d2.IssueACT(0, 0, 0, 1)
	r1 = d2.EarliestRD(p.RCD, 0, 0)
	done1 = d2.IssueRD(r1, 0, 0)
	pre := d2.EarliestPRE(done1, 0, 0)
	d2.IssuePRE(pre, 0, 0)
	act := d2.EarliestACT(pre, 0, 0)
	d2.IssueACT(act, 0, 0, 2)
	r2 = d2.EarliestRD(act, 0, 0)
	confDone := d2.IssueRD(r2, 0, 0)

	if hitDone >= confDone {
		t.Errorf("row hit (%d) not faster than conflict (%d)", hitDone, confDone)
	}
}

func TestRefreshFreezesRank(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	at := d.EarliestREF(0, 0)
	end := d.IssueREF(at, 0)
	if end != at+p.RFC {
		t.Fatalf("refresh end = %d, want %d", end, at+p.RFC)
	}
	if !d.Refreshing(0, at) || !d.Refreshing(0, end-1) || d.Refreshing(0, end) {
		t.Error("Refreshing window wrong")
	}
	// ACT to the refreshing rank must wait for the unlock.
	if got := d.EarliestACT(at, 0, 0); got != end {
		t.Errorf("ACT during refresh at %d, want %d", got, end)
	}
	// The other rank is unaffected.
	if got := d.EarliestACT(at, 1, 0); got != at {
		t.Errorf("ACT on other rank delayed to %d, want %d", got, at)
	}
}

func TestRefreshRequiresClosedBanks(t *testing.T) {
	d := NewDevice(DDR4_1600(Refresh1x), testGeo())
	d.IssueACT(0, 0, 3, 1)
	if d.AllBanksClosed(0) {
		t.Fatal("AllBanksClosed with open bank")
	}
	defer func() {
		if recover() == nil {
			t.Error("IssueREF with open bank did not panic")
		}
	}()
	d.IssueREF(100, 0)
}

func TestFAWLimitsActivates(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	var last event.Cycle
	var times []event.Cycle
	for b := 0; b < 5; b++ {
		at := d.EarliestACT(last, 0, b)
		d.IssueACT(at, 0, b, 1)
		times = append(times, at)
		last = at
	}
	if times[4]-times[0] < p.FAW {
		t.Errorf("5th ACT at %d, 1st at %d: violates tFAW=%d", times[4], times[0], p.FAW)
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < p.RRD {
			t.Errorf("ACTs %d apart, violates tRRD=%d", times[i]-times[i-1], p.RRD)
		}
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	d.IssueACT(0, 0, 0, 1)
	w := d.EarliestWR(p.RCD, 0, 0)
	wEnd := d.IssueWR(w, 0, 0)
	r := d.EarliestRD(w+1, 0, 0)
	if r < wEnd+p.WTR {
		t.Errorf("read at %d violates tWTR (write data end %d)", r, wEnd)
	}
}

func TestDataBusSerializesReads(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	d.IssueACT(0, 0, 0, 1)
	a2 := d.EarliestACT(0, 0, 1)
	d.IssueACT(a2, 0, 1, 1)
	t1 := d.EarliestRD(a2+p.RCD, 0, 0)
	done1 := d.IssueRD(t1, 0, 0)
	t2 := d.EarliestRD(t1, 0, 1)
	done2 := d.IssueRD(t2, 0, 1)
	if done2 < done1+p.DataCycles() {
		t.Errorf("bursts overlap: done1=%d done2=%d", done1, done2)
	}
}

// TestDeviceMatchesChecker drives the device with a random but
// greedy-legal command stream and cross-checks every issued command
// against the independent timing checker.
func TestDeviceMatchesChecker(t *testing.T) {
	geo := testGeo()
	for _, mode := range []RefreshMode{Refresh1x, Refresh4x} {
		p := DDR4_1600(mode)
		d := NewDevice(p, geo)
		c := NewChecker(p, geo)
		rng := rand.New(rand.NewSource(42))
		now := event.Cycle(0)
		issue := func(cmd Command) {
			if err := c.Check(cmd); err != nil {
				t.Fatalf("mode %s: device issued illegal command: %v", mode, err)
			}
		}
		for i := 0; i < 3000; i++ {
			r := rng.Intn(geo.Ranks)
			b := rng.Intn(geo.Banks)
			switch op := rng.Intn(10); {
			case op < 4: // column access, activating if needed
				row := rng.Intn(geo.Rows)
				if open := d.OpenRow(r, b); open != noRow && open != int64(row) {
					at := d.EarliestPRE(now, r, b)
					d.IssuePRE(at, r, b)
					issue(Command{Kind: CmdPRE, At: at, Rank: r, Bank: b})
					now = at
				}
				if d.OpenRow(r, b) == noRow {
					at := d.EarliestACT(now, r, b)
					d.IssueACT(at, r, b, row)
					issue(Command{Kind: CmdACT, At: at, Rank: r, Bank: b, Row: row})
					now = at
				}
				if rng.Intn(2) == 0 {
					at := d.EarliestRD(now, r, b)
					d.IssueRD(at, r, b)
					issue(Command{Kind: CmdRD, At: at, Rank: r, Bank: b})
					now = at
				} else {
					at := d.EarliestWR(now, r, b)
					d.IssueWR(at, r, b)
					issue(Command{Kind: CmdWR, At: at, Rank: r, Bank: b})
					now = at
				}
			case op < 5: // precharge if open
				if d.OpenRow(r, b) != noRow {
					at := d.EarliestPRE(now, r, b)
					d.IssuePRE(at, r, b)
					issue(Command{Kind: CmdPRE, At: at, Rank: r, Bank: b})
					now = at
				}
			case op < 6: // refresh rank r
				for ob := 0; ob < geo.Banks; ob++ {
					if d.OpenRow(r, ob) != noRow {
						at := d.EarliestPRE(now, r, ob)
						d.IssuePRE(at, r, ob)
						issue(Command{Kind: CmdPRE, At: at, Rank: r, Bank: ob})
						now = at
					}
				}
				at := d.EarliestREF(now, r)
				d.IssueREF(at, r)
				issue(Command{Kind: CmdREF, At: at, Rank: r})
				now = at
			default: // idle a little
				now += event.Cycle(rng.Intn(20))
			}
		}
	}
}

func TestCheckerCatchesViolations(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	geo := testGeo()

	cases := []struct {
		name string
		cmds []Command
	}{
		{"RD before ACT", []Command{{Kind: CmdRD, At: 0, Rank: 0, Bank: 0}}},
		{"double ACT", []Command{
			{Kind: CmdACT, At: 0, Rank: 0, Bank: 0, Row: 1},
			{Kind: CmdACT, At: 100, Rank: 0, Bank: 0, Row: 2},
		}},
		{"tRCD violated", []Command{
			{Kind: CmdACT, At: 0, Rank: 0, Bank: 0, Row: 1},
			{Kind: CmdRD, At: 1, Rank: 0, Bank: 0},
		}},
		{"tRAS violated", []Command{
			{Kind: CmdACT, At: 0, Rank: 0, Bank: 0, Row: 1},
			{Kind: CmdPRE, At: 5, Rank: 0, Bank: 0},
		}},
		{"REF with open bank", []Command{
			{Kind: CmdACT, At: 0, Rank: 0, Bank: 0, Row: 1},
			{Kind: CmdREF, At: 100, Rank: 0},
		}},
		{"access during refresh", []Command{
			{Kind: CmdREF, At: 0, Rank: 0},
			{Kind: CmdACT, At: 10, Rank: 0, Bank: 0, Row: 1},
		}},
		{"tRRD violated", []Command{
			{Kind: CmdACT, At: 0, Rank: 0, Bank: 0, Row: 1},
			{Kind: CmdACT, At: 1, Rank: 0, Bank: 1, Row: 1},
		}},
	}
	for _, tc := range cases {
		c := NewChecker(p, geo)
		var err error
		for _, cmd := range tc.cmds {
			if err = c.Check(cmd); err != nil {
				break
			}
		}
		if err == nil {
			t.Errorf("%s: checker accepted illegal stream", tc.name)
		}
	}
}

func TestCheckerAcceptsLegalStream(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	c := NewChecker(p, testGeo())
	cmds := []Command{
		{Kind: CmdACT, At: 0, Rank: 0, Bank: 0, Row: 1},
		{Kind: CmdRD, At: p.RCD, Rank: 0, Bank: 0},
		{Kind: CmdPRE, At: 100, Rank: 0, Bank: 0},
		{Kind: CmdREF, At: 200, Rank: 0},
		{Kind: CmdACT, At: 200 + p.RFC, Rank: 0, Bank: 0, Row: 2},
	}
	for i, cmd := range cmds {
		if err := c.Check(cmd); err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
	}
}

func TestCommandCounters(t *testing.T) {
	d := NewDevice(DDR4_1600(Refresh1x), testGeo())
	d.IssueACT(0, 0, 0, 1)
	d.IssueRD(d.EarliestRD(50, 0, 0), 0, 0)
	d.IssueWR(d.EarliestWR(100, 0, 0), 0, 0)
	d.IssuePRE(d.EarliestPRE(200, 0, 0), 0, 0)
	d.IssueREF(d.EarliestREF(400, 0), 0)
	if d.NumACT.Value() != 1 || d.NumRD.Value() != 1 || d.NumWR.Value() != 1 ||
		d.NumPRE.Value() != 1 || d.NumREF.Value() != 1 {
		t.Errorf("counters: ACT=%d RD=%d WR=%d PRE=%d REF=%d, want all 1",
			d.NumACT.Value(), d.NumRD.Value(), d.NumWR.Value(),
			d.NumPRE.Value(), d.NumREF.Value())
	}
}

func TestPerBankRefreshIsolatesBanks(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	end := d.IssueREFpb(100, 0, 3)
	if end != 100+p.RFCpb {
		t.Fatalf("REFpb end = %d, want %d", end, 100+p.RFCpb)
	}
	if !d.BankRefreshing(0, 3, 100) || d.BankRefreshing(0, 3, end) {
		t.Error("bank refresh window wrong")
	}
	if d.BankRefreshing(0, 2, 150) {
		t.Error("sibling bank marked refreshing")
	}
	// ACT to the refreshing bank waits; sibling bank proceeds.
	if got := d.EarliestACT(150, 0, 3); got != end {
		t.Errorf("ACT on refreshing bank at %d, want %d", got, end)
	}
	if got := d.EarliestACT(150, 0, 2); got != 150 {
		t.Errorf("ACT on sibling bank delayed to %d", got)
	}
	// The whole rank is NOT refreshing.
	if d.Refreshing(0, 150) {
		t.Error("rank-level refreshing set by per-bank refresh")
	}
}

func TestPerBankRefreshAccounting(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	d.IssueREFpb(0, 0, 0)
	d.IssueREFpb(0, 1, 5)
	if d.NumREF.Value() != 2 {
		t.Errorf("NumREF = %d, want 2", d.NumREF.Value())
	}
	if d.RefLockedCycles.Value() != 2*int64(p.RFCpb) {
		t.Errorf("RefLockedCycles = %d, want %d", d.RefLockedCycles.Value(), 2*int64(p.RFCpb))
	}
}

func TestPerBankRefreshRequiresClosedBank(t *testing.T) {
	d := NewDevice(DDR4_1600(Refresh1x), testGeo())
	d.IssueACT(0, 0, 3, 1)
	defer func() {
		if recover() == nil {
			t.Error("REFpb on open bank did not panic")
		}
	}()
	d.IssueREFpb(100, 0, 3)
}

func TestSegmentRefreshLocksForDuration(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	end := d.IssueREFSegment(50, 1, 35)
	if end != 85 {
		t.Fatalf("segment end = %d, want 85", end)
	}
	if !d.Refreshing(1, 84) || d.Refreshing(1, 85) {
		t.Error("segment lock window wrong")
	}
	if d.RefLockedCycles.Value() != 35 {
		t.Errorf("RefLockedCycles = %d, want 35", d.RefLockedCycles.Value())
	}
	// NumREF counts logical refreshes only, not segments.
	if d.NumREF.Value() != 0 {
		t.Errorf("NumREF = %d, want 0 for a bare segment", d.NumREF.Value())
	}
}

func TestSubarrayRefreshIsolation(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	geo := testGeo()
	rowsPerSA := geo.Rows / p.Subarrays
	// Refresh subarray 0 of bank 2.
	end := d.IssueREFsa(100, 0, 2, 0)
	if end != 100+p.RFCsa {
		t.Fatalf("REFsa end = %d, want %d", end, 100+p.RFCsa)
	}
	// A row in subarray 0 waits; a row in subarray 1 proceeds.
	if got := d.EarliestACTRow(120, 0, 2, 0); got != end {
		t.Errorf("ACT into refreshing subarray at %d, want %d", got, end)
	}
	if got := d.EarliestACTRow(120, 0, 2, rowsPerSA); got != 120 {
		t.Errorf("ACT into sibling subarray delayed to %d", got)
	}
	// Neither the bank nor the rank is globally refreshing.
	if d.BankRefreshing(0, 2, 120) || d.Refreshing(0, 120) {
		t.Error("coarser-grained refreshing flags set by REFsa")
	}
	if !d.SubarrayRefreshing(0, 2, 0, 120) || d.SubarrayRefreshing(0, 2, rowsPerSA, 120) {
		t.Error("SubarrayRefreshing window wrong")
	}
}

func TestSubarrayOf(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	geo := testGeo()
	per := geo.Rows / p.Subarrays
	if d.SubarrayOf(0) != 0 || d.SubarrayOf(per-1) != 0 || d.SubarrayOf(per) != 1 {
		t.Error("SubarrayOf boundaries wrong")
	}
	if d.SubarrayOf(geo.Rows-1) != p.Subarrays-1 {
		t.Error("last row not in last subarray")
	}
}

func TestSubarrayRefreshRejectsOpenTargetRow(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	d.IssueACT(0, 0, 1, 2) // row 2 is in subarray 0
	defer func() {
		if recover() == nil {
			t.Error("REFsa with open row in the target subarray did not panic")
		}
	}()
	d.IssueREFsa(100, 0, 1, 0)
}

func TestDeviceAccessorsAndEarliestRefVariants(t *testing.T) {
	p := DDR4_1600(Refresh1x)
	d := NewDevice(p, testGeo())
	if d.Params().Name != p.Name {
		t.Error("Params accessor wrong")
	}
	if d.Geometry().Banks != testGeo().Banks {
		t.Error("Geometry accessor wrong")
	}
	// EarliestREFpb honours a bank's own lock.
	end := d.IssueREFpb(10, 0, 1)
	if got := d.EarliestREFpb(20, 0, 1); got != end {
		t.Errorf("EarliestREFpb during lock = %d, want %d", got, end)
	}
	if got := d.EarliestREFpb(20, 0, 2); got != 20 {
		t.Errorf("EarliestREFpb on free bank = %d, want 20", got)
	}
	if d.RefreshEnd(0) != 0 {
		t.Errorf("RefreshEnd = %d, want 0 (rank never rank-refreshed)", d.RefreshEnd(0))
	}
	refEnd := d.IssueREF(d.EarliestREF(1000, 1), 1)
	if d.RefreshEnd(1) != refEnd {
		t.Errorf("RefreshEnd = %d, want %d", d.RefreshEnd(1), refEnd)
	}
	// EarliestREFsa honours existing subarray locks.
	saEnd := d.IssueREFsa(2000, 0, 3, 2)
	if got := d.EarliestREFsa(2010, 0, 3, 2); got != saEnd {
		t.Errorf("EarliestREFsa during lock = %d, want %d", got, saEnd)
	}
	if got := d.EarliestREFsa(2010, 0, 3, 1); got != 2010 {
		t.Errorf("EarliestREFsa on free subarray = %d, want 2010", got)
	}
}

func TestCommandKindStrings(t *testing.T) {
	for k, want := range map[CommandKind]string{
		CmdACT: "ACT", CmdPRE: "PRE", CmdRD: "RD", CmdWR: "WR", CmdREF: "REF",
	} {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if CommandKind(42).String() == "" {
		t.Error("unknown kind empty string")
	}
	for _, m := range []RefreshMode{Refresh1x, Refresh2x, Refresh4x, RefreshMode(9)} {
		if m.String() == "" {
			t.Errorf("mode %d empty string", int(m))
		}
	}
}

func TestIssueREFSegmentRejectsBadDuration(t *testing.T) {
	d := NewDevice(DDR4_1600(Refresh1x), testGeo())
	defer func() {
		if recover() == nil {
			t.Error("zero-duration segment did not panic")
		}
	}()
	d.IssueREFSegment(10, 0, 0)
}
