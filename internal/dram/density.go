package dram

import (
	"fmt"

	"ropsim/internal/event"
)

// densityRFCNanos maps die density in Gbit to the projected all-bank
// tRFC in nanoseconds. 8 Gb and 16 Gb are the JESD79-4 datasheet
// values (350 ns and 550 ns); 32 Gb and 64 Gb extrapolate the
// ~1.6x-per-density-doubling trend that both the ROP paper (§I) and
// Chang et al. HPCA'14 (§7) use for their refresh-overhead
// projections.
var densityRFCNanos = map[int]int64{8: 350, 16: 550, 32: 880, 64: 1408}

// densityBaseGb is the datasheet die density the registered standards'
// refresh cycle times describe.
const densityBaseGb = 8

// Densities lists the supported die densities in Gbit, ascending — the
// sweep axis of the refresh-policy density extrapolation.
func Densities() []int { return []int{8, 16, 32, 64} }

// ScaleDensity returns p with its refresh cycle times scaled from the
// 8 Gb datasheet die to a gb-Gbit die: tRFC (and proportionally tRFCpb
// and tRFCsa) grows with the density projection while tREFI stays
// fixed, so denser dies spend a larger fraction of every refresh
// interval frozen. gb = 0 or 8 returns p unchanged; unsupported
// densities are an error listing Densities().
func ScaleDensity(p Params, gb int) (Params, error) {
	if gb == 0 || gb == densityBaseGb {
		return p, nil
	}
	target, ok := densityRFCNanos[gb]
	if !ok {
		return Params{}, fmt.Errorf("dram: unsupported density %d Gb (supported: %v)", gb, Densities())
	}
	base := densityRFCNanos[densityBaseGb]
	scale := func(v event.Cycle) event.Cycle {
		if v <= 0 {
			return v
		}
		//simlint:cycles "integer rescaling of an existing bus-cycle refresh duration by the density tRFC ratio, rounded up"
		return event.Cycle((int64(v)*target + base - 1) / base)
	}
	p.RFC = scale(p.RFC)
	p.RFCpb = scale(p.RFCpb)
	p.RFCsa = scale(p.RFCsa)
	p.Name = fmt.Sprintf("%s/%dGb", p.Name, gb)
	return p, nil
}
