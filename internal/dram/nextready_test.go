package dram

import (
	"testing"

	"ropsim/internal/addr"
	"ropsim/internal/event"
)

func nextReadyDevice() *Device {
	geo := addr.Geometry{Channels: 1, Ranks: 2, Banks: 8, Rows: 512, ColumnLines: 64}
	return NewDevice(DDR4_1600(Refresh1x), geo)
}

// TestNextReadyCycleDispatch checks that NextReadyCycle selects the
// Earliest* query matching the bank's row state: ACT when precharged,
// RD/WR on a row hit, PRE on a row miss.
func TestNextReadyCycleDispatch(t *testing.T) {
	d := nextReadyDevice()
	// Precharged bank: the next command is ACT.
	if got, want := d.NextReadyCycle(0, 0, 0, 5, false), d.EarliestACTRow(0, 0, 0, 5); got != want {
		t.Errorf("closed bank: NextReadyCycle = %d, want EarliestACTRow %d", got, want)
	}
	d.IssueACT(0, 0, 0, 5)
	now := event.Cycle(1)
	// Row hit: column command timing (tRCD gates the first RD/WR).
	if got, want := d.NextReadyCycle(now, 0, 0, 5, false), d.EarliestRD(now, 0, 0); got != want {
		t.Errorf("row hit read: NextReadyCycle = %d, want EarliestRD %d", got, want)
	}
	if got, want := d.NextReadyCycle(now, 0, 0, 5, true), d.EarliestWR(now, 0, 0); got != want {
		t.Errorf("row hit write: NextReadyCycle = %d, want EarliestWR %d", got, want)
	}
	// Row miss: the bank must precharge first.
	if got, want := d.NextReadyCycle(now, 0, 0, 9, false), d.EarliestPRE(now, 0, 0); got != want {
		t.Errorf("row miss: NextReadyCycle = %d, want EarliestPRE %d", got, want)
	}
}

// TestNextReadyCycleStable checks the self-consistency property the
// controller's wake discipline relies on: evaluating NextReadyCycle
// again at the cycle it returned yields that same cycle (so a wake
// armed at the returned time finds the command legal on arrival).
func TestNextReadyCycleStable(t *testing.T) {
	d := nextReadyDevice()
	p := d.Params()
	// Exercise all three states plus refresh and bus constraints.
	d.IssueACT(0, 0, 0, 5)
	d.IssueRD(p.RCD, 0, 0)
	d.IssueREF(d.EarliestREF(1000, 1), 1)
	cases := []struct {
		rank, bank, row int
		isWrite         bool
	}{
		{0, 0, 5, false}, // hit behind tCCD/bus
		{0, 0, 5, true},  // write hit behind tWTR-ish constraints
		{0, 0, 9, false}, // miss: PRE gated by tRAS/tRTP
		{0, 1, 3, false}, // closed sibling bank: ACT gated by tRRD
		{1, 2, 7, false}, // rank frozen by refresh: wait for tRFC end
		{1, 2, 7, true},  // frozen rank, write path
	}
	for _, c := range cases {
		for _, now := range []event.Cycle{0, 10, 100, 1000} {
			e := d.NextReadyCycle(now, c.rank, c.bank, c.row, c.isWrite)
			if e < now {
				t.Fatalf("NextReadyCycle(%v) = %d before now %d", c, e, now)
			}
			if again := d.NextReadyCycle(e, c.rank, c.bank, c.row, c.isWrite); again != e {
				t.Errorf("unstable: NextReadyCycle(now=%d,%v) = %d, re-query at %d gives %d",
					now, c, e, e, again)
			}
		}
	}
}

// TestNextReadyCycleWaitsOutRefresh checks that a frozen rank's
// requests wake exactly at the refresh unlock cycle, never inside the
// tRFC window — the property that lets the controller sleep through
// frozen cycles instead of retry-polling them.
func TestNextReadyCycleWaitsOutRefresh(t *testing.T) {
	d := nextReadyDevice()
	end := d.IssueREF(0, 0)
	if end != d.Params().RFC {
		t.Fatalf("refresh end = %d, want tRFC %d", end, d.Params().RFC)
	}
	got := d.NextReadyCycle(1, 0, 3, 42, false)
	if got < end {
		t.Errorf("NextReadyCycle during refresh = %d, inside the freeze (ends %d)", got, end)
	}
	if got != d.EarliestACTRow(1, 0, 3, 42) {
		t.Errorf("NextReadyCycle = %d, want EarliestACTRow %d", got, d.EarliestACTRow(1, 0, 3, 42))
	}
}
