package dram

import (
	"testing"

	"ropsim/internal/event"
)

// pinnedParams is the datasheet pin table: every timing entry of every
// registered standard × mode, as bus cycles at the simulator's fixed
// 1.25 ns tick (event.FromNanos rounds the ns datasheet value up).
// These values anchor all golden artifacts — a table edit that shifts
// any of them is a simulator-behavior change and must be deliberate.
type pinnedParams struct {
	CL, CWL, RCD, RP, RAS, RC   event.Cycle
	BL                          int
	CCD, RRD, FAW, WR, WTR, RTP event.Cycle
	RTR, Burst                  event.Cycle
	REFI, RFC, RFCpb, RFCsa     event.Cycle
	Subarrays, BankGroups       int
	Granularity                 Granularity
	Banks, Rows, Cols           int
}

var standardPins = map[string]map[RefreshMode]pinnedParams{
	// The paper's device (Table III): tCK 1.25 ns, so ns values divide
	// exactly or round up by one tick. REFI 7800 ns = 6240 cycles,
	// RFC 350 ns = 280 cycles — the §II-B refresh duty cycle of 4.5%.
	"DDR4-1600": {
		Refresh1x: {CL: 11, CWL: 9, RCD: 11, RP: 11, RAS: 28, RC: 39,
			BL: 8, CCD: 4, RRD: 6, FAW: 28, WR: 12, WTR: 6, RTP: 6, RTR: 2, Burst: 4,
			REFI: 6240, RFC: 280, RFCpb: 112, RFCsa: 48,
			Subarrays: 8, Granularity: GranularityAllBank, Banks: 8, Rows: 32768, Cols: 128},
		Refresh2x: {CL: 11, CWL: 9, RCD: 11, RP: 11, RAS: 28, RC: 39,
			BL: 8, CCD: 4, RRD: 6, FAW: 28, WR: 12, WTR: 6, RTP: 6, RTR: 2, Burst: 4,
			REFI: 3120, RFC: 208, RFCpb: 88, RFCsa: 40,
			Subarrays: 8, Granularity: GranularityAllBank, Banks: 8, Rows: 32768, Cols: 128},
		Refresh4x: {CL: 11, CWL: 9, RCD: 11, RP: 11, RAS: 28, RC: 39,
			BL: 8, CCD: 4, RRD: 6, FAW: 28, WR: 12, WTR: 6, RTP: 6, RTR: 2, Burst: 4,
			REFI: 1560, RFC: 128, RFCpb: 56, RFCsa: 32,
			Subarrays: 8, Granularity: GranularityAllBank, Banks: 8, Rows: 32768, Cols: 128},
	},
	// Same 8 Gb die as DDR4-1600 (identical refresh rows), faster
	// interface: CL 12.5 ns → 10 cycles, burst 3.33 ns → 3 cycles.
	"DDR4-2400": {
		Refresh1x: {CL: 10, CWL: 8, RCD: 10, RP: 10, RAS: 26, RC: 36,
			BL: 8, CCD: 4, RRD: 4, FAW: 24, WR: 12, WTR: 6, RTP: 6, RTR: 2, Burst: 3,
			REFI: 6240, RFC: 280, RFCpb: 112, RFCsa: 48,
			Subarrays: 8, Granularity: GranularityAllBank, Banks: 8, Rows: 32768, Cols: 128},
		Refresh2x: {CL: 10, CWL: 8, RCD: 10, RP: 10, RAS: 26, RC: 36,
			BL: 8, CCD: 4, RRD: 4, FAW: 24, WR: 12, WTR: 6, RTP: 6, RTR: 2, Burst: 3,
			REFI: 3120, RFC: 208, RFCpb: 88, RFCsa: 40,
			Subarrays: 8, Granularity: GranularityAllBank, Banks: 8, Rows: 32768, Cols: 128},
		Refresh4x: {CL: 10, CWL: 8, RCD: 10, RP: 10, RAS: 26, RC: 36,
			BL: 8, CCD: 4, RRD: 4, FAW: 24, WR: 12, WTR: 6, RTP: 6, RTR: 2, Burst: 3,
			REFI: 1560, RFC: 128, RFCpb: 56, RFCsa: 32,
			Subarrays: 8, Granularity: GranularityAllBank, Banks: 8, Rows: 32768, Cols: 128},
	},
	"DDR4-3200": {
		Refresh1x: {CL: 11, CWL: 8, RCD: 11, RP: 11, RAS: 26, RC: 37,
			BL: 8, CCD: 4, RRD: 4, FAW: 20, WR: 12, WTR: 6, RTP: 6, RTR: 2, Burst: 2,
			REFI: 6240, RFC: 280, RFCpb: 112, RFCsa: 48,
			Subarrays: 8, Granularity: GranularityAllBank, Banks: 8, Rows: 32768, Cols: 128},
		Refresh2x: {CL: 11, CWL: 8, RCD: 11, RP: 11, RAS: 26, RC: 37,
			BL: 8, CCD: 4, RRD: 4, FAW: 20, WR: 12, WTR: 6, RTP: 6, RTR: 2, Burst: 2,
			REFI: 3120, RFC: 208, RFCpb: 88, RFCsa: 40,
			Subarrays: 8, Granularity: GranularityAllBank, Banks: 8, Rows: 32768, Cols: 128},
		Refresh4x: {CL: 11, CWL: 8, RCD: 11, RP: 11, RAS: 26, RC: 37,
			BL: 8, CCD: 4, RRD: 4, FAW: 20, WR: 12, WTR: 6, RTP: 6, RTR: 2, Burst: 2,
			REFI: 1560, RFC: 128, RFCpb: 56, RFCsa: 32,
			Subarrays: 8, Granularity: GranularityAllBank, Banks: 8, Rows: 32768, Cols: 128},
	},
	// 16 Gb DDR5: 32 banks in 8 groups, BL16, same-bank refresh. The
	// 16.67 ns CAS latency lands at 14 ticks; tREFI1 3.9 µs = 3120.
	"DDR5-4800": {
		Refresh1x: {CL: 14, CWL: 13, RCD: 14, RP: 14, RAS: 26, RC: 40,
			BL: 16, CCD: 6, RRD: 4, FAW: 16, WR: 24, WTR: 8, RTP: 6, RTR: 2, Burst: 3,
			REFI: 3120, RFC: 236, RFCpb: 104, RFCsa: 44,
			Subarrays: 8, BankGroups: 8, Granularity: GranularitySameBank,
			Banks: 32, Rows: 32768, Cols: 128},
		Refresh2x: {CL: 14, CWL: 13, RCD: 14, RP: 14, RAS: 26, RC: 40,
			BL: 16, CCD: 6, RRD: 4, FAW: 16, WR: 24, WTR: 8, RTP: 6, RTR: 2, Burst: 3,
			REFI: 1560, RFC: 128, RFCpb: 104, RFCsa: 44,
			Subarrays: 8, BankGroups: 8, Granularity: GranularitySameBank,
			Banks: 32, Rows: 32768, Cols: 128},
	},
	// 8 Gb LPDDR4: BL16, native per-bank refresh at tREFIpb; no JEDEC
	// FGR table, so 1x is the only mode. tRCD/tRP 18 ns → 15 ticks.
	"LPDDR4-3200": {
		Refresh1x: {CL: 14, CWL: 7, RCD: 15, RP: 15, RAS: 34, RC: 51,
			BL: 16, CCD: 4, RRD: 6, FAW: 24, WR: 15, WTR: 8, RTP: 6, RTR: 2, Burst: 4,
			REFI: 3124, RFC: 144, RFCpb: 72, RFCsa: 36,
			Subarrays: 8, Granularity: GranularityPerBank, Banks: 8, Rows: 32768, Cols: 128},
	},
}

// TestStandardPins pins every timing entry of every registered standard
// to its datasheet-derived bus-cycle value.
func TestStandardPins(t *testing.T) {
	for name, modes := range standardPins {
		std, err := Lookup(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for mode, pin := range modes {
			p, err := std.Params(mode)
			if err != nil {
				t.Errorf("%s/%v: %v", name, mode, err)
				continue
			}
			got := pinnedParams{
				CL: p.CL, CWL: p.CWL, RCD: p.RCD, RP: p.RP, RAS: p.RAS, RC: p.RC,
				BL: p.BL, CCD: p.CCD, RRD: p.RRD, FAW: p.FAW, WR: p.WR, WTR: p.WTR,
				RTP: p.RTP, RTR: p.RTR, Burst: p.Burst,
				REFI: p.REFI, RFC: p.RFC, RFCpb: p.RFCpb, RFCsa: p.RFCsa,
				Subarrays: p.Subarrays, BankGroups: p.BankGroups,
				Granularity: p.NativeGranularity,
			}
			geo := std.Geometry(1)
			got.Banks, got.Rows, got.Cols = geo.Banks, geo.Rows, geo.ColumnLines
			if got != pin {
				t.Errorf("%s/%v:\n got %+v\nwant %+v", name, mode, got, pin)
			}
		}
	}
}

// TestStandardPinsComplete fails when a standard or a declared FGR mode
// has no pin entry, so new registrations cannot dodge the pin table.
func TestStandardPinsComplete(t *testing.T) {
	for _, std := range Standards() {
		modes, ok := standardPins[std.Name()]
		if !ok {
			t.Errorf("standard %s has no pin table entry", std.Name())
			continue
		}
		for _, m := range std.Refresh().Modes {
			if _, ok := modes[m]; !ok {
				t.Errorf("standard %s mode %v has no pin entry", std.Name(), m)
			}
		}
		if len(modes) != len(std.Refresh().Modes) {
			t.Errorf("standard %s: pin table has %d modes, standard declares %d",
				std.Name(), len(modes), len(std.Refresh().Modes))
		}
	}
}

// TestParamsNameEncodesStandardAndMode pins the Name convention the
// energy model and reports rely on ("<label>/<mode>").
func TestParamsNameEncodesStandardAndMode(t *testing.T) {
	want := map[string]string{
		"DDR4-1600":   "DDR4-1600/8Gb/1x",
		"DDR4-2400":   "DDR4-2400/8Gb/1x",
		"DDR4-3200":   "DDR4-3200/8Gb/1x",
		"DDR5-4800":   "DDR5-4800/16Gb/1x",
		"LPDDR4-3200": "LPDDR4-3200/8Gb/1x",
	}
	for name, label := range want {
		std, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := std.Params(Refresh1x)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != label {
			t.Errorf("%s: Params.Name = %q, want %q", name, p.Name, label)
		}
	}
}
