// Package dram models DDR4 devices at command granularity: per-bank and
// per-rank state machines, JEDEC timing constraints, the shared data bus,
// and refresh locking. It is the substrate the paper implemented inside
// DRAMSim2; the memory controller in internal/memctrl drives it.
//
// All times are in DRAM bus-clock cycles (event.Cycle, tCK = 1.25 ns at
// DDR4-1600).
package dram

import (
	"fmt"

	"ropsim/internal/event"
)

// RefreshMode selects the JEDEC DDR4 fine-grained-refresh mode. The paper
// evaluates 1x (Table III) and names finer granularities as future work.
type RefreshMode int

// Fine-grained refresh modes defined by JESD79-4.
const (
	Refresh1x RefreshMode = iota // tREFI = 7.8 µs, full tRFC
	Refresh2x                    // tREFI halved, shorter tRFC
	Refresh4x                    // tREFI quartered, shortest tRFC
)

// String implements fmt.Stringer.
func (m RefreshMode) String() string {
	switch m {
	case Refresh1x:
		return "1x"
	case Refresh2x:
		return "2x"
	case Refresh4x:
		return "4x"
	}
	return fmt.Sprintf("RefreshMode(%d)", int(m))
}

// Params holds the timing parameters of a DDR4 speed bin, in bus cycles.
type Params struct {
	Name string // speed-bin label, e.g. "DDR4-1600"

	CL  int // CAS (read) latency
	CWL int // CAS write latency
	RCD int // ACT to internal read/write
	RP  int // PRE to ACT
	RAS int // ACT to PRE
	RC  int // ACT to ACT, same bank
	BL  int // burst length in transfers (data occupies BL/2 cycles)
	CCD int // column command to column command
	RRD int // ACT to ACT, different banks, same rank
	FAW int // four-activate window
	WR  int // write recovery (end of write data to PRE)
	WTR int // end of write data to read command, same rank
	RTP int // read to PRE
	RTR int // rank-to-rank data-bus switch penalty

	REFI event.Cycle // average refresh interval
	RFC  event.Cycle // refresh cycle time (rank locked)
	// RFCpb is the per-bank refresh cycle time for bank-level refresh
	// (the paper's §VII future-work granularity; timing in the class of
	// LPDDR4/DDR5 same-bank refresh): only the refreshed bank locks, for
	// much less than the all-bank tRFC.
	RFCpb event.Cycle
	// RFCsa is the per-subarray refresh cycle time for subarray-level
	// refresh (the paper's §VII finest granularity; requires SALP-style
	// per-subarray sense amplifiers): only the refreshed subarray of one
	// bank locks.
	RFCsa event.Cycle
	// Subarrays is how many subarrays each bank divides into.
	Subarrays int
}

// DataCycles reports how long one burst occupies the data bus.
func (p Params) DataCycles() event.Cycle { return event.Cycle(p.BL / 2) }

// RefreshDutyCycle reports tRFC/tREFI, the fraction of time a rank is
// frozen by refresh (paper §II-B).
func (p Params) RefreshDutyCycle() float64 {
	if p.REFI == 0 {
		return 0
	}
	return float64(p.RFC) / float64(p.REFI)
}

// Validate reports an error for non-positive core timings.
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"CL", p.CL}, {"CWL", p.CWL}, {"RCD", p.RCD}, {"RP", p.RP},
		{"RAS", p.RAS}, {"RC", p.RC}, {"BL", p.BL}, {"CCD", p.CCD},
		{"RRD", p.RRD}, {"FAW", p.FAW}, {"WR", p.WR}, {"WTR", p.WTR},
		{"RTP", p.RTP},
	} {
		if f.v <= 0 {
			return fmt.Errorf("dram: %s must be positive, got %d", f.name, f.v)
		}
	}
	if p.BL%2 != 0 {
		return fmt.Errorf("dram: BL must be even, got %d", p.BL)
	}
	if p.REFI > 0 && p.RFC <= 0 {
		return fmt.Errorf("dram: RFC must be positive when REFI is set")
	}
	if p.RC < p.RAS+p.RP {
		return fmt.Errorf("dram: RC (%d) < RAS+RP (%d)", p.RC, p.RAS+p.RP)
	}
	return nil
}

// DDR4_1600 returns the paper's device: DDR4-1600 timings for 8 Gb chips
// (Table III: tREFI = 7.8 µs, tRFC = 350 ns in 1x mode) under the given
// fine-grained refresh mode.
func DDR4_1600(mode RefreshMode) Params {
	p := Params{
		Name: "DDR4-1600/8Gb/" + mode.String(),
		CL:   11, // 13.75 ns
		CWL:  9,  // 11.25 ns
		RCD:  11, // 13.75 ns
		RP:   11, // 13.75 ns
		RAS:  28, // 35 ns
		RC:   39, // 48.75 ns
		BL:   8,  // 64-byte line over a 64-bit bus
		CCD:  4,  // tCCD_L
		RRD:  6,  // 7.5 ns
		FAW:  28, // 35 ns
		WR:   12, // 15 ns
		WTR:  6,  // 7.5 ns
		RTP:  6,  // 7.5 ns
		RTR:  2,  // rank switch bubble
	}
	p.Subarrays = 8
	switch mode {
	case Refresh1x:
		p.REFI, p.RFC, p.RFCpb, p.RFCsa = 6240, 280, 112, 48 // 350/140/60 ns
	case Refresh2x:
		p.REFI, p.RFC, p.RFCpb, p.RFCsa = 3120, 208, 88, 40 // 260/110/50 ns
	case Refresh4x:
		p.REFI, p.RFC, p.RFCpb, p.RFCsa = 1560, 128, 56, 32 // 160/70/40 ns
	default:
		panic(fmt.Sprintf("dram: unknown refresh mode %d", int(mode)))
	}
	return p
}

// NoRefresh returns p with refresh disabled (the paper's idealized
// "no-refresh" memory used to bound refresh overheads, §III-A).
func NoRefresh(p Params) Params {
	p.Name += "/norefresh"
	p.REFI = 0
	p.RFC = 0
	p.RFCpb = 0
	p.RFCsa = 0
	return p
}
