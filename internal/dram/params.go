// Package dram models DDR4 devices at command granularity: per-bank and
// per-rank state machines, JEDEC timing constraints, the shared data bus,
// and refresh locking. It is the substrate the paper implemented inside
// DRAMSim2; the memory controller in internal/memctrl drives it.
//
// All times are in DRAM bus-clock cycles (event.Cycle, tCK = 1.25 ns at
// DDR4-1600).
package dram

import (
	"fmt"

	"ropsim/internal/event"
)

// RefreshMode selects the JEDEC DDR4 fine-grained-refresh mode. The paper
// evaluates 1x (Table III) and names finer granularities as future work.
type RefreshMode int

// Fine-grained refresh modes defined by JESD79-4.
const (
	Refresh1x RefreshMode = iota // tREFI = 7.8 µs, full tRFC
	Refresh2x                    // tREFI halved, shorter tRFC
	Refresh4x                    // tREFI quartered, shortest tRFC
)

// String implements fmt.Stringer.
func (m RefreshMode) String() string {
	switch m {
	case Refresh1x:
		return "1x"
	case Refresh2x:
		return "2x"
	case Refresh4x:
		return "4x"
	}
	return fmt.Sprintf("RefreshMode(%d)", int(m))
}

// Params holds the timing parameters of a DDR4 speed bin. Every
// duration is typed event.Cycle (bus cycles), so timing arithmetic
// cannot silently mix cycle counts with raw nanosecond integers;
// nanosecond datasheet values enter through event.FromNanos. Only
// dimensionless shape parameters (BL, Subarrays) stay plain ints.
type Params struct {
	Name string // speed-bin label, e.g. "DDR4-1600"

	CL  event.Cycle // CAS (read) latency
	CWL event.Cycle // CAS write latency
	RCD event.Cycle // ACT to internal read/write
	RP  event.Cycle // PRE to ACT
	RAS event.Cycle // ACT to PRE
	RC  event.Cycle // ACT to ACT, same bank
	BL  int         // burst length in transfers (data occupies BL/2 cycles)
	CCD event.Cycle // column command to column command
	RRD event.Cycle // ACT to ACT, different banks, same rank
	FAW event.Cycle // four-activate window
	WR  event.Cycle // write recovery (end of write data to PRE)
	WTR event.Cycle // end of write data to read command, same rank
	RTP event.Cycle // read to PRE
	RTR event.Cycle // rank-to-rank data-bus switch penalty

	// Burst is the data-bus occupancy of one burst in bus cycles. The
	// simulator's clock is fixed at the DDR4-1600 bus tick (1.25 ns), so
	// faster interfaces move a burst in fewer ticks; zero falls back to
	// the legacy BL/2 (one tick per beat pair), which matches DDR4-1600.
	Burst event.Cycle
	// NativeGranularity is the standard's native refresh granularity
	// (see Granularity); it selects how bank-granularity refresh
	// commands map onto banks (Device.SlotBanks).
	NativeGranularity Granularity
	// BankGroups is the bank-group count a same-bank refresh spans
	// (DDR5: 8); zero or one for standards without same-bank refresh.
	BankGroups int

	REFI event.Cycle // average refresh interval
	RFC  event.Cycle // refresh cycle time (rank locked)
	// RFCpb is the per-bank refresh cycle time for bank-level refresh
	// (the paper's §VII future-work granularity; timing in the class of
	// LPDDR4/DDR5 same-bank refresh): only the refreshed bank locks, for
	// much less than the all-bank tRFC.
	RFCpb event.Cycle
	// RFCsa is the per-subarray refresh cycle time for subarray-level
	// refresh (the paper's §VII finest granularity; requires SALP-style
	// per-subarray sense amplifiers): only the refreshed subarray of one
	// bank locks.
	RFCsa event.Cycle
	// Subarrays is how many subarrays each bank divides into.
	Subarrays int
}

// DataCycles reports how long one burst occupies the data bus: the
// standard's Burst entry when set, else the legacy BL/2 fallback.
func (p Params) DataCycles() event.Cycle {
	if p.Burst > 0 {
		return p.Burst
	}
	//simlint:cycles "DDR moves two beats per bus cycle, so BL/2 beats is exactly a bus-cycle count"
	return event.Cycle(p.BL / 2)
}

// RefreshDutyCycle reports tRFC/tREFI, the fraction of time a rank is
// frozen by refresh (paper §II-B).
func (p Params) RefreshDutyCycle() float64 {
	if p.REFI == 0 {
		return 0
	}
	return float64(p.RFC) / float64(p.REFI)
}

// Validate reports an error for non-positive core timings.
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"CL", int64(p.CL)}, {"CWL", int64(p.CWL)}, {"RCD", int64(p.RCD)},
		{"RP", int64(p.RP)}, {"RAS", int64(p.RAS)}, {"RC", int64(p.RC)},
		{"BL", int64(p.BL)}, {"CCD", int64(p.CCD)}, {"RRD", int64(p.RRD)},
		{"FAW", int64(p.FAW)}, {"WR", int64(p.WR)}, {"WTR", int64(p.WTR)},
		{"RTP", int64(p.RTP)},
	} {
		if f.v <= 0 {
			return fmt.Errorf("dram: %s must be positive, got %d", f.name, f.v)
		}
	}
	if p.BL%2 != 0 {
		return fmt.Errorf("dram: BL must be even, got %d", p.BL)
	}
	if p.REFI > 0 && p.RFC <= 0 {
		return fmt.Errorf("dram: RFC must be positive when REFI is set")
	}
	if p.RC < p.RAS+p.RP {
		return fmt.Errorf("dram: RC (%d) < RAS+RP (%d)", p.RC, p.RAS+p.RP)
	}
	return nil
}

// DDR4_1600 returns the paper's device: DDR4-1600 timings for 8 Gb chips
// (Table III: tREFI = 7.8 µs, tRFC = 350 ns in 1x mode) under the given
// fine-grained refresh mode. It is the historical constructor, now a
// thin view of the "DDR4-1600" registry entry; the cycle values are
// unchanged (TestStandardPins pins them).
func DDR4_1600(mode RefreshMode) Params {
	std, err := Lookup(DefaultStandard)
	if err != nil {
		panic(err)
	}
	p, err := std.Params(mode)
	if err != nil {
		panic(fmt.Sprintf("dram: unknown refresh mode %d", int(mode)))
	}
	return p
}

// NoRefresh returns p with refresh disabled (the paper's idealized
// "no-refresh" memory used to bound refresh overheads, §III-A).
func NoRefresh(p Params) Params {
	p.Name += "/norefresh"
	p.REFI = 0
	p.RFC = 0
	p.RFCpb = 0
	p.RFCsa = 0
	return p
}
