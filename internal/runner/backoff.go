// Host-side retry/reconnect backoff schedules.
//
// The pool's transient-task retry and the campaign worker's reconnect
// loop (internal/campaign) share one schedule shape: exponential growth
// from a base delay, a per-delay cap, multiplicative jitter from an
// explicitly seeded source (so two schedules never thundering-herd a
// coordinator, yet every schedule is reproducible under test), and a
// max-elapsed budget that bounds how long a caller keeps retrying
// before giving up.

package runner

import (
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// backoffCeiling bounds a single delay when Backoff.Max is unset, so
// exponential growth can never overflow time.Duration.
const backoffCeiling = time.Hour

// Backoff describes a retry-delay schedule: exponential growth with
// deterministic jitter and a total-time budget. The zero value yields
// zero-length delays forever (retry without waiting), which is what
// the pool's historical SetRetry(max, 0) behavior was.
type Backoff struct {
	// Base is the first delay; subsequent delays grow by Factor.
	Base time.Duration
	// Factor is the per-attempt growth multiplier; values <= 1 select
	// the default of 2 (each delay doubles).
	Factor float64
	// Max caps every individual delay (0 = capped only by the internal
	// one-hour overflow ceiling).
	Max time.Duration
	// MaxElapsed bounds the schedule's total sleeping time: once the
	// sum of returned delays would exceed it, Next reports exhaustion
	// and the caller stops retrying (0 = no budget, retry forever).
	MaxElapsed time.Duration
	// Jitter is the multiplicative randomization fraction in [0, 1):
	// each delay is scaled by a factor drawn uniformly from
	// [1-Jitter, 1+Jitter]. Zero disables jitter.
	Jitter float64
	// Seed seeds the jitter source. Schedules derived with the same
	// (Seed, salt) pair produce identical delay sequences, so retry
	// timing is reproducible under test.
	Seed int64
}

// DefaultRetryBackoff is the schedule SetRetry installs for a given
// base delay: doubling growth, 30 s per-delay cap, 2 min total budget,
// 25% jitter, seed 1.
func DefaultRetryBackoff(base time.Duration) Backoff {
	return Backoff{Base: base, Factor: 2, Max: 30 * time.Second,
		MaxElapsed: 2 * time.Minute, Jitter: 0.25, Seed: 1}
}

// Schedule instantiates the stateful delay iterator. The salt (usually
// the task label or worker name) is hashed into the jitter seed, so
// concurrent schedules are decorrelated from each other while each
// remains deterministic for its (Seed, salt) pair.
func (b Backoff) Schedule(salt string) *BackoffSchedule {
	h := fnv.New64a()
	h.Write([]byte(salt))
	seed := b.Seed ^ int64(h.Sum64())
	return &BackoffSchedule{b: b, rng: rand.New(rand.NewSource(seed))}
}

// BackoffSchedule is one instantiated Backoff: an iterator over the
// delay sequence. Not safe for concurrent use; each retry loop owns
// its own schedule.
type BackoffSchedule struct {
	b       Backoff
	rng     *rand.Rand
	attempt int
	slept   time.Duration
}

// Next returns the delay to sleep before the next attempt and whether
// the schedule still permits one. It reports false — without advancing
// — once the accumulated delays would exceed MaxElapsed.
func (s *BackoffSchedule) Next() (time.Duration, bool) {
	factor := s.b.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(s.b.Base) * math.Pow(factor, float64(s.attempt))
	max := s.b.Max
	if max <= 0 || max > backoffCeiling {
		max = backoffCeiling
	}
	if d > float64(max) {
		d = float64(max)
	}
	if s.b.Jitter > 0 {
		d *= 1 + s.b.Jitter*(2*s.rng.Float64()-1)
	}
	if d < 0 {
		d = 0
	}
	delay := time.Duration(d)
	if s.b.MaxElapsed > 0 && s.slept+delay > s.b.MaxElapsed {
		return 0, false
	}
	s.attempt++
	s.slept += delay
	return delay, true
}

// Elapsed reports the summed delays handed out so far.
func (s *BackoffSchedule) Elapsed() time.Duration { return s.slept }

// Attempts reports how many delays the schedule has handed out.
func (s *BackoffSchedule) Attempts() int { return s.attempt }

// WallClock is the production host clock: time.Now and time.After.
// It satisfies the campaign package's injected-clock seam (and any
// other structural {Now; After} clock interface); tests substitute a
// manually advanced fake so heartbeat and lease deadlines are
// deterministic. It lives here because internal/runner is the repo's
// sanctioned host-side timing package (see the package annotation).
type WallClock struct{}

// Now returns the current host time.
func (WallClock) Now() time.Time { return time.Now() }

// After waits for d on the host clock.
func (WallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
