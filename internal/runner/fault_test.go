package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestFaultPanicRecoveredIntoLabeledError(t *testing.T) {
	p := New(4)
	tasks := make([]Task[int], 8)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("run/%d", i), Run: func(context.Context) (int, error) {
			if i == 5 {
				panic("injected crash")
			}
			return i, nil
		}}
	}
	_, err := Run(context.Background(), p, tasks)
	if err == nil {
		t.Fatal("want error from panicking task")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *PanicError in the chain", err)
	}
	if pe.Label != "run/5" || pe.Value != "injected crash" {
		t.Errorf("PanicError = {%q %v}, want run/5 / injected crash", pe.Label, pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
		t.Error("PanicError carries no stack trace")
	}
	if !strings.Contains(err.Error(), "run/5") {
		t.Errorf("error %q missing panicking task's label", err)
	}
	if p.Stats().Panicked != 1 {
		t.Errorf("Stats.Panicked = %d, want 1", p.Stats().Panicked)
	}
}

func TestFaultRunToCompletionKeepsSiblingResults(t *testing.T) {
	// One panic in N tasks under RunToCompletion: N-1 results survive and
	// the batch error lists exactly one labeled failure.
	const n = 20
	p := New(4)
	p.SetPolicy(RunToCompletion)
	tasks := make([]Task[int], n)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("run/%d", i), Run: func(context.Context) (int, error) {
			if i == 7 {
				panic(fmt.Errorf("crash %d", i))
			}
			return i + 1, nil
		}}
	}
	results, err := Run(context.Background(), p, tasks)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if len(be.Failures) != 1 || be.Failures[0].Index != 7 || be.Failures[0].Label != "run/7" {
		t.Fatalf("Failures = %+v, want exactly run/7", be.Failures)
	}
	if be.Skipped != 0 {
		t.Errorf("Skipped = %d, want 0 under RunToCompletion", be.Skipped)
	}
	if len(results) != n {
		t.Fatalf("len(results) = %d, want %d", len(results), n)
	}
	for i, r := range results {
		want := i + 1
		if i == 7 {
			want = 0 // failed slot keeps the zero value
		}
		if r != want {
			t.Errorf("results[%d] = %d, want %d", i, r, want)
		}
	}
	if got := p.Stats().Completed; got != n-1 {
		t.Errorf("Stats.Completed = %d, want %d", got, n-1)
	}
}

func TestFaultFailFastReportsSkippedAndStats(t *testing.T) {
	p := New(1) // serial: everything after the failure is skipped deterministically
	tasks := make([]Task[int], 10)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("run/%d", i), Run: func(context.Context) (int, error) {
			if i == 3 {
				return 0, errors.New("boom")
			}
			return i, nil
		}}
	}
	_, err := Run(context.Background(), p, tasks)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if be.Skipped != 6 {
		t.Errorf("Skipped = %d, want 6 (tasks 4..9 never started)", be.Skipped)
	}
	if be.Stats.Completed != 3 || be.Stats.Failed != 1 {
		t.Errorf("Stats = %+v, want 3 completed / 1 failed", be.Stats)
	}
	msg := err.Error()
	for _, want := range []string{"run/3", "boom", "skipped", "3 runs"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	if s := be.Summary(); !strings.Contains(s, "#3") || !strings.Contains(s, "skipped") {
		t.Errorf("Summary %q missing failure index or skipped count", s)
	}
}

func TestFaultTransientRetrySucceeds(t *testing.T) {
	p := New(2)
	p.SetRetry(3, time.Microsecond)
	var attempts atomic.Int64
	tasks := []Task[int]{{
		Label:     "flaky",
		Transient: true,
		Run: func(context.Context) (int, error) {
			if attempts.Add(1) < 3 {
				return 0, errors.New("transient glitch")
			}
			return 42, nil
		},
	}}
	results, err := Run(context.Background(), p, tasks)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if results[0] != 42 || attempts.Load() != 3 {
		t.Errorf("result=%d attempts=%d, want 42 after 3 attempts", results[0], attempts.Load())
	}
	if s := p.Stats(); s.Retried != 2 || s.Failed != 0 || s.Completed != 1 {
		t.Errorf("stats = %+v, want 2 retried / 0 failed / 1 completed", s)
	}
}

func TestFaultTransientRetryExhausted(t *testing.T) {
	p := New(1)
	p.SetRetry(2, 0)
	var attempts atomic.Int64
	tasks := []Task[int]{{
		Label:     "doomed",
		Transient: true,
		Run: func(context.Context) (int, error) {
			attempts.Add(1)
			return 0, errors.New("still broken")
		},
	}}
	_, err := Run(context.Background(), p, tasks)
	if err == nil || !strings.Contains(err.Error(), "doomed") {
		t.Fatalf("err = %v, want exhausted-retry failure", err)
	}
	if attempts.Load() != 3 { // 1 initial + 2 retries
		t.Errorf("attempts = %d, want 3", attempts.Load())
	}
}

func TestFaultNonTransientNeverRetries(t *testing.T) {
	p := New(1)
	p.SetRetry(5, 0)
	var attempts atomic.Int64
	tasks := []Task[int]{{Label: "hard", Run: func(context.Context) (int, error) {
		attempts.Add(1)
		return 0, errors.New("deterministic failure")
	}}}
	if _, err := Run(context.Background(), p, tasks); err == nil {
		t.Fatal("want error")
	}
	if attempts.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (no retry without Transient)", attempts.Load())
	}
}

func TestFaultHookInjectsPanicsAndTransients(t *testing.T) {
	// The fault hook simulates a crash on one label and a transient
	// error on another; the retry path must clear the transient one.
	p := New(2)
	p.SetPolicy(RunToCompletion)
	p.SetRetry(2, 0)
	var transientHits atomic.Int64
	p.SetFaultHook(func(label string, attempt int) error {
		switch {
		case label == "crash":
			panic("hook-injected panic")
		case label == "flaky" && attempt == 0:
			transientHits.Add(1)
			return errors.New("hook-injected transient")
		}
		return nil
	})
	tasks := []Task[int]{
		{Label: "ok", Run: func(context.Context) (int, error) { return 1, nil }},
		{Label: "crash", Run: func(context.Context) (int, error) { return 2, nil }},
		{Label: "flaky", Transient: true, Run: func(context.Context) (int, error) { return 3, nil }},
	}
	results, err := Run(context.Background(), p, tasks)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if len(be.Failures) != 1 || be.Failures[0].Label != "crash" {
		t.Fatalf("Failures = %+v, want only the crash task", be.Failures)
	}
	var pe *PanicError
	if !errors.As(be.Failures[0].Err, &pe) {
		t.Errorf("crash failure %v is not a *PanicError", be.Failures[0].Err)
	}
	if results[0] != 1 || results[2] != 3 {
		t.Errorf("surviving results = %v, want 1 and 3", results)
	}
	if transientHits.Load() != 1 {
		t.Errorf("transient injected %d times, want 1", transientHits.Load())
	}
}

func TestFaultCancellationEchoIsNotAFailure(t *testing.T) {
	// Tasks that abort because the batch was cancelled must not be
	// reported as task failures; the cancellation is reported once.
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	tasks := make([]Task[int], 30)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("c%d", i), Run: func(tctx context.Context) (int, error) {
			if ran.Add(1) == 2 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			if tctx.Err() != nil {
				return 0, tctx.Err() // echo the cancellation, as sim.RunCtx does
			}
			return i, nil
		}}
	}
	_, err := Run(ctx, p, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var be *BatchError
	if errors.As(err, &be) {
		t.Fatalf("cancellation echo was reported as a batch failure: %v", be.Summary())
	}
}

func TestFaultPolicyParseAndString(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want Policy
	}{{"failfast", FailFast}, {"continue", RunToCompletion}} {
		got, err := ParsePolicy(tc.s)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.s, got, err)
		}
		if got.String() != tc.s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.s)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy(bogus) did not fail")
	}
}
