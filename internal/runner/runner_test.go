package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sleepTask returns i after a scheduling-dependent delay, so completion
// order scrambles while submission order must survive.
func sleepTask(i int) Task[int] {
	return Task[int]{Label: fmt.Sprintf("t%d", i), Run: func(context.Context) (int, error) {
		// Later submissions sleep less, inverting completion order.
		time.Sleep(time.Duration(50-i%50) * time.Microsecond)
		return i, nil
	}}
}

func TestRunOrdersResultsBySubmission(t *testing.T) {
	p := New(8)
	const n = 200
	tasks := make([]Task[int], n)
	for i := range tasks {
		tasks[i] = sleepTask(i)
	}
	results, err := Run(context.Background(), p, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i {
			t.Fatalf("results[%d] = %d, want %d", i, r, i)
		}
	}
	s := p.Stats()
	if s.Completed != n || s.Failed != 0 {
		t.Errorf("stats = %+v, want %d completed", s, n)
	}
	if s.Busy <= 0 || s.Wall <= 0 {
		t.Errorf("stats missing timings: %+v", s)
	}
}

func TestRunSerialMatchesParallel(t *testing.T) {
	build := func() []Task[int] {
		tasks := make([]Task[int], 64)
		for i := range tasks {
			tasks[i] = sleepTask(i)
		}
		return tasks
	}
	serial, err := Run(context.Background(), New(1), build())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), New(8), build())
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d != parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestRunErrorCarriesLabelAndCancelsBatch(t *testing.T) {
	p := New(4)
	boom := errors.New("boom")
	var started atomic.Int64
	tasks := make([]Task[int], 100)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("run/%d", i), Run: func(context.Context) (int, error) {
			started.Add(1)
			if i == 3 {
				return 0, boom
			}
			time.Sleep(100 * time.Microsecond)
			return i, nil
		}}
	}
	_, err := Run(context.Background(), p, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "run/3") {
		t.Errorf("error %q missing failing task's label", err)
	}
	if n := started.Load(); n == 100 {
		t.Error("cancellation did not skip any queued tasks")
	}
}

func TestRunEarliestErrorWins(t *testing.T) {
	// Two failures race; the earlier submission index must be reported,
	// as a serial execution would.
	p := New(2)
	tasks := []Task[int]{
		{Label: "slow-fail", Run: func(context.Context) (int, error) {
			time.Sleep(2 * time.Millisecond)
			return 0, errors.New("first")
		}},
		{Label: "fast-fail", Run: func(context.Context) (int, error) {
			return 0, errors.New("second")
		}},
	}
	_, err := Run(context.Background(), p, tasks)
	if err == nil || !strings.Contains(err.Error(), "slow-fail") {
		t.Fatalf("err = %v, want the earlier submission's failure", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	tasks := make([]Task[int], 50)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("c%d", i), Run: func(context.Context) (int, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			time.Sleep(50 * time.Microsecond)
			return i, nil
		}}
	}
	_, err := Run(ctx, p, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 50 {
		t.Error("cancellation did not stop the batch")
	}
}

func TestRunConcurrencyBounded(t *testing.T) {
	const jobs = 3
	p := New(jobs)
	var cur, peak atomic.Int64
	tasks := make([]Task[int], 60)
	for i := range tasks {
		i := i
		tasks[i] = Task[int]{Label: fmt.Sprintf("b%d", i), Run: func(context.Context) (int, error) {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			cur.Add(-1)
			return i, nil
		}}
	}
	if _, err := Run(context.Background(), p, tasks); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > jobs {
		t.Errorf("observed %d concurrent tasks, pool size %d", got, jobs)
	}
}

func TestRunEmptyAndDefaults(t *testing.T) {
	p := New(0)
	if p.Jobs() < 1 {
		t.Errorf("New(0).Jobs() = %d, want >= 1", p.Jobs())
	}
	res, err := Run[int](context.Background(), p, nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: res=%v err=%v", res, err)
	}
}

func TestProgressEventsSerializedWithETA(t *testing.T) {
	p := New(4)
	var mu sync.Mutex
	var events []Event
	p.SetProgress(func(ev Event) {
		// Called under the pool's lock: appending without extra locking
		// here would still be safe, but the race detector should agree.
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	tasks := make([]Task[int], 20)
	for i := range tasks {
		tasks[i] = sleepTask(i)
	}
	if _, err := Run(context.Background(), p, tasks); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 20 {
		t.Fatalf("got %d events, want 20", len(events))
	}
	last := events[len(events)-1]
	if last.Completed != 20 {
		t.Errorf("last event Completed = %d, want 20", last.Completed)
	}
	if last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0 (no work left)", last.ETA)
	}
}

func TestStatsSpeedupAndString(t *testing.T) {
	s := Stats{Jobs: 4, Completed: 10, Wall: time.Second, Busy: 3 * time.Second}
	if got := s.Speedup(); got < 2.9 || got > 3.1 {
		t.Errorf("Speedup = %g, want ~3", got)
	}
	if str := s.String(); !strings.Contains(str, "10 runs") || !strings.Contains(str, "4 jobs") {
		t.Errorf("String = %q", str)
	}
	if (Stats{}).Speedup() != 0 {
		t.Error("zero stats speedup not 0")
	}
}
