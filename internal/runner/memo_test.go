package runner

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMemoComputesOncePerKey(t *testing.T) {
	var m Memo[string, int]
	var computes atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				computes.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight)", n)
	}
	for g, v := range results {
		if v != 42 {
			t.Errorf("goroutine %d got %d", g, v)
		}
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	var m Memo[aloneTestKey, float64]
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		for i := 0; i < 8; i++ {
			key := aloneTestKey{bench: "b", llc: i}
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, _ := m.Do(key, func() (float64, error) { return float64(key.llc), nil })
				if v != float64(key.llc) {
					t.Errorf("key %v got %v", key, v)
				}
			}()
		}
	}
	wg.Wait()
	if m.Len() != 8 {
		t.Errorf("Len = %d, want 8", m.Len())
	}
}

type aloneTestKey struct {
	bench string
	llc   int
}

func TestMemoCachesErrors(t *testing.T) {
	var m Memo[int, int]
	boom := errors.New("boom")
	var computes int
	for i := 0; i < 3; i++ {
		_, err := m.Do(7, func() (int, error) {
			computes++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if computes != 1 {
		t.Errorf("compute ran %d times, want 1 (errors cached)", computes)
	}
}

func TestMemoGet(t *testing.T) {
	var m Memo[string, int]
	if _, ok := m.Get("missing"); ok {
		t.Error("Get on empty memo reported a value")
	}
	m.Do("k", func() (int, error) { return 9, nil })
	if v, ok := m.Get("k"); !ok || v != 9 {
		t.Errorf("Get = %v,%v, want 9,true", v, ok)
	}
	m.Do("e", func() (int, error) { return 0, errors.New("x") })
	if _, ok := m.Get("e"); ok {
		t.Error("Get reported ok for an errored entry")
	}
}
