// Fault tolerance for campaign batches: panic isolation, failure
// policies, bounded retry, and end-of-batch error summaries.
//
// A single panicking or hung simulation must never take down a whole
// multi-hour campaign (the shape Ramulator 2.x motivates for
// trace-driven DRAM simulators): a worker converts a task panic into a
// labeled error carrying the goroutine stack, the batch either cancels
// fast (FailFast) or keeps scheduling the independent remaining tasks
// (RunToCompletion), and tasks that declare themselves Transient are
// retried with linear backoff before their failure counts.

package runner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Policy selects how a batch responds to a task failure.
type Policy int

// Failure policies.
const (
	// FailFast cancels the batch on the first task failure: queued tasks
	// are skipped, in-flight tasks finish, and the earliest submission
	// index's error is reported (the historical default).
	FailFast Policy = iota
	// RunToCompletion keeps scheduling every remaining task after a
	// failure and reports all failures in one end-of-batch BatchError,
	// so one bad run does not discard its siblings' completed work.
	RunToCompletion
)

// String implements fmt.Stringer ("failfast" / "continue").
func (p Policy) String() string {
	switch p {
	case FailFast:
		return "failfast"
	case RunToCompletion:
		return "continue"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses a failure-policy name: "failfast" (cancel the
// batch on the first failure) or "continue" (run every task, summarize
// failures at the end).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "failfast":
		return FailFast, nil
	case "continue":
		return RunToCompletion, nil
	}
	return FailFast, fmt.Errorf("runner: unknown failure policy %q (want failfast or continue)", s)
}

// PanicError is a task panic converted into an error: the recovered
// value plus the panicking goroutine's stack. Workers recover every
// task panic so a single bad run cannot crash the campaign process.
type PanicError struct {
	// Label is the panicking task's label.
	Label string
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's formatted stack trace.
	Stack []byte
}

// Error implements error; the one-line form omits the stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %v", e.Value)
}

// TaskError is one failed task inside a BatchError.
type TaskError struct {
	// Index is the task's submission index within the batch.
	Index int
	// Label is the task's label.
	Label string
	// Err is the task's final error, already wrapped with the label.
	Err error
}

// BatchError reports a failed batch: every task failure (sorted by
// submission index), how many queued tasks were skipped after the first
// failure cancelled the batch, and the pool's cumulative statistics at
// batch end — so the caller knows exactly how much completed work
// survived alongside the failure.
type BatchError struct {
	// Failures lists every failed task, ascending by submission index.
	Failures []TaskError
	// Skipped counts batch tasks that never started (queued work
	// abandoned after a FailFast cancellation or a context cancel).
	Skipped int
	// Stats is the pool's cumulative work snapshot at batch end.
	Stats Stats
}

// Error renders the first failure plus the batch context: further
// failure count, skipped tasks, and the pool statistics.
func (e *BatchError) Error() string {
	var sb strings.Builder
	sb.WriteString(e.Failures[0].Err.Error())
	if n := len(e.Failures) - 1; n > 0 {
		fmt.Fprintf(&sb, " (+%d more failure(s))", n)
	}
	if e.Skipped > 0 {
		fmt.Fprintf(&sb, " [%d task(s) skipped after failure]", e.Skipped)
	}
	fmt.Fprintf(&sb, " [pool: %s]", e.Stats)
	return sb.String()
}

// Unwrap exposes the earliest failure for errors.Is / errors.As.
func (e *BatchError) Unwrap() error { return e.Failures[0].Err }

// Summary renders a multi-line end-of-campaign report: one line per
// failure (in submission order), then the skipped count and pool stats.
func (e *BatchError) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d task(s) failed:\n", len(e.Failures))
	for _, f := range e.Failures {
		fmt.Fprintf(&sb, "  #%d %v\n", f.Index, f.Err)
	}
	if e.Skipped > 0 {
		fmt.Fprintf(&sb, "%d task(s) skipped\n", e.Skipped)
	}
	fmt.Fprintf(&sb, "pool: %s", e.Stats)
	return sb.String()
}

// batchErr assembles a BatchError from the collected failures (any
// order) and the skipped-task count; nil when nothing failed.
func (p *Pool) batchErr(failures []TaskError, skipped int) error {
	if len(failures) == 0 {
		return nil
	}
	sort.Slice(failures, func(i, j int) bool { return failures[i].Index < failures[j].Index })
	return &BatchError{Failures: failures, Skipped: skipped, Stats: p.Stats()}
}

// isCancellation reports whether err is the batch context's own
// cancellation surfacing through a task (not a task failure in its own
// right): those must not outrank real errors, or a parallel batch could
// report a different failure than a serial one.
func isCancellation(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ErrCanceled may be returned (or wrapped) by tasks that abort because
// the batch context was cancelled; the runner treats it as a
// cancellation echo, not a task failure.
var ErrCanceled = errors.New("runner: task canceled")

// sleepBackoff waits d unless the context is cancelled first; it
// reports whether the full backoff elapsed.
func sleepBackoff(done <-chan struct{}, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}
