package runner

import "sync"

// Memo is a concurrency-safe memoization table with singleflight
// semantics: when several goroutines call Do with the same key, exactly
// one runs the compute function and the others block until it finishes,
// then share the value. The experiment harness uses it for the alone-IPC
// baselines of the weighted-speedup figures, where many mixes reference
// the same benchmark and must not recompute (or race on) its run.
//
// Results — including errors — are cached permanently: a key's compute
// function runs at most once for the lifetime of the Memo. The zero
// value is ready to use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the memoized value for key, computing it with fn on the
// first call. Concurrent calls for the same key share one computation.
// fn runs on the calling goroutine, so a pool worker computing an entry
// keeps making progress while other workers wait on it.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*memoEntry[V])
	}
	e, ok := m.m[key]
	if !ok {
		e = &memoEntry[V]{done: make(chan struct{})}
		m.m[key] = e
		m.mu.Unlock()
		e.val, e.err = fn()
		close(e.done)
		return e.val, e.err
	}
	m.mu.Unlock()
	<-e.done
	return e.val, e.err
}

// Get returns the cached value for key without computing, and whether a
// completed entry exists.
func (m *Memo[K, V]) Get(key K) (V, bool) {
	m.mu.Lock()
	e, ok := m.m[key]
	m.mu.Unlock()
	if !ok {
		var zero V
		return zero, false
	}
	select {
	case <-e.done:
		return e.val, e.err == nil
	default:
		var zero V
		return zero, false
	}
}

// Len reports the number of entries (computed or in flight).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
