// Package runner schedules independent simulation runs across a pool of
// worker goroutines. It exists so the experiment harness can regenerate
// the paper's hundreds of runs in parallel while keeping the rendered
// artifacts bit-identical to a serial execution: results are keyed by
// submission index, never by completion order, so a table built from a
// batch's results is the same table no matter how the scheduler
// interleaved the work.
//
// The pool provides bounded-queue backpressure (a batch feeds workers
// through a channel sized to the worker count, so huge batches never
// buffer fully), first-error capture with the failing task's label,
// cancellation through context.Context, and cumulative statistics
// (runs completed, wall time, busy time) for speedup reporting.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ropsim/internal/stats"
)

// Task is one unit of work: a labeled closure producing a result. The
// label identifies the run in error messages and progress events.
type Task[R any] struct {
	// Label names the run in error messages, progress events and the
	// stats artifact.
	Label string
	// Run executes the task; ctx is cancelled when the pool aborts.
	Run func(ctx context.Context) (R, error)
}

// Func wraps a plain function as a labeled task.
func Func[R any](label string, fn func(ctx context.Context) (R, error)) Task[R] {
	return Task[R]{Label: label, Run: fn}
}

// Event describes one completed (or failed) task, delivered to the
// pool's progress callback.
type Event struct {
	// Label is the task's label.
	Label string
	// Err is the task's error, nil on success.
	Err error
	// Duration is how long the task ran.
	Duration time.Duration
	// Completed and Submitted are the pool's cumulative counts at the
	// time of the event.
	Completed, Submitted int64
	// ETA estimates the remaining wall time for the submitted work
	// (zero when unknown). It assumes tasks of mean duration spread
	// across the pool's workers.
	ETA time.Duration
}

// Pool schedules tasks across a fixed number of workers and accumulates
// statistics across batches. The zero value is not usable; construct
// with New. A Pool may serve many Run batches, concurrently or in
// sequence; all statistics are cumulative.
type Pool struct {
	jobs int

	mu        sync.Mutex
	started   time.Time // first task start, for wall time
	stopped   time.Time // last task end
	submitted int64
	busy      time.Duration
	durMean   stats.Mean
	progress  func(Event)

	completed stats.AtomicCounter
	failed    stats.AtomicCounter
}

// New returns a pool of the given size. jobs <= 0 selects
// runtime.GOMAXPROCS(0); jobs == 1 yields serial execution.
func New(jobs int) *Pool {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Pool{jobs: jobs}
}

// Jobs reports the worker count.
func (p *Pool) Jobs() int { return p.jobs }

// SetProgress installs a callback invoked after every task completion.
// The pool serializes calls, so the callback may write to a shared sink
// without further locking. Install before submitting work.
func (p *Pool) SetProgress(fn func(Event)) {
	p.mu.Lock()
	p.progress = fn
	p.mu.Unlock()
}

// Stats is a snapshot of the pool's cumulative work.
type Stats struct {
	// Jobs is the worker count.
	Jobs int
	// Completed counts successfully finished tasks; Failed counts
	// tasks that returned an error.
	Completed, Failed int64
	// Wall is the elapsed time between the first task starting and the
	// last task finishing (so far).
	Wall time.Duration
	// Busy is the summed duration of all tasks — the serial-equivalent
	// execution time. When workers outnumber available CPUs, each
	// task's duration includes time-slicing, so Busy (and Speedup)
	// overestimate the serial baseline; with jobs <= CPUs it is tight.
	Busy time.Duration
}

// Speedup reports Busy/Wall, the achieved speedup over a serial
// execution of the same tasks (0 when no work ran).
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return s.Busy.Seconds() / s.Wall.Seconds()
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("%d runs in %s wall (%d jobs, %s serial-equivalent, %.2fx speedup)",
		s.Completed, s.Wall.Round(time.Millisecond), s.Jobs,
		s.Busy.Round(time.Millisecond), s.Speedup())
}

// Stats snapshots the pool's cumulative counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var wall time.Duration
	if !p.started.IsZero() {
		end := p.stopped
		if end.IsZero() || p.inFlight() {
			end = time.Now()
		}
		wall = end.Sub(p.started)
	}
	return Stats{
		Jobs:      p.jobs,
		Completed: p.completed.Value(),
		Failed:    p.failed.Value(),
		Wall:      wall,
		Busy:      p.busy,
	}
}

// inFlight reports whether submitted tasks have not finished yet.
// Callers hold p.mu.
func (p *Pool) inFlight() bool {
	return p.completed.Value()+p.failed.Value() < p.submitted
}

// admit registers a task about to run.
func (p *Pool) admit() {
	p.mu.Lock()
	if p.started.IsZero() {
		p.started = time.Now()
	}
	p.submitted++
	p.mu.Unlock()
}

// record registers a finished task and fires the progress callback.
func (p *Pool) record(label string, d time.Duration, err error) {
	if err != nil {
		p.failed.Inc()
	} else {
		p.completed.Inc()
	}
	p.mu.Lock()
	p.busy += d
	p.durMean.Observe(d.Seconds())
	p.stopped = time.Now()
	done := p.completed.Value() + p.failed.Value()
	ev := Event{
		Label:     label,
		Err:       err,
		Duration:  d,
		Completed: done,
		Submitted: p.submitted,
	}
	if rem := p.submitted - done; rem > 0 && p.durMean.N() > 0 {
		ev.ETA = time.Duration(float64(rem) * p.durMean.Value() / float64(p.jobs) * float64(time.Second))
	}
	fn := p.progress
	if fn != nil {
		// Invoked under the pool lock so events arrive serialized; the
		// callback must not call back into the pool.
		fn(ev)
	}
	p.mu.Unlock()
}

// Run executes tasks on the pool and returns their results in
// submission order, regardless of completion order. On the first task
// error it cancels the batch — queued tasks are skipped, in-flight
// tasks finish — and returns that error wrapped with the task's label;
// among concurrent failures the earliest submission index wins, so
// serial and parallel executions report the same error. A cancelled ctx
// aborts the batch with ctx's error.
//
// Tasks are fed to workers through a bounded queue, so a batch of
// thousands holds only O(jobs) tasks in flight or buffered at once.
func Run[R any](ctx context.Context, p *Pool, tasks []Task[R]) ([]R, error) {
	results := make([]R, len(tasks))
	if len(tasks) == 0 {
		return results, ctx.Err()
	}
	jobs := p.jobs
	if jobs > len(tasks) {
		jobs = len(tasks)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errMu    sync.Mutex
		firstErr error
		firstIdx = -1
	)
	fail := func(i int, err error) {
		errMu.Lock()
		if firstIdx == -1 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		errMu.Unlock()
		cancel()
	}

	// Feeder: bounded queue sized to the worker count provides
	// backpressure; cancellation stops admission of queued work.
	queue := make(chan int, jobs)
	go func() {
		defer close(queue)
		for i := range tasks {
			select {
			case queue <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				if ctx.Err() != nil {
					return
				}
				t := tasks[i]
				p.admit()
				start := time.Now()
				res, err := t.Run(ctx)
				p.record(t.Label, time.Since(start), err)
				if err != nil {
					fail(i, fmt.Errorf("%s: %w", t.Label, err))
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()

	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// Parent cancellation (our own deferred cancel has not run yet,
		// and the internal cancel only fires on a task error).
		return nil, err
	}
	return results, nil
}
