// Package runner schedules independent simulation runs across a pool of
// worker goroutines. It exists so the experiment harness can regenerate
// the paper's hundreds of runs in parallel while keeping the rendered
// artifacts bit-identical to a serial execution: results are keyed by
// submission index, never by completion order, so a table built from a
// batch's results is the same table no matter how the scheduler
// interleaved the work.
//
// The pool provides bounded-queue backpressure (a batch feeds workers
// through a channel sized to the worker count, so huge batches never
// buffer fully), first-error capture with the failing task's label,
// cancellation through context.Context, and cumulative statistics
// (runs completed, wall time, busy time) for speedup reporting.
//
// The pool is also the campaign's fault boundary (see fault.go and
// docs/ROBUSTNESS.md): task panics are recovered into *PanicError, a
// failure either cancels the batch (FailFast) or is summarized at the
// end (RunToCompletion), and Transient tasks retry with backoff.
//
//simlint:hostcode:package "the pool times real host execution (wall time, busy time, retry backoff); no simulated state reads the host clock"
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"ropsim/internal/stats"
)

// Task is one unit of work: a labeled closure producing a result. The
// label identifies the run in error messages and progress events.
type Task[R any] struct {
	// Label names the run in error messages, progress events and the
	// stats artifact.
	Label string
	// Run executes the task; ctx is cancelled when the pool aborts.
	Run func(ctx context.Context) (R, error)
	// Transient opts the task into the pool's bounded retry-with-backoff
	// (SetRetry): its failures are assumed recoverable (filesystem
	// hiccups, injected faults) and re-attempted before counting.
	Transient bool
}

// Func wraps a plain function as a labeled task.
func Func[R any](label string, fn func(ctx context.Context) (R, error)) Task[R] {
	return Task[R]{Label: label, Run: fn}
}

// Event describes one completed (or failed) task, delivered to the
// pool's progress callback.
type Event struct {
	// Label is the task's label.
	Label string
	// Err is the task's error, nil on success.
	Err error
	// Duration is how long the task ran.
	Duration time.Duration
	// Completed and Submitted are the pool's cumulative counts at the
	// time of the event.
	Completed, Submitted int64
	// ETA estimates the remaining wall time for the submitted work
	// (zero when unknown). It assumes tasks of mean duration spread
	// across the pool's workers.
	ETA time.Duration
}

// Pool schedules tasks across a fixed number of workers and accumulates
// statistics across batches. The zero value is not usable; construct
// with New. A Pool may serve many Run batches, concurrently or in
// sequence; all statistics are cumulative.
type Pool struct {
	jobs int

	mu        sync.Mutex
	started   time.Time // first task start, for wall time
	stopped   time.Time // last task end
	submitted int64
	busy      time.Duration
	durMean   stats.Mean
	progress  func(Event)

	policy    Policy
	retryMax  int     // extra attempts for Transient tasks
	retry     Backoff // delay schedule between attempts
	faultHook func(label string, attempt int) error

	completed stats.AtomicCounter
	failed    stats.AtomicCounter
	retried   stats.AtomicCounter
	panicked  stats.AtomicCounter
}

// SetPolicy selects the pool's failure policy (default FailFast).
// Install before submitting work.
func (p *Pool) SetPolicy(pol Policy) {
	p.mu.Lock()
	p.policy = pol
	p.mu.Unlock()
}

// Policy reports the pool's failure policy.
func (p *Pool) Policy() Policy {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.policy
}

// SetRetry configures bounded retry for Transient tasks: up to max
// re-attempts under DefaultRetryBackoff(backoff) — exponential delays
// from the given base with 25% seeded jitter, a 30 s per-delay cap and
// a 2 min total budget. max <= 0 disables retry (the default). Use
// SetRetryBackoff for full schedule control. Install before submitting
// work.
func (p *Pool) SetRetry(max int, backoff time.Duration) {
	p.SetRetryBackoff(max, DefaultRetryBackoff(backoff))
}

// SetRetryBackoff configures bounded retry for Transient tasks with an
// explicit delay schedule: up to max re-attempts, sleeping per b
// between tries. Each task derives its own deterministic schedule from
// (b.Seed, task label), so retry timing is reproducible and tasks
// never retry in lockstep. Install before submitting work.
func (p *Pool) SetRetryBackoff(max int, b Backoff) {
	p.mu.Lock()
	p.retryMax, p.retry = max, b
	p.mu.Unlock()
}

// SetFaultHook installs a fault-injection hook invoked before every
// task attempt (attempt counts from 0). The hook may return an error
// (simulating a transient failure), panic (simulating a crashing run),
// or block (simulating a hang); the returned error, if any, replaces
// the task execution for that attempt. Testing only — nil in
// production. Install before submitting work.
func (p *Pool) SetFaultHook(fn func(label string, attempt int) error) {
	p.mu.Lock()
	p.faultHook = fn
	p.mu.Unlock()
}

// runConfig snapshots the pool's per-batch behavior knobs.
func (p *Pool) runConfig() (Policy, int, Backoff, func(string, int) error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.policy, p.retryMax, p.retry, p.faultHook
}

// New returns a pool of the given size. jobs <= 0 selects
// runtime.GOMAXPROCS(0); jobs == 1 yields serial execution.
func New(jobs int) *Pool {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Pool{jobs: jobs}
}

// Jobs reports the worker count.
func (p *Pool) Jobs() int { return p.jobs }

// SetProgress installs a callback invoked after every task completion.
// The pool serializes calls, so the callback may write to a shared sink
// without further locking. Install before submitting work.
func (p *Pool) SetProgress(fn func(Event)) {
	p.mu.Lock()
	p.progress = fn
	p.mu.Unlock()
}

// Stats is a snapshot of the pool's cumulative work.
type Stats struct {
	// Jobs is the worker count.
	Jobs int
	// Completed counts successfully finished tasks; Failed counts
	// tasks that returned an error.
	Completed, Failed int64
	// Retried counts re-attempts of Transient tasks; Panicked counts
	// task panics recovered into errors (both cumulative).
	Retried, Panicked int64
	// Wall is the elapsed time between the first task starting and the
	// last task finishing (so far).
	Wall time.Duration
	// Busy is the summed duration of all tasks — the serial-equivalent
	// execution time. When workers outnumber available CPUs, each
	// task's duration includes time-slicing, so Busy (and Speedup)
	// overestimate the serial baseline; with jobs <= CPUs it is tight.
	Busy time.Duration
}

// Speedup reports Busy/Wall, the achieved speedup over a serial
// execution of the same tasks (0 when no work ran).
func (s Stats) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return s.Busy.Seconds() / s.Wall.Seconds()
}

// String renders the stats as a one-line summary; failure, retry and
// panic counts appear only when non-zero.
func (s Stats) String() string {
	line := fmt.Sprintf("%d runs in %s wall (%d jobs, %s serial-equivalent, %.2fx speedup)",
		s.Completed, s.Wall.Round(time.Millisecond), s.Jobs,
		s.Busy.Round(time.Millisecond), s.Speedup())
	if s.Failed > 0 || s.Retried > 0 || s.Panicked > 0 {
		line += fmt.Sprintf(" [failed=%d retried=%d panicked=%d]", s.Failed, s.Retried, s.Panicked)
	}
	return line
}

// Stats snapshots the pool's cumulative counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var wall time.Duration
	if !p.started.IsZero() {
		end := p.stopped
		if end.IsZero() || p.inFlight() {
			end = time.Now()
		}
		wall = end.Sub(p.started)
	}
	return Stats{
		Jobs:      p.jobs,
		Completed: p.completed.Value(),
		Failed:    p.failed.Value(),
		Retried:   p.retried.Value(),
		Panicked:  p.panicked.Value(),
		Wall:      wall,
		Busy:      p.busy,
	}
}

// inFlight reports whether submitted tasks have not finished yet.
// Callers hold p.mu.
func (p *Pool) inFlight() bool {
	return p.completed.Value()+p.failed.Value() < p.submitted
}

// admit registers a task about to run.
func (p *Pool) admit() {
	p.mu.Lock()
	if p.started.IsZero() {
		p.started = time.Now()
	}
	p.submitted++
	p.mu.Unlock()
}

// record registers a finished task and fires the progress callback.
func (p *Pool) record(label string, d time.Duration, err error) {
	if err != nil {
		p.failed.Inc()
	} else {
		p.completed.Inc()
	}
	p.mu.Lock()
	p.busy += d
	p.durMean.Observe(d.Seconds())
	p.stopped = time.Now()
	done := p.completed.Value() + p.failed.Value()
	ev := Event{
		Label:     label,
		Err:       err,
		Duration:  d,
		Completed: done,
		Submitted: p.submitted,
	}
	if rem := p.submitted - done; rem > 0 && p.durMean.N() > 0 {
		ev.ETA = time.Duration(float64(rem) * p.durMean.Value() / float64(p.jobs) * float64(time.Second))
	}
	fn := p.progress
	if fn != nil {
		// Invoked under the pool lock so events arrive serialized; the
		// callback must not call back into the pool.
		fn(ev)
	}
	p.mu.Unlock()
}

// Run executes tasks on the pool and returns their results in
// submission order, regardless of completion order. Task panics are
// recovered into *PanicError (with the goroutine stack), so a crashing
// run never takes down the process. What happens after a failure is
// the pool's Policy:
//
//   - FailFast (default): the batch cancels — queued tasks are skipped,
//     in-flight tasks finish — and the returned *BatchError carries the
//     earliest submission index's failure (so serial and parallel
//     executions report the same one) plus the skipped-task count and
//     pool statistics.
//   - RunToCompletion: every remaining task still runs; the returned
//     *BatchError lists all failures, and the results slice holds every
//     successful task's result (failed slots keep their zero value).
//
// Tasks marked Transient are retried per SetRetry before their failure
// counts. A cancelled ctx aborts the batch with ctx's error; task
// errors that merely echo that cancellation are not reported as
// failures.
//
// Tasks are fed to workers through a bounded queue, so a batch of
// thousands holds only O(jobs) tasks in flight or buffered at once.
func Run[R any](ctx context.Context, p *Pool, tasks []Task[R]) ([]R, error) {
	results := make([]R, len(tasks))
	if len(tasks) == 0 {
		return results, ctx.Err()
	}
	jobs := p.jobs
	if jobs > len(tasks) {
		jobs = len(tasks)
	}
	policy, retryMax, retryBackoff, faultHook := p.runConfig()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errMu    sync.Mutex
		failures []TaskError
		started  int64
	)
	fail := func(i int, label string, err error) {
		errMu.Lock()
		failures = append(failures, TaskError{Index: i, Label: label, Err: err})
		errMu.Unlock()
		if policy == FailFast {
			cancel()
		}
	}

	// Feeder: bounded queue sized to the worker count provides
	// backpressure; cancellation stops admission of queued work.
	queue := make(chan int, jobs)
	go func() {
		defer close(queue)
		for i := range tasks {
			select {
			case queue <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				if ctx.Err() != nil {
					return
				}
				t := tasks[i]
				p.admit()
				atomic.AddInt64(&started, 1)
				start := time.Now()
				res, err := attempt(ctx, p, t, retryMax, retryBackoff, faultHook)
				p.record(t.Label, time.Since(start), err)
				if err != nil {
					// A task aborted by the batch's own cancellation is not
					// a failure: the cause is reported once, at the end.
					if !(ctx.Err() != nil && isCancellation(err)) {
						fail(i, t.Label, fmt.Errorf("%s: %w", t.Label, err))
					}
					if policy == FailFast {
						return
					}
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()

	skipped := len(tasks) - int(atomic.LoadInt64(&started))
	if err := p.batchErr(failures, skipped); err != nil {
		if policy == RunToCompletion {
			// Partial results survive alongside the failure summary.
			return results, err
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// Parent cancellation (our own deferred cancel has not run yet,
		// and the internal cancel only fires on a task failure).
		return nil, err
	}
	return results, nil
}

// attempt executes one task with panic recovery, the fault-injection
// hook, and bounded retry for Transient tasks. Retry delays follow the
// pool's Backoff; a schedule that exhausts its max-elapsed budget ends
// the retries early with the last failure.
func attempt[R any](ctx context.Context, p *Pool, t Task[R], retryMax int,
	backoff Backoff, hook func(string, int) error) (res R, err error) {
	maxAtt := 0
	if t.Transient {
		maxAtt = retryMax
	}
	var sched *BackoffSchedule
	for att := 0; ; att++ {
		res, err = runOnce(ctx, p, t, att, hook)
		if err == nil || att >= maxAtt || ctx.Err() != nil || isCancellation(err) {
			return res, err
		}
		if sched == nil {
			sched = backoff.Schedule(t.Label)
		}
		d, ok := sched.Next()
		if !ok {
			// Max-elapsed budget spent: surface the failure now.
			return res, err
		}
		if !sleepBackoff(ctx.Done(), d) {
			return res, err
		}
		p.retried.Inc()
	}
}

// runOnce is a single task attempt under a panic guard: a panic in the
// task (or the fault hook) becomes a *PanicError carrying the stack.
func runOnce[R any](ctx context.Context, p *Pool, t Task[R], attempt int,
	hook func(string, int) error) (res R, err error) {
	defer func() {
		if v := recover(); v != nil {
			p.panicked.Inc()
			err = &PanicError{Label: t.Label, Value: v, Stack: debug.Stack()}
		}
	}()
	if hook != nil {
		if herr := hook(t.Label, attempt); herr != nil {
			return res, herr
		}
	}
	return t.Run(ctx)
}
