package runner

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffDeterministicSchedule proves the reproducibility contract:
// the same (Seed, salt) pair yields an identical delay sequence, and a
// different salt yields a different (decorrelated) one.
func TestBackoffDeterministicSchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Factor: 2, Max: time.Second,
		Jitter: 0.5, Seed: 42}
	delays := func(salt string, n int) []time.Duration {
		s := b.Schedule(salt)
		out := make([]time.Duration, n)
		for i := range out {
			d, ok := s.Next()
			if !ok {
				t.Fatalf("schedule exhausted at attempt %d with no MaxElapsed", i)
			}
			out[i] = d
		}
		return out
	}
	a1, a2 := delays("task-a", 8), delays("task-a", 8)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("attempt %d: same (seed, salt) gave %v then %v", i, a1[i], a2[i])
		}
	}
	bb := delays("task-b", 8)
	same := true
	for i := range a1 {
		if a1[i] != bb[i] {
			same = false
		}
	}
	if same {
		t.Error("different salts produced identical jitter sequences")
	}
}

// TestBackoffGrowthCapAndJitterBounds checks the schedule's shape: the
// un-jittered spine doubles from Base, every delay stays within the
// jitter envelope, and no delay exceeds Max*(1+Jitter).
func TestBackoffGrowthCapAndJitterBounds(t *testing.T) {
	b := Backoff{Base: 8 * time.Millisecond, Factor: 2, Max: 64 * time.Millisecond,
		Jitter: 0.25, Seed: 7}
	s := b.Schedule("x")
	for i := 0; i < 12; i++ {
		d, ok := s.Next()
		if !ok {
			t.Fatalf("exhausted at %d with no MaxElapsed", i)
		}
		spine := float64(b.Base) * float64(int(1)<<uint(i))
		if spine > float64(b.Max) {
			spine = float64(b.Max)
		}
		lo := time.Duration(spine * (1 - b.Jitter))
		hi := time.Duration(spine * (1 + b.Jitter))
		if d < lo || d > hi {
			t.Errorf("attempt %d: delay %v outside jitter envelope [%v, %v]", i, d, lo, hi)
		}
	}
	if s.Attempts() != 12 {
		t.Errorf("Attempts() = %d, want 12", s.Attempts())
	}
}

// TestBackoffMaxElapsedExhausts proves the total-budget cap: once the
// summed delays would exceed MaxElapsed, Next reports exhaustion and
// Elapsed never overshoots the budget.
func TestBackoffMaxElapsedExhausts(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Factor: 2,
		MaxElapsed: 100 * time.Millisecond, Seed: 1}
	s := b.Schedule("t")
	n := 0
	for {
		d, ok := s.Next()
		if !ok {
			break
		}
		n++
		if d < 0 {
			t.Fatalf("negative delay %v", d)
		}
		if n > 100 {
			t.Fatal("schedule never exhausted its 100 ms budget")
		}
	}
	// 10+20+40 = 70 ms fits; +80 would blow the 100 ms budget.
	if n != 3 {
		t.Errorf("handed out %d delays before exhaustion, want 3", n)
	}
	if s.Elapsed() > b.MaxElapsed {
		t.Errorf("Elapsed %v exceeds MaxElapsed %v", s.Elapsed(), b.MaxElapsed)
	}
}

// TestBackoffZeroValueNeverWaits pins the compatibility contract: the
// zero-value Backoff (what SetRetry(max, 0) historically meant) hands
// out zero-length delays forever.
func TestBackoffZeroValueNeverWaits(t *testing.T) {
	s := Backoff{}.Schedule("z")
	for i := 0; i < 50; i++ {
		d, ok := s.Next()
		if !ok || d != 0 {
			t.Fatalf("attempt %d: got (%v, %v), want (0, true)", i, d, ok)
		}
	}
}

// TestRetryStopsAtMaxElapsed proves the pool integration: a transient
// task whose retries would outlive the schedule's budget stops retrying
// early and surfaces its last failure instead of sleeping on.
func TestRetryStopsAtMaxElapsed(t *testing.T) {
	p := New(1)
	// Budget admits exactly one delay (1 ms base, 1 ms budget): the task
	// gets its first attempt plus one retry, then the schedule exhausts.
	p.SetRetryBackoff(10, Backoff{Base: time.Millisecond,
		MaxElapsed: time.Millisecond, Seed: 3})
	attempts := 0
	boom := errors.New("still broken")
	tasks := []Task[int]{{Label: "t", Transient: true,
		Run: func(context.Context) (int, error) { attempts++; return 0, boom }}}
	_, err := Run(context.Background(), p, tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
	if attempts != 2 {
		t.Errorf("task attempted %d times, want 2 (initial + one budgeted retry)", attempts)
	}
	if got := p.Stats().Retried; got != 1 {
		t.Errorf("Retried = %d, want 1", got)
	}
}
