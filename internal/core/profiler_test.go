package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProfilerLambdaBeta(t *testing.T) {
	p := NewProfiler(10)
	// 6 refreshes with B>0: 4 of them saw A>0 -> λ = 4/6.
	for i := 0; i < 4; i++ {
		p.Record(true, true)
	}
	for i := 0; i < 2; i++ {
		p.Record(true, false)
	}
	// 4 refreshes with B=0: 3 quiet -> β = 3/4.
	for i := 0; i < 3; i++ {
		p.Record(false, false)
	}
	p.Record(false, true)

	lambda, beta := p.LambdaBeta()
	if lambda != 4.0/6.0 {
		t.Errorf("lambda = %g, want %g", lambda, 4.0/6.0)
	}
	if beta != 0.75 {
		t.Errorf("beta = %g, want 0.75", beta)
	}
	if !p.Done() {
		t.Error("profiler not done after 10 records")
	}
}

func TestProfilerDefaults(t *testing.T) {
	p := NewProfiler(5)
	// Only B>0 refreshes: β defaults to 1 (trust silence).
	p.Record(true, true)
	lambda, beta := p.LambdaBeta()
	if lambda != 1 || beta != 1 {
		t.Errorf("lambda,beta = %g,%g, want 1,1", lambda, beta)
	}
	// Only B=0 refreshes: λ defaults to 1 (trust activity).
	p2 := NewProfiler(5)
	p2.Record(false, false)
	lambda, beta = p2.LambdaBeta()
	if lambda != 1 || beta != 1 {
		t.Errorf("lambda,beta = %g,%g, want 1,1", lambda, beta)
	}
}

func TestProfilerReset(t *testing.T) {
	p := NewProfiler(2)
	p.Record(true, true)
	p.Record(true, true)
	if !p.Done() {
		t.Fatal("not done")
	}
	p.Reset()
	if p.Done() || p.Seen() != 0 {
		t.Error("Reset did not clear progress")
	}
	c := p.Counts()
	if c[1][1] != 0 {
		t.Error("Reset did not clear counts")
	}
}

func TestProfilerProbabilitiesInRange(t *testing.T) {
	// Property: for any record mix, λ and β are valid probabilities and
	// match the definition computed directly from counts.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProfiler(int(n) + 1)
		var c [2][2]int64
		for i := 0; i <= int(n); i++ {
			b, a := rng.Intn(2) == 1, rng.Intn(2) == 1
			p.Record(b, a)
			c[b2i(b)][b2i(a)]++
		}
		lambda, beta := p.LambdaBeta()
		if lambda < 0 || lambda > 1 || beta < 0 || beta > 1 {
			return false
		}
		if bp := c[1][0] + c[1][1]; bp > 0 && lambda != float64(c[1][1])/float64(bp) {
			return false
		}
		if bz := c[0][0] + c[0][1]; bz > 0 && beta != float64(c[0][0])/float64(bz) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProfilerPanicsOnBadTarget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewProfiler(0) did not panic")
		}
	}()
	NewProfiler(0)
}
