package core

import "ropsim/internal/stats"

// SRAM is the fully-associative prefetch buffer in the memory controller
// (paper §IV-A). Ranks take turns using it: before a rank's refresh the
// engine loads predicted lines, reads that arrive while the rank is
// frozen are served from the buffer, and the buffer is released when the
// refresh completes.
//
// Lines are keyed by a global line key (see Engine.lineKey). The buffer
// holds at most its capacity; overflowing inserts are dropped, matching
// the fixed hardware size.
type SRAM struct {
	capacity int
	owner    int // rank currently using the buffer, -1 when free
	lines    map[uint64]bool
	used     map[uint64]bool // lines served at least once this session

	// Inserted counts lines loaded; Dropped counts inserts beyond
	// capacity (a well-behaved engine never exceeds the quota, but the
	// buffer enforces its size regardless).
	Inserted, Dropped stats.Counter
	// Hits and Lookups cover reads attempted while a rank is frozen.
	Hits, Lookups stats.Counter
}

// NewSRAM builds a buffer holding capacity cache lines.
func NewSRAM(capacity int) *SRAM {
	if capacity <= 0 {
		panic("core: SRAM capacity must be positive")
	}
	return &SRAM{
		capacity: capacity,
		owner:    -1,
		lines:    make(map[uint64]bool, capacity),
		used:     make(map[uint64]bool, capacity),
	}
}

// RegisterMetrics registers the buffer's fill and probe counters plus
// the derived hit rate into r (typically a "sram"-scoped sub-registry).
func (s *SRAM) RegisterMetrics(r *stats.Registry) {
	r.Register("inserted", &s.Inserted)
	r.Register("dropped", &s.Dropped)
	r.Register("hits", &s.Hits)
	r.Register("lookups", &s.Lookups)
	r.Gauge("hit_rate", func() float64 { return s.HitRate(0) })
}

// Capacity reports the buffer size in cache lines.
func (s *SRAM) Capacity() int { return s.capacity }

// Owner reports the rank currently holding the buffer, or -1.
func (s *SRAM) Owner() int { return s.owner }

// Len reports the number of valid lines.
func (s *SRAM) Len() int { return len(s.lines) }

// Acquire claims the buffer for a new fill session. Ranks take turns
// using the buffer (paper §IV-A): each claim drops the previous
// session's contents, whether they belonged to another rank or to an
// earlier refresh of the same rank. It always succeeds — staggered
// refreshes never overlap, so the previous owner's refresh is long over
// by the time the buffer is claimed again.
func (s *SRAM) Acquire(rank int) bool {
	clear(s.lines)
	clear(s.used)
	s.owner = rank
	return true
}

// Insert loads one line. Inserts beyond capacity are dropped.
func (s *SRAM) Insert(key uint64) {
	if s.owner == -1 {
		panic("core: Insert without owner")
	}
	if len(s.lines) >= s.capacity && !s.lines[key] {
		s.Dropped.Inc()
		return
	}
	if !s.lines[key] {
		s.lines[key] = true
		s.Inserted.Inc()
	}
}

// Lookup probes for a line on behalf of rank, counting the probe in the
// hit-rate statistics. It reports false when the buffer belongs to a
// different rank.
func (s *SRAM) Lookup(rank int, key uint64) bool {
	s.Lookups.Inc()
	if s.owner != rank {
		return false
	}
	if s.lines[key] {
		s.Hits.Inc()
		s.used[key] = true
		return true
	}
	return false
}

// Serve probes for a line outside the frozen window (no hit-rate
// statistics) and marks it consumed. It reports false when the buffer
// belongs to a different rank.
func (s *SRAM) Serve(rank int, key uint64) bool {
	if s.owner != rank || !s.lines[key] {
		return false
	}
	s.used[key] = true
	return true
}

// UsedCount reports how many distinct lines this session has served.
func (s *SRAM) UsedCount() int { return len(s.used) }

// Contains probes without touching statistics.
func (s *SRAM) Contains(key uint64) bool { return s.lines[key] }

// Invalidate drops a line (a write to a buffered line during refresh
// must invalidate the stale copy, §IV-D).
func (s *SRAM) Invalidate(key uint64) {
	delete(s.lines, key)
}

// Release clears the buffer and frees it for the next rank.
func (s *SRAM) Release() {
	s.owner = -1
	clear(s.lines)
	clear(s.used)
}

// HitRate reports hits/lookups, or fallback with no lookups.
func (s *SRAM) HitRate(fallback float64) float64 {
	if s.Lookups.Value() == 0 {
		return fallback
	}
	return float64(s.Hits.Value()) / float64(s.Lookups.Value())
}
