// Package core implements the paper's contribution: Refresh-Oriented
// Prefetching (ROP). It contains the Pattern Profiler (paper §IV-B), the
// rank-scoped prediction table adapted from VLDP (paper §IV-C), the
// fully-associative SRAM prefetch buffer, and the Engine tying them into
// the Training → Observing → Prefetching state machine that the memory
// controller drives around each refresh operation.
package core

import "ropsim/internal/addr"

// freqHalveAt is the frequency ceiling: when any pattern frequency
// reaches it, all three are halved (paper §IV-C: "When any of the three
// frequencies overflows ... all of them are reduced to a half"). The
// paper sizes each counter field small (the 204-bit entry); the exact
// width is immaterial as long as halving preserves the ratios.
const freqHalveAt = 1 << 16

// TableEntry records the access patterns observed on one bank during the
// observational window (paper Fig. 6): the last accessed bank line and
// three delta patterns (1-, 2- and 3-delta) with their repeat
// frequencies.
type TableEntry struct {
	// Valid reports whether the bank has been accessed since the last
	// reset (invalid entries generate no candidates).
	Valid    bool
	LastAddr int64 // cache-line offset within the bank

	// Anchor is the last address that followed the dominant pattern;
	// candidate generation starts here so that a single irregular access
	// (which moves LastAddr somewhere unrelated) does not derail the
	// predictions for a whole refresh (noise-tolerant mode only).
	Anchor int64

	// Delta1 is the current single-delta pattern (in bank lines); F1
	// counts how often it repeated (paper Fig. 6 "one delta").
	Delta1 int64
	F1     uint32 // repeat frequency of Delta1
	// Conf is a VLDP-style 2-bit confidence on Delta1: an off-pattern
	// delta decrements it instead of resetting the pattern, and only a
	// persistent change replaces Delta1 (noise-tolerant mode only).
	Conf uint8
	// Delta2 is the current two-delta tuple pattern; F2 its repeat
	// frequency (paper Fig. 6 "two deltas").
	Delta2 [2]int64
	F2     uint32 // repeat frequency of Delta2
	// Delta3 is the current three-delta tuple pattern; F3 its repeat
	// frequency (paper Fig. 6 "three deltas").
	Delta3 [3]int64
	F3     uint32 // repeat frequency of Delta3

	// Tumbling collectors: every two accesses form a two-delta tuple,
	// every three a three-delta tuple (paper §IV-C).
	pend2 [2]int64
	n2    int
	pend3 [3]int64
	n3    int
}

// FreqSum reports f1+f2+f3, the entry's weight in the per-bank prefetch
// quota (paper Eq. 3).
func (e *TableEntry) FreqSum() int64 {
	return int64(e.F1) + int64(e.F2) + int64(e.F3)
}

// Table is the per-rank prediction table: one entry per bank
// (paper §IV-C: "The number of entries in the prediction table is equal
// to the number of banks in a rank").
//
// Two update policies exist. The strict policy is the paper's verbatim
// §IV-C rule: any off-pattern delta immediately replaces the pattern and
// zeroes its frequency. The default noise-tolerant policy adds a 2-bit
// confidence (in the spirit of the VLDP tables the design derives from)
// so a single irregular access does not erase an established streak —
// without it, one stray access right before a refresh starves that
// bank's prefetch quota. The ablation benchmarks compare both.
type Table struct {
	entries []TableEntry
	strict  bool
}

// NewTable builds a noise-tolerant table for a rank with the given
// number of banks.
func NewTable(banks int) *Table {
	if banks <= 0 {
		panic("core: table needs at least one bank")
	}
	return &Table{entries: make([]TableEntry, banks)}
}

// NewStrictTable builds a table with the paper's verbatim update rule.
func NewStrictTable(banks int) *Table {
	t := NewTable(banks)
	t.strict = true
	return t
}

// Banks reports the number of entries.
func (t *Table) Banks() int { return len(t.entries) }

// Entry returns the entry for bank (for inspection and tests).
func (t *Table) Entry(bank int) *TableEntry { return &t.entries[bank] }

// Observe records an access to the given bank line, updating the delta
// patterns (see Table for the two update policies).
func (t *Table) Observe(bank int, line int64) {
	e := &t.entries[bank]
	if !e.Valid {
		e.Valid = true
		e.LastAddr = line
		e.Anchor = line
		return
	}
	d := line - e.LastAddr
	e.LastAddr = line
	if d == 0 {
		return
	}

	switch {
	case d == e.Delta1:
		e.F1++
		if e.Conf < 3 {
			e.Conf++
		}
		e.Anchor = line
	case !t.strict && e.Conf > 0:
		// Tolerated outlier: keep the established one-delta pattern.
		// The tuple collectors below still see the delta — multi-delta
		// patterns (e.g. 2,2,5) look like noise to the one-delta slot
		// but are exactly what Delta2/Delta3 learn.
		e.Conf--
	default:
		e.Delta1 = d
		e.F1 = 0
		e.Conf = 0
		e.Anchor = line
	}

	e.pend2[e.n2] = d
	e.n2++
	if e.n2 == 2 {
		if e.pend2 == e.Delta2 {
			e.F2++
		} else {
			e.Delta2 = e.pend2
			e.F2 = 0
		}
		e.n2 = 0
	}

	e.pend3[e.n3] = d
	e.n3++
	if e.n3 == 3 {
		if e.pend3 == e.Delta3 {
			e.F3++
		} else {
			e.Delta3 = e.pend3
			e.F3 = 0
		}
		e.n3 = 0
	}

	if e.F1 >= freqHalveAt || e.F2 >= freqHalveAt || e.F3 >= freqHalveAt {
		e.F1 /= 2
		e.F2 /= 2
		e.F3 /= 2
	}
}

// Decay halves every frequency. The engine calls it at each window
// boundary so that pattern weights emphasize the most recent window while
// retaining longer-lived patterns across windows.
func (t *Table) Decay() {
	for i := range t.entries {
		e := &t.entries[i]
		e.F1 /= 2
		e.F2 /= 2
		e.F3 /= 2
	}
}

// Reset clears all entries.
func (t *Table) Reset() {
	for i := range t.entries {
		t.entries[i] = TableEntry{}
	}
}

// Quotas splits the SRAM capacity c across banks proportionally to each
// bank's frequency sum (paper Eq. 3), using largest-remainder rounding so
// that the quotas sum to at most c. Banks with zero frequency get zero.
func (t *Table) Quotas(c int) []int {
	quotas := make([]int, len(t.entries))
	var total int64
	for i := range t.entries {
		total += t.entries[i].FreqSum()
	}
	if total == 0 || c <= 0 {
		return quotas
	}
	type rem struct {
		bank int
		frac int64
	}
	rems := make([]rem, 0, len(t.entries))
	used := 0
	for i := range t.entries {
		share := t.entries[i].FreqSum() * int64(c)
		quotas[i] = int(share / total)
		used += quotas[i]
		rems = append(rems, rem{bank: i, frac: share % total})
	}
	// Distribute the remainder to the largest fractional shares,
	// breaking ties by bank index for determinism.
	for used < c {
		best := -1
		for j := range rems {
			if rems[j].frac == 0 {
				continue
			}
			if best == -1 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		if best == -1 {
			break
		}
		quotas[rems[best].bank]++
		rems[best].frac = 0
		used++
	}
	return quotas
}

// Candidates predicts up to quota bank lines for the given bank,
// following the three identified patterns relative to the anchor with
// the per-pattern split of §IV-C: n_k = f_k * quota / (f1+f2+f3). lead
// skips that many pattern steps before collecting: the skipped lines
// will be consumed by demand traffic while the prefetch fills are still
// in flight, so spending buffer depth on them is wasted (they are served
// from DRAM at normal latency either way).
func (t *Table) Candidates(bank, quota, lead int) []int64 {
	e := &t.entries[bank]
	sum := e.FreqSum()
	if !e.Valid || sum == 0 || quota <= 0 {
		return nil
	}
	if lead < 0 {
		lead = 0
	}
	n1 := int(int64(e.F1) * int64(quota) / sum)
	n2 := int(int64(e.F2) * int64(quota) / sum)
	n3 := quota - n1 - n2
	if e.F3 == 0 {
		// Give pattern 3's rounding slack to the strongest pattern.
		if e.F1 >= e.F2 {
			n1 += n3
		} else {
			n2 += n3
		}
		n3 = 0
	}

	// When the one-delta pattern dominates, predictions anchor at the
	// last on-pattern address: after a stray access, LastAddr points
	// somewhere unrelated but the stream resumes from the anchor. For
	// tuple-dominated entries the anchor phase is not tracked, so the
	// plain LastAddr applies. The lead offset advances the base along
	// the dominant pattern.
	base := e.LastAddr
	if e.Delta1 != 0 && e.F1 >= e.F2 && e.F1 >= e.F3 {
		base = e.Anchor
		if lead > 0 {
			base += e.Delta1 * int64(lead)
		}
	}

	seen := make(map[int64]bool, quota)
	out := make([]int64, 0, quota)
	add := func(line int64) {
		if line != e.LastAddr && line != base && !seen[line] {
			seen[line] = true
			out = append(out, line)
		}
	}

	if e.F1 > 0 && e.Delta1 != 0 {
		line := base
		for k := 0; k < n1; k++ {
			line += e.Delta1
			add(line)
		}
	}
	if e.F2 > 0 && (e.Delta2[0] != 0 || e.Delta2[1] != 0) {
		line := base
		for k := 0; k < n2; k++ {
			line += e.Delta2[k%2]
			add(line)
		}
	}
	if e.F3 > 0 && (e.Delta3[0] != 0 || e.Delta3[1] != 0 || e.Delta3[2] != 0) {
		line := base
		for k := 0; k < n3; k++ {
			line += e.Delta3[k%3]
			add(line)
		}
	}
	// For uniform strides the three patterns predict the same lines and
	// dedup under-fills the quota; extend the dominant pattern so the
	// bank still contributes its full share B_i.
	if len(out) < quota {
		line := base
		switch {
		case e.F1 >= e.F2 && e.F1 >= e.F3 && e.Delta1 != 0:
			for k := 0; len(out) < quota && k < 4*quota; k++ {
				line += e.Delta1
				add(line)
			}
		case e.F2 >= e.F3 && (e.Delta2[0] != 0 || e.Delta2[1] != 0):
			for k := 0; len(out) < quota && k < 4*quota; k++ {
				line += e.Delta2[k%2]
				add(line)
			}
		case e.Delta3[0] != 0 || e.Delta3[1] != 0 || e.Delta3[2] != 0:
			for k := 0; len(out) < quota && k < 4*quota; k++ {
				line += e.Delta3[k%3]
				add(line)
			}
		}
	}
	return out
}

// CandidateLocs converts Candidates output for every bank into full DRAM
// locations in the given rank, honouring the per-bank quotas and the
// per-bank lead offset.
func (t *Table) CandidateLocs(g addr.Geometry, channel, rank, capacity, lead int) []addr.Loc {
	quotas := t.Quotas(capacity)
	var locs []addr.Loc
	for b := range t.entries {
		for _, line := range t.Candidates(b, quotas[b], lead) {
			locs = append(locs, addr.LocFromBankLine(g, channel, rank, b, line))
		}
	}
	return locs
}
