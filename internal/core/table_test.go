package core

import (
	"testing"
	"testing/quick"

	"ropsim/internal/addr"
)

func TestTableSingleDelta(t *testing.T) {
	tb := NewTable(8)
	line := int64(100)
	for i := 0; i < 10; i++ {
		tb.Observe(3, line)
		line += 2
	}
	e := tb.Entry(3)
	if e.Delta1 != 2 {
		t.Errorf("Delta1 = %d, want 2", e.Delta1)
	}
	// 10 observations: first sets LastAddr, second sets Delta1 (f1=0),
	// remaining 8 repeat it.
	if e.F1 != 8 {
		t.Errorf("F1 = %d, want 8", e.F1)
	}
	if e.LastAddr != line-2 {
		t.Errorf("LastAddr = %d, want %d", e.LastAddr, line-2)
	}
}

func TestStrictTableDeltaChangeResets(t *testing.T) {
	// Paper §IV-C verbatim: any off-pattern delta replaces the pattern.
	tb := NewStrictTable(8)
	tb.Observe(0, 0)
	tb.Observe(0, 2)
	tb.Observe(0, 4) // f1=1 for delta 2
	tb.Observe(0, 9) // delta 5: reset
	e := tb.Entry(0)
	if e.Delta1 != 5 || e.F1 != 0 {
		t.Errorf("Delta1=%d F1=%d, want 5, 0", e.Delta1, e.F1)
	}
}

func TestTolerantTableSurvivesOutlier(t *testing.T) {
	// Noise-tolerant policy: one stray delta neither replaces the
	// pattern nor moves the anchor.
	tb := NewTable(8)
	line := int64(0)
	for i := 0; i < 10; i++ {
		tb.Observe(0, line)
		line += 2
	}
	anchor := tb.Entry(0).Anchor
	tb.Observe(0, 999) // outlier
	e := tb.Entry(0)
	if e.Delta1 != 2 {
		t.Errorf("outlier replaced Delta1: %d", e.Delta1)
	}
	if e.Anchor != anchor {
		t.Errorf("outlier moved anchor: %d -> %d", anchor, e.Anchor)
	}
	// The stream resumes: predictions continue from the anchor.
	cands := tb.Candidates(0, 4, 0)
	if len(cands) == 0 || cands[0] != anchor+2 {
		t.Errorf("candidates after outlier = %v, want to start at %d", cands, anchor+2)
	}
}

func TestTolerantTableReplacesPersistentChange(t *testing.T) {
	tb := NewTable(8)
	line := int64(0)
	for i := 0; i < 10; i++ {
		tb.Observe(0, line)
		line += 2
	}
	// A persistent switch to stride 7 must eventually win.
	for i := 0; i < 10; i++ {
		tb.Observe(0, line)
		line += 7
	}
	if got := tb.Entry(0).Delta1; got != 7 {
		t.Errorf("Delta1 = %d after persistent change, want 7", got)
	}
}

func TestTableTwoDeltaTumbling(t *testing.T) {
	tb := NewTable(8)
	line := int64(0)
	deltas := []int64{1, 3}
	// 1+2k observations produce k complete two-delta tuples.
	tb.Observe(0, line)
	for i := 0; i < 12; i++ {
		line += deltas[i%2]
		tb.Observe(0, line)
	}
	e := tb.Entry(0)
	if e.Delta2 != [2]int64{1, 3} {
		t.Errorf("Delta2 = %v, want [1 3]", e.Delta2)
	}
	// 6 tuples: first sets the pattern (f2=0), 5 repeats.
	if e.F2 != 5 {
		t.Errorf("F2 = %d, want 5", e.F2)
	}
}

func TestTableThreeDeltaTumbling(t *testing.T) {
	tb := NewTable(8)
	line := int64(0)
	deltas := []int64{2, 2, 5}
	tb.Observe(0, line)
	for i := 0; i < 18; i++ {
		line += deltas[i%3]
		tb.Observe(0, line)
	}
	e := tb.Entry(0)
	if e.Delta3 != [3]int64{2, 2, 5} {
		t.Errorf("Delta3 = %v, want [2 2 5]", e.Delta3)
	}
	if e.F3 != 5 { // 6 triples, first sets
		t.Errorf("F3 = %d, want 5", e.F3)
	}
}

func TestTableZeroDeltaIgnored(t *testing.T) {
	tb := NewTable(8)
	tb.Observe(0, 7)
	tb.Observe(0, 7)
	tb.Observe(0, 8)
	tb.Observe(0, 9)
	e := tb.Entry(0)
	if e.Delta1 != 1 || e.F1 != 1 {
		t.Errorf("duplicate access poisoned pattern: Delta1=%d F1=%d", e.Delta1, e.F1)
	}
}

func TestTableDecay(t *testing.T) {
	tb := NewTable(8)
	line := int64(0)
	for i := 0; i < 11; i++ {
		tb.Observe(0, line)
		line++
	}
	f := tb.Entry(0).F1
	tb.Decay()
	if tb.Entry(0).F1 != f/2 {
		t.Errorf("F1 after decay = %d, want %d", tb.Entry(0).F1, f/2)
	}
}

func TestTableReset(t *testing.T) {
	tb := NewTable(4)
	tb.Observe(1, 5)
	tb.Observe(1, 6)
	tb.Reset()
	if tb.Entry(1).Valid || tb.Entry(1).F1 != 0 {
		t.Error("Reset left state behind")
	}
}

func TestQuotasProportionalAndBounded(t *testing.T) {
	tb := NewTable(4)
	// Bank 0: 9 repeats of delta 1. Bank 1: 3 repeats. Banks 2,3: none.
	line := int64(0)
	for i := 0; i < 11; i++ {
		tb.Observe(0, line)
		line++
	}
	line = 0
	for i := 0; i < 5; i++ {
		tb.Observe(1, line)
		line++
	}
	quotas := tb.Quotas(64)
	total := 0
	for _, q := range quotas {
		total += q
	}
	if total > 64 {
		t.Errorf("quotas sum to %d > capacity", total)
	}
	if quotas[0] <= quotas[1] {
		t.Errorf("bank 0 quota %d not greater than bank 1 quota %d", quotas[0], quotas[1])
	}
	if quotas[2] != 0 || quotas[3] != 0 {
		t.Errorf("idle banks got quota: %v", quotas)
	}
}

func TestQuotasZeroWhenNoPatterns(t *testing.T) {
	tb := NewTable(8)
	for _, q := range tb.Quotas(64) {
		if q != 0 {
			t.Fatalf("empty table produced quotas")
		}
	}
}

func TestQuotasSumNeverExceedsCapacity(t *testing.T) {
	// Property: for arbitrary frequency patterns, sum(quotas) <= C.
	f := func(freqs [6]uint8, c uint8) bool {
		tb := NewTable(6)
		for b, n := range freqs {
			line := int64(0)
			for i := 0; i < int(n%40)+2; i++ {
				tb.Observe(b, line)
				line++
			}
		}
		capacity := int(c%128) + 1
		total := 0
		for _, q := range tb.Quotas(capacity) {
			total += q
		}
		return total <= capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCandidatesFollowDelta(t *testing.T) {
	tb := NewTable(8)
	line := int64(50)
	for i := 0; i < 12; i++ {
		tb.Observe(2, line)
		line += 4
	}
	last := line - 4
	cands := tb.Candidates(2, 8, 0)
	if len(cands) != 8 {
		t.Fatalf("got %d candidates, want 8", len(cands))
	}
	for i, c := range cands {
		want := last + int64(i+1)*4
		if c != want {
			t.Errorf("candidate %d = %d, want %d", i, c, want)
		}
	}
}

func TestCandidatesMixedPatterns(t *testing.T) {
	tb := NewTable(8)
	// Alternating +1/+3 builds both a two-delta pattern and (weak)
	// one-delta patterns.
	line := int64(0)
	deltas := []int64{1, 3}
	tb.Observe(0, line)
	for i := 0; i < 40; i++ {
		line += deltas[i%2]
		tb.Observe(0, line)
	}
	cands := tb.Candidates(0, 10, 0)
	if len(cands) == 0 {
		t.Fatal("no candidates for two-delta pattern")
	}
	// All candidates must lie ahead of LastAddr.
	last := tb.Entry(0).LastAddr
	for _, c := range cands {
		if c <= last {
			t.Errorf("candidate %d not ahead of LastAddr %d", c, last)
		}
	}
}

func TestCandidatesEmptyWithoutPatterns(t *testing.T) {
	tb := NewTable(8)
	if got := tb.Candidates(0, 16, 0); got != nil {
		t.Errorf("candidates from empty entry: %v", got)
	}
	tb.Observe(0, 5)
	if got := tb.Candidates(0, 16, 0); got != nil {
		t.Errorf("candidates after one access: %v", got)
	}
}

func TestCandidatesDeduped(t *testing.T) {
	// Property: candidates are unique and never equal LastAddr.
	f := func(seed uint8) bool {
		tb := NewTable(2)
		line := int64(0)
		step := int64(seed%5) + 1
		for i := 0; i < 30; i++ {
			tb.Observe(0, line)
			line += step
		}
		cands := tb.Candidates(0, 20, 0)
		seen := map[int64]bool{}
		for _, c := range cands {
			if seen[c] || c == tb.Entry(0).LastAddr {
				return false
			}
			seen[c] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCandidateLocsRespectGeometry(t *testing.T) {
	g := addr.Geometry{Channels: 1, Ranks: 2, Banks: 4, Rows: 32, ColumnLines: 16}
	tb := NewTable(4)
	line := int64(30 * 16) // near the end of the bank: forces wrapping
	for i := 0; i < 20; i++ {
		tb.Observe(1, line)
		line += 3
	}
	locs := tb.CandidateLocs(g, 0, 1, 16, 0)
	if len(locs) == 0 {
		t.Fatal("no candidate locs")
	}
	for _, l := range locs {
		if l.Rank != 1 || l.Bank != 1 {
			t.Errorf("loc in wrong rank/bank: %+v", l)
		}
		if l.Row < 0 || l.Row >= g.Rows || l.Col < 0 || l.Col >= g.ColumnLines {
			t.Errorf("loc out of range: %+v", l)
		}
	}
}

func TestFreqHalving(t *testing.T) {
	tb := NewTable(1)
	line := int64(0)
	// Drive F1 to the halving threshold.
	tb.Observe(0, line)
	for i := uint32(0); i < freqHalveAt+2; i++ {
		line++
		tb.Observe(0, line)
	}
	if f := tb.Entry(0).F1; f >= freqHalveAt {
		t.Errorf("F1 = %d, halving never applied", f)
	}
}
