package core

// Profiler is the Pattern Profiler of paper §IV-B. During a training
// period it classifies each refresh of a rank into the four (B, A)
// categories — B is the number of requests in the observational window
// before the refresh, A the number of read requests in the window after
// it — and at the end of training emits the two conditional
// probabilities λ = P{A>0 | B>0} and β = P{A=0 | B=0} (Eqs. 1-2) that
// gate prefetching.
type Profiler struct {
	// counts[b][a] counts refreshes with (B>0)==b, (A>0)==a.
	counts [2][2]int64
	target int
	seen   int
}

// NewProfiler builds a profiler whose training period spans the given
// number of refresh operations (the paper uses 50).
func NewProfiler(targetRefreshes int) *Profiler {
	if targetRefreshes <= 0 {
		panic("core: training period must cover at least one refresh")
	}
	return &Profiler{target: targetRefreshes}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Record classifies one refresh.
func (p *Profiler) Record(bPositive, aPositive bool) {
	p.counts[b2i(bPositive)][b2i(aPositive)]++
	p.seen++
}

// Done reports whether the training period has covered enough refreshes.
func (p *Profiler) Done() bool { return p.seen >= p.target }

// Seen reports the number of refreshes classified so far.
func (p *Profiler) Seen() int { return p.seen }

// Counts returns the category occurrence counts indexed [B>0][A>0].
func (p *Profiler) Counts() [2][2]int64 { return p.counts }

// LambdaBeta computes the two conditional probabilities. When a
// condition never occurred, the corresponding probability defaults to 1:
// an unobserved B>0 case means "trust observed requests" (prefetch) and
// an unobserved B=0 case means "trust silence" (do not prefetch) — the
// conservative choices for each gate.
func (p *Profiler) LambdaBeta() (lambda, beta float64) {
	bPos := p.counts[1][0] + p.counts[1][1]
	if bPos == 0 {
		lambda = 1
	} else {
		lambda = float64(p.counts[1][1]) / float64(bPos)
	}
	bZero := p.counts[0][0] + p.counts[0][1]
	if bZero == 0 {
		beta = 1
	} else {
		beta = float64(p.counts[0][0]) / float64(bZero)
	}
	return lambda, beta
}

// Reset starts a new training period.
func (p *Profiler) Reset() {
	p.counts = [2][2]int64{}
	p.seen = 0
}
