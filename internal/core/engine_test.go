package core

import (
	"testing"

	"ropsim/internal/addr"
	"ropsim/internal/event"
)

func engGeo() addr.Geometry {
	return addr.Geometry{Channels: 1, Ranks: 2, Banks: 8, Rows: 256, ColumnLines: 32}
}

func newTestEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TrainRefreshes = 4
	cfg.EvalRefreshes = 8
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewEngine(cfg, engGeo(), 6240, 280)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

// driveTraining pushes an engine's rank 0 through its training period
// with a steady sequential stream so that λ=1 afterwards.
func driveTraining(e *Engine, refi event.Cycle) event.Cycle {
	now := event.Cycle(0)
	line := int64(0)
	for r := 0; r < e.Config().TrainRefreshes+1; r++ {
		for i := 0; i < 20; i++ {
			loc := addr.LocFromBankLine(engGeo(), 0, 0, 0, line)
			e.OnRequest(loc, true, now)
			line++
			now += 10
		}
		now = event.Cycle(r+1) * refi
		e.OnRefreshStart(0, now)
		e.OnRefreshEnd(0, now+280)
	}
	return now
}

func TestEngineStartsInTraining(t *testing.T) {
	e := newTestEngine(t, nil)
	if e.RankState(0) != Training || e.RankState(1) != Training {
		t.Error("engine not in Training initially")
	}
	if _, _, ok := e.LambdaBeta(0); ok {
		t.Error("probabilities available before training")
	}
	// No prefetching during training.
	dec := e.OnRefreshStart(0, 100)
	if dec.Prefetch {
		t.Error("prefetch launched during training")
	}
}

func TestEngineTrainsThenObserves(t *testing.T) {
	e := newTestEngine(t, nil)
	driveTraining(e, 6240)
	if e.RankState(0) != Observing {
		t.Fatalf("state = %v, want Observing", e.RankState(0))
	}
	lambda, beta, ok := e.LambdaBeta(0)
	if !ok {
		t.Fatal("no probabilities after training")
	}
	// Steady traffic: every refresh saw B>0 and A>0, so λ=1 and β
	// defaults to 1 (B=0 never seen).
	if lambda != 1 || beta != 1 {
		t.Errorf("lambda=%g beta=%g, want 1,1", lambda, beta)
	}
}

func TestEnginePrefetchesAfterTraining(t *testing.T) {
	e := newTestEngine(t, nil)
	refi := event.Cycle(6240)
	now := driveTraining(e, refi)

	// One more window of sequential accesses, then a refresh: the gate
	// (λ=1) must fire and candidates must follow the stream.
	line := int64(1000)
	for i := 0; i < 20; i++ {
		loc := addr.LocFromBankLine(engGeo(), 0, 0, 0, line)
		e.OnRequest(loc, true, now)
		line++
		now += 10
	}
	dec := e.OnRefreshStart(0, now+100)
	if !dec.Prefetch {
		t.Fatal("no prefetch decision with λ=1 and B>0")
	}
	lines := e.GenerateCandidates(0)
	if len(lines) == 0 {
		t.Fatal("prefetch without candidate lines")
	}
	if e.RankState(0) != Prefetching {
		t.Errorf("state = %v, want Prefetching", e.RankState(0))
	}
	for _, l := range lines {
		if l.Rank != 0 {
			t.Errorf("candidate in wrong rank: %+v", l)
		}
	}
	// Candidates continue the +1 stream.
	first := lines[0]
	if first.BankLine(engGeo()) != line-1+1 {
		t.Errorf("first candidate bank line = %d, want %d", first.BankLine(engGeo()), line)
	}
}

func TestEngineBufferServesReadsDuringRefresh(t *testing.T) {
	e := newTestEngine(t, nil)
	refi := event.Cycle(6240)
	now := driveTraining(e, refi)
	line := int64(5000)
	for i := 0; i < 20; i++ {
		e.OnRequest(addr.LocFromBankLine(engGeo(), 0, 0, 0, line), true, now)
		line++
		now += 10
	}
	dec := e.OnRefreshStart(0, now)
	if !dec.Prefetch {
		t.Fatal("no prefetch")
	}
	lines := e.GenerateCandidates(0)
	if len(lines) == 0 {
		t.Fatal("no candidates")
	}
	if !e.Buffer().Acquire(0) {
		t.Fatal("buffer busy")
	}
	for _, l := range lines {
		e.Buffer().Insert(e.LineKey(l))
	}
	// A read to the first predicted line during the refresh hits.
	if !e.ProbeRead(lines[0], now+50, true) {
		t.Error("probe missed a prefetched line")
	}
	// A read far away misses.
	far := addr.LocFromBankLine(engGeo(), 0, 0, 3, 999)
	if e.ProbeRead(far, now+60, true) {
		t.Error("probe hit an absent line")
	}
	// Writes invalidate.
	e.OnWrite(lines[0])
	if e.ProbeRead(lines[0], now+70, true) {
		t.Error("probe hit an invalidated line")
	}
	e.OnRefreshEnd(0, now+280)
	// The buffer keeps serving its rank after the refresh (ranks take
	// turns, paper §IV-A); the next Acquire claims and clears it.
	if e.Buffer().Owner() != 0 {
		t.Error("buffer dropped its rank at refresh end")
	}
	if !e.Buffer().Acquire(1) {
		t.Error("next rank could not claim the buffer")
	}
	if e.Buffer().Len() != 0 {
		t.Error("claim did not clear previous contents")
	}
}

func TestEngineGateSuppressesQuietWindows(t *testing.T) {
	// With β=1 learned from quiet training (no requests at all), B=0
	// windows must never prefetch.
	e := newTestEngine(t, nil)
	now := event.Cycle(0)
	for r := 0; r < e.Config().TrainRefreshes+1; r++ {
		now += 6240
		e.OnRefreshStart(0, now)
		e.OnRefreshEnd(0, now+280)
	}
	if e.RankState(0) != Observing {
		t.Fatalf("state = %v, want Observing", e.RankState(0))
	}
	_, beta, _ := e.LambdaBeta(0)
	if beta != 1 {
		t.Fatalf("beta = %g, want 1", beta)
	}
	suppressedBefore := e.GateSuppressed.Value()
	for r := 0; r < 10; r++ {
		now += 6240
		dec := e.OnRefreshStart(0, now)
		if dec.Prefetch {
			t.Fatal("prefetch fired for B=0 with β=1")
		}
		e.OnRefreshEnd(0, now+280)
	}
	if e.GateSuppressed.Value() <= suppressedBefore {
		t.Error("gate suppression not counted")
	}
}

func TestEngineHitRateFallback(t *testing.T) {
	// Force Observing, then deliver misses during refreshes: the rank
	// must fall back to Training once the evaluation period elapses.
	e := newTestEngine(t, func(c *Config) {
		c.EvalRefreshes = 4
		c.MinEvalLookups = 4
	})
	refi := event.Cycle(6240)
	now := driveTraining(e, refi)

	for r := 0; r < 6; r++ {
		// Traffic so the gate keeps prefetching, but probe lines far
		// from the prediction so every lookup misses.
		line := int64(100000 + r*1000)
		for i := 0; i < 10; i++ {
			e.OnRequest(addr.LocFromBankLine(engGeo(), 0, 0, 1, line), true, now)
			line += 97
			now += 10
		}
		dec := e.OnRefreshStart(0, now)
		if dec.Prefetch {
			e.Buffer().Acquire(0)
			for _, l := range e.GenerateCandidates(0) {
				e.Buffer().Insert(e.LineKey(l))
			}
		}
		for i := 0; i < 3; i++ {
			e.ProbeRead(addr.LocFromBankLine(engGeo(), 0, 0, 5, int64(r*31+i)), now+10, true)
		}
		now += 280
		e.OnRefreshEnd(0, now)
		if e.RankState(0) == Training {
			return // fallback happened
		}
		now += refi
	}
	t.Error("rank never fell back to Training despite low hit rate")
}

func TestEngineRanksIndependent(t *testing.T) {
	e := newTestEngine(t, nil)
	driveTraining(e, 6240)
	if e.RankState(0) != Observing {
		t.Fatal("rank 0 not trained")
	}
	if e.RankState(1) != Training {
		t.Error("rank 1 trained without its own refreshes")
	}
}

func TestEngineLineKeyUnique(t *testing.T) {
	e := newTestEngine(t, nil)
	g := engGeo()
	seen := make(map[uint64]addr.Loc)
	for rank := 0; rank < g.Ranks; rank++ {
		for bank := 0; bank < g.Banks; bank++ {
			for row := 0; row < 4; row++ {
				for col := 0; col < g.ColumnLines; col++ {
					l := addr.Loc{Rank: rank, Bank: bank, Row: row, Col: col}
					k := e.LineKey(l)
					if prev, dup := seen[k]; dup {
						t.Fatalf("key collision: %+v and %+v", prev, l)
					}
					seen[k] = l
				}
			}
		}
	}
}

func TestEngineDeterministicDecisions(t *testing.T) {
	run := func() []bool {
		e := newTestEngine(t, func(c *Config) { c.Seed = 42 })
		refi := event.Cycle(6240)
		now := driveTraining(e, refi)
		var decs []bool
		line := int64(0)
		for r := 0; r < 20; r++ {
			if r%2 == 0 {
				for i := 0; i < 5; i++ {
					e.OnRequest(addr.LocFromBankLine(engGeo(), 0, 0, 0, line), true, now)
					line++
					now += 7
				}
			}
			now += refi
			decs = append(decs, e.OnRefreshStart(0, now).Prefetch)
			e.OnRefreshEnd(0, now+280)
		}
		return decs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical runs", i)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.SRAMLines = 0 },
		func(c *Config) { c.TrainRefreshes = 0 },
		func(c *Config) { c.HitThreshold = 1.5 },
		func(c *Config) { c.WindowTREFI = 0 },
		func(c *Config) { c.EvalRefreshes = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: Validate accepted bad config", i)
		}
	}
}

func TestStateString(t *testing.T) {
	if Training.String() != "Training" || Observing.String() != "Observing" ||
		Prefetching.String() != "Prefetching" {
		t.Error("State.String wrong")
	}
	if State(99).String() == "" {
		t.Error("unknown state has empty string")
	}
}
