package core

import (
	"testing"
	"testing/quick"
)

func TestSRAMBasic(t *testing.T) {
	s := NewSRAM(4)
	if s.Owner() != -1 {
		t.Fatal("fresh buffer has an owner")
	}
	if !s.Acquire(2) {
		t.Fatal("Acquire failed on free buffer")
	}
	s.Insert(10)
	s.Insert(11)
	if !s.Lookup(2, 10) {
		t.Error("miss on inserted line")
	}
	if s.Lookup(2, 99) {
		t.Error("hit on absent line")
	}
	if s.Hits.Value() != 1 || s.Lookups.Value() != 2 {
		t.Errorf("hits=%d lookups=%d", s.Hits.Value(), s.Lookups.Value())
	}
}

func TestSRAMCapacityEnforced(t *testing.T) {
	s := NewSRAM(3)
	s.Acquire(0)
	for k := uint64(0); k < 10; k++ {
		s.Insert(k)
	}
	if s.Len() != 3 {
		t.Errorf("len = %d, want 3", s.Len())
	}
	if s.Dropped.Value() != 7 {
		t.Errorf("dropped = %d, want 7", s.Dropped.Value())
	}
}

func TestSRAMOwnership(t *testing.T) {
	s := NewSRAM(4)
	s.Acquire(1)
	s.Insert(5)
	// Lookup by the wrong rank misses but still counts.
	if s.Lookup(2, 5) {
		t.Error("foreign rank hit the buffer")
	}
	if s.Lookups.Value() != 1 {
		t.Error("foreign lookup not counted")
	}
	// Ranks take turns: the next claim steals and clears the buffer.
	if !s.Acquire(2) {
		t.Error("take-turns Acquire failed")
	}
	if s.Owner() != 2 {
		t.Errorf("owner = %d, want 2", s.Owner())
	}
	if s.Contains(5) {
		t.Error("claim kept the previous owner's lines")
	}
	// Re-acquire by the same rank also starts a fresh session.
	s.Insert(7)
	s.Acquire(2)
	if s.Contains(7) {
		t.Error("re-acquire kept stale lines")
	}
	s.Release()
	if s.Owner() != -1 {
		t.Error("Release did not free the buffer")
	}
}

func TestSRAMInvalidate(t *testing.T) {
	s := NewSRAM(4)
	s.Acquire(0)
	s.Insert(7)
	s.Invalidate(7)
	if s.Lookup(0, 7) {
		t.Error("hit on invalidated line")
	}
}

func TestSRAMInsertWithoutOwnerPanics(t *testing.T) {
	s := NewSRAM(4)
	defer func() {
		if recover() == nil {
			t.Error("Insert without owner did not panic")
		}
	}()
	s.Insert(1)
}

func TestSRAMHitRate(t *testing.T) {
	s := NewSRAM(4)
	if got := s.HitRate(0.5); got != 0.5 {
		t.Errorf("fallback hit rate = %g", got)
	}
	s.Acquire(0)
	s.Insert(1)
	s.Lookup(0, 1)
	s.Lookup(0, 2)
	if got := s.HitRate(0); got != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", got)
	}
}

func TestSRAMNeverExceedsCapacity(t *testing.T) {
	// Property: under arbitrary insert/invalidate sequences, occupancy
	// stays within capacity and duplicate inserts are idempotent.
	f := func(keys []uint16) bool {
		s := NewSRAM(8)
		s.Acquire(0)
		for i, k := range keys {
			if i%5 == 4 {
				s.Invalidate(uint64(k))
			} else {
				s.Insert(uint64(k))
			}
			if s.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
