package core

import (
	"fmt"
	"math/rand"

	"ropsim/internal/addr"
	"ropsim/internal/event"
	"ropsim/internal/stats"
	"ropsim/internal/vldp"
)

// State is the per-rank mode of the ROP state machine (paper §IV-C end):
// Training (profiler collecting, SRAM off), Observing (λ/β known,
// watching the window before each refresh), and Prefetching (a prefetch
// was launched for the imminent refresh).
type State int

// ROP states.
const (
	Training State = iota
	Observing
	Prefetching
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Training:
		return "Training"
	case Observing:
		return "Observing"
	case Prefetching:
		return "Prefetching"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// GatePolicy selects how the prefetch launch decision is made.
type GatePolicy int

// Gate policies. The paper's design is the probabilistic λ/β gate; the
// other two exist for the ablation study.
const (
	// GateProbabilistic prefetches with probability λ when B>0 and 1-β
	// when B=0 (paper §IV-B).
	GateProbabilistic GatePolicy = iota
	// GateAlways prefetches for every refresh once training completes.
	GateAlways
	// GateNever never prefetches (drain-only ROP).
	GateNever
)

// String implements fmt.Stringer.
func (g GatePolicy) String() string {
	switch g {
	case GateProbabilistic:
		return "probabilistic"
	case GateAlways:
		return "always"
	case GateNever:
		return "never"
	}
	return fmt.Sprintf("GatePolicy(%d)", int(g))
}

// Predictor selects the candidate-generation algorithm.
type Predictor int

// Predictor kinds.
const (
	// PredictorTable is the paper's rank-scoped per-bank delta table.
	PredictorTable Predictor = iota
	// PredictorVLDP uses the original VLDP (DHB + cascaded DPTs) at
	// rank scope, for the ablation against the paper's adaptation.
	PredictorVLDP
)

// String implements fmt.Stringer.
func (p Predictor) String() string {
	switch p {
	case PredictorTable:
		return "table"
	case PredictorVLDP:
		return "vldp"
	}
	return fmt.Sprintf("Predictor(%d)", int(p))
}

// Config parameterizes the ROP engine. The zero value is invalid; use
// DefaultConfig.
type Config struct {
	// SRAMLines is the prefetch buffer capacity in cache lines (the
	// paper evaluates 16/32/64/128 and defaults to 64).
	SRAMLines int
	// TrainRefreshes is the training period length in refresh
	// operations (paper: 50).
	TrainRefreshes int
	// HitThreshold sends a rank back to Training when the SRAM hit rate
	// over an evaluation period falls below it (paper: 0.6).
	HitThreshold float64
	// WindowTREFI is the observational window length as a multiple of
	// tREFI (paper: 1).
	WindowTREFI float64
	// EvalRefreshes is how many refreshes pass between hit-rate
	// evaluations.
	EvalRefreshes int
	// MinEvalLookups is the minimum number of during-refresh reads in an
	// evaluation period before the threshold applies; with fewer
	// samples the hit rate is noise.
	MinEvalLookups int64
	// Seed feeds the probabilistic prefetch gate.
	Seed int64

	// Gate selects the launch policy (default: the paper's λ/β gate).
	Gate GatePolicy
	// StrictTable uses the paper's verbatim delta-replacement rule
	// instead of the default noise-tolerant variant (see core.Table).
	StrictTable bool
	// Predictor selects the candidate generator (default: the paper's
	// prediction table).
	Predictor Predictor
}

// DefaultConfig returns the paper's configuration (§V-A).
func DefaultConfig() Config {
	return Config{
		SRAMLines:      64,
		TrainRefreshes: 50,
		HitThreshold:   0.6,
		WindowTREFI:    1,
		EvalRefreshes:  32,
		MinEvalLookups: 16,
		Seed:           1,
	}
}

// Validate reports an error for out-of-range parameters.
func (c Config) Validate() error {
	if c.SRAMLines <= 0 {
		return fmt.Errorf("core: SRAMLines must be positive, got %d", c.SRAMLines)
	}
	if c.TrainRefreshes <= 0 {
		return fmt.Errorf("core: TrainRefreshes must be positive, got %d", c.TrainRefreshes)
	}
	if c.HitThreshold < 0 || c.HitThreshold > 1 {
		return fmt.Errorf("core: HitThreshold %g outside [0,1]", c.HitThreshold)
	}
	if c.WindowTREFI <= 0 {
		return fmt.Errorf("core: WindowTREFI must be positive, got %g", c.WindowTREFI)
	}
	if c.EvalRefreshes <= 0 {
		return fmt.Errorf("core: EvalRefreshes must be positive, got %d", c.EvalRefreshes)
	}
	return nil
}

// rankState is the per-rank half of the engine.
type rankState struct {
	state State
	table *Table
	vldp  *vldp.VLDP // only with PredictorVLDP
	prof  *Profiler

	lambda, beta float64
	haveProbs    bool

	// Observational-window bookkeeping: observedB counts requests since
	// the last refresh start; after a refresh starts, reads count toward
	// afterCount until afterDeadline, then the (B, A) pair is classified.
	observedB       int
	pendingClassify bool
	pendingB        int
	afterCount      int
	afterDeadline   event.Cycle

	// Hit-rate evaluation window.
	lookupsAtEvalStart int64
	hitsAtEvalStart    int64
	refreshesSinceEval int

	// Fill-session consumption feedback: how many of the lines loaded
	// in this rank's previous session were actually served before the
	// buffer moved on. -1 until the first session completes.
	consumedEWMA float64
}

// Decision is the engine's verdict for one refresh. When Prefetch is
// true the controller drains the rank, then asks GenerateCandidates for
// the lines to fetch — deferring address generation to the last moment
// keeps the predictions aligned with the stream position at freeze time.
type Decision struct {
	// Prefetch reports whether the engine wants a prefetch session
	// around this refresh (rank in the Prefetching state and not
	// suppressed by the consumption gate).
	Prefetch bool
}

// Engine is the ROP controller-side model: one prediction table and
// profiler per rank sharing one SRAM buffer.
type Engine struct {
	cfg    Config
	geo    addr.Geometry
	window event.Cycle
	rfc    event.Cycle
	rng    *rand.Rand
	sram   *SRAM
	ranks  []rankState

	// RefreshesSeen counts OnRefreshStart calls; PrefetchLaunches counts
	// positive decisions; GateSuppressed counts refreshes where the λ/β
	// gate vetoed prefetching.
	RefreshesSeen, PrefetchLaunches, GateSuppressed stats.Counter

	// DebugMiss, when set, observes every frozen-probe miss (diagnostics).
	DebugMiss func(l addr.Loc)
	// DebugCandidates, when set, observes every candidate generation.
	DebugCandidates func(rank int, locs []addr.Loc)
}

// NoteSessionEnd reports that a rank's fill session ended with the
// given number of inserted lines still unconsumed (the controller calls
// it just before the buffer is claimed for the next session). The
// consumption estimate drives the next session's fill count.
func (e *Engine) NoteSessionEnd(rank, inserted, leftover int) {
	if rank < 0 || rank >= len(e.ranks) || inserted <= 0 {
		return
	}
	consumed := float64(inserted - leftover)
	if consumed < 0 {
		consumed = 0
	}
	rs := &e.ranks[rank]
	if rs.consumedEWMA < 0 {
		rs.consumedEWMA = consumed
	} else {
		rs.consumedEWMA = 0.75*rs.consumedEWMA + 0.25*consumed
	}
}

// NewEngine builds an engine for the given geometry, refresh interval
// (tREFI, used to size the observational window) and refresh cycle time
// (tRFC, used to estimate per-freeze demand). It rejects an invalid
// configuration with the validation error.
func NewEngine(cfg Config, geo addr.Geometry, refi, rfc event.Cycle) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if refi <= 0 || rfc <= 0 {
		return nil, fmt.Errorf("core: engine requires positive refresh timings (refi=%d rfc=%d)", refi, rfc)
	}
	e := &Engine{
		cfg:    cfg,
		geo:    geo,
		window: event.FromFloat(cfg.WindowTREFI * float64(refi)),
		rfc:    rfc,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		sram:   NewSRAM(cfg.SRAMLines),
		ranks:  make([]rankState, geo.Ranks),
	}
	for r := range e.ranks {
		if cfg.StrictTable {
			e.ranks[r].table = NewStrictTable(geo.Banks)
		} else {
			e.ranks[r].table = NewTable(geo.Banks)
		}
		if cfg.Predictor == PredictorVLDP {
			v, err := vldp.New(vldp.DefaultConfig())
			if err != nil {
				return nil, err
			}
			e.ranks[r].vldp = v
		}
		e.ranks[r].prof = NewProfiler(cfg.TrainRefreshes)
		e.ranks[r].consumedEWMA = -1
	}
	return e, nil
}

// RegisterMetrics registers the engine's refresh-decision counters into
// r (typically a "rop"-scoped sub-registry), with the SRAM buffer's
// counters under an additional "sram" prefix.
func (e *Engine) RegisterMetrics(r *stats.Registry) {
	r.Register("refreshes_seen", &e.RefreshesSeen)
	r.Register("prefetch_launches", &e.PrefetchLaunches)
	r.Register("gate_suppressed", &e.GateSuppressed)
	e.sram.RegisterMetrics(r.Sub("sram"))
}

// Buffer exposes the SRAM for the controller's fill and statistics paths.
func (e *Engine) Buffer() *SRAM { return e.sram }

// Config reports the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// RankState reports the current state of a rank's state machine.
func (e *Engine) RankState(rank int) State { return e.ranks[rank].state }

// LambdaBeta reports the rank's current gate probabilities; ok is false
// while the first training period is still running.
func (e *Engine) LambdaBeta(rank int) (lambda, beta float64, ok bool) {
	rs := &e.ranks[rank]
	return rs.lambda, rs.beta, rs.haveProbs
}

// Table exposes a rank's prediction table for inspection.
func (e *Engine) Table(rank int) *Table { return e.ranks[rank].table }

// LineKey encodes a DRAM location as the global line key used by the
// SRAM buffer.
func (e *Engine) LineKey(l addr.Loc) uint64 {
	g := e.geo
	bankLine := uint64(l.BankLine(g))
	bankIdx := uint64((l.Channel*g.Ranks+l.Rank)*g.Banks + l.Bank)
	return bankIdx*uint64(g.Rows)*uint64(g.ColumnLines) + bankLine
}

// maybeClassify completes a pending (B, A) classification once the
// after-window has elapsed.
func (e *Engine) maybeClassify(rs *rankState, now event.Cycle) {
	if rs.pendingClassify && now >= rs.afterDeadline {
		e.classify(rs)
	}
}

func (e *Engine) classify(rs *rankState) {
	if rs.state == Training {
		rs.prof.Record(rs.pendingB > 0, rs.afterCount > 0)
	}
	rs.pendingClassify = false
}

// OnRequest informs the engine of a demand request arriving at the
// controller for the given location. Both reads and writes count toward
// B; only reads count toward A (paper §IV-B).
func (e *Engine) OnRequest(l addr.Loc, isRead bool, now event.Cycle) {
	rs := &e.ranks[l.Rank]
	e.maybeClassify(rs, now)
	rs.observedB++
	if rs.pendingClassify && isRead {
		rs.afterCount++
	}
	// Only reads train the predictor: the buffer exists to serve reads,
	// and writeback addresses (dirty evictions of long-cold lines) are
	// unrelated to the forward stream — feeding them in breaks every
	// other delta in write-heavy phases.
	if isRead {
		rs.table.Observe(l.Bank, l.BankLine(e.geo))
		if rs.vldp != nil {
			rs.vldp.Observe(uint64(l.Bank), l.BankLine(e.geo))
		}
	}
}

// OnRefreshStart tells the engine rank is about to refresh at cycle now
// and returns the prefetch decision. When Decision.Prefetch is true the
// controller drains the rank's pending reads, calls GenerateCandidates,
// Acquires the buffer, fetches the candidates (Insert per completed
// line), and only then issues the refresh.
func (e *Engine) OnRefreshStart(rank int, now event.Cycle) Decision {
	rs := &e.ranks[rank]
	e.RefreshesSeen.Inc()
	// A refresh arriving before the previous after-window closed (e.g.
	// postponed unevenly) classifies with what was seen so far.
	if rs.pendingClassify {
		e.classify(rs)
	}

	b := rs.observedB
	rs.observedB = 0
	rs.pendingB = b
	rs.afterCount = 0
	rs.afterDeadline = now + e.window
	rs.pendingClassify = true

	var dec Decision
	if rs.state != Training {
		switch e.cfg.Gate {
		case GateAlways:
			dec.Prefetch = true
		case GateNever:
			dec.Prefetch = false
		default:
			if b > 0 {
				dec.Prefetch = e.rng.Float64() < rs.lambda
			} else {
				dec.Prefetch = e.rng.Float64() >= rs.beta
			}
		}
		if !dec.Prefetch {
			e.GateSuppressed.Inc()
		}
	}
	if dec.Prefetch {
		rs.state = Prefetching
		e.PrefetchLaunches.Inc()
	}
	// Window boundary: halve the pattern weights so the next window
	// emphasizes fresh behaviour (the ratios candidates use survive).
	rs.table.Decay()
	return dec
}

// GenerateCandidates predicts the buffer contents for the rank's
// imminent refresh from the prediction table's current state. The
// controller calls it after draining, immediately before issuing fills,
// so that demand reads consumed during the drain are already reflected
// in LastAddr.
func (e *Engine) GenerateCandidates(rank int) []addr.Loc {
	rs := &e.ranks[rank]
	// Fetch only what the buffer's lifetime can plausibly consume. The
	// measured consumption of the rank's previous sessions feeds back,
	// so over-fetching — pure bus waste, since the buffer moves to the
	// next rank before extra lines are read — self-corrects. The
	// feedback keeps modest headroom (1.15x + 4, floor 16): when demand
	// exceeds capacity the estimate saturates at the full buffer, and
	// when the buffer's lifetime truncates consumption the fill count
	// settles just above what actually gets served.
	capacity := e.cfg.SRAMLines
	if rs.consumedEWMA >= 0 {
		want := int(rs.consumedEWMA*1.15) + 4
		if want < 16 {
			want = 16
		}
		if want < capacity {
			capacity = want
		}
	}
	// Lead offset: the fills take roughly 6 bus cycles each plus closing
	// overhead; at the arrival rate observed in the last window
	// (pendingB requests per window), that many lines per bank will be
	// consumed before the freeze and need no buffer depth.
	fillCycles := 6*int64(capacity) + 60
	if fillCycles > 500 {
		fillCycles = 500 // large buffers fill concurrently with demand
	}
	lead := int(int64(rs.pendingB) * fillCycles / int64(e.window) / int64(e.geo.Banks))
	if max := 2 * capacity / e.geo.Banks; lead > max {
		lead = max
	}
	var locs []addr.Loc
	if rs.vldp != nil {
		// Original-VLDP ablation: split the capacity evenly over banks
		// and walk each bank's DPT predictions past the lead offset.
		depth := capacity / e.geo.Banks
		if depth < 1 {
			depth = 1
		}
		for b := 0; b < e.geo.Banks; b++ {
			preds := rs.vldp.Predict(uint64(b), depth+lead)
			if len(preds) > lead {
				preds = preds[lead:]
			} else {
				preds = nil
			}
			for _, line := range preds {
				locs = append(locs, addr.LocFromBankLine(e.geo, 0, rank, b, line))
			}
		}
	} else {
		locs = rs.table.CandidateLocs(e.geo, 0, rank, capacity, lead)
	}
	if e.DebugCandidates != nil {
		e.DebugCandidates(rank, locs)
	}
	return locs
}

// ProbeRead asks whether a demand read can be served from the SRAM
// buffer. frozen marks reads arriving while the rank is locked by its
// refresh: only those probes count toward the paper's hit-rate metric
// ("requests arriving during a refresh period", §V-B3). Reads between
// fill completion and the freeze are served quietly — the buffer holds
// valid data, and serving them avoids fetching the same line from DRAM
// twice. Probes during Training always miss: the buffer is powered off
// (paper §IV-B).
func (e *Engine) ProbeRead(l addr.Loc, now event.Cycle, frozen bool) bool {
	rs := &e.ranks[l.Rank]
	e.maybeClassify(rs, now)
	if rs.state == Training {
		return false
	}
	if frozen {
		hit := e.sram.Lookup(l.Rank, e.LineKey(l))
		if e.DebugMiss != nil && !hit {
			e.DebugMiss(l)
		}
		return hit
	}
	return e.sram.Serve(l.Rank, e.LineKey(l))
}

// OnWrite invalidates a buffered line that a posted write has made
// stale (paper §IV-D). The controller calls it for every write to a
// rank that currently owns the buffer, frozen or not, since the buffer
// keeps serving until the next rank claims it.
func (e *Engine) OnWrite(l addr.Loc) {
	if e.sram.Owner() == l.Rank {
		e.sram.Invalidate(e.LineKey(l))
	}
}

// OnRefreshEnd tells the engine the rank's refresh completed. It runs
// the state transitions: training completion, hit-rate fallback, and
// Prefetching → Observing.
func (e *Engine) OnRefreshEnd(rank int, now event.Cycle) {
	rs := &e.ranks[rank]
	e.maybeClassify(rs, now)
	// The buffer is NOT released here: it keeps serving reads for this
	// rank until the next rank's refresh claims it (paper §IV-A, ranks
	// take turns), which lets the remaining prefetched lines be consumed
	// instead of being re-fetched from DRAM.

	switch rs.state {
	case Training:
		if rs.prof.Done() {
			rs.lambda, rs.beta = rs.prof.LambdaBeta()
			rs.haveProbs = true
			rs.state = Observing
			rs.refreshesSinceEval = 0
			rs.lookupsAtEvalStart = e.sram.Lookups.Value()
			rs.hitsAtEvalStart = e.sram.Hits.Value()
		}
	case Observing, Prefetching:
		rs.state = Observing
		rs.refreshesSinceEval++
		if rs.refreshesSinceEval >= e.cfg.EvalRefreshes {
			lookups := e.sram.Lookups.Value() - rs.lookupsAtEvalStart
			hits := e.sram.Hits.Value() - rs.hitsAtEvalStart
			if lookups >= e.cfg.MinEvalLookups &&
				float64(hits) < e.cfg.HitThreshold*float64(lookups) {
				rs.state = Training
				rs.prof.Reset()
			}
			rs.refreshesSinceEval = 0
			rs.lookupsAtEvalStart = e.sram.Lookups.Value()
			rs.hitsAtEvalStart = e.sram.Hits.Value()
		}
	}
}

// GenerateBankCandidates predicts the buffer contents for one bank's
// imminent per-bank refresh (the paper's §VII bank-granularity future
// work): the full session capacity goes to the single bank that is
// about to freeze.
func (e *Engine) GenerateBankCandidates(rank, bank int) []addr.Loc {
	rs := &e.ranks[rank]
	capacity := e.cfg.SRAMLines
	if rs.consumedEWMA >= 0 {
		want := int(rs.consumedEWMA*1.15) + 4
		if want < 8 {
			want = 8
		}
		if want < capacity {
			capacity = want
		}
	}
	fillCycles := 6*int64(capacity) + 60
	lead := int(int64(rs.pendingB) * fillCycles / int64(e.window) / int64(e.geo.Banks))
	if lead > capacity/2 {
		lead = capacity / 2
	}
	var locs []addr.Loc
	for _, line := range rs.table.Candidates(bank, capacity, lead) {
		locs = append(locs, addr.LocFromBankLine(e.geo, 0, rank, bank, line))
	}
	if e.DebugCandidates != nil {
		e.DebugCandidates(rank, locs)
	}
	return locs
}
