package core

import (
	"testing"

	"ropsim/internal/addr"
	"ropsim/internal/event"
)

// Tests for the ablation variants, session feedback, and the per-bank
// candidate path.

func TestGatePolicyStrings(t *testing.T) {
	if GateProbabilistic.String() != "probabilistic" ||
		GateAlways.String() != "always" || GateNever.String() != "never" {
		t.Error("GatePolicy.String wrong")
	}
	if PredictorTable.String() != "table" || PredictorVLDP.String() != "vldp" {
		t.Error("Predictor.String wrong")
	}
	if GatePolicy(99).String() == "" || Predictor(99).String() == "" {
		t.Error("unknown enum values produce empty strings")
	}
}

func TestGateAlwaysAndNever(t *testing.T) {
	for _, gate := range []GatePolicy{GateAlways, GateNever} {
		e := newTestEngine(t, func(c *Config) { c.Gate = gate })
		now := driveTraining(e, 6240)
		// Quiet window: probabilistic would usually skip; Always must
		// fire, Never must not.
		now += 6240
		dec := e.OnRefreshStart(0, now)
		switch gate {
		case GateAlways:
			if !dec.Prefetch {
				t.Error("GateAlways did not prefetch")
			}
		case GateNever:
			if dec.Prefetch {
				t.Error("GateNever prefetched")
			}
		}
		e.OnRefreshEnd(0, now+280)
	}
}

func TestVLDPPredictorGeneratesCandidates(t *testing.T) {
	e := newTestEngine(t, func(c *Config) { c.Predictor = PredictorVLDP })
	refi := event.Cycle(6240)
	now := driveTraining(e, refi)
	// Feed a clean stride so the VLDP DPTs lock in.
	line := int64(2000)
	for i := 0; i < 40; i++ {
		e.OnRequest(addr.LocFromBankLine(engGeo(), 0, 0, 0, line), true, now)
		line += 2
		now += 10
	}
	dec := e.OnRefreshStart(0, now)
	if !dec.Prefetch {
		t.Fatal("no prefetch decision")
	}
	locs := e.GenerateCandidates(0)
	if len(locs) == 0 {
		t.Fatal("VLDP predictor produced no candidates")
	}
	for _, l := range locs {
		if l.Rank != 0 {
			t.Errorf("candidate in wrong rank: %+v", l)
		}
	}
}

func TestGenerateBankCandidates(t *testing.T) {
	e := newTestEngine(t, nil)
	now := driveTraining(e, 6240)
	line := int64(3000)
	for i := 0; i < 30; i++ {
		e.OnRequest(addr.LocFromBankLine(engGeo(), 0, 0, 5, line), true, now)
		line++
		now += 10
	}
	e.OnRefreshStart(0, now)
	locs := e.GenerateBankCandidates(0, 5)
	if len(locs) == 0 {
		t.Fatal("no bank candidates")
	}
	for _, l := range locs {
		if l.Bank != 5 || l.Rank != 0 {
			t.Errorf("bank candidate escaped target bank: %+v", l)
		}
	}
	// A bank with no observed pattern yields nothing.
	if locs := e.GenerateBankCandidates(0, 7); len(locs) != 0 {
		t.Errorf("idle bank produced candidates: %v", locs)
	}
}

func TestNoteSessionEndFeedback(t *testing.T) {
	e := newTestEngine(t, nil)
	now := driveTraining(e, 6240)
	line := int64(9000)
	feed := func() {
		for i := 0; i < 30; i++ {
			e.OnRequest(addr.LocFromBankLine(engGeo(), 0, 0, 0, line), true, now)
			line++
			now += 10
		}
	}
	feed()
	e.OnRefreshStart(0, now)
	first := e.GenerateCandidates(0)
	if len(first) == 0 {
		t.Fatal("no candidates")
	}
	// Report a tiny consumption: the next session must shrink.
	e.NoteSessionEnd(0, len(first), len(first)-3)
	e.OnRefreshEnd(0, now+280)
	now += 6240
	feed()
	e.OnRefreshStart(0, now)
	second := e.GenerateCandidates(0)
	if len(second) >= len(first) {
		t.Errorf("capacity did not shrink after low consumption: %d -> %d",
			len(first), len(second))
	}
	// Out-of-range and no-insert reports are ignored.
	e.NoteSessionEnd(-1, 10, 0)
	e.NoteSessionEnd(0, 0, 0)
}

func TestSRAMServeMarksUsage(t *testing.T) {
	s := NewSRAM(4)
	s.Acquire(1)
	s.Insert(42)
	if s.UsedCount() != 0 {
		t.Fatal("fresh insert counted as used")
	}
	if !s.Serve(1, 42) {
		t.Fatal("Serve missed a present line")
	}
	if s.Serve(2, 42) {
		t.Error("Serve hit for the wrong rank")
	}
	if s.Serve(1, 99) {
		t.Error("Serve hit an absent line")
	}
	if s.UsedCount() != 1 {
		t.Errorf("UsedCount = %d, want 1", s.UsedCount())
	}
	// Frozen-path lookups also mark usage; duplicates do not
	// double-count.
	s.Lookup(1, 42)
	if s.UsedCount() != 1 {
		t.Errorf("UsedCount after duplicate = %d, want 1", s.UsedCount())
	}
	if s.Capacity() != 4 {
		t.Errorf("Capacity = %d", s.Capacity())
	}
}

func TestEngineAccessors(t *testing.T) {
	e := newTestEngine(t, nil)
	if e.Table(0) == nil || e.Table(0).Banks() != engGeo().Banks {
		t.Error("Table accessor wrong")
	}
	if e.Buffer() == nil {
		t.Error("Buffer accessor nil")
	}
}
