package vldp

import (
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{DHBEntries: 0, DPTEntries: 64, Levels: 3},
		{DHBEntries: 16, DPTEntries: 0, Levels: 3},
		{DHBEntries: 16, DPTEntries: 63, Levels: 3},
		{DHBEntries: 16, DPTEntries: 64, Levels: 0},
		{DHBEntries: 16, DPTEntries: 64, Levels: 5},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestLearnsConstantStride(t *testing.T) {
	v := MustNew(DefaultConfig())
	off := int64(0)
	for i := 0; i < 50; i++ {
		v.Observe(1, off)
		off += 3
	}
	preds := v.Predict(1, 4)
	if len(preds) != 4 {
		t.Fatalf("got %d predictions, want 4", len(preds))
	}
	want := off - 3 // last observed offset
	for i, p := range preds {
		want += 3
		if p != want {
			t.Errorf("prediction %d = %d, want %d", i, p, want)
		}
	}
}

func TestLearnsTwoDeltaPattern(t *testing.T) {
	// Alternating +1,+3 requires history length 1 to be ambiguous and
	// length >=2 to disambiguate: VLDP's whole point.
	v := MustNew(DefaultConfig())
	off := int64(0)
	deltas := []int64{1, 3}
	for i := 0; i < 200; i++ {
		v.Observe(7, off)
		off += deltas[i%2]
	}
	last := off - deltas[(200-1)%2]
	preds := v.Predict(7, 4)
	if len(preds) != 4 {
		t.Fatalf("got %d predictions, want 4", len(preds))
	}
	// Continue the alternation from the last observed position. The
	// delta recorded by the final Observe is deltas[198%2], so the next
	// true delta is deltas[(199+i)%2].
	want := last
	for i, p := range preds {
		want += deltas[(199+i)%2]
		if p != want {
			t.Errorf("prediction %d = %d, want %d (preds %v)", i, p, want, preds)
			break
		}
	}
}

func TestLearnsThreeDeltaPattern(t *testing.T) {
	v := MustNew(DefaultConfig())
	off := int64(0)
	deltas := []int64{2, 2, 5}
	for i := 0; i < 300; i++ {
		v.Observe(3, off)
		off += deltas[i%3]
	}
	preds := v.Predict(3, 6)
	if len(preds) < 3 {
		t.Fatalf("got %d predictions, want >=3", len(preds))
	}
	// The sum of any 3 consecutive predicted deltas must be 9 once the
	// pattern is locked in.
	base := off - deltas[(300-1)%3]
	if preds[2]-base != 9 {
		t.Errorf("3-step lookahead advanced %d, want 9 (preds %v)", preds[2]-base, preds)
	}
}

func TestUnknownPageNoPrediction(t *testing.T) {
	v := MustNew(DefaultConfig())
	if preds := v.Predict(99, 4); preds != nil {
		t.Errorf("prediction for untracked page: %v", preds)
	}
	v.Observe(99, 5)
	if preds := v.Predict(99, 4); len(preds) != 0 {
		t.Errorf("prediction after single access: %v", preds)
	}
}

func TestDHBEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DHBEntries = 4
	v := MustNew(cfg)
	// Three accesses per page: the third trains the level-1 DPT (the
	// first yields no delta, the second's delta has no prior history).
	for page := uint64(0); page < 10; page++ {
		v.Observe(page, 0)
		v.Observe(page, 1)
		v.Observe(page, 2)
	}
	if got := v.TrackedPages(); got != 4 {
		t.Errorf("tracked pages = %d, want 4", got)
	}
	// The oldest pages are evicted; the newest still predict.
	if preds := v.Predict(9, 1); len(preds) == 0 {
		t.Error("newest page lost its history")
	}
	if preds := v.Predict(0, 1); len(preds) != 0 {
		t.Errorf("evicted page still predicts: %v", preds)
	}
}

func TestNoiseDoesNotCrash(t *testing.T) {
	v := MustNew(DefaultConfig())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v.Observe(uint64(rng.Intn(32)), rng.Int63n(1<<20))
	}
	for page := uint64(0); page < 32; page++ {
		v.Predict(page, 8)
	}
}

func TestRepeatedOffsetIgnored(t *testing.T) {
	// Zero deltas (same line re-accessed) must not poison the history.
	v := MustNew(DefaultConfig())
	off := int64(0)
	for i := 0; i < 100; i++ {
		v.Observe(1, off)
		v.Observe(1, off) // duplicate
		off += 2
	}
	preds := v.Predict(1, 2)
	if len(preds) != 2 || preds[1]-preds[0] != 2 {
		t.Errorf("stride with duplicates mispredicted: %v", preds)
	}
}

func TestPatternSwitchRelearns(t *testing.T) {
	v := MustNew(DefaultConfig())
	off := int64(0)
	for i := 0; i < 100; i++ {
		v.Observe(1, off)
		off += 1
	}
	for i := 0; i < 400; i++ {
		v.Observe(1, off)
		off += 5
	}
	preds := v.Predict(1, 2)
	if len(preds) < 1 {
		t.Fatal("no predictions after relearn")
	}
	if preds[0]-(off-5) != 5 {
		t.Errorf("first prediction delta = %d, want 5", preds[0]-(off-5))
	}
}
