// Package vldp implements the Variable Length Delta Prefetcher of
// Shevgoor et al. (MICRO'15), the algorithm the paper adapts for its
// refresh-oriented prediction table (paper §IV-C). The original VLDP is
// kept here as an ablation baseline: a Delta History Buffer (DHB) tracks
// per-page access history and cascaded Delta Prediction Tables (DPTs)
// map variable-length delta histories to the next predicted delta,
// preferring the longest matching history.
package vldp

import "fmt"

// Config sizes the predictor tables.
type Config struct {
	DHBEntries int // tracked pages (LRU)
	DPTEntries int // entries per delta prediction table (direct mapped)
	Levels     int // number of DPTs / maximum history length (1..4)
}

// DefaultConfig mirrors the MICRO'15 structure sizes at small scale:
// 16 DHB entries, 64-entry DPTs, 3 levels.
func DefaultConfig() Config {
	return Config{DHBEntries: 16, DPTEntries: 64, Levels: 3}
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.DHBEntries <= 0 || c.DPTEntries <= 0 {
		return fmt.Errorf("vldp: non-positive table size %+v", c)
	}
	if c.Levels < 1 || c.Levels > 4 {
		return fmt.Errorf("vldp: Levels must be 1..4, got %d", c.Levels)
	}
	if c.DPTEntries&(c.DPTEntries-1) != 0 {
		return fmt.Errorf("vldp: DPTEntries must be a power of two, got %d", c.DPTEntries)
	}
	return nil
}

// dhbEntry tracks one page's recent behaviour.
type dhbEntry struct {
	page       uint64
	lastOffset int64
	deltas     [4]int64 // most recent last
	numDeltas  int
	lastUsed   uint64 // LRU stamp
}

// dptEntry is one direct-mapped predictor slot.
type dptEntry struct {
	key   uint64
	delta int64
	conf  int8 // 0..3 saturating
	valid bool
}

// VLDP is the predictor. Not safe for concurrent use.
type VLDP struct {
	cfg   Config
	dhb   []dhbEntry
	dpts  [][]dptEntry // dpts[l] predicts from history length l+1
	clock uint64
}

// New builds a predictor. It rejects an invalid configuration with the
// validation error.
func New(cfg Config) (*VLDP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v := &VLDP{cfg: cfg}
	v.dhb = make([]dhbEntry, 0, cfg.DHBEntries)
	v.dpts = make([][]dptEntry, cfg.Levels)
	for l := range v.dpts {
		v.dpts[l] = make([]dptEntry, cfg.DPTEntries)
	}
	return v, nil
}

// MustNew is New for statically known-good configurations (tests); it
// panics on error.
func MustNew(cfg Config) *VLDP {
	v, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return v
}

// hashKey mixes a delta history of the given length into a table key.
func hashKey(deltas []int64) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, d := range deltas {
		h ^= uint64(d)
		h *= 1099511628211
	}
	return h
}

// findDHB returns the entry for page, or nil.
func (v *VLDP) findDHB(page uint64) *dhbEntry {
	for i := range v.dhb {
		if v.dhb[i].page == page {
			return &v.dhb[i]
		}
	}
	return nil
}

// allocDHB evicts the LRU entry if needed and returns a fresh entry for
// page.
func (v *VLDP) allocDHB(page uint64) *dhbEntry {
	if len(v.dhb) < cap(v.dhb) {
		v.dhb = append(v.dhb, dhbEntry{page: page})
		return &v.dhb[len(v.dhb)-1]
	}
	victim := 0
	for i := range v.dhb {
		if v.dhb[i].lastUsed < v.dhb[victim].lastUsed {
			victim = i
		}
	}
	v.dhb[victim] = dhbEntry{page: page}
	return &v.dhb[victim]
}

// trainDPT updates level l (history length l+1) with key -> delta using
// 2-bit saturating confidence.
func (v *VLDP) trainDPT(l int, key uint64, delta int64) {
	e := &v.dpts[l][key&uint64(v.cfg.DPTEntries-1)]
	if e.valid && e.key == key {
		if e.delta == delta {
			if e.conf < 3 {
				e.conf++
			}
		} else {
			if e.conf > 0 {
				e.conf--
			} else {
				e.delta = delta
			}
		}
		return
	}
	// Miss: replace only unconfident occupants (simple decay policy).
	if !e.valid || e.conf == 0 {
		*e = dptEntry{key: key, delta: delta, conf: 1, valid: true}
	} else {
		e.conf--
	}
}

// lookupDPT returns the predicted delta for the given history, trying the
// longest history first. ok is false when no table has a confident match.
func (v *VLDP) lookupDPT(hist []int64) (delta int64, ok bool) {
	maxLen := len(hist)
	if maxLen > v.cfg.Levels {
		maxLen = v.cfg.Levels
	}
	for l := maxLen; l >= 1; l-- {
		key := hashKey(hist[len(hist)-l:])
		e := &v.dpts[l-1][key&uint64(v.cfg.DPTEntries-1)]
		if e.valid && e.key == key && e.conf >= 1 {
			return e.delta, true
		}
	}
	return 0, false
}

// Observe records an access to the given page at the given line offset,
// training the DPTs.
func (v *VLDP) Observe(page uint64, offset int64) {
	v.clock++
	e := v.findDHB(page)
	if e == nil {
		e = v.allocDHB(page)
		e.lastOffset = offset
		e.lastUsed = v.clock
		return
	}
	e.lastUsed = v.clock
	delta := offset - e.lastOffset
	e.lastOffset = offset
	if delta == 0 {
		return
	}
	// Train every history length ending just before this delta.
	for l := 1; l <= v.cfg.Levels && l <= e.numDeltas; l++ {
		key := hashKey(e.deltas[e.numDeltas-l : e.numDeltas])
		v.trainDPT(l-1, key, delta)
	}
	if e.numDeltas == len(e.deltas) {
		copy(e.deltas[:], e.deltas[1:])
		e.numDeltas--
	}
	e.deltas[e.numDeltas] = delta
	e.numDeltas++
}

// Predict returns up to n predicted future line offsets for the page,
// walking the DPTs speculatively (each predicted delta is appended to a
// shadow history, as in the original design).
func (v *VLDP) Predict(page uint64, n int) []int64 {
	e := v.findDHB(page)
	if e == nil || e.numDeltas == 0 {
		return nil
	}
	hist := append([]int64(nil), e.deltas[:e.numDeltas]...)
	offset := e.lastOffset
	var out []int64
	for i := 0; i < n; i++ {
		delta, ok := v.lookupDPT(hist)
		if !ok {
			break
		}
		offset += delta
		out = append(out, offset)
		hist = append(hist, delta)
		if len(hist) > 4 {
			hist = hist[1:]
		}
	}
	return out
}

// TrackedPages reports how many pages the DHB currently tracks.
func (v *VLDP) TrackedPages() int { return len(v.dhb) }
