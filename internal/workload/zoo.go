package workload

import "sort"

// zoo is the server-class workload catalog: synthetic models of memory
// behaviours the SPEC-like table does not cover (ROADMAP item 5). Zoo
// profiles are deliberately kept out of Names()/PaperOrder() — the
// paper's twelve-benchmark evaluation stays exactly the paper's — but
// Get resolves them, so any harness flag that takes a benchmark name
// takes a zoo name too. The committed traces under testdata/traces/
// are captured from these profiles (docs/TRACES.md has the catalog).
var zoo = map[string]Profile{
	"pointer": {
		Name: "pointer", Intensive: true,
		// Pointer chasing: dependent loads over a footprint far beyond
		// the LLC, no useful stride, almost pure reads. The random delta
		// dominates so neither the row buffer nor the ROP table gets
		// traction — the adversarial case for prefetching.
		OnGapMean:  110,
		StreamFrac: 0.9, WSLines: linesPerMiB / 2, FootprintLines: 64 * linesPerMiB,
		ReadFrac: 0.98,
		Deltas: []DeltaChoice{
			{Random: true, Weight: 0.9},
			{Seq: []int64{1}, Weight: 0.1},
		},
	},
	"scan": {
		Name: "scan", Intensive: true,
		// Scan-heavy analytics: long sequential sweeps over a large
		// region, read-mostly, always on — maximal row locality and the
		// friendliest case for delta prediction.
		OnGapMean:  55,
		StreamFrac: 0.97, WSLines: linesPerMiB / 4, FootprintLines: 96 * linesPerMiB,
		ReadFrac: 0.9,
		Deltas: []DeltaChoice{
			{Seq: []int64{1}, Weight: 0.85},
			{Seq: []int64{1, 1, 2}, Weight: 0.15},
		},
	},
	"memcached": {
		Name: "memcached", Intensive: true,
		// Memcached-like serving: bursts of requests against a hot
		// object set with irregular access, GET-dominated with a SET
		// tail, idle gaps between request waves.
		OnGapMean: 140, OnMeanInsts: 220_000, OffMeanInsts: 180_000,
		StreamFrac: 0.75, WSLines: 4 * linesPerMiB, FootprintLines: 32 * linesPerMiB,
		ReadFrac: 0.85,
		Deltas: []DeltaChoice{
			{Random: true, Weight: 0.75},
			{Seq: []int64{1}, Weight: 0.25},
		},
	},
}

// ZooNames returns the server-class zoo benchmark names in
// deterministic (sorted) order.
func ZooNames() []string {
	out := make([]string, 0, len(zoo))
	for n := range zoo {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
