package workload

import (
	"math"
	"math/rand"
)

// Generator produces an infinite deterministic trace for a Profile. It
// implements Stream.
type Generator struct {
	p   Profile
	rng *rand.Rand

	// Phase state. phaseLeft counts instructions remaining in the
	// current phase; alwaysOn profiles never leave ON.
	on        bool
	phaseLeft int64

	// Streaming state: position in the streaming region and the active
	// delta behaviour.
	streamPos    int64
	delta        DeltaChoice
	deltaStep    int
	deltaOpsLeft int

	// Hot working-set walker: a sequential pointer plus a ring of
	// recently accessed lines that reuse accesses draw from.
	hotPos     int64
	hotHist    []uint64
	hotHistLen int
	hotHistPos int
}

// hotHistCap bounds the reuse history (and therefore the longest reuse
// distance the generator can produce).
const hotHistCap = 1 << 17

// hotReuseFrac is the fraction of hot accesses that revisit an earlier
// line instead of advancing the sequential pointer.
const hotReuseFrac = 0.7

// hotReuseMin is the shortest reuse distance (in hot accesses).
const hotReuseMin = 2048.0

// streamBase is the line offset of the streaming region: far above any
// working set so the two never alias.
const streamBase = int64(1) << 34

// segmentOps is how many accesses a generator keeps one delta behaviour
// before re-drawing (real applications switch stride patterns between
// loops).
const segmentOps = 256

// NewGenerator builds a generator for profile p seeded with seed.
// Identical (p, seed) pairs produce identical traces. It panics on an
// invalid profile: profiles are static configuration.
func NewGenerator(p Profile, seed int64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		p:   p,
		rng: rand.New(rand.NewSource(seed)),
		on:  true,
	}
	if p.OffMeanInsts > 0 {
		g.phaseLeft = g.expInt(p.OnMeanInsts)
	}
	g.pickDelta()
	return g
}

// Profile reports the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// expInt draws an exponential length with the given mean, at least 1.
func (g *Generator) expInt(mean float64) int64 {
	v := int64(g.rng.ExpFloat64() * mean)
	if v < 1 {
		v = 1
	}
	return v
}

// pickDelta re-draws the active streaming delta behaviour.
func (g *Generator) pickDelta() {
	total := 0.0
	for _, d := range g.p.Deltas {
		total += d.Weight
	}
	x := g.rng.Float64() * total
	for _, d := range g.p.Deltas {
		x -= d.Weight
		if x < 0 {
			g.delta = d
			break
		}
	}
	g.deltaStep = 0
	g.deltaOpsLeft = segmentOps
}

// nextStreamLine advances the streaming walker one access.
func (g *Generator) nextStreamLine() uint64 {
	if g.deltaOpsLeft == 0 {
		g.pickDelta()
	}
	g.deltaOpsLeft--
	if g.delta.Random {
		g.streamPos = g.rng.Int63n(int64(g.p.FootprintLines))
	} else {
		g.streamPos += g.delta.Seq[g.deltaStep]
		g.deltaStep = (g.deltaStep + 1) % len(g.delta.Seq)
		if g.streamPos >= int64(g.p.FootprintLines) || g.streamPos < 0 {
			g.streamPos = 0
		}
	}
	return uint64(streamBase + g.streamPos)
}

// recordHot pushes a line into the reuse history ring.
func (g *Generator) recordHot(line uint64) {
	if g.hotHist == nil {
		capLines := g.p.WSLines
		if capLines > hotHistCap {
			capLines = hotHistCap
		}
		g.hotHist = make([]uint64, capLines)
	}
	g.hotHist[g.hotHistPos] = line
	g.hotHistPos = (g.hotHistPos + 1) % len(g.hotHist)
	if g.hotHistLen < len(g.hotHist) {
		g.hotHistLen++
	}
}

// nextHotLine advances the hot working-set walker. Most accesses revisit
// a line accessed d hot-accesses ago, with d drawn log-uniformly between
// hotReuseMin and the working-set size — the LRU stack distance is then
// roughly proportional to d, which is what makes LLC capacity matter
// smoothly across the paper's 1-8 MB sweep (Figs 12-14). The rest
// advance a sequential pointer through the working set.
func (g *Generator) nextHotLine() uint64 {
	if g.hotHistLen > 64 && g.rng.Float64() < hotReuseFrac {
		dMax := float64(g.p.WSLines)
		if dMax < hotReuseMin*2 {
			dMax = hotReuseMin * 2
		}
		d := int(hotReuseMin * math.Exp(g.rng.Float64()*math.Log(dMax/hotReuseMin)))
		if d >= g.hotHistLen {
			d = g.hotHistLen - 1
		}
		if d < 1 {
			d = 1
		}
		idx := g.hotHistPos - 1 - d
		idx %= len(g.hotHist)
		if idx < 0 {
			idx += len(g.hotHist)
		}
		line := g.hotHist[idx]
		g.recordHot(line)
		return line
	}
	g.hotPos++
	if g.hotPos >= int64(g.p.WSLines) {
		g.hotPos = 0
	}
	line := uint64(g.hotPos)
	g.recordHot(line)
	return line
}

// Next implements Stream. The generator is infinite: ok is always true.
func (g *Generator) Next() (Record, bool) {
	gap := int64(0)

	// Cross OFF phases, accumulating their instructions as gap.
	if g.p.OffMeanInsts > 0 {
		for {
			if g.on {
				// Draw the spacing to the next access inside ON.
				d := g.expInt(g.p.OnGapMean + 1)
				if d <= g.phaseLeft {
					g.phaseLeft -= d
					gap += d
					break
				}
				// ON phase ends before the next access: burn it and go OFF.
				gap += g.phaseLeft
				g.on = false
				g.phaseLeft = g.expInt(g.p.OffMeanInsts)
				continue
			}
			gap += g.phaseLeft
			g.on = true
			g.phaseLeft = g.expInt(g.p.OnMeanInsts)
		}
	} else {
		gap = g.expInt(g.p.OnGapMean + 1)
	}

	if gap > int64(^uint32(0)) {
		gap = int64(^uint32(0))
	}

	var line uint64
	if g.rng.Float64() < g.p.StreamFrac {
		line = g.nextStreamLine()
	} else {
		line = g.nextHotLine()
	}
	write := g.rng.Float64() >= g.p.ReadFrac
	return Record{Gap: uint32(gap), Line: line, Write: write}, true
}
