package workload

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, name := range Names() {
		p := MustGet(name)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("profile %q has Name %q", name, p.Name)
		}
	}
}

func TestPaperOrderCoversAllProfiles(t *testing.T) {
	order := PaperOrder()
	if len(order) != len(Names()) {
		t.Fatalf("PaperOrder has %d entries, profiles %d", len(order), len(Names()))
	}
	seen := map[string]bool{}
	for _, n := range order {
		if _, err := Get(n); err != nil {
			t.Errorf("PaperOrder name %q: %v", n, err)
		}
		if seen[n] {
			t.Errorf("PaperOrder repeats %q", n)
		}
		seen[n] = true
	}
}

func TestIntensiveClassification(t *testing.T) {
	// Table II: six intensive, six non-intensive.
	intensive := 0
	for _, n := range Names() {
		if MustGet(n).Intensive {
			intensive++
		}
	}
	if intensive != 6 {
		t.Errorf("intensive count = %d, want 6", intensive)
	}
	for _, n := range []string{"GemsFDTD", "lbm", "bwaves", "gcc", "libquantum", "cactusADM"} {
		if !MustGet(n).Intensive {
			t.Errorf("%s should be intensive", n)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nosuchbench"); err == nil {
		t.Error("Get accepted unknown benchmark")
	}
}

func TestMixesWellFormed(t *testing.T) {
	mixes := Mixes()
	if len(mixes) != 6 {
		t.Fatalf("got %d mixes, want 6", len(mixes))
	}
	for _, m := range mixes {
		if len(m.Members) != 4 {
			t.Errorf("%s has %d members, want 4", m.Name, len(m.Members))
		}
		for _, b := range m.Members {
			if _, err := Get(b); err != nil {
				t.Errorf("%s member %q: %v", m.Name, b, err)
			}
		}
	}
	// WL1 must be all-intensive (the paper's most intensive mix).
	wl1, err := GetMix("WL1")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range wl1.Members {
		if !MustGet(b).Intensive {
			t.Errorf("WL1 member %s not intensive", b)
		}
	}
	if _, err := GetMix("WL9"); err == nil {
		t.Error("GetMix accepted unknown mix")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	for _, name := range Names() {
		a := Take(NewGenerator(MustGet(name), 11), 2000)
		b := Take(NewGenerator(MustGet(name), 11), 2000)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different traces", name)
		}
		c := Take(NewGenerator(MustGet(name), 12), 2000)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical traces", name)
		}
	}
}

func TestGeneratorLinesInRegions(t *testing.T) {
	for _, name := range Names() {
		p := MustGet(name)
		g := NewGenerator(p, 3)
		for i := 0; i < 5000; i++ {
			r, ok := g.Next()
			if !ok {
				t.Fatalf("%s: generator ended", name)
			}
			line := int64(r.Line)
			inHot := line >= 0 && line < int64(p.WSLines)
			inStream := line >= streamBase && line < streamBase+int64(p.FootprintLines)
			if !inHot && !inStream {
				t.Fatalf("%s: line %d outside both regions", name, line)
			}
		}
	}
}

func TestGeneratorIntensityOrdering(t *testing.T) {
	// Mean instructions per access must be much lower for the streaming
	// intensive benchmarks than for sparse ones.
	meanGap := func(name string) float64 {
		g := NewGenerator(MustGet(name), 5)
		total := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			r, _ := g.Next()
			total += float64(r.Gap)
		}
		return total / n
	}
	lbm, gobmk := meanGap("lbm"), meanGap("gobmk")
	if lbm*50 > gobmk {
		t.Errorf("lbm gap %.1f not ≫ smaller than gobmk gap %.1f", lbm, gobmk)
	}
}

func TestGeneratorReadFraction(t *testing.T) {
	p := MustGet("libquantum")
	g := NewGenerator(p, 9)
	reads := 0
	const n = 20000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		if !r.Write {
			reads++
		}
	}
	got := float64(reads) / n
	if got < p.ReadFrac-0.03 || got > p.ReadFrac+0.03 {
		t.Errorf("read fraction = %.3f, want ≈%.2f", got, p.ReadFrac)
	}
}

func TestGeneratorSequentialDeltas(t *testing.T) {
	// libquantum streams with delta 1: consecutive streaming lines must
	// be dominated by +1 steps.
	g := NewGenerator(MustGet("libquantum"), 17)
	var prev uint64
	havePrev := false
	plusOne, total := 0, 0
	for i := 0; i < 20000; i++ {
		r, _ := g.Next()
		if int64(r.Line) < streamBase {
			continue
		}
		if havePrev {
			total++
			if r.Line == prev+1 {
				plusOne++
			}
		}
		prev, havePrev = r.Line, true
	}
	if total == 0 {
		t.Fatal("no streaming accesses observed")
	}
	if frac := float64(plusOne) / float64(total); frac < 0.9 {
		t.Errorf("+1 delta fraction = %.2f, want ≥0.9", frac)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := Take(NewGenerator(MustGet("bwaves"), 23), 5000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Error("binary round trip mismatch")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(gaps []uint32, lines []uint64, writes []bool) bool {
		n := len(gaps)
		if len(lines) < n {
			n = len(lines)
		}
		if len(writes) < n {
			n = len(writes)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{Gap: gaps[i], Line: lines[i], Write: writes[i]}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, recs); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("ReadBinary accepted bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("ReadBinary accepted empty input")
	}
}

func TestTextRoundTrip(t *testing.T) {
	recs := Take(NewGenerator(MustGet("gcc"), 31), 1000)
	var buf bytes.Buffer
	if err := WriteText(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Error("text round trip mismatch")
	}
}

func TestTextSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\n5 1f R\n 7 20 W \n"
	got, err := ReadText(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{{Gap: 5, Line: 0x1f}, {Gap: 7, Line: 0x20, Write: true}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestTextRejectsMalformed(t *testing.T) {
	for _, in := range []string{"x 1f R\n", "5 zz R\n", "5 1f X\n", "5 1f\n"} {
		if _, err := ReadText(bytes.NewBufferString(in)); err == nil {
			t.Errorf("ReadText accepted %q", in)
		}
	}
}

func TestSliceStream(t *testing.T) {
	recs := []Record{{Gap: 1, Line: 2}, {Gap: 3, Line: 4, Write: true}}
	s := NewSliceStream(recs)
	got := Take(s, 10)
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("Take = %+v", got)
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted stream still produced records")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r != recs[0] {
		t.Error("Reset did not rewind")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := MustGet("lbm")
	cases := []func(p *Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.StreamFrac = 1.5 },
		func(p *Profile) { p.ReadFrac = -0.1 },
		func(p *Profile) { p.WSLines = 0 },
		func(p *Profile) { p.FootprintLines = 0 },
		func(p *Profile) { p.Deltas = nil },
		func(p *Profile) { p.Deltas = []DeltaChoice{{Seq: []int64{1}, Weight: -1}} },
		func(p *Profile) { p.Deltas = []DeltaChoice{{Seq: []int64{1, 2, 3, 4}, Weight: 1}} },
		func(p *Profile) { p.Deltas = []DeltaChoice{{Weight: 1}} },
		func(p *Profile) { p.OffMeanInsts = 100; p.OnMeanInsts = 0 },
	}
	for i, mutate := range cases {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted mutated profile", i)
		}
	}
}

func TestOnOffPhasesProduceLongGaps(t *testing.T) {
	// Benchmarks with OFF phases must occasionally emit gaps comparable
	// to OffMeanInsts; always-on benchmarks must not.
	p := MustGet("bzip2")
	g := NewGenerator(p, 41)
	maxGap := uint32(0)
	for i := 0; i < 30000; i++ {
		r, _ := g.Next()
		if r.Gap > maxGap {
			maxGap = r.Gap
		}
	}
	if float64(maxGap) < p.OffMeanInsts/2 {
		t.Errorf("bzip2 max gap %d, want ≥ %g", maxGap, p.OffMeanInsts/2)
	}

	lq := MustGet("libquantum")
	g = NewGenerator(lq, 41)
	maxGap = 0
	for i := 0; i < 30000; i++ {
		r, _ := g.Next()
		if r.Gap > maxGap {
			maxGap = r.Gap
		}
	}
	if float64(maxGap) > lq.OnGapMean*100 {
		t.Errorf("libquantum max gap %d suspiciously long", maxGap)
	}
}

func TestGeneratorGapDistributionMean(t *testing.T) {
	// For always-on profiles the mean gap should be near OnGapMean.
	p := MustGet("perlbench")
	g := NewGenerator(p, 7) // fixed seed; this test asserts a distribution property
	var sum float64
	const n = 30000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		sum += float64(r.Gap)
	}
	mean := sum / n
	if mean < p.OnGapMean*0.9 || mean > p.OnGapMean*1.1 {
		t.Errorf("perlbench mean gap = %.0f, want ≈%.0f", mean, p.OnGapMean)
	}
}
