package workload

import (
	"fmt"
	"sort"
)

// DeltaChoice is one stride behaviour of a benchmark's streaming
// accesses: a repeating delta sequence (in cache lines) chosen with the
// given weight. Sequences of length 1, 2 and 3 exercise the Delta1,
// Delta2 and Delta3 pattern slots of the ROP prediction table
// (paper §IV-C). Random marks irregular jumps instead of a sequence.
type DeltaChoice struct {
	// Seq is the repeating delta sequence in cache lines (length 1-3).
	Seq []int64
	// Weight is the relative probability of choosing this behaviour.
	Weight float64
	// Random marks an irregular jump instead of a sequence.
	Random bool
}

// Profile parameterizes one synthetic benchmark. Times are measured in
// instructions (the core retires ~1 instruction per CPU cycle between
// memory stalls, so instruction counts approximate CPU cycles).
//
// The ON/OFF phase structure is what shapes the paper's Table I
// probabilities: benchmarks that are always ON produce high λ and low β;
// benchmarks with phases much longer than the observational window
// produce high λ *and* high β; sparse Poisson-like benchmarks produce
// low λ.
type Profile struct {
	Name      string // benchmark name (SPEC CPU2006 shorthand)
	Intensive bool   // paper Table II classification

	// OnGapMean is the mean non-memory instruction gap between LLC
	// accesses during an ON phase.
	OnGapMean float64
	// OnMeanInsts and OffMeanInsts are mean phase lengths in
	// instructions. OffMeanInsts == 0 means the benchmark never pauses
	// (always ON).
	OnMeanInsts, OffMeanInsts float64

	// StreamFrac is the fraction of accesses that walk the streaming
	// region (LLC-missing); the rest hit the hot working set.
	StreamFrac float64
	// WSLines is the hot working-set size in cache lines; it controls
	// LLC sensitivity (Figs 12-14).
	WSLines int
	// FootprintLines is the streaming region size in cache lines.
	FootprintLines int

	// ReadFrac is the fraction of loads.
	ReadFrac float64

	// Deltas are the streaming stride behaviours.
	Deltas []DeltaChoice
}

// Validate reports an error for out-of-range parameters.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without name")
	}
	if p.OnGapMean < 0 || p.OnMeanInsts < 0 || p.OffMeanInsts < 0 {
		return fmt.Errorf("workload: %s: negative phase parameter", p.Name)
	}
	if p.OffMeanInsts > 0 && p.OnMeanInsts <= 0 {
		return fmt.Errorf("workload: %s: OFF phases require positive OnMeanInsts", p.Name)
	}
	if p.StreamFrac < 0 || p.StreamFrac > 1 {
		return fmt.Errorf("workload: %s: StreamFrac %g outside [0,1]", p.Name, p.StreamFrac)
	}
	if p.ReadFrac < 0 || p.ReadFrac > 1 {
		return fmt.Errorf("workload: %s: ReadFrac %g outside [0,1]", p.Name, p.ReadFrac)
	}
	if p.WSLines <= 0 || p.FootprintLines <= 0 {
		return fmt.Errorf("workload: %s: non-positive region size", p.Name)
	}
	if len(p.Deltas) == 0 {
		return fmt.Errorf("workload: %s: no delta choices", p.Name)
	}
	total := 0.0
	for _, d := range p.Deltas {
		if d.Weight <= 0 {
			return fmt.Errorf("workload: %s: non-positive delta weight", p.Name)
		}
		if !d.Random && len(d.Seq) == 0 {
			return fmt.Errorf("workload: %s: empty delta sequence", p.Name)
		}
		if len(d.Seq) > 3 {
			return fmt.Errorf("workload: %s: delta sequence longer than 3", p.Name)
		}
		total += d.Weight
	}
	if total <= 0 {
		return fmt.Errorf("workload: %s: zero total delta weight", p.Name)
	}
	return nil
}

// Lines per MiB of footprint (64-byte lines).
const linesPerMiB = 1 << 20 / 64

// profiles is the benchmark table. The ON/OFF and gap parameters are
// calibrated so that the memory-level arrival process reproduces each
// benchmark's Table I λ/β class and Table II intensity class under the
// paper's configuration (2 MB LLC, DDR4-1600, tREFI = 7.8 µs ≈ 25k
// instructions).
var profiles = map[string]Profile{
	"lbm": {
		Name: "lbm", Intensive: true,
		// Streaming, write-heavy, never pauses: λ≈0.99, β≈0.
		OnGapMean:  60,
		StreamFrac: 0.92, WSLines: 1 * linesPerMiB / 2, FootprintLines: 48 * linesPerMiB,
		ReadFrac: 0.55,
		Deltas: []DeltaChoice{
			{Seq: []int64{1}, Weight: 0.8},
			{Seq: []int64{2}, Weight: 0.2},
		},
	},
	"libquantum": {
		Name: "libquantum", Intensive: true,
		// Pure sequential sweep over a large vector: λ≈0.99, β≈0.04.
		OnGapMean:  70,
		StreamFrac: 0.97, WSLines: linesPerMiB / 4, FootprintLines: 32 * linesPerMiB,
		ReadFrac: 0.75,
		Deltas: []DeltaChoice{
			{Seq: []int64{1}, Weight: 1},
		},
	},
	"bwaves": {
		Name: "bwaves", Intensive: true,
		// Strided multi-delta sweeps, always on: λ≈0.93, β≈0.
		OnGapMean:  85,
		StreamFrac: 0.85, WSLines: 1 * linesPerMiB, FootprintLines: 40 * linesPerMiB,
		ReadFrac: 0.7,
		Deltas: []DeltaChoice{
			{Seq: []int64{1, 1, 6}, Weight: 0.6},
			{Seq: []int64{1}, Weight: 0.3},
			{Random: true, Weight: 0.1},
		},
	},
	"GemsFDTD": {
		Name: "GemsFDTD", Intensive: true,
		// Long compute-update sweeps with brief stencil boundaries:
		// λ≈0.99, β≈0.68.
		OnGapMean: 75, OnMeanInsts: 600_000, OffMeanInsts: 110_000,
		StreamFrac: 0.8, WSLines: 6 * linesPerMiB, FootprintLines: 48 * linesPerMiB,
		ReadFrac: 0.65,
		Deltas: []DeltaChoice{
			{Seq: []int64{2}, Weight: 0.5},
			{Seq: []int64{1, 3}, Weight: 0.4},
			{Random: true, Weight: 0.1},
		},
	},
	"gcc": {
		Name: "gcc", Intensive: true,
		// Phase-structured (parse/optimize alternation) with both phases
		// much longer than the window: λ≈0.97, β≈0.96.
		OnGapMean: 90, OnMeanInsts: 500_000, OffMeanInsts: 500_000,
		StreamFrac: 0.6, WSLines: 2 * linesPerMiB, FootprintLines: 24 * linesPerMiB,
		ReadFrac: 0.72,
		Deltas: []DeltaChoice{
			{Seq: []int64{1}, Weight: 0.6},
			{Random: true, Weight: 0.4},
		},
	},
	"cactusADM": {
		Name: "cactusADM", Intensive: true,
		// Stencil sweeps with OFF gaps comparable to the window, so
		// B=0 windows often see requests after all: λ≈0.78, β≈0.54.
		OnGapMean: 90, OnMeanInsts: 45_000, OffMeanInsts: 65_000,
		StreamFrac: 0.7, WSLines: 5 * linesPerMiB, FootprintLines: 32 * linesPerMiB,
		ReadFrac: 0.6,
		Deltas: []DeltaChoice{
			{Seq: []int64{4}, Weight: 0.55},
			{Seq: []int64{1}, Weight: 0.2},
			{Random: true, Weight: 0.25},
		},
	},
	"wrf": {
		Name: "wrf", Intensive: false,
		// Very long active and idle phases: λ≈0.99, β≈1.0, modest rate.
		OnGapMean: 120, OnMeanInsts: 1_200_000, OffMeanInsts: 1_200_000,
		StreamFrac: 0.55, WSLines: 4 * linesPerMiB, FootprintLines: 24 * linesPerMiB,
		ReadFrac: 0.68,
		Deltas: []DeltaChoice{
			{Seq: []int64{1}, Weight: 0.5},
			{Seq: []int64{2, 5}, Weight: 0.3},
			{Random: true, Weight: 0.2},
		},
	},
	"bzip2": {
		Name: "bzip2", Intensive: false,
		// Bursty block compression: λ≈0.84, β≈0.94.
		OnGapMean: 220, OnMeanInsts: 130_000, OffMeanInsts: 400_000,
		StreamFrac: 0.5, WSLines: 3 * linesPerMiB, FootprintLines: 16 * linesPerMiB,
		ReadFrac: 0.7,
		Deltas: []DeltaChoice{
			{Seq: []int64{1}, Weight: 0.7},
			{Random: true, Weight: 0.3},
		},
	},
	"perlbench": {
		Name: "perlbench", Intensive: false,
		// Sparse, weakly clustered arrivals: λ≈0.40, β≈0.73.
		OnGapMean:  42_000,
		StreamFrac: 0.35, WSLines: linesPerMiB / 2, FootprintLines: 8 * linesPerMiB,
		ReadFrac: 0.8,
		Deltas: []DeltaChoice{
			{Random: true, Weight: 0.7},
			{Seq: []int64{1}, Weight: 0.3},
		},
	},
	"astar": {
		Name: "astar", Intensive: false,
		// Pathfinding bursts between long planning lulls: λ≈0.76, β≈0.97.
		OnGapMean: 160, OnMeanInsts: 80_000, OffMeanInsts: 900_000,
		StreamFrac: 0.45, WSLines: 5 * linesPerMiB / 2, FootprintLines: 12 * linesPerMiB,
		ReadFrac: 0.78,
		Deltas: []DeltaChoice{
			{Random: true, Weight: 0.5},
			{Seq: []int64{1}, Weight: 0.3},
			{Seq: []int64{3, 7}, Weight: 0.2},
		},
	},
	"omnetpp": {
		Name: "omnetpp", Intensive: false,
		// Event-queue bursts: λ≈0.78, β≈0.95.
		OnGapMean: 150, OnMeanInsts: 85_000, OffMeanInsts: 520_000,
		StreamFrac: 0.5, WSLines: 3 * linesPerMiB, FootprintLines: 16 * linesPerMiB,
		ReadFrac: 0.75,
		Deltas: []DeltaChoice{
			{Random: true, Weight: 0.6},
			{Seq: []int64{1}, Weight: 0.4},
		},
	},
	"gobmk": {
		Name: "gobmk", Intensive: false,
		// Very sparse, near-isolated accesses: λ≈0.20, β≈0.88.
		OnGapMean:  75_000,
		StreamFrac: 0.3, WSLines: 3 * linesPerMiB / 2, FootprintLines: 8 * linesPerMiB,
		ReadFrac: 0.82,
		Deltas: []DeltaChoice{
			{Random: true, Weight: 0.8},
			{Seq: []int64{1}, Weight: 0.2},
		},
	},
}

// Names returns the benchmark names in deterministic (sorted) order.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PaperOrder lists the benchmarks in the order of the paper's Table I.
func PaperOrder() []string {
	return []string{
		"perlbench", "bzip2", "gobmk", "GemsFDTD", "libquantum", "lbm",
		"omnetpp", "astar", "wrf", "gcc", "bwaves", "cactusADM",
	}
}

// Get returns the profile for a benchmark name. Both the SPEC-like
// table and the server-class zoo (zoo.go) resolve here.
func Get(name string) (Profile, error) {
	if p, ok := profiles[name]; ok {
		return p, nil
	}
	if p, ok := zoo[name]; ok {
		return p, nil
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// MustGet is Get for static benchmark names; it panics on unknown names.
func MustGet(name string) Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Mix is a multiprogrammed workload: one benchmark per core.
type Mix struct {
	Name    string   // workload label (paper Table II: WL1..WL6)
	Members []string // benchmark names, one per core
}

// Mixes returns the paper's six 4-core workload combinations (Table II;
// see DESIGN.md §1 for how the unreadable checkmark matrix was resolved).
func Mixes() []Mix {
	return []Mix{
		{Name: "WL1", Members: []string{"GemsFDTD", "lbm", "bwaves", "libquantum"}},
		{Name: "WL2", Members: []string{"gcc", "cactusADM", "libquantum", "bwaves"}},
		{Name: "WL3", Members: []string{"GemsFDTD", "lbm", "wrf", "bzip2"}},
		{Name: "WL4", Members: []string{"gcc", "libquantum", "astar", "omnetpp"}},
		{Name: "WL5", Members: []string{"cactusADM", "perlbench", "gobmk", "bzip2"}},
		{Name: "WL6", Members: []string{"wrf", "perlbench", "astar", "gobmk"}},
	}
}

// GetMix returns the mix with the given name.
func GetMix(name string) (Mix, error) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}
