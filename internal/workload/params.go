package workload

// Params is the numeric parameter vector shared by hand-written
// profiles and statistically fitted ones (the trace cloner in
// internal/trace). It carries exactly the knobs a Profile exposes,
// without the identity fields (name, intensity class) or the delta
// table, so a fit and a profile can be compared knob by knob.
type Params struct {
	// OnGapMean is the mean non-memory instruction gap between LLC
	// accesses during an ON phase (the memory-intensity knob: lower
	// means more accesses per kilo-instruction).
	OnGapMean float64
	// OnMeanInsts and OffMeanInsts are the mean ON/OFF phase lengths in
	// instructions; OffMeanInsts == 0 means always ON.
	OnMeanInsts, OffMeanInsts float64
	// StreamFrac is the fraction of accesses walking the streaming
	// (LLC-missing) region.
	StreamFrac float64
	// ReadFrac is the fraction of loads.
	ReadFrac float64
	// WSLines is the hot working-set size in cache lines.
	WSLines int
	// FootprintLines is the streaming region size in cache lines.
	FootprintLines int
}

// Parameterized is implemented by anything that exposes a workload
// parameter vector: a hand-written Profile, or the trace cloner's
// fitted output (trace.Fit). It is the seam that lets fit-error
// metrics compare the two through one code path.
type Parameterized interface {
	// WorkloadParams returns the parameter vector.
	WorkloadParams() Params
}

// WorkloadParams implements Parameterized for a profile.
func (p Profile) WorkloadParams() Params {
	return Params{
		OnGapMean:      p.OnGapMean,
		OnMeanInsts:    p.OnMeanInsts,
		OffMeanInsts:   p.OffMeanInsts,
		StreamFrac:     p.StreamFrac,
		ReadFrac:       p.ReadFrac,
		WSLines:        p.WSLines,
		FootprintLines: p.FootprintLines,
	}
}

// Apply writes the parameter vector back into a profile, keeping the
// profile's identity fields and delta table. The cloner uses it to
// materialize a runnable Profile from a fit.
func (p Params) Apply(base Profile) Profile {
	base.OnGapMean = p.OnGapMean
	base.OnMeanInsts = p.OnMeanInsts
	base.OffMeanInsts = p.OffMeanInsts
	base.StreamFrac = p.StreamFrac
	base.ReadFrac = p.ReadFrac
	base.WSLines = p.WSLines
	base.FootprintLines = p.FootprintLines
	return base
}
