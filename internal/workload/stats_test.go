package workload

import (
	"math"
	"testing"
	"testing/quick"
)

// Statistical property tests: the generators must deliver the
// distributional features the experiments depend on, for any seed.

func TestReadFractionPropertyAllProfiles(t *testing.T) {
	f := func(seedRaw int64) bool {
		seed := seedRaw%1000 + 1
		for _, name := range Names() {
			p := MustGet(name)
			g := NewGenerator(p, seed)
			reads := 0
			const n = 4000
			for i := 0; i < n; i++ {
				r, _ := g.Next()
				if !r.Write {
					reads++
				}
			}
			got := float64(reads) / n
			if math.Abs(got-p.ReadFrac) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestStreamFractionProperty(t *testing.T) {
	f := func(seedRaw int64) bool {
		seed := seedRaw%1000 + 1
		for _, name := range []string{"lbm", "gcc", "perlbench"} {
			p := MustGet(name)
			g := NewGenerator(p, seed)
			stream := 0
			const n = 4000
			for i := 0; i < n; i++ {
				r, _ := g.Next()
				if int64(r.Line) >= streamBase {
					stream++
				}
			}
			got := float64(stream) / n
			if math.Abs(got-p.StreamFrac) > 0.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestIntensityRanking(t *testing.T) {
	// The Table II classification must be visible in the traces at the
	// memory level: instructions per *LLC-missing* access (streaming
	// accesses always miss) must be clearly smaller for every intensive
	// benchmark than for every non-intensive one.
	instsPerMiss := func(name string) float64 {
		p := MustGet(name)
		g := NewGenerator(p, 3)
		var insts, misses float64
		const n = 30000
		for i := 0; i < n; i++ {
			r, _ := g.Next()
			insts += float64(r.Gap) + 1
			if int64(r.Line) >= streamBase {
				misses++
			}
		}
		if misses == 0 {
			return math.Inf(1)
		}
		return insts / misses
	}
	worstIntensive, bestNon := 0.0, math.Inf(1)
	for _, name := range Names() {
		m := instsPerMiss(name)
		if MustGet(name).Intensive {
			if m > worstIntensive {
				worstIntensive = m
			}
		} else if m < bestNon {
			bestNon = m
		}
	}
	if worstIntensive >= bestNon {
		t.Errorf("intensity classes overlap: worst intensive %.0f insts/miss ≥ best non-intensive %.0f",
			worstIntensive, bestNon)
	}
}

func TestHotReuseProducesRepeats(t *testing.T) {
	// The reuse machinery must revisit lines: over a long window, a
	// benchmark with a hot set sees a substantial fraction of repeated
	// lines (this is what gives the LLC something to hit).
	g := NewGenerator(MustGet("gcc"), 11)
	seen := map[uint64]bool{}
	repeats, hot := 0, 0
	for i := 0; i < 60000; i++ {
		r, _ := g.Next()
		if int64(r.Line) >= streamBase {
			continue
		}
		hot++
		if seen[r.Line] {
			repeats++
		}
		seen[r.Line] = true
	}
	if hot == 0 {
		t.Fatal("no hot accesses")
	}
	if frac := float64(repeats) / float64(hot); frac < 0.3 {
		t.Errorf("hot repeat fraction %.2f, want ≥0.3", frac)
	}
}

func TestReuseDistanceSpansLLCSizes(t *testing.T) {
	// Reuse distances must be spread (not all short, not all beyond any
	// cache): measure stack-distance-proxy = gap in access index between
	// a line's consecutive uses.
	g := NewGenerator(MustGet("bzip2"), 5)
	lastUse := map[uint64]int{}
	short, mid, long := 0, 0, 0
	idx := 0
	for i := 0; i < 200000; i++ {
		r, _ := g.Next()
		if int64(r.Line) >= streamBase {
			continue
		}
		idx++
		if prev, ok := lastUse[r.Line]; ok {
			d := idx - prev
			switch {
			case d < 4096:
				short++
			case d < 65536:
				mid++
			default:
				long++
			}
		}
		lastUse[r.Line] = idx
	}
	if short == 0 || mid == 0 {
		t.Errorf("reuse distances not spread: short=%d mid=%d long=%d", short, mid, long)
	}
}

func TestOnOffDutyCycle(t *testing.T) {
	// For phase-structured benchmarks the fraction of instructions spent
	// in ON phases must approximate OnMean/(OnMean+OffMean).
	p := MustGet("gcc")
	g := NewGenerator(p, 9)
	var memInsts, totalInsts float64
	const n = 50000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		totalInsts += float64(r.Gap) + 1
		memInsts += p.OnGapMean + 1
	}
	wantOnFrac := p.OnMeanInsts / (p.OnMeanInsts + p.OffMeanInsts)
	gotOnFrac := memInsts / totalInsts
	if math.Abs(gotOnFrac-wantOnFrac) > 0.12 {
		t.Errorf("ON duty cycle %.2f, want ≈%.2f", gotOnFrac, wantOnFrac)
	}
}
