// Package workload models the paper's benchmark suite. SPEC CPU2006
// binaries (run under Zsim+Pin in the paper) are not available offline,
// so each benchmark is modeled as a parameterized, deterministic trace
// generator whose memory-controller-visible behaviour — intensity,
// working-set size, row/bank locality, multi-delta stride structure, and
// arrival burstiness — reproduces the published characteristics the ROP
// mechanism depends on (see DESIGN.md §1).
//
// A trace is a stream of Records at the LLC-access level: the core front
// end (internal/cpu) replays it against a simulated LLC, and the misses
// form the memory-controller request stream.
package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Record is one memory operation in a trace.
type Record struct {
	// Gap is the number of non-memory instructions executed since the
	// previous memory operation.
	Gap uint32
	// Line is the cache-line index in the benchmark's address space.
	Line uint64
	// Write marks store operations; everything else is a load.
	Write bool
}

// Stream produces trace records. Implementations must be deterministic
// for a fixed construction seed.
type Stream interface {
	// Next returns the next record. ok is false when the stream is
	// exhausted (generators are typically infinite).
	Next() (r Record, ok bool)
}

// SliceStream replays a fixed record slice.
type SliceStream struct {
	recs []Record
	pos  int
}

// NewSliceStream builds a stream over recs (not copied).
func NewSliceStream(recs []Record) *SliceStream {
	return &SliceStream{recs: recs}
}

// Next implements Stream.
func (s *SliceStream) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// Take materializes up to n records from a stream.
func Take(s Stream, n int) []Record {
	out := make([]Record, 0, n)
	for len(out) < n {
		r, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// binaryMagic identifies the binary trace format.
var binaryMagic = [4]byte{'R', 'O', 'P', '1'}

// WriteBinary encodes records to w in the compact binary trace format:
// a 4-byte magic followed by varint-encoded (gap, line-delta zigzag,
// flags) triples.
func WriteBinary(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	prevLine := uint64(0)
	for _, r := range recs {
		n := binary.PutUvarint(buf[:], uint64(r.Gap))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		delta := int64(r.Line) - int64(prevLine)
		n = binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prevLine = r.Line
		flag := byte(0)
		if r.Write {
			flag = 1
		}
		if err := bw.WriteByte(flag); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace written by WriteBinary.
func ReadBinary(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("workload: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, errors.New("workload: not a ROP1 binary trace")
	}
	var recs []Record
	prevLine := uint64(0)
	for {
		gap, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("workload: reading gap: %w", err)
		}
		if gap > 1<<32-1 {
			return nil, fmt.Errorf("workload: gap %d overflows uint32", gap)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("workload: reading line delta: %w", err)
		}
		line := uint64(int64(prevLine) + delta)
		prevLine = line
		flag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("workload: reading flags: %w", err)
		}
		if flag > 1 {
			return nil, fmt.Errorf("workload: bad flag byte %#x", flag)
		}
		recs = append(recs, Record{Gap: uint32(gap), Line: line, Write: flag == 1})
	}
}

// WriteText encodes records to w in a human-readable one-per-line format:
// "<gap> <line-hex> R|W".
func WriteText(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d %x %s\n", r.Gap, r.Line, op); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes the text format written by WriteText. Blank lines and
// lines starting with '#' are ignored.
func ReadText(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var recs []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("workload: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		gap, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: gap: %w", lineNo, err)
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: line: %w", lineNo, err)
		}
		var write bool
		switch fields[2] {
		case "R":
			write = false
		case "W":
			write = true
		default:
			return nil, fmt.Errorf("workload: line %d: op %q", lineNo, fields[2])
		}
		recs = append(recs, Record{Gap: uint32(gap), Line: addr, Write: write})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
