package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ropsim/internal/workload"
)

// The text trace grammar (normative spec: docs/TRACES.md), one request
// per line in the DRAMSim2/Ramulator style:
//
//	<cycle> <op> <hex-addr>
//
// cycle is a non-decreasing decimal cycle stamp; op is R/W (also
// RD/WR/READ/WRITE, case-insensitive); addr is a hexadecimal byte
// address with optional 0x prefix. Blank lines and comments starting
// with '#' or '//' are ignored; fields may be separated by any
// whitespace. Cycle stamps become Record gaps (successive differences,
// saturating at 2^32-1) and byte addresses become cache-line indexes
// (addr >> 6 for 64-byte lines).

// addrShift converts a byte address to a cache-line index (64 B lines).
const addrShift = 6

// maxTextLine bounds one input line's length; longer lines are hostile
// input and error out instead of growing the scanner without bound.
const maxTextLine = 1 << 20

// ParseText decodes a text trace per the grammar above. Any malformed
// line — wrong field count, bad number, unknown op, a cycle stamp that
// goes backwards — returns an error naming the line; hostile input
// never panics or allocates unboundedly.
func ParseText(r io.Reader) ([]workload.Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTextLine)
	var recs []workload.Record
	var prevCycle uint64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "//") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields (<cycle> <R|W> <hex-addr>), got %d",
				lineNo, len(fields))
		}
		cycle, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: cycle: %w", lineNo, err)
		}
		if cycle < prevCycle {
			return nil, fmt.Errorf("trace: line %d: cycle %d goes backwards (previous %d)",
				lineNo, cycle, prevCycle)
		}
		var write bool
		switch strings.ToUpper(fields[1]) {
		case "R", "RD", "READ":
			write = false
		case "W", "WR", "WRITE":
			write = true
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[1])
		}
		addrField := strings.TrimPrefix(strings.ToLower(fields[2]), "0x")
		addrVal, err := strconv.ParseUint(addrField, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: address: %w", lineNo, err)
		}
		gap := cycle - prevCycle
		if gap > uint64(^uint32(0)) {
			gap = uint64(^uint32(0))
		}
		prevCycle = cycle
		recs = append(recs, workload.Record{
			Gap:   uint32(gap),
			Line:  addrVal >> addrShift,
			Write: write,
		})
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("trace: line %d: longer than %d bytes", lineNo+1, maxTextLine)
		}
		return nil, err
	}
	return recs, nil
}

// WriteTraceText encodes records in the text grammar: cycle stamps are
// accumulated gaps and addresses are line<<6, so
// ParseText(WriteTraceText(recs)) reproduces recs exactly for any
// trace with lines below 2^58 (every .ropt trace qualifies).
func WriteTraceText(w io.Writer, recs []workload.Record) error {
	bw := bufio.NewWriter(w)
	cycle := uint64(0)
	for _, r := range recs {
		cycle += uint64(r.Gap)
		op := "R"
		if r.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%d %s 0x%x\n", cycle, op, r.Line<<addrShift); err != nil {
			return err
		}
	}
	return bw.Flush()
}
