package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"

	"ropsim/internal/stats"
	"ropsim/internal/workload"
)

// randomRecords builds a reproducible record slice exercising wide
// gaps, forward/backward deltas and both ops.
func randomRecords(n int, seed int64) []workload.Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]workload.Record, n)
	line := uint64(1 << 20)
	for i := range recs {
		switch rng.Intn(4) {
		case 0:
			line++
		case 1:
			line += uint64(rng.Intn(4096))
		case 2:
			d := uint64(rng.Intn(1 << 18))
			if d > line {
				d = line
			}
			line -= d
		case 3:
			line = uint64(rng.Int63n(1 << 44))
		}
		recs[i] = workload.Record{
			Gap:   uint32(rng.Intn(1 << 16)),
			Line:  line,
			Write: rng.Intn(3) == 0,
		}
	}
	return recs
}

func encodeAll(t *testing.T, recs []workload.Record, block int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeRoptBlocked(&buf, recs, block); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

func TestRoptRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 5, 4096, 4097, 10_000} {
		recs := randomRecords(n, int64(n)+1)
		data := encodeAll(t, recs, 512)
		tr, err := DecodeRopt(data)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if tr.Records() != n {
			t.Fatalf("n=%d: Records()=%d", n, tr.Records())
		}
		got, err := tr.ReadAll()
		if err != nil {
			t.Fatalf("n=%d: ReadAll: %v", n, err)
		}
		if n == 0 {
			if len(got) != 0 {
				t.Fatalf("n=0: got %d records", len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

func TestRoptCanonicalReencode(t *testing.T) {
	recs := randomRecords(5000, 7)
	data := encodeAll(t, recs, DefaultBlockRecords)
	tr, err := DecodeRopt(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	again := encodeAll(t, got, DefaultBlockRecords)
	if !bytes.Equal(data, again) {
		t.Fatal("decode→re-encode is not byte-identical (encoding not canonical)")
	}
}

func TestRoptStreamMatchesReadAll(t *testing.T) {
	recs := randomRecords(3000, 11)
	tr, err := DecodeRopt(encodeAll(t, recs, 256))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stream()
	for i, want := range recs {
		got, ok := s.Next()
		if !ok || got != want {
			t.Fatalf("record %d: got %+v ok=%v want %+v", i, got, ok, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not end")
	}
	if s.Err() != nil {
		t.Fatalf("stream error: %v", s.Err())
	}
}

// TestRoptSeekVsLinear is the index-seek-vs-linear-scan equivalence
// property: for any seek point, the seeked stream must produce exactly
// the linear stream's suffix.
func TestRoptSeekVsLinear(t *testing.T) {
	recs := randomRecords(2500, 13)
	tr, err := DecodeRopt(encodeAll(t, recs, 128))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	points := []int{0, 1, 127, 128, 129, len(recs) - 1, len(recs)}
	for i := 0; i < 50; i++ {
		points = append(points, rng.Intn(len(recs)+1))
	}
	for _, p := range points {
		s, err := tr.Seek(p)
		if err != nil {
			t.Fatalf("seek %d: %v", p, err)
		}
		for j := p; j < len(recs); j++ {
			got, ok := s.Next()
			if !ok || got != recs[j] {
				t.Fatalf("seek %d record %d: got %+v ok=%v want %+v", p, j, got, ok, recs[j])
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("seek %d: stream did not end", p)
		}
	}
	if _, err := tr.Seek(-1); err == nil {
		t.Fatal("seek -1 succeeded")
	}
	if _, err := tr.Seek(len(recs) + 1); err == nil {
		t.Fatal("seek past end succeeded")
	}
}

func TestRoptHostileHeaders(t *testing.T) {
	recs := randomRecords(600, 17)
	good := encodeAll(t, recs, 100)

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":             {},
		"short header":      good[:31],
		"bad magic":         mutate(func(b []byte) { b[0] = 'X' }),
		"bad version":       mutate(func(b []byte) { binary.LittleEndian.PutUint16(b[4:], 9) }),
		"bad flags":         mutate(func(b []byte) { binary.LittleEndian.PutUint16(b[6:], 1) }),
		"zero block size":   mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[16:], 0) }),
		"huge block size":   mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[16:], 1<<24) }),
		"inflated records":  mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[8:], 1<<40) }),
		"wrong block count": mutate(func(b []byte) { binary.LittleEndian.PutUint32(b[20:], 1) }),
		"index off the end": mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[24:], uint64(len(good))+100) }),
		"index before hdr":  mutate(func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 4) }),
		"truncated file":    good[:len(good)-5],
		"trailing garbage":  append(append([]byte(nil), good...), 0xEE),
		"reserved set": mutate(func(b []byte) {
			idx := binary.LittleEndian.Uint64(b[24:])
			binary.LittleEndian.PutUint32(b[idx+12:], 7)
		}),
		"non-contiguous block": mutate(func(b []byte) {
			idx := binary.LittleEndian.Uint64(b[24:])
			binary.LittleEndian.PutUint64(b[idx+16:], 99)
		}),
	}
	for name, data := range cases {
		if _, err := DecodeRopt(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestRoptCorruptPayloadErrors(t *testing.T) {
	recs := randomRecords(300, 19)
	good := encodeAll(t, recs, 50)
	// Scribble over payload bytes; structural decode may pass but
	// ReadAll must either succeed or error — never panic. Flipping a
	// varint continuation bit typically desyncs the block.
	for i := headerSize; i < headerSize+40; i++ {
		b := append([]byte(nil), good...)
		b[i] ^= 0x80
		tr, err := DecodeRopt(b)
		if err != nil {
			continue
		}
		_, _ = tr.ReadAll() // must not panic
	}
}

func TestEncodeRejectsWideLines(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeRopt(&buf, []workload.Record{{Line: 1 << 63}})
	if err == nil {
		t.Fatal("encoding a 2^63 line succeeded")
	}
}

func TestParseTextGrammar(t *testing.T) {
	in := `
# comment
// also a comment
10 R 0x1000
  25   WR   1040
25 read 0x0
125 WRITE 0xffffffffffffffff
`
	recs, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []workload.Record{
		{Gap: 10, Line: 0x1000 >> 6, Write: false},
		{Gap: 15, Line: 0x1040 >> 6, Write: true},
		{Gap: 0, Line: 0, Write: false},
		{Gap: 100, Line: 0xffffffffffffffff >> 6, Write: true},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("got %+v want %+v", recs, want)
	}
}

func TestParseTextErrors(t *testing.T) {
	cases := map[string]string{
		"field count":     "1 R\n",
		"bad cycle":       "x R 0x0\n",
		"bad op":          "1 Q 0x0\n",
		"bad addr":        "1 R zz\n",
		"backwards cycle": "10 R 0x0\n5 R 0x0\n",
		"huge line":       strings.Repeat("a", maxTextLine+2),
	}
	for name, in := range cases {
		if _, err := ParseText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	recs := randomRecords(2000, 23)
	var buf bytes.Buffer
	if err := WriteTraceText(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("text round trip mismatch")
	}
}

func TestSourceHelpers(t *testing.T) {
	if !IsSource("trace:foo.ropt") || IsSource("libquantum") {
		t.Fatal("IsSource misclassifies")
	}
	if SourcePath("trace:foo.ropt") != "foo.ropt" {
		t.Fatalf("SourcePath = %q", SourcePath("trace:foo.ropt"))
	}
	if SourcePath("libquantum") != "" || SourcePath("trace:") != "" {
		t.Fatal("SourcePath should be empty for non-sources")
	}
}

func TestReplayStreamFoldsAndCounts(t *testing.T) {
	wide := uint64(3)<<LineBits | 42
	rs := NewReplayStream([]workload.Record{
		{Line: 1, Write: false},
		{Line: wide, Write: true},
	})
	reg := stats.NewRegistry()
	rs.RegisterMetrics(reg.Sub("trace.core0"))
	r1, _ := rs.Next()
	r2, ok := rs.Next()
	if !ok {
		t.Fatal("stream ended early")
	}
	if r1.Line != 1 {
		t.Fatalf("in-range line changed: %d", r1.Line)
	}
	if r2.Line != FoldLine(wide) || r2.Line > LineMask {
		t.Fatalf("wide line not folded: %#x", r2.Line)
	}
	if _, ok := rs.Next(); ok {
		t.Fatal("stream did not end")
	}
	snap := reg.Snapshot()
	for path, want := range map[string]float64{
		"trace.core0.records_replayed": 2,
		"trace.core0.reads":            1,
		"trace.core0.writes":           1,
		"trace.core0.folded_lines":     1,
	} {
		if v, ok := snap.Field(path, "value"); !ok || v != want {
			t.Errorf("%s = %v (ok=%v), want %v", path, v, ok, want)
		}
	}
}

func TestRecorderTee(t *testing.T) {
	recs := randomRecords(100, 29)
	rec := NewRecorder(workload.NewSliceStream(recs))
	got := workload.Take(rec, 40)
	if !reflect.DeepEqual(got, recs[:40]) {
		t.Fatal("tee altered the stream")
	}
	if !reflect.DeepEqual(rec.Records(), recs[:40]) {
		t.Fatal("recorder did not retain exactly the delivered records")
	}
}

func TestLoadFileSniffsFormats(t *testing.T) {
	recs := randomRecords(500, 31)
	dir := t.TempDir()

	var bin bytes.Buffer
	if err := EncodeRopt(&bin, recs); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := WriteTraceText(&txt, recs); err != nil {
		t.Fatal(err)
	}
	binPath := dir + "/t.ropt"
	txtPath := dir + "/t.trace"
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(txtPath, txt.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{binPath, txtPath} {
		got, err := LoadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("%s: loaded records differ", p)
		}
	}
	if _, err := LoadFile(dir + "/missing"); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

func TestCloneFitsGeneratorTrace(t *testing.T) {
	prof := workload.MustGet("libquantum")
	recs := workload.Take(workload.NewGenerator(prof, 42), 20_000)
	fit, err := Clone(recs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fit.Profile.Validate(); err != nil {
		t.Fatalf("fitted profile invalid: %v", err)
	}
	if fe := fit.FitError(); fe > 0.5 {
		t.Fatalf("fit error %.3f too large for a generator-produced trace", fe)
	}
	// The fitted output and hand-written profiles share the parameter
	// interface (the ISSUE's "common interface" satellite).
	var params []workload.Parameterized = []workload.Parameterized{prof, fit}
	for _, p := range params {
		if p.WorkloadParams().OnGapMean < 0 {
			t.Fatal("negative OnGapMean via Parameterized")
		}
	}

	reg := stats.NewRegistry()
	fit.RegisterMetrics(reg.Sub("trace.fit"))
	if _, ok := reg.Snapshot().Field("trace.fit.fit_error", "value"); !ok {
		t.Fatal("trace.fit.fit_error not registered")
	}
}

func TestCloneRejectsTinyTraces(t *testing.T) {
	if _, err := Clone(randomRecords(5, 1), 1); err == nil {
		t.Fatal("cloning a 5-record trace succeeded")
	}
}

func TestMeasureBurstiness(t *testing.T) {
	// A trace alternating dense windows and empty windows should show
	// intermediate λ/β; a dense-only trace should show λ≈1.
	var bursty []workload.Record
	for w := 0; w < 40; w++ {
		if w%2 == 0 {
			for i := 0; i < 50; i++ {
				bursty = append(bursty, workload.Record{Gap: 19, Line: uint64(i)})
			}
		} else {
			bursty = append(bursty, workload.Record{Gap: 2000, Line: 0})
		}
	}
	s := Measure(bursty, 1000)
	if s.Lambda >= 0.99 {
		t.Fatalf("bursty trace measured λ=%.3f", s.Lambda)
	}
	dense := randomRecords(5000, 3)
	for i := range dense {
		dense[i].Gap = 10
	}
	if s := Measure(dense, 1000); s.Lambda < 0.99 {
		t.Fatalf("dense trace measured λ=%.3f", s.Lambda)
	}
	if s := Measure(nil, 0); s.Records != 0 {
		t.Fatal("empty measure not zero")
	}
}
