// Package trace is the real-trace front-end: it ingests
// DRAMSim2/Ramulator-style text address traces and the repo's own
// compact binary .ropt format, replays them through the simulator as a
// first-class workload source ("trace:<path>" anywhere a benchmark
// name is accepted), captures the per-core request stream of any run
// for byte-exact replay, and statistically clones a captured trace
// back into internal/workload profile parameters.
//
// Every decoder in this package is hostile-input-safe in the style of
// internal/campaign/proto.go: malformed input of any shape returns an
// error — never a panic, never an unbounded allocation, never a hang.
// docs/TRACES.md is the normative format specification and recipe
// book; TestTracesDocComplete keeps it honest.
package trace

import (
	"strings"

	"ropsim/internal/stats"
	"ropsim/internal/workload"
)

// Prefix marks a benchmark name as a trace source: "trace:<path>"
// replays the trace file at <path> (text or .ropt, sniffed by
// content) instead of a synthetic generator.
const Prefix = "trace:"

// IsSource reports whether a benchmark name is a trace source.
func IsSource(bench string) bool { return strings.HasPrefix(bench, Prefix) }

// SourcePath extracts the file path from a "trace:<path>" benchmark
// name. It returns "" when bench is not a trace source or names no
// path.
func SourcePath(bench string) string {
	if !IsSource(bench) {
		return ""
	}
	return bench[len(Prefix):]
}

// LineBits is the width of the per-core cache-line index space. The
// simulator packs the source core ID above this many bits when forming
// LLC/DRAM keys (sim.coreKey), so external trace lines wider than this
// would alias into another core's space; replay folds them instead.
const LineBits = 44

// LineMask masks a line index to LineBits bits.
const LineMask = 1<<LineBits - 1

// FoldLine folds an arbitrary 64-bit line index into the simulator's
// LineBits-bit per-core line space. XOR-folding the high bits (rather
// than truncating) keeps distinct high regions of a wide trace distinct
// in the folded space with high probability.
func FoldLine(line uint64) uint64 {
	if line <= LineMask {
		return line
	}
	return (line ^ line>>LineBits) & LineMask
}

// ReplayStream replays a fixed record slice as a workload.Stream,
// folding out-of-range lines into the simulator's line space and
// counting what it delivers. One ReplayStream drives one core; its
// metrics register under "trace.core<N>" for trace-driven runs (see
// docs/METRICS.md).
type ReplayStream struct {
	// Replayed counts records delivered to the core.
	Replayed stats.Counter
	// Reads counts delivered load records.
	Reads stats.Counter
	// Writes counts delivered store records.
	Writes stats.Counter
	// FoldedLines counts delivered records whose line index exceeded
	// LineBits bits and was folded by FoldLine. A nonzero value means
	// the trace's address space is wider than the simulator models.
	FoldedLines stats.Counter

	recs []workload.Record
	pos  int
}

// NewReplayStream builds a replay stream over recs (not copied).
func NewReplayStream(recs []workload.Record) *ReplayStream {
	return &ReplayStream{recs: recs}
}

// Len reports the total number of records in the stream.
func (s *ReplayStream) Len() int { return len(s.recs) }

// Reset rewinds the stream (counters keep accumulating).
func (s *ReplayStream) Reset() { s.pos = 0 }

// Next implements workload.Stream.
func (s *ReplayStream) Next() (workload.Record, bool) {
	if s.pos >= len(s.recs) {
		return workload.Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	if r.Line > LineMask {
		r.Line = FoldLine(r.Line)
		s.FoldedLines.Inc()
	}
	s.Replayed.Inc()
	if r.Write {
		s.Writes.Inc()
	} else {
		s.Reads.Inc()
	}
	return r, true
}

// RegisterMetrics registers the stream's counters under reg.
func (s *ReplayStream) RegisterMetrics(reg *stats.Registry) {
	reg.Register("records_replayed", &s.Replayed)
	reg.Register("reads", &s.Reads)
	reg.Register("writes", &s.Writes)
	reg.Register("folded_lines", &s.FoldedLines)
}

// Recorder tees a workload.Stream, retaining every record it delivers.
// sim.Run wraps each core's stream in a Recorder when
// Config.CaptureTraces is set; the retained records are exactly the
// request stream the core consumed, so replaying them reproduces the
// run byte-for-byte.
type Recorder struct {
	src  workload.Stream
	recs []workload.Record
}

// NewRecorder wraps src in a recording tee.
func NewRecorder(src workload.Stream) *Recorder {
	return &Recorder{src: src}
}

// Next implements workload.Stream, recording each delivered record.
func (r *Recorder) Next() (workload.Record, bool) {
	rec, ok := r.src.Next()
	if ok {
		r.recs = append(r.recs, rec)
	}
	return rec, ok
}

// Records returns the records delivered so far (not copied).
func (r *Recorder) Records() []workload.Record { return r.recs }
