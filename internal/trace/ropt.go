package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"ropsim/internal/workload"
)

// The .ropt binary trace format (normative spec: docs/TRACES.md):
//
//	header  32 bytes, little-endian:
//	        [0:4]   magic "ROPT"
//	        [4:6]   version   uint16 (currently 1)
//	        [6:8]   flags     uint16 (must be 0 in version 1)
//	        [8:16]  records   uint64 (total record count)
//	        [16:20] blockRecs uint32 (records per block, last may be short)
//	        [20:24] blocks    uint32 (= ceil(records/blockRecs))
//	        [24:32] indexOff  uint64 (file offset of the block index)
//	blocks  contiguous from offset 32 to indexOff. Block i holds records
//	        [i*blockRecs, min((i+1)*blockRecs, records)). Each record is
//	        uvarint(gap<<1 | writeBit) followed by svarint(lineDelta);
//	        the delta baseline resets to 0 at every block start, so each
//	        block decodes independently (this is what makes O(1) seek
//	        possible). Lines must be < 2^63.
//	index   blocks entries of 16 bytes each at indexOff: block byte
//	        offset uint64, block byte length uint32, reserved uint32
//	        (must be 0). The file ends exactly after the index.
//
// Decoding validates everything before trusting it: magic, version,
// count/index consistency, block contiguity, exact per-block record
// counts, varint well-formedness, and gap/line ranges. Allocations are
// bounded by the actual file size, never by claimed counts alone.

const (
	// Version is the .ropt format version this package reads and writes.
	Version = 1
	// DefaultBlockRecords is the encoder's default block size in
	// records: large enough to amortize index overhead, small enough
	// that a seek decodes only a few tens of KB.
	DefaultBlockRecords = 4096
	// MaxBlockRecords bounds the per-block record count a file may
	// declare, capping per-block decode allocations.
	MaxBlockRecords = 1 << 20

	headerSize     = 32
	indexEntrySize = 16
	// maxLine is the exclusive upper bound on encodable line indexes
	// (line deltas are signed 64-bit).
	maxLine = uint64(1) << 63
)

// roptMagic identifies a .ropt file.
var roptMagic = [4]byte{'R', 'O', 'P', 'T'}

// EncodeRopt writes recs to w in the .ropt format with
// DefaultBlockRecords records per block.
func EncodeRopt(w io.Writer, recs []workload.Record) error {
	return EncodeRoptBlocked(w, recs, DefaultBlockRecords)
}

// EncodeRoptBlocked is EncodeRopt with an explicit block size. The
// encoding is canonical: identical (recs, blockRecords) inputs produce
// identical bytes, so re-encoding a decoded trace round-trips exactly.
func EncodeRoptBlocked(w io.Writer, recs []workload.Record, blockRecords int) error {
	if blockRecords < 1 || blockRecords > MaxBlockRecords {
		return fmt.Errorf("trace: block size %d outside [1, %d]", blockRecords, MaxBlockRecords)
	}
	for i, r := range recs {
		if r.Line >= maxLine {
			return fmt.Errorf("trace: record %d line %#x exceeds 63 bits", i, r.Line)
		}
	}
	blocks := (len(recs) + blockRecords - 1) / blockRecords

	var body bytes.Buffer
	index := make([]byte, 0, blocks*indexEntrySize)
	var buf [binary.MaxVarintLen64]byte
	for b := 0; b < blocks; b++ {
		start := body.Len()
		prev := int64(0)
		lo, hi := b*blockRecords, (b+1)*blockRecords
		if hi > len(recs) {
			hi = len(recs)
		}
		for _, r := range recs[lo:hi] {
			op := uint64(r.Gap) << 1
			if r.Write {
				op |= 1
			}
			body.Write(buf[:binary.PutUvarint(buf[:], op)])
			body.Write(buf[:binary.PutVarint(buf[:], int64(r.Line)-prev)])
			prev = int64(r.Line)
		}
		var entry [indexEntrySize]byte
		binary.LittleEndian.PutUint64(entry[0:], uint64(headerSize+start))
		binary.LittleEndian.PutUint32(entry[8:], uint32(body.Len()-start))
		index = append(index, entry[:]...)
	}

	var hdr [headerSize]byte
	copy(hdr[0:], roptMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:], Version)
	binary.LittleEndian.PutUint16(hdr[6:], 0)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(recs)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(blockRecords))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(blocks))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(headerSize+body.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(index)
	return err
}

// blockRef locates one decoded-on-demand block inside the file image.
type blockRef struct{ off, end int }

// Ropt is a validated, lazily decoded .ropt trace. DecodeRopt checks
// the header and index structurally; record payloads are decoded per
// block on access, so seeking into a multi-million-record trace does
// not decode it all.
type Ropt struct {
	data         []byte
	records      int
	blockRecords int
	blocks       []blockRef
}

// DecodeRopt parses and structurally validates a .ropt file image.
// The data slice is retained (not copied).
func DecodeRopt(data []byte) (*Ropt, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("trace: ropt file too short (%d bytes)", len(data))
	}
	if !bytes.Equal(data[0:4], roptMagic[:]) {
		return nil, fmt.Errorf("trace: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, fmt.Errorf("trace: unsupported ropt version %d (want %d)", v, Version)
	}
	if f := binary.LittleEndian.Uint16(data[6:]); f != 0 {
		return nil, fmt.Errorf("trace: unsupported flags %#x", f)
	}
	records := binary.LittleEndian.Uint64(data[8:])
	blockRecords := binary.LittleEndian.Uint32(data[16:])
	blockCount := binary.LittleEndian.Uint32(data[20:])
	indexOff := binary.LittleEndian.Uint64(data[24:])

	if blockRecords < 1 || blockRecords > MaxBlockRecords {
		return nil, fmt.Errorf("trace: block size %d outside [1, %d]", blockRecords, MaxBlockRecords)
	}
	wantBlocks := (records + uint64(blockRecords) - 1) / uint64(blockRecords)
	if uint64(blockCount) != wantBlocks {
		return nil, fmt.Errorf("trace: %d blocks for %d records of %d (want %d)",
			blockCount, records, blockRecords, wantBlocks)
	}
	if indexOff < headerSize || indexOff > uint64(len(data)) {
		return nil, fmt.Errorf("trace: index offset %d outside file of %d bytes", indexOff, len(data))
	}
	if want := indexOff + uint64(blockCount)*indexEntrySize; want != uint64(len(data)) {
		return nil, fmt.Errorf("trace: file is %d bytes, header implies %d", len(data), want)
	}
	// Every record costs at least 2 body bytes, which bounds the claimed
	// count by the actual payload and thereby every decode allocation.
	if body := indexOff - headerSize; records > 2*body {
		return nil, fmt.Errorf("trace: %d records cannot fit in %d body bytes", records, body)
	}

	t := &Ropt{
		data:         data,
		records:      int(records),
		blockRecords: int(blockRecords),
		blocks:       make([]blockRef, blockCount),
	}
	next := uint64(headerSize)
	for i := range t.blocks {
		e := data[indexOff+uint64(i)*indexEntrySize:]
		off := binary.LittleEndian.Uint64(e[0:])
		length := binary.LittleEndian.Uint32(e[8:])
		if rsv := binary.LittleEndian.Uint32(e[12:]); rsv != 0 {
			return nil, fmt.Errorf("trace: block %d reserved field %#x", i, rsv)
		}
		if off != next {
			return nil, fmt.Errorf("trace: block %d at offset %d, want contiguous %d", i, off, next)
		}
		next = off + uint64(length)
		if next > indexOff {
			return nil, fmt.Errorf("trace: block %d overruns index (ends %d, index at %d)", i, next, indexOff)
		}
		t.blocks[i] = blockRef{off: int(off), end: int(next)}
	}
	if len(t.blocks) > 0 && next != indexOff {
		return nil, fmt.Errorf("trace: %d byte gap between blocks and index", indexOff-next)
	}
	return t, nil
}

// LoadFile reads the trace file at path in either supported format,
// sniffing by content: a file beginning with the "ROPT" magic decodes
// as .ropt, anything else parses as a text trace. This is the loader
// behind the "trace:<path>" workload source.
func LoadFile(path string) ([]workload.Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= len(roptMagic) && bytes.Equal(data[:len(roptMagic)], roptMagic[:]) {
		t, err := DecodeRopt(data)
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		recs, err := t.ReadAll()
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		return recs, nil
	}
	recs, err := ParseText(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return recs, nil
}

// ReadRoptFile reads and validates the .ropt file at path.
func ReadRoptFile(path string) (*Ropt, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := DecodeRopt(data)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return t, nil
}

// Records reports the trace's total record count.
func (t *Ropt) Records() int { return t.records }

// Blocks reports the block count.
func (t *Ropt) Blocks() int { return len(t.blocks) }

// BlockRecords reports the records-per-block the file was encoded with.
func (t *Ropt) BlockRecords() int { return t.blockRecords }

// blockLen reports how many records block b holds.
func (t *Ropt) blockLen(b int) int {
	n := t.records - b*t.blockRecords
	if n > t.blockRecords {
		n = t.blockRecords
	}
	return n
}

// Block decodes block b into dst (appending) and returns the result.
func (t *Ropt) Block(b int, dst []workload.Record) ([]workload.Record, error) {
	if b < 0 || b >= len(t.blocks) {
		return nil, fmt.Errorf("trace: block %d of %d", b, len(t.blocks))
	}
	ref := t.blocks[b]
	buf := t.data[ref.off:ref.end]
	prev := int64(0)
	want := t.blockLen(b)
	for i := 0; i < want; i++ {
		op, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("trace: block %d record %d: bad op varint", b, i)
		}
		buf = buf[n:]
		if op>>1 > uint64(^uint32(0)) {
			return nil, fmt.Errorf("trace: block %d record %d: gap %d overflows uint32", b, i, op>>1)
		}
		delta, n := binary.Varint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("trace: block %d record %d: bad delta varint", b, i)
		}
		buf = buf[n:]
		// prev is always in [0, 2^63) and delta in [-2^63, 2^63), so the
		// sum cannot wrap below zero without being negative: one sign
		// check catches every out-of-range line.
		line := prev + delta
		if line < 0 {
			return nil, fmt.Errorf("trace: block %d record %d: line delta %d out of range", b, i, delta)
		}
		prev = line
		dst = append(dst, workload.Record{
			Gap:   uint32(op >> 1),
			Line:  uint64(line),
			Write: op&1 == 1,
		})
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("trace: block %d: %d trailing bytes after %d records", b, len(buf), want)
	}
	return dst, nil
}

// ReadAll decodes every record. Decode errors anywhere in the payload
// surface here, so a nil error means the whole file is well-formed.
func (t *Ropt) ReadAll() ([]workload.Record, error) {
	out := make([]workload.Record, 0, t.records)
	for b := range t.blocks {
		var err error
		out, err = t.Block(b, out)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RoptStream iterates a Ropt trace block by block, implementing
// workload.Stream without decoding the whole file up front. Because
// Stream.Next has no error channel, a corrupt block ends the stream
// early; Err reports what happened.
type RoptStream struct {
	t    *Ropt
	next int // next block to decode
	cur  []workload.Record
	pos  int
	err  error
}

// Stream returns a cursor positioned at record 0.
func (t *Ropt) Stream() *RoptStream { return &RoptStream{t: t} }

// Seek returns a cursor positioned at record rec, decoding only the
// block that holds it — O(1) in the trace length.
func (t *Ropt) Seek(rec int) (*RoptStream, error) {
	if rec < 0 || rec > t.records {
		return nil, fmt.Errorf("trace: seek to record %d of %d", rec, t.records)
	}
	s := &RoptStream{t: t}
	if rec == t.records {
		s.next = len(t.blocks)
		return s, nil
	}
	b := rec / t.blockRecords
	cur, err := t.Block(b, nil)
	if err != nil {
		return nil, err
	}
	s.cur = cur
	s.pos = rec - b*t.blockRecords
	s.next = b + 1
	return s, nil
}

// Next implements workload.Stream.
func (s *RoptStream) Next() (workload.Record, bool) {
	for s.pos >= len(s.cur) {
		if s.err != nil || s.next >= len(s.t.blocks) {
			return workload.Record{}, false
		}
		cur, err := s.t.Block(s.next, s.cur[:0])
		if err != nil {
			s.err = err
			return workload.Record{}, false
		}
		s.cur = cur
		s.pos = 0
		s.next++
	}
	r := s.cur[s.pos]
	s.pos++
	return r, true
}

// Err reports the decode error that ended the stream early, if any.
func (s *RoptStream) Err() error { return s.err }
