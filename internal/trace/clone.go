package trace

import (
	"fmt"

	"ropsim/internal/stats"
	"ropsim/internal/workload"
)

// DefaultCloneWindow is the burstiness-measurement window in
// instructions. It matches the ≈25k instructions per tREFI the paper's
// Table I λ/β characterization uses, so fitted burstiness lands in the
// same regime the refresh policies care about.
const DefaultCloneWindow = 25_000

// Summary is the statistical fingerprint of a trace: the quantities
// the workload cloner fits and reports error against. All fractions
// are in [0, 1].
type Summary struct {
	// Records is the trace length in records.
	Records int
	// Insts is the total instruction count the trace spans (each record
	// is one memory instruction preceded by Gap non-memory ones).
	Insts float64
	// APKI is memory accesses per kilo-instruction (the
	// controller-visible analogue of MPKI; the traces this package
	// handles are LLC-access-level streams).
	APKI float64
	// ReadFrac is the fraction of load records.
	ReadFrac float64
	// SeqFrac is the fraction of records whose line is exactly the
	// successor of the previous record's line — the row-locality proxy
	// the delta table is fitted from.
	SeqFrac float64
	// Lambda is the burstiness persistence P{window i has accesses |
	// window i-1 had accesses} over fixed instruction windows, the
	// trace-level analogue of the paper's Table I λ.
	Lambda float64
	// Beta is the idleness persistence P{window i is empty | window i-1
	// was empty}, the analogue of Table I β.
	Beta float64
	// DistinctLines is the number of distinct cache lines touched.
	DistinctLines int
	// ReusedLines is the number of distinct lines accessed three or
	// more times — the hot working-set estimate.
	ReusedLines int
}

// Measure computes the Summary of recs using the given burstiness
// window in instructions (windowInsts <= 0 selects DefaultCloneWindow).
func Measure(recs []workload.Record, windowInsts int) Summary {
	if windowInsts <= 0 {
		windowInsts = DefaultCloneWindow
	}
	var s Summary
	s.Records = len(recs)
	if len(recs) == 0 {
		return s
	}

	counts := make(map[uint64]int, len(recs))
	reads := 0
	seq := 0
	var prevLine uint64
	insts := 0.0

	// Window occupancy for λ/β: walk instruction time, marking windows
	// that contain at least one access.
	var occ []bool
	winIdx := func(inst float64) int { return int(inst) / windowInsts }

	for i, r := range recs {
		insts += float64(r.Gap) + 1
		counts[r.Line]++
		// Count a line into the hot set exactly when its count reaches
		// the reuse threshold (no map iteration: deterministic order).
		if counts[r.Line] == 3 {
			s.ReusedLines++
		}
		if !r.Write {
			reads++
		}
		if i > 0 && r.Line == prevLine+1 {
			seq++
		}
		prevLine = r.Line
		w := winIdx(insts - 1)
		for len(occ) <= w {
			occ = append(occ, false)
		}
		occ[w] = true
	}

	s.Insts = insts
	s.APKI = float64(len(recs)) / insts * 1000
	s.ReadFrac = float64(reads) / float64(len(recs))
	if len(recs) > 1 {
		s.SeqFrac = float64(seq) / float64(len(recs)-1)
	}
	s.DistinctLines = len(counts)

	// λ = P{occ[i] | occ[i-1]}, β = P{!occ[i] | !occ[i-1]}.
	var onOn, onAny, offOff, offAny int
	for i := 1; i < len(occ); i++ {
		if occ[i-1] {
			onAny++
			if occ[i] {
				onOn++
			}
		} else {
			offAny++
			if !occ[i] {
				offOff++
			}
		}
	}
	if onAny > 0 {
		s.Lambda = float64(onOn) / float64(onAny)
	}
	if offAny > 0 {
		s.Beta = float64(offOff) / float64(offAny)
	}
	return s
}

// Fit is the workload cloner's output: a runnable synthetic profile
// fitted to a measured trace, plus the target and achieved summaries
// the fit error is computed from. Fit implements
// workload.Parameterized, so fitted parameters and hand-written
// profile parameters flow through the same interface.
type Fit struct {
	// Profile is the fitted, validated workload profile; feeding it to
	// workload.NewGenerator yields the clone.
	Profile workload.Profile
	// Target is the summary of the input trace.
	Target Summary
	// Achieved is the summary of a same-length trace generated from
	// Profile with the clone seed.
	Achieved Summary
	// Window is the burstiness window (instructions) both summaries
	// were measured with.
	Window int
}

// Clone fits a workload profile to recs with the default burstiness
// window. seed drives the validation generation (and is the natural
// seed to replay the clone with).
func Clone(recs []workload.Record, seed int64) (*Fit, error) {
	return CloneWindow(recs, seed, DefaultCloneWindow)
}

// CloneWindow is Clone with an explicit burstiness window in
// instructions.
func CloneWindow(recs []workload.Record, seed int64, windowInsts int) (*Fit, error) {
	if windowInsts <= 0 {
		windowInsts = DefaultCloneWindow
	}
	if len(recs) < 16 {
		return nil, fmt.Errorf("trace: %d records is too short to clone (need 16+)", len(recs))
	}
	target := Measure(recs, windowInsts)

	p := workload.Profile{Name: "clone"}
	p.Intensive = target.APKI >= 5
	p.ReadFrac = target.ReadFrac

	// Phase structure from window occupancy: if a meaningful fraction
	// of windows are idle, fit ON/OFF phase lengths from the λ/β
	// persistence probabilities (mean geometric run length 1/(1-p)).
	// The empty-window fraction follows from the two-state chain's
	// stationary distribution: P{empty} = (1-λ) / ((1-λ) + (1-β)).
	emptyFrac := 0.0
	if gl, gb := 1-target.Lambda, 1-target.Beta; gl+gb > 0 {
		emptyFrac = gl / (gl + gb)
	}
	onGap := target.Insts/float64(target.Records) - 1
	if emptyFrac > 0.05 && target.Lambda < 1 && target.Beta < 1 {
		p.OnMeanInsts = float64(windowInsts) / (1 - target.Lambda)
		p.OffMeanInsts = float64(windowInsts) / (1 - target.Beta)
		// Concentrate the accesses into the ON fraction of time.
		onGap = onGap*(1-emptyFrac) - 1
	}
	if onGap < 0 {
		onGap = 0
	}
	p.OnGapMean = onGap

	// Locality split: lines touched once or twice are streaming
	// traffic, lines reused 3+ times form the hot working set. Two
	// passes over the records (never over the map) keep the count
	// deterministic: an access contributes iff its line's final count
	// reaches the reuse threshold.
	reuseAccesses := 0
	{
		counts := make(map[uint64]int, len(recs))
		for _, r := range recs {
			counts[r.Line]++
		}
		for _, r := range recs {
			if counts[r.Line] >= 3 {
				reuseAccesses++
			}
		}
	}
	streamFrac := 1 - float64(reuseAccesses)/float64(len(recs))
	if streamFrac < 0 {
		streamFrac = 0
	}
	p.StreamFrac = streamFrac
	p.WSLines = target.ReusedLines
	if p.WSLines < 1024 {
		p.WSLines = 1024
	}
	p.FootprintLines = target.DistinctLines * 2
	if p.FootprintLines < 4096 {
		p.FootprintLines = 4096
	}

	// Delta table from the sequentiality fraction.
	switch {
	case target.SeqFrac >= 0.99:
		p.Deltas = []workload.DeltaChoice{{Seq: []int64{1}, Weight: 1}}
	case target.SeqFrac <= 0.01:
		p.Deltas = []workload.DeltaChoice{{Random: true, Weight: 1}}
	default:
		p.Deltas = []workload.DeltaChoice{
			{Seq: []int64{1}, Weight: target.SeqFrac},
			{Random: true, Weight: 1 - target.SeqFrac},
		}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("trace: fitted profile invalid: %w", err)
	}

	synth := workload.Take(workload.NewGenerator(p, seed), len(recs))
	return &Fit{
		Profile:  p,
		Target:   target,
		Achieved: Measure(synth, windowInsts),
		Window:   windowInsts,
	}, nil
}

// WorkloadParams implements workload.Parameterized with the fitted
// parameter vector.
func (f *Fit) WorkloadParams() workload.Params { return f.Profile.WorkloadParams() }

// relErr is |a-b| / max(|b|, floor): relative error with an absolute
// floor so near-zero targets do not blow up the score.
func relErr(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	den := b
	if den < 0 {
		den = -den
	}
	if den < 0.05 {
		den = 0.05
	}
	return d / den
}

// FitError is the mean relative error across the fitted dimensions
// (APKI, read fraction, sequentiality, λ, β) between Target and
// Achieved: 0 is a perfect clone, 0.10 means 10% average miss.
func (f *Fit) FitError() float64 {
	errs := []float64{
		relErr(f.Achieved.APKI, f.Target.APKI),
		relErr(f.Achieved.ReadFrac, f.Target.ReadFrac),
		relErr(f.Achieved.SeqFrac, f.Target.SeqFrac),
		relErr(f.Achieved.Lambda, f.Target.Lambda),
		relErr(f.Achieved.Beta, f.Target.Beta),
	}
	sum := 0.0
	for _, e := range errs {
		sum += e
	}
	return sum / float64(len(errs))
}

// RegisterMetrics registers the fit-error gauges under reg (the
// "trace.fit" namespace in roptrace; see docs/METRICS.md).
func (f *Fit) RegisterMetrics(reg *stats.Registry) {
	reg.Gauge("fit_error", f.FitError)
	reg.Gauge("target_apki", func() float64 { return f.Target.APKI })
	reg.Gauge("achieved_apki", func() float64 { return f.Achieved.APKI })
	reg.Gauge("apki_err", func() float64 { return relErr(f.Achieved.APKI, f.Target.APKI) })
	reg.Gauge("read_frac_err", func() float64 { return relErr(f.Achieved.ReadFrac, f.Target.ReadFrac) })
	reg.Gauge("seq_frac_err", func() float64 { return relErr(f.Achieved.SeqFrac, f.Target.SeqFrac) })
	reg.Gauge("lambda_err", func() float64 { return relErr(f.Achieved.Lambda, f.Target.Lambda) })
	reg.Gauge("beta_err", func() float64 { return relErr(f.Achieved.Beta, f.Target.Beta) })
}
