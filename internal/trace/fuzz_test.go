package trace

import (
	"bytes"
	"reflect"
	"testing"

	"ropsim/internal/workload"
)

// FuzzTraceText feeds arbitrary bytes to the text parser: it must
// either error or produce records that round-trip through
// WriteTraceText/ParseText — never panic or hang. The seed corpus runs
// under plain `go test` (CI's fuzz regression mode).
func FuzzTraceText(f *testing.F) {
	f.Add([]byte("10 R 0x1000\n20 W 0x1040\n"))
	f.Add([]byte("# comment\n\n5 RD 40\n"))
	f.Add([]byte("// c\n1 write 0xffffffffffffffff\n"))
	f.Add([]byte("10 R 0x0\n5 R 0x0\n")) // backwards cycle
	f.Add([]byte("1 R\n"))
	f.Add([]byte("x y z\n"))
	f.Add([]byte("18446744073709551615 R 0x0\n"))
	f.Add(bytes.Repeat([]byte("9 R 0x40 "), 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ParseText(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must round-trip for lines below 2^58 (all
		// parsed lines are, since they come from addr >> 6).
		var buf bytes.Buffer
		if err := WriteTraceText(&buf, recs); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		again, err := ParseText(&buf)
		if err != nil {
			t.Fatalf("re-parse of our own output failed: %v", err)
		}
		if len(recs) != len(again) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(again))
		}
		// Gap saturation makes cycle stamps non-invertible in general,
		// but lines and ops must survive exactly.
		for i := range recs {
			if recs[i].Line != again[i].Line || recs[i].Write != again[i].Write {
				t.Fatalf("record %d changed: %+v -> %+v", i, recs[i], again[i])
			}
		}
	})
}

// FuzzRoptDecode feeds arbitrary bytes to the .ropt decoder: malformed
// headers, indexes and payloads must error — never panic, hang, or
// allocate unboundedly. Structurally valid traces must re-encode
// byte-identically (canonical encoding).
func FuzzRoptDecode(f *testing.F) {
	seed := func(recs []workload.Record, block int) []byte {
		var buf bytes.Buffer
		if err := EncodeRoptBlocked(&buf, recs, block); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte("ROPT"))
	f.Add(seed(nil, 16))
	f.Add(seed(randomRecords(100, 1), 16))
	f.Add(seed(randomRecords(33, 2), 8))
	f.Add(seed([]workload.Record{{Gap: ^uint32(0), Line: LineMask, Write: true}}, 1))
	trunc := seed(randomRecords(50, 3), 10)
	f.Add(trunc[:len(trunc)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeRopt(data)
		if err != nil {
			return
		}
		recs, err := tr.ReadAll()
		if err != nil {
			return
		}
		if len(recs) != tr.Records() {
			t.Fatalf("ReadAll returned %d records, header says %d", len(recs), tr.Records())
		}
		var buf bytes.Buffer
		if err := EncodeRoptBlocked(&buf, recs, tr.BlockRecords()); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatal("fully valid file did not re-encode byte-identically")
		}
		// Seek equivalence on a few positions.
		for _, p := range []int{0, len(recs) / 2, len(recs)} {
			s, err := tr.Seek(p)
			if err != nil {
				t.Fatalf("seek %d: %v", p, err)
			}
			rest := workload.Take(s, len(recs)-p+1)
			if !reflect.DeepEqual(rest, recs[p:]) && !(len(rest) == 0 && len(recs[p:]) == 0) {
				t.Fatalf("seek %d suffix mismatch", p)
			}
		}
	})
}
