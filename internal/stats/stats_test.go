package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("Value after Reset = %d", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	var c Counter
	defer func() {
		if recover() == nil {
			t.Error("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Errorf("empty Mean.Value = %g", m.Value())
	}
	for _, v := range []float64{1, 2, 3, 4} {
		m.Observe(v)
	}
	if m.Value() != 2.5 {
		t.Errorf("Mean = %g, want 2.5", m.Value())
	}
	if m.N() != 4 || m.Sum() != 10 {
		t.Errorf("N=%d Sum=%g, want 4, 10", m.N(), m.Sum())
	}
}

func TestMeanBounded(t *testing.T) {
	// Property: mean lies within [min, max] of the samples.
	f := func(vs []float64) bool {
		var m Mean
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e300/float64(len(vs)+1) {
				// Skip inputs whose running sum would overflow float64;
				// the accumulator does not guard against that by design.
				return true
			}
			m.Observe(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(vs) == 0 {
			return m.Value() == 0
		}
		// Allow tiny float slack.
		eps := 1e-9 * (math.Abs(lo) + math.Abs(hi) + 1)
		return m.Value() >= lo-eps && m.Value() <= hi+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if got := r.Value(0.5); got != 0.5 {
		t.Errorf("empty Ratio.Value = %g, want fallback 0.5", got)
	}
	r.ObserveHit(true)
	r.ObserveHit(true)
	r.ObserveHit(false)
	r.ObserveHit(true)
	if got := r.Value(0); got != 0.75 {
		t.Errorf("Ratio = %g, want 0.75", got)
	}
}

func TestRatioInUnitInterval(t *testing.T) {
	f := func(hits []bool) bool {
		var r Ratio
		for _, h := range hits {
			r.ObserveHit(h)
		}
		v := r.Value(0)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 5, 10)
	for _, v := range []int64{0, 0, 3, 7, 9, 10, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 2, 2} // [-inf,1) [1,5) [5,10) [10,inf)
	for i, w := range want {
		if h.Bucket(i) != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Bucket(i), w)
		}
	}
	if h.N() != 7 {
		t.Errorf("N = %d, want 7", h.N())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %d, want 100", h.Max())
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(100)
	for _, v := range []int64{2, 4, 6} {
		h.Observe(v)
	}
	if h.Mean() != 4 {
		t.Errorf("Mean = %g, want 4", h.Mean())
	}
}

func TestHistogramCountPreserved(t *testing.T) {
	// Property: total bucket counts equal samples observed.
	f := func(vs []int64) bool {
		h := NewHistogram(-10, 0, 10, 1000)
		for _, v := range vs {
			h.Observe(v)
		}
		var total int64
		for i := 0; i < h.NumBuckets(); i++ {
			total += h.Bucket(i)
		}
		return total == int64(len(vs)) && h.N() == int64(len(vs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds did not panic")
		}
	}()
	NewHistogram(5, 5)
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %g, want 2", got)
	}
	if GeoMean(nil) != 0 {
		t.Errorf("GeoMean(nil) = %g, want 0", GeoMean(nil))
	}
	// Non-positive values are skipped.
	got = GeoMean([]float64{-1, 0, 9})
	if math.Abs(got-9) > 1e-12 {
		t.Errorf("GeoMean(-1,0,9) = %g, want 9", got)
	}
}

func TestMinMax(t *testing.T) {
	if Min(2, 3) != 2 || Min(3, 2) != 2 {
		t.Error("Min wrong")
	}
	if Max(2, 3) != 3 || Max(3, 2) != 3 {
		t.Error("Max wrong")
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(10, 20)
	if h.String() != "(empty)" {
		t.Errorf("empty histogram String = %q", h.String())
	}
	h.Observe(5)
	h.Observe(15)
	h.Observe(25)
	s := h.String()
	for _, want := range []string{"[", ":1", "inf"} {
		if !contains(s, want) {
			t.Errorf("histogram String %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMeanReset(t *testing.T) {
	var m Mean
	m.Observe(5)
	m.Reset()
	if m.N() != 0 || m.Value() != 0 || m.Sum() != 0 {
		t.Error("Mean.Reset incomplete")
	}
}

func TestRatioReset(t *testing.T) {
	var r Ratio
	r.ObserveHit(true)
	r.Reset()
	if r.Num != 0 || r.Den != 0 {
		t.Error("Ratio.Reset incomplete")
	}
}

func TestHistogramEmptyMeanMax(t *testing.T) {
	h := NewHistogram(10)
	if h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram mean/max non-zero")
	}
}
