package stats

import (
	"strings"
	"testing"
)

func TestRegistrySnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	var a, b, c Counter
	// Register deliberately out of lexicographic order.
	r.Register("zeta", &c)
	r.Register("alpha", &a)
	r.Sub("mid").Register("beta", &b)
	a.Add(1)
	b.Add(2)
	c.Add(3)

	s := r.Snapshot()
	want := []string{"alpha", "mid.beta", "zeta"}
	got := s.Paths()
	if len(got) != len(want) {
		t.Fatalf("paths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paths = %v, want %v", got, want)
		}
	}
	if v, ok := s.Field("mid.beta", "value"); !ok || v != 2 {
		t.Errorf("mid.beta = %v,%v want 2,true", v, ok)
	}
}

func TestRegistrySchemaVersionPresent(t *testing.T) {
	s := NewRegistry().Snapshot()
	if s.Schema != SchemaVersion {
		t.Fatalf("Schema = %d, want %d", s.Schema, SchemaVersion)
	}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"schema": 1`) {
		t.Errorf("JSON missing schema field:\n%s", sb.String())
	}
}

func TestRegistryJSONByteStable(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		var n Counter
		var m Mean
		h := NewHistogram(4, 16, 64)
		r.Register("reads", &n)
		r.Register("latency", &m)
		r.Register("latency_hist", h)
		r.Gauge("ipc", func() float64 { return 0.75 })
		n.Add(7)
		m.Observe(3.5)
		m.Observe(4.5)
		h.Observe(2)
		h.Observe(100)
		var sb strings.Builder
		if err := r.Snapshot().WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("identical registries serialized differently:\n%s\nvs\n%s", a, b)
	}
}

func TestRegistryMetricKinds(t *testing.T) {
	r := NewRegistry()
	var c Counter
	var ac AtomicCounter
	var m Mean
	var ra Ratio
	h := NewHistogram(10)
	r.Register("c", &c)
	r.Register("ac", &ac)
	r.Register("m", &m)
	r.Register("ra", &ra)
	r.Register("h", h)
	r.Gauge("g", func() float64 { return 1 })

	c.Add(5)
	ac.Add(6)
	m.Observe(2)
	ra.ObserveHit(true)
	ra.ObserveHit(false)
	h.Observe(3)
	h.Observe(30)

	s := r.Snapshot()
	for _, tc := range []struct {
		path, kind, field string
		want              float64
	}{
		{"c", "counter", "value", 5},
		{"ac", "counter", "value", 6},
		{"m", "mean", "sum", 2},
		{"m", "mean", "count", 1},
		{"ra", "ratio", "num", 1},
		{"ra", "ratio", "den", 2},
		{"h", "histogram", "count", 2},
		{"h", "histogram", "bucket[-inf,10)", 1},
		{"h", "histogram", "bucket[10,+inf)", 1},
		{"g", "gauge", "value", 1},
	} {
		v, ok := s.Get(tc.path)
		if !ok {
			t.Fatalf("missing %s", tc.path)
		}
		if v.Kind != tc.kind {
			t.Errorf("%s kind = %s, want %s", tc.path, v.Kind, tc.kind)
		}
		if f, ok := s.Field(tc.path, tc.field); !ok || f != tc.want {
			t.Errorf("%s.%s = %v,%v want %v,true", tc.path, tc.field, f, ok, tc.want)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	var c, d Counter
	r.Register("dup", &c)
	expectPanic("duplicate path", func() { r.Register("dup", &d) })
	expectPanic("empty path", func() { r.Register("", &d) })
	expectPanic("uppercase path", func() { r.Register("Bad", &d) })
	expectPanic("empty segment", func() { r.Register("a..b", &d) })
	expectPanic("leading underscore", func() { r.Register("_x", &d) })
	expectPanic("nil metric", func() { r.Register("x", nil) })
	expectPanic("bad sub prefix", func() { r.Sub("Bad") })
}

func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	var c Counter
	// None of these may panic; components register unconditionally.
	r.Register("x", &c)
	r.Gauge("y", func() float64 { return 1 })
	sub := r.Sub("scope")
	sub.Register("z", &c)
	if r.Len() != 0 {
		t.Errorf("nil registry Len = %d", r.Len())
	}
	s := r.Snapshot()
	if s.Schema != SchemaVersion || len(s.Metrics) != 0 {
		t.Errorf("nil registry snapshot = %+v", s)
	}
}

func TestSnapshotWriteCSV(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(9)
	r.Sub("memctrl").Register("reads", &c)
	var sb strings.Builder
	if err := r.Snapshot().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "path,kind,field,value\nmemctrl.reads,counter,value,9\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestHistogramBucketFieldQuotedInCSV(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(8)
	h.Observe(1)
	r.Register("lat", h)
	var sb strings.Builder
	if err := r.Snapshot().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	// Bucket field names contain commas and must arrive quoted so the
	// CSV stays parseable.
	if !strings.Contains(sb.String(), `"bucket[-inf,8)"`) {
		t.Errorf("CSV bucket field not quoted:\n%s", sb.String())
	}
}
