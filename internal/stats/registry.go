package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion identifies the layout of Snapshot and of the run
// artifacts built from it (cmd/ropexp -stats-out). Bump it whenever the
// JSON/CSV structure changes incompatibly; golden tests and downstream
// diff tooling key on it. See docs/METRICS.md for the schema.
const SchemaVersion = 1

// Field is one named scalar inside a metric's snapshot value. Fields
// appear in a fixed, kind-defined order so that serialized snapshots
// are byte-stable across runs.
type Field struct {
	// Name identifies the scalar within its metric (e.g. "value",
	// "count", "sum", "bucket[0,8)").
	Name string `json:"name"`
	// Value is the scalar. Integer-valued metrics are widened to
	// float64; simulation counts stay far below 2^53, so the widening
	// is lossless in practice.
	Value float64 `json:"value"`
}

// Value is the snapshot of one registered metric: its full dotted path,
// its kind ("counter", "mean", "ratio", "histogram", "gauge"), and the
// kind's fields in fixed order.
type Value struct {
	// Path is the metric's full dotted path (e.g.
	// "memctrl.refreshes_issued").
	Path string `json:"path"`
	// Kind names the metric type; it determines the Fields layout.
	Kind string `json:"kind"`
	// Fields carries the metric's scalars in kind-defined order:
	// counter/gauge: value; mean: count, sum, mean; ratio: num, den,
	// value; histogram: count, sum, max, then one field per bucket in
	// ascending bound order.
	Fields []Field `json:"fields"`
}

// Metric is a statistic that can be registered in a Registry. The
// package's primitives (*Counter, *AtomicCounter, *Mean, *Ratio,
// *Histogram) and GaugeFunc implement it.
type Metric interface {
	// metricValue reports the metric's kind and current fields.
	metricValue() (kind string, fields []Field)
}

func (c *Counter) metricValue() (string, []Field) {
	return "counter", []Field{{Name: "value", Value: float64(c.n)}}
}

func (c *AtomicCounter) metricValue() (string, []Field) {
	return "counter", []Field{{Name: "value", Value: float64(c.n.Load())}}
}

func (m *Mean) metricValue() (string, []Field) {
	return "mean", []Field{
		{Name: "count", Value: float64(m.n)},
		{Name: "sum", Value: m.sum},
		{Name: "mean", Value: m.Value()},
	}
}

func (r *Ratio) metricValue() (string, []Field) {
	return "ratio", []Field{
		{Name: "num", Value: float64(r.Num)},
		{Name: "den", Value: float64(r.Den)},
		{Name: "value", Value: r.Value(0)},
	}
}

func (h *Histogram) metricValue() (string, []Field) {
	fields := []Field{
		{Name: "count", Value: float64(h.n)},
		{Name: "sum", Value: float64(h.sum)},
		{Name: "max", Value: float64(h.max)},
	}
	lo := "-inf"
	for i, b := range h.bounds {
		fields = append(fields, Field{
			Name:  fmt.Sprintf("bucket[%s,%d)", lo, b),
			Value: float64(h.counts[i]),
		})
		lo = strconv.FormatInt(b, 10)
	}
	fields = append(fields, Field{
		Name:  fmt.Sprintf("bucket[%s,+inf)", lo),
		Value: float64(h.counts[len(h.bounds)]),
	})
	return "histogram", fields
}

// GaugeFunc is a derived metric: a function evaluated at snapshot time.
// Components register gauges for values computed from other state (IPC,
// hit rates, energy components) so they appear in artifacts alongside
// raw counters.
type GaugeFunc func() float64

func (g GaugeFunc) metricValue() (string, []Field) {
	return "gauge", []Field{{Name: "value", Value: g()}}
}

// Registry is a hierarchical namespace of metrics, keyed by dotted
// paths such as "memctrl.refreshes_issued". One registry belongs to one
// simulation run: sim.Run builds a fresh registry per run and every
// component registers its statistics into it, so parallel runner jobs
// never share metric state (enforced by a race-detector test).
//
// A Registry value scoped with Sub shares its parent's underlying
// namespace: registrations through the sub-registry land in the same
// snapshot, under the sub-registry's prefix. All methods are nil-safe
// no-ops, so components may register unconditionally and still be
// usable standalone (their metric fields work without any registry).
//
// Like the rest of this package, Registry is not safe for concurrent
// use; see the package comment for the ownership invariant.
type Registry struct {
	prefix string
	root   *registryRoot
}

// registryRoot is the namespace shared by a registry and all its Sub
// views.
type registryRoot struct {
	metrics map[string]Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{root: &registryRoot{metrics: map[string]Metric{}}}
}

// join combines the registry prefix with a relative name.
func (r *Registry) join(name string) string {
	if r.prefix == "" {
		return name
	}
	return r.prefix + "." + name
}

// validPath reports whether path is a well-formed dotted metric path:
// dot-separated segments of lowercase letters, digits and underscores,
// each starting with a letter.
func validPath(path string) bool {
	if path == "" {
		return false
	}
	for _, seg := range strings.Split(path, ".") {
		if seg == "" {
			return false
		}
		for i, c := range seg {
			switch {
			case c >= 'a' && c <= 'z':
			case c == '_' && i > 0:
			case c >= '0' && c <= '9' && i > 0:
			default:
				return false
			}
		}
	}
	return true
}

// Sub returns a view of the registry scoped under prefix: metrics
// registered through the view get "prefix." prepended to their paths.
// Sub of a nil registry is nil.
func (r *Registry) Sub(prefix string) *Registry {
	if r == nil {
		return nil
	}
	if !validPath(prefix) {
		panic(fmt.Sprintf("stats: invalid registry prefix %q", prefix))
	}
	return &Registry{prefix: r.join(prefix), root: r.root}
}

// Register adds a metric under the given relative name. It panics on a
// malformed name or a duplicate path — both are programming errors in
// the component wiring, not runtime conditions. Registering on a nil
// registry is a no-op.
func (r *Registry) Register(name string, m Metric) {
	if r == nil {
		return
	}
	if m == nil {
		panic("stats: Register with nil metric")
	}
	path := r.join(name)
	if !validPath(path) {
		panic(fmt.Sprintf("stats: invalid metric path %q", path))
	}
	if _, dup := r.root.metrics[path]; dup {
		panic(fmt.Sprintf("stats: duplicate metric path %q", path))
	}
	r.root.metrics[path] = m
}

// Gauge registers a derived metric evaluated at snapshot time.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.Register(name, GaugeFunc(fn))
}

// Len reports the number of registered metrics (0 for nil).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.root.metrics)
}

// Snapshot captures every registered metric's current value, sorted by
// path. The result is fully deterministic for a deterministic
// simulation: same run, same bytes when serialized. A nil registry
// yields an empty (but schema-stamped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Schema: SchemaVersion}
	if r == nil {
		return s
	}
	paths := make([]string, 0, len(r.root.metrics))
	for p := range r.root.metrics {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	s.Metrics = make([]Value, 0, len(paths))
	for _, p := range paths {
		kind, fields := r.root.metrics[p].metricValue()
		s.Metrics = append(s.Metrics, Value{Path: p, Kind: kind, Fields: fields})
	}
	return s
}

// Snapshot is a point-in-time capture of a registry: the schema version
// plus every metric value in ascending path order. Snapshots are plain
// data — comparable with reflect.DeepEqual and safe to retain after the
// run that produced them.
type Snapshot struct {
	// Schema is the SchemaVersion the snapshot was taken under.
	Schema int `json:"schema"`
	// Metrics lists every registered metric, sorted by Path.
	Metrics []Value `json:"metrics"`
}

// Get returns the value at the given full path, if present.
func (s Snapshot) Get(path string) (Value, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Path >= path })
	if i < len(s.Metrics) && s.Metrics[i].Path == path {
		return s.Metrics[i], true
	}
	return Value{}, false
}

// Field returns the named field of the metric at path, if present.
func (s Snapshot) Field(path, name string) (float64, bool) {
	v, ok := s.Get(path)
	if !ok {
		return 0, false
	}
	for _, f := range v.Fields {
		if f.Name == name {
			return f.Value, true
		}
	}
	return 0, false
}

// Paths lists every metric path in the snapshot, in order.
func (s Snapshot) Paths() []string {
	out := make([]string, len(s.Metrics))
	for i, v := range s.Metrics {
		out[i] = v.Path
	}
	return out
}

// WriteJSON serializes the snapshot as indented JSON. Key order and
// float formatting are deterministic, so identical runs produce
// byte-identical output (golden tests rely on this).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV serializes the snapshot as "path,kind,field,value" rows
// (with a header), one row per field, in path then field order. Floats
// use the shortest round-trip representation.
func (s Snapshot) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "path,kind,field,value\n"); err != nil {
		return err
	}
	for _, v := range s.Metrics {
		for _, f := range v.Fields {
			name := f.Name
			if strings.ContainsAny(name, ",\"") {
				name = `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
			}
			row := v.Path + "," + v.Kind + "," + name + "," +
				strconv.FormatFloat(f.Value, 'g', -1, 64) + "\n"
			if _, err := io.WriteString(w, row); err != nil {
				return err
			}
		}
	}
	return nil
}
