// Package stats provides the small statistical primitives shared by the
// simulator — counters, running means, histograms, and ratio helpers —
// plus the hierarchical metrics Registry every subsystem registers them
// into, so that experiment harnesses and run artifacts (-stats-out) can
// aggregate results uniformly (see docs/METRICS.md for the namespace).
//
// # Concurrency
//
// Counter, Mean, Ratio, Histogram and Registry are deliberately
// unsynchronized: the simulator's invariant is that one simulation run
// — and therefore one registry and every metric registered in it — is
// owned by exactly one goroutine. The parallel experiment runner
// (internal/runner) achieves safe parallelism by giving each run its
// own registry, never by sharing one; a race-detector test
// (TestParallelRegistryIsolation) enforces this. The sole exception is
// AtomicCounter, which exists for cross-goroutine bookkeeping such as
// the runner's completion counts.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n int64
}

// Add increments the counter by d, which must be non-negative.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("stats: negative Counter.Add")
	}
	c.n += d
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset clears the counter.
func (c *Counter) Reset() { c.n = 0 }

// AtomicCounter is a Counter safe for concurrent use. The experiment
// runner uses it for completion counts read by progress reporters while
// workers are still incrementing.
type AtomicCounter struct {
	n atomic.Int64
}

// Add increments the counter by d, which must be non-negative.
func (c *AtomicCounter) Add(d int64) {
	if d < 0 {
		panic("stats: negative AtomicCounter.Add")
	}
	c.n.Add(d)
}

// Inc increments the counter by one.
func (c *AtomicCounter) Inc() { c.n.Add(1) }

// Value reports the current count.
func (c *AtomicCounter) Value() int64 { return c.n.Load() }

// Reset clears the counter.
func (c *AtomicCounter) Reset() { c.n.Store(0) }

// Mean accumulates a running arithmetic mean without storing samples.
type Mean struct {
	n   int64
	sum float64
}

// Observe adds one sample.
func (m *Mean) Observe(v float64) {
	m.n++
	m.sum += v
}

// N reports the number of samples observed.
func (m *Mean) N() int64 { return m.n }

// Value reports the mean of the observed samples, or 0 with no samples.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Sum reports the sum of the observed samples.
func (m *Mean) Sum() float64 { return m.sum }

// Reset clears the accumulator.
func (m *Mean) Reset() { m.n = 0; m.sum = 0 }

// Ratio is a numerator/denominator pair, used for hit rates and
// probability estimates. The zero value is an empty ratio.
type Ratio struct {
	// Num counts hits; Den counts trials.
	Num, Den int64
}

// ObserveHit records one trial with outcome hit.
func (r *Ratio) ObserveHit(hit bool) {
	r.Den++
	if hit {
		r.Num++
	}
}

// Value reports Num/Den, or fallback when no trials were recorded.
func (r *Ratio) Value(fallback float64) float64 {
	if r.Den == 0 {
		return fallback
	}
	return float64(r.Num) / float64(r.Den)
}

// Reset clears the ratio.
func (r *Ratio) Reset() { r.Num, r.Den = 0, 0 }

// Histogram is a fixed-bucket histogram over int64 samples. Bucket i
// covers [bounds[i-1], bounds[i]); samples at or beyond the last bound
// fall into the overflow bucket.
type Histogram struct {
	bounds []int64
	counts []int64
	n      int64
	sum    int64
	max    int64
}

// NewHistogram builds a histogram with the given strictly increasing
// upper bounds.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe adds one sample.
func (h *Histogram) Observe(v int64) {
	idx := sort.Search(len(h.bounds), func(i int) bool { return v < h.bounds[i] })
	h.counts[idx]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// N reports the total number of samples.
func (h *Histogram) N() int64 { return h.n }

// Max reports the largest observed sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean reports the arithmetic mean of the samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Bucket reports the count in bucket i (0 ≤ i ≤ len(bounds)).
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// NumBuckets reports the number of buckets including overflow.
func (h *Histogram) NumBuckets() int { return len(h.counts) }

// String renders the histogram compactly for logs.
func (h *Histogram) String() string {
	s := ""
	lo := int64(math.MinInt64)
	for i, b := range h.bounds {
		if h.counts[i] > 0 {
			s += fmt.Sprintf("[%d,%d):%d ", lo, b, h.counts[i])
		}
		lo = b
	}
	if h.counts[len(h.bounds)] > 0 {
		s += fmt.Sprintf("[%d,inf):%d ", lo, h.counts[len(h.bounds)])
	}
	if s == "" {
		return "(empty)"
	}
	return s[:len(s)-1]
}

// GeoMean reports the geometric mean of vs. Values must be positive;
// non-positive values are skipped. It returns 0 when no valid values
// remain.
func GeoMean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Min returns the smaller of a and b.
func Min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
