// Package analysis implements the paper's §III offline study of refresh
// behaviour: classifying refreshes as blocking/non-blocking (Fig. 2),
// counting requests blocked per blocking refresh (Fig. 3), and the
// (B, A) event statistics around refresh start times that yield the
// event coverage of Fig. 4 and the λ/β probabilities of Table I.
package analysis

import (
	"sort"

	"ropsim/internal/event"
	"ropsim/internal/memctrl"
)

// Timeline indexes a captured run for window queries.
type Timeline struct {
	// perRank request events, sorted by time.
	perRank   [][]memctrl.ReqEvent
	refreshes []memctrl.RefEvent
}

// NewTimeline builds a timeline over a capture for a system with the
// given rank count.
func NewTimeline(cap *memctrl.Capture, ranks int) *Timeline {
	t := &Timeline{perRank: make([][]memctrl.ReqEvent, ranks)}
	for _, r := range cap.Requests {
		if r.Rank >= 0 && r.Rank < ranks {
			t.perRank[r.Rank] = append(t.perRank[r.Rank], r)
		}
	}
	for rank := range t.perRank {
		evs := t.perRank[rank]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	}
	t.refreshes = append(t.refreshes, cap.Refreshes...)
	sort.SliceStable(t.refreshes, func(i, j int) bool {
		return t.refreshes[i].At < t.refreshes[j].At
	})
	return t
}

// NumRefreshes reports how many refreshes the capture holds.
func (t *Timeline) NumRefreshes() int { return len(t.refreshes) }

// countIn counts requests to rank in [from, to); reads counts only read
// requests, otherwise all requests.
func (t *Timeline) countIn(rank int, from, to event.Cycle, readsOnly bool) int {
	evs := t.perRank[rank]
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].At >= from })
	n := 0
	for i := lo; i < len(evs) && evs[i].At < to; i++ {
		if !readsOnly || evs[i].IsRead {
			n++
		}
	}
	return n
}

// NonBlockingFraction reports the fraction of refreshes with no read
// request arriving within [T, T+L) of the refresh start T (Fig. 2; the
// paper examines L = 1x, 2x, 4x the refresh cycle, and only reads block
// because writes are buffered).
func (t *Timeline) NonBlockingFraction(L event.Cycle) float64 {
	if len(t.refreshes) == 0 {
		return 0
	}
	nonBlocking := 0
	for _, ref := range t.refreshes {
		if t.countIn(ref.Rank, ref.At, ref.At+L, true) == 0 {
			nonBlocking++
		}
	}
	return float64(nonBlocking) / float64(len(t.refreshes))
}

// BlockedStats reports the mean and maximum number of reads blocked per
// blocking refresh for window length L (Fig. 3).
func (t *Timeline) BlockedStats(L event.Cycle) (mean float64, max int) {
	blockingRefreshes := 0
	totalBlocked := 0
	for _, ref := range t.refreshes {
		n := t.countIn(ref.Rank, ref.At, ref.At+L, true)
		if n > 0 {
			blockingRefreshes++
			totalBlocked += n
			if n > max {
				max = n
			}
		}
	}
	if blockingRefreshes == 0 {
		return 0, 0
	}
	return float64(totalBlocked) / float64(blockingRefreshes), max
}

// WindowStats are the (B, A) classification counts over all refreshes
// for one observational-window length: Counts[b][a] counts refreshes
// with (B>0)==b and (A>0)==a. B counts reads and writes in the window
// before the refresh; A counts reads in the window after (paper §IV-B).
type WindowStats struct {
	// Counts[b][a] is the number of refreshes whose before-window had
	// activity iff b==1 and whose after-window had reads iff a==1.
	Counts [2][2]int64
}

// Total reports the number of refreshes classified.
func (w WindowStats) Total() int64 {
	return w.Counts[0][0] + w.Counts[0][1] + w.Counts[1][0] + w.Counts[1][1]
}

// E1Fraction reports the share of refreshes with B>0 && A>0.
func (w WindowStats) E1Fraction() float64 {
	if w.Total() == 0 {
		return 0
	}
	return float64(w.Counts[1][1]) / float64(w.Total())
}

// E2Fraction reports the share of refreshes with B=0 && A=0.
func (w WindowStats) E2Fraction() float64 {
	if w.Total() == 0 {
		return 0
	}
	return float64(w.Counts[0][0]) / float64(w.Total())
}

// Coverage reports E1Fraction+E2Fraction, the share of refreshes the
// two dominant events explain (Fig. 4).
func (w WindowStats) Coverage() float64 { return w.E1Fraction() + w.E2Fraction() }

// Lambda reports P{A>0 | B>0} (Table I). Refreshes with B>0 never
// observed yield 0.
func (w WindowStats) Lambda() float64 {
	den := w.Counts[1][0] + w.Counts[1][1]
	if den == 0 {
		return 0
	}
	return float64(w.Counts[1][1]) / float64(den)
}

// Beta reports P{A=0 | B=0} (Table I). Refreshes with B=0 never
// observed yield 0.
func (w WindowStats) Beta() float64 {
	den := w.Counts[0][0] + w.Counts[0][1]
	if den == 0 {
		return 0
	}
	return float64(w.Counts[0][0]) / float64(den)
}

// Windows classifies every refresh with observational windows of length
// W before and after the refresh start.
func (t *Timeline) Windows(W event.Cycle) WindowStats {
	var w WindowStats
	for _, ref := range t.refreshes {
		from := ref.At - W
		if from < 0 {
			from = 0
		}
		b := t.countIn(ref.Rank, from, ref.At, false) > 0
		a := t.countIn(ref.Rank, ref.At, ref.At+W, true) > 0
		bi, ai := 0, 0
		if b {
			bi = 1
		}
		if a {
			ai = 1
		}
		w.Counts[bi][ai]++
	}
	return w
}
