package analysis

import (
	"testing"

	"ropsim/internal/event"
	"ropsim/internal/memctrl"
)

// buildCapture makes a capture with refreshes at the given times on rank
// 0 and requests at the given (time, isRead) pairs.
func buildCapture(refs []event.Cycle, reqs [][2]int64) *memctrl.Capture {
	c := &memctrl.Capture{}
	for _, at := range refs {
		c.Refresh(at, 0)
	}
	for _, r := range reqs {
		c.Request(event.Cycle(r[0]), 0, r[1] == 1)
	}
	return c
}

func TestNonBlockingFraction(t *testing.T) {
	// Refreshes at 1000 and 2000, L=100. A read at 1050 blocks the
	// first; nothing in [2000,2100) so the second is non-blocking.
	cap := buildCapture([]event.Cycle{1000, 2000}, [][2]int64{
		{1050, 1}, {2150, 1},
	})
	tl := NewTimeline(cap, 1)
	if got := tl.NonBlockingFraction(100); got != 0.5 {
		t.Errorf("non-blocking = %g, want 0.5", got)
	}
	// With L=200 the read at 2150 blocks the second too.
	if got := tl.NonBlockingFraction(200); got != 0 {
		t.Errorf("non-blocking(200) = %g, want 0", got)
	}
}

func TestWritesDoNotBlock(t *testing.T) {
	cap := buildCapture([]event.Cycle{1000}, [][2]int64{{1050, 0}})
	tl := NewTimeline(cap, 1)
	if got := tl.NonBlockingFraction(100); got != 1 {
		t.Errorf("write counted as blocking: %g", got)
	}
}

func TestBlockedStats(t *testing.T) {
	cap := buildCapture([]event.Cycle{1000, 2000, 3000}, [][2]int64{
		{1010, 1}, {1020, 1}, {1030, 1}, // 3 blocked at first
		{2050, 1}, // 1 blocked at second
		// third refresh non-blocking
	})
	tl := NewTimeline(cap, 1)
	mean, max := tl.BlockedStats(100)
	if mean != 2 {
		t.Errorf("mean blocked = %g, want 2", mean)
	}
	if max != 3 {
		t.Errorf("max blocked = %d, want 3", max)
	}
}

func TestBlockedStatsNoBlocking(t *testing.T) {
	cap := buildCapture([]event.Cycle{1000}, nil)
	tl := NewTimeline(cap, 1)
	mean, max := tl.BlockedStats(100)
	if mean != 0 || max != 0 {
		t.Errorf("mean,max = %g,%d, want 0,0", mean, max)
	}
}

func TestWindowStatsAllFourCategories(t *testing.T) {
	// W=100. Refresh at 1000: B (write at 950), A (read at 1050) -> E1.
	// Refresh at 2000: B (read at 1950), no A -> (1,0).
	// Refresh at 3000: no B, A (read 3010) -> (0,1).
	// Refresh at 4000: quiet -> E2.
	cap := buildCapture(
		[]event.Cycle{1000, 2000, 3000, 4000},
		[][2]int64{{950, 0}, {1050, 1}, {1950, 1}, {3010, 1}},
	)
	tl := NewTimeline(cap, 1)
	w := tl.Windows(100)
	if w.Counts != [2][2]int64{{1, 1}, {1, 1}} {
		t.Fatalf("counts = %v", w.Counts)
	}
	if w.Total() != 4 {
		t.Errorf("total = %d", w.Total())
	}
	if w.E1Fraction() != 0.25 || w.E2Fraction() != 0.25 || w.Coverage() != 0.5 {
		t.Errorf("E1=%g E2=%g cov=%g", w.E1Fraction(), w.E2Fraction(), w.Coverage())
	}
	if w.Lambda() != 0.5 || w.Beta() != 0.5 {
		t.Errorf("lambda=%g beta=%g, want 0.5,0.5", w.Lambda(), w.Beta())
	}
}

func TestWindowAfterCountsReadsOnly(t *testing.T) {
	// A write after the refresh must not count toward A.
	cap := buildCapture([]event.Cycle{1000}, [][2]int64{{950, 1}, {1050, 0}})
	tl := NewTimeline(cap, 1)
	w := tl.Windows(100)
	if w.Counts[1][0] != 1 {
		t.Errorf("counts = %v, want B>0,A=0", w.Counts)
	}
}

func TestPerRankSeparation(t *testing.T) {
	c := &memctrl.Capture{}
	c.Refresh(1000, 0)
	c.Refresh(1000, 1)
	c.Request(1050, 1, true) // read on rank 1 only
	tl := NewTimeline(c, 2)
	if got := tl.NonBlockingFraction(100); got != 0.5 {
		t.Errorf("non-blocking = %g, want 0.5 (rank isolation)", got)
	}
}

func TestUnsortedCaptureHandled(t *testing.T) {
	c := &memctrl.Capture{}
	c.Refresh(2000, 0)
	c.Refresh(1000, 0)
	c.Request(2050, 0, true)
	c.Request(950, 0, true)
	tl := NewTimeline(c, 1)
	if tl.NumRefreshes() != 2 {
		t.Fatal("refresh count wrong")
	}
	w := tl.Windows(100)
	// Refresh@1000: B>0 (950), A=0. Refresh@2000: B=0, A>0 (2050).
	if w.Counts[1][0] != 1 || w.Counts[0][1] != 1 {
		t.Errorf("counts = %v", w.Counts)
	}
}

func TestEmptyTimeline(t *testing.T) {
	tl := NewTimeline(&memctrl.Capture{}, 1)
	if tl.NonBlockingFraction(100) != 0 {
		t.Error("empty timeline non-blocking not 0")
	}
	w := tl.Windows(100)
	if w.Lambda() != 0 || w.Beta() != 0 || w.Coverage() != 0 {
		t.Error("empty stats not zero")
	}
}
