package memctrl

import (
	"ropsim/internal/addr"
	"ropsim/internal/dram"
	"ropsim/internal/event"
)

// debugElastic is a test hook.
var debugElastic func(now, due event.Cycle, backlog, readq int)

// debugOoO is a test hook observing out-of-order refresh accounting at
// each issue: the rank's owed (postponed) and pulled-ahead refresh
// counts right after the issue.
var debugOoO func(now event.Cycle, owed, ahead int)

// refPhase is the per-rank refresh state.
type refPhase int

const (
	// refIdle: no refresh activity; waiting for the next due time.
	refIdle refPhase = iota
	// refDraining (ROP only): demand reads to the rank are drained
	// before the rank freezes (paper §IV-D).
	refDraining
	// refFilling (ROP only): predicted lines are fetched into the SRAM
	// buffer. Candidates are generated at the drain/fill boundary so
	// they reflect the stream position right before the freeze.
	refFilling
	// refPaused (ModePausing): a partially-completed refresh waits for
	// the rank's pending reads to drain before its next segment.
	refPaused
	// refClosing: open banks are being precharged so REF can issue.
	refClosing
	// refRefreshing: REF issued; the rank is frozen until refEnd.
	refRefreshing
)

// drainFracREFI bounds the drain phase as a fraction of tREFI; the fill
// phase is bounded by Config.MaxRefreshDelay overall.
const drainFracREFI = 0.03

// maxElasticBacklog is the JEDEC limit on outstanding postponed
// refreshes (ModeElastic and the out-of-order bank modes).
const maxElasticBacklog = 8

// maxPullInAhead is the JEDEC limit on refreshes issued ahead of
// schedule (the pull-in half of the 8×tREFI elasticity window the
// out-of-order bank modes exploit).
const maxPullInAhead = 8

// pauseSegments is how many pausable segments one refresh divides into
// (ModePausing), and pauseResumeOverhead the extra cycles each resumed
// segment costs for re-locking.
const (
	pauseSegments       = 8
	pauseResumeOverhead = 4
)

// rankRefresh tracks one rank's refresh progress.
type rankRefresh struct {
	// backlog counts refreshes owed but postponed (ModeElastic).
	backlog int
	// segDone counts completed segments of the in-flight pausable
	// refresh (ModePausing).
	segDone int
	// targetBank is the refresh target this round: under bank modes it
	// is the refresh slot (dram.Device.SlotBanks maps it to the banks
	// one command locks; slots take turns round-robin), under subarray
	// mode the bank itself.
	targetBank int
	// targetSA is the subarray being refreshed (ModeSubarrayRefresh).
	targetSA int
	// slotDue (out-of-order bank modes) is each refresh slot's own
	// schedule: the tREFI boundary its next refresh is nominally due at.
	// Out-of-order scheduling picks among slots instead of rotating, so
	// the schedule must be tracked per slot rather than via due.
	slotDue []event.Cycle
	// slotSA (ModeSARP) is each refresh slot's rotating subarray
	// counter. Kept per slot so slot rotation and subarray rotation
	// cannot alias when RefreshSlots divides Subarrays evenly.
	slotSA []int
	// pullIn marks the pending refClosing issue as a pull-in (the picked
	// slot's schedule is still in the future).
	pullIn        bool
	phase         refPhase
	due           event.Cycle // scheduled tREFI boundary of the next refresh
	drainDeadline event.Cycle // drain must finish by here (ROP)
	deadline      event.Cycle // fills must finish by here (ROP)
	refEnd        event.Cycle // unlock time of the in-flight refresh
	fillStart     event.Cycle // when the fill phase began
	wantPrefetch  bool        // the engine's gate decision for this refresh
}

// refreshStep advances every rank's refresh state machine and issues at
// most one command (PRE or REF). It reports whether a command was
// issued this cycle.
func (c *Controller) refreshStep(now event.Cycle) bool {
	for r := range c.refresh {
		rr := &c.refresh[r]
		progress := true
		for progress {
			progress = false
			switch rr.phase {
			case refIdle:
				if c.cfg.Mode == ModeSubarrayRefresh {
					if now >= rr.due {
						rr.phase = refClosing
						progress = true
					}
					break
				}
				if c.oooMode() {
					if slot, pullIn := c.pickOoOSlot(r, now); slot >= 0 {
						rr.targetBank = slot
						rr.pullIn = pullIn
						rr.phase = refClosing
						progress = true
					}
					break
				}
				if c.bankMode() {
					if now >= rr.due {
						c.beginBankRefresh(r, now)
						progress = true
					}
					break
				}
				if c.cfg.Mode == ModeElastic {
					if debugElastic != nil {
						debugElastic(now, rr.due, rr.backlog, len(c.readQ))
					}
					if now >= rr.due {
						rr.backlog++
						rr.due += c.dev.Params().REFI
						progress = true
					}
					// Issue owed refreshes in idle gaps, or forcibly at
					// the JEDEC backlog limit.
					if rr.backlog > 0 &&
						(rr.backlog >= maxElasticBacklog || !c.hasDemandReads(r)) {
						rr.phase = refClosing
						progress = true
					}
					break
				}
				if now >= rr.due {
					c.beginRefresh(r, now)
					progress = true
				}
			case refDraining:
				if c.bankMode() {
					if now >= rr.drainDeadline || !c.hasBankReads(r, rr.targetBank) {
						c.startBankFills(r, now)
						progress = true
					}
					break
				}
				if now >= rr.drainDeadline || !c.hasDemandReads(r) {
					c.startFills(r, now)
					progress = true
				}
			case refFilling:
				if now >= rr.deadline || !c.hasFills(r) {
					c.FillPhaseCycles.Observe(float64(now - rr.fillStart))
					c.dropFills(r)
					rr.phase = refClosing
					progress = true
				}
			case refClosing:
				if c.cfg.Mode == ModeSubarrayRefresh {
					if c.closeSubarrayStep(r, now) {
						return true
					}
					break
				}
				if c.cfg.Mode == ModeSARP {
					if c.closeSARPStep(r, now) {
						return true
					}
					break
				}
				if c.bankMode() {
					if c.closeBankStep(r, now) {
						return true
					}
					break
				}
				if c.closeStep(r, now) {
					return true
				}
			case refPaused:
				// Resume once the rank's reads drained, or when the
				// remaining segments would no longer fit before the
				// next due time.
				if !c.hasDemandReads(r) || c.pausingForced(r, now) {
					rr.phase = refClosing
					progress = true
				}
			case refRefreshing:
				if now >= rr.refEnd {
					if c.cfg.Mode == ModeSubarrayRefresh {
						rr.phase = refIdle
						progress = true
						break
					}
					if c.bankMode() {
						rr.phase = refIdle
						if c.rop != nil {
							c.rop.OnRefreshEnd(r, now)
						}
						progress = true
						break
					}
					if c.cfg.Mode == ModePausing && rr.segDone < pauseSegments {
						if c.hasDemandReads(r) && !c.pausingForced(r, now) {
							rr.phase = refPaused
						} else {
							rr.phase = refClosing
						}
						progress = true
						break
					}
					rr.segDone = 0
					rr.phase = refIdle
					if c.rop != nil {
						c.rop.OnRefreshEnd(r, now)
					}
					progress = true
				}
			}
		}
	}
	return false
}

// beginRefresh runs when a rank's refresh becomes due: in ROP mode it
// consults the engine and starts the drain phase; the baseline proceeds
// straight to closing banks.
func (c *Controller) beginRefresh(rank int, now event.Cycle) {
	rr := &c.refresh[rank]
	if c.rop == nil {
		rr.phase = refClosing
		return
	}
	refi := float64(c.dev.Params().REFI)
	dec := c.rop.OnRefreshStart(rank, now)
	rr.wantPrefetch = dec.Prefetch
	// Load-aware throttle: when the shared channel is bandwidth-bound
	// (deep read queue), prefetch fills cannot add throughput — every
	// mispredicted fill is pure bus waste — so the launch is skipped.
	// The drain optimization still applies.
	if len(c.readQ) >= c.cfg.ReadQueueCap/4 {
		rr.wantPrefetch = false
		c.PrefetchThrottled.Inc()
	}
	rr.drainDeadline = now + event.FromFloat(drainFracREFI*refi)
	// The fill budget scales with the buffer and with how many ranks
	// share the channel (each fill needs ~6 bus cycles of leftover
	// bandwidth, and other ranks' demand traffic shrinks the leftover).
	// MaxRefreshDelay still bounds the total postponement (JEDEC allows
	// up to 8 tREFI), and the per-rank stagger keeps fill sessions of
	// consecutive ranks from overlapping.
	//simlint:cycles "SRAM lines × ~6 bus cycles per fill (plus fixed slack), scaled by rank count: a bus-cycle budget by construction"
	fillBudget := event.Cycle((6*c.cfg.ROP.SRAMLines + 200) * (c.geo.Ranks + 1) / 2)
	if stagger := c.dev.Params().REFI / event.Cycle(c.geo.Ranks); fillBudget > stagger*3/4 {
		fillBudget = stagger * 3 / 4
	}
	if bound := event.FromFloat(c.cfg.MaxRefreshDelay * refi); rr.drainDeadline+fillBudget > now+bound {
		fillBudget = now + bound - rr.drainDeadline
	}
	rr.deadline = rr.drainDeadline + fillBudget
	rr.phase = refDraining
}

// startFills ends the drain phase: candidates are generated from the
// table's current state and queued as prefetch fills.
func (c *Controller) startFills(rank int, now event.Cycle) {
	rr := &c.refresh[rank]
	rr.phase = refClosing
	if !rr.wantPrefetch {
		return
	}
	locs := c.rop.GenerateCandidates(rank)
	if len(locs) == 0 {
		return
	}
	// Close out the previous session's consumption accounting before
	// the buffer is claimed for this one.
	buf := c.rop.Buffer()
	if prev := buf.Owner(); prev >= 0 {
		inserted := int(buf.Inserted.Value() - c.sessionInsertedMark)
		c.rop.NoteSessionEnd(prev, inserted, inserted-buf.UsedCount())
	}
	if !buf.Acquire(rank) {
		return
	}
	c.sessionInsertedMark = buf.Inserted.Value()
	for _, loc := range locs {
		c.pushRequest(&c.fillQ, &request{loc: loc, arrive: now, prefetch: true})
	}
	rr.fillStart = now
	rr.phase = refFilling
}

// hasDemandReads reports whether any queued demand read targets rank
// (an O(1) read of the bank index's per-rank count).
func (c *Controller) hasDemandReads(rank int) bool {
	return c.readIdx.rankN[rank] > 0
}

// hasFills reports whether any prefetch fill for rank is still pending.
func (c *Controller) hasFills(rank int) bool {
	return c.fillIdx.rankN[rank] > 0
}

// dropFills abandons any prefetch fills for the rank that did not make
// the drain deadline; whatever was inserted into the buffer stays.
func (c *Controller) dropFills(rank int) {
	kept := c.fillQ[:0]
	for _, req := range c.fillQ {
		if req.loc.Rank != rank {
			kept = append(kept, req)
		} else {
			c.FillsDropped.Inc()
		}
	}
	c.fillQ = kept
	c.fillIdx.rebuild(c.fillQ)
}

// closeStep precharges one open bank, or issues REF once the rank is
// quiesced. It reports whether a command was issued.
func (c *Controller) closeStep(rank int, now event.Cycle) bool {
	rr := &c.refresh[rank]
	geo := c.geo
	for b := 0; b < geo.Banks; b++ {
		if c.dev.OpenRow(rank, b) < 0 {
			continue
		}
		if c.dev.EarliestPRE(now, rank, b) == now {
			c.dev.IssuePRE(now, rank, b)
			c.emit(dram.Command{Kind: dram.CmdPRE, At: now, Rank: rank, Bank: b})
			return true
		}
		return false // a bank is open but PRE is not yet legal: wait
	}
	if c.dev.EarliestREF(now, rank) != now {
		return false
	}
	if c.cfg.Mode == ModePausing {
		return c.issueSegment(rank, now)
	}
	end := c.dev.IssueREF(now, rank)
	if c.capture != nil {
		c.capture.Refresh(now, rank)
	}
	c.emit(dram.Command{Kind: dram.CmdREF, At: now, Rank: rank})
	c.RefreshesIssued.Inc()
	if c.cfg.Mode == ModeElastic {
		// Elastic accounting: due already advanced when the refresh
		// became owed; the postponement is how far behind schedule this
		// issue is.
		rr.backlog--
		behind := now - (rr.due - c.dev.Params().REFI*event.Cycle(rr.backlog+1))
		c.RefreshPostponedCycles.Observe(float64(behind))
	} else {
		c.RefreshPostponedCycles.Observe(float64(now - rr.due))
		rr.due += c.dev.Params().REFI
	}
	rr.refEnd = end
	rr.phase = refRefreshing

	// Reads that are still queued for this rank ride out the freeze
	// unless the SRAM buffer can serve them right now.
	if c.rop != nil {
		c.probeQueuedReads(rank, now)
	}
	return true
}

// pausingForced reports whether a paused refresh must push through: the
// remaining segments (with closing slack) no longer fit before the next
// tREFI boundary.
func (c *Controller) pausingForced(rank int, now event.Cycle) bool {
	rr := &c.refresh[rank]
	p := c.dev.Params()
	segLen := p.RFC / pauseSegments
	remaining := event.Cycle(pauseSegments-rr.segDone) * (segLen + pauseResumeOverhead + 20)
	// The in-flight refresh must finish before the next one is due.
	return now+remaining >= rr.due+p.REFI
}

// issueSegment issues one pausable-refresh segment for ModePausing. The
// logical refresh completes (and the schedule advances) when the last
// segment ends.
func (c *Controller) issueSegment(rank int, now event.Cycle) bool {
	rr := &c.refresh[rank]
	p := c.dev.Params()
	segLen := p.RFC / pauseSegments
	dur := segLen
	if rr.segDone > 0 {
		dur += pauseResumeOverhead
	}
	if rr.segDone == pauseSegments-1 {
		dur += p.RFC % pauseSegments // remainder sticks to the last segment
	}
	end := c.dev.IssueREFSegment(now, rank, dur)
	rr.segDone++
	rr.refEnd = end
	rr.phase = refRefreshing
	if rr.segDone == pauseSegments {
		if c.capture != nil {
			c.capture.Refresh(now, rank)
		}
		c.RefreshesIssued.Inc()
		c.RefreshPostponedCycles.Observe(float64(end - rr.due))
		rr.due += p.REFI
	}
	return true
}

// probeQueuedReads serves queued demand reads to the frozen rank from
// the SRAM buffer where possible.
func (c *Controller) probeQueuedReads(rank int, now event.Cycle) {
	kept := c.readQ[:0]
	for _, req := range c.readQ {
		if req.loc.Rank == rank && !req.prefetch && c.rop.ProbeRead(req.loc, now, true) {
			c.SRAMServed.Inc()
			c.ReadsServed.Inc()
			fin := now + c.cfg.SRAMLatency
			c.observeRead(float64(fin - req.arrive))
			if req.done != nil {
				done := req.done
				c.q.Schedule(fin, func(at event.Cycle) { done(at) })
			}
			continue
		}
		kept = append(kept, req)
	}
	if len(kept) != len(c.readQ) {
		c.readQ = kept
		c.readIdx.rebuild(c.readQ)
		c.notifySpace()
	}
}

// SetDebugElastic installs the elastic-refresh test hook (diagnostics).
func SetDebugElastic(fn func(now, due int64, backlog, readq int)) {
	if fn == nil {
		debugElastic = nil
		return
	}
	debugElastic = func(now, due event.Cycle, backlog, readq int) {
		fn(int64(now), int64(due), backlog, readq)
	}
}

// SetDebugOoO installs the out-of-order refresh test hook
// (diagnostics): it observes the rank's owed and pulled-ahead refresh
// counts right after each out-of-order issue.
func SetDebugOoO(fn func(now int64, owed, ahead int)) {
	if fn == nil {
		debugOoO = nil
		return
	}
	debugOoO = func(now event.Cycle, owed, ahead int) {
		fn(int64(now), owed, ahead)
	}
}

// beginBankRefresh starts one bank's refresh round (bank modes). Under
// ModeROPBank the engine's gate decides whether the bank's predicted
// lines are staged first.
func (c *Controller) beginBankRefresh(rank int, now event.Cycle) {
	rr := &c.refresh[rank]
	if c.rop == nil {
		rr.phase = refClosing
		return
	}
	cadence := float64(c.dev.Params().REFI) / float64(c.dev.RefreshSlots())
	dec := c.rop.OnRefreshStart(rank, now)
	rr.wantPrefetch = dec.Prefetch
	rr.drainDeadline = now + event.FromFloat(0.1*cadence)
	rr.deadline = now + event.FromFloat(0.5*cadence)
	rr.phase = refDraining
}

// hasBankReads reports whether any queued demand read targets a bank of
// the given refresh slot.
func (c *Controller) hasBankReads(rank, slot int) bool {
	for _, b := range c.dev.SlotBanks(slot) {
		if len(c.readIdx.list(rank, b)) > 0 {
			return true
		}
	}
	return false
}

// startBankFills generates and queues prefetch fills for every bank of
// the target refresh slot.
func (c *Controller) startBankFills(rank int, now event.Cycle) {
	rr := &c.refresh[rank]
	rr.phase = refClosing
	if !rr.wantPrefetch {
		return
	}
	var locs []addr.Loc
	for _, b := range c.dev.SlotBanks(rr.targetBank) {
		locs = append(locs, c.rop.GenerateBankCandidates(rank, b)...)
	}
	if len(locs) == 0 {
		return
	}
	buf := c.rop.Buffer()
	if prev := buf.Owner(); prev >= 0 {
		inserted := int(buf.Inserted.Value() - c.sessionInsertedMark)
		c.rop.NoteSessionEnd(prev, inserted, inserted-buf.UsedCount())
	}
	if !buf.Acquire(rank) {
		return
	}
	c.sessionInsertedMark = buf.Inserted.Value()
	for _, loc := range locs {
		c.pushRequest(&c.fillQ, &request{loc: loc, arrive: now, prefetch: true})
	}
	rr.fillStart = now
	rr.phase = refFilling
}

// closeBankStep precharges the target refresh slot's open banks (one
// per tick) and then issues the slot's bank-granularity refresh: one
// command that locks every bank of the slot's set (a single bank under
// per-bank refresh, one bank per group under DDR5 same-bank refresh).
// It reports whether a command was issued.
func (c *Controller) closeBankStep(rank int, now event.Cycle) bool {
	rr := &c.refresh[rank]
	slot := rr.targetBank
	for _, b := range c.dev.SlotBanks(slot) {
		if c.dev.OpenRow(rank, b) < 0 {
			continue
		}
		if c.dev.EarliestPRE(now, rank, b) == now {
			c.dev.IssuePRE(now, rank, b)
			c.emit(dram.Command{Kind: dram.CmdPRE, At: now, Rank: rank, Bank: b})
			return true
		}
		return false // a set bank is open but PRE is not yet legal: wait
	}
	if c.dev.EarliestREFSlot(now, rank, slot) != now {
		return false
	}
	end := c.dev.IssueREFSlot(now, rank, slot)
	if c.capture != nil {
		c.capture.Refresh(now, rank)
	}
	for _, b := range c.dev.SlotBanks(slot) {
		c.emit(dram.Command{Kind: dram.CmdREFpb, At: now, Rank: rank, Bank: b})
	}
	c.RefreshesIssued.Inc()
	if c.oooMode() {
		// Out-of-order accounting: each slot keeps its own schedule, and
		// the issue either retires an owed refresh (postponement is how
		// far past the slot's boundary it ran) or banks a pull-in.
		if rr.pullIn {
			c.RefreshPullIns.Inc()
		} else {
			c.RefreshPostponedCycles.Observe(float64(now - rr.slotDue[slot]))
		}
		if c.cfg.Mode == ModeDARP && c.draining {
			c.DrainPiggybacks.Inc()
		}
		rr.slotDue[slot] += c.dev.Params().REFI
		rr.pullIn = false
		due := rr.slotDue[0]
		for _, d := range rr.slotDue[1:] {
			if d < due {
				due = d
			}
		}
		rr.due = due
		if debugOoO != nil {
			owed, ahead := c.oooBacklog(rank, now)
			debugOoO(now, owed, ahead)
		}
	} else {
		c.RefreshPostponedCycles.Observe(float64(now - rr.due))
		rr.due += c.dev.Params().REFI / event.Cycle(c.dev.RefreshSlots())
	}
	rr.refEnd = end
	rr.phase = refRefreshing
	if c.rop != nil {
		c.probeQueuedBankReads(rank, slot, now)
	}
	if !c.oooMode() {
		rr.targetBank = (rr.targetBank + 1) % c.dev.RefreshSlots()
	}
	return true
}

// oooBacklog tallies the rank's out-of-order refresh position at now:
// owed counts refreshes whose slot boundary has passed without an
// issue, ahead counts refreshes issued before their boundary (pull-ins
// still in credit).
func (c *Controller) oooBacklog(rank int, now event.Cycle) (owed, ahead int) {
	refi := c.dev.Params().REFI
	for _, d := range c.refresh[rank].slotDue {
		if d <= now {
			owed += int((now-d)/refi) + 1
		} else {
			ahead += int((d - now - 1) / refi)
		}
	}
	return owed, ahead
}

// oooSlotIdle reports whether the slot's bank set has no queued demand
// of the kind the scheduler is currently serving: reads normally, and
// writes during a DARP write-drain batch (the drain serves writes, so a
// bank with no queued writes is free to refresh — Chang et al.
// HPCA'14's write-refresh parallelization).
func (c *Controller) oooSlotIdle(rank, slot int) bool {
	if c.cfg.Mode == ModeDARP && c.draining {
		return !c.hasBankWrites(rank, slot)
	}
	return !c.hasBankReads(rank, slot)
}

// hasBankWrites reports whether any queued write targets a bank of the
// given refresh slot.
func (c *Controller) hasBankWrites(rank, slot int) bool {
	for _, b := range c.dev.SlotBanks(slot) {
		if len(c.writeIdx.list(rank, b)) > 0 {
			return true
		}
	}
	return false
}

// pickOoOSlot chooses which refresh slot (if any) the out-of-order
// scheduler should refresh at now. It returns the slot and whether the
// issue is a pull-in, or -1 when no slot should issue. The policy is
// Chang et al. HPCA'14's out-of-order per-bank refresh: once the rank
// owes maxElasticBacklog refreshes the most-overdue slot issues
// unconditionally; otherwise the earliest-scheduled idle slot issues —
// retiring owed work early when its banks are idle, and pulling future
// refreshes in (up to maxPullInAhead of credit) when everything is on
// schedule.
func (c *Controller) pickOoOSlot(rank int, now event.Cycle) (slot int, pullIn bool) {
	rr := &c.refresh[rank]
	owed, ahead := c.oooBacklog(rank, now)
	if owed >= maxElasticBacklog {
		best := -1
		for s, d := range rr.slotDue {
			if d <= now && (best < 0 || d < rr.slotDue[best]) {
				best = s
			}
		}
		return best, false
	}
	best := -1
	for s, d := range rr.slotDue {
		if !c.oooSlotIdle(rank, s) {
			continue
		}
		if d > now && ahead >= maxPullInAhead {
			continue // pull-in credit exhausted
		}
		if best < 0 || d < rr.slotDue[best] {
			best = s
		}
	}
	if best < 0 {
		return -1, false
	}
	return best, rr.slotDue[best] > now
}

// probeQueuedBankReads serves queued reads to the frozen slot's banks
// from the SRAM buffer where possible.
func (c *Controller) probeQueuedBankReads(rank, slot int, now event.Cycle) {
	kept := c.readQ[:0]
	for _, req := range c.readQ {
		if req.loc.Rank == rank && c.dev.SlotOf(req.loc.Bank) == slot && !req.prefetch &&
			c.rop.ProbeRead(req.loc, now, true) {
			c.SRAMServed.Inc()
			c.ReadsServed.Inc()
			fin := now + c.cfg.SRAMLatency
			c.observeRead(float64(fin - req.arrive))
			if req.done != nil {
				done := req.done
				c.q.Schedule(fin, func(at event.Cycle) { done(at) })
			}
			continue
		}
		kept = append(kept, req)
	}
	if len(kept) != len(c.readQ) {
		c.readQ = kept
		c.readIdx.rebuild(c.readQ)
		c.notifySpace()
	}
}

// closeSubarrayStep precharges the target subarray's open row (if any)
// and issues its refresh. It reports whether a command was issued.
func (c *Controller) closeSubarrayStep(rank int, now event.Cycle) bool {
	rr := &c.refresh[rank]
	p := c.dev.Params()
	b, sa := rr.targetBank, rr.targetSA
	if open := c.dev.OpenRow(rank, b); open >= 0 && c.dev.SubarrayOf(int(open)) == sa {
		if c.dev.EarliestPRE(now, rank, b) == now {
			c.dev.IssuePRE(now, rank, b)
			c.emit(dram.Command{Kind: dram.CmdPRE, At: now, Rank: rank, Bank: b})
			return true
		}
		return false
	}
	if c.dev.EarliestREFsa(now, rank, b, sa) != now {
		return false
	}
	end := c.dev.IssueREFsa(now, rank, b, sa)
	if c.capture != nil {
		c.capture.Refresh(now, rank)
	}
	c.emit(dram.Command{Kind: dram.CmdREFsa, At: now, Rank: rank, Bank: b, Sub: sa})
	c.RefreshesIssued.Inc()
	c.RefreshPostponedCycles.Observe(float64(now - rr.due))
	rr.refEnd = end
	rr.due += p.REFI / event.Cycle(c.geo.Banks*p.Subarrays)
	rr.phase = refRefreshing
	// Advance the round-robin target: subarrays within a bank, then the
	// next bank.
	rr.targetSA++
	if rr.targetSA >= p.Subarrays {
		rr.targetSA = 0
		rr.targetBank = (rr.targetBank + 1) % c.geo.Banks
	}
	return true
}

// closeSARPStep issues one subarray-confined per-bank refresh to the
// target slot (SARP, Chang et al. HPCA'14): the slot's banks keep
// serving demand to every other subarray while the target subarray
// absorbs the full tRFCpb refresh. Open rows inside the target
// subarray are precharged first (one per tick); rows elsewhere in the
// bank stay open.
func (c *Controller) closeSARPStep(rank int, now event.Cycle) bool {
	rr := &c.refresh[rank]
	slot := rr.targetBank
	sa := rr.slotSA[slot]
	for _, b := range c.dev.SlotBanks(slot) {
		open := c.dev.OpenRow(rank, b)
		if open < 0 || c.dev.SubarrayOf(int(open)) != sa {
			continue
		}
		if c.dev.EarliestPRE(now, rank, b) == now {
			c.dev.IssuePRE(now, rank, b)
			c.emit(dram.Command{Kind: dram.CmdPRE, At: now, Rank: rank, Bank: b})
			return true
		}
		return false
	}
	if c.dev.EarliestREFpbSub(now, rank, slot, sa) != now {
		return false
	}
	end := c.dev.IssueREFpbSub(now, rank, slot, sa)
	if c.capture != nil {
		c.capture.Refresh(now, rank)
	}
	for _, b := range c.dev.SlotBanks(slot) {
		c.emit(dram.Command{Kind: dram.CmdREFsa, At: now, Rank: rank, Bank: b, Sub: sa})
	}
	c.RefreshesIssued.Inc()
	c.RefreshPostponedCycles.Observe(float64(now - rr.due))
	rr.refEnd = end
	rr.due += c.dev.Params().REFI / event.Cycle(c.dev.RefreshSlots())
	rr.phase = refRefreshing
	// Rotate this slot's subarray, then hand the round to the next slot.
	rr.slotSA[slot] = (sa + 1) % c.dev.Params().Subarrays
	rr.targetBank = (rr.targetBank + 1) % c.dev.RefreshSlots()
	return true
}
