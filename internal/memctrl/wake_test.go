package memctrl

import (
	"testing"

	"ropsim/internal/addr"
	"ropsim/internal/dram"
	"ropsim/internal/event"
)

// wakeTrace records the debugWake event stream plus every issued
// command, so tests can correlate tick outcomes with wake bookkeeping.
type wakeTrace struct {
	events []wakeEvent
	cmds   []dram.Command
}

type wakeEvent struct {
	what   string
	now    int64
	wakeAt int
}

func (tr *wakeTrace) install(c *Controller) func() {
	SetDebugWake(func(what string, now, at int64, wakeAt int) {
		tr.events = append(tr.events, wakeEvent{what: what, now: now, wakeAt: wakeAt})
	})
	c.SetCommandObserver(func(cmd dram.Command) {
		tr.cmds = append(tr.cmds, cmd)
	})
	return func() {
		SetDebugWake(nil)
		c.SetCommandObserver(nil)
	}
}

// TestNoSupersededWakeDoesWork pins the superseded-wake contract from
// Controller.tick: a tick event whose cycle no longer matches wakeAt
// (because a later ensureWake armed a different cycle after it was
// queued) must skip without issuing commands or mutating state. The
// scenario arms a far refresh wake, then enqueues a read, which arms an
// earlier tick; the far event still fires, and must fire as a skip.
func TestNoSupersededWakeDoesWork(t *testing.T) {
	c, q := newController(t, ModeBaseline, nil)
	var tr wakeTrace
	defer tr.install(c)()

	// The constructor armed the first refresh due. Enqueue a read well
	// before it: ensureWake(now) supersedes the refresh-due wake.
	loc := addr.Loc{Rank: 0, Bank: 1, Row: 7, Col: 0}
	if !c.EnqueueRead(loc, 0, func(event.Cycle) {}) {
		t.Fatal("enqueue rejected")
	}
	due, ok := c.nextRefreshDue()
	if !ok {
		t.Fatal("no refresh scheduled")
	}
	q.RunUntil(due)

	// Every command must have been issued at a cycle where a tick fired
	// with matching wakeAt; skips must be bracketed by zero commands.
	fired := make(map[int64]bool)
	skipped := 0
	for _, ev := range tr.events {
		switch ev.what {
		case "fire":
			if int64(ev.wakeAt) != ev.now {
				t.Fatalf("tick fired at %d with wakeAt=%d", ev.now, ev.wakeAt)
			}
			fired[ev.now] = true
		case "skip":
			skipped++
			if int64(ev.wakeAt) == ev.now {
				t.Fatalf("skip at %d although wakeAt matches", ev.now)
			}
		}
	}
	if skipped == 0 {
		t.Fatal("scenario produced no superseded wake; the regression is untested")
	}
	for _, cmd := range tr.cmds {
		if !fired[int64(cmd.At)] {
			t.Fatalf("command %v at %d issued without a matching tick fire", cmd.Kind, cmd.At)
		}
	}
}

// TestSupersededWakeSkipIsStateless drives the skip path directly and
// checks it leaves the controller inert: a stale tick may not issue,
// may not change refresh phases, and may not re-arm a wake.
func TestSupersededWakeSkipIsStateless(t *testing.T) {
	c, q := newController(t, ModeNoRefresh, nil)
	var tr wakeTrace
	defer tr.install(c)()

	// No refresh in this mode, so the controller is fully idle; arm two
	// wakes by hand: a far one, then an earlier one that supersedes it.
	c.ensureWake(q.Now() + 100)
	c.ensureWake(q.Now() + 10) // wakeAt moves to +10; the +100 event goes stale
	q.RunUntil(q.Now() + 200)

	var skips, fires int
	for _, ev := range tr.events {
		switch ev.what {
		case "skip":
			skips++
		case "fire":
			fires++
		}
	}
	if skips != 1 {
		t.Fatalf("want exactly 1 superseded skip, got %d (events: %+v)", skips, tr.events)
	}
	if len(tr.cmds) != 0 {
		t.Fatalf("stale tick issued commands: %+v", tr.cmds)
	}
	if !c.Idle() {
		t.Fatal("stale tick changed controller state")
	}
}
