package memctrl

import (
	"testing"

	"ropsim/internal/addr"
	"ropsim/internal/dram"
	"ropsim/internal/event"
)

// Microbenchmarks for the controller hot paths: demand service through
// the per-bank index lists, and the exact-wake sleep through refresh
// cadence with no traffic. cmd/benchgate snapshots these numbers into
// BENCH_<date>.json.

func benchController(mode Mode) (*Controller, *event.Queue) {
	params := dram.DDR4_1600(dram.Refresh1x)
	if mode == ModeNoRefresh {
		params = dram.NoRefresh(params)
	}
	q := &event.Queue{}
	dev := dram.NewDevice(params, addr.Geometry{
		Channels: 1, Ranks: 2, Banks: 8, Rows: 512, ColumnLines: 64,
	})
	return MustNew(DefaultConfig(mode), dev, q), q
}

// runRead enqueues one read and dispatches until its data returns.
func runRead(b *testing.B, c *Controller, q *event.Queue, loc addr.Loc) {
	done := false
	if !c.EnqueueRead(loc, 0, func(event.Cycle) { done = true }) {
		b.Fatal("enqueue rejected")
	}
	for !done {
		if !q.Step() {
			b.Fatal("queue drained before read completed")
		}
	}
}

// BenchmarkReadRowHit measures the row-hit fast path: every read after
// the first hits the open row.
func BenchmarkReadRowHit(b *testing.B) {
	c, q := benchController(ModeNoRefresh)
	runRead(b, c, q, addr.Loc{Rank: 0, Bank: 0, Row: 5, Col: 0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runRead(b, c, q, addr.Loc{Rank: 0, Bank: 0, Row: 5, Col: i % 64})
	}
}

// BenchmarkReadRowMiss measures the PRE+ACT row-miss path, alternating
// rows within one bank.
func BenchmarkReadRowMiss(b *testing.B) {
	c, q := benchController(ModeNoRefresh)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runRead(b, c, q, addr.Loc{Rank: 0, Bank: 0, Row: i % 2, Col: 0})
	}
}

// BenchmarkIdleRefreshCadence measures simulating one tREFI of wall
// time with no traffic: the controller must sleep between refresh
// phases instead of ticking every cycle, so the per-iteration cost is
// a handful of events, not thousands.
func BenchmarkIdleRefreshCadence(b *testing.B) {
	c, q := benchController(ModeBaseline)
	refi := c.Device().Params().REFI
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.RunUntil(q.Now() + refi)
	}
}
