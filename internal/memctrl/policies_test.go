package memctrl

import (
	"testing"

	"ropsim/internal/addr"
	"ropsim/internal/dram"
	"ropsim/internal/event"
)

// Tests for the Chang et al. HPCA'14 policy family: out-of-order
// per-bank refresh scheduling, DARP's write-drain piggybacking, and
// SARP's subarray access-refresh parallelization.

// armChecker validates every command the controller issues against an
// independent JEDEC timing checker and returns a pointer to the first
// latched violation.
func armChecker(c *Controller, checker *dram.Checker) *error {
	var checkErr error
	c.SetCommandObserver(func(cmd dram.Command) {
		if checkErr == nil {
			checkErr = checker.Check(cmd)
		}
	})
	return &checkErr
}

// TestOoOPullInPostponeWindow is the pull-in/postpone window property
// test: under saturating demand on one rank (postponing refreshes) and
// total idleness on the other (pulling them in), the out-of-order
// scheduler must never hold more than maxElasticBacklog owed refreshes
// or bank more than maxPullInAhead of pull-in credit, and its command
// stream must stay checker-clean.
func TestOoOPullInPostponeWindow(t *testing.T) {
	maxOwed, maxAhead := 0, 0
	SetDebugOoO(func(now int64, owed, ahead int) {
		if owed > maxOwed {
			maxOwed = owed
		}
		if ahead > maxAhead {
			maxAhead = ahead
		}
	})
	defer SetDebugOoO(nil)

	c, q := newController(t, ModeOutOfOrderBank, nil)
	p := c.Device().Params()
	checkErr := armChecker(c, dram.NewChecker(p, testGeo()))

	// Saturating reads across every bank of rank 0: no slot is ever
	// idle, so refreshes ride the postpone window to its edge. Rank 1
	// stays untouched, so its scheduler pulls refreshes in instead.
	line := 0
	var drive func(now event.Cycle)
	drive = func(now event.Cycle) {
		c.EnqueueRead(addr.Loc{Rank: 0, Bank: line % 8, Row: (line * 13) % 512, Col: line % 64},
			0, func(event.Cycle) {})
		line++
		if now < 20*p.REFI {
			q.Schedule(now+3, drive)
		}
	}
	q.Schedule(0, drive)
	q.RunUntil(30 * p.REFI) // idle tail past the traffic horizon

	if *checkErr != nil {
		t.Fatalf("protocol violation: %v", *checkErr)
	}
	if maxOwed > maxElasticBacklog {
		t.Errorf("owed refreshes peaked at %d, JEDEC window is %d", maxOwed, maxElasticBacklog)
	}
	if maxAhead > maxPullInAhead {
		t.Errorf("pull-in credit peaked at %d, JEDEC window is %d", maxAhead, maxPullInAhead)
	}
	if c.RefreshPullIns.Value() == 0 {
		t.Error("no pull-ins despite an idle rank")
	}
	if c.RefreshPostponedCycles.N() == 0 {
		t.Error("no owed issues despite saturating reads")
	}
	if maxOwed == 0 {
		t.Error("saturating reads never postponed a refresh")
	}
}

// TestDARPWriteDrainPiggyback exercises DARP's write-refresh
// parallelization: reads keep banks 1-7 busy the whole run (their
// refreshes stay postponed), writes arrive in bursts on bank 0 only,
// and every drain batch must let the scheduler refresh the write-free
// read-busy banks mid-drain — visible both in the DrainPiggybacks
// counter and as REFpb commands inside the write bursts of the
// captured command stream.
func TestDARPWriteDrainPiggyback(t *testing.T) {
	c, q := newController(t, ModeDARP, func(cfg *Config) { cfg.Capture = true })
	c.CaptureLog().StoreCommands = true
	cfg := DefaultConfig(ModeDARP)
	p := c.Device().Params()
	checkErr := armChecker(c, dram.NewChecker(p, testGeo()))

	line := 0
	var reads func(now event.Cycle)
	reads = func(now event.Cycle) {
		b := 1 + line%7
		c.EnqueueRead(addr.Loc{Rank: 0, Bank: b, Row: (line * 29) % 512, Col: line % 64},
			0, func(event.Cycle) {})
		line++
		if now < 12*p.REFI {
			q.Schedule(now+3, reads)
		}
	}
	q.Schedule(0, reads)

	wline := 0
	var writes func(now event.Cycle)
	writes = func(now event.Cycle) {
		for i := 0; i < cfg.WriteHigh+4; i++ {
			c.EnqueueWrite(addr.Loc{Rank: 0, Bank: 0, Row: (wline * 17) % 512, Col: wline % 64}, 0)
			wline++
		}
		if now < 10*p.REFI {
			q.Schedule(now+2*p.REFI, writes)
		}
	}
	q.Schedule(p.REFI/2, writes)
	q.RunUntil(14 * p.REFI)

	if *checkErr != nil {
		t.Fatalf("protocol violation: %v", *checkErr)
	}
	if c.DrainPiggybacks.Value() == 0 {
		t.Fatal("no refreshes piggybacked on write drains")
	}
	// Command-stream evidence: a per-bank refresh to a read-busy bank
	// issued strictly inside the write activity window.
	cmds := c.CaptureLog().Commands
	firstWR, lastWR := event.Cycle(-1), event.Cycle(-1)
	for _, cmd := range cmds {
		if cmd.Kind == dram.CmdWR {
			if firstWR < 0 {
				firstWR = cmd.At
			}
			lastWR = cmd.At
		}
	}
	if firstWR < 0 {
		t.Fatal("no writes served")
	}
	found := false
	for _, cmd := range cmds {
		if cmd.Kind == dram.CmdREFpb && cmd.Bank != 0 && cmd.At > firstWR && cmd.At < lastWR {
			found = true
			break
		}
	}
	if !found {
		t.Error("no REFpb to a read-busy bank inside the write window")
	}
}

// TestSARPParallelService exercises subarray access-refresh
// parallelization: dense single-bank traffic spanning every subarray
// must keep being served while the bank's target subarray refreshes
// (SARPParallelServes > 0), with the command stream clean under the
// checker's subarray-conflict rule (REFsaDur = tRFCpb, as the sim
// harness arms it for SARP).
func TestSARPParallelService(t *testing.T) {
	c, q := newController(t, ModeSARP, nil)
	p := c.Device().Params()
	checker := dram.NewChecker(p, testGeo())
	checker.REFsaDur = p.RFCpb
	checkErr := armChecker(c, checker)

	line := 0
	var drive func(now event.Cycle)
	drive = func(now event.Cycle) {
		if c.EnqueueRead(addr.Loc{Rank: 0, Bank: 0, Row: (line * 37) % 512, Col: line % 64},
			0, func(event.Cycle) {}) {
			line++
		}
		if now < 16*p.REFI {
			q.Schedule(now+4, drive)
		}
	}
	q.Schedule(0, drive)
	q.RunUntil(20 * p.REFI)

	if *checkErr != nil {
		t.Fatalf("protocol violation: %v", *checkErr)
	}
	if c.SARPParallelServes.Value() == 0 {
		t.Error("no demand commands overlapped an in-flight subarray refresh")
	}
	if c.ReadQueueLen() != 0 {
		t.Errorf("read queue stuck with %d entries", c.ReadQueueLen())
	}
	if c.RefreshesIssued.Value() == 0 {
		t.Error("no refreshes issued")
	}
}
