package memctrl

import (
	"testing"

	"ropsim/internal/addr"
	"ropsim/internal/event"
)

// Focused scheduler tests: write batching, read merging, and the
// prefetch bandwidth machinery.

func TestWriteHighWatermarkTriggersDrain(t *testing.T) {
	c, q := newController(t, ModeNoRefresh, nil)
	cfg := DefaultConfig(ModeNoRefresh)
	// Fill the write queue to the high watermark while reads flow; the
	// batch must drain it down near the low watermark.
	for i := 0; i < cfg.WriteHigh; i++ {
		if !c.EnqueueWrite(addr.Loc{Rank: 0, Bank: i % 8, Row: i % 128, Col: i % 64}, 0) {
			t.Fatalf("write %d rejected", i)
		}
	}
	// Keep a trickle of reads so the controller is never idle-draining.
	line := 0
	var drive func(now event.Cycle)
	drive = func(now event.Cycle) {
		c.EnqueueRead(addr.Loc{Rank: 1, Bank: line % 8, Row: 3, Col: line % 64}, 0, func(event.Cycle) {})
		line++
		if now < 4000 {
			q.Schedule(now+50, drive)
		}
	}
	q.Schedule(0, drive)
	q.RunUntil(20000)
	if c.WriteQueueLen() > cfg.WriteLow {
		t.Errorf("write queue still at %d after batch drain (low=%d)",
			c.WriteQueueLen(), cfg.WriteLow)
	}
	if c.WritesServed.Value() == 0 {
		t.Error("no writes served")
	}
}

func TestReadMergingOnFill(t *testing.T) {
	// A demand read enqueued for a line that has a pending prefetch fill
	// must complete when the fill's data returns (one DRAM fetch).
	c, q := newController(t, ModeROP, nil)
	p := c.Device().Params()
	horizon := 30 * p.REFI
	driveSequentialReads(c, q, 30, horizon)
	q.RunUntil(horizon)
	// The merge machinery is exercised whenever fills and demands race;
	// all accepted reads completing (no stuck queue) plus SRAM service
	// proves both paths. Reads served must equal reads enqueued.
	if c.ReadQueueLen() != 0 {
		t.Errorf("read queue stuck with %d entries", c.ReadQueueLen())
	}
	if c.SRAMServed.Value() == 0 {
		t.Error("no SRAM service despite sequential stream")
	}
}

func TestPrefetchThrottleOnDeepQueue(t *testing.T) {
	// Saturate the read queue around a refresh: the launch must be
	// throttled.
	c, q := newController(t, ModeROP, func(cfg *Config) {
		cfg.ROP.TrainRefreshes = 2
	})
	p := c.Device().Params()
	// Extremely dense random-bank traffic keeps the queue deep.
	line := int64(0)
	var drive func(now event.Cycle)
	drive = func(now event.Cycle) {
		loc := addr.LocFromBankLine(testGeo(), 0, 0, int(line)%8, (line*37)%4096)
		c.EnqueueRead(loc, 0, func(event.Cycle) {})
		line++
		if now < 10*p.REFI {
			q.Schedule(now+2, drive)
		}
	}
	q.Schedule(0, drive)
	q.RunUntil(12 * p.REFI)
	if c.PrefetchThrottled.Value() == 0 {
		t.Error("prefetch never throttled under a saturated queue")
	}
}

func TestFillsDroppedAtDeadline(t *testing.T) {
	// With a tiny fill budget, fills that cannot complete must be
	// dropped rather than postponing the refresh indefinitely.
	c, q := newController(t, ModeROP, func(cfg *Config) {
		cfg.ROP.TrainRefreshes = 2
		cfg.MaxRefreshDelay = 0.01 // ~62 cycles: too short for a full fill set
	})
	p := c.Device().Params()
	horizon := 20 * p.REFI
	driveSequentialReads(c, q, 25, horizon)
	q.RunUntil(horizon)
	if c.RefreshesIssued.Value() == 0 {
		t.Fatal("no refreshes")
	}
	// Refreshes still happen on schedule despite the impossible budget.
	perRank := c.RefreshesIssued.Value() / 2
	if perRank < 17 {
		t.Errorf("only %d refreshes per rank over 20 intervals", perRank)
	}
}

func TestSRAMLatencyConfigRespected(t *testing.T) {
	// A read served by the buffer completes with the configured latency.
	c, q := newController(t, ModeROP, func(cfg *Config) {
		cfg.ROP.TrainRefreshes = 2
		cfg.SRAMLatency = 3
	})
	p := c.Device().Params()
	horizon := 25 * p.REFI
	driveSequentialReads(c, q, 40, horizon)
	q.RunUntil(horizon)
	if c.SRAMServed.Value() == 0 {
		t.Skip("no SRAM serves in this run")
	}
	// Mean latency must reflect some near-instant (SRAM) services: the
	// distribution's minimum is bounded by the SRAM latency, which we
	// can't observe directly here, but the run must remain live and
	// consistent.
	if c.ReadQueueLen() != 0 {
		t.Errorf("read queue stuck with %d entries", c.ReadQueueLen())
	}
}

func TestQueueLengthsNeverExceedCaps(t *testing.T) {
	c, q := newController(t, ModeROP, func(cfg *Config) {
		cfg.ReadQueueCap = 8
		cfg.WriteQueueCap = 8
		cfg.WriteHigh = 6
		cfg.WriteLow = 2
		cfg.ROP.TrainRefreshes = 2
	})
	p := c.Device().Params()
	line := int64(0)
	var drive func(now event.Cycle)
	drive = func(now event.Cycle) {
		loc := addr.LocFromBankLine(testGeo(), 0, 0, int(line)%8, line%4096)
		if line%3 == 0 {
			c.EnqueueWrite(loc, 0)
		} else {
			c.EnqueueRead(loc, 0, func(event.Cycle) {})
		}
		line++
		if c.ReadQueueLen() > 8 || c.WriteQueueLen() > 8 {
			t.Fatalf("queue overflow: r=%d w=%d", c.ReadQueueLen(), c.WriteQueueLen())
		}
		if now < 8*p.REFI {
			q.Schedule(now+3, drive)
		}
	}
	q.Schedule(0, drive)
	q.RunUntil(10 * p.REFI)
}

func TestClosedPagePrechargesIdleRows(t *testing.T) {
	c, q := newController(t, ModeNoRefresh, func(cfg *Config) { cfg.ClosedPage = true })
	// One isolated read: with closed-page the bank must precharge soon
	// after the access, without any further requests.
	c.EnqueueRead(addr.Loc{Rank: 0, Bank: 2, Row: 7, Col: 1}, 0, func(event.Cycle) {})
	q.RunUntil(2000)
	if got := c.Device().OpenRow(0, 2); got >= 0 {
		t.Errorf("row %d still open under closed-page policy", got)
	}
	if c.Device().NumPRE.Value() == 0 {
		t.Error("no precharge issued")
	}
}

func TestOpenPageKeepsRowOpen(t *testing.T) {
	c, q := newController(t, ModeNoRefresh, nil)
	c.EnqueueRead(addr.Loc{Rank: 0, Bank: 2, Row: 7, Col: 1}, 0, func(event.Cycle) {})
	q.RunUntil(2000)
	if got := c.Device().OpenRow(0, 2); got != 7 {
		t.Errorf("open-page policy closed the row (open=%d)", got)
	}
}

func TestClosedPageKeepsWantedRowOpen(t *testing.T) {
	// A row with queued same-row requests must not be closed early.
	c, q := newController(t, ModeNoRefresh, func(cfg *Config) { cfg.ClosedPage = true })
	done := 0
	for i := 0; i < 6; i++ {
		c.EnqueueRead(addr.Loc{Rank: 0, Bank: 2, Row: 7, Col: i}, 0,
			func(event.Cycle) { done++ })
	}
	q.RunUntil(5000)
	if done != 6 {
		t.Fatalf("completed %d of 6", done)
	}
	// All six must have been row hits after the single ACT.
	if acts := c.Device().NumACT.Value(); acts != 1 {
		t.Errorf("ACTs = %d, want 1 (closed-page closed a wanted row)", acts)
	}
}
