package memctrl

import (
	"math"

	"ropsim/internal/event"
)

// This file implements the controller's exact wake discipline: instead
// of re-arming a tick at now+1 whenever any work is pending (the
// original busy-polling, which burned an event per simulated cycle
// through every refresh freeze and timing stall), armNextWake computes
// the first cycle at which the controller could actually do anything —
// issue a command, or advance a refresh phase — and sleeps until then.
//
// The computation is exact, not a heuristic, which is what keeps the
// simulation bit-identical to per-cycle polling: between controller
// ticks the DRAM timing state is constant (it only advances when the
// controller issues commands) and the queues only change at enqueues
// (which arm an immediate tick of their own). So the first
// "interesting" cycle is a pure function of the state at arm time:
//   - per rank, the refresh state machine's next transition time
//     (refreshWake): due boundaries, drain/fill deadlines, the closing
//     sequence's next legal PRE/REF, and the freeze end;
//   - per queue, the earliest legal issue cycle over the per-bank
//     pending lists (queueWake), via dram.Device.NextReadyCycle;
//   - under the closed-page ablation, the earliest legal idle-row PRE
//     (closePageWake).
// Conditions that the original code re-evaluated one cycle later by
// construction (queue-emptiness phase transitions, and the write-drain
// hysteresis when its one-step update does not reach a fixed point)
// return now+1, reproducing the polling cadence exactly where it is
// semantically observable.

// cycleNever is the "no wake needed" sentinel, beyond any simulated
// time.
const cycleNever = event.Cycle(math.MaxInt64)

// minCycle returns the smaller of two cycles.
func minCycle(a, b event.Cycle) event.Cycle {
	if b < a {
		return b
	}
	return a
}

// armAfterTick schedules the controller's next wake from the post-tick
// state, reproducing the arming decision of the original per-cycle
// loop. While work remains (a command issued this tick, or any queue or
// refresh phase is active) the loop chained a tick at now+1; here the
// sleep jumps to the first cycle that can act, armed as a chained wake
// so its queue position matches the per-cycle chain it replaces. Once
// idle, the arming is the loop's own: the pending closed-page PRE
// retry if one exists, else the next refresh due time, as plain wakes.
func (c *Controller) armAfterTick(now event.Cycle, issued bool) {
	idle := c.Idle()
	if issued || !idle {
		if idle {
			// This tick's command drained the last pending work: the
			// polling chain runs one final no-op tick at now+1 whose idle
			// arming fixes the far wake's queue position. Run that tick
			// for real rather than sleeping past it.
			c.ensureWake(now + 1)
			return
		}
		next := c.nextWake(now)
		if next <= now || next == cycleNever {
			next = now + 1
		}
		c.armChained(next)
		return
	}
	if c.cfg.ClosedPage {
		if retry := c.closePageWake(now); retry < cycleNever {
			c.ensureWake(retry)
			return
		}
	}
	if next, ok := c.nextRefreshDue(); ok {
		c.ensureWake(next)
	}
}

// armChained arms the next tick at cycle at as a chained wake (see
// event.Queue.ScheduleChained), recording the handle so an enqueue
// during the sleep can pull the wake forward via ensureWake.
func (c *Controller) armChained(at event.Cycle) {
	if c.wakeAt >= 0 && c.wakeAt <= at {
		return
	}
	if debugWake != nil {
		debugWake("arm", c.q.Now(), at, int(c.wakeAt))
	}
	c.wakeChained = true
	c.wakeArmedAt = c.q.Now()
	c.wakeAt = at
	c.wakeChain = c.q.ScheduleChained(at, c.tickFn)
}

// nextWake computes the next interesting cycle without arming it.
func (c *Controller) nextWake(now event.Cycle) event.Cycle {
	next := cycleNever
	for r := range c.refresh {
		next = minCycle(next, c.refreshWake(r, now))
	}
	next = minCycle(next, c.scheduleWake(now))
	if c.cfg.ClosedPage {
		next = minCycle(next, c.closePageWake(now))
	}
	return next
}

// refreshWake reports the next cycle rank r's refresh state machine
// can make progress. Deadline-driven phases wake at their deadline;
// phases gated on queue emptiness wake at now+1 once the condition
// holds (the original per-cycle loop acted on it one tick after the
// issuing tick, because refreshStep runs before scheduleStep).
func (c *Controller) refreshWake(r int, now event.Cycle) event.Cycle {
	rr := &c.refresh[r]
	switch rr.phase {
	case refIdle:
		if c.oooMode() {
			return c.oooWake(r, now)
		}
		if c.cfg.Mode == ModeElastic && rr.backlog > 0 &&
			(rr.backlog >= maxElasticBacklog || !c.hasDemandReads(r)) {
			return now + 1 // owed refresh can issue in this idle gap
		}
		return rr.due
	case refDraining:
		empty := !c.hasDemandReads(r)
		if c.bankMode() {
			empty = !c.hasBankReads(r, rr.targetBank)
		}
		if empty {
			return now + 1
		}
		return rr.drainDeadline
	case refFilling:
		if !c.hasFills(r) {
			return now + 1
		}
		return rr.deadline
	case refPaused:
		if !c.hasDemandReads(r) {
			return now + 1
		}
		// Forced resume: the first cycle pausingForced becomes true.
		p := c.dev.Params()
		segLen := p.RFC / pauseSegments
		remaining := event.Cycle(pauseSegments-rr.segDone) * (segLen + pauseResumeOverhead + 20)
		forcedAt := rr.due + p.REFI - remaining
		if forcedAt <= now {
			return now + 1
		}
		return forcedAt
	case refClosing:
		return c.closingWake(r, now)
	case refRefreshing:
		return rr.refEnd
	}
	return cycleNever
}

// oooWake reports the next cycle the out-of-order refresh scheduler
// could act for rank r: now+1 when a slot is pickable right now
// (refreshStep runs the pick on its next tick), else the earliest
// upcoming slot-schedule boundary — the first cycle a refresh becomes
// owed (possibly forcing an issue) or a pull-in credit decays (freeing
// room for another pull-in), either of which can change the pick.
// Queue changes that unblock a pick between boundaries arm immediate
// ticks of their own.
func (c *Controller) oooWake(r int, now event.Cycle) event.Cycle {
	if slot, _ := c.pickOoOSlot(r, now); slot >= 0 {
		return now + 1
	}
	refi := c.dev.Params().REFI
	t := cycleNever
	for _, d := range c.refresh[r].slotDue {
		var b event.Cycle
		if d > now {
			// Next cycle this slot's ahead-count drops by one (its due
			// boundary when only one tREFI ahead).
			b = d - ((d-now-1)/refi)*refi
		} else {
			// Already owed: next cycle its owed-count grows by one.
			b = d + ((now-d)/refi+1)*refi
		}
		t = minCycle(t, b)
	}
	return t
}

// closingWake reports when the closing sequence can issue its next
// command: the first open bank's legal PRE, or — once quiesced — the
// legal REF (rank, per-bank, or per-subarray form, matching
// closeStep/closeBankStep/closeSubarrayStep).
func (c *Controller) closingWake(r int, now event.Cycle) event.Cycle {
	rr := &c.refresh[r]
	base := now + 1
	switch {
	case c.cfg.Mode == ModeSubarrayRefresh:
		b, sa := rr.targetBank, rr.targetSA
		if open := c.dev.OpenRow(r, b); open >= 0 && c.dev.SubarrayOf(int(open)) == sa {
			return c.dev.EarliestPRE(base, r, b)
		}
		return c.dev.EarliestREFsa(base, r, b, sa)
	case c.cfg.Mode == ModeSARP:
		slot := rr.targetBank
		sa := rr.slotSA[slot]
		for _, b := range c.dev.SlotBanks(slot) {
			if open := c.dev.OpenRow(r, b); open >= 0 && c.dev.SubarrayOf(int(open)) == sa {
				return c.dev.EarliestPRE(base, r, b)
			}
		}
		return c.dev.EarliestREFpbSub(base, r, slot, sa)
	case c.bankMode():
		for _, b := range c.dev.SlotBanks(rr.targetBank) {
			if c.dev.OpenRow(r, b) >= 0 {
				return c.dev.EarliestPRE(base, r, b)
			}
		}
		return c.dev.EarliestREFSlot(base, r, rr.targetBank)
	default:
		for b := 0; b < c.geo.Banks; b++ {
			if c.dev.OpenRow(r, b) >= 0 {
				return c.dev.EarliestPRE(base, r, b)
			}
		}
		return c.dev.EarliestREF(base, r)
	}
}

// nextDrainState applies one per-cycle update of the write-drain
// hysteresis (Config.WriteHigh/WriteLow watermarks, plus the idle-read
// trigger) to d and returns the new state. scheduleStep and
// scheduleWake share it so the wake computation tracks the issue path
// exactly.
func (c *Controller) nextDrainState(d bool) bool {
	if d {
		return len(c.writeQ) > c.cfg.WriteLow
	}
	return len(c.writeQ) >= c.cfg.WriteHigh ||
		(len(c.readQ) == 0 && len(c.fillQ) == 0 && len(c.writeQ) > 0)
}

// scheduleWake reports the earliest cycle scheduleStep could issue a
// command, given the queues and the write-drain hysteresis state.
func (c *Controller) scheduleWake(now event.Cycle) event.Cycle {
	if len(c.readQ) == 0 && len(c.writeQ) == 0 && len(c.fillQ) == 0 {
		return cycleNever
	}
	// The drain flag updates once per tick. If one update step is not a
	// fixed point (the flag would oscillate under per-cycle polling,
	// issuing a write every other cycle), fall back to ticking every
	// cycle — that cadence is observable in the command stream.
	f1 := c.nextDrainState(c.draining)
	if f1 != c.nextDrainState(f1) {
		return now + 1
	}
	t := c.queueWake(&c.readIdx, now, false, true)
	if len(c.fillQ) > 0 {
		t = minCycle(t, c.queueWake(&c.fillIdx, now, false, false))
	}
	if f1 {
		t = minCycle(t, c.queueWake(&c.writeIdx, now, true, true))
	}
	return t
}

// queueWake reports the earliest cycle any request in the indexed
// queue could issue its next command (column access, PRE, or ACT), or
// cycleNever when nothing is pending. demand applies the refresh
// blocking rules that issueFrom applies to non-prefetch traffic; banks
// skipped here (quiescing rank or target bank) are re-armed by the
// tick that advances the refresh phase.
func (c *Controller) queueWake(ix *bankIndex, now event.Cycle, isWrite, demand bool) event.Cycle {
	t := cycleNever
	base := now + 1
	saMode := c.cfg.Mode == ModeSubarrayRefresh || c.cfg.Mode == ModeSARP
	for r := 0; r < c.geo.Ranks; r++ {
		if ix.rankN[r] == 0 {
			continue
		}
		if demand && !c.bankMode() && c.refresh != nil && c.refresh[r].phase == refClosing {
			continue
		}
		for b := 0; b < c.geo.Banks; b++ {
			l := ix.list(r, b)
			if len(l) == 0 {
				continue
			}
			if demand && c.bankMode() && c.refresh != nil {
				if rr := &c.refresh[r]; rr.phase == refClosing && rr.targetBank == c.dev.SlotOf(b) {
					continue
				}
			}
			if open := c.dev.OpenRow(r, b); open >= 0 {
				// One representative per class suffices: all row hits
				// share the column timing, all misses the PRE timing.
				seenHit, seenMiss := false, false
				for _, req := range l {
					hit := int64(req.loc.Row) == open
					if (hit && !seenHit) || (!hit && !seenMiss) {
						t = minCycle(t, c.dev.NextReadyCycle(base, r, b, req.loc.Row, isWrite))
					}
					seenHit = seenHit || hit
					seenMiss = seenMiss || !hit
					if seenHit && seenMiss {
						break
					}
				}
			} else {
				// Closed bank: ACT legality is row-independent except for
				// per-subarray refresh locks.
				for _, req := range l {
					t = minCycle(t, c.dev.NextReadyCycle(base, r, b, req.loc.Row, isWrite))
					if !saMode {
						break
					}
				}
			}
			if t == base {
				return t
			}
		}
	}
	return t
}

// closePageWake reports the earliest legal PRE over open banks whose
// row no queued request wants (the closed-page policy's work), or
// cycleNever when every open row is wanted.
func (c *Controller) closePageWake(now event.Cycle) event.Cycle {
	t := cycleNever
	for r := 0; r < c.geo.Ranks; r++ {
		for b := 0; b < c.geo.Banks; b++ {
			open := c.dev.OpenRow(r, b)
			if open < 0 || c.rowWanted(r, b, int(open)) {
				continue
			}
			t = minCycle(t, c.dev.EarliestPRE(now+1, r, b))
		}
	}
	return t
}
