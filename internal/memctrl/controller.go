// Package memctrl implements the simulated memory controller: read and
// write transaction queues with FR-FCFS scheduling and batched write
// drain, the per-rank refresh state machine (auto-refresh baseline,
// idealized no-refresh, and the paper's ROP mode with pre-refresh drain
// and prefetch), and the SRAM service path that answers reads while a
// rank is frozen.
package memctrl

import (
	"fmt"

	"ropsim/internal/addr"
	"ropsim/internal/core"
	"ropsim/internal/dram"
	"ropsim/internal/event"
	"ropsim/internal/stats"
)

// Mode selects the refresh handling policy.
type Mode int

// Refresh handling modes.
const (
	// ModeBaseline is JEDEC auto-refresh: when a refresh is due the rank
	// closes its banks and freezes for tRFC; conflicting requests wait.
	ModeBaseline Mode = iota
	// ModeNoRefresh is the idealized refresh-free memory used to bound
	// refresh overheads (paper §III-A).
	ModeNoRefresh
	// ModeROP adds the paper's contribution: pre-refresh drain, the
	// probabilistic prefetcher, and SRAM service during the freeze.
	ModeROP
	// ModeElastic is Elastic Refresh (Stuecheli et al., MICRO'10), one
	// of the paper's related-work baselines: a due refresh is postponed
	// while demand reads are pending, up to the JEDEC limit of eight
	// outstanding refreshes, and issued during idle gaps.
	ModeElastic
	// ModePausing is Refresh Pausing (Nair et al., HPCA'13), another
	// related-work baseline: a refresh proceeds in tRFC/8 segments and
	// pauses between segments to service pending reads, resuming when
	// the rank's queue drains (with a re-lock overhead per resume).
	ModePausing
	// ModeBankRefresh refreshes one bank at a time (tREFIpb = tREFI /
	// banks apart, tRFCpb each): the paper's §VII future-work
	// granularity. Sibling banks keep serving during a bank's refresh.
	ModeBankRefresh
	// ModeROPBank combines bank-level refresh with ROP: before a bank
	// refreshes, its predicted lines are staged in the SRAM buffer, so
	// even the refreshed bank keeps answering reads.
	ModeROPBank
	// ModeSubarrayRefresh refreshes one subarray at a time (the paper's
	// §VII finest granularity, SALP-style): only rows of the refreshing
	// subarray conflict; the rest of the bank keeps serving.
	ModeSubarrayRefresh
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeNoRefresh:
		return "norefresh"
	case ModeROP:
		return "rop"
	case ModeElastic:
		return "elastic"
	case ModePausing:
		return "pausing"
	case ModeBankRefresh:
		return "bankrefresh"
	case ModeROPBank:
		return "rop-bank"
	case ModeSubarrayRefresh:
		return "subarray"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config parameterizes the controller. Table III: 64-entry read and
// write queues, FR-FCFS, writes scheduled in batches.
type Config struct {
	// Mode selects the refresh policy under simulation (baseline,
	// no-refresh, ROP, ...).
	Mode Mode

	ReadQueueCap  int // read queue capacity in requests (Table III: 64)
	WriteQueueCap int // write queue capacity in requests (Table III: 64)
	// WriteHigh and WriteLow are the write drain watermarks: draining
	// starts at WriteHigh pending writes (or when reads are idle) and
	// stops at WriteLow.
	WriteHigh, WriteLow int

	// MaxRefreshDelay bounds how long the ROP drain/prefetch phase may
	// postpone a due refresh, in tREFI units (JEDEC allows up to 8).
	MaxRefreshDelay float64

	// SRAMLatency is the bus-cycle latency of an SRAM buffer hit
	// (Table III: 3 CPU cycles ≈ 1 bus cycle; rounded up to 1).
	SRAMLatency event.Cycle

	// ROP configures the prefetch engine (ModeROP only).
	ROP core.Config

	// ClosedPage selects the closed-page row policy: banks precharge as
	// soon as no queued request wants their open row (the paper's
	// configuration is open-page; this is an ablation knob).
	ClosedPage bool

	// Capture enables request/refresh trace capture for the offline
	// refresh-blocking analysis (Figs 2-4, Table I).
	Capture bool
}

// DefaultConfig returns the paper's controller configuration for the
// given mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:            mode,
		ReadQueueCap:    64,
		WriteQueueCap:   64,
		WriteHigh:       48,
		WriteLow:        16,
		MaxRefreshDelay: 0.5,
		SRAMLatency:     1,
		ROP:             core.DefaultConfig(),
	}
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.ReadQueueCap <= 0 || c.WriteQueueCap <= 0 {
		return fmt.Errorf("memctrl: non-positive queue capacity")
	}
	if c.WriteLow < 0 || c.WriteHigh <= c.WriteLow || c.WriteHigh > c.WriteQueueCap {
		return fmt.Errorf("memctrl: bad write watermarks low=%d high=%d cap=%d",
			c.WriteLow, c.WriteHigh, c.WriteQueueCap)
	}
	if c.MaxRefreshDelay < 0 || c.MaxRefreshDelay > 8 {
		return fmt.Errorf("memctrl: MaxRefreshDelay %g outside [0,8]", c.MaxRefreshDelay)
	}
	if c.SRAMLatency < 0 {
		return fmt.Errorf("memctrl: negative SRAM latency")
	}
	if c.Mode == ModeROP || c.Mode == ModeROPBank {
		return c.ROP.Validate()
	}
	return nil
}

// request is one queued transaction.
type request struct {
	loc      addr.Loc
	arrive   event.Cycle
	src      int
	prefetch bool // ROP fill, not a demand access
	done     func(event.Cycle)
}

// Controller drives one DRAM channel.
type Controller struct {
	cfg Config
	dev *dram.Device
	q   *event.Queue
	geo addr.Geometry

	readQ    []*request
	writeQ   []*request
	fillQ    []*request // ROP prefetch fills for the rank about to refresh
	draining bool       // write batch in progress

	refresh []rankRefresh
	rop     *core.Engine

	wakeAt  event.Cycle // next scheduled tick (-1 when none)
	spaceFn func()      // back-pressure notification to the cores

	capture *Capture
	cmdObs  func(dram.Command) // optional command observer (protocol sanitizer)

	// sessionInsertedMark is the SRAM insert counter at the start of the
	// current fill session (consumption feedback, see startFills).
	sessionInsertedMark int64

	// ReadsServed and WritesServed count completed demand requests.
	ReadsServed, WritesServed stats.Counter
	// SRAMServed counts demand reads answered from the ROP prefetch
	// buffer instead of DRAM (paper §IV-A "revived" accesses).
	SRAMServed stats.Counter
	// PrefetchFillsIssued counts prefetch reads issued into the buffer
	// during refresh-shadow fill sessions.
	PrefetchFillsIssued stats.Counter
	ReadLatency         stats.Mean       // bus cycles, arrival to data
	ReadLatencyHist     *stats.Histogram // bus cycles, arrival to data
	// QueueFullEvents counts enqueue attempts rejected by a full
	// read/write queue (back-pressure to the cores).
	QueueFullEvents stats.Counter
	// RefreshesIssued counts REF commands across all ranks.
	RefreshesIssued        stats.Counter
	RefreshPostponedCycles stats.Mean // REF issue minus due time, bus cycles
	// FillsDropped counts prefetch fills abandoned because the fill
	// phase ended before their data returned.
	FillsDropped    stats.Counter
	FillPhaseCycles stats.Mean // fill-session length in bus cycles
	// PrefetchThrottled counts fill sessions cut short by the demand
	// queue pressure throttle.
	PrefetchThrottled stats.Counter
}

// readLatencyBounds are the ReadLatencyHist bucket bounds in bus
// cycles: the low end captures SRAM-buffer hits (~1 cycle) and row
// hits, the high end refresh-blocked tails (tRFC = 280 cycles at
// DDR4-1600 1x).
var readLatencyBounds = []int64{2, 8, 16, 32, 64, 128, 256, 512, 1024}

// RegisterMetrics registers the controller's service, latency and
// refresh counters into r (typically a "memctrl"-scoped sub-registry).
// Latencies and cycle means are in bus cycles (800 MHz domain). When
// the ROP engine is present its metrics land under "rop." within the
// same scope.
func (c *Controller) RegisterMetrics(r *stats.Registry) {
	r.Register("reads_served", &c.ReadsServed)
	r.Register("writes_served", &c.WritesServed)
	r.Register("sram_served", &c.SRAMServed)
	r.Register("prefetch_fills_issued", &c.PrefetchFillsIssued)
	r.Register("read_latency", &c.ReadLatency)
	r.Register("read_latency_hist", c.ReadLatencyHist)
	r.Register("queue_full_events", &c.QueueFullEvents)
	r.Register("refreshes_issued", &c.RefreshesIssued)
	r.Register("refresh_postponed_cycles", &c.RefreshPostponedCycles)
	r.Register("fills_dropped", &c.FillsDropped)
	r.Register("fill_phase_cycles", &c.FillPhaseCycles)
	r.Register("prefetch_throttled", &c.PrefetchThrottled)
	if c.rop != nil {
		c.rop.RegisterMetrics(r.Sub("rop"))
	}
}

// observeRead records one completed demand read's queue-arrival-to-data
// latency in bus cycles, in both the running mean and the histogram.
func (c *Controller) observeRead(busCycles float64) {
	c.ReadLatency.Observe(busCycles)
	c.ReadLatencyHist.Observe(int64(busCycles))
}

// New builds a controller for the given device, driven by queue q. It
// rejects an invalid configuration with the validation error (a bad
// CLI flag surfaces as a clean one-line error, not a stack trace).
func New(cfg Config, dev *dram.Device, q *event.Queue) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo := dev.Geometry()
	p0 := dev.Params()
	if p0.REFI > 0 {
		switch cfg.Mode {
		case ModeBankRefresh, ModeROPBank:
			if p0.RFCpb <= 0 {
				return nil, fmt.Errorf("memctrl: bank-refresh mode requires RFCpb timing")
			}
		case ModeSubarrayRefresh:
			if p0.RFCsa <= 0 || p0.Subarrays <= 0 {
				return nil, fmt.Errorf("memctrl: subarray-refresh mode requires RFCsa/Subarrays timing")
			}
		}
	}
	c := &Controller{
		cfg:             cfg,
		dev:             dev,
		q:               q,
		geo:             geo,
		wakeAt:          -1,
		ReadLatencyHist: stats.NewHistogram(readLatencyBounds...),
	}
	p := dev.Params()
	if cfg.Mode != ModeNoRefresh && p.REFI > 0 {
		c.refresh = make([]rankRefresh, geo.Ranks)
		cadence := p.REFI
		switch cfg.Mode {
		case ModeBankRefresh, ModeROPBank:
			cadence = p.REFI / event.Cycle(geo.Banks)
		case ModeSubarrayRefresh:
			cadence = p.REFI / event.Cycle(geo.Banks*p.Subarrays)
			if cadence < 1 {
				cadence = 1
			}
		}
		for r := range c.refresh {
			// Stagger rank refreshes across the cadence interval so that
			// at most one rank is frozen at a time (and the shared SRAM
			// buffer is never contended).
			c.refresh[r].due = cadence * event.Cycle(r+1) / event.Cycle(geo.Ranks)
		}
	}
	if p.REFI > 0 {
		var err error
		switch cfg.Mode {
		case ModeROP:
			c.rop, err = core.NewEngine(cfg.ROP, geo, p.REFI, p.RFC)
		case ModeROPBank:
			// Bank-level refresh: the observational window and freeze
			// length shrink to the per-bank schedule.
			c.rop, err = core.NewEngine(cfg.ROP, geo, p.REFI/event.Cycle(geo.Banks), p.RFCpb)
		}
		if err != nil {
			return nil, err
		}
	}
	if cfg.Capture {
		c.capture = &Capture{}
	}
	// Prime the tick loop so refreshes happen even before any request
	// arrives (an idle DRAM still refreshes).
	if next, ok := c.nextRefreshDue(); ok {
		c.ensureWake(next)
	}
	return c, nil
}

// MustNew is New for statically known-good configurations (tests); it
// panics on error.
func MustNew(cfg Config, dev *dram.Device, q *event.Queue) *Controller {
	c, err := New(cfg, dev, q)
	if err != nil {
		panic(err)
	}
	return c
}

// ROP exposes the prefetch engine (nil unless ModeROP).
func (c *Controller) ROP() *core.Engine { return c.rop }

// Device exposes the DRAM device (for energy accounting).
func (c *Controller) Device() *dram.Device { return c.dev }

// Capture returns the trace capture, or nil when disabled.
func (c *Controller) CaptureLog() *Capture { return c.capture }

// SetCommandObserver registers fn to be called with every DRAM command
// the controller issues (ACT/PRE/RD/WR/REF), in issue order. It is the
// hook the -check protocol sanitizer attaches to; nil disables it.
func (c *Controller) SetCommandObserver(fn func(dram.Command)) { c.cmdObs = fn }

// emit records an issued command into the capture trace (when enabled)
// and forwards it to the command observer (when registered). Every
// command-issue site routes through here so the sanitizer sees the
// complete stream.
func (c *Controller) emit(cmd dram.Command) {
	if c.capture != nil {
		c.capture.Command(cmd)
	}
	if c.cmdObs != nil {
		c.cmdObs(cmd)
	}
}

// SetSpaceNotify registers fn to run when queue space frees up after a
// rejected enqueue.
func (c *Controller) SetSpaceNotify(fn func()) { c.spaceFn = fn }

// ReadQueueLen reports current read queue occupancy.
func (c *Controller) ReadQueueLen() int { return len(c.readQ) }

// WriteQueueLen reports current write queue occupancy.
func (c *Controller) WriteQueueLen() int { return len(c.writeQ) }

// ensureWake schedules a tick at cycle at if none is scheduled earlier.
func (c *Controller) ensureWake(at event.Cycle) {
	if now := c.q.Now(); at < now {
		at = now
	}
	if c.wakeAt >= 0 && c.wakeAt <= at {
		return
	}
	if debugWake != nil {
		debugWake("arm", c.q.Now(), at, int(c.wakeAt))
	}
	c.wakeAt = at
	c.q.Schedule(at, c.tick)
}

// debugWake is a test hook.
var debugWake func(what string, now, at event.Cycle, wakeAt int)

// EnqueueRead submits a demand read. done runs when the data is
// available. It reports false when the read queue is full (the paper's
// command-queue-seizure backpressure).
func (c *Controller) EnqueueRead(loc addr.Loc, src int, done func(event.Cycle)) bool {
	now := c.q.Now()
	if len(c.readQ) >= c.cfg.ReadQueueCap {
		c.QueueFullEvents.Inc()
		return false
	}
	if c.capture != nil {
		c.capture.Request(now, loc.Rank, true)
	}
	if c.rop != nil {
		c.rop.OnRequest(loc, true, now)
		// A read arriving while its rank is frozen — or while the buffer
		// already holds the line ahead of the freeze — is served from
		// the SRAM buffer (the paper's central mechanism).
		frozen := c.dev.Refreshing(loc.Rank, now)
		if c.bankMode() {
			frozen = c.dev.BankRefreshing(loc.Rank, loc.Bank, now)
		}
		if c.rop.ProbeRead(loc, now, frozen) {
			c.SRAMServed.Inc()
			c.ReadsServed.Inc()
			fin := now + c.cfg.SRAMLatency
			c.observeRead(float64(fin - now))
			if done != nil {
				c.q.Schedule(fin, func(at event.Cycle) { done(at) })
			}
			return true
		}
	}
	c.readQ = append(c.readQ, &request{loc: loc, arrive: now, src: src, done: done})
	c.ensureWake(now)
	return true
}

// EnqueueWrite submits a posted write. It reports false when the write
// queue is full.
func (c *Controller) EnqueueWrite(loc addr.Loc, src int) bool {
	now := c.q.Now()
	if len(c.writeQ) >= c.cfg.WriteQueueCap {
		c.QueueFullEvents.Inc()
		return false
	}
	if c.capture != nil {
		c.capture.Request(now, loc.Rank, false)
	}
	if c.rop != nil {
		c.rop.OnRequest(loc, false, now)
		c.rop.OnWrite(loc)
	}
	c.writeQ = append(c.writeQ, &request{loc: loc, arrive: now, src: src})
	c.ensureWake(now)
	return true
}

// Idle reports whether the controller has no pending work at all.
func (c *Controller) Idle() bool {
	if len(c.readQ) > 0 || len(c.writeQ) > 0 || len(c.fillQ) > 0 {
		return false
	}
	for r := range c.refresh {
		if c.refresh[r].phase != refIdle {
			return false
		}
	}
	return true
}

// tick is the per-cycle scheduling step: at most one command on the
// channel per bus cycle, refresh actions first, then FR-FCFS.
//
// ensureWake may leave superseded tick events in the queue (it only
// tracks the earliest); a tick that does not match wakeAt is stale and
// must be a no-op, otherwise duplicate tick chains accumulate.
func (c *Controller) tick(now event.Cycle) {
	if now != c.wakeAt {
		if debugWake != nil {
			debugWake("stale", now, now, int(c.wakeAt))
		}
		return
	}
	c.wakeAt = -1

	issued := c.refreshStep(now)
	if !issued {
		issued = c.scheduleStep(now)
	}
	var closeRetry event.Cycle
	if !issued && c.cfg.ClosedPage {
		issued, closeRetry = c.closeIdleRows(now)
	}

	// Decide when to wake next: immediately while work remains, or at
	// the earliest refresh due time when idle.
	if issued || !c.Idle() {
		c.ensureWake(now + 1)
		return
	}
	if closeRetry > 0 {
		c.ensureWake(closeRetry)
		return
	}
	if next, ok := c.nextRefreshDue(); ok {
		c.ensureWake(next)
	}
}

// nextRefreshDue reports the earliest refresh due time across ranks.
func (c *Controller) nextRefreshDue() (event.Cycle, bool) {
	var best event.Cycle
	found := false
	for r := range c.refresh {
		if !found || c.refresh[r].due < best {
			best = c.refresh[r].due
			found = true
		}
	}
	return best, found
}

// rankBlocked reports whether demand traffic to the rank must hold off
// because of refresh activity.
func (c *Controller) rankBlocked(rank int, now event.Cycle) bool {
	if c.dev.Refreshing(rank, now) {
		return true
	}
	if c.refresh == nil {
		return false
	}
	ph := c.refresh[rank].phase
	// During closing, the rank must quiesce. During ROP draining, demand
	// reads to the rank are allowed (they are being drained).
	return ph == refClosing
}

// bankMode reports whether refresh runs at bank granularity.
func (c *Controller) bankMode() bool {
	return c.cfg.Mode == ModeBankRefresh || c.cfg.Mode == ModeROPBank
}

// reqBlocked reports whether a queued demand request must hold off for
// refresh activity. Bank modes block only the bank being refreshed;
// rank modes quiesce the whole rank.
func (c *Controller) reqBlocked(req *request, now event.Cycle) bool {
	if req.prefetch {
		return false
	}
	if c.bankMode() {
		if c.refresh != nil {
			rr := &c.refresh[req.loc.Rank]
			if rr.phase == refClosing && rr.targetBank == req.loc.Bank {
				return true
			}
		}
		return c.dev.BankRefreshing(req.loc.Rank, req.loc.Bank, now)
	}
	return c.rankBlocked(req.loc.Rank, now)
}

// completeRead finishes a demand read or prefetch fill at dataAt.
func (c *Controller) completeRead(req *request, dataAt event.Cycle) {
	if req.prefetch {
		c.PrefetchFillsIssued.Inc()
		if c.rop != nil {
			key := c.rop.LineKey(req.loc)
			buf := c.rop.Buffer()
			if buf.Owner() == req.loc.Rank {
				c.q.Schedule(dataAt, func(event.Cycle) {
					// Re-check ownership at fill time: the refresh may
					// have completed and released the buffer.
					if buf.Owner() == req.loc.Rank {
						buf.Insert(key)
					}
				})
			}
		}
		// Read merging: queued demand reads for the same line ride the
		// fill's data burst instead of fetching from DRAM again.
		kept := c.readQ[:0]
		merged := false
		for _, dr := range c.readQ {
			if dr.loc == req.loc {
				c.ReadsServed.Inc()
				c.observeRead(float64(dataAt - dr.arrive))
				if dr.done != nil {
					done := dr.done
					c.q.Schedule(dataAt, func(at event.Cycle) { done(at) })
				}
				merged = true
				continue
			}
			kept = append(kept, dr)
		}
		if merged {
			c.readQ = kept
			c.notifySpace()
		}
		return
	}
	c.ReadsServed.Inc()
	c.observeRead(float64(dataAt - req.arrive))
	if req.done != nil {
		done := req.done
		c.q.Schedule(dataAt, func(at event.Cycle) { done(at) })
	}
	// Symmetric merge: a pending prefetch fill for the same line rides
	// this demand burst into the buffer.
	for i, f := range c.fillQ {
		if f.loc == req.loc {
			c.fillQ = append(c.fillQ[:i], c.fillQ[i+1:]...)
			if c.rop != nil {
				key := c.rop.LineKey(req.loc)
				buf := c.rop.Buffer()
				if buf.Owner() == req.loc.Rank {
					c.q.Schedule(dataAt, func(event.Cycle) {
						if buf.Owner() == req.loc.Rank {
							buf.Insert(key)
						}
					})
				}
			}
			break
		}
	}
}

// scheduleStep picks and issues at most one demand/fill command using
// FR-FCFS: row hits first (oldest first), then the oldest request's
// bank-preparation command. It reports whether a command was issued.
func (c *Controller) scheduleStep(now event.Cycle) bool {
	// Choose the candidate set: prefetch fills and demand reads compete
	// first; writes only during a drain batch or when reads are absent.
	if c.draining {
		if len(c.writeQ) <= c.cfg.WriteLow {
			c.draining = false
		}
	} else if len(c.writeQ) >= c.cfg.WriteHigh ||
		(len(c.readQ) == 0 && len(c.fillQ) == 0 && len(c.writeQ) > 0) {
		c.draining = true
	}

	// Demand reads come first; prefetch fills ride in leftover slots
	// (paper §IV-D: drained requests are issued, prefetches
	// opportunistically alongside). An active fill window takes priority
	// over write drain batches: fills have a hard deadline before the
	// refresh freezes the rank, writes are posted and can wait.
	if !c.draining || len(c.fillQ) > 0 {
		if c.issueFrom(&c.readQ, now, false) {
			return true
		}
		if len(c.fillQ) > 0 && c.issueFrom(&c.fillQ, now, false) {
			return true
		}
		if c.draining {
			return c.issueFrom(&c.writeQ, now, true)
		}
		return false
	}
	if c.issueFrom(&c.writeQ, now, true) {
		return true
	}
	// Drain mode with nothing issuable: let reads through anyway so a
	// blocked write bank does not stall ready reads.
	return c.issueFrom(&c.readQ, now, false)
}

// issueFrom applies FR-FCFS to one queue. It reports whether a command
// was issued (RD/WR data, ACT, or PRE).
func (c *Controller) issueFrom(queue *[]*request, now event.Cycle, isWrite bool) bool {
	// Pass 1: oldest row hit whose column command is legal now.
	for i, req := range *queue {
		if c.reqBlocked(req, now) {
			continue
		}
		if c.dev.Refreshing(req.loc.Rank, now) {
			continue
		}
		if c.dev.OpenRow(req.loc.Rank, req.loc.Bank) != int64(req.loc.Row) {
			continue
		}
		if isWrite {
			if c.dev.EarliestWR(now, req.loc.Rank, req.loc.Bank) == now {
				c.dev.IssueWR(now, req.loc.Rank, req.loc.Bank)
				c.emit(dram.Command{Kind: dram.CmdWR, At: now,
					Rank: req.loc.Rank, Bank: req.loc.Bank, Col: req.loc.Col})
				c.WritesServed.Inc()
				c.removeFrom(queue, i)
				return true
			}
			continue
		}
		if c.dev.EarliestRD(now, req.loc.Rank, req.loc.Bank) == now {
			dataAt := c.dev.IssueRD(now, req.loc.Rank, req.loc.Bank)
			c.emit(dram.Command{Kind: dram.CmdRD, At: now,
				Rank: req.loc.Rank, Bank: req.loc.Bank, Col: req.loc.Col})
			c.completeRead(req, dataAt)
			c.removeFrom(queue, i)
			return true
		}
	}
	// Pass 2: oldest request that needs bank preparation.
	for _, req := range *queue {
		if c.reqBlocked(req, now) {
			continue
		}
		if c.dev.Refreshing(req.loc.Rank, now) {
			continue
		}
		open := c.dev.OpenRow(req.loc.Rank, req.loc.Bank)
		if open == int64(req.loc.Row) {
			continue // row hit not yet legal; wait rather than churn
		}
		if open >= 0 {
			if c.dev.EarliestPRE(now, req.loc.Rank, req.loc.Bank) == now {
				c.dev.IssuePRE(now, req.loc.Rank, req.loc.Bank)
				c.emit(dram.Command{Kind: dram.CmdPRE, At: now,
					Rank: req.loc.Rank, Bank: req.loc.Bank})
				return true
			}
			continue
		}
		if c.dev.EarliestACTRow(now, req.loc.Rank, req.loc.Bank, req.loc.Row) == now {
			c.dev.IssueACT(now, req.loc.Rank, req.loc.Bank, req.loc.Row)
			c.emit(dram.Command{Kind: dram.CmdACT, At: now,
				Rank: req.loc.Rank, Bank: req.loc.Bank, Row: req.loc.Row})
			return true
		}
	}
	return false
}

// removeFrom deletes entry i from the given queue and wakes any core
// waiting for queue space.
func (c *Controller) removeFrom(queue *[]*request, i int) {
	*queue = append((*queue)[:i], (*queue)[i+1:]...)
	if queue != &c.fillQ {
		c.notifySpace()
	}
}

func (c *Controller) notifySpace() {
	if c.spaceFn != nil {
		c.spaceFn()
	}
}

// closeIdleRows implements the closed-page policy: precharge one open
// bank whose row no queued request wants. It reports whether a PRE was
// issued and, when one is pending but not yet legal, the earliest cycle
// to retry.
func (c *Controller) closeIdleRows(now event.Cycle) (bool, event.Cycle) {
	var retry event.Cycle
	for r := 0; r < c.geo.Ranks; r++ {
		for b := 0; b < c.geo.Banks; b++ {
			open := c.dev.OpenRow(r, b)
			if open < 0 || c.rowWanted(r, b, int(open)) {
				continue
			}
			at := c.dev.EarliestPRE(now, r, b)
			if at == now {
				c.dev.IssuePRE(now, r, b)
				c.emit(dram.Command{Kind: dram.CmdPRE, At: now, Rank: r, Bank: b})
				return true, 0
			}
			if retry == 0 || at < retry {
				retry = at
			}
		}
	}
	return false, retry
}

// rowWanted reports whether any queued request targets the open row.
func (c *Controller) rowWanted(rank, bank, row int) bool {
	for _, q := range [][]*request{c.readQ, c.writeQ, c.fillQ} {
		for _, req := range q {
			if req.loc.Rank == rank && req.loc.Bank == bank && req.loc.Row == row {
				return true
			}
		}
	}
	return false
}

// SetDebugWake installs the wake test hook (diagnostics).
func SetDebugWake(fn func(what string, now, at int64, wakeAt int)) {
	if fn == nil {
		debugWake = nil
		return
	}
	debugWake = func(what string, now, at event.Cycle, wakeAt int) {
		fn(what, int64(now), int64(at), wakeAt)
	}
}
