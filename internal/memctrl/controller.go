// Package memctrl implements the simulated memory controller: read and
// write transaction queues with FR-FCFS scheduling and batched write
// drain, the per-rank refresh state machine (auto-refresh baseline,
// idealized no-refresh, and the paper's ROP mode with pre-refresh drain
// and prefetch), and the SRAM service path that answers reads while a
// rank is frozen.
package memctrl

import (
	"fmt"

	"ropsim/internal/addr"
	"ropsim/internal/core"
	"ropsim/internal/dram"
	"ropsim/internal/event"
	"ropsim/internal/stats"
)

// Mode selects the refresh handling policy.
type Mode int

// Refresh handling modes.
const (
	// ModeBaseline is JEDEC auto-refresh: when a refresh is due the rank
	// closes its banks and freezes for tRFC; conflicting requests wait.
	ModeBaseline Mode = iota
	// ModeNoRefresh is the idealized refresh-free memory used to bound
	// refresh overheads (paper §III-A).
	ModeNoRefresh
	// ModeROP adds the paper's contribution: pre-refresh drain, the
	// probabilistic prefetcher, and SRAM service during the freeze.
	ModeROP
	// ModeElastic is Elastic Refresh (Stuecheli et al., MICRO'10), one
	// of the paper's related-work baselines: a due refresh is postponed
	// while demand reads are pending, up to the JEDEC limit of eight
	// outstanding refreshes, and issued during idle gaps.
	ModeElastic
	// ModePausing is Refresh Pausing (Nair et al., HPCA'13), another
	// related-work baseline: a refresh proceeds in tRFC/8 segments and
	// pauses between segments to service pending reads, resuming when
	// the rank's queue drains (with a re-lock overhead per resume).
	ModePausing
	// ModeBankRefresh refreshes one bank at a time (tREFIpb = tREFI /
	// banks apart, tRFCpb each): the paper's §VII future-work
	// granularity. Sibling banks keep serving during a bank's refresh.
	ModeBankRefresh
	// ModeROPBank combines bank-level refresh with ROP: before a bank
	// refreshes, its predicted lines are staged in the SRAM buffer, so
	// even the refreshed bank keeps answering reads.
	ModeROPBank
	// ModeSubarrayRefresh refreshes one subarray at a time (the paper's
	// §VII finest granularity, SALP-style): only rows of the refreshing
	// subarray conflict; the rest of the bank keeps serving.
	ModeSubarrayRefresh
	// ModeOutOfOrderBank is out-of-order per-bank refresh scheduling
	// (Chang et al. HPCA'14 §4.2 baseline scheduler): each refresh
	// slot's due time is tracked separately, an idle slot's refresh is
	// pulled forward and a busy slot's postponed, both within the JEDEC
	// eight-command pull-in/postpone window.
	ModeOutOfOrderBank
	// ModeDARP is Dynamic Access-Refresh Parallelization (Chang et al.
	// HPCA'14): out-of-order per-bank refresh plus write-drain
	// piggybacking — during a write-drain batch, refreshes issue to
	// banks with no pending writes, hiding them under the drain.
	ModeDARP
	// ModeSARP is Subarray Access-Refresh Parallelization (Chang et al.
	// HPCA'14): a bank's refresh is confined to one subarray per
	// command, so demand to the bank's other subarrays proceeds during
	// the whole tRFCpb window (~0.71% DRAM die cost, surfaced as a
	// metric).
	ModeSARP
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeNoRefresh:
		return "norefresh"
	case ModeROP:
		return "rop"
	case ModeElastic:
		return "elastic"
	case ModePausing:
		return "pausing"
	case ModeBankRefresh:
		return "bankrefresh"
	case ModeROPBank:
		return "rop-bank"
	case ModeSubarrayRefresh:
		return "subarray"
	case ModeOutOfOrderBank:
		return "ooo-bank"
	case ModeDARP:
		return "darp"
	case ModeSARP:
		return "sarp"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config parameterizes the controller. Table III: 64-entry read and
// write queues, FR-FCFS, writes scheduled in batches.
type Config struct {
	// Mode selects the refresh policy under simulation (baseline,
	// no-refresh, ROP, ...).
	Mode Mode

	ReadQueueCap  int // read queue capacity in requests (Table III: 64)
	WriteQueueCap int // write queue capacity in requests (Table III: 64)
	// WriteHigh and WriteLow are the write drain watermarks: draining
	// starts at WriteHigh pending writes (or when reads are idle) and
	// stops at WriteLow.
	WriteHigh, WriteLow int

	// MaxRefreshDelay bounds how long the ROP drain/prefetch phase may
	// postpone a due refresh, in tREFI units (JEDEC allows up to 8).
	MaxRefreshDelay float64

	// SRAMLatency is the bus-cycle latency of an SRAM buffer hit
	// (Table III: 3 CPU cycles ≈ 1 bus cycle; rounded up to 1).
	SRAMLatency event.Cycle

	// ROP configures the prefetch engine (ModeROP only).
	ROP core.Config

	// ClosedPage selects the closed-page row policy: banks precharge as
	// soon as no queued request wants their open row (the paper's
	// configuration is open-page; this is an ablation knob).
	ClosedPage bool

	// Capture enables request/refresh trace capture for the offline
	// refresh-blocking analysis (Figs 2-4, Table I).
	Capture bool
}

// DefaultConfig returns the paper's controller configuration for the
// given mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:            mode,
		ReadQueueCap:    64,
		WriteQueueCap:   64,
		WriteHigh:       48,
		WriteLow:        16,
		MaxRefreshDelay: 0.5,
		SRAMLatency:     1,
		ROP:             core.DefaultConfig(),
	}
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.ReadQueueCap <= 0 || c.WriteQueueCap <= 0 {
		return fmt.Errorf("memctrl: non-positive queue capacity")
	}
	if c.WriteLow < 0 || c.WriteHigh <= c.WriteLow || c.WriteHigh > c.WriteQueueCap {
		return fmt.Errorf("memctrl: bad write watermarks low=%d high=%d cap=%d",
			c.WriteLow, c.WriteHigh, c.WriteQueueCap)
	}
	if c.MaxRefreshDelay < 0 || c.MaxRefreshDelay > 8 {
		return fmt.Errorf("memctrl: MaxRefreshDelay %g outside [0,8]", c.MaxRefreshDelay)
	}
	if c.SRAMLatency < 0 {
		return fmt.Errorf("memctrl: negative SRAM latency")
	}
	if c.Mode == ModeROP || c.Mode == ModeROPBank {
		return c.ROP.Validate()
	}
	return nil
}

// request is one queued transaction.
type request struct {
	loc      addr.Loc
	arrive   event.Cycle
	src      int
	seq      int64 // controller-wide age stamp; FR-FCFS "oldest" = lowest seq
	prefetch bool  // ROP fill, not a demand access
	done     func(event.Cycle)
}

// Controller drives one DRAM channel.
type Controller struct {
	cfg Config
	dev *dram.Device
	q   *event.Queue
	geo addr.Geometry

	readQ    []*request
	writeQ   []*request
	fillQ    []*request // ROP prefetch fills for the rank about to refresh
	draining bool       // write batch in progress

	// readIdx/writeIdx/fillIdx are per-(rank,bank) views of the three
	// queues (see bankIndex); reqSeq stamps requests with their age.
	readIdx, writeIdx, fillIdx bankIndex
	reqSeq                     int64

	refresh []rankRefresh
	rop     *core.Engine

	wakeAt      event.Cycle       // cycle of the currently armed tick (-1 when none)
	wakeChained bool              // the armed tick is a chained wake (see armAfterTick)
	wakeArmedAt event.Cycle       // cycle at which the armed tick was scheduled
	wakeChain   event.ChainHandle // retarget handle for the armed chained wake
	lastExact   event.Cycle       // CrossCheckWake: last computed exact wake
	tickFn      func(event.Cycle) // tick as a stored closure, reused by every arm
	spaceFn     func()            // back-pressure notification to the cores

	capture *Capture
	cmdObs  func(dram.Command) // optional command observer (protocol sanitizer)

	// sessionInsertedMark is the SRAM insert counter at the start of the
	// current fill session (consumption feedback, see startFills).
	sessionInsertedMark int64

	// ReadsServed and WritesServed count completed demand requests.
	ReadsServed, WritesServed stats.Counter
	// SRAMServed counts demand reads answered from the ROP prefetch
	// buffer instead of DRAM (paper §IV-A "revived" accesses).
	SRAMServed stats.Counter
	// PrefetchFillsIssued counts prefetch reads issued into the buffer
	// during refresh-shadow fill sessions.
	PrefetchFillsIssued stats.Counter
	ReadLatency         stats.Mean       // bus cycles, arrival to data
	ReadLatencyHist     *stats.Histogram // bus cycles, arrival to data
	// QueueFullEvents counts enqueue attempts rejected by a full
	// read/write queue (back-pressure to the cores).
	QueueFullEvents stats.Counter
	// RefreshesIssued counts REF commands across all ranks.
	RefreshesIssued        stats.Counter
	RefreshPostponedCycles stats.Mean // REF issue minus due time, bus cycles
	// FillsDropped counts prefetch fills abandoned because the fill
	// phase ended before their data returned.
	FillsDropped    stats.Counter
	FillPhaseCycles stats.Mean // fill-session length in bus cycles
	// PrefetchThrottled counts fill sessions cut short by the demand
	// queue pressure throttle.
	PrefetchThrottled stats.Counter
	// RefreshPullIns counts refreshes issued ahead of their slot's due
	// time (out-of-order scheduling's JEDEC pull-in window).
	RefreshPullIns stats.Counter
	// DrainPiggybacks counts refreshes issued during a write-drain batch
	// under DARP (write-refresh parallelization, Chang et al. HPCA'14).
	DrainPiggybacks stats.Counter
	// SARPParallelServes counts demand ACT/RD/WR commands issued to a
	// bank while one of its subarrays was refreshing — the accesses SARP
	// parallelizes with refresh.
	SARPParallelServes stats.Counter
}

// sarpDieAreaPct is the DRAM die area overhead Chang et al. HPCA'14
// report for SARP's per-subarray peripherals (§5.4), in percent;
// surfaced as a gauge so the cost rides along with the benefit.
const sarpDieAreaPct = 0.71

// readLatencyBounds are the ReadLatencyHist bucket bounds in bus
// cycles: the low end captures SRAM-buffer hits (~1 cycle) and row
// hits, the high end refresh-blocked tails (tRFC = 280 cycles at
// DDR4-1600 1x).
var readLatencyBounds = []int64{2, 8, 16, 32, 64, 128, 256, 512, 1024}

// RegisterMetrics registers the controller's service, latency and
// refresh counters into r (typically a "memctrl"-scoped sub-registry).
// Latencies and cycle means are in bus cycles (800 MHz domain). When
// the ROP engine is present its metrics land under "rop." within the
// same scope.
func (c *Controller) RegisterMetrics(r *stats.Registry) {
	r.Register("reads_served", &c.ReadsServed)
	r.Register("writes_served", &c.WritesServed)
	r.Register("sram_served", &c.SRAMServed)
	r.Register("prefetch_fills_issued", &c.PrefetchFillsIssued)
	r.Register("read_latency", &c.ReadLatency)
	r.Register("read_latency_hist", c.ReadLatencyHist)
	r.Register("queue_full_events", &c.QueueFullEvents)
	r.Register("refreshes_issued", &c.RefreshesIssued)
	r.Register("refresh_postponed_cycles", &c.RefreshPostponedCycles)
	r.Register("fills_dropped", &c.FillsDropped)
	r.Register("fill_phase_cycles", &c.FillPhaseCycles)
	r.Register("prefetch_throttled", &c.PrefetchThrottled)
	r.Register("refresh_pull_ins", &c.RefreshPullIns)
	r.Register("drain_piggybacks", &c.DrainPiggybacks)
	r.Register("sarp_parallel_cmds", &c.SARPParallelServes)
	if c.cfg.Mode == ModeSARP {
		r.Gauge("sarp_die_area_overhead_pct", func() float64 { return sarpDieAreaPct })
	}
	if c.rop != nil {
		c.rop.RegisterMetrics(r.Sub("rop"))
	}
}

// observeRead records one completed demand read's queue-arrival-to-data
// latency in bus cycles, in both the running mean and the histogram.
func (c *Controller) observeRead(busCycles float64) {
	c.ReadLatency.Observe(busCycles)
	c.ReadLatencyHist.Observe(int64(busCycles))
}

// New builds a controller for the given device, driven by queue q. It
// rejects an invalid configuration with the validation error (a bad
// CLI flag surfaces as a clean one-line error, not a stack trace).
func New(cfg Config, dev *dram.Device, q *event.Queue) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo := dev.Geometry()
	p0 := dev.Params()
	if p0.REFI > 0 {
		switch cfg.Mode {
		case ModeBankRefresh, ModeROPBank, ModeOutOfOrderBank, ModeDARP:
			if p0.RFCpb <= 0 {
				return nil, fmt.Errorf("memctrl: bank-refresh mode requires RFCpb timing")
			}
		case ModeSubarrayRefresh:
			if p0.RFCsa <= 0 || p0.Subarrays <= 0 {
				return nil, fmt.Errorf("memctrl: subarray-refresh mode requires RFCsa/Subarrays timing")
			}
		case ModeSARP:
			if p0.RFCpb <= 0 || p0.Subarrays <= 0 {
				return nil, fmt.Errorf("memctrl: SARP requires RFCpb/Subarrays timing")
			}
		}
	}
	c := &Controller{
		cfg:             cfg,
		dev:             dev,
		q:               q,
		geo:             geo,
		wakeAt:          -1,
		ReadLatencyHist: stats.NewHistogram(readLatencyBounds...),
	}
	c.tickFn = c.tick
	c.readIdx.init(geo)
	c.writeIdx.init(geo)
	c.fillIdx.init(geo)
	p := dev.Params()
	if cfg.Mode != ModeNoRefresh && p.REFI > 0 {
		c.refresh = make([]rankRefresh, geo.Ranks)
		cadence := p.REFI
		switch cfg.Mode {
		case ModeBankRefresh, ModeROPBank, ModeOutOfOrderBank, ModeDARP, ModeSARP:
			// One bank-granularity command per slot per tREFI: slots =
			// banks, except under same-bank refresh (DDR5) where one
			// command covers a whole bank set.
			cadence = p.REFI / event.Cycle(dev.RefreshSlots())
		case ModeSubarrayRefresh:
			cadence = p.REFI / event.Cycle(geo.Banks*p.Subarrays)
			if cadence < 1 {
				cadence = 1
			}
		}
		for r := range c.refresh {
			// Stagger rank refreshes across the cadence interval so that
			// at most one rank is frozen at a time (and the shared SRAM
			// buffer is never contended).
			c.refresh[r].due = cadence * event.Cycle(r+1) / event.Cycle(geo.Ranks)
			switch {
			case c.oooMode():
				// Out-of-order scheduling tracks a due time per slot: the
				// in-order schedule would visit slot s one cadence after
				// slot s-1, each slot recurring every tREFI.
				n := dev.RefreshSlots()
				sd := make([]event.Cycle, n)
				for s := 0; s < n; s++ {
					sd[s] = c.refresh[r].due + cadence*event.Cycle(s)
				}
				c.refresh[r].slotDue = sd
			case cfg.Mode == ModeSARP:
				// A rotating subarray counter per slot: a shared counter
				// would alias with the slot rotation (same slot count and
				// subarray count ⇒ every bank refreshing one subarray
				// forever), so each slot rotates independently.
				c.refresh[r].slotSA = make([]int, dev.RefreshSlots())
			}
		}
	}
	if p.REFI > 0 {
		var err error
		switch cfg.Mode {
		case ModeROP:
			c.rop, err = core.NewEngine(cfg.ROP, geo, p.REFI, p.RFC)
		case ModeROPBank:
			// Bank-level refresh: the observational window and freeze
			// length shrink to the per-slot schedule.
			c.rop, err = core.NewEngine(cfg.ROP, geo, p.REFI/event.Cycle(dev.RefreshSlots()), p.RFCpb)
		}
		if err != nil {
			return nil, err
		}
	}
	if cfg.Capture {
		c.capture = &Capture{}
	}
	// Prime the tick loop so refreshes happen even before any request
	// arrives (an idle DRAM still refreshes).
	if next, ok := c.nextRefreshDue(); ok {
		c.ensureWake(next)
	}
	return c, nil
}

// MustNew is New for statically known-good configurations (tests); it
// panics on error.
func MustNew(cfg Config, dev *dram.Device, q *event.Queue) *Controller {
	c, err := New(cfg, dev, q)
	if err != nil {
		panic(err)
	}
	return c
}

// ROP exposes the prefetch engine (nil unless ModeROP).
func (c *Controller) ROP() *core.Engine { return c.rop }

// Device exposes the DRAM device (for energy accounting).
func (c *Controller) Device() *dram.Device { return c.dev }

// Capture returns the trace capture, or nil when disabled.
func (c *Controller) CaptureLog() *Capture { return c.capture }

// SetCommandObserver registers fn to be called with every DRAM command
// the controller issues (ACT/PRE/RD/WR/REF), in issue order. It is the
// hook the -check protocol sanitizer attaches to; nil disables it.
func (c *Controller) SetCommandObserver(fn func(dram.Command)) { c.cmdObs = fn }

// emit records an issued command into the capture trace (when enabled)
// and forwards it to the command observer (when registered). Every
// command-issue site routes through here so the sanitizer sees the
// complete stream.
func (c *Controller) emit(cmd dram.Command) {
	if c.cfg.Mode == ModeSARP {
		switch cmd.Kind {
		case dram.CmdACT, dram.CmdRD, dram.CmdWR:
			if c.dev.AnySubarrayRefreshing(cmd.Rank, cmd.Bank, cmd.At) {
				c.SARPParallelServes.Inc()
			}
		}
	}
	if c.capture != nil {
		c.capture.Command(cmd)
	}
	if c.cmdObs != nil {
		c.cmdObs(cmd)
	}
}

// SetSpaceNotify registers fn to run when queue space frees up after a
// rejected enqueue.
func (c *Controller) SetSpaceNotify(fn func()) { c.spaceFn = fn }

// ReadQueueLen reports current read queue occupancy.
func (c *Controller) ReadQueueLen() int { return len(c.readQ) }

// WriteQueueLen reports current write queue occupancy.
func (c *Controller) WriteQueueLen() int { return len(c.writeQ) }

// ensureWake arms a tick at cycle at unless one is already armed at or
// before it. Arming an earlier wake does not cancel the later event
// already in the queue: that event keeps its original queue position
// (its order relative to same-cycle enqueues is observable in the
// command stream) and is skipped or re-validated against wakeAt when
// it fires — see tick.
//
// When the armed wake is a chained sleep from a previous cycle (the
// controller computed "nothing to do until W" and went to sleep),
// arming an earlier cycle pulls that chained wake forward instead of
// scheduling a new event: the polling chain this emulates would have
// had a tick queued at the current cycle already, at the chain's
// per-cycle queue position, and ensureWake would have been a no-op
// against it. If the chained wake was armed during the current cycle
// (the chain's tick for this cycle already fired), a fresh plain tick
// is scheduled, exactly as the polling loop's ensureWake would have.
func (c *Controller) ensureWake(at event.Cycle) {
	now := c.q.Now()
	if at < now {
		at = now
	}
	if c.wakeAt >= 0 && c.wakeAt <= at {
		return
	}
	if debugWake != nil {
		debugWake("arm", now, at, int(c.wakeAt))
	}
	if c.wakeChained && c.wakeAt > at {
		if c.wakeArmedAt < at && c.q.RetargetChained(c.wakeChain, at) {
			c.wakeAt = at
			return
		}
	}
	c.wakeChained = false
	c.wakeAt = at
	c.q.Schedule(at, c.tickFn)
}

// debugWake is a test hook.
var debugWake func(what string, now, at event.Cycle, wakeAt int)

// EnqueueRead submits a demand read. done runs when the data is
// available. It reports false when the read queue is full (the paper's
// command-queue-seizure backpressure).
func (c *Controller) EnqueueRead(loc addr.Loc, src int, done func(event.Cycle)) bool {
	now := c.q.Now()
	if len(c.readQ) >= c.cfg.ReadQueueCap {
		c.QueueFullEvents.Inc()
		return false
	}
	if c.capture != nil {
		c.capture.Request(now, loc.Rank, true)
	}
	if c.rop != nil {
		c.rop.OnRequest(loc, true, now)
		// A read arriving while its rank is frozen — or while the buffer
		// already holds the line ahead of the freeze — is served from
		// the SRAM buffer (the paper's central mechanism).
		frozen := c.dev.Refreshing(loc.Rank, now)
		if c.bankMode() {
			frozen = c.dev.BankRefreshing(loc.Rank, loc.Bank, now)
		}
		if c.rop.ProbeRead(loc, now, frozen) {
			c.SRAMServed.Inc()
			c.ReadsServed.Inc()
			fin := now + c.cfg.SRAMLatency
			c.observeRead(float64(fin - now))
			if done != nil {
				c.q.Schedule(fin, done)
			}
			return true
		}
	}
	c.pushRequest(&c.readQ, &request{loc: loc, arrive: now, src: src, done: done})
	if CrossCheckWake {
		c.lastExact = now
	}
	c.ensureWake(now)
	return true
}

// EnqueueWrite submits a posted write. It reports false when the write
// queue is full.
func (c *Controller) EnqueueWrite(loc addr.Loc, src int) bool {
	now := c.q.Now()
	if len(c.writeQ) >= c.cfg.WriteQueueCap {
		c.QueueFullEvents.Inc()
		return false
	}
	if c.capture != nil {
		c.capture.Request(now, loc.Rank, false)
	}
	if c.rop != nil {
		c.rop.OnRequest(loc, false, now)
		c.rop.OnWrite(loc)
	}
	c.pushRequest(&c.writeQ, &request{loc: loc, arrive: now, src: src})
	if CrossCheckWake {
		c.lastExact = now
	}
	c.ensureWake(now)
	return true
}

// pushRequest stamps req's age, appends it to the queue, and mirrors
// it into the queue's bank index. Every enqueue site routes through
// here so queue and index cannot drift.
func (c *Controller) pushRequest(queue *[]*request, req *request) {
	c.reqSeq++
	req.seq = c.reqSeq
	*queue = append(*queue, req)
	c.indexFor(queue).add(req)
}

// indexFor maps a queue to its bank index.
func (c *Controller) indexFor(queue *[]*request) *bankIndex {
	switch queue {
	case &c.readQ:
		return &c.readIdx
	case &c.writeQ:
		return &c.writeIdx
	default:
		return &c.fillIdx
	}
}

// Idle reports whether the controller has no pending work at all.
func (c *Controller) Idle() bool {
	if len(c.readQ) > 0 || len(c.writeQ) > 0 || len(c.fillQ) > 0 {
		return false
	}
	for r := range c.refresh {
		if c.refresh[r].phase != refIdle {
			return false
		}
	}
	return true
}

// tick is one scheduling step: at most one command on the channel per
// bus cycle, refresh actions first, then FR-FCFS. Unlike the original
// per-cycle polling loop (which re-armed now+1 whenever any work was
// pending), ticks only fire at cycles where the controller can act;
// armNextWake computes the next such cycle exactly (see wake.go), so
// frozen and timing-stalled cycles are slept through.
func (c *Controller) tick(now event.Cycle) {
	if now != c.wakeAt {
		// Superseded wake: a later ensureWake armed a different cycle
		// after this event was queued (or another tick already claimed
		// this cycle). Skip explicitly — no work may run off a
		// superseded wake; TestNoSupersededWakeDoesWork enforces this.
		if debugWake != nil {
			debugWake("skip", now, now, int(c.wakeAt))
		}
		return
	}
	c.wakeAt = -1
	c.wakeChained = false
	if debugWake != nil {
		debugWake("fire", now, now, int(now))
	}

	var preDrain bool
	var prePhases [16]refPhase
	if CrossCheckWake {
		preDrain = c.draining
		for r := range c.refresh {
			prePhases[r] = c.refresh[r].phase
		}
	}

	issued := c.refreshStep(now)
	if !issued {
		issued = c.scheduleStep(now)
	}
	if !issued && c.cfg.ClosedPage {
		issued = c.closeIdleRows(now)
	}
	if CrossCheckWake {
		changed := issued || preDrain != c.draining
		for r := range c.refresh {
			changed = changed || prePhases[r] != c.refresh[r].phase
		}
		if changed && c.lastExact > now {
			panic(fmt.Sprintf("exact wake missed work: now=%d exact=%d issued=%v mode=%v draining %v->%v",
				now, c.lastExact, issued, c.cfg.Mode, preDrain, c.draining))
		}
		c.lastExact = c.nextWake(now)
		if issued || !c.Idle() {
			c.ensureWake(now + 1)
			return
		}
		if c.cfg.ClosedPage {
			if retry := c.closePageWake(now); retry < cycleNever {
				c.ensureWake(retry)
				return
			}
		}
		if next, ok := c.nextRefreshDue(); ok {
			c.ensureWake(next)
		}
		return
	}
	c.armAfterTick(now, issued)
}

// CrossCheckWake is a validation hook for the exact wake discipline:
// when set, every tick re-arms at the original per-cycle polling
// cadence (so simulations still produce bit-identical results) and
// panics if the exact wake computed after the previous tick would have
// slept past a cycle where this tick issued a command or advanced
// controller state. TestCrossCheckWake runs full simulations in every
// refresh mode under it. Not safe to toggle mid-run.
var CrossCheckWake bool

// nextRefreshDue reports the earliest cycle at which any rank's
// refresh machine wants attention: the earliest due time, except under
// out-of-order scheduling where it is the earliest issuable pick or
// slot-schedule boundary (oooWake).
func (c *Controller) nextRefreshDue() (event.Cycle, bool) {
	ooo := c.oooMode()
	now := c.q.Now()
	var best event.Cycle
	found := false
	for r := range c.refresh {
		due := c.refresh[r].due
		if ooo && c.refresh[r].phase == refIdle {
			due = c.oooWake(r, now)
		}
		if !found || due < best {
			best = due
			found = true
		}
	}
	return best, found
}

// bankMode reports whether refresh runs at bank granularity: a due
// refresh targets one slot and demand blocking is per bank, not per
// rank. SARP qualifies — its refresh command covers a slot — but its
// banks never set refBusyUntil, so bankBlocked only covers the brief
// refClosing quiesce of the target slot.
func (c *Controller) bankMode() bool {
	switch c.cfg.Mode {
	case ModeBankRefresh, ModeROPBank, ModeOutOfOrderBank, ModeDARP, ModeSARP:
		return true
	}
	return false
}

// oooMode reports whether refresh slots are scheduled out of order
// (per-slot due times with the JEDEC pull-in/postpone window).
func (c *Controller) oooMode() bool {
	return c.cfg.Mode == ModeOutOfOrderBank || c.cfg.Mode == ModeDARP
}

// completeRead finishes a demand read or prefetch fill at dataAt.
func (c *Controller) completeRead(req *request, dataAt event.Cycle) {
	if req.prefetch {
		c.PrefetchFillsIssued.Inc()
		if c.rop != nil {
			key := c.rop.LineKey(req.loc)
			buf := c.rop.Buffer()
			if buf.Owner() == req.loc.Rank {
				c.q.Schedule(dataAt, func(event.Cycle) {
					// Re-check ownership at fill time: the refresh may
					// have completed and released the buffer.
					if buf.Owner() == req.loc.Rank {
						buf.Insert(key)
					}
				})
			}
		}
		// Read merging: queued demand reads for the same line ride the
		// fill's data burst instead of fetching from DRAM again.
		kept := c.readQ[:0]
		merged := false
		for _, dr := range c.readQ {
			if dr.loc == req.loc {
				c.ReadsServed.Inc()
				c.observeRead(float64(dataAt - dr.arrive))
				if dr.done != nil {
					done := dr.done
					c.q.Schedule(dataAt, done)
				}
				merged = true
				continue
			}
			kept = append(kept, dr)
		}
		if merged {
			c.readQ = kept
			c.readIdx.rebuild(c.readQ)
			c.notifySpace()
		}
		return
	}
	c.ReadsServed.Inc()
	c.observeRead(float64(dataAt - req.arrive))
	if req.done != nil {
		done := req.done
		c.q.Schedule(dataAt, func(at event.Cycle) { done(at) })
	}
	// Symmetric merge: a pending prefetch fill for the same line rides
	// this demand burst into the buffer.
	for _, f := range c.fillQ {
		if f.loc == req.loc {
			c.removeReq(&c.fillQ, f)
			if c.rop != nil {
				key := c.rop.LineKey(req.loc)
				buf := c.rop.Buffer()
				if buf.Owner() == req.loc.Rank {
					c.q.Schedule(dataAt, func(event.Cycle) {
						if buf.Owner() == req.loc.Rank {
							buf.Insert(key)
						}
					})
				}
			}
			break
		}
	}
}

// scheduleStep picks and issues at most one demand/fill command using
// FR-FCFS: row hits first (oldest first), then the oldest request's
// bank-preparation command. It reports whether a command was issued.
func (c *Controller) scheduleStep(now event.Cycle) bool {
	// Choose the candidate set: prefetch fills and demand reads compete
	// first; writes only during a drain batch or when reads are absent.
	c.draining = c.nextDrainState(c.draining)

	// Demand reads come first; prefetch fills ride in leftover slots
	// (paper §IV-D: drained requests are issued, prefetches
	// opportunistically alongside). An active fill window takes priority
	// over write drain batches: fills have a hard deadline before the
	// refresh freezes the rank, writes are posted and can wait.
	if !c.draining || len(c.fillQ) > 0 {
		if c.issueFrom(&c.readQ, now, false) {
			return true
		}
		if len(c.fillQ) > 0 && c.issueFrom(&c.fillQ, now, false) {
			return true
		}
		if c.draining {
			return c.issueFrom(&c.writeQ, now, true)
		}
		return false
	}
	if c.issueFrom(&c.writeQ, now, true) {
		return true
	}
	// Drain mode with nothing issuable: let reads through anyway so a
	// blocked write bank does not stall ready reads.
	return c.issueFrom(&c.readQ, now, false)
}

// bankBlocked is the bank-granularity refresh block (bank modes only):
// the round's target refresh slot covers the bank and is quiescing, or
// the bank is locked by its per-bank refresh.
func (c *Controller) bankBlocked(rank, bank int, now event.Cycle) bool {
	if c.refresh != nil {
		if rr := &c.refresh[rank]; rr.phase == refClosing && rr.targetBank == c.dev.SlotOf(bank) {
			return true
		}
	}
	return c.dev.BankRefreshing(rank, bank, now)
}

// issueFrom applies FR-FCFS to one queue via its per-bank index. It
// reports whether a command was issued (RD/WR data, ACT, or PRE).
// Within each bank the index list is age-ordered, so the bank's oldest
// row hit (pass 1) or oldest preparation candidate (pass 2) is found
// without scanning the whole queue; the winner across banks is the one
// with the lowest seq, which reproduces the original oldest-first
// full-queue scan exactly.
func (c *Controller) issueFrom(queue *[]*request, now event.Cycle, isWrite bool) bool {
	ix := c.indexFor(queue)
	demand := queue != &c.fillQ
	// Pass 1: oldest row hit whose column command is legal now.
	var hit *request
	for r := 0; r < c.geo.Ranks; r++ {
		if ix.rankN[r] == 0 || c.dev.Refreshing(r, now) {
			continue
		}
		if demand && !c.bankMode() && c.refresh != nil && c.refresh[r].phase == refClosing {
			continue
		}
		for b := 0; b < c.geo.Banks; b++ {
			l := ix.list(r, b)
			if len(l) == 0 {
				continue
			}
			if demand && c.bankMode() && c.bankBlocked(r, b, now) {
				continue
			}
			open := c.dev.OpenRow(r, b)
			if open < 0 {
				continue
			}
			var cand *request
			for _, req := range l {
				if int64(req.loc.Row) == open {
					cand = req
					break
				}
			}
			if cand == nil || (hit != nil && cand.seq > hit.seq) {
				continue
			}
			if isWrite {
				if c.dev.EarliestWR(now, r, b) != now {
					continue
				}
			} else if c.dev.EarliestRD(now, r, b) != now {
				continue
			}
			hit = cand
		}
	}
	if hit != nil {
		r, b := hit.loc.Rank, hit.loc.Bank
		if isWrite {
			c.dev.IssueWR(now, r, b)
			c.emit(dram.Command{Kind: dram.CmdWR, At: now,
				Rank: r, Bank: b, Col: hit.loc.Col})
			c.WritesServed.Inc()
			c.removeReq(queue, hit)
			return true
		}
		dataAt := c.dev.IssueRD(now, r, b)
		c.emit(dram.Command{Kind: dram.CmdRD, At: now,
			Rank: r, Bank: b, Col: hit.loc.Col})
		c.completeRead(hit, dataAt)
		c.removeReq(queue, hit)
		return true
	}
	// Pass 2: oldest request whose bank-preparation command (PRE for a
	// conflicting open row, ACT for a precharged bank) is legal now. A
	// row hit whose column command is not yet legal waits rather than
	// churns, so it never prepares.
	var prep *request
	for r := 0; r < c.geo.Ranks; r++ {
		if ix.rankN[r] == 0 || c.dev.Refreshing(r, now) {
			continue
		}
		if demand && !c.bankMode() && c.refresh != nil && c.refresh[r].phase == refClosing {
			continue
		}
		for b := 0; b < c.geo.Banks; b++ {
			l := ix.list(r, b)
			if len(l) == 0 {
				continue
			}
			if demand && c.bankMode() && c.bankBlocked(r, b, now) {
				continue
			}
			open := c.dev.OpenRow(r, b)
			if open >= 0 {
				var cand *request
				for _, req := range l {
					if int64(req.loc.Row) != open {
						cand = req
						break
					}
				}
				if cand == nil || (prep != nil && cand.seq > prep.seq) {
					continue
				}
				if c.dev.EarliestPRE(now, r, b) == now {
					prep = cand
				}
				continue
			}
			if c.dev.EarliestACT(now, r, b) != now {
				continue // no row of this bank can activate yet
			}
			for _, req := range l {
				if prep != nil && req.seq > prep.seq {
					break
				}
				if c.dev.EarliestACTRow(now, r, b, req.loc.Row) == now {
					prep = req
					break
				}
			}
		}
	}
	if prep != nil {
		r, b := prep.loc.Rank, prep.loc.Bank
		if c.dev.OpenRow(r, b) >= 0 {
			c.dev.IssuePRE(now, r, b)
			c.emit(dram.Command{Kind: dram.CmdPRE, At: now, Rank: r, Bank: b})
			return true
		}
		c.dev.IssueACT(now, r, b, prep.loc.Row)
		c.emit(dram.Command{Kind: dram.CmdACT, At: now,
			Rank: r, Bank: b, Row: prep.loc.Row})
		return true
	}
	return false
}

// removeReq deletes req from the given queue and its bank index, and
// wakes any core waiting for queue space.
func (c *Controller) removeReq(queue *[]*request, req *request) {
	q := *queue
	for i, r := range q {
		if r == req {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			*queue = q[:len(q)-1]
			break
		}
	}
	c.indexFor(queue).remove(req)
	if queue != &c.fillQ {
		c.notifySpace()
	}
}

func (c *Controller) notifySpace() {
	if c.spaceFn != nil {
		c.spaceFn()
	}
}

// closeIdleRows implements the closed-page policy: precharge one open
// bank whose row no queued request wants. It reports whether a PRE was
// issued; pending-but-illegal PREs are retried via closePageWake.
func (c *Controller) closeIdleRows(now event.Cycle) bool {
	for r := 0; r < c.geo.Ranks; r++ {
		for b := 0; b < c.geo.Banks; b++ {
			open := c.dev.OpenRow(r, b)
			if open < 0 || c.rowWanted(r, b, int(open)) {
				continue
			}
			if c.dev.EarliestPRE(now, r, b) == now {
				c.dev.IssuePRE(now, r, b)
				c.emit(dram.Command{Kind: dram.CmdPRE, At: now, Rank: r, Bank: b})
				return true
			}
		}
	}
	return false
}

// rowWanted reports whether any queued request targets the open row.
// The bank indexes narrow the check to the bank's own pending lists.
func (c *Controller) rowWanted(rank, bank, row int) bool {
	for _, req := range c.readIdx.list(rank, bank) {
		if req.loc.Row == row {
			return true
		}
	}
	for _, req := range c.writeIdx.list(rank, bank) {
		if req.loc.Row == row {
			return true
		}
	}
	for _, req := range c.fillIdx.list(rank, bank) {
		if req.loc.Row == row {
			return true
		}
	}
	return false
}

// SetDebugWake installs the wake test hook (diagnostics).
func SetDebugWake(fn func(what string, now, at int64, wakeAt int)) {
	if fn == nil {
		debugWake = nil
		return
	}
	debugWake = func(what string, now, at event.Cycle, wakeAt int) {
		fn(what, int64(now), int64(at), wakeAt)
	}
}
