package memctrl

import (
	"ropsim/internal/dram"
	"ropsim/internal/event"
)

// ReqEvent records one demand request arrival for offline analysis.
type ReqEvent struct {
	At     event.Cycle // arrival time in bus cycles
	Rank   int         // target rank
	IsRead bool        // read (true) or write (false)
}

// RefEvent records one issued refresh.
type RefEvent struct {
	At   event.Cycle // REF issue time in bus cycles
	Rank int         // refreshed rank
}

// Capture accumulates the request/refresh timeline the paper's §III
// analysis runs over (Figs 2-4, Table I). Command capture is optional
// and used by the timing-validation tests.
type Capture struct {
	// Requests is the demand-request arrival timeline, in issue order.
	Requests []ReqEvent
	// Refreshes is the REF issue timeline, in issue order.
	Refreshes []RefEvent

	// StoreCommands enables full DRAM command capture.
	StoreCommands bool
	// Commands holds every issued DRAM command when StoreCommands is set.
	Commands []dram.Command
}

// Request records a demand request arrival.
func (c *Capture) Request(at event.Cycle, rank int, isRead bool) {
	c.Requests = append(c.Requests, ReqEvent{At: at, Rank: rank, IsRead: isRead})
}

// Refresh records a REF issue.
func (c *Capture) Refresh(at event.Cycle, rank int) {
	c.Refreshes = append(c.Refreshes, RefEvent{At: at, Rank: rank})
}

// Command records a DRAM command when StoreCommands is set.
func (c *Capture) Command(cmd dram.Command) {
	if c.StoreCommands {
		c.Commands = append(c.Commands, cmd)
	}
}
