package memctrl

import "ropsim/internal/addr"

// bankIndex maintains per-(rank, bank) views of one transaction
// queue's pending requests, each list in age (seq) order. It replaces
// the full-queue rescans of the original FR-FCFS loop: the scheduler
// visits only banks that actually have work, finds the oldest row hit
// of a bank in one step, and the refresh machine's queue-emptiness
// probes (hasDemandReads and friends) become O(1) counter reads. The
// index mirrors its queue exactly; every mutation of readQ/writeQ/fillQ
// goes through pushRequest/removeReq or is followed by rebuild.
type bankIndex struct {
	banks int          // banks per rank (list stride)
	lists [][]*request // rank*banks+bank → pending requests, oldest first
	rankN []int        // live requests per rank
}

// init sizes the index for the channel geometry.
func (ix *bankIndex) init(geo addr.Geometry) {
	ix.banks = geo.Banks
	ix.lists = make([][]*request, geo.Ranks*geo.Banks)
	ix.rankN = make([]int, geo.Ranks)
}

// add appends req to its bank's list. Callers add requests in seq
// order, so lists stay age-sorted.
func (ix *bankIndex) add(req *request) {
	i := req.loc.Rank*ix.banks + req.loc.Bank
	ix.lists[i] = append(ix.lists[i], req)
	ix.rankN[req.loc.Rank]++
}

// remove deletes req from its bank's list (no-op if absent).
func (ix *bankIndex) remove(req *request) {
	i := req.loc.Rank*ix.banks + req.loc.Bank
	l := ix.lists[i]
	for j, r := range l {
		if r == req {
			copy(l[j:], l[j+1:])
			l[len(l)-1] = nil
			ix.lists[i] = l[:len(l)-1]
			ix.rankN[req.loc.Rank]--
			return
		}
	}
}

// list returns the bank's pending requests, oldest first. Callers must
// not mutate it.
func (ix *bankIndex) list(rank, bank int) []*request {
	return ix.lists[rank*ix.banks+bank]
}

// rebuild resynchronizes the index from the queue after a bulk filter
// (fill drops, SRAM probes, read merging).
func (ix *bankIndex) rebuild(queue []*request) {
	for i := range ix.lists {
		l := ix.lists[i]
		for j := range l {
			l[j] = nil
		}
		ix.lists[i] = l[:0]
	}
	for i := range ix.rankN {
		ix.rankN[i] = 0
	}
	for _, req := range queue {
		ix.add(req)
	}
}
