package memctrl

import (
	"reflect"
	"sort"
	"testing"

	"ropsim/internal/dram"
	"ropsim/internal/event"
)

// newStandardController builds a controller on a registered DRAM
// standard instead of the default DDR4-1600 test device.
func newStandardController(t *testing.T, name string, mode Mode) (*Controller, *event.Queue) {
	t.Helper()
	std, err := dram.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := std.Params(dram.Refresh1x)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(mode)
	cfg.ROP.TrainRefreshes = 3
	q := &event.Queue{}
	dev := dram.NewDevice(p, std.Geometry(2))
	return MustNew(cfg, dev, q), q
}

// TestSameBankRefreshEmitsSlotGroups pins DDR5 same-bank refresh at the
// controller level: under ModeBankRefresh, each refresh command covers
// one whole slot — the same bank index in all 8 bank groups — so the
// observed command stream must arrive in groups of 8 CmdREFpb sharing
// one issue cycle, whose bank set is exactly the device's slot set.
func TestSameBankRefreshEmitsSlotGroups(t *testing.T) {
	c, q := newStandardController(t, "DDR5-4800", ModeBankRefresh)
	var refpb []dram.Command
	c.SetCommandObserver(func(cmd dram.Command) {
		if cmd.Kind == dram.CmdREFpb {
			refpb = append(refpb, cmd)
		}
	})
	defer c.SetCommandObserver(nil)

	dev := c.Device()
	p := dev.Params()
	q.RunUntil(4 * p.REFI)
	if len(refpb) == 0 {
		t.Fatal("no per-bank refresh commands observed")
	}
	groups := len(dev.SlotBanks(0))
	if len(refpb)%groups != 0 {
		t.Fatalf("observed %d CmdREFpb, not a multiple of the %d-bank slot size",
			len(refpb), groups)
	}
	for i := 0; i < len(refpb); i += groups {
		first := refpb[i]
		banks := make([]int, 0, groups)
		for _, cmd := range refpb[i : i+groups] {
			if cmd.At != first.At || cmd.Rank != first.Rank {
				t.Fatalf("slot group at %d not atomic: %+v vs %+v", first.At, first, cmd)
			}
			banks = append(banks, cmd.Bank)
		}
		sort.Ints(banks)
		want := append([]int(nil), dev.SlotBanks(dev.SlotOf(banks[0]))...)
		sort.Ints(want)
		if !reflect.DeepEqual(banks, want) {
			t.Fatalf("slot group banks %v, want slot set %v", banks, want)
		}
	}
	// One command per slot per cadence interval: REFI covers all 4 slots,
	// per rank. RefreshesIssued counts slot commands, not locked banks.
	slots := int64(dev.RefreshSlots())
	want := 2 /* ranks */ * slots * 4 /* intervals */
	if got := c.RefreshesIssued.Value(); got < want-4 || got > want+4 {
		t.Errorf("slot refreshes = %d, want ≈%d", got, want)
	}
}

// TestBankRefreshCadencePerStandard checks that the round-robin bank
// refresh sustains the standard's required rate — one full round per
// tREFI — for each native granularity: singleton slots on DDR4/LPDDR4,
// 8-bank slots on DDR5.
func TestBankRefreshCadencePerStandard(t *testing.T) {
	for _, name := range []string{"DDR4-1600", "DDR5-4800", "LPDDR4-3200"} {
		c, q := newStandardController(t, name, ModeBankRefresh)
		dev := c.Device()
		p := dev.Params()
		const intervals = 6
		q.RunUntil(intervals * p.REFI)
		want := int64(2 /* ranks */ * dev.RefreshSlots() * intervals)
		got := c.RefreshesIssued.Value()
		if got < want-8 || got > want+8 {
			t.Errorf("%s: refresh commands = %d, want ≈%d", name, got, want)
		}
		wantLocked := c.RefreshesIssued.Value() * int64(len(dev.SlotBanks(0))) * int64(p.RFCpb)
		if locked := dev.RefLockedCycles.Value(); locked != wantLocked {
			t.Errorf("%s: RefLockedCycles = %d, want %d", name, locked, wantLocked)
		}
	}
}

// TestAllModesRunOnAllStandards smoke-runs every refresh policy on every
// registered standard: the controller must construct and stay live (its
// scheduled refreshes issue) regardless of the device's native
// granularity.
func TestAllModesRunOnAllStandards(t *testing.T) {
	modes := []Mode{
		ModeBaseline, ModeNoRefresh, ModeROP, ModeElastic,
		ModePausing, ModeBankRefresh, ModeROPBank, ModeSubarrayRefresh,
	}
	for _, std := range dram.Standards() {
		for _, mode := range modes {
			c, q := newStandardController(t, std.Name(), mode)
			p := c.Device().Params()
			if mode == ModeNoRefresh {
				// Rebuild with refresh disabled, as the simulator does.
				cfg := DefaultConfig(mode)
				q = &event.Queue{}
				c = MustNew(cfg, dram.NewDevice(dram.NoRefresh(p), std.Geometry(2)), q)
			}
			q.RunUntil(3 * dram.DDR4_1600(dram.Refresh1x).REFI)
			if mode == ModeNoRefresh {
				if got := c.RefreshesIssued.Value(); got != 0 {
					t.Errorf("%s/%v: %d refreshes under norefresh", std.Name(), mode, got)
				}
				continue
			}
			if got := c.RefreshesIssued.Value(); got == 0 {
				t.Errorf("%s/%v: controller issued no refreshes", std.Name(), mode)
			}
		}
	}
}
