package memctrl

import (
	"math/rand"
	"testing"

	"ropsim/internal/addr"
	"ropsim/internal/core"
	"ropsim/internal/dram"
	"ropsim/internal/event"
)

func testGeo() addr.Geometry {
	return addr.Geometry{Channels: 1, Ranks: 2, Banks: 8, Rows: 512, ColumnLines: 64}
}

func newController(t *testing.T, mode Mode, mutate func(*Config)) (*Controller, *event.Queue) {
	t.Helper()
	params := dram.DDR4_1600(dram.Refresh1x)
	if mode == ModeNoRefresh {
		params = dram.NoRefresh(params)
	}
	cfg := DefaultConfig(mode)
	cfg.ROP.TrainRefreshes = 3
	if mutate != nil {
		mutate(&cfg)
	}
	q := &event.Queue{}
	dev := dram.NewDevice(params, testGeo())
	return MustNew(cfg, dev, q), q
}

func TestSingleReadLatency(t *testing.T) {
	c, q := newController(t, ModeNoRefresh, nil)
	p := c.Device().Params()
	var doneAt event.Cycle
	loc := addr.Loc{Rank: 0, Bank: 0, Row: 5, Col: 3}
	if !c.EnqueueRead(loc, 0, func(at event.Cycle) { doneAt = at }) {
		t.Fatal("enqueue rejected")
	}
	q.RunUntil(10000)
	// ACT issues in the same cycle as the enqueue (cycle 0), RD at RCD,
	// data at +CL+BL/2.
	want := (p.RCD + p.CL) + p.DataCycles()
	if doneAt != want {
		t.Errorf("read done at %d, want %d", doneAt, want)
	}
	if c.ReadsServed.Value() != 1 {
		t.Errorf("ReadsServed = %d", c.ReadsServed.Value())
	}
}

func TestRowHitSecondReadFaster(t *testing.T) {
	c, q := newController(t, ModeNoRefresh, nil)
	var first, second event.Cycle
	c.EnqueueRead(addr.Loc{Rank: 0, Bank: 0, Row: 5, Col: 3}, 0,
		func(at event.Cycle) { first = at })
	c.EnqueueRead(addr.Loc{Rank: 0, Bank: 0, Row: 5, Col: 4}, 0,
		func(at event.Cycle) { second = at })
	q.RunUntil(10000)
	if second <= first {
		t.Fatalf("second read done at %d, first at %d", second, first)
	}
	gap := second - first
	if gap > 8 {
		t.Errorf("row-hit follow-up took %d cycles after first, want small", gap)
	}
}

func TestWritesDrainEventually(t *testing.T) {
	c, q := newController(t, ModeNoRefresh, nil)
	for i := 0; i < 20; i++ {
		if !c.EnqueueWrite(addr.Loc{Rank: 0, Bank: i % 8, Row: 1, Col: i}, 0) {
			t.Fatalf("write %d rejected", i)
		}
	}
	q.RunUntil(100000)
	if c.WritesServed.Value() != 20 {
		t.Errorf("WritesServed = %d, want 20", c.WritesServed.Value())
	}
	if c.WriteQueueLen() != 0 {
		t.Errorf("write queue still has %d entries", c.WriteQueueLen())
	}
}

func TestWriteBatchingPrioritizesReads(t *testing.T) {
	c, q := newController(t, ModeNoRefresh, nil)
	// A handful of writes below the high watermark plus a read: the
	// read must finish before the writes start draining in batch.
	for i := 0; i < 8; i++ {
		c.EnqueueWrite(addr.Loc{Rank: 0, Bank: 1, Row: 2, Col: i}, 0)
	}
	var readDone event.Cycle
	c.EnqueueRead(addr.Loc{Rank: 0, Bank: 0, Row: 5, Col: 0}, 0,
		func(at event.Cycle) { readDone = at })
	q.RunUntil(100000)
	if readDone == 0 {
		t.Fatal("read never completed")
	}
	p := c.Device().Params()
	noContention := (1 + p.RCD + p.CL) + p.DataCycles()
	if readDone > noContention+p.CCD {
		t.Errorf("read delayed to %d by buffered writes (uncontended %d)", readDone, noContention)
	}
}

func TestBaselineRefreshesPeriodically(t *testing.T) {
	c, q := newController(t, ModeBaseline, func(cfg *Config) { cfg.Capture = true })
	p := c.Device().Params()
	horizon := 20 * p.REFI
	q.Schedule(0, func(event.Cycle) {}) // prime the queue
	c.EnqueueRead(addr.Loc{Rank: 0, Bank: 0, Row: 1, Col: 1}, 0, func(event.Cycle) {})
	q.RunUntil(horizon)
	refs := c.RefreshesIssued.Value()
	// 2 ranks x ~20 intervals, staggered start: allow slack.
	if refs < 30 || refs > 42 {
		t.Errorf("refreshes = %d, want ≈40", refs)
	}
	// Per-rank spacing must be ~tREFI.
	lastByRank := map[int]event.Cycle{}
	for _, ref := range c.CaptureLog().Refreshes {
		if prev, ok := lastByRank[ref.Rank]; ok {
			gap := ref.At - prev
			// A delayed first refresh shortens the next gap by the
			// closing time (PREs + tRP); allow that slack.
			if gap < p.REFI-4*p.RP || gap > p.REFI+2*p.RFC {
				t.Errorf("rank %d refresh gap %d, want ≈%d", ref.Rank, gap, p.REFI)
			}
		}
		lastByRank[ref.Rank] = ref.At
	}
}

func TestNoRefreshModeNeverRefreshes(t *testing.T) {
	c, q := newController(t, ModeNoRefresh, nil)
	c.EnqueueRead(addr.Loc{Rank: 0, Bank: 0, Row: 1, Col: 1}, 0, func(event.Cycle) {})
	q.RunUntil(100000)
	if c.RefreshesIssued.Value() != 0 || c.Device().NumREF.Value() != 0 {
		t.Error("no-refresh mode issued refreshes")
	}
}

func TestBaselineReadBlockedByRefresh(t *testing.T) {
	c, q := newController(t, ModeBaseline, func(cfg *Config) { cfg.Capture = true })
	p := c.Device().Params()
	// Find the first refresh of rank 0 (staggered at REFI/2 for rank 0
	// of 2), then inject a read just after it starts.
	refAt := p.REFI / 2
	var doneAt event.Cycle
	q.Schedule(refAt+5, func(event.Cycle) {
		c.EnqueueRead(addr.Loc{Rank: 0, Bank: 2, Row: 9, Col: 0}, 0,
			func(at event.Cycle) { doneAt = at })
	})
	q.RunUntil(refAt + 4*p.RFC)
	if len(c.CaptureLog().Refreshes) == 0 {
		t.Fatal("no refresh captured")
	}
	first := c.CaptureLog().Refreshes[0]
	if first.Rank != 0 {
		t.Fatalf("first refresh on rank %d", first.Rank)
	}
	if doneAt == 0 {
		t.Fatal("blocked read never completed")
	}
	if doneAt < first.At+p.RFC {
		t.Errorf("read done at %d, before refresh end %d", doneAt, first.At+p.RFC)
	}
}

func TestOtherRankUnaffectedByRefresh(t *testing.T) {
	c, q := newController(t, ModeBaseline, func(cfg *Config) { cfg.Capture = true })
	p := c.Device().Params()
	refAt := p.REFI / 2 // rank 0's first refresh
	var doneAt event.Cycle
	q.Schedule(refAt+5, func(event.Cycle) {
		c.EnqueueRead(addr.Loc{Rank: 1, Bank: 2, Row: 9, Col: 0}, 0,
			func(at event.Cycle) { doneAt = at })
	})
	q.RunUntil(refAt + 2*p.RFC)
	uncontended := (1 + p.RCD + p.CL) + p.DataCycles()
	if doneAt == 0 || doneAt > refAt+5+uncontended+10 {
		t.Errorf("read on idle rank done at %d (injected %d)", doneAt, refAt+5)
	}
}

// driveSequentialReads schedules a steady sequential read stream on rank
// 0 bank 0 and returns a stop function.
func driveSequentialReads(c *Controller, q *event.Queue, gap event.Cycle, horizon event.Cycle) {
	line := int64(0)
	var step func(now event.Cycle)
	step = func(now event.Cycle) {
		loc := addr.LocFromBankLine(testGeo(), 0, 0, 0, line)
		c.EnqueueRead(loc, 0, func(event.Cycle) {})
		line++
		if now+gap <= horizon {
			q.Schedule(now+gap, step)
		}
	}
	q.Schedule(0, step)
}

func TestROPServesReadsDuringRefresh(t *testing.T) {
	c, q := newController(t, ModeROP, nil)
	p := c.Device().Params()
	horizon := 40 * p.REFI
	driveSequentialReads(c, q, 40, horizon)
	q.RunUntil(horizon)
	if c.RefreshesIssued.Value() == 0 {
		t.Fatal("no refreshes")
	}
	if c.ROP().PrefetchLaunches.Value() == 0 {
		t.Fatal("ROP never prefetched")
	}
	if c.SRAMServed.Value() == 0 {
		t.Error("no reads served from SRAM during refresh")
	}
	buf := c.ROP().Buffer()
	if buf.Inserted.Value() == 0 {
		t.Error("no lines were filled into the buffer")
	}
	if hr := buf.HitRate(0); hr < 0.5 {
		t.Errorf("SRAM hit rate %.2f for pure sequential stream, want ≥0.5", hr)
	}
}

func TestROPLowerLatencyThanBaseline(t *testing.T) {
	run := func(mode Mode) float64 {
		c, q := newController(t, mode, nil)
		p := c.Device().Params()
		horizon := 40 * p.REFI
		driveSequentialReads(c, q, 40, horizon)
		q.RunUntil(horizon)
		return c.ReadLatency.Value()
	}
	base := run(ModeBaseline)
	rop := run(ModeROP)
	if rop >= base {
		t.Errorf("ROP mean read latency %.1f not below baseline %.1f", rop, base)
	}
}

func TestQueueBackpressure(t *testing.T) {
	c, q := newController(t, ModeNoRefresh, func(cfg *Config) { cfg.ReadQueueCap = 4 })
	notified := 0
	c.SetSpaceNotify(func() { notified++ })
	accepted := 0
	for i := 0; i < 10; i++ {
		if c.EnqueueRead(addr.Loc{Rank: 0, Bank: i % 8, Row: i, Col: 0}, 0, func(event.Cycle) {}) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Errorf("accepted %d reads, want 4", accepted)
	}
	if c.QueueFullEvents.Value() != 6 {
		t.Errorf("QueueFullEvents = %d, want 6", c.QueueFullEvents.Value())
	}
	q.RunUntil(100000)
	if notified == 0 {
		t.Error("space notification never fired")
	}
}

func TestCommandStreamLegalInAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeBaseline, ModeNoRefresh, ModeROP} {
		c, q := newController(t, mode, func(cfg *Config) { cfg.Capture = true })
		c.CaptureLog().StoreCommands = true
		p := c.Device().Params()
		horizon := 25 * dram.DDR4_1600(dram.Refresh1x).REFI
		rng := rand.New(rand.NewSource(7))
		var drive func(now event.Cycle)
		drive = func(now event.Cycle) {
			loc := addr.Loc{
				Rank: rng.Intn(2), Bank: rng.Intn(8),
				Row: rng.Intn(512), Col: rng.Intn(64),
			}
			if rng.Intn(4) == 0 {
				c.EnqueueWrite(loc, 0)
			} else {
				c.EnqueueRead(loc, 0, func(event.Cycle) {})
			}
			next := now + event.Cycle(rng.Intn(60)+1)
			if next <= horizon {
				q.Schedule(next, drive)
			}
		}
		q.Schedule(0, drive)
		q.RunUntil(horizon)

		checker := dram.NewChecker(p, testGeo())
		for i, cmd := range c.CaptureLog().Commands {
			if err := checker.Check(cmd); err != nil {
				t.Fatalf("mode %v: command %d illegal: %v", mode, i, err)
			}
		}
		if mode != ModeNoRefresh && c.RefreshesIssued.Value() == 0 {
			t.Errorf("mode %v: no refreshes in capture run", mode)
		}
	}
}

func TestRefreshNeverPostponedBeyondBound(t *testing.T) {
	c, q := newController(t, ModeROP, func(cfg *Config) {
		cfg.Capture = true
		cfg.MaxRefreshDelay = 0.5
	})
	p := c.Device().Params()
	horizon := 30 * p.REFI
	driveSequentialReads(c, q, 25, horizon)
	q.RunUntil(horizon)
	for i, ref := range c.CaptureLog().Refreshes {
		_ = i
		// Postponement = issue time minus the due boundary; bounded by
		// MaxRefreshDelay plus closing time slack.
		_ = ref
	}
	maxPost := c.RefreshPostponedCycles
	if maxPost.N() == 0 {
		t.Fatal("no refreshes recorded")
	}
	bound := 0.5*float64(p.REFI) + float64(p.RC+p.RP)*10
	if maxPost.Value() > bound {
		t.Errorf("mean postponement %.0f exceeds bound %.0f", maxPost.Value(), bound)
	}
}

func TestDeterministicStats(t *testing.T) {
	run := func() (int64, int64, float64) {
		c, q := newController(t, ModeROP, nil)
		p := c.Device().Params()
		horizon := 20 * p.REFI
		driveSequentialReads(c, q, 33, horizon)
		q.RunUntil(horizon)
		return c.ReadsServed.Value(), c.SRAMServed.Value(), c.ReadLatency.Value()
	}
	r1, s1, l1 := run()
	r2, s2, l2 := run()
	if r1 != r2 || s1 != s2 || l1 != l2 {
		t.Errorf("nondeterministic: (%d,%d,%g) vs (%d,%d,%g)", r1, s1, l1, r2, s2, l2)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig(ModeBaseline).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.ReadQueueCap = 0 },
		func(c *Config) { c.WriteHigh = c.WriteLow },
		func(c *Config) { c.WriteHigh = c.WriteQueueCap + 1 },
		func(c *Config) { c.MaxRefreshDelay = 9 },
		func(c *Config) { c.SRAMLatency = -1 },
		func(c *Config) { c.Mode = ModeROP; c.ROP = core.Config{} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(ModeBaseline)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d: Validate accepted bad config", i)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeBaseline.String() != "baseline" || ModeNoRefresh.String() != "norefresh" ||
		ModeROP.String() != "rop" {
		t.Error("Mode.String wrong")
	}
}

func TestElasticRefreshMaintainsRate(t *testing.T) {
	c, q := newController(t, ModeElastic, func(cfg *Config) { cfg.Capture = true })
	p := c.Device().Params()
	horizon := 30 * p.REFI
	driveSequentialReads(c, q, 40, horizon)
	q.RunUntil(horizon)
	// The average refresh rate must be preserved: with 2 ranks over 30
	// intervals, close to 60 refreshes (minus the trailing backlog of at
	// most 8 per rank).
	refs := c.RefreshesIssued.Value()
	if refs < 2*(30-int64(maxElasticBacklog)-2) {
		t.Errorf("elastic issued only %d refreshes over 30 intervals x 2 ranks", refs)
	}
	// Postponement must never exceed the JEDEC backlog bound.
	for i := 1; i < len(c.CaptureLog().Refreshes); i++ {
		prev, cur := c.CaptureLog().Refreshes[i-1], c.CaptureLog().Refreshes[i]
		if cur.Rank == prev.Rank && cur.At-prev.At > event.Cycle(maxElasticBacklog+1)*p.REFI {
			t.Errorf("refresh gap %d exceeds backlog bound", cur.At-prev.At)
		}
	}
}

func TestElasticDefersUnderLoad(t *testing.T) {
	// Under continuous demand, elastic postpones: the first refresh of a
	// loaded rank comes later than under auto-refresh.
	firstRef := func(mode Mode) event.Cycle {
		c, q := newController(t, mode, func(cfg *Config) { cfg.Capture = true })
		p := c.Device().Params()
		// Dense stream: the read queue stays non-empty, so elastic keeps
		// deferring until its backlog forces an issue.
		driveSequentialReads(c, q, 6, 20*p.REFI)
		q.RunUntil(20 * p.REFI)
		for _, ref := range c.CaptureLog().Refreshes {
			if ref.Rank == 0 {
				return ref.At
			}
		}
		t.Fatalf("no refresh for rank 0 in mode %v", mode)
		return 0
	}
	base := firstRef(ModeBaseline)
	elastic := firstRef(ModeElastic)
	if elastic <= base {
		t.Errorf("elastic first refresh at %d not later than baseline %d", elastic, base)
	}
}

func TestElasticIdleIssuesPromptly(t *testing.T) {
	// With no demand at all, elastic issues each refresh as it comes due
	// (no unnecessary backlog).
	c, q := newController(t, ModeElastic, nil)
	p := c.Device().Params()
	q.Schedule(0, func(event.Cycle) {})
	q.RunUntil(10 * p.REFI)
	refs := c.RefreshesIssued.Value()
	if refs < 16 { // 2 ranks x ~9-10 intervals
		t.Errorf("idle elastic issued %d refreshes, want ≈20", refs)
	}
}

func TestPausingRefreshCompletesAllSegments(t *testing.T) {
	c, q := newController(t, ModePausing, func(cfg *Config) { cfg.Capture = true })
	p := c.Device().Params()
	horizon := 20 * p.REFI
	driveSequentialReads(c, q, 40, horizon)
	q.RunUntil(horizon)
	refs := c.RefreshesIssued.Value()
	// Logical refreshes (all 8 segments) must keep the per-rank rate:
	// 2 ranks x ~20 intervals.
	if refs < 34 || refs > 42 {
		t.Errorf("pausing completed %d logical refreshes, want ≈38-40", refs)
	}
	// Total locked time per logical refresh ≈ tRFC plus resume overhead.
	locked := c.Device().RefLockedCycles.Value()
	perRef := float64(locked) / float64(refs)
	if perRef < float64(p.RFC) || perRef > float64(p.RFC)*1.2 {
		t.Errorf("locked cycles per refresh = %.0f, want ≈%d", perRef, p.RFC)
	}
}

func TestPausingServesReadsBetweenSegments(t *testing.T) {
	// A read arriving during a paused refresh completes long before a
	// full tRFC would have elapsed.
	c, q := newController(t, ModePausing, nil)
	p := c.Device().Params()
	refAt := p.REFI / 2 // rank 0's first refresh
	segLen := p.RFC / 8
	var doneAt event.Cycle
	q.Schedule(refAt+2, func(event.Cycle) {
		c.EnqueueRead(addr.Loc{Rank: 0, Bank: 2, Row: 9, Col: 0}, 0,
			func(at event.Cycle) { doneAt = at })
	})
	q.RunUntil(refAt + 3*p.RFC)
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	// Must beat the full-tRFC freeze by a clear margin: at worst it
	// waits out one segment plus service time.
	worstCase := refAt + 2 + 2*segLen + event.Cycle(p.RP+p.RCD+p.CL+40)
	if doneAt > worstCase {
		t.Errorf("read done at %d, want ≤ %d (pausing should interleave)", doneAt, worstCase)
	}
	if doneAt >= refAt+p.RFC {
		t.Errorf("read done at %d, no better than unpaused refresh end %d", doneAt, refAt+p.RFC)
	}
}

func TestPausingIdleRunsStraightThrough(t *testing.T) {
	// With no traffic, segments run back to back: locked time stays
	// within tRFC + small per-segment gaps, and the rate holds.
	c, q := newController(t, ModePausing, nil)
	p := c.Device().Params()
	q.RunUntil(10 * p.REFI)
	if refs := c.RefreshesIssued.Value(); refs < 16 {
		t.Errorf("idle pausing completed %d refreshes, want ≈18-20", refs)
	}
}

func TestBankRefreshOnlyLocksOneBank(t *testing.T) {
	c, q := newController(t, ModeBankRefresh, nil)
	p := c.Device().Params()
	// First bank refresh of rank 0 (2 ranks: rank 0's cadence slot is
	// REFIpb/2).
	refAt := p.REFI / event.Cycle(testGeo().Banks) / 2
	var otherDone, sameDone event.Cycle
	q.Schedule(refAt+2, func(event.Cycle) {
		// Bank 0 is the first target; bank 3 must be unaffected.
		c.EnqueueRead(addr.Loc{Rank: 0, Bank: 3, Row: 9, Col: 0}, 0,
			func(at event.Cycle) { otherDone = at })
		c.EnqueueRead(addr.Loc{Rank: 0, Bank: 0, Row: 9, Col: 0}, 0,
			func(at event.Cycle) { sameDone = at })
	})
	q.RunUntil(refAt + 6*p.RFCpb)
	if otherDone == 0 || sameDone == 0 {
		t.Fatalf("reads did not complete: other=%d same=%d", otherDone, sameDone)
	}
	uncontended := refAt + 2 + event.Cycle(p.RCD+p.CL+20) + p.DataCycles()
	if otherDone > uncontended+10 {
		t.Errorf("read to sibling bank delayed to %d (uncontended ≈%d)", otherDone, uncontended)
	}
	if sameDone <= otherDone {
		t.Errorf("read to refreshing bank (%d) not slower than sibling (%d)", sameDone, otherDone)
	}
}

func TestBankRefreshRateAndLockTime(t *testing.T) {
	c, q := newController(t, ModeBankRefresh, nil)
	p := c.Device().Params()
	horizon := 10 * p.REFI
	q.RunUntil(horizon)
	refs := c.RefreshesIssued.Value()
	// Each rank refreshes one bank every REFI/banks: 2 ranks x 8 banks x
	// ~10 intervals.
	want := int64(2 * testGeo().Banks * 10)
	if refs < want-8 || refs > want+8 {
		t.Errorf("bank refreshes = %d, want ≈%d", refs, want)
	}
	locked := c.Device().RefLockedCycles.Value()
	if perRef := locked / refs; perRef != int64(p.RFCpb) {
		t.Errorf("locked per bank refresh = %d, want %d", perRef, p.RFCpb)
	}
}

func TestROPBankServesFrozenBank(t *testing.T) {
	c, q := newController(t, ModeROPBank, nil)
	p := c.Device().Params()
	horizon := 20 * p.REFI
	driveSequentialReads(c, q, 10, horizon)
	q.RunUntil(horizon)
	if c.ROP().PrefetchLaunches.Value() == 0 {
		t.Fatal("ROP-bank never prefetched")
	}
	if c.SRAMServed.Value() == 0 {
		t.Error("no reads served from SRAM in bank mode")
	}
	if c.RefreshesIssued.Value() == 0 {
		t.Error("no bank refreshes issued")
	}
}

// TestEveryAcceptedReadCompletes is the controller's core liveness
// invariant: under random traffic, every read the controller accepts
// must eventually complete, in every refresh mode.
func TestEveryAcceptedReadCompletes(t *testing.T) {
	for _, mode := range []Mode{
		ModeBaseline, ModeNoRefresh, ModeROP, ModeElastic,
		ModePausing, ModeBankRefresh, ModeROPBank, ModeSubarrayRefresh,
	} {
		c, q := newController(t, mode, nil)
		p := dram.DDR4_1600(dram.Refresh1x)
		rng := rand.New(rand.NewSource(int64(mode) + 99))
		accepted, completed := 0, 0
		horizon := 25 * p.REFI
		var drive func(now event.Cycle)
		drive = func(now event.Cycle) {
			loc := addr.Loc{
				Rank: rng.Intn(2), Bank: rng.Intn(8),
				Row: rng.Intn(512), Col: rng.Intn(64),
			}
			if rng.Intn(5) == 0 {
				c.EnqueueWrite(loc, 0)
			} else if c.EnqueueRead(loc, 0, func(event.Cycle) { completed++ }) {
				accepted++
			}
			next := now + event.Cycle(rng.Intn(40)+1)
			if next <= horizon {
				q.Schedule(next, drive)
			}
		}
		q.Schedule(0, drive)
		q.RunUntil(horizon + 10*p.REFI) // generous drain time
		if accepted == 0 {
			t.Fatalf("%v: no reads accepted", mode)
		}
		if completed != accepted {
			t.Errorf("%v: %d of %d accepted reads completed", mode, completed, accepted)
		}
	}
}

func TestSubarrayRefreshMaintainsRate(t *testing.T) {
	c, q := newController(t, ModeSubarrayRefresh, nil)
	p := c.Device().Params()
	q.RunUntil(4 * p.REFI)
	// 2 ranks x 8 banks x 8 subarrays per tREFI x ~4 intervals.
	want := int64(2 * 8 * p.Subarrays * 4)
	refs := c.RefreshesIssued.Value()
	if refs < want*9/10 || refs > want*11/10 {
		t.Errorf("subarray refreshes = %d, want ≈%d", refs, want)
	}
}

func TestSubarrayRefreshBarelyBlocks(t *testing.T) {
	// A steady stream suffers far less under subarray refresh than
	// under rank refresh.
	elapsedFor := func(mode Mode) event.Cycle {
		c, q := newController(t, mode, nil)
		p := c.Device().Params()
		horizon := 20 * p.REFI
		driveSequentialReads(c, q, 25, horizon)
		q.RunUntil(horizon + 4*p.REFI)
		return event.Cycle(c.ReadLatency.Value() * 100)
	}
	rank := elapsedFor(ModeBaseline)
	sa := elapsedFor(ModeSubarrayRefresh)
	if sa >= rank {
		t.Errorf("subarray mean latency (%d) not below rank refresh (%d)", sa, rank)
	}
}

func TestBankModeRequiresTiming(t *testing.T) {
	params := dram.DDR4_1600(dram.Refresh1x)
	params.RFCpb = 0
	q := &event.Queue{}
	dev := dram.NewDevice(params, testGeo())
	if _, err := New(DefaultConfig(ModeBankRefresh), dev, q); err == nil {
		t.Error("ModeBankRefresh without RFCpb did not error")
	}
}

func TestROPBankWithNoRefreshParamsIsInert(t *testing.T) {
	// Refresh-disabled timings with a ROP mode must construct cleanly
	// and simply never refresh or prefetch.
	params := dram.NoRefresh(dram.DDR4_1600(dram.Refresh1x))
	q := &event.Queue{}
	dev := dram.NewDevice(params, testGeo())
	c := MustNew(DefaultConfig(ModeROPBank), dev, q)
	c.EnqueueRead(addr.Loc{Rank: 0, Bank: 0, Row: 1, Col: 1}, 0, func(event.Cycle) {})
	q.RunUntil(100000)
	if c.RefreshesIssued.Value() != 0 {
		t.Error("refreshes issued with REFI=0")
	}
}
