// Package cpu models the processor front-end of the simulation: a
// trace-driven core that retires one instruction per CPU cycle between
// memory stalls and exploits memory-level parallelism the way the
// paper's out-of-order cores do — loads overlap until either the MSHRs
// fill or the oldest incomplete load falls outside the reorder window.
// Writes are posted and only stall on queue backpressure.
package cpu

import (
	"fmt"

	"ropsim/internal/event"
	"ropsim/internal/stats"
	"ropsim/internal/workload"
)

// ReadStatus is the outcome of a Memory.Read call.
type ReadStatus int

// Read outcomes.
const (
	// ReadHit completed in the LLC; the callback will not run.
	ReadHit ReadStatus = iota
	// ReadMiss was accepted by the memory system; the callback runs when
	// data returns.
	ReadMiss
	// ReadRejected means the memory system is full; retry after the
	// space notification.
	ReadRejected
)

// Memory is the core's view of the memory hierarchy (LLC + controller).
// Implementations must be driven by the same event queue as the core.
type Memory interface {
	// Read looks up a cache line for core src. On ReadMiss, done fires
	// when the data arrives.
	Read(line uint64, src int, done func(event.Cycle)) ReadStatus
	// Write posts a store. It reports false when the system is full.
	Write(line uint64, src int) bool
}

// Config parameterizes the core model.
type Config struct {
	// ROBWindow is how many younger instructions may retire past an
	// incomplete load before the core stalls.
	ROBWindow int
	// MSHRs bounds outstanding LLC misses.
	MSHRs int
	// HitExtraCPU is the un-hidden latency of an LLC hit in CPU cycles.
	HitExtraCPU event.CPUCycle
}

// DefaultConfig returns the configuration used in the experiments: a
// 192-entry window, 8 MSHRs, and mostly-hidden LLC hits.
func DefaultConfig() Config {
	return Config{ROBWindow: 192, MSHRs: 8, HitExtraCPU: 2}
}

// Validate reports an error for impossible parameters.
func (c Config) Validate() error {
	if c.ROBWindow <= 0 || c.MSHRs <= 0 || c.HitExtraCPU < 0 {
		return fmt.Errorf("cpu: bad config %+v", c)
	}
	return nil
}

// inflight tracks one outstanding load.
type inflight struct {
	instPos int64 // instruction count at issue
	done    bool
	doneAt  event.CPUCycle
}

// Core replays one benchmark trace against a Memory.
type Core struct {
	cfg   Config
	id    int
	trace workload.Stream
	mem   Memory
	q     *event.Queue
	limit int64 // instructions to retire

	cpuNow    event.CPUCycle
	instCount int64
	pending   *workload.Record  // fetched but not yet issued memory op
	pendRec   workload.Record   // backing store for pending (avoids a per-record heap allocation)
	gapLeft   int64             // compute instructions still owed before pending
	loads     []inflight        // oldest first
	stepFn    func(event.Cycle) // step as a stored closure, reused by every reschedule

	waitingSpace bool
	finished     bool
	onFinish     func()

	// MemReads, MemWrites and LLCHitReads count retired memory
	// operations by outcome: reads that went to memory, writes, and
	// reads absorbed by the LLC.
	MemReads, MemWrites, LLCHitReads stats.Counter
	// StallMSHR and StallROB count CPU cycles lost to a full MSHR
	// (outstanding-miss limit) and a full ROB window, respectively.
	StallMSHR, StallROB stats.Counter
}

// New builds a core that will retire limit instructions from trace.
func New(cfg Config, id int, trace workload.Stream, mem Memory, q *event.Queue, limit int64) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if limit <= 0 {
		panic("cpu: instruction limit must be positive")
	}
	c := &Core{cfg: cfg, id: id, trace: trace, mem: mem, q: q, limit: limit}
	c.stepFn = func(at event.Cycle) { c.step(at) }
	return c
}

// RegisterMetrics registers the core's memory-traffic and stall
// counters plus derived progress gauges into r (typically a
// "cpu.coreN"-scoped sub-registry). Cycle gauges are in CPU cycles
// (3.2 GHz domain); IPC is instructions per CPU cycle.
func (c *Core) RegisterMetrics(r *stats.Registry) {
	r.Register("mem_reads", &c.MemReads)
	r.Register("mem_writes", &c.MemWrites)
	r.Register("llc_hit_reads", &c.LLCHitReads)
	r.Register("stall_mshr", &c.StallMSHR)
	r.Register("stall_rob", &c.StallROB)
	r.Gauge("instructions", func() float64 { return float64(c.instCount) })
	r.Gauge("cpu_cycles", func() float64 { return float64(c.cpuNow) })
	r.Gauge("ipc", c.IPC)
}

// Start begins execution; onFinish runs once when the core has retired
// its instruction limit and all outstanding loads have returned.
func (c *Core) Start(onFinish func()) {
	c.onFinish = onFinish
	c.q.Schedule(c.q.Now(), c.stepFn)
}

// Finished reports whether the core completed its run.
func (c *Core) Finished() bool { return c.finished }

// Cycles reports the CPU cycles consumed so far (final value after
// finish).
func (c *Core) Cycles() event.CPUCycle { return c.cpuNow }

// Instructions reports retired instructions.
func (c *Core) Instructions() int64 { return c.instCount }

// IPC reports instructions per CPU cycle (0 before any progress).
func (c *Core) IPC() float64 {
	if c.cpuNow == 0 {
		return 0
	}
	return float64(c.instCount) / float64(c.cpuNow)
}

// NotifySpace retries a memory operation rejected for queue space.
func (c *Core) NotifySpace() {
	if c.waitingSpace && !c.finished {
		c.waitingSpace = false
		c.q.Schedule(c.q.Now(), c.stepFn)
	}
}

// oldestIncomplete returns the index of the oldest incomplete load, or
// -1 when none.
func (c *Core) oldestIncomplete() int {
	for i := range c.loads {
		if !c.loads[i].done {
			return i
		}
	}
	return -1
}

// reapLoads drops completed loads from the front of the window.
func (c *Core) reapLoads() {
	i := 0
	for i < len(c.loads) && c.loads[i].done {
		i++
	}
	if i > 0 {
		c.loads = append(c.loads[:0], c.loads[i:]...)
	}
}

// stalled reports whether the core cannot issue its next operation, and
// which completion will unblock it.
func (c *Core) stalled() bool {
	c.reapLoads()
	if len(c.loads) >= c.cfg.MSHRs {
		c.StallMSHR.Inc()
		return true
	}
	if oi := c.oldestIncomplete(); oi >= 0 &&
		c.instCount-c.loads[oi].instPos >= int64(c.cfg.ROBWindow) {
		c.StallROB.Inc()
		return true
	}
	return false
}

// step advances execution as far as possible at bus-cycle now, then
// either schedules its next action or parks waiting for a completion or
// space notification.
func (c *Core) step(now event.Cycle) {
	if c.finished {
		return
	}
	sync := func() {
		if busCPU := event.ToCPU(now); c.cpuNow < busCPU {
			c.cpuNow = busCPU
		}
	}
	for {
		if c.instCount >= c.limit {
			c.pending = nil
			c.maybeFinish()
			return
		}
		c.reapLoads()

		if c.pending == nil {
			rec, ok := c.trace.Next()
			if !ok {
				// Trace exhausted early: treat as finished.
				c.limit = c.instCount
				c.maybeFinish()
				return
			}
			c.pendRec = rec
			c.pending = &c.pendRec
			c.gapLeft = int64(rec.Gap)
		}

		// Retire the compute gap at 1 IPC, but never move more than
		// ROBWindow instructions past an incomplete load: the window
		// fills and the core stalls mid-gap.
		if c.gapLeft > 0 {
			allowed := c.gapLeft
			if oi := c.oldestIncomplete(); oi >= 0 {
				room := c.loads[oi].instPos + int64(c.cfg.ROBWindow) - c.instCount
				if room < allowed {
					allowed = room
				}
			}
			if rem := c.limit - c.instCount; rem < allowed {
				allowed = rem
			}
			if allowed > 0 {
				sync()
				c.instCount += allowed
				//simlint:cycles "the IPC-1 core retires one instruction per CPU cycle, so an instruction count is a CPU-cycle count"
				c.cpuNow += event.CPUCycle(allowed)
				c.gapLeft -= allowed
			}
			if c.instCount >= c.limit {
				c.pending = nil
				c.maybeFinish()
				return
			}
			if c.gapLeft > 0 {
				c.StallROB.Inc()
				return // the oldest load's completion resumes us
			}
		}

		if c.stalled() {
			// Do not advance cpuNow: the core resumes at the completion
			// that unblocks it, not at unrelated events.
			return
		}
		sync()

		// The memory operation issues at its CPU time; if that is in the
		// future of the bus clock, come back then.
		opBus := event.ToBus(c.cpuNow)
		if opBus > now {
			c.q.Schedule(opBus, c.stepFn)
			return
		}
		rec := *c.pending
		if rec.Write {
			if !c.mem.Write(rec.Line, c.id) {
				c.waitingSpace = true
				return
			}
			c.MemWrites.Inc()
		} else {
			pos := c.instCount
			status := c.mem.Read(rec.Line, c.id, func(at event.Cycle) { c.loadDone(pos, at) })
			switch status {
			case ReadRejected:
				c.waitingSpace = true
				return
			case ReadHit:
				c.LLCHitReads.Inc()
				c.cpuNow += c.cfg.HitExtraCPU
			case ReadMiss:
				c.MemReads.Inc()
				c.loads = append(c.loads, inflight{instPos: pos})
			}
		}
		c.pending = nil
		c.instCount++
		c.cpuNow++
	}
}

// loadDone handles a memory read completion.
func (c *Core) loadDone(instPos int64, at event.Cycle) {
	for i := range c.loads {
		if c.loads[i].instPos == instPos && !c.loads[i].done {
			c.loads[i].done = true
			c.loads[i].doneAt = event.ToCPU(at)
			break
		}
	}
	if c.finished {
		return
	}
	if c.instCount >= c.limit {
		// The run is over; this completion may be the last one holding
		// up the finish.
		c.maybeFinish()
		return
	}
	c.q.Schedule(at, c.stepFn)
}

// maybeFinish completes the run once every outstanding load returned.
func (c *Core) maybeFinish() {
	c.reapLoads()
	if c.oldestIncomplete() >= 0 {
		return // remaining completions re-enter via loadDone -> step
	}
	if !c.finished {
		c.finished = true
		if c.onFinish != nil {
			c.onFinish()
		}
	}
}
