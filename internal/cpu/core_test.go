package cpu

import (
	"testing"

	"ropsim/internal/event"
	"ropsim/internal/workload"
)

// fakeMem is a deterministic Memory: lines below hitBelow hit, others
// miss with a fixed latency.
type fakeMem struct {
	q        *event.Queue
	hitBelow uint64
	missLat  event.Cycle
	rejects  int // reject the first N operations
	space    func()

	reads, writes, misses int
}

func (m *fakeMem) Read(line uint64, src int, done func(event.Cycle)) ReadStatus {
	if m.rejects > 0 {
		m.rejects--
		return ReadRejected
	}
	m.reads++
	if line < m.hitBelow {
		return ReadHit
	}
	m.misses++
	m.q.Schedule(m.q.Now()+m.missLat, func(at event.Cycle) { done(at) })
	return ReadMiss
}

func (m *fakeMem) Write(line uint64, src int) bool {
	if m.rejects > 0 {
		m.rejects--
		if m.space != nil {
			sp := m.space
			m.q.Schedule(m.q.Now()+5, func(event.Cycle) { sp() })
		}
		return false
	}
	m.writes++
	return true
}

// trace builds a SliceStream of n records with fixed gap and line
// assignment fn.
func trace(n int, gap uint32, line func(i int) uint64, write bool) *workload.SliceStream {
	recs := make([]workload.Record, n)
	for i := range recs {
		recs[i] = workload.Record{Gap: gap, Line: line(i), Write: write}
	}
	return workload.NewSliceStream(recs)
}

func runCore(t *testing.T, cfg Config, tr workload.Stream, mem *fakeMem, limit int64) *Core {
	t.Helper()
	q := mem.q
	c := New(cfg, 0, tr, mem, q, limit)
	finished := false
	c.Start(func() { finished = true })
	mem.space = c.NotifySpace
	q.Run(10_000_000)
	if !finished {
		t.Fatal("core never finished")
	}
	return c
}

func TestPureComputeIPC(t *testing.T) {
	q := &event.Queue{}
	mem := &fakeMem{q: q, hitBelow: 1 << 62, missLat: 100}
	cfg := DefaultConfig()
	cfg.HitExtraCPU = 0
	c := runCore(t, cfg, trace(10, 99, func(i int) uint64 { return uint64(i) }, false), mem, 1000)
	// All hits with no extra latency: IPC = 1.
	if got := c.IPC(); got < 0.99 || got > 1.01 {
		t.Errorf("IPC = %g, want ≈1", got)
	}
	if c.LLCHitReads.Value() != 10 {
		t.Errorf("hits = %d, want 10", c.LLCHitReads.Value())
	}
}

func TestHitLatencyLowersIPC(t *testing.T) {
	q := &event.Queue{}
	mem := &fakeMem{q: q, hitBelow: 1 << 62, missLat: 100}
	cfg := DefaultConfig()
	cfg.HitExtraCPU = 10
	c := runCore(t, cfg, trace(50, 9, func(i int) uint64 { return uint64(i) }, false), mem, 500)
	// Each of 50 ops adds 10 extra cycles on 500 instructions.
	want := 500.0 / 1000.0
	if got := c.IPC(); got < want*0.95 || got > want*1.05 {
		t.Errorf("IPC = %g, want ≈%g", got, want)
	}
}

func TestMissesOverlapWithMLP(t *testing.T) {
	q := &event.Queue{}
	lat := event.Cycle(100) // 400 CPU cycles
	mem := &fakeMem{q: q, hitBelow: 0, missLat: lat}
	cfg := DefaultConfig()
	cfg.MSHRs = 8
	cfg.ROBWindow = 1000
	// 8 back-to-back misses (gap 0): they all overlap.
	c := runCore(t, cfg, trace(8, 0, func(i int) uint64 { return uint64(i + 1000) }, false), mem, 9)
	serial := 8 * 400
	if int(c.Cycles()) >= serial/2 {
		t.Errorf("8 misses took %d CPU cycles; expected strong overlap (serial %d)", c.Cycles(), serial)
	}
}

func TestMSHRLimitSerializes(t *testing.T) {
	q := &event.Queue{}
	lat := event.Cycle(100)
	mem := &fakeMem{q: q, hitBelow: 0, missLat: lat}
	cfg := DefaultConfig()
	cfg.MSHRs = 1
	cfg.ROBWindow = 1000
	c := runCore(t, cfg, trace(8, 0, func(i int) uint64 { return uint64(i + 1000) }, false), mem, 9)
	// With one MSHR, loads serialize: at least 7 full latencies.
	if int(c.Cycles()) < 7*400 {
		t.Errorf("8 misses with 1 MSHR took only %d CPU cycles", c.Cycles())
	}
	if c.StallMSHR.Value() == 0 {
		t.Error("no MSHR stalls recorded")
	}
}

func TestROBWindowStalls(t *testing.T) {
	q := &event.Queue{}
	lat := event.Cycle(250) // 1000 CPU cycles
	mem := &fakeMem{q: q, hitBelow: 0, missLat: lat}
	cfg := DefaultConfig()
	cfg.MSHRs = 8
	cfg.ROBWindow = 64
	// One miss then a long compute stretch: the window fills and the
	// core must wait out the miss latency.
	recs := []workload.Record{
		{Gap: 0, Line: 1 << 30},
		{Gap: 5000, Line: 0}, // hit far later
	}
	c := runCore(t, cfg, workload.NewSliceStream(recs), mem, 5003)
	// Progress past the window stalls until the load returns (~1000
	// cycles), then compute resumes: total ≥ 1000 + (5000-64).
	if int(c.Cycles()) < 5900 {
		t.Errorf("cycles = %d, want ≥ 5900 (ROB stall enforced)", c.Cycles())
	}
	if c.StallROB.Value() == 0 {
		t.Error("no ROB stalls recorded")
	}
}

func TestWriteBackpressure(t *testing.T) {
	q := &event.Queue{}
	mem := &fakeMem{q: q, hitBelow: 1 << 62, missLat: 10, rejects: 3}
	c := runCore(t, DefaultConfig(), trace(5, 10, func(i int) uint64 { return uint64(i) }, true), mem, 100)
	if mem.writes != 5 {
		t.Errorf("writes = %d, want 5 (rejected ops must retry)", mem.writes)
	}
	if !c.Finished() {
		t.Error("core stuck after rejections")
	}
}

func TestFinishWaitsForOutstandingLoads(t *testing.T) {
	q := &event.Queue{}
	mem := &fakeMem{q: q, hitBelow: 0, missLat: 500}
	cfg := DefaultConfig()
	c := New(cfg, 0, trace(2, 0, func(i int) uint64 { return uint64(i + 10) }, false), mem, q, 3)
	finishedAt := event.Cycle(-1)
	c.Start(func() { finishedAt = q.Now() })
	q.Run(1_000_000)
	if finishedAt < 500 {
		t.Errorf("finished at %d, before miss latency %d elapsed", finishedAt, 500)
	}
	if !c.Finished() {
		t.Fatal("not finished")
	}
}

func TestInstructionLimitRespected(t *testing.T) {
	q := &event.Queue{}
	mem := &fakeMem{q: q, hitBelow: 1 << 62, missLat: 10}
	c := runCore(t, DefaultConfig(), trace(1000, 7, func(i int) uint64 { return uint64(i) }, false), mem, 100)
	if c.Instructions() != 100 {
		t.Errorf("instructions = %d, want exactly 100", c.Instructions())
	}
}

func TestTraceExhaustionFinishes(t *testing.T) {
	q := &event.Queue{}
	mem := &fakeMem{q: q, hitBelow: 1 << 62, missLat: 10}
	c := runCore(t, DefaultConfig(), trace(3, 5, func(i int) uint64 { return uint64(i) }, false), mem, 1<<40)
	if !c.Finished() {
		t.Error("core did not finish on trace exhaustion")
	}
	if c.Instructions() != 3*(5+1) {
		t.Errorf("instructions = %d, want 18", c.Instructions())
	}
}

func TestGapLargerThanRemainingLimit(t *testing.T) {
	q := &event.Queue{}
	mem := &fakeMem{q: q, hitBelow: 1 << 62, missLat: 10}
	c := runCore(t, DefaultConfig(), trace(5, 1000, func(i int) uint64 { return uint64(i) }, false), mem, 500)
	if c.Instructions() != 500 {
		t.Errorf("instructions = %d, want 500 (gap truncated at limit)", c.Instructions())
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for i, cfg := range []Config{
		{ROBWindow: 0, MSHRs: 8, HitExtraCPU: 1},
		{ROBWindow: 64, MSHRs: 0, HitExtraCPU: 1},
		{ROBWindow: 64, MSHRs: 8, HitExtraCPU: -1},
	} {
		if cfg.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
