package sim

import (
	"testing"

	"ropsim/internal/dram"
	"ropsim/internal/memctrl"
	"ropsim/internal/workload"
)

// These integration tests pin down cross-module invariants that the
// per-package unit tests cannot see.

func TestAllBenchmarksRunInAllModes(t *testing.T) {
	// Every benchmark must complete under every refresh policy without
	// errors and with sane top-level metrics.
	for _, bench := range workload.Names() {
		for _, mode := range []memctrl.Mode{
			memctrl.ModeBaseline, memctrl.ModeNoRefresh,
			memctrl.ModeROP, memctrl.ModeElastic,
			memctrl.ModePausing, memctrl.ModeBankRefresh, memctrl.ModeROPBank,
			memctrl.ModeSubarrayRefresh,
		} {
			cfg := quick(Default(bench), 60_000)
			cfg.Mode = mode
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%v: %v", bench, mode, err)
			}
			c := res.Cores[0]
			if c.IPC <= 0 || c.IPC > 1.0001 {
				t.Errorf("%s/%v: IPC %g out of range", bench, mode, c.IPC)
			}
			if res.TotalEnergy() <= 0 {
				t.Errorf("%s/%v: non-positive energy", bench, mode)
			}
			if mode == memctrl.ModeNoRefresh && res.Refreshes != 0 {
				t.Errorf("%s: no-refresh run refreshed", bench)
			}
		}
	}
}

func TestRefreshCountMatchesElapsedTime(t *testing.T) {
	// Refreshes per rank must track elapsed/tREFI within the
	// postponement bound.
	cfg := quick(Default("lbm"), 400_000)
	cfg.Capture = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := dram.DDR4_1600(dram.Refresh1x)
	want := int64(res.ElapsedBus / p.REFI)
	if res.Refreshes < want-2 || res.Refreshes > want+2 {
		t.Errorf("refreshes = %d, want ≈%d for elapsed %d", res.Refreshes, want, res.ElapsedBus)
	}
}

func TestEnergyOrdering(t *testing.T) {
	// For a fixed workload: no-refresh costs least (no REF energy and
	// shortest run); baseline costs most or ties ROP.
	run := func(mode memctrl.Mode) float64 {
		cfg := quick(Default("libquantum"), 400_000)
		cfg.Mode = mode
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalEnergy()
	}
	base := run(memctrl.ModeBaseline)
	rop := run(memctrl.ModeROP)
	noref := run(memctrl.ModeNoRefresh)
	if noref >= base {
		t.Errorf("no-refresh energy %g not below baseline %g", noref, base)
	}
	if rop > base*1.01 {
		t.Errorf("ROP energy %g more than 1%% above baseline %g", rop, base)
	}
}

func TestElasticBetweenBaselineAndNoRefresh(t *testing.T) {
	// Elastic refresh may help bursty workloads but never beats the
	// no-refresh ideal and never issues refreshes late beyond the bound.
	cfg := quick(Default("bzip2"), 500_000)
	cfg.Mode = memctrl.ModeElastic
	re, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mode = memctrl.ModeNoRefresh
	rn, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if re.Cores[0].IPC > rn.Cores[0].IPC+1e-9 {
		t.Errorf("elastic IPC %g above no-refresh %g", re.Cores[0].IPC, rn.Cores[0].IPC)
	}
	if re.Refreshes == 0 {
		t.Error("elastic issued no refreshes")
	}
}

func TestMorePressureMoreRefreshImpact(t *testing.T) {
	// The refresh gap (no-refresh IPC minus baseline IPC) must be larger
	// for an intensive benchmark than for a quiet one.
	gap := func(bench string) float64 {
		cfg := quick(Default(bench), 400_000)
		rb, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Mode = memctrl.ModeNoRefresh
		rn, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return (rn.Cores[0].IPC - rb.Cores[0].IPC) / rn.Cores[0].IPC
	}
	if gap("lbm") <= gap("gobmk") {
		t.Error("intensive benchmark does not suffer more from refresh")
	}
}

func TestROPVariantsRun(t *testing.T) {
	// Every ablation variant must run end to end.
	for _, v := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"strict", func(c *Config) { c.ROPStrictTable = true }},
		{"vldp", func(c *Config) { c.ROPPredictor = 1 }},
		{"always", func(c *Config) { c.ROPGate = 1 }},
		{"never", func(c *Config) { c.ROPGate = 2 }},
	} {
		cfg := quick(Default("libquantum"), 150_000)
		cfg.Mode = memctrl.ModeROP
		v.mutate(&cfg)
		if _, err := Run(cfg); err != nil {
			t.Errorf("%s: %v", v.name, err)
		}
	}
}

func TestFGRModesRun(t *testing.T) {
	for _, fgr := range []dram.RefreshMode{dram.Refresh1x, dram.Refresh2x, dram.Refresh4x} {
		cfg := quick(Default("libquantum"), 150_000)
		cfg.FGR = fgr
		cfg.Mode = memctrl.ModeROP
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", fgr, err)
		}
		if res.Refreshes == 0 {
			t.Errorf("%v: no refreshes", fgr)
		}
	}
	// Finer modes refresh more often.
	count := func(fgr dram.RefreshMode) int64 {
		cfg := quick(Default("libquantum"), 200_000)
		cfg.FGR = fgr
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Refreshes
	}
	if !(count(dram.Refresh4x) > count(dram.Refresh2x) && count(dram.Refresh2x) > count(dram.Refresh1x)) {
		t.Error("finer FGR modes did not refresh more often")
	}
}

func TestWeightedSpeedupPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched alone slice did not panic")
		}
	}()
	WeightedSpeedup(&Result{Cores: []CoreResult{{IPC: 1}}}, []float64{1, 2})
}

func TestTraceReplayMatchesGenerator(t *testing.T) {
	// Replaying a materialized trace must reproduce the generator run
	// exactly (the cpu model consumes the same records either way).
	cfg := quick(Default("bwaves"), 120_000)
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(workload.MustGet("bwaves"),
		cfg.Seed*1_000_003+int64(len("bwaves")))
	recs := workload.Take(gen, 300_000) // more than the run needs
	replay := cfg
	replay.Traces = []workload.Stream{workload.NewSliceStream(recs)}
	viaTrace, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cores[0].IPC != viaTrace.Cores[0].IPC ||
		direct.ElapsedBus != viaTrace.ElapsedBus {
		t.Errorf("trace replay diverged: IPC %g vs %g, elapsed %d vs %d",
			direct.Cores[0].IPC, viaTrace.Cores[0].IPC,
			direct.ElapsedBus, viaTrace.ElapsedBus)
	}
}

func TestTraceCountMismatchRejected(t *testing.T) {
	cfg := quick(Default("lbm", "gcc"), 50_000)
	cfg.Traces = []workload.Stream{workload.NewSliceStream(nil)}
	if _, err := Run(cfg); err == nil {
		t.Error("mismatched trace count accepted")
	}
}

func TestFullSimCommandStreamLegal(t *testing.T) {
	// End-to-end timing validation: every DRAM command a full simulation
	// issues (cores + LLC + controller) must satisfy the independent
	// JEDEC checker, in baseline and ROP modes.
	for _, mode := range []memctrl.Mode{memctrl.ModeBaseline, memctrl.ModeROP} {
		var ctrl *memctrl.Controller
		DebugHook = func(c *memctrl.Controller) {
			ctrl = c
			if c.CaptureLog() != nil {
				c.CaptureLog().StoreCommands = true
			}
		}
		cfg := quick(Default("bwaves"), 250_000)
		cfg.Mode = mode
		cfg.Capture = true
		if _, err := Run(cfg); err != nil {
			DebugHook = nil
			t.Fatal(err)
		}
		DebugHook = nil
		cmds := ctrl.CaptureLog().Commands
		if len(cmds) == 0 {
			t.Fatalf("%v: no commands captured", mode)
		}
		checker := dram.NewChecker(dram.DDR4_1600(dram.Refresh1x), ctrl.Device().Geometry())
		for i, cmd := range cmds {
			if err := checker.Check(cmd); err != nil {
				t.Fatalf("%v: command %d/%d illegal: %v", mode, i, len(cmds), err)
			}
		}
	}
}
