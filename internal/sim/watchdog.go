// Watchdog: the forward-progress guard for one simulation run. The
// event loop polls it every watchdogInterval dispatched events; the
// watchdog aborts the run when the wall-clock deadline passes or when
// the system stops retiring instructions (a livelock — e.g. an event
// chain rescheduling itself at the same cycle forever). Aborts carry a
// diagnostic dump of the stuck system: clock, queue depths, per-bank
// open rows. docs/ROBUSTNESS.md describes the thresholds.
//
//simlint:hostcode:file "the watchdog's whole job is comparing wall-clock time against the run deadline; it never feeds simulated state"
package sim

import (
	"fmt"
	"strings"
	"time"

	"ropsim/internal/cpu"
	"ropsim/internal/dram"
	"ropsim/internal/event"
	"ropsim/internal/memctrl"
)

// StallHook, when set, runs with the live event queue right before the
// event loop starts. It is the fault-injection door the watchdog tests
// use to plant a livelocking event chain; production runs leave it nil.
var StallHook func(*event.Queue)

// watchdogInterval is how often, in dispatched events, the run loop
// polls cancellation, the deadline and the livelock detector.
const watchdogInterval = 1024

// DefaultLivelockEvents is the forward-progress window used when
// Config.LivelockEvents is zero: dispatching this many events without a
// single instruction retiring anywhere is treated as a livelock. Legit
// no-retire stretches (refresh lockout, queue drains) span thousands of
// events, not millions, so the default never fires on healthy runs.
const DefaultLivelockEvents = 2_000_000

// WatchdogError reports a run aborted by the forward-progress watchdog,
// carrying a diagnostic snapshot of the stuck system.
type WatchdogError struct {
	// Reason says which detector fired ("wall-clock deadline exceeded"
	// or "livelock: ...").
	Reason string
	// Cycle is the bus-cycle clock at abort time.
	Cycle event.Cycle
	// Dispatched counts events dispatched before the abort.
	Dispatched int64
	// Retired counts instructions retired across all cores.
	Retired int64
	// Dump is the multi-line system snapshot (queue depths, per-bank
	// open rows) for postmortem reading.
	Dump string
}

// Error formats the abort reason with the key counters; the full
// snapshot rides in Dump.
func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog: %s at cycle %d (%d events dispatched, %d instructions retired)",
		e.Reason, e.Cycle, e.Dispatched, e.Retired)
}

// watchdog tracks forward progress of one run.
type watchdog struct {
	deadline time.Time // zero when RunTimeout is unset
	window   int64     // livelock window in events; <=0 disables
	start    time.Time

	cores []*cpu.Core
	ctrl  *memctrl.Controller
	dev   *dram.Device
	q     *event.Queue

	lastRetired    int64
	lastProgressAt int64 // dispatched count at the last observed retire
}

// newWatchdog arms the detectors from cfg: RunTimeout > 0 sets the
// deadline, LivelockEvents sizes the progress window (0 = default,
// negative = disabled).
func newWatchdog(cfg Config, cores []*cpu.Core, ctrl *memctrl.Controller, dev *dram.Device, q *event.Queue) *watchdog {
	w := &watchdog{
		window: cfg.LivelockEvents,
		start:  time.Now(),
		cores:  cores,
		ctrl:   ctrl,
		dev:    dev,
		q:      q,
	}
	if w.window == 0 {
		w.window = DefaultLivelockEvents
	}
	if cfg.RunTimeout > 0 {
		w.deadline = w.start.Add(cfg.RunTimeout)
	}
	return w
}

// retired sums instructions retired across all cores.
func (w *watchdog) retired() int64 {
	var total int64
	for _, c := range w.cores {
		total += c.Instructions()
	}
	return total
}

// check inspects progress, returning a *WatchdogError when the run is
// out of time or livelocked, nil otherwise.
func (w *watchdog) check(dispatched int64, remaining int) error {
	retired := w.retired()
	if retired > w.lastRetired {
		w.lastRetired = retired
		w.lastProgressAt = dispatched
	}
	if !w.deadline.IsZero() && time.Now().After(w.deadline) {
		return w.abort("wall-clock deadline exceeded", dispatched, retired, remaining)
	}
	if w.window > 0 && dispatched-w.lastProgressAt >= w.window {
		return w.abort(fmt.Sprintf("livelock: no instruction retired in %d events", w.window),
			dispatched, retired, remaining)
	}
	return nil
}

// abort builds the WatchdogError with the diagnostic dump.
func (w *watchdog) abort(reason string, dispatched, retired int64, remaining int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d dispatched=%d retired=%d unfinished_cores=%d wall=%s\n",
		w.q.Now(), dispatched, retired, remaining, time.Since(w.start).Round(time.Millisecond))
	fmt.Fprintf(&b, "queues: read=%d write=%d pending_events=%d\n",
		w.ctrl.ReadQueueLen(), w.ctrl.WriteQueueLen(), w.q.Len())
	geo := w.dev.Geometry()
	for r := 0; r < geo.Ranks; r++ {
		fmt.Fprintf(&b, "rank %d: refreshing=%v open_rows=[", r, w.dev.Refreshing(r, w.q.Now()))
		for bk := 0; bk < geo.Banks; bk++ {
			if bk > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", w.dev.OpenRow(r, bk))
		}
		b.WriteString("]\n")
	}
	return &WatchdogError{
		Reason:     reason,
		Cycle:      w.q.Now(),
		Dispatched: dispatched,
		Retired:    retired,
		Dump:       b.String(),
	}
}
