package sim

import (
	"testing"

	"ropsim/internal/analysis"
	"ropsim/internal/cache"
	"ropsim/internal/memctrl"
	"ropsim/internal/workload"
)

// quick shrinks a config for fast tests.
func quick(cfg Config, insts int64) Config {
	cfg.Instructions = insts
	cfg.ROPTrainRefreshes = 8
	return cfg
}

func TestSingleCoreBaselineRuns(t *testing.T) {
	cfg := quick(Default("libquantum"), 300_000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	c := res.Cores[0]
	if c.Instructions != 300_000 {
		t.Errorf("instructions = %d", c.Instructions)
	}
	if c.IPC <= 0 || c.IPC > 1 {
		t.Errorf("IPC = %g outside (0,1]", c.IPC)
	}
	if c.MemReads == 0 {
		t.Error("intensive benchmark produced no memory reads")
	}
	if res.Refreshes == 0 {
		t.Error("baseline run issued no refreshes")
	}
	if res.TotalEnergy() <= 0 {
		t.Error("no energy accounted")
	}
}

func TestNoRefreshFasterThanBaseline(t *testing.T) {
	base := quick(Default("lbm"), 400_000)
	nore := base
	nore.Mode = memctrl.ModeNoRefresh
	rb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := Run(nore)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Refreshes != 0 {
		t.Error("no-refresh run refreshed")
	}
	if rn.Cores[0].IPC <= rb.Cores[0].IPC {
		t.Errorf("no-refresh IPC %.4f not above baseline %.4f",
			rn.Cores[0].IPC, rb.Cores[0].IPC)
	}
}

func TestROPBetweenBaselineAndNoRefresh(t *testing.T) {
	cfgB := quick(Default("libquantum"), 400_000)
	cfgR := cfgB
	cfgR.Mode = memctrl.ModeROP
	rb, err := Run(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(cfgR)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Cores[0].IPC <= rb.Cores[0].IPC {
		t.Errorf("ROP IPC %.4f not above baseline %.4f on streaming benchmark",
			rr.Cores[0].IPC, rb.Cores[0].IPC)
	}
	if rr.SRAMLookups == 0 {
		t.Error("ROP run recorded no SRAM lookups")
	}
	if rr.SRAMHitRate < 0 || rr.SRAMHitRate > 1 {
		t.Errorf("hit rate %g outside [0,1]", rr.SRAMHitRate)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := quick(Default("bwaves"), 150_000)
	cfg.Mode = memctrl.ModeROP
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cores[0].IPC != b.Cores[0].IPC || a.ElapsedBus != b.ElapsedBus ||
		a.SRAMHits != b.SRAMHits || a.TotalEnergy() != b.TotalEnergy() {
		t.Error("identical configs produced different results")
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfg := quick(Default("bwaves"), 150_000)
	cfg2 := cfg
	cfg2.Seed = 99
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a.ElapsedBus == b.ElapsedBus && a.Cores[0].IPC == b.Cores[0].IPC {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

func TestMultiProgramRuns(t *testing.T) {
	cfg := quick(Default("lbm", "libquantum", "bzip2", "gobmk"), 120_000)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 4 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	for i, c := range res.Cores {
		if c.IPC <= 0 {
			t.Errorf("core %d (%s) IPC = %g", i, c.Bench, c.IPC)
		}
	}
	if res.Refreshes == 0 {
		t.Error("no refreshes in 4-rank run")
	}
}

func TestRankPartitionChangesBehaviour(t *testing.T) {
	cfg := quick(Default("lbm", "libquantum", "bzip2", "gobmk"), 120_000)
	rp := cfg
	rp.RankPartition = true
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rp)
	if err != nil {
		t.Fatal(err)
	}
	if a.ElapsedBus == b.ElapsedBus {
		t.Error("rank partitioning had no effect at all (suspicious)")
	}
}

func TestLLCSizeAffectsMissRate(t *testing.T) {
	// The LLC-size sensitivity of Figs 12-14 rests on the workload
	// generators producing reuse distances spread across the 1-8 MB
	// range. Drive the LLC directly from the generator (no timing sim)
	// so the test can afford enough accesses to exercise big caches.
	missRate := func(llcBytes int) float64 {
		g := workload.NewGenerator(workload.MustGet("bzip2"), 7)
		llc := cache.MustNew(cache.DefaultConfig(llcBytes))
		for i := 0; i < 400_000; i++ {
			r, _ := g.Next()
			llc.Access(r.Line, r.Write)
		}
		return 1 - llc.HitRate()
	}
	m1 := missRate(1 * cache.MiB)
	m8 := missRate(8 * cache.MiB)
	if m8 >= m1 {
		t.Errorf("8MB miss rate %.3f not below 1MB %.3f", m8, m1)
	}
	// The gap must be material, not rounding noise.
	if m1-m8 < 0.05 {
		t.Errorf("miss-rate spread %.3f too small for LLC sensitivity", m1-m8)
	}
}

func TestCaptureFeedsAnalysis(t *testing.T) {
	cfg := quick(Default("libquantum"), 250_000)
	cfg.Capture = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capture == nil || len(res.Capture.Refreshes) == 0 {
		t.Fatal("no capture")
	}
	tl := analysis.NewTimeline(res.Capture, cfg.Ranks)
	if tl.NumRefreshes() == 0 {
		t.Fatal("timeline empty")
	}
	w := tl.Windows(6240)
	// libquantum streams continuously: coverage must be high and λ near 1.
	if w.Lambda() < 0.9 {
		t.Errorf("libquantum lambda = %.2f, want ≥0.9", w.Lambda())
	}
	if w.Coverage() < 0.8 {
		t.Errorf("coverage = %.2f, want ≥0.8", w.Coverage())
	}
}

func TestWeightedSpeedup(t *testing.T) {
	shared := &Result{Cores: []CoreResult{{IPC: 0.5}, {IPC: 0.25}}}
	ws := WeightedSpeedup(shared, []float64{1.0, 0.5})
	if ws != 1.0 {
		t.Errorf("WS = %g, want 1.0", ws)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Benches = nil },
		func(c *Config) { c.Benches = []string{"nope"} },
		func(c *Config) { c.Ranks = 0 },
		func(c *Config) { c.Instructions = 0 },
		func(c *Config) { c.SRAMLines = 0 },
		func(c *Config) { c.LLCBytes = 12345 },
	}
	for i, mutate := range bad {
		cfg := Default("lbm")
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: Run accepted bad config", i)
		}
	}
}
