package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ropsim/internal/event"
	"ropsim/internal/memctrl"
)

// wdConfig is a small single-core run for watchdog tests.
func wdConfig() Config {
	cfg := Default("bzip2")
	cfg.Instructions = 100_000
	cfg.ROPTrainRefreshes = 4
	return cfg
}

// plantLivelock installs a StallHook that schedules an event chain
// rescheduling itself at the same cycle forever: the queue never
// advances past it, no later event fires, and no instruction retires.
// The returned func removes the hook.
func plantLivelock(t *testing.T) func() {
	t.Helper()
	StallHook = func(q *event.Queue) {
		var spin func(now event.Cycle)
		spin = func(now event.Cycle) { q.Schedule(now, spin) }
		q.Schedule(0, spin)
	}
	return func() { StallHook = nil }
}

func TestFaultWatchdogKillsLivelock(t *testing.T) {
	defer plantLivelock(t)()
	cfg := wdConfig()
	cfg.LivelockEvents = 50_000
	_, err := Run(cfg)
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("livelocked run returned %v, want *WatchdogError", err)
	}
	if !strings.Contains(we.Reason, "livelock") {
		t.Errorf("reason %q does not mention livelock", we.Reason)
	}
	if we.Retired >= wdConfig().Instructions {
		t.Errorf("watchdog fired after all %d instructions retired", we.Retired)
	}
	for _, want := range []string{"cycle=", "queues:", "rank 0:", "open_rows"} {
		if !strings.Contains(we.Dump, want) {
			t.Errorf("diagnostic dump missing %q:\n%s", want, we.Dump)
		}
	}
}

func TestFaultWatchdogWallClockDeadline(t *testing.T) {
	// A livelocked run with a tiny deadline and the livelock detector
	// disabled: only the wall-clock check can (and must) stop it.
	defer plantLivelock(t)()
	cfg := wdConfig()
	cfg.LivelockEvents = -1
	cfg.RunTimeout = time.Millisecond
	_, err := Run(cfg)
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("past-deadline run returned %v, want *WatchdogError", err)
	}
	if !strings.Contains(we.Reason, "deadline") {
		t.Errorf("reason %q does not mention the deadline", we.Reason)
	}
}

func TestFaultWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := wdConfig()
	cfg.LivelockEvents = 100_000 // tight, but healthy runs retire constantly
	cfg.RunTimeout = time.Minute
	if _, err := Run(cfg); err != nil {
		t.Fatalf("healthy run tripped the watchdog: %v", err)
	}
}

func TestFaultRunCtxCancelAborts(t *testing.T) {
	// A cancelled context must abort even a livelocked run (the poll
	// happens every watchdogInterval events regardless of progress).
	defer plantLivelock(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, wdConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

func TestFaultCheckerCleanOnAllModes(t *testing.T) {
	// The wired-in sanitizer must see a legal command stream from every
	// refresh policy it models.
	for _, mode := range []memctrl.Mode{memctrl.ModeBaseline, memctrl.ModeROP, memctrl.ModeElastic, memctrl.ModePausing} {
		cfg := wdConfig()
		cfg.Mode = mode
		cfg.Check = true
		if _, err := Run(cfg); err != nil {
			t.Errorf("mode %v: sanitizer-enabled run failed: %v", mode, err)
		}
	}
}
