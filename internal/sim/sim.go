// Package sim wires the full simulated system together — workload
// generators, trace-driven cores, the shared LLC, the address mapper,
// the memory controller with its refresh policy, and the energy model —
// and runs single-core or multiprogrammed experiments, producing the
// metrics the paper reports (IPC, weighted speedup inputs, energy, SRAM
// buffer hit rate).
package sim

import (
	"context"
	"fmt"
	"time"

	"ropsim/internal/addr"
	"ropsim/internal/cache"
	"ropsim/internal/core"
	"ropsim/internal/cpu"
	"ropsim/internal/dram"
	"ropsim/internal/energy"
	"ropsim/internal/event"
	"ropsim/internal/memctrl"
	"ropsim/internal/stats"
	"ropsim/internal/trace"
	"ropsim/internal/workload"
)

// Config describes one simulation run.
type Config struct {
	// Benches lists the benchmark per core (one entry = single-core).
	Benches []string
	// Traces, when non-nil, replaces the named generators with explicit
	// record streams (one per core, parallel to Benches, which then only
	// labels the cores). Streams are consumed destructively; reuse
	// requires fresh streams.
	Traces []workload.Stream
	// Mode selects baseline auto-refresh, idealized no-refresh, or ROP.
	Mode memctrl.Mode
	// RankPartition maps each core onto its own rank (the paper's
	// rank-aware mapping; Baseline-RP and ROP use it, Baseline does not).
	RankPartition bool
	// Ranks is the rank count (paper: 1 single-core, 4 for 4 cores).
	Ranks int
	// LLCBytes sizes the shared last-level cache.
	LLCBytes int
	// SRAMLines sizes the ROP prefetch buffer.
	SRAMLines int
	// ROPTrainRefreshes overrides the ROP training period length when
	// positive (the paper uses 50; short test runs use less).
	ROPTrainRefreshes int
	// ROPGate selects the prefetch launch policy (ablations).
	ROPGate core.GatePolicy
	// ROPStrictTable uses the paper's verbatim delta-replacement rule.
	ROPStrictTable bool
	// ROPPredictor selects the candidate generator (ablations).
	ROPPredictor core.Predictor
	// FGR selects the fine-grained refresh mode (paper default 1x).
	FGR dram.RefreshMode
	// Standard names the DRAM standard to simulate (dram.Lookup); empty
	// selects dram.DefaultStandard, the paper's DDR4-1600 device.
	Standard string
	// DensityGb scales the standard's refresh cycle times to a projected
	// die density via dram.ScaleDensity (tRFC grows, tREFI stays fixed);
	// zero keeps the 8 Gb datasheet timings.
	DensityGb int
	// Instructions is the per-core instruction budget.
	Instructions int64
	// Seed drives workload generation and the ROP gate.
	Seed int64
	// ClosedPage selects the closed-page row policy (default: the
	// paper's open-page policy).
	ClosedPage bool
	// Capture records the request/refresh timeline for offline analysis.
	Capture bool
	// CaptureTraces records each core's delivered request stream
	// (Result.CoreTraces) for later byte-exact replay via Traces or the
	// .ropt trace files (ropsim -capture-trace, docs/TRACES.md).
	CaptureTraces bool
	// CPU configures the core model.
	CPU cpu.Config

	// Check enables the JEDEC protocol sanitizer: every DRAM command the
	// controller issues is validated against the timing checker, and the
	// run aborts on the first violation (the -check flag).
	Check bool
	// RunTimeout bounds the run's wall-clock time; the watchdog aborts
	// with a diagnostic dump when it passes (0 = no limit).
	RunTimeout time.Duration
	// LivelockEvents is the forward-progress window: the watchdog aborts
	// when this many events dispatch without one instruction retiring.
	// Zero selects DefaultLivelockEvents; negative disables the detector.
	LivelockEvents int64
}

// Default returns the paper's configuration for the given benchmarks:
// single-core runs use 1 rank and a 2 MB LLC; multiprogrammed runs use
// 4 ranks and 4 MB (§V-A).
func Default(benches ...string) Config {
	cfg := Config{
		Benches:      benches,
		Mode:         memctrl.ModeBaseline,
		Ranks:        1,
		LLCBytes:     2 * cache.MiB,
		SRAMLines:    64,
		FGR:          dram.Refresh1x,
		Instructions: 2_000_000,
		Seed:         1,
		CPU:          cpu.DefaultConfig(),
	}
	if len(benches) > 1 {
		cfg.Ranks = 4
		cfg.LLCBytes = 4 * cache.MiB
	}
	return cfg
}

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if len(c.Benches) == 0 {
		return fmt.Errorf("sim: no benchmarks")
	}
	if c.Traces == nil {
		for _, b := range c.Benches {
			if trace.IsSource(b) {
				if trace.SourcePath(b) == "" {
					return fmt.Errorf("sim: trace source %q names no file", b)
				}
				continue
			}
			if _, err := workload.Get(b); err != nil {
				return err
			}
		}
	} else if len(c.Traces) != len(c.Benches) {
		return fmt.Errorf("sim: %d traces for %d cores", len(c.Traces), len(c.Benches))
	}
	if c.Ranks <= 0 {
		return fmt.Errorf("sim: ranks must be positive")
	}
	if c.Instructions <= 0 {
		return fmt.Errorf("sim: instruction budget must be positive")
	}
	if c.SRAMLines <= 0 {
		return fmt.Errorf("sim: SRAM lines must be positive")
	}
	if err := cache.DefaultConfig(c.LLCBytes).Validate(); err != nil {
		return err
	}
	if c.RunTimeout < 0 {
		return fmt.Errorf("sim: negative RunTimeout %v", c.RunTimeout)
	}
	std, err := dram.Lookup(c.Standard)
	if err != nil {
		return err
	}
	p, err := std.Params(c.FGR)
	if err != nil {
		return err
	}
	if _, err := dram.ScaleDensity(p, c.DensityGb); err != nil {
		return err
	}
	return c.CPU.Validate()
}

// CoreResult is one core's outcome.
type CoreResult struct {
	Bench        string         // benchmark name the core ran
	IPC          float64        // instructions per CPU cycle (3.2 GHz domain)
	Instructions int64          // instructions retired
	CPUCycles    event.CPUCycle // CPU cycles to retire them
	MemReads     int64          // demand reads sent to the memory system
	MemWrites    int64          // writebacks sent to the memory system
	LLCHitReads  int64          // reads absorbed by the LLC
}

// Result is the outcome of one run.
type Result struct {
	// Cores holds one entry per simulated core, in core-ID order.
	Cores []CoreResult
	// ElapsedBus is the wall-clock length of the run in bus cycles
	// (800 MHz domain).
	ElapsedBus event.Cycle

	// Energy is the DRAM + SRAM energy breakdown in joules.
	Energy energy.Breakdown

	// SRAMHitRate, SRAMLookups, SRAMHits and SRAMServed are the ROP
	// prefetch-buffer statistics (ModeROP only; zero otherwise):
	// lookup/hit counts, hits/lookups, and demand reads served from
	// the buffer.
	SRAMHitRate float64 // buffer hits / lookups
	SRAMLookups int64   // demand reads that probed the buffer
	SRAMHits    int64   // probes that found their line
	SRAMServed  int64   // demand reads served from the buffer

	// Refreshes counts REF commands issued across all ranks.
	Refreshes       int64
	MeanReadLatency float64 // bus cycles, queue arrival to data
	// LLCMissRate is LLC misses over LLC accesses.
	LLCMissRate float64

	// Capture is the recorded timeline when Config.Capture was set.
	Capture *memctrl.Capture

	// CoreTraces holds each core's delivered request stream when
	// Config.CaptureTraces was set (one slice per core, in core-ID
	// order); replaying them via Config.Traces reproduces the run.
	CoreTraces [][]workload.Record

	// Metrics is the run's full metric-registry snapshot: every counter,
	// mean, histogram and gauge each component registered, under dotted
	// paths ("memctrl.refreshes_issued", "cpu.core0.ipc", ...). The
	// snapshot is deterministic for a fixed Config and feeds the
	// -stats-out run artifacts; docs/METRICS.md documents the namespace.
	Metrics stats.Snapshot
}

// TotalEnergy reports the run's total energy in joules.
func (r *Result) TotalEnergy() float64 { return r.Energy.Total() }

// coreKey embeds the source core into a trace line index so that core
// address spaces never alias in the LLC or in DRAM.
func coreKey(line uint64, src int) uint64 {
	return line | uint64(src)<<44
}

// memSystem adapts LLC + mapper + controller to the cpu.Memory
// interface. Victim writebacks and write-allocate fetches that hit queue
// backpressure park in pending lists and retry when space frees.
type memSystem struct {
	llc     *cache.Cache
	mapper  addr.Mapper
	ctrl    *memctrl.Controller
	readCap int
	wrCap   int

	pendingWB    []uint64 // victim keys awaiting write enqueue
	pendingFetch []uint64 // write-allocate fetches awaiting read enqueue
	cores        []*cpu.Core
}

func (m *memSystem) locOf(key uint64) addr.Loc {
	return m.mapper.Map(key, int(key>>44))
}

// flushPending retries parked writebacks and fetches after space frees.
func (m *memSystem) flushPending() {
	for len(m.pendingWB) > 0 && m.ctrl.WriteQueueLen() < m.wrCap {
		key := m.pendingWB[0]
		if !m.ctrl.EnqueueWrite(m.locOf(key), int(key>>44)) {
			break
		}
		m.pendingWB = m.pendingWB[1:]
	}
	for len(m.pendingFetch) > 0 && m.ctrl.ReadQueueLen() < m.readCap {
		key := m.pendingFetch[0]
		if !m.ctrl.EnqueueRead(m.locOf(key), int(key>>44), nil) {
			break
		}
		m.pendingFetch = m.pendingFetch[1:]
	}
}

// onSpace runs on controller queue-space notifications.
func (m *memSystem) onSpace() {
	m.flushPending()
	for _, c := range m.cores {
		c.NotifySpace()
	}
}

// handleEviction queues the writeback of a dirty victim.
func (m *memSystem) handleEviction(res cache.Result) {
	if !res.EvictedValid {
		return
	}
	key := res.EvictedLine
	if len(m.pendingWB) > 0 || !m.ctrl.EnqueueWrite(m.locOf(key), int(key>>44)) {
		m.pendingWB = append(m.pendingWB, key)
	}
}

// Read implements cpu.Memory.
func (m *memSystem) Read(line uint64, src int, done func(event.Cycle)) cpu.ReadStatus {
	if m.ctrl.ReadQueueLen() >= m.readCap {
		return cpu.ReadRejected
	}
	key := coreKey(line, src)
	res := m.llc.Access(key, false)
	if res.Hit {
		return cpu.ReadHit
	}
	if !m.ctrl.EnqueueRead(m.mapper.Map(key, src), src, done) {
		// The capacity check above makes this unreachable; treat it as
		// rejection if a policy ever changes.
		return cpu.ReadRejected
	}
	m.handleEviction(res)
	return cpu.ReadMiss
}

// Write implements cpu.Memory. A write miss allocates in the LLC and
// fetches the line from memory (write-allocate); the dirty data reaches
// DRAM later as a victim writeback.
func (m *memSystem) Write(line uint64, src int) bool {
	// Require room for the worst case (fetch + victim writeback) before
	// mutating the LLC, so rejected writes have no side effects.
	if m.ctrl.WriteQueueLen() >= m.wrCap || m.ctrl.ReadQueueLen() >= m.readCap {
		return false
	}
	key := coreKey(line, src)
	res := m.llc.Access(key, true)
	if !res.Hit {
		if !m.ctrl.EnqueueRead(m.mapper.Map(key, src), src, nil) {
			m.pendingFetch = append(m.pendingFetch, key)
		}
		m.handleEviction(res)
	}
	return true
}

// DebugHook, when set, observes the controller right after construction
// (diagnostics only).
var DebugHook func(*memctrl.Controller)

// Run executes one simulation. It returns an error when the
// configuration is invalid or the run fails to converge.
func Run(cfg Config) (*Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run with cancellation: the run aborts between events when
// ctx is cancelled (polled every watchdogInterval events) and returns
// ctx's error. Graceful campaign shutdown rides on this.
func RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	res, _, _, err := run(ctx, cfg)
	return res, err
}

// run is the Run body, also returning the device and controller for
// RunDebug.
func run(ctx context.Context, cfg Config) (*Result, *dram.Device, *memctrl.Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}

	// Every run owns a private registry: components register their
	// statistics under dotted paths and the final snapshot rides back on
	// the Result. Per-run ownership (never shared across runner workers)
	// is what makes parallel experiments race-free.
	reg := stats.NewRegistry()

	q := &event.Queue{}
	std, err := dram.Lookup(cfg.Standard)
	if err != nil {
		return nil, nil, nil, err
	}
	geo := std.Geometry(cfg.Ranks)
	params, err := std.Params(cfg.FGR)
	if err != nil {
		return nil, nil, nil, err
	}
	params, err = dram.ScaleDensity(params, cfg.DensityGb)
	if err != nil {
		return nil, nil, nil, err
	}
	if cfg.Mode == memctrl.ModeNoRefresh {
		params = dram.NoRefresh(params)
	}
	dev := dram.NewDevice(params, geo)
	dev.RegisterMetrics(reg.Sub("dram"))

	mcfg := memctrl.DefaultConfig(cfg.Mode)
	mcfg.Capture = cfg.Capture
	mcfg.ClosedPage = cfg.ClosedPage
	mcfg.ROP.SRAMLines = cfg.SRAMLines
	mcfg.ROP.Seed = cfg.Seed*7919 + 13
	if cfg.ROPTrainRefreshes > 0 {
		mcfg.ROP.TrainRefreshes = cfg.ROPTrainRefreshes
	}
	mcfg.ROP.Gate = cfg.ROPGate
	mcfg.ROP.StrictTable = cfg.ROPStrictTable
	mcfg.ROP.Predictor = cfg.ROPPredictor
	ctrl, err := memctrl.New(mcfg, dev, q)
	if err != nil {
		return nil, nil, nil, err
	}
	ctrl.RegisterMetrics(reg.Sub("memctrl"))
	if DebugHook != nil {
		DebugHook(ctrl)
	}

	// The protocol sanitizer observes every issued command and latches
	// the first violation; the event loop surfaces it at the watchdog
	// cadence so a broken schedule aborts promptly.
	var checkErr error
	if cfg.Check {
		checker := dram.NewChecker(params, geo)
		if cfg.Mode == memctrl.ModeSARP {
			// SARP confines a full per-bank refresh to one subarray, so
			// its REFsa commands lock for tRFCpb, not tRFCsa.
			checker.REFsaDur = params.RFCpb
		}
		ctrl.SetCommandObserver(func(cmd dram.Command) {
			if checkErr == nil {
				checkErr = checker.Check(cmd)
			}
		})
	}

	var mapper addr.Mapper
	if cfg.RankPartition {
		mapper = addr.NewRankPartitioned(geo)
	} else {
		mapper = addr.NewInterleaved(geo)
	}

	llc, err := cache.New(cache.DefaultConfig(cfg.LLCBytes))
	if err != nil {
		return nil, nil, nil, err
	}
	ms := &memSystem{
		llc:     llc,
		mapper:  mapper,
		ctrl:    ctrl,
		readCap: mcfg.ReadQueueCap,
		wrCap:   mcfg.WriteQueueCap,
	}
	ctrl.SetSpaceNotify(ms.onSpace)
	ms.llc.RegisterMetrics(reg.Sub("llc"))

	remaining := len(cfg.Benches)
	cores := make([]*cpu.Core, len(cfg.Benches))
	recorders := make([]*trace.Recorder, len(cfg.Benches))
	for i, bench := range cfg.Benches {
		var stream workload.Stream
		switch {
		case cfg.Traces != nil:
			stream = cfg.Traces[i]
		case trace.IsSource(bench):
			recs, err := trace.LoadFile(trace.SourcePath(bench))
			if err != nil {
				return nil, nil, nil, err
			}
			rs := trace.NewReplayStream(recs)
			// Replay metrics only exist for trace-driven cores, so
			// synthetic runs keep their metric namespace (and golden
			// artifacts) unchanged.
			rs.RegisterMetrics(reg.Sub(fmt.Sprintf("trace.core%d", i)))
			stream = rs
		default:
			prof, err := workload.Get(bench)
			if err != nil {
				return nil, nil, nil, err
			}
			stream = workload.NewGenerator(prof, cfg.Seed*1_000_003+int64(i)*97+int64(len(bench)))
		}
		if cfg.CaptureTraces {
			recorders[i] = trace.NewRecorder(stream)
			stream = recorders[i]
		}
		cores[i] = cpu.New(cfg.CPU, i, stream, ms, q, cfg.Instructions)
		cores[i].RegisterMetrics(reg.Sub(fmt.Sprintf("cpu.core%d", i)))
	}
	ms.cores = cores
	for _, c := range cores {
		c := c
		c.Start(func() { remaining-- })
	}

	if StallHook != nil {
		StallHook(q)
	}

	// Run until every core finishes. The event bound is generous (some
	// hundreds of events per instruction would be pathological); a run
	// that exceeds it is livelocked and reports an error instead of
	// spinning forever. The watchdog layers finer detectors on top:
	// cancellation, the wall-clock deadline, and retire-progress
	// tracking, polled every watchdogInterval events.
	wd := newWatchdog(cfg, cores, ctrl, dev, q)
	maxEvents := 1000 * cfg.Instructions * int64(len(cfg.Benches)+1)
	var dispatched int64
	for remaining > 0 {
		if !q.Step() {
			return nil, nil, nil, fmt.Errorf("sim: event queue drained with %d cores unfinished", remaining)
		}
		dispatched++
		if dispatched > maxEvents {
			return nil, nil, nil, fmt.Errorf("sim: exceeded %d events with %d cores unfinished (livelock?)",
				maxEvents, remaining)
		}
		if dispatched%watchdogInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, nil, err
			}
			if checkErr != nil {
				return nil, nil, nil, fmt.Errorf("sim: protocol violation: %w", checkErr)
			}
			if err := wd.check(dispatched, remaining); err != nil {
				return nil, nil, nil, err
			}
		}
	}

	// Pure-compute phases advance core time without any event-queue
	// activity, so the wall clock is the later of the last event and the
	// slowest core's own clock — and the controller must keep running
	// (refreshing) through that tail so refresh counts and energy cover
	// the whole run.
	elapsed := q.Now()
	for _, c := range cores {
		if b := event.ToBus(c.Cycles()); b > elapsed {
			elapsed = b
		}
	}
	q.RunUntil(elapsed)
	res := &Result{ElapsedBus: elapsed, Capture: ctrl.CaptureLog()}
	if cfg.CaptureTraces {
		res.CoreTraces = make([][]workload.Record, len(recorders))
		for i, rec := range recorders {
			res.CoreTraces[i] = rec.Records()
		}
	}
	for i, c := range cores {
		res.Cores = append(res.Cores, CoreResult{
			Bench:        cfg.Benches[i],
			IPC:          c.IPC(),
			Instructions: c.Instructions(),
			CPUCycles:    c.Cycles(),
			MemReads:     c.MemReads.Value(),
			MemWrites:    c.MemWrites.Value(),
			LLCHitReads:  c.LLCHitReads.Value(),
		})
	}
	res.Refreshes = ctrl.RefreshesIssued.Value()
	res.MeanReadLatency = ctrl.ReadLatency.Value()
	if total := ms.llc.Hits.Value() + ms.llc.Misses.Value(); total > 0 {
		res.LLCMissRate = float64(ms.llc.Misses.Value()) / float64(total)
	}

	var sramCounts energy.SRAMCounts
	sramCounts.Lines = cfg.SRAMLines
	if rop := ctrl.ROP(); rop != nil {
		buf := rop.Buffer()
		res.SRAMLookups = buf.Lookups.Value()
		res.SRAMHits = buf.Hits.Value()
		res.SRAMHitRate = buf.HitRate(0)
		res.SRAMServed = ctrl.SRAMServed.Value()
		sramCounts.Reads = buf.Lookups.Value()
		sramCounts.Writes = buf.Inserted.Value()
	}
	res.Energy, err = energy.Compute(energy.DDR4Power(), params, elapsed, energy.Counts{
		ACT:             dev.NumACT.Value(),
		RD:              dev.NumRD.Value(),
		WR:              dev.NumWR.Value(),
		REF:             dev.NumREF.Value(),
		RefLockedCycles: dev.RefLockedCycles.Value(),
		Ranks:           cfg.Ranks,
	}, sramCounts)
	if err != nil {
		return nil, nil, nil, err
	}
	// The refresh tail after the last core finished still issued
	// commands; surface any sanitizer violation latched there.
	if checkErr != nil {
		return nil, nil, nil, fmt.Errorf("sim: protocol violation: %w", checkErr)
	}

	// Run-level derived metrics join the registry last, then the whole
	// namespace is frozen into the result.
	res.Energy.RegisterMetrics(reg.Sub("energy"))
	simReg := reg.Sub("sim")
	simReg.Gauge("elapsed_bus_cycles", func() float64 { return float64(res.ElapsedBus) })
	simReg.Gauge("cores", func() float64 { return float64(len(res.Cores)) })
	simReg.Gauge("llc_miss_rate", func() float64 { return res.LLCMissRate })
	simReg.Gauge("mean_read_latency", func() float64 { return res.MeanReadLatency })
	res.Metrics = reg.Snapshot()
	return res, dev, ctrl, nil
}

// WeightedSpeedup computes Σ IPC_shared/IPC_alone (paper Eq. 4) given
// the shared-run result and per-benchmark alone IPCs keyed by core
// index.
func WeightedSpeedup(shared *Result, alone []float64) float64 {
	if len(alone) != len(shared.Cores) {
		panic("sim: alone IPC count mismatch")
	}
	ws := 0.0
	for i, c := range shared.Cores {
		if alone[i] > 0 {
			ws += c.IPC / alone[i]
		}
	}
	return ws
}

// DebugResult bundles a Result with the live device and controller so
// exploratory tools can inspect raw counters. Tests and experiments use
// Run; this is a diagnostics door.
type DebugResult struct {
	Result *Result             // the normal run outcome
	Dev    *dram.Device        // the live DRAM device after the run
	Ctrl   *memctrl.Controller // the live memory controller after the run
}

// RunDebug is Run, returning the internals alongside the result.
func RunDebug(cfg Config) (*DebugResult, error) {
	res, dev, ctrl, err := run(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return &DebugResult{Result: res, Dev: dev, Ctrl: ctrl}, nil
}
