// The coordinator: lease-based task dispatch over attached workers,
// heartbeat-deadline loss detection, exactly-once completion, and
// graceful degradation to in-process execution.

package campaign

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ropsim/internal/stats"
)

// LocalFunc executes one run in-process — the coordinator's graceful
// degradation path when no workers are attached. cmd/ropexp wires it
// to the simulator; the result bytes must be exactly what a worker
// would have produced (deterministic simulation + canonical JSON).
type LocalFunc func(ctx context.Context, label string, cfg []byte) ([]byte, error)

// CoordinatorOptions configures NewCoordinator.
type CoordinatorOptions struct {
	// Clock is the injected host clock (runner.WallClock in
	// production). Required.
	Clock Clock
	// HeartbeatEvery is the interval workers are told to beat at
	// (0 = DefaultHeartbeatEvery).
	HeartbeatEvery time.Duration
	// HeartbeatMiss is the per-worker silence deadline (0 =
	// DefaultHeartbeatMiss).
	HeartbeatMiss time.Duration
	// Local executes a run in-process when no workers are attached.
	// Required: a campaign must always be able to make progress.
	Local LocalFunc
	// Logf, when non-nil, receives operational log lines (worker
	// attach/loss, re-dispatches).
	Logf func(format string, args ...any)
}

// errCoordinatorClosed reports a Do call racing coordinator shutdown.
var errCoordinatorClosed = errors.New("campaign: coordinator closed")

// outcome resolves one waiting Do call.
type outcome struct {
	result []byte
	err    error
	// runLocal hands the task back to the submitting goroutine for
	// in-process execution (the no-workers degradation path).
	runLocal bool
}

// task is one submitted run inside the coordinator.
type task struct {
	label string
	cfg   []byte
	ch    chan outcome // buffered 1; exactly one send ever happens
	// lease is the current lease id (0 = unleased); owner the worker
	// holding it. Both are guarded by the coordinator mutex.
	lease    uint64
	owner    *remoteWorker
	resolved bool
}

// remoteWorker is one attached worker connection.
type remoteWorker struct {
	id        uint64
	name      string
	addr      string
	slots     int
	conn      *conn
	lastBeat  time.Time
	inflight  map[uint64]*task
	completed int64
	gone      bool
}

// Coordinator shards campaign tasks across attached workers. Create
// with NewCoordinator; submit with Do (one call per run, typically
// from the runner pool's worker goroutines); stop with Close (drain)
// or Abort.
type Coordinator struct {
	opts CoordinatorOptions
	ln   net.Listener

	reg *stats.Registry
	// Campaign counters (exposed via the registry and /metrics).
	cSubmitted  stats.AtomicCounter
	cCompleted  stats.AtomicCounter
	cFailed     stats.AtomicCounter
	cLocal      stats.AtomicCounter
	cRedispatch stats.AtomicCounter
	cDuplicate  stats.AtomicCounter
	cAttached   stats.AtomicCounter
	cLost       stats.AtomicCounter
	cHeartbeats stats.AtomicCounter

	mu         sync.Mutex
	workers    map[uint64]*remoteWorker
	pending    []*task
	leases     map[uint64]*task
	nextWorker uint64
	nextLease  uint64
	closed     bool

	done     chan struct{}
	shutdown sync.Once
	// loops joins the accept and monitor loops on shutdown, so Close
	// never returns while a coordinator goroutine still touches the
	// listener or the worker table.
	loops sync.WaitGroup
}

// NewCoordinator listens on addr and starts the accept and
// heartbeat-monitor loops. Use Addr for the bound address (addr may
// end in ":0").
func NewCoordinator(addr string, o CoordinatorOptions) (*Coordinator, error) {
	if o.Clock == nil {
		return nil, errors.New("campaign: coordinator needs a Clock")
	}
	if o.Local == nil {
		return nil, errors.New("campaign: coordinator needs a Local executor")
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if o.HeartbeatMiss <= 0 {
		o.HeartbeatMiss = DefaultHeartbeatMiss
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("campaign: listen %s: %w", addr, err)
	}
	c := &Coordinator{
		opts:    o,
		ln:      ln,
		workers: map[uint64]*remoteWorker{},
		leases:  map[uint64]*task{},
		done:    make(chan struct{}),
	}
	c.reg = stats.NewRegistry()
	sub := c.reg.Sub("campaign")
	sub.Register("tasks_submitted", &c.cSubmitted)
	sub.Register("tasks_completed", &c.cCompleted)
	sub.Register("tasks_failed", &c.cFailed)
	sub.Register("tasks_local", &c.cLocal)
	sub.Register("tasks_redispatched", &c.cRedispatch)
	sub.Register("results_duplicate", &c.cDuplicate)
	sub.Register("workers_attached", &c.cAttached)
	sub.Register("workers_lost", &c.cLost)
	sub.Register("heartbeats", &c.cHeartbeats)
	c.loops.Add(2)
	go c.acceptLoop()
	go c.monitorLoop()
	return c, nil
}

// Addr reports the coordinator's bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// logf forwards to the configured logger.
func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Do executes one run through the campaign: the task is leased to an
// attached worker, or — when none is attached now or after every
// holder was lost — executed in-process via the Local function. Do
// blocks until the run completes, ctx is cancelled, or the
// coordinator shuts down. Safe for concurrent use; the runner pool's
// worker count bounds how many Do calls are in flight.
func (c *Coordinator) Do(ctx context.Context, label string, cfg []byte) ([]byte, error) {
	tk := &task{label: label, cfg: cfg, ch: make(chan outcome, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errCoordinatorClosed
	}
	c.cSubmitted.Inc()
	c.pending = append(c.pending, tk)
	local := c.kick()
	c.mu.Unlock()
	c.runLocally(local)

	select {
	case out := <-tk.ch:
		if out.runLocal {
			return c.opts.Local(ctx, label, cfg)
		}
		return out.result, out.err
	case <-ctx.Done():
		c.abandon(tk)
		return nil, ctx.Err()
	case <-c.done:
		return nil, errCoordinatorClosed
	}
}

// abandon withdraws a task whose submitter stopped waiting: it leaves
// the pending queue, and any live lease is revoked so a late result is
// dropped as a duplicate.
func (c *Coordinator) abandon(tk *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tk.resolved {
		return
	}
	tk.resolved = true
	for i, p := range c.pending {
		if p == tk {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	if tk.lease != 0 {
		delete(c.leases, tk.lease)
		if tk.owner != nil {
			delete(tk.owner.inflight, tk.lease)
		}
	}
}

// kick dispatches pending tasks. Callers hold c.mu. Tasks go to the
// attached worker with the most free slots (ties to the lowest id);
// when no worker is attached at all, the task is handed back to its
// submitting goroutine for in-process execution — returned to the
// caller, who must pass the batch to runLocally after releasing c.mu
// so no channel send happens inside the critical section. When
// workers exist but are saturated, tasks wait for a slot (or for the
// heartbeat monitor to reap a dead holder).
func (c *Coordinator) kick() (local []*task) {
	for len(c.pending) > 0 {
		w := c.pickWorker()
		if w == nil {
			if len(c.workers) > 0 {
				return local // saturated: a result or a loss will re-kick
			}
			tk := c.pending[0]
			c.pending = c.pending[1:]
			tk.resolved = true
			c.cLocal.Inc()
			local = append(local, tk)
			continue
		}
		tk := c.pending[0]
		c.pending = c.pending[1:]
		c.nextLease++
		lease := c.nextLease
		tk.lease, tk.owner = lease, w
		c.leases[lease] = tk
		w.inflight[lease] = tk
		msg := taskMsg{Lease: lease, Label: tk.label, Config: tk.cfg}
		go func(w *remoteWorker) {
			if err := w.conn.send(msgTask, msg); err != nil {
				c.dropWorker(w, fmt.Errorf("send: %w", err))
			}
		}(w)
	}
	return local
}

// runLocally delivers the run-local outcome to every task kick handed
// back. Callers invoke it after releasing c.mu: each task channel is
// buffered for its single outcome, so the sends cannot block, but
// keeping them out of the critical section makes that a structural
// property instead of a buffering accident.
func (c *Coordinator) runLocally(local []*task) {
	for _, tk := range local {
		tk.ch <- outcome{runLocal: true}
	}
}

// pickWorker selects the attached worker with the most free slots
// (ties broken by lowest id, for stable behavior). Callers hold c.mu.
func (c *Coordinator) pickWorker() *remoteWorker {
	var best *remoteWorker
	bestFree := 0
	for _, w := range c.workers {
		free := w.slots - len(w.inflight)
		if free <= 0 {
			continue
		}
		if best == nil || free > bestFree || (free == bestFree && w.id < best.id) {
			best, bestFree = w, free
		}
	}
	return best
}

// acceptLoop admits worker connections until the listener closes.
func (c *Coordinator) acceptLoop() {
	defer c.loops.Done()
	for {
		nc, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			c.logf("campaign: accept: %v", err)
			continue
		}
		go c.handleConn(nc)
	}
}

// handleConn runs one worker session: hello/welcome handshake, then
// the frame loop. Any protocol violation or read error drops the
// worker and re-dispatches its leases.
func (c *Coordinator) handleConn(nc net.Conn) {
	cn := newConn(nc)
	// Bound the handshake with the clock seam: a connection that never
	// says hello is cut at the heartbeat-miss deadline.
	helloDone := make(chan struct{})
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-helloDone:
		case <-c.opts.Clock.After(c.opts.HeartbeatMiss):
			cn.close()
		case <-c.done:
			cn.close()
		}
	}()
	// Every return below happens after helloDone closes, so this join
	// never waits on the watchdog's timers.
	defer watch.Wait()
	t, body, err := cn.recv()
	close(helloDone)
	if err != nil || t != msgHello {
		cn.close()
		return
	}
	hello, err := decode[helloMsg](body)
	if err != nil || hello.Proto != ProtocolVersion || hello.Slots < 1 {
		c.logf("campaign: rejecting worker from %s: %v (proto %d, slots %d)",
			nc.RemoteAddr(), err, hello.Proto, hello.Slots)
		cn.close()
		return
	}
	w := &remoteWorker{
		name:     hello.Name,
		addr:     nc.RemoteAddr().String(),
		slots:    hello.Slots,
		conn:     cn,
		lastBeat: c.opts.Clock.Now(),
		inflight: map[uint64]*task{},
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cn.close()
		return
	}
	c.nextWorker++
	w.id = c.nextWorker
	c.workers[w.id] = w
	c.cAttached.Inc()
	local := c.kick()
	c.mu.Unlock()
	c.runLocally(local)
	if err := cn.send(msgWelcome, welcomeMsg{
		Proto:          ProtocolVersion,
		HeartbeatEvery: c.opts.HeartbeatEvery,
		HeartbeatMiss:  c.opts.HeartbeatMiss,
	}); err != nil {
		c.dropWorker(w, fmt.Errorf("welcome: %w", err))
		return
	}
	c.logf("campaign: worker %q attached from %s (%d slots)", w.name, w.addr, w.slots)

	for {
		t, body, err := cn.recv()
		if err != nil {
			c.dropWorker(w, err)
			return
		}
		c.mu.Lock()
		w.lastBeat = c.opts.Clock.Now()
		c.mu.Unlock()
		switch t {
		case msgHeartbeat:
			c.cHeartbeats.Inc()
		case msgResult:
			res, err := decode[resultMsg](body)
			if err != nil {
				c.dropWorker(w, err)
				return
			}
			c.resolve(w, res)
		case msgBye:
			c.dropWorker(w, nil)
			return
		default:
			c.dropWorker(w, fmt.Errorf("unexpected message type %d", t))
			return
		}
	}
}

// resolve completes (or drops) one lease's result. The first result
// for a live lease wins; results for revoked or already-completed
// leases are counted as duplicates and discarded — that is the
// "re-dispatched exactly once" contract's delivery half.
func (c *Coordinator) resolve(w *remoteWorker, res resultMsg) {
	c.mu.Lock()
	tk, ok := c.leases[res.Lease]
	if !ok || tk.owner != w || tk.resolved {
		c.mu.Unlock()
		c.cDuplicate.Inc()
		return
	}
	delete(c.leases, res.Lease)
	delete(w.inflight, res.Lease)
	w.completed++
	tk.resolved = true
	local := c.kick()
	c.mu.Unlock()
	c.runLocally(local)

	if res.Err != "" {
		c.cFailed.Inc()
		tk.ch <- outcome{err: fmt.Errorf("campaign: worker %q: %s", w.name, res.Err)}
		return
	}
	c.cCompleted.Inc()
	tk.ch <- outcome{result: res.Result}
}

// dropWorker detaches a worker (nil err = graceful bye) and requeues
// every lease it still held for re-dispatch. Idempotent.
func (c *Coordinator) dropWorker(w *remoteWorker, err error) {
	c.mu.Lock()
	if w.gone {
		c.mu.Unlock()
		return
	}
	w.gone = true
	delete(c.workers, w.id)
	requeued := 0
	for lease, tk := range w.inflight {
		delete(c.leases, lease)
		delete(w.inflight, lease)
		if tk.resolved {
			continue
		}
		tk.lease, tk.owner = 0, nil
		c.pending = append(c.pending, tk)
		c.cRedispatch.Inc()
		requeued++
	}
	if err != nil {
		c.cLost.Inc()
	}
	local := c.kick()
	c.mu.Unlock()
	c.runLocally(local)
	w.conn.close()
	if err != nil {
		c.logf("campaign: worker %q lost (%v); %d lease(s) re-dispatched", w.name, err, requeued)
	} else {
		c.logf("campaign: worker %q detached; %d lease(s) re-dispatched", w.name, requeued)
	}
}

// monitorLoop reaps workers whose heartbeats stopped: a worker silent
// past HeartbeatMiss — wedged, killed, or partitioned — loses its
// leases even though its socket may still be open.
func (c *Coordinator) monitorLoop() {
	defer c.loops.Done()
	interval := c.opts.HeartbeatMiss / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	for {
		select {
		case <-c.done:
			return
		case <-c.opts.Clock.After(interval):
		}
		now := c.opts.Clock.Now()
		var expired []*remoteWorker
		c.mu.Lock()
		for _, w := range c.workers {
			if now.Sub(w.lastBeat) > c.opts.HeartbeatMiss {
				expired = append(expired, w)
			}
		}
		c.mu.Unlock()
		for _, w := range expired {
			c.dropWorker(w, fmt.Errorf("heartbeat deadline exceeded (%v)", c.opts.HeartbeatMiss))
		}
	}
}

// Close shuts the coordinator down gracefully: workers are asked to
// drain (finish in-flight runs and exit), the listener closes, and
// waiting Do calls fail. Call after the campaign's last Do returned.
func (c *Coordinator) Close() error { return c.stop(msgDrain) }

// Abort shuts the coordinator down immediately: workers are told to
// cancel their in-flight runs and exit. Used on the second-signal
// abort path.
func (c *Coordinator) Abort() error { return c.stop(msgAbort) }

// stop broadcasts the shutdown message and tears the coordinator
// down. On a drain the worker connections stay open so each worker
// can finish, say bye, and hang up itself; on an abort they are
// closed immediately.
func (c *Coordinator) stop(t msgType) error {
	c.shutdown.Do(func() {
		c.mu.Lock()
		c.closed = true
		ws := make([]*remoteWorker, 0, len(c.workers))
		for _, w := range c.workers {
			ws = append(ws, w)
		}
		c.mu.Unlock()
		for _, w := range ws {
			w.conn.send(t, struct{}{}) // best effort: a dead session is dropped anyway
		}
		close(c.done)
		c.ln.Close()
		if t == msgAbort {
			for _, w := range ws {
				w.conn.close()
			}
		}
		// Join the accept and monitor loops: both exit promptly once
		// done is closed and the listener is down. Per-connection
		// handlers are deliberately not joined — a drain must survive a
		// wedged worker (the chaos suite SIGSTOPs one), and their
		// sockets unblock via the bye/close paths on their own.
		c.loops.Wait()
	})
	return nil
}
