package campaign

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// TestProtoRoundTrip pins the framing: every message type survives a
// write/read cycle with its body intact.
func TestProtoRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := taskMsg{Lease: 42, Label: "fig1/lbm/base", Config: []byte(`{"x":1}`)}
	if err := writeFrame(&buf, msgTask, in); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != msgTask {
		t.Fatalf("type = %d, want %d", typ, msgTask)
	}
	out, err := decode[taskMsg](body)
	if err != nil {
		t.Fatal(err)
	}
	if out.Lease != in.Lease || out.Label != in.Label || string(out.Config) != string(in.Config) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

// TestProtoRejectsHostileInput pins the codec's failure contract: a
// zero-length frame, an oversized length prefix, a truncated payload,
// an unknown message type, and a short header must each produce an
// error — never a panic, a hang, or an oversized allocation.
func TestProtoRejectsHostileInput(t *testing.T) {
	frame := func(n uint32, payload []byte) []byte {
		b := make([]byte, 4+len(payload))
		binary.BigEndian.PutUint32(b, n)
		copy(b[4:], payload)
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want string
	}{
		{"empty frame", frame(0, nil), "empty frame"},
		{"oversized length", frame(maxFrame+1, []byte{byte(msgHello)}), "exceeds"},
		{"truncated payload", frame(100, []byte{byte(msgHello), '{', '}'}), "truncated"},
		{"unknown type zero", frame(1, []byte{0}), "unknown message type"},
		{"unknown type high", frame(2, []byte{200, 'x'}), "unknown message type"},
		{"short header", []byte{0x00, 0x00}, ""},
		{"no input", nil, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readFrame(bytes.NewReader(tc.in))
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestProtoWriteRejectsOversized pins the send-side guard: a frame
// that would exceed maxFrame is refused before any bytes hit the wire.
func TestProtoWriteRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	huge := resultMsg{Lease: 1, Result: bytes.Repeat([]byte("a"), maxFrame)}
	if err := writeFrame(&buf, msgResult, huge); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if buf.Len() != 0 {
		t.Fatalf("refused frame still wrote %d bytes", buf.Len())
	}
}

// FuzzProtoReadFrame throws arbitrary bytes at the codec: it must
// return cleanly (frame or error) without panicking, and an accepted
// frame must re-encode consistently.
func FuzzProtoReadFrame(f *testing.F) {
	var seedBuf bytes.Buffer
	writeFrame(&seedBuf, msgHello, helloMsg{Proto: 1, Name: "w", Slots: 2})
	f.Add(seedBuf.Bytes())
	f.Add([]byte{0, 0, 0, 1, byte(msgBye)})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if typ < msgHello || typ > msgBye {
			t.Fatalf("accepted frame with invalid type %d", typ)
		}
		if len(body) > maxFrame {
			t.Fatalf("accepted %d-byte body past the %d limit", len(body), maxFrame)
		}
	})
}

// TestProtoPartialFrameWaits documents (and pins) that a partial frame
// on a live reader is not an error — the reader blocks for more input,
// and bounding that wait is the heartbeat deadline's job. With an
// io.Reader that ends, the wait surfaces as truncation.
func TestProtoPartialFrameWaits(t *testing.T) {
	var buf bytes.Buffer
	writeFrame(&buf, msgHeartbeat, heartbeatMsg{InFlight: 3})
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := readFrame(bytes.NewReader(whole[:cut]))
		if err == nil {
			t.Fatalf("cut at %d: truncated frame accepted", cut)
		}
		if cut > 4 && err != nil && !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("cut at %d: err = %v, want truncation", cut, err)
		}
	}
	if _, _, err := readFrame(bytes.NewReader(whole)); err != nil {
		t.Fatalf("whole frame rejected: %v", err)
	}
}
