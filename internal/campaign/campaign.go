// Package campaign shards an experiment campaign across worker
// processes: a coordinator (ropexp -serve) leases tasks to workers
// (cmd/ropworker, or ropexp -connect) over a length-prefixed binary
// protocol on TCP, streams per-run results back, and survives worker
// loss by re-dispatching revoked leases — falling all the way back to
// in-process execution when no workers are attached.
//
// The robustness contract (docs/ROBUSTNESS.md, "The distributed
// campaign") in one paragraph: every attached worker heartbeats on the
// interval the coordinator hands it at welcome; a worker that misses
// its heartbeat deadline, closes its connection, or is killed loses
// every lease it held, and those tasks return to the queue to be
// re-dispatched — to another worker if one is attached, otherwise to
// the coordinator's own in-process executor. A task completes exactly
// once: the first result for a lease wins, and results for revoked
// leases are counted and dropped. The simulator is deterministic and
// results round-trip JSON byte-exactly, so a campaign sharded across N
// workers — including workers lost and replaced mid-run — produces
// byte-identical artifacts to a single-process run.
//
// The package never reads the host clock directly: every deadline and
// heartbeat goes through the injected Clock seam (runner.WallClock in
// production, a manually advanced fake in tests), and the simlint
// wallclock analyzer enforces this with zero escape hatches.
package campaign

import "time"

// Exit codes shared by cmd/ropexp and cmd/ropworker — the one
// authoritative definition of the CLI exit contract, documented in
// docs/ROBUSTNESS.md ("Graceful shutdown and exit codes").
const (
	// ExitOK reports a fully successful campaign or worker session.
	ExitOK = 0
	// ExitFailure reports one or more failed runs (or a worker session
	// that ended in an unrecoverable error).
	ExitFailure = 1
	// ExitUsage reports a command-line usage error.
	ExitUsage = 2
	// ExitInterrupted reports a first-signal graceful shutdown: partial
	// artifacts and journal flushed, safe to resume.
	ExitInterrupted = 3
	// ExitAborted reports a second-signal immediate abort (128 + SIGINT).
	ExitAborted = 130
)

// ProtocolVersion is the wire-protocol generation. A coordinator
// rejects hellos from a different generation and a worker rejects
// mismatched welcomes, so mixed-version fleets fail loudly at attach
// time instead of corrupting a campaign.
const ProtocolVersion = 1

// Heartbeat defaults (the -heartbeat / -heartbeat-timeout flags).
const (
	// DefaultHeartbeatEvery is the interval the coordinator instructs
	// workers to beat at.
	DefaultHeartbeatEvery = 1 * time.Second
	// DefaultHeartbeatMiss is the per-worker deadline: a worker silent
	// for this long is declared lost and its leases are re-dispatched.
	DefaultHeartbeatMiss = 5 * time.Second
)

// DefaultReconnectBackoff is the worker's dial-retry schedule base: it
// is completed with the worker's name as jitter salt, so a restarted
// fleet never reconnects in lockstep, yet each worker's schedule is
// reproducible.
const (
	// DefaultReconnectBase is the first reconnect delay.
	DefaultReconnectBase = 250 * time.Millisecond
	// DefaultReconnectMax caps each individual reconnect delay.
	DefaultReconnectMax = 5 * time.Second
	// DefaultReconnectWindow bounds the total time a worker keeps
	// retrying a dead coordinator before exiting.
	DefaultReconnectWindow = 1 * time.Minute
)

// Clock abstracts host time for heartbeat and deadline bookkeeping.
// Production code injects runner.WallClock; tests inject a manually
// advanced fake so lease expiry is deterministic. No code in this
// package reads the host clock any other way (the simlint wallclock
// analyzer covers the package).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time after d elapses.
	After(d time.Duration) <-chan time.Time
}
