package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced Clock: deadlines fire exactly when
// a test calls Advance, so lease expiry and reconnect pacing are fully
// deterministic (and the package never reads the host clock — the
// simlint wallclock analyzer enforces that, tests included).
type fakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := c.now.Add(d)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward and fires every waiter that came due.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var due []fakeWaiter
	var rest []fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiters = rest
	now := c.now
	c.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}

// echoLocal is a Local executor that tags the config so tests can tell
// local from worker execution apart.
func echoLocal(_ context.Context, label string, cfg []byte) ([]byte, error) {
	return []byte(fmt.Sprintf(`{"ran":"local","label":%q,"cfg":%s}`, label, cfg)), nil
}

// startCoordinator builds a coordinator on a loopback port with test
// heartbeat settings and shuts it down with the test.
func startCoordinator(t *testing.T, clk Clock) *Coordinator {
	t.Helper()
	c, err := NewCoordinator("127.0.0.1:0", CoordinatorOptions{
		Clock:          clk,
		HeartbeatEvery: 100 * time.Millisecond,
		HeartbeatMiss:  time.Second,
		Local:          echoLocal,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestCampaignLocalFallbackWhenNoWorkers pins graceful degradation:
// with no worker attached, Do executes through the Local function in
// the submitting goroutine.
func TestCampaignLocalFallbackWhenNoWorkers(t *testing.T) {
	c := startCoordinator(t, newFakeClock())
	out, err := c.Do(context.Background(), "t1", []byte(`{"n":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"ran":"local"`) {
		t.Fatalf("result %s did not come from the local executor", out)
	}
	if got := c.Status().Local; got != 1 {
		t.Fatalf("Local counter = %d, want 1", got)
	}
}

// TestCampaignRemoteExecution runs a real worker (campaign.Work over
// loopback TCP) and checks a Do round trip executes on it, plus the
// clean drain path: Close ends the worker session with a nil error.
func TestCampaignRemoteExecution(t *testing.T) {
	clk := newFakeClock()
	c := startCoordinator(t, clk)

	workerDone := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		workerDone <- Work(ctx, WorkerOptions{
			Addr:  c.Addr(),
			Name:  "tw",
			Slots: 2,
			Exec: func(_ context.Context, label string, cfg []byte) ([]byte, error) {
				return []byte(fmt.Sprintf(`{"ran":"worker","label":%q,"cfg":%s}`, label, cfg)), nil
			},
			Clock: clk,
			Logf:  t.Logf,
		})
	}()

	// Wait for the worker to attach so Do cannot race into the local
	// fallback.
	waitFor(t, func() bool { return len(c.Status().Workers) == 1 })

	out, err := c.Do(context.Background(), "r1", []byte(`{"n":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"ran":"worker"`) {
		t.Fatalf("result %s did not come from the worker", out)
	}
	st := c.Status()
	if st.Completed != 1 || st.Local != 0 {
		t.Fatalf("status = %+v, want one worker-completed task", st)
	}
	if st.Workers[0].Name != "tw" || st.Workers[0].Slots != 2 {
		t.Fatalf("worker status = %+v", st.Workers[0])
	}

	c.Close()
	if err := <-workerDone; err != nil {
		t.Fatalf("drained worker returned %v, want nil", err)
	}
}

// TestCampaignWorkerErrorPropagates pins the failure path: an Exec
// error comes back to Do as an error naming the worker.
func TestCampaignWorkerErrorPropagates(t *testing.T) {
	clk := newFakeClock()
	c := startCoordinator(t, clk)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go Work(ctx, WorkerOptions{
		Addr: c.Addr(), Name: "bad", Slots: 1, Clock: clk,
		Exec: func(context.Context, string, []byte) ([]byte, error) {
			return nil, fmt.Errorf("sram exploded")
		},
	})
	waitFor(t, func() bool { return len(c.Status().Workers) == 1 })
	_, err := c.Do(context.Background(), "e1", []byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "sram exploded") || !strings.Contains(err.Error(), `"bad"`) {
		t.Fatalf("err = %v, want worker-attributed failure", err)
	}
	if got := c.Status().Failed; got != 1 {
		t.Fatalf("Failed counter = %d, want 1", got)
	}
}

// fakeWorker attaches a hand-driven protocol session, for tests that
// need precise control over worker misbehavior.
type fakeWorker struct {
	t  *testing.T
	cn *conn
}

func attachFakeWorker(t *testing.T, c *Coordinator, name string, slots int) *fakeWorker {
	t.Helper()
	nc, err := net.Dial("tcp", c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	w := &fakeWorker{t: t, cn: newConn(nc)}
	if err := w.cn.send(msgHello, helloMsg{Proto: ProtocolVersion, Name: name, Slots: slots}); err != nil {
		t.Fatal(err)
	}
	typ, _, err := w.cn.recv()
	if err != nil || typ != msgWelcome {
		t.Fatalf("welcome: type %d, err %v", typ, err)
	}
	t.Cleanup(func() { w.cn.close() })
	return w
}

// recvTask reads frames until a task arrives.
func (w *fakeWorker) recvTask() taskMsg {
	w.t.Helper()
	for {
		typ, body, err := w.cn.recv()
		if err != nil {
			w.t.Fatalf("recv: %v", err)
		}
		if typ != msgTask {
			continue
		}
		task, err := decode[taskMsg](body)
		if err != nil {
			w.t.Fatal(err)
		}
		return task
	}
}

// waitFor polls cond (driven by the coordinator's own goroutines).
// The pacing uses time.After — deadline *decisions* go through the
// Clock seam, but real cross-goroutine settling needs real waiting.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		<-time.After(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestFaultCampaignWorkerLossRedispatch pins the lease-revocation
// contract: a worker that dies (connection closed) mid-lease loses the
// task, which is re-dispatched — here to the local fallback, since no
// other worker is attached — and completes exactly once.
func TestFaultCampaignWorkerLossRedispatch(t *testing.T) {
	c := startCoordinator(t, newFakeClock())
	w := attachFakeWorker(t, c, "doomed", 1)

	done := make(chan struct{})
	var out []byte
	var doErr error
	go func() {
		out, doErr = c.Do(context.Background(), "redis", []byte(`{"n":3}`))
		close(done)
	}()
	task := w.recvTask()
	if task.Label != "redis" {
		t.Fatalf("leased label %q", task.Label)
	}
	// The worker dies holding the lease.
	w.cn.close()
	<-done
	if doErr != nil {
		t.Fatal(doErr)
	}
	if !strings.Contains(string(out), `"ran":"local"`) {
		t.Fatalf("re-dispatched result %s did not come from the fallback", out)
	}
	st := c.Status()
	if st.Redispatched != 1 || st.WorkersLost != 1 {
		t.Fatalf("status = %+v, want 1 redispatch and 1 lost worker", st)
	}
}

// TestFaultCampaignHeartbeatExpiryRevokes pins deadline-based loss
// detection: a wedged worker — socket open, heartbeats stopped — is
// declared lost once the injected clock passes the miss deadline, and
// its lease is re-dispatched.
func TestFaultCampaignHeartbeatExpiryRevokes(t *testing.T) {
	clk := newFakeClock()
	c := startCoordinator(t, clk)
	w := attachFakeWorker(t, c, "wedged", 1)

	done := make(chan struct{})
	var out []byte
	var doErr error
	go func() {
		out, doErr = c.Do(context.Background(), "wedge", []byte(`{"n":4}`))
		close(done)
	}()
	w.recvTask() // hold the lease, never heartbeat, never answer
	clk.Advance(2 * time.Second)
	<-done
	if doErr != nil {
		t.Fatal(doErr)
	}
	if !strings.Contains(string(out), `"ran":"local"`) {
		t.Fatalf("result %s did not come from re-dispatch", out)
	}
	st := c.Status()
	if st.WorkersLost != 1 || st.Redispatched != 1 {
		t.Fatalf("status = %+v, want wedged worker reaped", st)
	}
}

// TestFaultCampaignDuplicateResultDropped pins exactly-once delivery:
// a result for a revoked lease (and a result for a lease the sender
// never held) is counted and discarded, never delivered.
func TestFaultCampaignDuplicateResultDropped(t *testing.T) {
	clk := newFakeClock()
	c := startCoordinator(t, clk)
	w := attachFakeWorker(t, c, "late", 1)

	done := make(chan struct{})
	var out []byte
	go func() {
		out, _ = c.Do(context.Background(), "dup", []byte(`{"n":5}`))
		close(done)
	}()
	task := w.recvTask()
	// The worker wedges; the deadline revokes its lease and the run
	// completes locally.
	clk.Advance(2 * time.Second)
	<-done
	if !strings.Contains(string(out), `"ran":"local"`) {
		t.Fatalf("result %s did not come from re-dispatch", out)
	}
	// The wedged worker finally answers its revoked lease: the stale
	// result must be dropped (its connection is already closed, so the
	// send itself may fail — either way the counters are the proof).
	w.cn.send(msgResult, resultMsg{Lease: task.Lease, Label: task.Label, Result: []byte(`{"ran":"stale"}`)})

	w2 := attachFakeWorker(t, c, "timely", 1)
	done2 := make(chan struct{})
	go func() {
		c.Do(context.Background(), "dup2", []byte(`{"n":6}`))
		close(done2)
	}()
	task2 := w2.recvTask()
	// A bogus-lease result is a duplicate; the real one still lands.
	w2.cn.send(msgResult, resultMsg{Lease: 9999, Result: []byte(`{}`)})
	w2.cn.send(msgResult, resultMsg{Lease: task2.Lease, Result: []byte(`{"ok":true}`)})
	<-done2
	if got := c.Status().Duplicates; got < 1 {
		t.Fatalf("Duplicates = %d, want >= 1", got)
	}
}

// TestCampaignRejectsBadHello pins attach-time validation: wrong
// protocol generation and zero slots are both turned away.
func TestCampaignRejectsBadHello(t *testing.T) {
	c := startCoordinator(t, newFakeClock())
	for _, hello := range []helloMsg{
		{Proto: ProtocolVersion + 1, Name: "future", Slots: 1},
		{Proto: ProtocolVersion, Name: "zero", Slots: 0},
	} {
		nc, err := net.Dial("tcp", c.Addr())
		if err != nil {
			t.Fatal(err)
		}
		cn := newConn(nc)
		if err := cn.send(msgHello, hello); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cn.recv(); err == nil {
			t.Fatalf("hello %+v was accepted", hello)
		}
		cn.close()
	}
	if got := len(c.Status().Workers); got != 0 {
		t.Fatalf("%d workers attached, want 0", got)
	}
}

// TestCampaignStatusEndpoint drives the HTTP surface: /progress
// reports counters and per-worker health, /metrics serves the
// campaign registry, /healthz flips to 503 after shutdown.
func TestCampaignStatusEndpoint(t *testing.T) {
	clk := newFakeClock()
	c := startCoordinator(t, clk)
	w := attachFakeWorker(t, c, "web", 3)
	waitFor(t, func() bool { return len(c.Status().Workers) == 1 })
	done := make(chan struct{})
	go func() {
		c.Do(context.Background(), "h1", []byte(`{}`))
		close(done)
	}()
	task := w.recvTask()
	w.cn.send(msgResult, resultMsg{Lease: task.Lease, Label: task.Label, Result: []byte(`{}`)})
	<-done

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	code, body := get("/progress")
	if code != 200 {
		t.Fatalf("/progress: %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if st.Submitted != 1 || len(st.Workers) != 1 || st.Workers[0].Name != "web" {
		t.Fatalf("/progress = %+v", st)
	}

	code, body = get("/metrics")
	if code != 200 || !strings.Contains(body, "campaign.tasks_submitted") {
		t.Fatalf("/metrics: %d %q", code, body)
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz live: %d", code)
	}
	c.Close()
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("/healthz after shutdown: %d", code)
	}
}

// TestCampaignDoAfterCloseFails pins shutdown semantics: Do on a
// closed coordinator fails fast instead of hanging.
func TestCampaignDoAfterCloseFails(t *testing.T) {
	c := startCoordinator(t, newFakeClock())
	c.Close()
	if _, err := c.Do(context.Background(), "x", nil); err == nil {
		t.Fatal("Do after Close succeeded")
	}
}
