// The wire protocol: length-prefixed frames on TCP.
//
// A frame is a 4-byte big-endian payload length followed by the
// payload: one message-type byte and a JSON body. The codec is
// deliberately hostile-input-proof — an oversized length, an empty
// frame, a truncated stream, or garbage bytes produce an error, never
// a panic or an unbounded allocation (the protocol fuzz test pins
// this). A *partial* frame on a live socket simply waits, which is the
// heartbeat deadline's job to bound.

package campaign

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame bounds one frame's payload (type byte + JSON body). Run
// results with full metric snapshots are well under a megabyte; the
// limit exists so a corrupt or malicious length prefix cannot demand
// an arbitrary allocation.
const maxFrame = 64 << 20

// msgType tags a frame's payload.
type msgType byte

// Protocol messages. Direction is fixed per type.
const (
	// msgHello (worker → coordinator) opens a session: protocol
	// version, worker name, and slot count.
	msgHello msgType = iota + 1
	// msgWelcome (coordinator → worker) accepts a hello and dictates
	// the heartbeat interval and miss deadline.
	msgWelcome
	// msgTask (coordinator → worker) leases one run to the worker.
	msgTask
	// msgResult (worker → coordinator) completes a lease: the run's
	// serialized result, or its error.
	msgResult
	// msgHeartbeat (worker → coordinator) proves liveness.
	msgHeartbeat
	// msgDrain (coordinator → worker) asks the worker to finish its
	// in-flight runs, return their results, and exit cleanly.
	msgDrain
	// msgAbort (coordinator → worker) asks the worker to cancel its
	// in-flight runs and exit immediately.
	msgAbort
	// msgBye (either direction) announces a clean session end.
	msgBye
)

// helloMsg opens a worker session.
type helloMsg struct {
	// Proto is the worker's ProtocolVersion.
	Proto int `json:"proto"`
	// Name identifies the worker in logs and the status endpoint.
	Name string `json:"name"`
	// Slots is how many runs the worker executes concurrently; the
	// coordinator never leases it more than this many at once.
	Slots int `json:"slots"`
}

// welcomeMsg accepts a hello.
type welcomeMsg struct {
	// Proto is the coordinator's ProtocolVersion.
	Proto int `json:"proto"`
	// HeartbeatEvery is the interval the worker must beat at.
	HeartbeatEvery time.Duration `json:"heartbeat_every"`
	// HeartbeatMiss is the silence deadline after which the
	// coordinator declares the worker lost.
	HeartbeatMiss time.Duration `json:"heartbeat_miss"`
}

// taskMsg leases one run to a worker.
type taskMsg struct {
	// Lease identifies this dispatch; the worker echoes it in the
	// result. A re-dispatched task gets a fresh lease, so results from
	// revoked leases are recognized and dropped.
	Lease uint64 `json:"lease"`
	// Label is the run's campaign label (for logs and errors).
	Label string `json:"label"`
	// Config is the serialized run configuration.
	Config json.RawMessage `json:"config"`
}

// resultMsg completes a lease.
type resultMsg struct {
	// Lease echoes the taskMsg lease being completed.
	Lease uint64 `json:"lease"`
	// Label echoes the run label.
	Label string `json:"label"`
	// Result is the serialized run result (nil when Err is set).
	Result json.RawMessage `json:"result,omitempty"`
	// Err is the run's failure, empty on success.
	Err string `json:"err,omitempty"`
}

// heartbeatMsg proves worker liveness.
type heartbeatMsg struct {
	// InFlight is the worker's current in-flight run count.
	InFlight int `json:"in_flight"`
}

// writeFrame marshals v and writes one frame: 4-byte length, type
// byte, JSON body — as a single Write so concurrent senders (guarded
// by the conn mutex) never interleave partial frames.
func writeFrame(w io.Writer, t msgType, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("campaign: encode %d: %w", t, err)
	}
	n := 1 + len(body)
	if n > maxFrame {
		return fmt.Errorf("campaign: frame of %d bytes exceeds the %d limit", n, maxFrame)
	}
	buf := make([]byte, 4+n)
	binary.BigEndian.PutUint32(buf, uint32(n))
	buf[4] = byte(t)
	copy(buf[5:], body)
	_, err = w.Write(buf)
	return err
}

// readFrame reads one frame and returns its type and body. Any
// malformed input — zero or oversized length, truncation — is an
// error; readFrame never panics and never allocates more than
// maxFrame.
func readFrame(r io.Reader) (msgType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("campaign: empty frame")
	}
	if n > maxFrame {
		return 0, nil, fmt.Errorf("campaign: frame length %d exceeds the %d limit", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("campaign: truncated frame: %w", err)
	}
	t := msgType(payload[0])
	if t < msgHello || t > msgBye {
		return 0, nil, fmt.Errorf("campaign: unknown message type %d", t)
	}
	return t, payload[1:], nil
}

// decode unmarshals a frame body into T.
func decode[T any](body []byte) (T, error) {
	var v T
	if err := json.Unmarshal(body, &v); err != nil {
		return v, fmt.Errorf("campaign: bad message body: %w", err)
	}
	return v, nil
}

// conn wraps one protocol session: buffered reads plus a write mutex
// so the heartbeat loop and result senders never interleave frames.
type conn struct {
	nc  net.Conn
	r   *bufio.Reader
	wmu sync.Mutex
}

// newConn wraps a net.Conn for framed use.
func newConn(nc net.Conn) *conn {
	return &conn{nc: nc, r: bufio.NewReaderSize(nc, 64<<10)}
}

// send writes one frame under the write mutex.
func (c *conn) send(t msgType, v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	//simlint:locksafe "wmu exists to serialize whole-frame socket writes: the blocking write IS the critical section, and close() unblocks stuck senders"
	return writeFrame(c.nc, t, v)
}

// recv reads the next frame.
func (c *conn) recv() (msgType, []byte, error) { return readFrame(c.r) }

// close tears the session down; concurrent senders fail fast.
func (c *conn) close() error { return c.nc.Close() }
