// The worker: dials the coordinator, heartbeats, executes leased runs,
// and reconnects with deterministic jittered backoff when the
// coordinator goes away.

package campaign

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ropsim/internal/runner"
)

// ExecFunc executes one leased run on a worker. cfg is the serialized
// run configuration from the coordinator; the returned bytes are the
// serialized result streamed back. Exec is called from at most Slots
// goroutines at once and must honor ctx cancellation (the abort path).
type ExecFunc func(ctx context.Context, label string, cfg []byte) ([]byte, error)

// WorkerOptions configures Work.
type WorkerOptions struct {
	// Addr is the coordinator's host:port. Required.
	Addr string
	// Name identifies this worker in coordinator logs and the status
	// endpoint; it also salts the reconnect jitter.
	Name string
	// Slots is the worker's concurrent-run capacity (minimum 1).
	Slots int
	// Exec executes one leased run. Required.
	Exec ExecFunc
	// Clock is the injected host clock (runner.WallClock in
	// production). Required.
	Clock Clock
	// Reconnect is the dial-retry schedule; the zero value uses the
	// package reconnect defaults. The schedule resets after any
	// session that attached successfully, so only consecutive dial
	// failures consume the window.
	Reconnect runner.Backoff
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// errDrained signals a session that ended because the coordinator
// asked the worker to drain — a clean campaign end, not a failure.
var errDrained = errors.New("campaign: drained")

// errSessionLost signals a session that ended mid-campaign (read
// error, coordinator crash); the worker should redial.
var errSessionLost = errors.New("campaign: session lost")

// Work attaches to the coordinator at opts.Addr and executes leased
// runs until the campaign drains, ctx is cancelled, or the reconnect
// window is exhausted. It returns nil on a clean drain, ctx.Err() on
// cancellation, and a descriptive error when the coordinator stays
// unreachable.
func Work(ctx context.Context, opts WorkerOptions) error {
	if opts.Addr == "" {
		return errors.New("campaign: worker needs a coordinator address")
	}
	if opts.Exec == nil {
		return errors.New("campaign: worker needs an Exec function")
	}
	if opts.Clock == nil {
		return errors.New("campaign: worker needs a Clock")
	}
	if opts.Slots < 1 {
		opts.Slots = 1
	}
	if opts.Reconnect == (runner.Backoff{}) {
		opts.Reconnect = runner.Backoff{
			Base:       DefaultReconnectBase,
			Max:        DefaultReconnectMax,
			MaxElapsed: DefaultReconnectWindow,
			Jitter:     0.5,
			Seed:       1,
		}
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	sched := opts.Reconnect.Schedule(opts.Name)
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		attached, err := workSession(ctx, opts, logf)
		switch {
		case errors.Is(err, errDrained):
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		}
		lastErr = err
		if attached {
			// The campaign was live; start a fresh reconnect window.
			sched = opts.Reconnect.Schedule(opts.Name)
		}
		d, ok := sched.Next()
		if !ok {
			return fmt.Errorf("campaign: coordinator %s unreachable for %v: %w",
				opts.Addr, sched.Elapsed(), lastErr)
		}
		logf("campaign: reconnecting to %s in %v (%v)", opts.Addr, d.Round(time.Millisecond), err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-opts.Clock.After(d):
		}
	}
}

// workSession runs one coordinator session: dial, hello/welcome,
// heartbeat loop, task loop. attached reports whether the handshake
// completed (used to reset the reconnect window).
func workSession(ctx context.Context, opts WorkerOptions, logf func(string, ...any)) (attached bool, err error) {
	var dialer net.Dialer
	nc, err := dialer.DialContext(ctx, "tcp", opts.Addr)
	if err != nil {
		return false, err
	}
	cn := newConn(nc)

	// One watcher closes the socket on ctx cancellation so every
	// blocking read and write in the session unblocks.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var watch sync.WaitGroup
	watch.Add(1)
	go func() {
		defer watch.Done()
		<-sctx.Done()
		cn.close()
	}()
	defer watch.Wait()
	defer cancel()

	if err := cn.send(msgHello, helloMsg{Proto: ProtocolVersion, Name: opts.Name, Slots: opts.Slots}); err != nil {
		return false, fmt.Errorf("hello: %w", err)
	}
	// Bound the welcome wait via the clock seam: a coordinator that
	// accepts but never answers is abandoned.
	welcomeDone := make(chan struct{})
	watch.Add(1)
	go func() {
		defer watch.Done()
		select {
		case <-welcomeDone:
		case <-opts.Clock.After(DefaultHeartbeatMiss):
			cn.close()
		case <-sctx.Done():
		}
	}()
	t, body, err := cn.recv()
	close(welcomeDone)
	if err != nil {
		return false, fmt.Errorf("welcome: %w", err)
	}
	if t != msgWelcome {
		return false, fmt.Errorf("campaign: expected welcome, got message type %d", t)
	}
	welcome, err := decode[welcomeMsg](body)
	if err != nil {
		return false, err
	}
	if welcome.Proto != ProtocolVersion {
		return true, fmt.Errorf("campaign: coordinator speaks protocol %d, this worker speaks %d",
			welcome.Proto, ProtocolVersion)
	}
	beatEvery := welcome.HeartbeatEvery
	if beatEvery <= 0 {
		beatEvery = DefaultHeartbeatEvery
	}
	logf("campaign: attached to %s (heartbeat every %v, %d slots)", opts.Addr, beatEvery, opts.Slots)

	// In-flight accounting: the heartbeat reports it, and drain waits
	// for it.
	var mu sync.Mutex
	inFlight := 0
	idle := sync.NewCond(&mu)
	var exec sync.WaitGroup

	// Heartbeat loop: beats on the coordinator's interval until the
	// session ends. A send failure cancels the session.
	watch.Add(1)
	go func() {
		defer watch.Done()
		for {
			select {
			case <-sctx.Done():
				return
			case <-opts.Clock.After(beatEvery):
			}
			mu.Lock()
			n := inFlight
			mu.Unlock()
			if err := cn.send(msgHeartbeat, heartbeatMsg{InFlight: n}); err != nil {
				cancel()
				return
			}
		}
	}()

	// Task loop. The cancellation poll at the top is belt-and-braces
	// next to the socket-closing watcher: recv unblocks because the
	// watcher closed cn, and the poll guarantees the loop observes the
	// cancellation even on a message that arrived in the same instant.
	for {
		if sctx.Err() != nil {
			exec.Wait()
			return true, fmt.Errorf("%w: %v", errSessionLost, sctx.Err())
		}
		t, body, err := cn.recv()
		if err != nil {
			cancel()
			exec.Wait()
			return true, fmt.Errorf("%w: %v", errSessionLost, err)
		}
		switch t {
		case msgTask:
			task, err := decode[taskMsg](body)
			if err != nil {
				cancel()
				exec.Wait()
				return true, err
			}
			mu.Lock()
			inFlight++
			mu.Unlock()
			exec.Add(1)
			go func() {
				defer exec.Done()
				res := runTask(sctx, opts.Exec, task)
				mu.Lock()
				inFlight--
				if inFlight == 0 {
					idle.Broadcast()
				}
				mu.Unlock()
				if err := cn.send(msgResult, res); err != nil {
					cancel()
				}
			}()
		case msgDrain:
			// Finish in-flight runs (their results already stream back as
			// they complete), say goodbye, and end the campaign cleanly.
			mu.Lock()
			//simlint:ctxpoll "drain must wait out in-flight runs; each run is bound to sctx, whose cancellation empties inFlight and broadcasts idle, so this Cond loop cannot outlive the context"
			for inFlight > 0 {
				idle.Wait()
			}
			mu.Unlock()
			cn.send(msgBye, struct{}{})
			cancel()
			exec.Wait()
			return true, errDrained
		case msgAbort:
			cancel()
			exec.Wait()
			return true, errDrained
		case msgBye:
			cancel()
			exec.Wait()
			return true, errDrained
		default:
			cancel()
			exec.Wait()
			return true, fmt.Errorf("campaign: unexpected message type %d", t)
		}
	}
}

// runTask executes one leased run, converting a panic in the executor
// into a lease failure instead of a worker crash.
func runTask(ctx context.Context, exec ExecFunc, task taskMsg) (res resultMsg) {
	res = resultMsg{Lease: task.Lease, Label: task.Label}
	defer func() {
		if r := recover(); r != nil {
			res.Result = nil
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	out, err := exec(ctx, task.Label, task.Config)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Result = out
	return res
}
