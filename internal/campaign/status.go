// Live campaign visibility: a Status snapshot plus an http.Handler
// serving progress, per-worker health, and the campaign metric
// registry.

package campaign

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"ropsim/internal/stats"
)

// WorkerStatus is one attached worker's health in a Status snapshot.
type WorkerStatus struct {
	// ID is the coordinator-assigned worker id (attach order).
	ID uint64 `json:"id"`
	// Name is the worker's self-reported name.
	Name string `json:"name"`
	// Addr is the worker's remote address.
	Addr string `json:"addr"`
	// Slots is the worker's concurrent-run capacity.
	Slots int `json:"slots"`
	// InFlight is how many leases the worker currently holds.
	InFlight int `json:"in_flight"`
	// Completed counts leases this worker finished.
	Completed int64 `json:"completed"`
	// LastBeat is how long ago the worker was last heard from.
	LastBeat time.Duration `json:"last_beat"`
}

// Status is a point-in-time view of a running campaign.
type Status struct {
	// Addr is the coordinator's listen address.
	Addr string `json:"addr"`
	// Submitted counts tasks handed to Do so far.
	Submitted int64 `json:"submitted"`
	// Completed counts tasks finished successfully by workers.
	Completed int64 `json:"completed"`
	// Failed counts tasks whose worker run returned an error.
	Failed int64 `json:"failed"`
	// Local counts tasks executed in-process (no workers attached).
	Local int64 `json:"local"`
	// Redispatched counts leases requeued after worker loss.
	Redispatched int64 `json:"redispatched"`
	// Duplicates counts dropped results from revoked leases.
	Duplicates int64 `json:"duplicates"`
	// WorkersLost counts workers dropped for errors or missed
	// heartbeats.
	WorkersLost int64 `json:"workers_lost"`
	// Pending is the current unleased queue depth.
	Pending int `json:"pending"`
	// Leased is the current in-flight lease count.
	Leased int `json:"leased"`
	// Workers lists attached workers in attach order.
	Workers []WorkerStatus `json:"workers"`
}

// Status captures the coordinator's current progress and per-worker
// health. Safe for concurrent use.
func (c *Coordinator) Status() Status {
	now := c.opts.Clock.Now()
	c.mu.Lock()
	s := Status{
		Addr:    c.Addr(),
		Pending: len(c.pending),
		Leased:  len(c.leases),
	}
	for _, w := range c.workers {
		s.Workers = append(s.Workers, WorkerStatus{
			ID:        w.id,
			Name:      w.name,
			Addr:      w.addr,
			Slots:     w.slots,
			InFlight:  len(w.inflight),
			Completed: w.completed,
			LastBeat:  now.Sub(w.lastBeat),
		})
	}
	c.mu.Unlock()
	s.Submitted = c.cSubmitted.Value()
	s.Completed = c.cCompleted.Value()
	s.Failed = c.cFailed.Value()
	s.Local = c.cLocal.Value()
	s.Redispatched = c.cRedispatch.Value()
	s.Duplicates = c.cDuplicate.Value()
	s.WorkersLost = c.cLost.Value()
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].ID < s.Workers[j].ID })
	return s
}

// Metrics snapshots the campaign counter registry (the "campaign.*"
// namespace). Counters are atomic, so a concurrent snapshot is safe.
func (c *Coordinator) Metrics() stats.Snapshot { return c.reg.Snapshot() }

// Handler serves live campaign state over HTTP:
//
//	/progress — Status as JSON (progress counters + per-worker health)
//	/metrics  — the campaign stats registry as a stats.Snapshot
//	/healthz  — 200 while the coordinator runs, 503 after shutdown
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, c.Status())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, c.Metrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		select {
		case <-c.done:
			http.Error(w, "campaign shut down", http.StatusServiceUnavailable)
		default:
			w.Write([]byte("ok\n"))
		}
	})
	return mux
}
