package event

import "testing"

// Microbenchmarks for the calendar-queue hot paths. Steady-state
// schedule+dispatch must be allocation-free (the pool recycles event
// objects); run with -benchmem to verify allocs/op stays at 0.
// cmd/benchgate snapshots these numbers into BENCH_<date>.json.

// BenchmarkScheduleStepNear measures the common case: self-renewing
// events within the calendar window (DRAM command and core-step
// cadence).
func BenchmarkScheduleStepNear(b *testing.B) {
	var q Queue
	var fn func(now Cycle)
	fn = func(now Cycle) { q.Schedule(now+37, fn) }
	for i := 0; i < 64; i++ {
		q.Schedule(Cycle(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step()
	}
}

// BenchmarkScheduleStepFar measures the overflow-heap path: events
// beyond the calendar window (tREFI-scale cadence).
func BenchmarkScheduleStepFar(b *testing.B) {
	var q Queue
	var fn func(now Cycle)
	fn = func(now Cycle) { q.Schedule(now+6240, fn) }
	for i := 0; i < 16; i++ {
		q.Schedule(Cycle(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step()
	}
}

// BenchmarkScheduleCancel measures schedule-then-cancel churn (wake
// superseding, speculative timeouts).
func BenchmarkScheduleCancel(b *testing.B) {
	var q Queue
	nop := func(Cycle) {}
	var fn func(now Cycle)
	fn = func(now Cycle) { q.Schedule(now+1, fn) }
	q.Schedule(0, fn) // advances time so cancelled slots are reclaimed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Cancel(q.Schedule(q.Now()+100, nop))
		q.Step()
	}
}

// BenchmarkChainedSleep measures a chained wake re-arming itself each
// dispatch — the controller's sleep cadence through idle stretches.
func BenchmarkChainedSleep(b *testing.B) {
	var q Queue
	var fn func(now Cycle)
	fn = func(now Cycle) { q.ScheduleChained(now+97, fn) }
	q.ScheduleChained(97, fn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step()
	}
}

// BenchmarkStepWithIdleChain measures regular dispatch while one
// chained wake sleeps far in the future — the bookkeeping tax the
// chain support adds to every Step of a busy queue.
func BenchmarkStepWithIdleChain(b *testing.B) {
	var q Queue
	var fn func(now Cycle)
	fn = func(now Cycle) { q.Schedule(now+37, fn) }
	for i := 0; i < 64; i++ {
		q.Schedule(Cycle(i), fn)
	}
	q.ScheduleChained(1<<40, func(Cycle) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step()
	}
}
