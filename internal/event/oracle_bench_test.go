package event

import "testing"

// BenchmarkHeapOracleScheduleStep measures the pre-calendar-queue
// implementation (the binary heap kept as the test oracle) on the same
// workload as BenchmarkScheduleStepNear, so the docs/PERFORMANCE.md
// before/after table stays reproducible from this tree.
func BenchmarkHeapOracleScheduleStep(b *testing.B) {
	var h heapOracle
	for i := 0; i < 64; i++ {
		h.schedule(Cycle(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := h.step()
		h.schedule(h.now+37, id)
	}
}
