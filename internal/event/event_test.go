package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestClockConversionRoundTrip(t *testing.T) {
	for _, c := range []Cycle{0, 1, 5, 100, 6240} {
		if got := ToBus(ToCPU(c)); got != c {
			t.Errorf("ToBus(ToCPU(%d)) = %d", c, got)
		}
	}
}

func TestToBusRoundsUp(t *testing.T) {
	cases := []struct {
		cpu  CPUCycle
		want Cycle
	}{
		{0, 0}, {1, 1}, {3, 1}, {4, 1}, {5, 2}, {8, 2}, {9, 3},
	}
	for _, c := range cases {
		if got := ToBus(c.cpu); got != c.want {
			t.Errorf("ToBus(%d) = %d, want %d", c.cpu, got, c.want)
		}
	}
}

func TestToBusNeverEarly(t *testing.T) {
	// Property: the bus edge ToBus returns is never before the CPU event.
	f := func(raw int32) bool {
		c := CPUCycle(raw)
		if c < 0 {
			c = -c
		}
		bus := ToBus(c)
		return ToCPU(bus) >= c && ToCPU(bus) < c+CPUPerBus
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeconds(t *testing.T) {
	// tREFI = 6240 cycles at 1.25 ns should be 7.8 µs.
	got := Seconds(6240)
	want := 7.8e-6
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("Seconds(6240) = %g, want %g", got, want)
	}
}

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue
	var fired []Cycle
	times := []Cycle{5, 3, 9, 1, 7}
	for _, at := range times {
		at := at
		q.Schedule(at, func(now Cycle) { fired = append(fired, now) })
	}
	q.Run(100)
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Errorf("events fired out of order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Errorf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestQueueFIFOWithinCycle(t *testing.T) {
	var q Queue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(42, func(Cycle) { order = append(order, i) })
	}
	q.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events reordered: %v", order)
		}
	}
}

func TestQueueNowAdvances(t *testing.T) {
	var q Queue
	q.Schedule(10, func(now Cycle) {
		if now != 10 {
			t.Errorf("callback now = %d, want 10", now)
		}
	})
	q.Step()
	if q.Now() != 10 {
		t.Errorf("Now() = %d, want 10", q.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var q Queue
	q.Schedule(10, func(Cycle) {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Error("scheduling into the past did not panic")
		}
	}()
	q.Schedule(5, func(Cycle) {})
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	var q Queue
	count := 0
	for _, at := range []Cycle{1, 2, 3, 10, 20} {
		q.Schedule(at, func(Cycle) { count++ })
	}
	n := q.RunUntil(5)
	if n != 3 || count != 3 {
		t.Errorf("RunUntil(5) dispatched %d (count %d), want 3", n, count)
	}
	if q.Len() != 2 {
		t.Errorf("queue has %d pending, want 2", q.Len())
	}
}

func TestQueueSelfScheduling(t *testing.T) {
	var q Queue
	hops := 0
	var hop func(now Cycle)
	hop = func(now Cycle) {
		hops++
		if hops < 5 {
			q.Schedule(now+3, hop)
		}
	}
	q.Schedule(0, hop)
	q.Run(100)
	if hops != 5 {
		t.Errorf("hops = %d, want 5", hops)
	}
	if q.Now() != 12 {
		t.Errorf("final Now = %d, want 12", q.Now())
	}
}

func TestQueueRandomizedOrdering(t *testing.T) {
	// Property: for any random schedule, dispatch order is sorted by
	// (time, insertion order).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var q Queue
		type key struct {
			at  Cycle
			seq int
		}
		var want []key
		var got []key
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			at := Cycle(rng.Intn(50))
			k := key{at, i}
			want = append(want, k)
			q.Schedule(at, func(Cycle) { got = append(got, k) })
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		q.Run(n + 1)
		if len(got) != len(want) {
			t.Fatalf("trial %d: dispatched %d, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: position %d = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestPeekTime(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Error("PeekTime on empty queue reported ok")
	}
	q.Schedule(17, func(Cycle) {})
	at, ok := q.PeekTime()
	if !ok || at != 17 {
		t.Errorf("PeekTime = %d,%v, want 17,true", at, ok)
	}
}
