// Package event provides the discrete-event machinery shared by the
// simulator: a deterministic event queue and the two clock domains the
// system runs in (CPU core clock and DRAM bus clock).
package event

// The simulated system has two clock domains. The DRAM bus clock is the
// memory-controller clock: one Cycle per DDR4 tCK (1.25 ns at
// DDR4-1600). The CPU clock runs an integer multiple faster; the paper's
// configuration (Table III) pairs an out-of-order core with DDR4-1600,
// which we model as a 3.2 GHz core, i.e. a 4:1 ratio.

// Cycle is a point in time measured in DRAM bus clock cycles.
type Cycle int64

// CPUCycle is a point in time measured in CPU core clock cycles.
type CPUCycle int64

// CPUPerBus is the number of CPU cycles per DRAM bus cycle.
const CPUPerBus = 4

// ToBus converts a CPU-clock time to the bus-clock time that contains it
// (rounding up: an event at CPU cycle c is visible to the controller at
// the first bus edge at or after c).
func ToBus(c CPUCycle) Cycle {
	if c <= 0 {
		return 0
	}
	return Cycle((int64(c) + CPUPerBus - 1) / CPUPerBus)
}

// ToCPU converts a bus-clock time to the CPU-clock time of the same edge.
func ToCPU(c Cycle) CPUCycle {
	return CPUCycle(int64(c) * CPUPerBus)
}

// PicosPerBusCycle is the DDR4-1600 bus clock period (tCK) in picoseconds.
const PicosPerBusCycle = 1250

// Seconds converts a bus-cycle count to seconds of simulated time.
func Seconds(c Cycle) float64 {
	return float64(c) * float64(PicosPerBusCycle) * 1e-12
}
