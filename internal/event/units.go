package event

// Unit-conversion helpers: the single sanctioned bridge between
// wall-denominated timing values (nanoseconds, from datasheets and the
// paper's Table III) or fractional cycle quantities (floats) and the
// simulator's integral Cycle domain. The unitsafe analyzer
// (internal/lint, docs/LINT.md) flags event.Cycle conversions of
// non-constant values anywhere else in the simulated domain, so every
// ns↔cycle crossing and every float truncation is auditable here.

// FromNanos converts a duration in nanoseconds to whole bus cycles,
// rounding up: a constraint of 13.75 ns is not satisfied until the 11th
// 1.25 ns bus edge. The arithmetic runs in integer picoseconds, so
// datasheet values with at most 3 decimal places convert exactly.
func FromNanos(ns float64) Cycle {
	ps := int64(ns * 1000)
	return Cycle((ps + PicosPerBusCycle - 1) / PicosPerBusCycle)
}

// Nanos reports the duration of c in nanoseconds.
func Nanos(c Cycle) float64 {
	return float64(c) * float64(PicosPerBusCycle) * 1e-3
}

// FromFloat converts a cycle-denominated float — typically a fraction
// of a cycle quantity, such as 0.03*tREFI for a drain deadline — to a
// Cycle, truncating toward zero (Go conversion semantics). Centralizing
// the truncation keeps its rounding bias out of ad-hoc call sites.
func FromFloat(cycles float64) Cycle {
	return Cycle(cycles)
}
