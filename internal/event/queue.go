package event

import "container/heap"

// Event is a callback scheduled to run at a bus-clock time. Events
// scheduled for the same cycle fire in insertion order, which keeps the
// simulation deterministic regardless of heap internals.
type Event struct {
	At Cycle          // firing time in bus cycles
	Fn func(now Cycle) // callback, invoked with the firing time

	seq int64
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*Event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Queue is a deterministic discrete-event queue. The zero value is ready
// to use.
type Queue struct {
	h   eventHeap
	seq int64
	now Cycle
}

// Now reports the time of the most recently dispatched event.
func (q *Queue) Now() Cycle { return q.now }

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Schedule enqueues fn to run at cycle at. Scheduling in the past (before
// the currently dispatching event) panics: it would silently reorder
// time and corrupt the simulation.
func (q *Queue) Schedule(at Cycle, fn func(now Cycle)) {
	if at < q.now {
		panic("event: scheduling into the past")
	}
	q.seq++
	heap.Push(&q.h, &Event{At: at, Fn: fn, seq: q.seq})
}

// PeekTime returns the time of the next pending event. ok is false when
// the queue is empty.
func (q *Queue) PeekTime() (at Cycle, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Step dispatches the single earliest pending event. It reports false
// when the queue is empty.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(*Event)
	q.now = e.At
	e.Fn(e.At)
	return true
}

// RunUntil dispatches events in order until the queue is empty or the
// next event lies strictly beyond limit. It returns the number of events
// dispatched.
func (q *Queue) RunUntil(limit Cycle) int {
	n := 0
	for {
		at, ok := q.PeekTime()
		if !ok || at > limit {
			return n
		}
		q.Step()
		n++
	}
}

// Run dispatches events until the queue is empty or maxEvents have been
// dispatched (a safety net against runaway self-scheduling). It returns
// the number dispatched.
func (q *Queue) Run(maxEvents int) int {
	n := 0
	for n < maxEvents && q.Step() {
		n++
	}
	return n
}
