package event

import (
	"container/heap"
	"math/bits"
)

// The queue is the simulator's per-event hot path: every DRAM command,
// controller wake and core step passes through Schedule and Step. Two
// properties dominate its design:
//
//  1. Dispatch order must be deterministic: events fire in (time,
//     insertion-order) order, independent of internal layout, so
//     simulations are bit-reproducible (the serial-vs-parallel
//     equivalence tests depend on this).
//  2. Steady-state dispatch must be allocation-free and avoid O(log n)
//     pointer-chasing: a run dispatches hundreds of events per
//     simulated microsecond.
//
// The implementation is a hybrid calendar queue: events within
// bucketWindow cycles of the current time land in a ring of per-cycle
// buckets (O(1) insert, O(1) amortized dispatch); events farther out —
// refresh cadences at tREFI, long controller sleeps — go to a binary
// min-heap. Dispatch merges the two sources by (time, seq). Fired and
// cancelled events return to a free list, so steady-state scheduling
// performs no heap allocation. docs/PERFORMANCE.md describes the
// design and its benchmarks.

// bucketWindow is the calendar horizon in cycles: events scheduled
// within this many cycles of now use the O(1) bucket ring, farther ones
// the overflow heap. 1024 covers every DDR4 timing constraint (tRFC =
// 280 cycles at 1x) and the controller's wake distances; only refresh
// cadence events (tREFI = 6240) and idle sleeps overflow. Must be a
// power of two.
const bucketWindow = 1024

const bucketMask = bucketWindow - 1

// event is one scheduled callback. Instances are pooled: after dispatch
// or cancellation the object is recycled, its generation bumped so
// stale Handles cannot touch the reincarnation.
type event struct {
	at  Cycle
	fn  func(now Cycle) // nil marks a cancelled (or recycled) event
	seq int64           // global insertion order, ties broken FIFO
	gen uint64          // incarnation counter for Handle validity
	far bool            // true when parked in the overflow heap
}

// Handle identifies one scheduled event for cancellation. The zero
// Handle is valid and refers to nothing.
type Handle struct {
	ev  *event
	gen uint64
}

// slot is one calendar bucket: the events of a single cycle, in
// insertion (seq) order. head indexes the first undispatched event so
// dispatch never shifts the slice.
type slot struct {
	evs  []*event
	head int
}

// farHeap is the overflow min-heap, ordered by (at, seq). It only sees
// events scheduled more than bucketWindow cycles out, so its O(log n)
// cost is off the steady-state path.
type farHeap []*event

func (h farHeap) Len() int { return len(h) }

func (h farHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h farHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *farHeap) Push(x any) { *h = append(*h, x.(*event)) }

// Pop implements heap.Interface.
func (h *farHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// chained is a chained wake (see Queue.ScheduleChained): an event that
// dispatches at cycle at, but whose order within that cycle is that of
// an event re-scheduled at every cycle between its arm time and at —
// the position a per-cycle polling chain would occupy. Its seq is
// lazily refreshed to the current insertion counter once per
// event-bearing cycle it virtually passes through.
type chained struct {
	at       Cycle
	seq      int64
	id       int64 // ChainHandle identity (survives slice reshuffles)
	lastPass Cycle // latest cycle whose virtual pass already refreshed seq
	fn       func(now Cycle)
}

// ChainHandle identifies one chained wake for retargeting. The zero
// ChainHandle is valid and refers to nothing.
type ChainHandle struct {
	id int64
}

// Queue is a deterministic discrete-event queue. The zero value is
// ready to use. Events scheduled for the same cycle fire in insertion
// order regardless of internal layout.
type Queue struct {
	slots [bucketWindow]slot        // calendar ring, indexed by at & bucketMask
	occ   [bucketWindow / 64]uint64 // occupancy bitmap over slots
	far   farHeap                   // events beyond the calendar horizon
	pool  []*event                  // free list of recycled events
	seq   int64                     // insertion-order counter
	now   Cycle                     // time of the last dispatched event
	live  int                       // scheduled, non-cancelled events
	// nearFrom is a lower bound on the earliest cycle that may hold a
	// live bucketed event; it keeps repeated head scans amortized O(1).
	nearFrom Cycle
	nearLive int       // live events currently in buckets
	chains   []chained // chained wakes, unordered (few at a time)
	chainID  int64     // ChainHandle id counter
}

// Now reports the time of the most recently dispatched event.
func (q *Queue) Now() Cycle { return q.now }

// Len reports the number of pending (non-cancelled) events.
func (q *Queue) Len() int { return q.live }

// get returns a fresh event object, reusing the free list when
// possible.
func (q *Queue) get() *event {
	if n := len(q.pool); n > 0 {
		e := q.pool[n-1]
		q.pool[n-1] = nil
		q.pool = q.pool[:n-1]
		return e
	}
	return &event{}
}

// recycle invalidates e's handles and returns it to the free list.
func (q *Queue) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.far = false
	q.pool = append(q.pool, e)
}

// Schedule enqueues fn to run at cycle at and returns a Handle that can
// cancel it. Scheduling in the past (before the currently dispatching
// event) panics: it would silently reorder time and corrupt the
// simulation. fn must be non-nil.
func (q *Queue) Schedule(at Cycle, fn func(now Cycle)) Handle {
	if at < q.now {
		panic("event: scheduling into the past")
	}
	if fn == nil {
		panic("event: scheduling a nil callback")
	}
	q.seq++
	e := q.get()
	e.at, e.fn, e.seq = at, fn, q.seq
	q.live++
	if at < q.now+bucketWindow {
		idx := int(at) & bucketMask
		q.slots[idx].evs = append(q.slots[idx].evs, e)
		q.occ[idx>>6] |= 1 << uint(idx&63)
		if q.nearLive == 0 || at < q.nearFrom {
			q.nearFrom = at
		}
		q.nearLive++
	} else {
		e.far = true
		heap.Push(&q.far, e)
	}
	return Handle{ev: e, gen: e.gen}
}

// ScheduleChained enqueues fn to run at cycle at, ordered within that
// cycle as though the event had been re-scheduled once per cycle from
// now until at — the queue position a tick-per-cycle polling chain
// would occupy — rather than keeping its arm-time insertion order.
// Callers that replace per-cycle polling with a computed sleep use this
// to keep dispatch order bit-identical to the polling loop they
// replaced (see internal/memctrl's wake discipline): events scheduled
// during the sleep interval run before the wake, exactly as they would
// have run before that cycle's polling tick. Chained wakes cannot be
// cancelled; schedule a fresh one and ignore the stale callback
// instead. Scheduling in the past panics, as with Schedule. The
// returned handle allows RetargetChained to pull the wake forward.
func (q *Queue) ScheduleChained(at Cycle, fn func(now Cycle)) ChainHandle {
	if at < q.now {
		panic("event: scheduling into the past")
	}
	if fn == nil {
		panic("event: scheduling a nil callback")
	}
	q.seq++
	q.chainID++
	q.chains = append(q.chains, chained{at: at, seq: q.seq, id: q.chainID, lastPass: q.now, fn: fn})
	q.live++
	return ChainHandle{id: q.chainID}
}

// RetargetChained moves a pending chained wake to fire at the earlier
// cycle at, keeping its current virtual queue position (its seq is not
// re-assigned). This is how a sleeping polling chain reacts to new
// work arriving mid-sleep: the chain's tick for the current cycle is
// already "queued" at its per-cycle position, so the wake fires now
// rather than at the original target, ordered exactly where that tick
// would have been. It reports whether the handle still referred to a
// pending chained wake. Retargeting into the past or later than the
// current target panics.
func (q *Queue) RetargetChained(h ChainHandle, at Cycle) bool {
	for i := range q.chains {
		if q.chains[i].id != h.id {
			continue
		}
		if at < q.now || at > q.chains[i].at {
			panic("event: retargeting a chained wake backward in priority or into the past")
		}
		q.chains[i].at = at
		return true
	}
	return false
}

// Cancel revokes a scheduled event: its callback will never run. It
// reports whether the handle still referred to a pending event (false
// when already fired, already cancelled, or zero). Cancellation is O(1);
// the slot is reclaimed lazily during dispatch.
func (q *Queue) Cancel(h Handle) bool {
	e := h.ev
	if e == nil || e.gen != h.gen || e.fn == nil {
		return false
	}
	e.fn = nil
	q.live--
	if !e.far {
		q.nearLive--
	}
	return true
}

// nextSetSlot returns the first occupied slot index at or after idx in
// ring order, scanning at most one full revolution. ok is false when
// the bitmap is empty.
func (q *Queue) nextSetSlot(idx int) (int, bool) {
	word := idx >> 6
	off := uint(idx & 63)
	// First (partial) word.
	if w := q.occ[word] >> off << off; w != 0 {
		return word<<6 + bits.TrailingZeros64(w), true
	}
	for i := 1; i <= len(q.occ); i++ {
		w := (word + i) % len(q.occ)
		if q.occ[w] != 0 {
			return w<<6 + bits.TrailingZeros64(q.occ[w]), true
		}
	}
	return 0, false
}

// nearHead returns the earliest live bucketed event without removing
// it, compacting cancelled events and stale occupancy bits as it scans.
func (q *Queue) nearHead() *event {
	if q.nearLive == 0 {
		return nil
	}
	from := q.nearFrom
	if from < q.now {
		from = q.now
	}
	for scanned := Cycle(0); scanned < bucketWindow; {
		idx, ok := q.nextSetSlot(int(from) & bucketMask)
		if !ok {
			break
		}
		// Convert the slot index back to the cycle ≥ from it represents.
		c := from + Cycle((idx-int(from))&bucketMask)
		s := &q.slots[int(c)&bucketMask]
		// Drop cancelled events from the head.
		for s.head < len(s.evs) && s.evs[s.head].fn == nil {
			q.recycle(s.evs[s.head])
			s.evs[s.head] = nil
			s.head++
		}
		if s.head < len(s.evs) {
			q.nearFrom = s.evs[s.head].at
			return s.evs[s.head]
		}
		s.evs = s.evs[:0]
		s.head = 0
		slotIdx := int(c) & bucketMask
		q.occ[slotIdx>>6] &^= 1 << uint(slotIdx&63)
		scanned += Cycle((idx-int(from))&bucketMask) + 1
		from = c + 1
	}
	q.nearFrom = q.now + bucketWindow
	return nil
}

// farHead returns the earliest live overflow event without removing it,
// discarding cancelled heads.
func (q *Queue) farHead() *event {
	for len(q.far) > 0 {
		if q.far[0].fn != nil {
			return q.far[0]
		}
		q.recycle(heap.Pop(&q.far).(*event))
	}
	return nil
}

// head returns the next event to dispatch (merging calendar and
// overflow sources by time then insertion order) or nil when empty.
func (q *Queue) head() *event {
	ne, fe := q.nearHead(), q.farHead()
	switch {
	case ne == nil:
		return fe
	case fe == nil:
		return ne
	case fe.at < ne.at || (fe.at == ne.at && fe.seq < ne.seq):
		return fe
	default:
		return ne
	}
}

// PeekTime returns the time of the next pending event (regular or
// chained). ok is false when the queue is empty.
func (q *Queue) PeekTime() (at Cycle, ok bool) {
	if e := q.head(); e != nil {
		at, ok = e.at, true
	}
	for i := range q.chains {
		if !ok || q.chains[i].at < at {
			at, ok = q.chains[i].at, true
		}
	}
	return at, ok
}

// Step dispatches the single earliest pending event. It reports false
// when the queue is empty.
func (q *Queue) Step() bool {
	e := q.head()
	if len(q.chains) != 0 {
		return q.stepChained(e)
	}
	if e == nil {
		return false
	}
	q.pop(e)
	q.live--
	q.now = e.at
	at, fn := e.at, e.fn
	q.recycle(e)
	fn(at)
	return true
}

// pop removes e — which must be the current head — from its container.
func (q *Queue) pop(e *event) {
	if e.far {
		heap.Pop(&q.far)
	} else {
		s := &q.slots[int(e.at)&bucketMask]
		s.evs[s.head] = nil
		s.head++
		q.nearLive--
	}
}

// stepChained dispatches the earliest of the regular head e (may be
// nil) and the pending chained wakes, maintaining each chain's virtual
// queue position — the position of the per-cycle re-scheduling chain
// it stands for — with two lazy refreshes of its seq to the current
// insertion counter:
//
//   - an advance lift when the clock moves to a new cycle t: the chain
//     re-armed at the end of every cycle it slept through, so its seq
//     rises above everything scheduled before cycle t began (all those
//     per-cycle re-arms collapse into one refresh, applied only if a
//     mid-cycle pass has not already covered the last cycle);
//   - a mid-cycle pass when the first dispatch at t with a younger seq
//     overtakes the chain: the chain's tick for cycle t fired at its
//     queued position before that dispatch, so its re-arm seq slots in
//     just there.
//
// The mid-cycle pass applies to multiple chains in ascending stale-seq
// order (their tick order within the cycle); the advance lift orders by
// descending lastPass first (see the comment at the lift loop). Each
// refresh applies at most once per chain per cycle.
func (q *Queue) stepChained(e *event) bool {
	// The dispatch cycle is the minimum at; seq ties are broken only
	// after the lifts below settle the chains' positions.
	var t Cycle
	haveT := e != nil
	if haveT {
		t = e.at
	}
	for i := range q.chains {
		if !haveT || q.chains[i].at < t {
			t, haveT = q.chains[i].at, true
		}
	}
	if t > q.now {
		// Every pending chain has at >= t, so all lift to the same
		// boundary: their positions for the tick at cycle t. A chain
		// refreshed more recently (larger lastPass) armed or re-armed
		// later within its cycle, so its virtual re-arms START later:
		// chains with older lastPass values re-arm through the cycles in
		// between and end up above it. Final order is therefore
		// descending lastPass, ties broken by current (stale) seq, which
		// is the tick order chains with a shared history preserve.
		p := t - 1
		for {
			pick := -1
			for i := range q.chains {
				ch := &q.chains[i]
				if ch.lastPass >= p {
					continue
				}
				if pick < 0 {
					pick = i
					continue
				}
				pk := &q.chains[pick]
				if ch.lastPass > pk.lastPass ||
					(ch.lastPass == pk.lastPass && ch.seq < pk.seq) {
					pick = i
				}
			}
			if pick < 0 {
				break
			}
			q.seq++
			q.chains[pick].seq = q.seq
			q.chains[pick].lastPass = p
		}
	}
	best := 0
	for i := 1; i < len(q.chains); i++ {
		ch, b := &q.chains[i], &q.chains[best]
		if ch.at < b.at || (ch.at == b.at && ch.seq < b.seq) {
			best = i
		}
	}
	var s int64
	useChain := e == nil
	if !useChain {
		s = e.seq
		if bc := &q.chains[best]; bc.at < e.at || (bc.at == e.at && bc.seq < s) {
			useChain = true
		}
	}
	if useChain {
		s = q.chains[best].seq
	}
	for {
		pick := -1
		for i := range q.chains {
			ch := &q.chains[i]
			if t < ch.at && t > ch.lastPass && s > ch.seq &&
				(pick < 0 || ch.seq < q.chains[pick].seq) {
				pick = i
			}
		}
		if pick < 0 {
			break
		}
		q.seq++
		q.chains[pick].seq = q.seq
		q.chains[pick].lastPass = t
	}
	q.live--
	q.now = t
	if useChain {
		fn := q.chains[best].fn
		q.chains[best] = q.chains[len(q.chains)-1]
		q.chains = q.chains[:len(q.chains)-1]
		fn(t)
		return true
	}
	q.pop(e)
	at, fn := e.at, e.fn
	q.recycle(e)
	fn(at)
	return true
}

// RunUntil dispatches events in order until the queue is empty or the
// next event lies strictly beyond limit. It returns the number of events
// dispatched.
func (q *Queue) RunUntil(limit Cycle) int {
	n := 0
	for {
		at, ok := q.PeekTime()
		if !ok || at > limit {
			return n
		}
		q.Step()
		n++
	}
}

// Run dispatches events until the queue is empty or maxEvents have been
// dispatched (a safety net against runaway self-scheduling). It returns
// the number dispatched.
func (q *Queue) Run(maxEvents int) int {
	n := 0
	for n < maxEvents && q.Step() {
		n++
	}
	return n
}
