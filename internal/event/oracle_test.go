package event

import (
	"container/heap"
	"math/rand"
	"testing"
)

// This file checks the calendar queue against the simulator's previous
// event queue — a plain binary heap ordered by (time, insertion seq) —
// kept here as a test oracle. Any schedule/cancel/dispatch interleaving
// must produce the identical dispatch order on both implementations.

// oracleEvent is one entry of the reference heap.
type oracleEvent struct {
	at        Cycle
	seq       int64
	id        int
	cancelled bool
}

// heapOracle is the pre-calendar-queue implementation: a binary
// min-heap by (at, seq). It is deliberately simple and obviously
// correct; the property tests compare the optimized queue against it.
type heapOracle struct {
	evs []*oracleEvent
	seq int64
	now Cycle
}

func (h *heapOracle) Len() int { return len(h.evs) }

func (h *heapOracle) Less(i, j int) bool {
	if h.evs[i].at != h.evs[j].at {
		return h.evs[i].at < h.evs[j].at
	}
	return h.evs[i].seq < h.evs[j].seq
}

func (h *heapOracle) Swap(i, j int) { h.evs[i], h.evs[j] = h.evs[j], h.evs[i] }

// Push implements heap.Interface.
func (h *heapOracle) Push(x any) { h.evs = append(h.evs, x.(*oracleEvent)) }

// Pop implements heap.Interface.
func (h *heapOracle) Pop() any {
	old := h.evs
	n := len(old)
	e := old[n-1]
	h.evs = old[:n-1]
	return e
}

func (h *heapOracle) schedule(at Cycle, id int) *oracleEvent {
	h.seq++
	e := &oracleEvent{at: at, seq: h.seq, id: id}
	heap.Push(h, e)
	return e
}

// step pops the earliest live event, returning its id, or -1 when
// empty.
func (h *heapOracle) step() int {
	for len(h.evs) > 0 {
		e := heap.Pop(h).(*oracleEvent)
		if e.cancelled {
			continue
		}
		h.now = e.at
		return e.id
	}
	return -1
}

// mirror drives the optimized Queue and the heap oracle with the same
// operation stream and compares their dispatch orders event by event.
type mirror struct {
	t      *testing.T
	q      Queue
	o      heapOracle
	nextID int
	fired  []int // ids dispatched by the optimized queue

	handles  []Handle       // live handles of the optimized queue
	oHandles []*oracleEvent // the same events in the oracle
}

// schedule mirrors one Schedule call into both queues. Children of
// dispatching callbacks route through here too, so callback-scheduled
// events get identical seq numbering on both sides.
func (m *mirror) schedule(at Cycle, child func(now Cycle)) {
	id := m.nextID
	m.nextID++
	h := m.q.Schedule(at, func(now Cycle) {
		m.fired = append(m.fired, id)
		if child != nil {
			child(now)
		}
	})
	m.handles = append(m.handles, h)
	m.oHandles = append(m.oHandles, m.o.schedule(at, id))
}

// cancel mirrors a Cancel of the i-th scheduled event into both queues
// and checks that the optimized queue's report matches the oracle's
// liveness.
func (m *mirror) cancel(i int) {
	oe := m.oHandles[i]
	wantLive := !oe.cancelled && oe.at > m.o.now // heuristic; checked below
	got := m.q.Cancel(m.handles[i])
	// The oracle cannot cheaply distinguish "already fired" from
	// "pending at now"; cross-check only the definite cases.
	if oe.cancelled && got {
		m.t.Fatalf("Cancel of already-cancelled event %d reported true", i)
	}
	_ = wantLive
	if got {
		oe.cancelled = true
	}
}

// drain dispatches n events from both queues in lockstep and compares
// ids.
func (m *mirror) drain(n int) {
	for i := 0; i < n; i++ {
		before := len(m.fired)
		if !m.q.Step() {
			if id := m.o.step(); id != -1 {
				m.t.Fatalf("queue empty but oracle still holds id %d", id)
			}
			return
		}
		if len(m.fired) != before+1 {
			m.t.Fatalf("Step dispatched %d callbacks, want exactly 1", len(m.fired)-before)
		}
		got := m.fired[len(m.fired)-1]
		want := m.o.step()
		if got != want {
			m.t.Fatalf("dispatch order diverged: queue fired id %d, oracle id %d (position %d)",
				got, want, len(m.fired)-1)
		}
	}
}

// runMirror executes one randomized schedule/cancel/dispatch scenario.
// Offsets mix near events (inside the calendar window) and far events
// (overflow heap, tREFI-scale), plus same-cycle ties and
// callback-scheduled children.
func runMirror(t *testing.T, seed int64, ops int) {
	rng := rand.New(rand.NewSource(seed))
	m := &mirror{t: t}
	offset := func() Cycle {
		switch rng.Intn(4) {
		case 0:
			return Cycle(rng.Intn(4)) // same-cycle ties
		case 1:
			return Cycle(rng.Intn(bucketWindow)) // calendar ring
		case 2:
			return bucketWindow + Cycle(rng.Intn(bucketWindow)) // boundary
		default:
			return Cycle(rng.Intn(20000)) // far heap (tREFI-scale)
		}
	}
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			at := m.q.Now() + offset()
			var child func(now Cycle)
			if rng.Intn(3) == 0 {
				delta := offset()
				child = func(now Cycle) { m.schedule(now+delta, nil) }
			}
			m.schedule(at, child)
		case 5:
			if len(m.handles) > 0 {
				m.cancel(rng.Intn(len(m.handles)))
			}
		default:
			m.drain(rng.Intn(5))
		}
	}
	m.drain(1 << 20) // drain everything
	if m.q.Len() != 0 {
		t.Fatalf("queue reports %d pending after full drain", m.q.Len())
	}
}

// TestQueueMatchesHeapOracle is the property test required by the
// calendar-queue rewrite: random schedule/cancel sequences must
// dispatch in the identical order as the old binary heap.
func TestQueueMatchesHeapOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		runMirror(t, seed, 400)
	}
}

// TestQueueMatchesHeapOracleLong stresses larger scenarios (skipped in
// -short).
func TestQueueMatchesHeapOracleLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long oracle comparison")
	}
	for seed := int64(100); seed < 110; seed++ {
		runMirror(t, seed, 5000)
	}
}

// FuzzQueueOrdering feeds arbitrary operation streams to the queue and
// the heap oracle and requires identical dispatch order. Each input
// byte pair encodes one operation: schedule at an offset, cancel, or
// dispatch.
func FuzzQueueOrdering(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x10, 0x20, 0xff, 0x03})
	f.Add([]byte{0x50, 0x00, 0x50, 0x00, 0xf0, 0x02, 0xf1, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		m := &mirror{t: t}
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch {
			case op < 0xd0:
				// Schedule: the two bytes pick an offset covering the
				// calendar ring, its boundary, and the far heap.
				at := m.q.Now() + Cycle(op)*Cycle(arg)
				m.schedule(at, nil)
			case op < 0xf0:
				if len(m.handles) > 0 {
					m.cancel(int(arg) % len(m.handles))
				}
			default:
				m.drain(int(arg) % 8)
			}
		}
		m.drain(1 << 20)
	})
}

// TestCancelSemantics pins the Cancel contract: true exactly once for a
// pending event, false for fired, double-cancelled, and zero handles,
// and a cancelled callback never runs.
func TestCancelSemantics(t *testing.T) {
	var q Queue
	ran := false
	h := q.Schedule(10, func(Cycle) { ran = true })
	if !q.Cancel(h) {
		t.Fatal("Cancel of pending event reported false")
	}
	if q.Cancel(h) {
		t.Fatal("second Cancel reported true")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after cancelling the only event", q.Len())
	}
	q.Schedule(20, func(Cycle) {})
	q.Run(10)
	if ran {
		t.Fatal("cancelled callback ran")
	}

	fired := q.Schedule(30, func(Cycle) {})
	q.Run(10)
	if q.Cancel(fired) {
		t.Fatal("Cancel of fired event reported true")
	}
	if q.Cancel(Handle{}) {
		t.Fatal("Cancel of zero Handle reported true")
	}
}

// TestPoolReuseHandleSafety verifies the generation counters on pooled
// events: a stale handle to a fired or cancelled event must never
// cancel the recycled object's next incarnation.
func TestPoolReuseHandleSafety(t *testing.T) {
	var q Queue
	stale := q.Schedule(1, func(Cycle) {})
	q.Step() // fires; the event object returns to the pool
	ran := 0
	q.Schedule(2, func(Cycle) { ran++ }) // reuses the pooled object
	if q.Cancel(stale) {
		t.Fatal("stale handle cancelled a recycled event")
	}
	q.Run(10)
	if ran != 1 {
		t.Fatalf("recycled event ran %d times, want 1", ran)
	}

	// Same via the cancel path: cancelled events recycle too (lazily).
	h1 := q.Schedule(q.Now()+1, func(Cycle) { t.Fatal("cancelled callback ran") })
	q.Cancel(h1)
	q.Schedule(q.Now()+2, func(Cycle) { ran++ })
	q.Run(10)
	if ran != 2 {
		t.Fatalf("post-cancel schedule ran %d times, want 2", ran)
	}
	if q.Cancel(h1) {
		t.Fatal("cancelled handle cancelled again after recycling")
	}
}

// TestPoolReuseUnderChurn drives heavy schedule/fire/cancel churn so
// the free list recycles constantly, and checks counts; run under
// -race in CI to catch any unsynchronized reuse.
func TestPoolReuseUnderChurn(t *testing.T) {
	var q Queue
	rng := rand.New(rand.NewSource(11))
	fired, cancelled, kept := 0, 0, 0
	var pending []Handle
	for i := 0; i < 20000; i++ {
		h := q.Schedule(q.Now()+Cycle(rng.Intn(300)), func(Cycle) { fired++ })
		pending = append(pending, h)
		if rng.Intn(3) == 0 && len(pending) > 0 {
			j := rng.Intn(len(pending))
			if q.Cancel(pending[j]) {
				cancelled++
			}
			pending = append(pending[:j], pending[j+1:]...)
		}
		if rng.Intn(4) == 0 {
			for k := 0; k < rng.Intn(4); k++ {
				if q.Step() {
					kept++
				}
			}
		}
	}
	for q.Step() {
		kept++
	}
	if fired != kept {
		t.Fatalf("callback count %d != dispatch count %d", fired, kept)
	}
	if fired+cancelled != 20000 {
		t.Fatalf("fired %d + cancelled %d != scheduled 20000", fired, cancelled)
	}
}
