package event

import "testing"

// TestFromNanosTableIII checks that every nanosecond value of the
// paper's DDR4-1600 speed bin (Table III) converts to the exact cycle
// count the simulator has always used, so routing dram.DDR4_1600
// through FromNanos cannot perturb golden artifacts.
func TestFromNanosTableIII(t *testing.T) {
	cases := []struct {
		ns   float64
		want Cycle
	}{
		{13.75, 11},  // tCL, tRCD, tRP
		{11.25, 9},   // tCWL
		{35, 28},     // tRAS, tFAW
		{48.75, 39},  // tRC
		{7.5, 6},     // tRRD, tWTR, tRTP
		{15, 12},     // tWR
		{7800, 6240}, // tREFI (1x)
		{350, 280},   // tRFC (1x)
		{140, 112},   // tRFCpb (1x)
		{60, 48},     // tRFCsa (1x)
		{3900, 3120},
		{260, 208},
		{110, 88},
		{50, 40},
		{1950, 1560},
		{160, 128},
		{70, 56},
		{40, 32},
	}
	for _, c := range cases {
		if got := FromNanos(c.ns); got != c.want {
			t.Errorf("FromNanos(%v) = %d, want %d", c.ns, got, c.want)
		}
	}
}

// TestFromNanosRoundsUp checks the constraint semantics: a duration
// that ends mid-cycle is not satisfied until the next bus edge.
func TestFromNanosRoundsUp(t *testing.T) {
	if got := FromNanos(1.25); got != 1 {
		t.Errorf("FromNanos(1.25) = %d, want 1", got)
	}
	if got := FromNanos(1.26); got != 2 {
		t.Errorf("FromNanos(1.26) = %d, want 2", got)
	}
	if got := FromNanos(0); got != 0 {
		t.Errorf("FromNanos(0) = %d, want 0", got)
	}
}

func TestNanosRoundTrip(t *testing.T) {
	if got := Nanos(280); got != 350 {
		t.Errorf("Nanos(280) = %v, want 350", got)
	}
	for _, c := range []Cycle{0, 1, 11, 280, 6240} {
		if got := FromNanos(Nanos(c)); got != c {
			t.Errorf("FromNanos(Nanos(%d)) = %d", c, got)
		}
	}
}

// TestFromFloatTruncates pins the truncation semantics fractional-cycle
// scaling sites (drain deadlines as fractions of tREFI) rely on.
func TestFromFloatTruncates(t *testing.T) {
	cases := []struct {
		in   float64
		want Cycle
	}{
		{0, 0}, {0.9, 0}, {1.0, 1}, {187.2, 187}, {780.0, 780},
	}
	for _, c := range cases {
		if got := FromFloat(c.in); got != c.want {
			t.Errorf("FromFloat(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
