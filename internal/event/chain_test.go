package event

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file checks ScheduleChained against its defining model: a
// literal per-cycle polling chain — an event that re-schedules itself
// at now+1 every cycle until its target, then runs the payload. The
// chained wake must dispatch its payload at the same cycle and at the
// same position within that cycle (relative to every other event) as
// the literal chain, for any interleaving of schedules, retargets, and
// chain re-arms. This is the property the memctrl wake discipline
// relies on for bit-identical command streams.

// chainLabelBase offsets chain payload labels away from regular event
// ids in the dispatch streams.
const chainLabelBase = 1 << 20

// litChain is the reference implementation: a self-rescheduling
// per-cycle tick. Arm it by scheduling step at now+1; it no-op ticks
// every cycle until target, where it runs fire instead.
type litChain struct {
	q      *Queue
	target Cycle
	fired  bool
	fire   func(now Cycle)
}

func (c *litChain) step(now Cycle) {
	if now >= c.target {
		c.fired = true
		c.fire(now)
		return
	}
	c.q.Schedule(now+1, c.step)
}

// chainMirror drives the optimized queue (a, using ScheduleChained)
// and the reference queue (b, using litChain) with the same labelled
// operation stream and compares the label sequences and their cycles.
// The reference queue's no-op ticks produce no labels, so comparison
// is per label, not per Step.
type chainMirror struct {
	t      *testing.T
	a, b   Queue
	la, lb []int   // dispatched labels
	ca, cb []Cycle // cycle of each label
	nextID int

	handles []ChainHandle // chain idx -> optimized handle
	lits    []*litChain   // chain idx -> reference chain (nil until armed)
}

// schedule mirrors one regular labelled event into both queues,
// optionally scheduling a labelled child from its callback.
func (m *chainMirror) schedule(at Cycle, childDelta Cycle, hasChild bool) {
	id := m.nextID
	m.nextID++
	childID := -1
	if hasChild {
		childID = m.nextID
		m.nextID++
	}
	mk := func(q *Queue, labels *[]int, cycles *[]Cycle) {
		q.Schedule(at, func(now Cycle) {
			*labels = append(*labels, id)
			*cycles = append(*cycles, now)
			if hasChild {
				q.Schedule(now+childDelta, func(n Cycle) {
					*labels = append(*labels, childID)
					*cycles = append(*cycles, n)
				})
			}
		})
	}
	mk(&m.a, &m.la, &m.ca)
	mk(&m.b, &m.lb, &m.cb)
}

// armChain arms chain idx at target on both queues. rearm >= 0
// reserves a second chain index that the payload arms at now+rearmDelta
// when it fires — the controller's tick-arms-next-tick pattern.
func (m *chainMirror) armChain(idx int, target Cycle, rearm int, rearmDelta Cycle) {
	m.armChainA(idx, target, rearm, rearmDelta)
	m.armChainB(idx, target, rearm, rearmDelta)
}

func (m *chainMirror) armChainA(idx int, target Cycle, rearm int, rearmDelta Cycle) {
	m.handles[idx] = m.a.ScheduleChained(target, func(now Cycle) {
		m.la = append(m.la, chainLabelBase+idx)
		m.ca = append(m.ca, now)
		if rearm >= 0 {
			m.armChainA(rearm, now+rearmDelta, -1, 0)
		}
	})
}

func (m *chainMirror) armChainB(idx int, target Cycle, rearm int, rearmDelta Cycle) {
	lc := &litChain{q: &m.b, target: target}
	lc.fire = func(now Cycle) {
		m.lb = append(m.lb, chainLabelBase+idx)
		m.cb = append(m.cb, now)
		if rearm >= 0 {
			m.armChainB(rearm, now+rearmDelta, -1, 0)
		}
	}
	m.lits[idx] = lc
	m.b.Schedule(m.b.Now()+1, lc.step)
}

// newChainSlots reserves n chain indexes and returns the first.
func (m *chainMirror) newChainSlots(n int) int {
	idx := len(m.lits)
	for i := 0; i < n; i++ {
		m.lits = append(m.lits, nil)
		m.handles = append(m.handles, ChainHandle{})
	}
	return idx
}

// retarget pulls chain idx forward to at on both queues. Valid only
// for an armed, unfired chain with at in (now, target].
func (m *chainMirror) retarget(idx int, at Cycle) {
	if !m.a.RetargetChained(m.handles[idx], at) {
		m.t.Fatalf("RetargetChained(%d, %d) reported a dead handle for a live chain", idx, at)
	}
	m.lits[idx].target = at
}

// stepLabel dispatches until one label appears (skipping the reference
// queue's no-op ticks) or the queue drains.
func stepLabel(q *Queue, labels *[]int) bool {
	for {
		n := len(*labels)
		if !q.Step() {
			return false
		}
		if len(*labels) > n {
			return true
		}
	}
}

// drain dispatches up to n labels from both queues in lockstep and
// compares label identity and cycle.
func (m *chainMirror) drain(n int) {
	for i := 0; i < n; i++ {
		okA := stepLabel(&m.a, &m.la)
		okB := stepLabel(&m.b, &m.lb)
		if okA != okB {
			m.t.Fatalf("queue drained early: optimized=%v reference=%v after %d labels", okA, okB, len(m.la))
		}
		if !okA {
			return
		}
		p := len(m.la) - 1
		if m.la[p] != m.lb[p] || m.ca[p] != m.cb[p] {
			m.t.Fatalf("dispatch diverged at position %d: optimized label %d @%d, reference label %d @%d",
				p, m.la[p], m.ca[p], m.lb[p], m.cb[p])
		}
		if m.a.Now() != m.b.Now() {
			m.t.Fatalf("clocks diverged after label %d: optimized %d, reference %d", p, m.a.Now(), m.b.Now())
		}
	}
}

// runChainMirror executes one randomized scenario mixing regular
// events (with same-cycle ties, in-window and far offsets, and
// callback children), chain arms (some re-arming on fire), and valid
// retargets.
func runChainMirror(t *testing.T, seed int64, ops int) {
	rng := rand.New(rand.NewSource(seed))
	m := &chainMirror{t: t}
	off := func() Cycle {
		switch rng.Intn(4) {
		case 0:
			return Cycle(rng.Intn(4)) // same-cycle ties
		case 1:
			return Cycle(rng.Intn(64)) // short sleeps
		case 2:
			return Cycle(rng.Intn(bucketWindow * 2)) // window boundary
		default:
			return Cycle(rng.Intn(8000)) // tREFI-scale
		}
	}
	for i := 0; i < ops; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			m.schedule(m.a.Now()+off(), off(), rng.Intn(3) == 0)
		case 4:
			if len(m.lits) < 32 {
				target := m.a.Now() + 1 + off()
				if rng.Intn(2) == 0 {
					idx := m.newChainSlots(2)
					m.armChain(idx, target, idx+1, 1+Cycle(rng.Intn(200)))
				} else {
					idx := m.newChainSlots(1)
					m.armChain(idx, target, -1, 0)
				}
			}
		case 5:
			// Retarget a random live chain to a strictly earlier cycle.
			now := m.a.Now()
			var cand []int
			for idx, lc := range m.lits {
				if lc != nil && !lc.fired && lc.target > now+1 {
					cand = append(cand, idx)
				}
			}
			if len(cand) > 0 {
				idx := cand[rng.Intn(len(cand))]
				span := int64(m.lits[idx].target - now - 1)
				m.retarget(idx, now+1+Cycle(rng.Int63n(span+1)))
			}
		default:
			m.drain(1 + rng.Intn(4))
		}
	}
	m.drain(1 << 20)
	if m.a.Len() != 0 || m.b.Len() != 0 {
		t.Fatalf("pending after full drain: optimized %d, reference %d", m.a.Len(), m.b.Len())
	}
	if len(m.la) != len(m.lb) {
		t.Fatalf("label counts diverged: optimized %d, reference %d", len(m.la), len(m.lb))
	}
}

// TestChainedMatchesLiteralChain is the property test for the chained
// wake: random scenarios must dispatch identically to literal
// per-cycle chains.
func TestChainedMatchesLiteralChain(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) { runChainMirror(t, seed, 300) })
	}
}

// TestChainedMatchesLiteralChainLong stresses larger scenarios
// (skipped in -short).
func TestChainedMatchesLiteralChainLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long chained-wake comparison")
	}
	for seed := int64(100); seed < 112; seed++ {
		runChainMirror(t, seed, 4000)
	}
}

// TestRetargetChainedToCurrentCycle pins the enqueue-mid-sleep case
// the controller depends on: a chain armed in an earlier cycle is
// retargeted to the retargeting event's own cycle and must fire in
// that same cycle, after the retargeting event — exactly where the
// literal chain's tick for that cycle (armed one cycle earlier, hence
// with a smaller seq than anything scheduled this cycle) would fire.
func TestRetargetChainedToCurrentCycle(t *testing.T) {
	var q Queue
	var order []string
	var chainAt Cycle
	var h ChainHandle
	q.Schedule(3, func(now Cycle) {
		order = append(order, "arm")
		h = q.ScheduleChained(20, func(n Cycle) {
			order = append(order, "chain")
			chainAt = n
		})
	})
	q.Schedule(5, func(now Cycle) {
		order = append(order, "enqueue")
		if !q.RetargetChained(h, now) {
			t.Fatal("retarget of live chain reported dead handle")
		}
	})
	q.Run(100)
	if want := []string{"arm", "enqueue", "chain"}; len(order) != 3 ||
		order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Fatalf("dispatch order %v, want %v", order, want)
	}
	if chainAt != 5 {
		t.Fatalf("retargeted chain fired at %d, want 5", chainAt)
	}
}

// TestRetargetChainedSemantics pins the contract edges: false for
// fired and zero handles, panic on retargeting later than the current
// target or into the past.
func TestRetargetChainedSemantics(t *testing.T) {
	var q Queue
	h := q.ScheduleChained(1, func(Cycle) {})
	if q.Len() != 1 {
		t.Fatalf("Len = %d after ScheduleChained, want 1", q.Len())
	}
	q.Step()
	if q.RetargetChained(h, 1) {
		t.Fatal("retarget of fired chain reported true")
	}
	if q.RetargetChained(ChainHandle{}, 1) {
		t.Fatal("retarget of zero handle reported true")
	}

	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	h2 := q.ScheduleChained(10, func(Cycle) {})
	expectPanic("retarget beyond target", func() { q.RetargetChained(h2, 11) })
	q.Schedule(5, func(Cycle) {})
	q.Step()
	expectPanic("retarget into the past", func() { q.RetargetChained(h2, 3) })
	expectPanic("chained schedule into the past", func() { q.ScheduleChained(3, func(Cycle) {}) })
	expectPanic("chained schedule of nil", func() { q.ScheduleChained(20, nil) })
}

// TestPeekTimeIncludesChains verifies PeekTime and RunUntil see
// pending chained wakes.
func TestPeekTimeIncludesChains(t *testing.T) {
	var q Queue
	fired := false
	q.ScheduleChained(7, func(Cycle) { fired = true })
	if at, ok := q.PeekTime(); !ok || at != 7 {
		t.Fatalf("PeekTime = %d,%v with only a chain pending, want 7,true", at, ok)
	}
	q.Schedule(3, func(Cycle) {})
	if at, ok := q.PeekTime(); !ok || at != 3 {
		t.Fatalf("PeekTime = %d,%v, want 3,true", at, ok)
	}
	if n := q.RunUntil(7); n != 2 {
		t.Fatalf("RunUntil(7) dispatched %d events, want 2", n)
	}
	if !fired {
		t.Fatal("chained wake did not fire by its target")
	}
}
