package ropsim

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated paper artifact: a figure's data series or a
// table's cells, rendered as rows of strings.
type Table struct {
	// ID is the experiment identifier (e.g. "fig7", "tab1").
	ID string
	// Title describes the artifact.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the formatted cells, one slice per data row.
	Rows [][]string
}

// AddRow appends a row; values are formatted with %v, floats with four
// significant digits.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// String renders the table for debugging.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Cell returns the cell at (row, col) or "" when out of range (a test
// convenience).
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.Rows) || col < 0 || col >= len(t.Rows[row]) {
		return ""
	}
	return t.Rows[row][col]
}
