package ropsim

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"ropsim/internal/stats"
)

// journalSchema versions the journal line format; a bump invalidates
// old sidecars (Load rejects mismatched lines instead of resuming from
// incompatible results).
const journalSchema = 1

// JournalEntry is one checkpointed run: the config hash that keys it,
// the label it first completed under, and the full result. Capture
// timelines are never journaled (they are too heavy and are consumed
// live by the refresh-behaviour analysis), so Result.Capture is always
// nil here.
type JournalEntry struct {
	// Schema is the journal line format version.
	Schema int `json:"schema"`
	// Hash is the deterministic config hash (see ConfigHash).
	Hash string `json:"hash"`
	// Label is the run label that produced the entry.
	Label string `json:"label"`
	// Result is the completed run's outcome, metrics included.
	Result *Result `json:"result"`
}

// Journal is the campaign checkpoint: every completed simulation is
// appended as one JSON line to a sidecar file, keyed by its config
// hash. Reopening the same path loads the completed set, and -resume
// campaigns serve those runs from the journal instead of re-simulating.
// Record is safe for concurrent use by parallel runner workers; each
// entry is flushed to the OS before Record returns, so a killed
// campaign keeps everything that finished.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]*JournalEntry
	hits    int64
}

// OpenJournal opens (creating if needed) the journal sidecar at path
// and loads every complete entry already in it. A truncated final line
// — the signature of a campaign killed mid-append — is skipped, not an
// error. Entries written under a different journal or stats schema are
// ignored.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{f: f, entries: map[string]*JournalEntry{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue // partial trailing line from a killed writer
		}
		if e.Schema != journalSchema || e.Result == nil ||
			e.Result.Metrics.Schema != stats.SchemaVersion {
			continue
		}
		j.entries[e.Hash] = &e
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	return j, nil
}

// Len reports the number of loaded plus newly recorded entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Hits reports how many lookups were served from the journal (the
// resumed-run count of a campaign).
func (j *Journal) Hits() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits
}

// Lookup returns the checkpointed entry for a config hash. The entry
// is shared; callers must treat the result as read-only.
func (j *Journal) Lookup(hash string) (*JournalEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[hash]
	if ok {
		j.hits++
	}
	return e, ok
}

// Record checkpoints one completed run under its config hash, appending
// the entry to the sidecar and flushing it before returning. Recording
// a hash that is already journaled is a no-op (identical configs are
// deterministic, so the existing entry is equally valid).
func (j *Journal) Record(hash, label string, res *Result) error {
	if res.Capture != nil {
		return fmt.Errorf("journal: refusing to checkpoint capture-bearing run %q", label)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.entries[hash]; ok {
		return nil
	}
	e := &JournalEntry{Schema: journalSchema, Hash: hash, Label: label, Result: res}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.entries[hash] = e
	return nil
}

// Close flushes and closes the sidecar file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// ConfigHash derives the deterministic journal key of a run
// configuration. Robustness knobs that cannot change a run's outcome
// (the sanitizer, the watchdog thresholds) are excluded, so a campaign
// resumed with, say, a different -run-timeout still matches its
// journal. Configs carrying explicit trace streams hash their pointer
// representations and must not be journaled (the harness never does).
func ConfigHash(cfg Config) string {
	norm := cfg
	norm.Check = false
	norm.RunTimeout = 0
	norm.LivelockEvents = 0
	h := sha256.Sum256([]byte(fmt.Sprintf("ropsim-journal-v%d|stats-v%d|%+v",
		journalSchema, stats.SchemaVersion, norm)))
	return hex.EncodeToString(h[:])
}
