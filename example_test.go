package ropsim_test

import (
	"fmt"

	"ropsim"
)

// ExampleRun shows the minimal single-benchmark flow: configure, run,
// read the metrics.
func ExampleRun() {
	cfg := ropsim.Default("libquantum")
	cfg.Mode = ropsim.ModeROP
	cfg.Instructions = 100_000
	cfg.ROPTrainRefreshes = 4 // shorten training for this tiny run
	res, err := ropsim.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Cores[0].IPC > 0)
	fmt.Println(res.Refreshes > 0)
	// Output:
	// true
	// true
}

// ExampleWeightedSpeedup shows the paper's Eq. 4 on a 4-core run.
func ExampleWeightedSpeedup() {
	mix := ropsim.Mixes()[0] // WL1
	cfg := ropsim.Default(mix.Members...)
	cfg.Instructions = 50_000
	cfg.ROPTrainRefreshes = 4
	shared, err := ropsim.Run(cfg)
	if err != nil {
		panic(err)
	}
	// With alone-IPCs of 1.0 the weighted speedup is just the IPC sum,
	// which for four cores is positive and at most 4.
	ws := ropsim.WeightedSpeedup(shared, []float64{1, 1, 1, 1})
	fmt.Println(ws > 0 && ws <= 4)
	// Output:
	// true
}

// ExampleBenchmarks lists the modeled SPEC CPU2006 benchmarks.
func ExampleBenchmarks() {
	fmt.Println(len(ropsim.Benchmarks()))
	fmt.Println(ropsim.Benchmarks()[0])
	// Output:
	// 12
	// perlbench
}

// ExampleTable shows the experiment-table rendering used by cmd/ropexp.
func ExampleTable() {
	t := &ropsim.Table{
		ID:     "demo",
		Title:  "demo table",
		Header: []string{"bench", "value"},
	}
	t.AddRow("libquantum", 1.0425)
	fmt.Print(t.String())
	// Output:
	// == demo: demo table ==
	// bench       value
	// libquantum  1.042
}
