// Package ropsim is a from-scratch Go reproduction of "ROP: Alleviating
// Refresh Overheads via Reviving the Memory System in Frozen Cycles"
// (Huang et al., ICPP 2016). It bundles a cycle-level DDR4 memory-system
// simulator, a memory controller with auto-refresh / idealized
// no-refresh / ROP refresh policies, the ROP refresh-oriented prefetcher
// (pattern profiler, rank-scoped prediction table, SRAM buffer), a
// trace-driven multi-core front end with a shared LLC, synthetic
// SPEC-CPU2006-like workload models, and an energy model — plus the
// experiment harness that regenerates every figure and table of the
// paper's evaluation.
//
// Quick start:
//
//	cfg := ropsim.Default("libquantum")
//	cfg.Mode = ropsim.ModeROP
//	res, err := ropsim.Run(cfg)
//
// See the examples/ directory for runnable programs and EXPERIMENTS.md
// for the paper-versus-measured record.
package ropsim

import (
	"context"

	"ropsim/internal/core"
	"ropsim/internal/dram"
	"ropsim/internal/memctrl"
	"ropsim/internal/sim"
	"ropsim/internal/workload"
)

// Config describes one simulation run. It is the simulator-level
// configuration re-exported for library users.
type Config = sim.Config

// Result is a simulation outcome.
type Result = sim.Result

// CoreResult is one core's outcome within a Result.
type CoreResult = sim.CoreResult

// Mode selects the refresh handling policy.
type Mode = memctrl.Mode

// Refresh handling modes.
const (
	// ModeBaseline is JEDEC auto-refresh (the paper's Baseline).
	ModeBaseline = memctrl.ModeBaseline
	// ModeNoRefresh is the idealized refresh-free memory.
	ModeNoRefresh = memctrl.ModeNoRefresh
	// ModeROP enables the paper's refresh-oriented prefetching.
	ModeROP = memctrl.ModeROP
	// ModeElastic is the Elastic Refresh related-work baseline
	// (postpone refreshes into idle gaps, up to eight outstanding).
	ModeElastic = memctrl.ModeElastic
	// ModePausing is the Refresh Pausing related-work baseline
	// (interruptible refreshes in tRFC/8 segments).
	ModePausing = memctrl.ModePausing
	// ModeBankRefresh refreshes one bank at a time (future work §VII).
	ModeBankRefresh = memctrl.ModeBankRefresh
	// ModeROPBank combines bank-level refresh with ROP prefetching.
	ModeROPBank = memctrl.ModeROPBank
	// ModeSubarrayRefresh refreshes one subarray at a time (§VII).
	ModeSubarrayRefresh = memctrl.ModeSubarrayRefresh
	// ModeOutOfOrderBank schedules per-bank refreshes out of order
	// within the JEDEC pull-in/postpone window (Chang et al. HPCA'14).
	ModeOutOfOrderBank = memctrl.ModeOutOfOrderBank
	// ModeDARP adds write-drain refresh piggybacking on top of the
	// out-of-order scheduler (Chang et al. HPCA'14 DARP).
	ModeDARP = memctrl.ModeDARP
	// ModeSARP refreshes one subarray of a bank while the rest of the
	// bank serves accesses (Chang et al. HPCA'14 SARP).
	ModeSARP = memctrl.ModeSARP
)

// GatePolicy selects how ROP decides to launch a prefetch.
type GatePolicy = core.GatePolicy

// Gate policies (ablations; the paper's design is GateProbabilistic).
const (
	GateProbabilistic = core.GateProbabilistic
	GateAlways        = core.GateAlways
	GateNever         = core.GateNever
)

// Predictor selects ROP's candidate generator.
type Predictor = core.Predictor

// Predictor kinds.
const (
	PredictorTable = core.PredictorTable
	PredictorVLDP  = core.PredictorVLDP
)

// RefreshMode selects the JEDEC fine-grained refresh mode.
type RefreshMode = dram.RefreshMode

// Fine-grained refresh modes.
const (
	Refresh1x = dram.Refresh1x
	Refresh2x = dram.Refresh2x
	Refresh4x = dram.Refresh4x
)

// Default returns the paper's configuration for the given benchmarks
// (single-core: 1 rank, 2 MB LLC; multiprogram: 4 ranks, 4 MB LLC).
func Default(benches ...string) Config { return sim.Default(benches...) }

// Run executes one simulation.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// RunCtx is Run with cancellation: the simulation aborts between
// events when ctx is cancelled (graceful campaign shutdown rides on
// this).
func RunCtx(ctx context.Context, cfg Config) (*Result, error) { return sim.RunCtx(ctx, cfg) }

// WeightedSpeedup computes Σ IPC_shared/IPC_alone (paper Eq. 4).
func WeightedSpeedup(shared *Result, alone []float64) float64 {
	return sim.WeightedSpeedup(shared, alone)
}

// Benchmarks lists the modeled SPEC CPU2006 benchmarks in the paper's
// Table I order.
func Benchmarks() []string { return workload.PaperOrder() }

// ZooBenchmarks lists the server-class workload-zoo benchmarks
// (pointer-chasing, scan-heavy, memcached-like). They resolve anywhere
// a benchmark name is accepted but stay out of the paper's
// twelve-benchmark tables; docs/TRACES.md has the catalog.
func ZooBenchmarks() []string { return workload.ZooNames() }

// DRAMStandards lists the registered DRAM standard names, sorted
// (Config.Standard accepts any of them; empty selects the paper's
// DDR4-1600 device).
func DRAMStandards() []string { return dram.StandardNames() }

// Mix is a multiprogrammed 4-core workload.
type Mix = workload.Mix

// Mixes returns the paper's six workload combinations WL1-WL6.
func Mixes() []Mix { return workload.Mixes() }
