package ropsim

// One benchmark per paper artifact: running `go test -bench .` exercises
// every figure and table regenerator at reduced (Quick) scale and
// reports headline shape metrics alongside timing. The full-scale
// numbers in EXPERIMENTS.md come from `ropexp` with FullOptions.

import (
	"strconv"
	"testing"
)

// benchOptions returns a scale small enough for benchmarking while
// still covering dozens of refresh intervals.
func benchOptions() ExpOptions {
	o := QuickOptions()
	o.Benches = []string{"libquantum", "lbm", "bzip2", "gobmk"}
	o.Mixes = []Mix{{Name: "WLb", Members: []string{"GemsFDTD", "lbm", "bwaves", "libquantum"}}}
	o.SRAMSizes = []int{16, 64}
	o.LLCSizesMiB = []int{1, 4}
	return o
}

func parseCell(b *testing.B, t *Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(t.Cell(row, col), 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) of %s: %v", row, col, t.ID, err)
	}
	return v
}

func BenchmarkFig1RefreshOverhead(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := Fig1(o)
		if err != nil {
			b.Fatal(err)
		}
		// Last row is the average; column 3 is the degradation %.
		b.ReportMetric(parseCell(b, t, len(t.Rows)-1, 3), "avg_degradation_%")
	}
}

func BenchmarkFig2NonBlocking(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		f2, _, _, _, err := RefreshBehaviour(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f2, 0, 1), "nonblocking_1x")
	}
}

func BenchmarkFig3BlockedCounts(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, f3, _, _, err := RefreshBehaviour(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f3, 0, 1), "mean_blocked")
	}
}

func BenchmarkFig4EventCoverage(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, _, f4, _, err := RefreshBehaviour(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f4, 0, 3), "coverage_1x")
	}
}

func BenchmarkTable1LambdaBeta(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, _, _, t1, err := RefreshBehaviour(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t1, 0, 1), "lambda_1x")
	}
}

func BenchmarkFig7SingleCoreIPC(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		f7, _, _, err := Fig7to9(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f7, 0, 2), "libquantum_rop64_norm_ipc")
	}
}

func BenchmarkFig8SingleCoreEnergy(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, f8, _, err := Fig7to9(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f8, 0, 2), "libquantum_rop64_norm_energy")
	}
}

func BenchmarkFig9HitRate(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, _, f9, err := Fig7to9(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f9, 0, 2), "libquantum_hit64")
	}
}

func BenchmarkFig10WeightedSpeedup(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		f10, _, err := Fig10and11(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f10, 0, 3), "ws_rop_vs_base")
	}
}

func BenchmarkFig11MultiEnergy(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, f11, err := Fig10and11(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f11, 0, 3), "energy_rop_vs_base")
	}
}

func BenchmarkFig12LLCSweepSpeedup(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		f12, _, _, err := Fig12to14(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f12, 0, 1), "ws_1MB")
	}
}

func BenchmarkFig13LLCSweepEnergy(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, f13, _, err := Fig12to14(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f13, 0, 1), "energy_1MB")
	}
}

func BenchmarkFig14LLCSweepHitRate(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, _, f14, err := Fig12to14(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, f14, 0, 1), "hit_1MB")
	}
}

func BenchmarkAblationGate(b *testing.B) {
	o := benchOptions()
	o.Benches = []string{"libquantum", "bzip2"}
	for i := 0; i < b.N; i++ {
		t, err := AblationGate(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 1), "probabilistic_norm_ipc")
	}
}

func BenchmarkAblationPredictor(b *testing.B) {
	o := benchOptions()
	o.Benches = []string{"libquantum", "bwaves"}
	for i := 0; i < b.N; i++ {
		t, err := AblationPredictor(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 1), "table_norm_ipc")
	}
}

func BenchmarkAblationFGR(b *testing.B) {
	o := benchOptions()
	o.Benches = []string{"libquantum", "lbm"}
	for i := 0; i < b.N; i++ {
		t, err := AblationFGR(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 1), "base_1x_vs_ideal")
	}
}

func BenchmarkPolicyComparison(b *testing.B) {
	o := benchOptions()
	o.Benches = []string{"libquantum", "bzip2"}
	for i := 0; i < b.N; i++ {
		t, err := PolicyComparison(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 4), "rop_norm_ipc")
	}
}

func BenchmarkFutureBankRefresh(b *testing.B) {
	o := benchOptions()
	o.Benches = []string{"libquantum", "lbm"}
	for i := 0; i < b.N; i++ {
		t, err := FutureBankRefresh(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(parseCell(b, t, 0, 3), "rop_bank_norm_ipc")
	}
}
