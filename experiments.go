package ropsim

import (
	"fmt"
	"io"

	"ropsim/internal/analysis"
	"ropsim/internal/cache"
	"ropsim/internal/dram"
	"ropsim/internal/stats"
)

// ExpOptions scales the experiment harness. The paper simulates 1 B
// instructions per benchmark; the harness defaults to a few million,
// which still covers hundreds of refresh intervals per run — enough for
// the statistics every artifact needs — while regenerating the whole
// evaluation in minutes.
type ExpOptions struct {
	// Instructions is the per-core budget of single-core runs.
	Instructions int64
	// MultiInstructions is the per-core budget of 4-core runs.
	MultiInstructions int64
	// TrainRefreshes is the ROP training period (0 = the paper's 50).
	TrainRefreshes int
	// Seed drives workload generation and the prefetch gate.
	Seed int64
	// Benches restricts the benchmark set (nil = the paper's twelve).
	Benches []string
	// Mixes restricts the 4-core workloads (nil = WL1-WL6).
	Mixes []Mix
	// SRAMSizes lists the buffer capacities of Figs 7-9.
	SRAMSizes []int
	// LLCSizesMiB lists the LLC sweep sizes of Figs 12-14.
	LLCSizesMiB []int
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// FullOptions returns the experiment scale used for EXPERIMENTS.md.
func FullOptions() ExpOptions {
	return ExpOptions{
		Instructions:      4_000_000,
		MultiInstructions: 2_000_000,
		Seed:              1,
		SRAMSizes:         []int{16, 32, 64, 128},
		LLCSizesMiB:       []int{1, 2, 4, 8},
	}
}

// QuickOptions returns a reduced scale for smoke tests and benchmarks.
func QuickOptions() ExpOptions {
	o := FullOptions()
	o.Instructions = 300_000
	o.MultiInstructions = 120_000
	o.TrainRefreshes = 8
	return o
}

func (o *ExpOptions) benches() []string {
	if len(o.Benches) > 0 {
		return o.Benches
	}
	return Benchmarks()
}

func (o *ExpOptions) mixes() []Mix {
	if len(o.Mixes) > 0 {
		return o.Mixes
	}
	return Mixes()
}

func (o *ExpOptions) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// single builds a single-core config for bench.
func (o *ExpOptions) single(bench string, mode Mode) Config {
	cfg := Default(bench)
	cfg.Mode = mode
	cfg.Instructions = o.Instructions
	cfg.Seed = o.Seed
	cfg.ROPTrainRefreshes = o.TrainRefreshes
	return cfg
}

// multi builds a 4-core config for a mix.
func (o *ExpOptions) multi(members []string, mode Mode, rankPartition bool) Config {
	cfg := Default(members...)
	cfg.Mode = mode
	cfg.RankPartition = rankPartition
	cfg.Instructions = o.MultiInstructions
	cfg.Seed = o.Seed
	cfg.ROPTrainRefreshes = o.TrainRefreshes
	return cfg
}

func (o *ExpOptions) run(label string, cfg Config) (*Result, error) {
	res, err := Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", label, err)
	}
	o.logf("  %-40s ipc0=%.4f elapsed=%d", label, res.Cores[0].IPC, res.ElapsedBus)
	return res, nil
}

// Fig1 regenerates Figure 1: baseline vs idealized no-refresh IPC and
// energy, i.e. the refresh overhead bound.
func Fig1(o ExpOptions) (*Table, error) {
	t := &Table{ID: "fig1", Title: "Refresh overhead: baseline vs no-refresh (per benchmark)",
		Header: []string{"bench", "ipc_base", "ipc_noref", "perf_degradation_%", "energy_base_J", "energy_noref_J", "extra_energy_%"}}
	var perf, energy stats.Mean
	for _, b := range o.benches() {
		rb, err := o.run("fig1/"+b+"/base", o.single(b, ModeBaseline))
		if err != nil {
			return nil, err
		}
		rn, err := o.run("fig1/"+b+"/noref", o.single(b, ModeNoRefresh))
		if err != nil {
			return nil, err
		}
		deg := (rn.Cores[0].IPC - rb.Cores[0].IPC) / rn.Cores[0].IPC * 100
		extra := (rb.TotalEnergy() - rn.TotalEnergy()) / rn.TotalEnergy() * 100
		perf.Observe(deg)
		energy.Observe(extra)
		t.AddRow(b, rb.Cores[0].IPC, rn.Cores[0].IPC, deg, rb.TotalEnergy(), rn.TotalEnergy(), extra)
	}
	t.AddRow("AVERAGE", "", "", perf.Value(), "", "", energy.Value())
	return t, nil
}

// RefreshBehaviour regenerates the paper's §III refresh study from
// captured baseline runs: Fig. 2 (non-blocking refresh fraction at
// 1x/2x/4x the refresh cycle), Fig. 3 (blocked requests per blocking
// refresh), Fig. 4 (E1/E2 event coverage), and Table I (λ and β at
// 1x/2x/4x observational windows).
func RefreshBehaviour(o ExpOptions) (fig2, fig3, fig4, tab1 *Table, err error) {
	fig2 = &Table{ID: "fig2", Title: "Non-blocking refresh fraction (window = k x tRFC)",
		Header: []string{"bench", "1x", "2x", "4x"}}
	fig3 = &Table{ID: "fig3", Title: "Requests blocked per blocking refresh (window = tRFC)",
		Header: []string{"bench", "mean", "max"}}
	fig4 = &Table{ID: "fig4", Title: "E1+E2 event coverage (window = k x tREFI)",
		Header: []string{"bench", "E1_1x", "E2_1x", "coverage_1x", "coverage_2x", "coverage_4x"}}
	tab1 = &Table{ID: "tab1", Title: "Lambda and beta (window = k x tREFI)",
		Header: []string{"bench", "lambda_1x", "beta_1x", "lambda_2x", "beta_2x", "lambda_4x", "beta_4x"}}

	p := dram.DDR4_1600(Refresh1x)
	for _, b := range o.benches() {
		cfg := o.single(b, ModeBaseline)
		cfg.Capture = true
		res, err := o.run("refresh-behaviour/"+b, cfg)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		tl := analysis.NewTimeline(res.Capture, cfg.Ranks)

		fig2.AddRow(b,
			tl.NonBlockingFraction(p.RFC),
			tl.NonBlockingFraction(2*p.RFC),
			tl.NonBlockingFraction(4*p.RFC))

		mean, max := tl.BlockedStats(p.RFC)
		fig3.AddRow(b, mean, max)

		w1 := tl.Windows(p.REFI)
		w2 := tl.Windows(2 * p.REFI)
		w4 := tl.Windows(4 * p.REFI)
		fig4.AddRow(b, w1.E1Fraction(), w1.E2Fraction(), w1.Coverage(), w2.Coverage(), w4.Coverage())
		tab1.AddRow(b, w1.Lambda(), w1.Beta(), w2.Lambda(), w2.Beta(), w4.Lambda(), w4.Beta())
	}
	return fig2, fig3, fig4, tab1, nil
}

// Fig7to9 regenerates Figures 7-9: single-core IPC, energy (both
// normalized to the baseline) and SRAM hit rate across buffer sizes.
func Fig7to9(o ExpOptions) (fig7, fig8, fig9 *Table, err error) {
	sizes := o.SRAMSizes
	ipcHeader := []string{"bench"}
	for _, s := range sizes {
		ipcHeader = append(ipcHeader, fmt.Sprintf("ROP-%d", s))
	}
	ipcHeader = append(ipcHeader, "NoRefresh")
	fig7 = &Table{ID: "fig7", Title: "Single-core IPC normalized to baseline", Header: ipcHeader}
	fig8 = &Table{ID: "fig8", Title: "Single-core energy normalized to baseline", Header: ipcHeader}
	hitHeader := []string{"bench"}
	for _, s := range sizes {
		hitHeader = append(hitHeader, fmt.Sprintf("%d", s))
	}
	fig9 = &Table{ID: "fig9", Title: "SRAM buffer hit rate by capacity", Header: hitHeader}

	for _, b := range o.benches() {
		rb, err := o.run("fig7/"+b+"/base", o.single(b, ModeBaseline))
		if err != nil {
			return nil, nil, nil, err
		}
		rn, err := o.run("fig7/"+b+"/noref", o.single(b, ModeNoRefresh))
		if err != nil {
			return nil, nil, nil, err
		}
		ipcRow := []any{b}
		energyRow := []any{b}
		hitRow := []any{b}
		for _, s := range sizes {
			cfg := o.single(b, ModeROP)
			cfg.SRAMLines = s
			rr, err := o.run(fmt.Sprintf("fig7/%s/rop%d", b, s), cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			ipcRow = append(ipcRow, rr.Cores[0].IPC/rb.Cores[0].IPC)
			energyRow = append(energyRow, rr.TotalEnergy()/rb.TotalEnergy())
			hitRow = append(hitRow, rr.SRAMHitRate)
		}
		ipcRow = append(ipcRow, rn.Cores[0].IPC/rb.Cores[0].IPC)
		energyRow = append(energyRow, rn.TotalEnergy()/rb.TotalEnergy())
		fig7.AddRow(ipcRow...)
		fig8.AddRow(energyRow...)
		fig9.AddRow(hitRow...)
	}
	return fig7, fig8, fig9, nil
}

// multiSystems runs a mix under the paper's three systems and returns
// (Baseline, Baseline-RP, ROP) results. The ROP system includes the
// paper's rank-aware mapping.
func (o *ExpOptions) multiSystems(m Mix, llcBytes int) (base, baseRP, rop *Result, err error) {
	cfgB := o.multi(m.Members, ModeBaseline, false)
	cfgRP := o.multi(m.Members, ModeBaseline, true)
	cfgR := o.multi(m.Members, ModeROP, true)
	if llcBytes > 0 {
		cfgB.LLCBytes = llcBytes
		cfgRP.LLCBytes = llcBytes
		cfgR.LLCBytes = llcBytes
	}
	if base, err = o.run("multi/"+m.Name+"/base", cfgB); err != nil {
		return
	}
	if baseRP, err = o.run("multi/"+m.Name+"/base-rp", cfgRP); err != nil {
		return
	}
	rop, err = o.run("multi/"+m.Name+"/rop", cfgR)
	return
}

// aloneIPCs computes per-member alone IPCs on the multi-core platform
// (4 ranks, the given LLC), caching by benchmark.
func (o *ExpOptions) aloneIPCs(members []string, llcBytes int, cache map[string]float64) ([]float64, error) {
	out := make([]float64, len(members))
	for i, b := range members {
		if v, ok := cache[b]; ok {
			out[i] = v
			continue
		}
		cfg := o.multi([]string{b}, ModeBaseline, false)
		cfg.Ranks = 4
		if llcBytes > 0 {
			cfg.LLCBytes = llcBytes
		} else {
			cfg.LLCBytes = Default("a", "b", "c", "d").LLCBytes
		}
		res, err := o.run("alone/"+b, cfg)
		if err != nil {
			return nil, err
		}
		cache[b] = res.Cores[0].IPC
		out[i] = res.Cores[0].IPC
	}
	return out, nil
}

// Fig10and11 regenerates Figures 10-11: 4-core normalized weighted
// speedup and energy for Baseline, Baseline-RP and ROP.
func Fig10and11(o ExpOptions) (fig10, fig11 *Table, err error) {
	fig10 = &Table{ID: "fig10", Title: "Normalized weighted speedup (4-core)",
		Header: []string{"mix", "Baseline", "Baseline-RP", "ROP", "ROP_vs_Base"}}
	fig11 = &Table{ID: "fig11", Title: "Normalized energy (4-core)",
		Header: []string{"mix", "Baseline", "Baseline-RP", "ROP"}}
	aloneCache := map[string]float64{}
	var ratios []float64
	for _, m := range o.mixes() {
		alone, err := o.aloneIPCs(m.Members, 0, aloneCache)
		if err != nil {
			return nil, nil, err
		}
		base, baseRP, rop, err := o.multiSystems(m, 0)
		if err != nil {
			return nil, nil, err
		}
		wsB := WeightedSpeedup(base, alone)
		wsRP := WeightedSpeedup(baseRP, alone)
		wsR := WeightedSpeedup(rop, alone)
		ratio := wsR / wsB
		ratios = append(ratios, ratio)
		fig10.AddRow(m.Name, 1.0, wsRP/wsB, ratio, ratio)
		fig11.AddRow(m.Name, 1.0,
			baseRP.TotalEnergy()/base.TotalEnergy(),
			rop.TotalEnergy()/base.TotalEnergy())
	}
	fig10.AddRow("GEOMEAN", "", "", stats.GeoMean(ratios), stats.GeoMean(ratios))
	return fig10, fig11, nil
}

// Fig12to14 regenerates Figures 12-14: the LLC-size sensitivity sweep of
// weighted speedup, energy, and SRAM hit rate.
func Fig12to14(o ExpOptions) (fig12, fig13, fig14 *Table, err error) {
	header := []string{"mix"}
	for _, mb := range o.LLCSizesMiB {
		header = append(header, fmt.Sprintf("%dMB", mb))
	}
	fig12 = &Table{ID: "fig12", Title: "ROP weighted speedup vs Baseline by LLC size", Header: header}
	fig13 = &Table{ID: "fig13", Title: "ROP energy vs Baseline by LLC size", Header: header}
	fig14 = &Table{ID: "fig14", Title: "SRAM hit rate by LLC size", Header: header}

	aloneCaches := map[int]map[string]float64{}
	for _, m := range o.mixes() {
		wsRow := []any{m.Name}
		enRow := []any{m.Name}
		hitRow := []any{m.Name}
		for _, mb := range o.LLCSizesMiB {
			llc := mb * cache.MiB
			if aloneCaches[mb] == nil {
				aloneCaches[mb] = map[string]float64{}
			}
			alone, err := o.aloneIPCs(m.Members, llc, aloneCaches[mb])
			if err != nil {
				return nil, nil, nil, err
			}
			cfgB := o.multi(m.Members, ModeBaseline, false)
			cfgB.LLCBytes = llc
			base, err := o.run(fmt.Sprintf("fig12/%s/%dMB/base", m.Name, mb), cfgB)
			if err != nil {
				return nil, nil, nil, err
			}
			cfgR := o.multi(m.Members, ModeROP, true)
			cfgR.LLCBytes = llc
			rop, err := o.run(fmt.Sprintf("fig12/%s/%dMB/rop", m.Name, mb), cfgR)
			if err != nil {
				return nil, nil, nil, err
			}
			wsRow = append(wsRow, WeightedSpeedup(rop, alone)/WeightedSpeedup(base, alone))
			enRow = append(enRow, rop.TotalEnergy()/base.TotalEnergy())
			hitRow = append(hitRow, rop.SRAMHitRate)
		}
		fig12.AddRow(wsRow...)
		fig13.AddRow(enRow...)
		fig14.AddRow(hitRow...)
	}
	return fig12, fig13, fig14, nil
}

// AblationGate compares the paper's probabilistic λ/β gate against
// always-prefetch and never-prefetch (drain-only) policies.
func AblationGate(o ExpOptions) (*Table, error) {
	t := &Table{ID: "abl-gate", Title: "Prefetch gate ablation (IPC normalized to baseline)",
		Header: []string{"bench", "probabilistic", "always", "never"}}
	for _, b := range o.benches() {
		rb, err := o.run("abl-gate/"+b+"/base", o.single(b, ModeBaseline))
		if err != nil {
			return nil, err
		}
		row := []any{b}
		for _, gate := range []GatePolicy{GateProbabilistic, GateAlways, GateNever} {
			cfg := o.single(b, ModeROP)
			cfg.ROPGate = gate
			rr, err := o.run(fmt.Sprintf("abl-gate/%s/%v", b, gate), cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, rr.Cores[0].IPC/rb.Cores[0].IPC)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationPredictor compares the paper's prediction table (with the
// noise-tolerant update), the strict verbatim update rule, and the
// original VLDP at rank scope.
func AblationPredictor(o ExpOptions) (*Table, error) {
	t := &Table{ID: "abl-pred", Title: "Predictor ablation (normalized IPC / SRAM hit rate)",
		Header: []string{"bench", "table_ipc", "table_hit", "strict_ipc", "strict_hit", "vldp_ipc", "vldp_hit"}}
	for _, b := range o.benches() {
		rb, err := o.run("abl-pred/"+b+"/base", o.single(b, ModeBaseline))
		if err != nil {
			return nil, err
		}
		row := []any{b}
		for _, variant := range []struct {
			strict bool
			pred   Predictor
		}{{false, PredictorTable}, {true, PredictorTable}, {false, PredictorVLDP}} {
			cfg := o.single(b, ModeROP)
			cfg.ROPStrictTable = variant.strict
			cfg.ROPPredictor = variant.pred
			rr, err := o.run(fmt.Sprintf("abl-pred/%s/strict=%v/%v", b, variant.strict, variant.pred), cfg)
			if err != nil {
				return nil, err
			}
			row = append(row, rr.Cores[0].IPC/rb.Cores[0].IPC, rr.SRAMHitRate)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// PolicyComparison runs the four refresh policies — auto-refresh
// baseline, Elastic Refresh (related work), ROP, and the no-refresh
// ideal — and reports IPC normalized to the baseline.
func PolicyComparison(o ExpOptions) (*Table, error) {
	t := &Table{ID: "policy", Title: "Refresh policy comparison (IPC normalized to baseline)",
		Header: []string{"bench", "baseline", "elastic", "pausing", "rop", "norefresh"}}
	for _, b := range o.benches() {
		rb, err := o.run("policy/"+b+"/base", o.single(b, ModeBaseline))
		if err != nil {
			return nil, err
		}
		row := []any{b, 1.0}
		for _, mode := range []Mode{ModeElastic, ModePausing, ModeROP, ModeNoRefresh} {
			rr, err := o.run(fmt.Sprintf("policy/%s/%v", b, mode), o.single(b, mode))
			if err != nil {
				return nil, err
			}
			row = append(row, rr.Cores[0].IPC/rb.Cores[0].IPC)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationFGR runs baseline and ROP under the JEDEC fine-grained refresh
// modes (the paper's stated future-work direction), reporting the
// remaining refresh overhead in each.
func AblationFGR(o ExpOptions) (*Table, error) {
	t := &Table{ID: "abl-fgr", Title: "Fine-grained refresh: IPC normalized to the same-mode no-refresh ideal",
		Header: []string{"bench", "base_1x", "rop_1x", "base_2x", "rop_2x", "base_4x", "rop_4x"}}
	benches := o.benches()
	if len(benches) > 4 {
		// The FGR sweep focuses on intensive benchmarks, as the paper's
		// future-work discussion does.
		benches = []string{"GemsFDTD", "lbm", "libquantum", "bwaves"}
	}
	for _, b := range benches {
		row := []any{b}
		for _, mode := range []RefreshMode{Refresh1x, Refresh2x, Refresh4x} {
			cfgN := o.single(b, ModeNoRefresh)
			cfgN.FGR = mode
			rn, err := o.run(fmt.Sprintf("abl-fgr/%s/%v/noref", b, mode), cfgN)
			if err != nil {
				return nil, err
			}
			cfgB := o.single(b, ModeBaseline)
			cfgB.FGR = mode
			rb, err := o.run(fmt.Sprintf("abl-fgr/%s/%v/base", b, mode), cfgB)
			if err != nil {
				return nil, err
			}
			cfgR := o.single(b, ModeROP)
			cfgR.FGR = mode
			rr, err := o.run(fmt.Sprintf("abl-fgr/%s/%v/rop", b, mode), cfgR)
			if err != nil {
				return nil, err
			}
			row = append(row, rb.Cores[0].IPC/rn.Cores[0].IPC, rr.Cores[0].IPC/rn.Cores[0].IPC)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FutureBankRefresh evaluates the paper's §VII future-work direction:
// bank-granularity refresh, with and without ROP on top, against the
// rank-refresh baseline and the no-refresh ideal.
func FutureBankRefresh(o ExpOptions) (*Table, error) {
	t := &Table{ID: "future-bank", Title: "Finer refresh granularities (IPC normalized to rank-refresh baseline)",
		Header: []string{"bench", "rank_baseline", "bank_refresh", "rop_bank", "subarray", "norefresh"}}
	benches := o.benches()
	if len(benches) > 6 {
		benches = []string{"GemsFDTD", "lbm", "libquantum", "bwaves", "gcc", "cactusADM"}
	}
	for _, b := range benches {
		rb, err := o.run("future-bank/"+b+"/base", o.single(b, ModeBaseline))
		if err != nil {
			return nil, err
		}
		row := []any{b, 1.0}
		for _, mode := range []Mode{ModeBankRefresh, ModeROPBank, ModeSubarrayRefresh, ModeNoRefresh} {
			rr, err := o.run(fmt.Sprintf("future-bank/%s/%v", b, mode), o.single(b, mode))
			if err != nil {
				return nil, err
			}
			row = append(row, rr.Cores[0].IPC/rb.Cores[0].IPC)
		}
		t.AddRow(row...)
	}
	return t, nil
}


// AblationPagePolicy compares the paper's open-page row policy against
// closed-page, for the baseline and ROP systems.
func AblationPagePolicy(o ExpOptions) (*Table, error) {
	t := &Table{ID: "abl-page", Title: "Row-buffer policy ablation (IPC, absolute)",
		Header: []string{"bench", "open_base", "closed_base", "open_rop", "closed_rop"}}
	benches := o.benches()
	if len(benches) > 4 {
		benches = []string{"libquantum", "lbm", "gcc", "bzip2"}
	}
	for _, b := range benches {
		row := []any{b}
		for _, mode := range []Mode{ModeBaseline, ModeROP} {
			for _, closed := range []bool{false, true} {
				cfg := o.single(b, mode)
				cfg.ClosedPage = closed
				rr, err := o.run(fmt.Sprintf("abl-page/%s/%v/closed=%v", b, mode, closed), cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, rr.Cores[0].IPC)
			}
		}
		// Reorder: open_base, closed_base, open_rop, closed_rop already.
		t.AddRow(row...)
	}
	return t, nil
}
