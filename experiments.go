package ropsim

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"ropsim/internal/analysis"
	"ropsim/internal/cache"
	"ropsim/internal/dram"
	"ropsim/internal/runner"
	"ropsim/internal/stats"
	"ropsim/internal/trace"
)

// hasTraceSource reports whether any benchmark name is a "trace:<path>"
// trace source. Such configs must run locally: the trace file lives on
// this machine and its contents are not part of the wire config.
func hasTraceSource(benches []string) bool {
	for _, b := range benches {
		if trace.IsSource(b) {
			return true
		}
	}
	return false
}

// ExpOptions scales the experiment harness. The paper simulates 1 B
// instructions per benchmark; the harness defaults to a few million,
// which still covers hundreds of refresh intervals per run — enough for
// the statistics every artifact needs — while regenerating the whole
// evaluation in minutes.
type ExpOptions struct {
	// Instructions is the per-core budget of single-core runs.
	Instructions int64
	// MultiInstructions is the per-core budget of 4-core runs.
	MultiInstructions int64
	// TrainRefreshes is the ROP training period (0 = the paper's 50).
	TrainRefreshes int
	// Seed drives workload generation and the prefetch gate.
	Seed int64
	// Benches restricts the benchmark set (nil = the paper's twelve).
	Benches []string
	// Mixes restricts the 4-core workloads (nil = WL1-WL6).
	Mixes []Mix
	// SRAMSizes lists the buffer capacities of Figs 7-9.
	SRAMSizes []int
	// LLCSizesMiB lists the LLC sweep sizes of Figs 12-14.
	LLCSizesMiB []int
	// DensitiesGb restricts the die-density points of the Policies sweep
	// (nil = every dram.Densities() point).
	DensitiesGb []int
	// Progress, when non-nil, receives one line per completed run.
	// Workers log concurrently; lines are serialized but their order is
	// scheduling-dependent. The rendered tables are not.
	Progress io.Writer
	// Jobs is the worker count each experiment fans its independent
	// simulations across: 0 selects GOMAXPROCS, 1 forces serial
	// execution. Tables are byte-identical regardless of Jobs — results
	// are keyed by submission index, never completion order (the
	// serial-vs-parallel equivalence test enforces this).
	Jobs int
	// Ctx, when non-nil, cancels in-flight experiments: queued runs are
	// skipped and the experiment returns the context's error.
	Ctx context.Context
	// Pool, when non-nil, schedules every batch and accumulates runner
	// statistics (runs, wall time, speedup vs serial) across
	// experiments; cmd/ropexp shares one pool across the evaluation.
	// Nil = each experiment uses a private pool of Jobs workers.
	Pool *runner.Pool
	// Artifact, when non-nil, collects every completed run's metric
	// snapshot under its run label (the -stats-out machine-readable
	// artifact). Workers record concurrently; the serialized artifact is
	// sorted by label and therefore independent of Jobs.
	Artifact *Artifact
	// Journal, when non-nil, checkpoints every completed run keyed by
	// its config hash and serves already-journaled runs without
	// re-simulating (the -resume flag). Capture-bearing and
	// trace-driven runs are never journaled — they re-run
	// deterministically on resume.
	Journal *Journal
	// Remote, when non-nil, executes runs through a distributed
	// campaign coordinator (cmd/ropexp -serve) instead of in-process.
	// Only journal-eligible runs are remotable: capture-bearing and
	// trace-driven configs always run locally, because their payloads
	// do not round-trip the wire format. Results coming back remote
	// are journaled and recorded exactly like local ones, so the
	// artifact is byte-identical either way.
	Remote func(ctx context.Context, label string, cfg Config) (*Result, error)
	// Standard names the DRAM standard every run simulates (dram.Lookup
	// names; empty = the paper's DDR4-1600). CrossStandard ignores it and
	// sweeps all registered standards instead.
	Standard string
	// RunTimeout bounds each simulation's wall-clock time; the in-run
	// watchdog aborts past-deadline runs with a diagnostic dump.
	RunTimeout time.Duration
	// Check validates every DRAM command of every run against the JEDEC
	// timing checker, failing the run on the first violation.
	Check bool
}

// FullOptions returns the experiment scale used for EXPERIMENTS.md.
func FullOptions() ExpOptions {
	return ExpOptions{
		Instructions:      4_000_000,
		MultiInstructions: 2_000_000,
		Seed:              1,
		SRAMSizes:         []int{16, 32, 64, 128},
		LLCSizesMiB:       []int{1, 2, 4, 8},
	}
}

// QuickOptions returns a reduced scale for smoke tests and benchmarks.
func QuickOptions() ExpOptions {
	o := FullOptions()
	o.Instructions = 300_000
	o.MultiInstructions = 120_000
	o.TrainRefreshes = 8
	return o
}

func (o *ExpOptions) benches() []string {
	if len(o.Benches) > 0 {
		return o.Benches
	}
	return Benchmarks()
}

func (o *ExpOptions) mixes() []Mix {
	if len(o.Mixes) > 0 {
		return o.Mixes
	}
	return Mixes()
}

// progressMu serializes Progress writes from concurrent workers.
var progressMu sync.Mutex

func (o *ExpOptions) logf(format string, args ...any) {
	if o.Progress != nil {
		progressMu.Lock()
		fmt.Fprintf(o.Progress, format+"\n", args...)
		progressMu.Unlock()
	}
}

// pool returns the scheduler for one experiment: the shared Pool when
// set, otherwise a private pool of Jobs workers.
func (o *ExpOptions) pool() *runner.Pool {
	if o.Pool != nil {
		return o.Pool
	}
	return runner.New(o.Jobs)
}

func (o *ExpOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// robustness applies the harness-wide fault-tolerance knobs to cfg.
func (o *ExpOptions) robustness(cfg *Config) {
	cfg.RunTimeout = o.RunTimeout
	cfg.Check = o.Check
	cfg.Standard = o.Standard
}

// single builds a single-core config for bench.
func (o *ExpOptions) single(bench string, mode Mode) Config {
	cfg := Default(bench)
	cfg.Mode = mode
	cfg.Instructions = o.Instructions
	cfg.Seed = o.Seed
	cfg.ROPTrainRefreshes = o.TrainRefreshes
	o.robustness(&cfg)
	return cfg
}

// multi builds a 4-core config for a mix.
func (o *ExpOptions) multi(members []string, mode Mode, rankPartition bool) Config {
	cfg := Default(members...)
	cfg.Mode = mode
	cfg.RankPartition = rankPartition
	cfg.Instructions = o.MultiInstructions
	cfg.Seed = o.Seed
	cfg.ROPTrainRefreshes = o.TrainRefreshes
	o.robustness(&cfg)
	return cfg
}

// runOne executes one simulation, records its metric snapshot in the
// artifact (when one is attached), checkpoints it in the journal, and
// logs its completion. Runs already present in the journal are served
// from it without re-simulating; their artifact snapshots are the
// journaled ones, which round-trip JSON exactly, so a resumed campaign
// writes a byte-identical artifact.
func (o *ExpOptions) runOne(label string, cfg Config) (*Result, error) {
	remotable := !cfg.Capture && !cfg.CaptureTraces && cfg.Traces == nil && !hasTraceSource(cfg.Benches)
	journaled := o.Journal != nil && remotable
	var hash string
	if journaled {
		hash = ConfigHash(cfg)
		if e, ok := o.Journal.Lookup(hash); ok {
			if o.Artifact != nil {
				o.Artifact.Record(label, e.Result.Metrics)
			}
			o.logf("  %-40s resumed from journal", label)
			return e.Result, nil
		}
	}
	var res *Result
	var err error
	if o.Remote != nil && remotable {
		res, err = o.Remote(o.ctx(), label, cfg)
	} else {
		res, err = RunCtx(o.ctx(), cfg)
	}
	if err != nil {
		return nil, err
	}
	if journaled {
		if err := o.Journal.Record(hash, label, res); err != nil {
			return nil, err
		}
	}
	if o.Artifact != nil {
		o.Artifact.Record(label, res.Metrics)
	}
	o.logf("  %-40s ipc0=%.4f elapsed=%d", label, res.Cores[0].IPC, res.ElapsedBus)
	return res, nil
}

// task wraps one (label, Config) run for batch submission. The runner
// wraps any error with the label.
func (o *ExpOptions) task(label string, cfg Config) runner.Task[*Result] {
	return runner.Task[*Result]{Label: label, Run: func(context.Context) (*Result, error) {
		return o.runOne(label, cfg)
	}}
}

// runBatch fans the tasks across the experiment's pool and returns the
// results in submission order.
func (o *ExpOptions) runBatch(tasks []runner.Task[*Result]) ([]*Result, error) {
	return runner.Run(o.ctx(), o.pool(), tasks)
}

// Fig1 regenerates Figure 1: baseline vs idealized no-refresh IPC and
// energy, i.e. the refresh overhead bound.
func Fig1(o ExpOptions) (*Table, error) {
	t := &Table{ID: "fig1", Title: "Refresh overhead: baseline vs no-refresh (per benchmark)",
		Header: []string{"bench", "ipc_base", "ipc_noref", "perf_degradation_%", "energy_base_J", "energy_noref_J", "extra_energy_%"}}
	benches := o.benches()
	tasks := make([]runner.Task[*Result], 0, 2*len(benches))
	for _, b := range benches {
		tasks = append(tasks,
			o.task("fig1/"+b+"/base", o.single(b, ModeBaseline)),
			o.task("fig1/"+b+"/noref", o.single(b, ModeNoRefresh)))
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, err
	}
	var perf, energy stats.Mean
	for i, b := range benches {
		rb, rn := results[2*i], results[2*i+1]
		deg := (rn.Cores[0].IPC - rb.Cores[0].IPC) / rn.Cores[0].IPC * 100
		extra := (rb.TotalEnergy() - rn.TotalEnergy()) / rn.TotalEnergy() * 100
		perf.Observe(deg)
		energy.Observe(extra)
		t.AddRow(b, rb.Cores[0].IPC, rn.Cores[0].IPC, deg, rb.TotalEnergy(), rn.TotalEnergy(), extra)
	}
	t.AddRow("AVERAGE", "", "", perf.Value(), "", "", energy.Value())
	return t, nil
}

// RefreshBehaviour regenerates the paper's §III refresh study from
// captured baseline runs: Fig. 2 (non-blocking refresh fraction at
// 1x/2x/4x the refresh cycle), Fig. 3 (blocked requests per blocking
// refresh), Fig. 4 (E1/E2 event coverage), and Table I (λ and β at
// 1x/2x/4x observational windows).
func RefreshBehaviour(o ExpOptions) (fig2, fig3, fig4, tab1 *Table, err error) {
	fig2 = &Table{ID: "fig2", Title: "Non-blocking refresh fraction (window = k x tRFC)",
		Header: []string{"bench", "1x", "2x", "4x"}}
	fig3 = &Table{ID: "fig3", Title: "Requests blocked per blocking refresh (window = tRFC)",
		Header: []string{"bench", "mean", "max"}}
	fig4 = &Table{ID: "fig4", Title: "E1+E2 event coverage (window = k x tREFI)",
		Header: []string{"bench", "E1_1x", "E2_1x", "coverage_1x", "coverage_2x", "coverage_4x"}}
	tab1 = &Table{ID: "tab1", Title: "Lambda and beta (window = k x tREFI)",
		Header: []string{"bench", "lambda_1x", "beta_1x", "lambda_2x", "beta_2x", "lambda_4x", "beta_4x"}}

	benches := o.benches()
	ranks := make([]int, len(benches))
	tasks := make([]runner.Task[*Result], 0, len(benches))
	for i, b := range benches {
		cfg := o.single(b, ModeBaseline)
		cfg.Capture = true
		ranks[i] = cfg.Ranks
		tasks = append(tasks, o.task("refresh-behaviour/"+b, cfg))
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, nil, nil, nil, err
	}

	std, err := dram.Lookup(o.Standard)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	p, err := std.Params(Refresh1x)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	for i, b := range benches {
		tl := analysis.NewTimeline(results[i].Capture, ranks[i])

		fig2.AddRow(b,
			tl.NonBlockingFraction(p.RFC),
			tl.NonBlockingFraction(2*p.RFC),
			tl.NonBlockingFraction(4*p.RFC))

		mean, max := tl.BlockedStats(p.RFC)
		fig3.AddRow(b, mean, max)

		w1 := tl.Windows(p.REFI)
		w2 := tl.Windows(2 * p.REFI)
		w4 := tl.Windows(4 * p.REFI)
		fig4.AddRow(b, w1.E1Fraction(), w1.E2Fraction(), w1.Coverage(), w2.Coverage(), w4.Coverage())
		tab1.AddRow(b, w1.Lambda(), w1.Beta(), w2.Lambda(), w2.Beta(), w4.Lambda(), w4.Beta())
	}
	return fig2, fig3, fig4, tab1, nil
}

// Fig7to9 regenerates Figures 7-9: single-core IPC, energy (both
// normalized to the baseline) and SRAM hit rate across buffer sizes.
func Fig7to9(o ExpOptions) (fig7, fig8, fig9 *Table, err error) {
	sizes := o.SRAMSizes
	ipcHeader := []string{"bench"}
	for _, s := range sizes {
		ipcHeader = append(ipcHeader, fmt.Sprintf("ROP-%d", s))
	}
	ipcHeader = append(ipcHeader, "NoRefresh")
	fig7 = &Table{ID: "fig7", Title: "Single-core IPC normalized to baseline", Header: ipcHeader}
	fig8 = &Table{ID: "fig8", Title: "Single-core energy normalized to baseline", Header: ipcHeader}
	hitHeader := []string{"bench"}
	for _, s := range sizes {
		hitHeader = append(hitHeader, fmt.Sprintf("%d", s))
	}
	fig9 = &Table{ID: "fig9", Title: "SRAM buffer hit rate by capacity", Header: hitHeader}

	benches := o.benches()
	stride := 2 + len(sizes) // base, noref, then one ROP run per size
	tasks := make([]runner.Task[*Result], 0, stride*len(benches))
	for _, b := range benches {
		tasks = append(tasks,
			o.task("fig7/"+b+"/base", o.single(b, ModeBaseline)),
			o.task("fig7/"+b+"/noref", o.single(b, ModeNoRefresh)))
		for _, s := range sizes {
			cfg := o.single(b, ModeROP)
			cfg.SRAMLines = s
			tasks = append(tasks, o.task(fmt.Sprintf("fig7/%s/rop%d", b, s), cfg))
		}
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, nil, nil, err
	}

	for i, b := range benches {
		rb, rn := results[i*stride], results[i*stride+1]
		ipcRow := []any{b}
		energyRow := []any{b}
		hitRow := []any{b}
		for j := range sizes {
			rr := results[i*stride+2+j]
			ipcRow = append(ipcRow, rr.Cores[0].IPC/rb.Cores[0].IPC)
			energyRow = append(energyRow, rr.TotalEnergy()/rb.TotalEnergy())
			hitRow = append(hitRow, rr.SRAMHitRate)
		}
		ipcRow = append(ipcRow, rn.Cores[0].IPC/rb.Cores[0].IPC)
		energyRow = append(energyRow, rn.TotalEnergy()/rb.TotalEnergy())
		fig7.AddRow(ipcRow...)
		fig8.AddRow(energyRow...)
		fig9.AddRow(hitRow...)
	}
	return fig7, fig8, fig9, nil
}

// aloneKey identifies one memoized alone-IPC run: the benchmark, the
// LLC size it ran under (0 = the multiprogram default), and the die
// density (0 = datasheet 8 Gb).
type aloneKey struct {
	bench   string
	llc     int
	density int
}

// aloneIPC computes (once per key, concurrency-safe) the alone IPC of
// bench on the multi-core platform: 4 ranks and the given LLC, at the
// given die density.
func (o *ExpOptions) aloneIPC(bench string, llcBytes, density int, memo *runner.Memo[aloneKey, float64]) (float64, error) {
	return memo.Do(aloneKey{bench, llcBytes, density}, func() (float64, error) {
		cfg := o.multi([]string{bench}, ModeBaseline, false)
		cfg.Ranks = 4
		cfg.DensityGb = density
		if llcBytes > 0 {
			cfg.LLCBytes = llcBytes
		} else {
			cfg.LLCBytes = Default("a", "b", "c", "d").LLCBytes
		}
		label := "alone/" + bench
		if density != 0 {
			label = fmt.Sprintf("alone/%s/%dGb", bench, density)
		}
		res, err := o.runOne(label, cfg)
		if err != nil {
			return 0, err
		}
		return res.Cores[0].IPC, nil
	})
}

// aloneIPCs resolves the per-member alone IPCs of a mix through the
// memo (all cache hits when the batch pre-warmed it).
func (o *ExpOptions) aloneIPCs(members []string, llcBytes, density int, memo *runner.Memo[aloneKey, float64]) ([]float64, error) {
	out := make([]float64, len(members))
	for i, b := range members {
		v, err := o.aloneIPC(b, llcBytes, density, memo)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// aloneTask warms the alone-IPC memo for one (bench, LLC, density) key
// as part of a batch; the result is read back through the memo, so the
// task's own *Result slot stays nil.
func (o *ExpOptions) aloneTask(bench string, llcBytes, density int, memo *runner.Memo[aloneKey, float64]) runner.Task[*Result] {
	label := "alone/" + bench
	if llcBytes > 0 {
		label = fmt.Sprintf("alone/%s/%dMB", bench, llcBytes/cache.MiB)
	}
	if density != 0 {
		label = fmt.Sprintf("%s/%dGb", label, density)
	}
	return runner.Task[*Result]{Label: label, Run: func(context.Context) (*Result, error) {
		_, err := o.aloneIPC(bench, llcBytes, density, memo)
		return nil, err
	}}
}

// Fig10and11 regenerates Figures 10-11: 4-core normalized weighted
// speedup and energy for Baseline, Baseline-RP and ROP.
func Fig10and11(o ExpOptions) (fig10, fig11 *Table, err error) {
	fig10 = &Table{ID: "fig10", Title: "Normalized weighted speedup (4-core)",
		Header: []string{"mix", "Baseline", "Baseline-RP", "ROP", "ROP_vs_Base"}}
	fig11 = &Table{ID: "fig11", Title: "Normalized energy (4-core)",
		Header: []string{"mix", "Baseline", "Baseline-RP", "ROP"}}

	mixes := o.mixes()
	memo := &runner.Memo[aloneKey, float64]{}
	var tasks []runner.Task[*Result]
	seen := map[string]bool{}
	for _, m := range mixes {
		for _, b := range m.Members {
			if !seen[b] {
				seen[b] = true
				tasks = append(tasks, o.aloneTask(b, 0, 0, memo))
			}
		}
	}
	sysBase := len(tasks)
	for _, m := range mixes {
		tasks = append(tasks,
			o.task("multi/"+m.Name+"/base", o.multi(m.Members, ModeBaseline, false)),
			o.task("multi/"+m.Name+"/base-rp", o.multi(m.Members, ModeBaseline, true)),
			o.task("multi/"+m.Name+"/rop", o.multi(m.Members, ModeROP, true)))
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, nil, err
	}

	var ratios []float64
	for i, m := range mixes {
		alone, err := o.aloneIPCs(m.Members, 0, 0, memo)
		if err != nil {
			return nil, nil, err
		}
		base, baseRP, rop := results[sysBase+3*i], results[sysBase+3*i+1], results[sysBase+3*i+2]
		wsB := WeightedSpeedup(base, alone)
		wsRP := WeightedSpeedup(baseRP, alone)
		wsR := WeightedSpeedup(rop, alone)
		ratio := wsR / wsB
		ratios = append(ratios, ratio)
		fig10.AddRow(m.Name, 1.0, wsRP/wsB, ratio, ratio)
		fig11.AddRow(m.Name, 1.0,
			baseRP.TotalEnergy()/base.TotalEnergy(),
			rop.TotalEnergy()/base.TotalEnergy())
	}
	fig10.AddRow("GEOMEAN", "", "", stats.GeoMean(ratios), stats.GeoMean(ratios))
	return fig10, fig11, nil
}

// Fig12to14 regenerates Figures 12-14: the LLC-size sensitivity sweep of
// weighted speedup, energy, and SRAM hit rate.
func Fig12to14(o ExpOptions) (fig12, fig13, fig14 *Table, err error) {
	header := []string{"mix"}
	for _, mb := range o.LLCSizesMiB {
		header = append(header, fmt.Sprintf("%dMB", mb))
	}
	fig12 = &Table{ID: "fig12", Title: "ROP weighted speedup vs Baseline by LLC size", Header: header}
	fig13 = &Table{ID: "fig13", Title: "ROP energy vs Baseline by LLC size", Header: header}
	fig14 = &Table{ID: "fig14", Title: "SRAM hit rate by LLC size", Header: header}

	mixes := o.mixes()
	memo := &runner.Memo[aloneKey, float64]{}
	var tasks []runner.Task[*Result]
	seen := map[aloneKey]bool{}
	for _, mb := range o.LLCSizesMiB {
		llc := mb * cache.MiB
		for _, m := range mixes {
			for _, b := range m.Members {
				key := aloneKey{bench: b, llc: llc}
				if !seen[key] {
					seen[key] = true
					tasks = append(tasks, o.aloneTask(b, llc, 0, memo))
				}
			}
		}
	}
	sysBase := len(tasks)
	for _, m := range mixes {
		for _, mb := range o.LLCSizesMiB {
			llc := mb * cache.MiB
			cfgB := o.multi(m.Members, ModeBaseline, false)
			cfgB.LLCBytes = llc
			cfgR := o.multi(m.Members, ModeROP, true)
			cfgR.LLCBytes = llc
			tasks = append(tasks,
				o.task(fmt.Sprintf("fig12/%s/%dMB/base", m.Name, mb), cfgB),
				o.task(fmt.Sprintf("fig12/%s/%dMB/rop", m.Name, mb), cfgR))
		}
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, nil, nil, err
	}

	idx := sysBase
	for _, m := range mixes {
		wsRow := []any{m.Name}
		enRow := []any{m.Name}
		hitRow := []any{m.Name}
		for _, mb := range o.LLCSizesMiB {
			llc := mb * cache.MiB
			alone, err := o.aloneIPCs(m.Members, llc, 0, memo)
			if err != nil {
				return nil, nil, nil, err
			}
			base, rop := results[idx], results[idx+1]
			idx += 2
			wsRow = append(wsRow, WeightedSpeedup(rop, alone)/WeightedSpeedup(base, alone))
			enRow = append(enRow, rop.TotalEnergy()/base.TotalEnergy())
			hitRow = append(hitRow, rop.SRAMHitRate)
		}
		fig12.AddRow(wsRow...)
		fig13.AddRow(enRow...)
		fig14.AddRow(hitRow...)
	}
	return fig12, fig13, fig14, nil
}

// AblationGate compares the paper's probabilistic λ/β gate against
// always-prefetch and never-prefetch (drain-only) policies.
func AblationGate(o ExpOptions) (*Table, error) {
	t := &Table{ID: "abl-gate", Title: "Prefetch gate ablation (IPC normalized to baseline)",
		Header: []string{"bench", "probabilistic", "always", "never"}}
	benches := o.benches()
	gates := []GatePolicy{GateProbabilistic, GateAlways, GateNever}
	stride := 1 + len(gates)
	tasks := make([]runner.Task[*Result], 0, stride*len(benches))
	for _, b := range benches {
		tasks = append(tasks, o.task("abl-gate/"+b+"/base", o.single(b, ModeBaseline)))
		for _, gate := range gates {
			cfg := o.single(b, ModeROP)
			cfg.ROPGate = gate
			tasks = append(tasks, o.task(fmt.Sprintf("abl-gate/%s/%v", b, gate), cfg))
		}
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		rb := results[i*stride]
		row := []any{b}
		for j := range gates {
			row = append(row, results[i*stride+1+j].Cores[0].IPC/rb.Cores[0].IPC)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationPredictor compares the paper's prediction table (with the
// noise-tolerant update), the strict verbatim update rule, and the
// original VLDP at rank scope.
func AblationPredictor(o ExpOptions) (*Table, error) {
	t := &Table{ID: "abl-pred", Title: "Predictor ablation (normalized IPC / SRAM hit rate)",
		Header: []string{"bench", "table_ipc", "table_hit", "strict_ipc", "strict_hit", "vldp_ipc", "vldp_hit"}}
	variants := []struct {
		strict bool
		pred   Predictor
	}{{false, PredictorTable}, {true, PredictorTable}, {false, PredictorVLDP}}
	benches := o.benches()
	stride := 1 + len(variants)
	tasks := make([]runner.Task[*Result], 0, stride*len(benches))
	for _, b := range benches {
		tasks = append(tasks, o.task("abl-pred/"+b+"/base", o.single(b, ModeBaseline)))
		for _, v := range variants {
			cfg := o.single(b, ModeROP)
			cfg.ROPStrictTable = v.strict
			cfg.ROPPredictor = v.pred
			tasks = append(tasks, o.task(fmt.Sprintf("abl-pred/%s/strict=%v/%v", b, v.strict, v.pred), cfg))
		}
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		rb := results[i*stride]
		row := []any{b}
		for j := range variants {
			rr := results[i*stride+1+j]
			row = append(row, rr.Cores[0].IPC/rb.Cores[0].IPC, rr.SRAMHitRate)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// PolicyComparison runs the four refresh policies — auto-refresh
// baseline, Elastic Refresh (related work), ROP, and the no-refresh
// ideal — and reports IPC normalized to the baseline.
func PolicyComparison(o ExpOptions) (*Table, error) {
	t := &Table{ID: "policy", Title: "Refresh policy comparison (IPC normalized to baseline)",
		Header: []string{"bench", "baseline", "elastic", "pausing", "rop", "norefresh"}}
	modes := []Mode{ModeElastic, ModePausing, ModeROP, ModeNoRefresh}
	benches := o.benches()
	stride := 1 + len(modes)
	tasks := make([]runner.Task[*Result], 0, stride*len(benches))
	for _, b := range benches {
		tasks = append(tasks, o.task("policy/"+b+"/base", o.single(b, ModeBaseline)))
		for _, mode := range modes {
			tasks = append(tasks, o.task(fmt.Sprintf("policy/%s/%v", b, mode), o.single(b, mode)))
		}
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		rb := results[i*stride]
		row := []any{b, 1.0}
		for j := range modes {
			row = append(row, results[i*stride+1+j].Cores[0].IPC/rb.Cores[0].IPC)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationFGR runs baseline and ROP under the JEDEC fine-grained refresh
// modes (the paper's stated future-work direction), reporting the
// remaining refresh overhead in each.
func AblationFGR(o ExpOptions) (*Table, error) {
	t := &Table{ID: "abl-fgr", Title: "Fine-grained refresh: IPC normalized to the same-mode no-refresh ideal",
		Header: []string{"bench", "base_1x", "rop_1x", "base_2x", "rop_2x", "base_4x", "rop_4x"}}
	benches := o.benches()
	if len(benches) > 4 {
		// The FGR sweep focuses on intensive benchmarks, as the paper's
		// future-work discussion does.
		benches = []string{"GemsFDTD", "lbm", "libquantum", "bwaves"}
	}
	fgrModes := []RefreshMode{Refresh1x, Refresh2x, Refresh4x}
	stride := 3 * len(fgrModes) // noref, base, rop per FGR mode
	tasks := make([]runner.Task[*Result], 0, stride*len(benches))
	for _, b := range benches {
		for _, mode := range fgrModes {
			cfgN := o.single(b, ModeNoRefresh)
			cfgN.FGR = mode
			cfgB := o.single(b, ModeBaseline)
			cfgB.FGR = mode
			cfgR := o.single(b, ModeROP)
			cfgR.FGR = mode
			tasks = append(tasks,
				o.task(fmt.Sprintf("abl-fgr/%s/%v/noref", b, mode), cfgN),
				o.task(fmt.Sprintf("abl-fgr/%s/%v/base", b, mode), cfgB),
				o.task(fmt.Sprintf("abl-fgr/%s/%v/rop", b, mode), cfgR))
		}
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		row := []any{b}
		for j := range fgrModes {
			rn := results[i*stride+3*j]
			rb := results[i*stride+3*j+1]
			rr := results[i*stride+3*j+2]
			row = append(row, rb.Cores[0].IPC/rn.Cores[0].IPC, rr.Cores[0].IPC/rn.Cores[0].IPC)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FutureBankRefresh evaluates the paper's §VII future-work direction:
// bank-granularity refresh, with and without ROP on top, against the
// rank-refresh baseline and the no-refresh ideal.
func FutureBankRefresh(o ExpOptions) (*Table, error) {
	t := &Table{ID: "future-bank", Title: "Finer refresh granularities (IPC normalized to rank-refresh baseline)",
		Header: []string{"bench", "rank_baseline", "bank_refresh", "rop_bank", "subarray", "norefresh"}}
	benches := o.benches()
	if len(benches) > 6 {
		benches = []string{"GemsFDTD", "lbm", "libquantum", "bwaves", "gcc", "cactusADM"}
	}
	modes := []Mode{ModeBankRefresh, ModeROPBank, ModeSubarrayRefresh, ModeNoRefresh}
	stride := 1 + len(modes)
	tasks := make([]runner.Task[*Result], 0, stride*len(benches))
	for _, b := range benches {
		tasks = append(tasks, o.task("future-bank/"+b+"/base", o.single(b, ModeBaseline)))
		for _, mode := range modes {
			tasks = append(tasks, o.task(fmt.Sprintf("future-bank/%s/%v", b, mode), o.single(b, mode)))
		}
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		rb := results[i*stride]
		row := []any{b, 1.0}
		for j := range modes {
			row = append(row, results[i*stride+1+j].Cores[0].IPC/rb.Cores[0].IPC)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// CrossStandard regenerates the Fig. 1 refresh-overhead study across
// every registered DRAM standard: for each standard it runs the
// standard's native-granularity refresh baseline (all-bank auto-refresh
// for DDR4, bank-granularity refresh for LPDDR4/DDR5), ROP layered on
// that baseline, and the no-refresh ideal, and reports how much of the
// refresh-overhead gap ROP recovers plus the fraction of rank-cycles
// the baseline spent refresh-locked. ExpOptions.Standard is ignored:
// the sweep covers dram.Standards() in registration order.
func CrossStandard(o ExpOptions) (*Table, error) {
	t := &Table{ID: "xstd", Title: "Cross-standard refresh overhead and ROP recovery",
		Header: []string{"standard", "bench", "ipc_base", "ipc_rop", "ipc_noref",
			"recovered_%", "refresh_busy_%"}}
	benches := o.benches()
	if len(benches) > 4 {
		// Focus the sweep on the memory-intensive benchmarks, as the FGR
		// ablation does: the refresh overhead of the others is negligible.
		benches = []string{"GemsFDTD", "lbm", "libquantum", "bwaves"}
	}
	standards := dram.Standards()
	stride := 3 // base, rop, noref
	tasks := make([]runner.Task[*Result], 0, stride*len(standards)*len(benches))
	for _, std := range standards {
		// The native refresh policy pair: all-bank standards refresh whole
		// ranks; per-bank and same-bank standards refresh at bank
		// granularity (one bank, or one bank per group, at a time).
		base, rop := ModeBaseline, ModeROP
		if std.Refresh().Granularity != dram.GranularityAllBank {
			base, rop = ModeBankRefresh, ModeROPBank
		}
		for _, b := range benches {
			for _, mode := range []Mode{base, rop, ModeNoRefresh} {
				cfg := o.single(b, mode)
				cfg.Standard = std.Name()
				tasks = append(tasks,
					o.task(fmt.Sprintf("xstd/%s/%s/%v", std.Name(), b, mode), cfg))
			}
		}
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, err
	}
	idx := 0
	for _, std := range standards {
		for _, b := range benches {
			rb, rr, rn := results[idx], results[idx+1], results[idx+2]
			idx += stride
			// Recovered fraction of the refresh-overhead gap; the gap can
			// be ~zero (or negative, from scheduling noise) on
			// refresh-insensitive runs, so guard the division.
			recovered := 0.0
			if gap := rn.Cores[0].IPC - rb.Cores[0].IPC; gap > 1e-9 {
				recovered = (rr.Cores[0].IPC - rb.Cores[0].IPC) / gap * 100
			}
			busy := 0.0
			if locked, ok := rb.Metrics.Field("dram.ref_locked_cycles", "value"); ok {
				// ref_locked_cycles accounts rank-cycles under all-bank REF
				// but locked-bank-cycles under bank-granularity refresh;
				// normalize both to the fraction of the device frozen.
				denom := float64(rb.ElapsedBus) * float64(Default(b).Ranks)
				if std.Refresh().Granularity != dram.GranularityAllBank {
					denom *= float64(std.Geometry(1).Banks)
				}
				busy = locked / denom * 100
			}
			t.AddRow(std.Name(), b, rb.Cores[0].IPC, rr.Cores[0].IPC, rn.Cores[0].IPC,
				recovered, busy)
		}
	}
	return t, nil
}

// Policies runs the refresh-policy lab: the native baseline, the Chang
// et al. HPCA'14 line (out-of-order per-bank scheduling, DARP, SARP),
// ROP, and the no-refresh ideal, head-to-head on the 4-core mixes
// across projected die densities (8/16/32/64 Gb tRFC scaling,
// dram.ScaleDensity). Each row reports weighted speedup normalized to
// the same-density native baseline — all-bank auto-refresh on all-bank
// standards, bank-granularity refresh otherwise (with ROP layered on
// the same native granularity, as in CrossStandard) — plus the
// fraction of the device the baseline spent refresh-locked, and each
// density closes with a GEOMEAN row. ExpOptions.DensitiesGb restricts
// the density points (nil = every dram.Densities() point).
func Policies(o ExpOptions) (*Table, error) {
	t := &Table{ID: "policies", Title: "Refresh-policy lab: weighted speedup normalized to the native baseline, by die density",
		Header: []string{"density_gb", "mix", "Baseline", "OoO", "DARP", "SARP", "ROP", "NoRefresh", "base_refresh_busy_%"}}
	std, err := dram.Lookup(o.Standard)
	if err != nil {
		return nil, err
	}
	base, rop := ModeBaseline, ModeROP
	if std.Refresh().Granularity != dram.GranularityAllBank {
		base, rop = ModeBankRefresh, ModeROPBank
	}
	modes := []Mode{base, ModeOutOfOrderBank, ModeDARP, ModeSARP, rop, ModeNoRefresh}
	densities := o.DensitiesGb
	if len(densities) == 0 {
		densities = dram.Densities()
	}
	mixes := o.mixes()
	memo := &runner.Memo[aloneKey, float64]{}
	var tasks []runner.Task[*Result]
	seen := map[aloneKey]bool{}
	for _, gb := range densities {
		for _, m := range mixes {
			for _, b := range m.Members {
				key := aloneKey{bench: b, density: gb}
				if !seen[key] {
					seen[key] = true
					tasks = append(tasks, o.aloneTask(b, 0, gb, memo))
				}
			}
		}
	}
	sysBase := len(tasks)
	for _, gb := range densities {
		for _, m := range mixes {
			for _, mode := range modes {
				cfg := o.multi(m.Members, mode, false)
				cfg.DensityGb = gb
				tasks = append(tasks, o.task(fmt.Sprintf("policies/%dGb/%s/%v", gb, m.Name, mode), cfg))
			}
		}
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, err
	}
	idx := sysBase
	for _, gb := range densities {
		norm := make([][]float64, len(modes))
		for _, m := range mixes {
			alone, err := o.aloneIPCs(m.Members, 0, gb, memo)
			if err != nil {
				return nil, err
			}
			rb := results[idx]
			wsBase := WeightedSpeedup(rb, alone)
			row := []any{gb, m.Name}
			for j := range modes {
				v := WeightedSpeedup(results[idx+j], alone) / wsBase
				norm[j] = append(norm[j], v)
				row = append(row, v)
			}
			idx += len(modes)
			busy := 0.0
			if locked, ok := rb.Metrics.Field("dram.ref_locked_cycles", "value"); ok {
				// Same normalization as CrossStandard: rank-cycles under
				// all-bank REF, locked-bank-cycles under bank granularity.
				denom := float64(rb.ElapsedBus) * float64(Default(m.Members...).Ranks)
				if std.Refresh().Granularity != dram.GranularityAllBank {
					denom *= float64(std.Geometry(1).Banks)
				}
				busy = locked / denom * 100
			}
			row = append(row, busy)
			t.AddRow(row...)
		}
		gmRow := []any{gb, "GEOMEAN"}
		for j := range modes {
			gmRow = append(gmRow, stats.GeoMean(norm[j]))
		}
		gmRow = append(gmRow, "")
		t.AddRow(gmRow...)
	}
	return t, nil
}

// AblationPagePolicy compares the paper's open-page row policy against
// closed-page, for the baseline and ROP systems.
func AblationPagePolicy(o ExpOptions) (*Table, error) {
	t := &Table{ID: "abl-page", Title: "Row-buffer policy ablation (IPC, absolute)",
		Header: []string{"bench", "open_base", "closed_base", "open_rop", "closed_rop"}}
	benches := o.benches()
	if len(benches) > 4 {
		benches = []string{"libquantum", "lbm", "gcc", "bzip2"}
	}
	stride := 4 // open_base, closed_base, open_rop, closed_rop
	tasks := make([]runner.Task[*Result], 0, stride*len(benches))
	for _, b := range benches {
		for _, mode := range []Mode{ModeBaseline, ModeROP} {
			for _, closed := range []bool{false, true} {
				cfg := o.single(b, mode)
				cfg.ClosedPage = closed
				tasks = append(tasks, o.task(fmt.Sprintf("abl-page/%s/%v/closed=%v", b, mode, closed), cfg))
			}
		}
	}
	results, err := o.runBatch(tasks)
	if err != nil {
		return nil, err
	}
	for i, b := range benches {
		row := []any{b}
		for j := 0; j < stride; j++ {
			row = append(row, results[i*stride+j].Cores[0].IPC)
		}
		t.AddRow(row...)
	}
	return t, nil
}
