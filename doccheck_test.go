package ropsim

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented is the repository's godoc-coverage
// gate (the "revive exported-comment rule" equivalent, kept in-tree so
// `go test ./...` enforces it in CI): every exported type, function,
// method, and package-level const/var in the simulator packages must
// carry a doc comment. The documentation convention — comments state
// units (bus cycles vs CPU cycles vs ns vs joules) and paper-section
// provenance where applicable — is enforced by review; this test
// enforces presence.
func TestExportedSymbolsDocumented(t *testing.T) {
	dirs := []string{
		".",
		"internal/addr",
		"internal/analysis",
		"internal/cache",
		"internal/campaign",
		"internal/core",
		"internal/cpu",
		"internal/dram",
		"internal/energy",
		"internal/event",
		"internal/memctrl",
		"internal/runner",
		"internal/sim",
		"internal/stats",
		"internal/trace",
		"internal/vldp",
		"internal/workload",
	}
	var missing []string
	for _, dir := range dirs {
		missing = append(missing, undocumentedExports(t, dir)...)
	}
	if len(missing) > 0 {
		t.Errorf("%d exported symbols lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

// undocumentedExports parses the non-test Go files of one directory and
// reports every exported declaration without a doc comment.
func undocumentedExports(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s", p.Filename, p.Line, what, name))
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				if d.Doc == nil {
					report(d.Pos(), "func", funcName(d))
				}
			case *ast.GenDecl:
				// A doc comment on the decl covers every spec in the
				// block (the usual idiom for const/var groups); without
				// one, each exported spec needs its own.
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						if d.Doc == nil && s.Doc == nil {
							report(s.Pos(), "type", s.Name.Name)
						}
						// Exported fields of exported structs are part
						// of the API: each needs a doc or line comment
						// (units and provenance live there).
						if st, ok := s.Type.(*ast.StructType); ok {
							for _, fl := range st.Fields.List {
								if fl.Doc != nil || fl.Comment != nil {
									continue
								}
								for _, fn := range fl.Names {
									if fn.IsExported() {
										report(fn.Pos(), "field", s.Name.Name+"."+fn.Name)
									}
								}
							}
						}
					case *ast.ValueSpec:
						if d.Doc != nil || s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								report(s.Pos(), "value", n.Name)
							}
						}
					}
				}
			}
		}
	}
	return missing
}

// exportedReceiver reports whether fn is a plain function or a method
// on an exported type (methods on unexported types are not part of the
// package's godoc surface).
func exportedReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	typ := fn.Recv.List[0].Type
	for {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.IndexExpr: // generic receiver T[P]
			typ = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Recv.Name" for methods and "Name" for functions.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	var recv string
	typ := fn.Recv.List[0].Type
	for recv == "" {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.IndexExpr:
			typ = v.X
		case *ast.Ident:
			recv = v.Name
		default:
			recv = "?"
		}
	}
	return recv + "." + fn.Name.Name
}
