package ropsim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ropsim/internal/trace"
	"ropsim/internal/workload"
)

// captureTrace runs a short checked synthetic simulation with trace
// capture armed and returns the captured core-0 stream plus the run's
// serialized metric snapshot.
func captureTrace(t *testing.T, bench string, insts int64) ([]workload.Record, string) {
	t.Helper()
	cfg := Default(bench)
	cfg.Instructions = insts
	cfg.CaptureTraces = true
	cfg.Check = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CoreTraces) != 1 || len(res.CoreTraces[0]) == 0 {
		t.Fatalf("capture returned %d traces", len(res.CoreTraces))
	}
	var buf bytes.Buffer
	if err := res.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return res.CoreTraces[0], buf.String()
}

// TestTraceCaptureConvertReplayByteEquivalence is the tentpole's
// capture→convert→replay chain: a captured stream survives the .ropt
// encode/decode round trip record-exactly, and replaying it through
// the full system reproduces the original run's metric snapshot
// byte-for-byte (protocol sanitizer armed on both runs).
func TestTraceCaptureConvertReplayByteEquivalence(t *testing.T) {
	recs, origSnap := captureTrace(t, "scan", 150_000)

	path := filepath.Join(t.TempDir(), "scan.ropt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeRopt(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, recs) {
		t.Fatal("captured records did not survive the .ropt round trip")
	}

	cfg := Default("scan")
	cfg.Instructions = 150_000
	cfg.Check = true
	cfg.Traces = []workload.Stream{workload.NewSliceStream(decoded)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != origSnap {
		t.Fatal("replayed run's metric snapshot differs from the captured run")
	}
}

// TestTraceSourceReplayJobsDeterminism is the acceptance criterion: a
// captured trace replayed through the experiment harness as a
// "trace:<path>" workload source emits a byte-identical artifact at
// -jobs 1 and -jobs 8, with the protocol sanitizer clean.
func TestTraceSourceReplayJobsDeterminism(t *testing.T) {
	recs, _ := captureTrace(t, "memcached", 150_000)
	path := filepath.Join(t.TempDir(), "memcached.ropt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeRopt(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	render := func(jobs int) string {
		o := QuickOptions()
		o.Instructions = 150_000
		o.Benches = []string{"trace:" + path}
		o.Jobs = jobs
		o.Check = true
		o.Artifact = NewArtifact()
		if _, err := Fig1(o); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := o.Artifact.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatal("trace replay artifact differs between -jobs 1 and -jobs 8")
	}
	if !bytes.Contains([]byte(serial), []byte("trace.core0.records_replayed")) {
		t.Fatal("replay artifact lacks trace.core0 metrics")
	}
}

// TestTraceSourceMetricsNamespace checks that a trace-driven run
// registers the trace.core<N> replay counters and that synthetic runs
// do not (keeping the golden artifact namespace unchanged).
func TestTraceSourceMetricsNamespace(t *testing.T) {
	recs, _ := captureTrace(t, "pointer", 100_000)
	path := filepath.Join(t.TempDir(), "pointer.ropt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.EncodeRopt(f, recs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := Default("trace:" + path)
	cfg.Instructions = 100_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, ok := res.Metrics.Field("trace.core0.records_replayed", "value")
	if !ok {
		t.Fatal("trace.core0.records_replayed missing from trace-driven run")
	}
	if replayed <= 0 || replayed > float64(len(recs)) {
		t.Fatalf("records_replayed = %v of %d captured", replayed, len(recs))
	}
	if folded, _ := res.Metrics.Field("trace.core0.folded_lines", "value"); folded != 0 {
		t.Fatalf("capture-sourced trace should need no folding, got %v", folded)
	}

	synth := Default("pointer")
	synth.Instructions = 100_000
	sres, err := Run(synth)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sres.Metrics.Paths() {
		if len(p) >= 6 && p[:6] == "trace." {
			t.Fatalf("synthetic run leaked trace metric %s", p)
		}
	}
}

// TestZooTracesCommittedAndFresh validates the committed workload zoo:
// every zoo profile has a committed .ropt trace that decodes cleanly,
// and regenerating it through the capture path reproduces the
// committed bytes exactly (the zoo is deterministic).
func TestZooTracesCommittedAndFresh(t *testing.T) {
	for _, name := range ZooBenchmarks() {
		path := filepath.Join("testdata", "traces", name+".ropt")
		committed, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing committed zoo trace (regenerate with `go run ./cmd/roptrace zoo`): %v", err)
		}
		tr, err := trace.DecodeRopt(committed)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if tr.Records() == 0 {
			t.Fatalf("%s: empty trace", path)
		}

		cfg := Default(name)
		cfg.Instructions = 600_000 // must match cmd/roptrace zooInstructions
		cfg.CaptureTraces = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := trace.EncodeRopt(&buf, res.CoreTraces[0]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), committed) {
			t.Fatalf("%s: fresh capture differs from committed trace", name)
		}
	}
}
