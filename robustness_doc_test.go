package ropsim

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ropsim/internal/sim"
)

// TestRobustnessDocComplete enforces the docs/ROBUSTNESS.md contract
// the same way TestMetricsDocComplete enforces docs/METRICS.md: the
// operational facts a user depends on — flag names, exit codes, the
// journal schema version, the livelock default — must appear in the
// document and must match the code, and every campaign-level
// fault-injection test must be listed (so a new failure path cannot
// land undocumented).
func TestRobustnessDocComplete(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "ROBUSTNESS.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	// Every robustness flag of ropexp/ropworker (the distributed
	// campaign surface included) and both policy spellings.
	for _, flag := range []string{
		"-journal", "-resume", "-check", "-run-timeout", "-fail-policy",
		"failfast", "continue",
		"-serve", "-connect", "-http", "-heartbeat", "-heartbeat-timeout",
		"-reconnect-for",
	} {
		if !strings.Contains(text, "`"+flag+"`") {
			t.Errorf("docs/ROBUSTNESS.md does not document %q", flag)
		}
	}

	// The exit-code table must cover the full CLI contract.
	for _, code := range []string{"| 0 |", "| 1 |", "| 2 |", "| 3 |", "| 130 |"} {
		if !strings.Contains(text, code) {
			t.Errorf("docs/ROBUSTNESS.md exit-code table missing row %q", code)
		}
	}

	// The journal example line must carry the current schema version,
	// and the watchdog section the current livelock default.
	if want := fmt.Sprintf(`{"schema": %d`, journalSchema); !strings.Contains(text, want) {
		t.Errorf("docs/ROBUSTNESS.md journal example does not show schema version %d", journalSchema)
	}
	if want := groupDigits(sim.DefaultLivelockEvents); !strings.Contains(text, want) {
		t.Errorf("docs/ROBUSTNESS.md does not state the livelock default %s", want)
	}

	// Every campaign-level fault-injection test (root package, the
	// simulation watchdog suite, and the distributed-campaign suite)
	// must be described in the doc.
	re := regexp.MustCompile(`func (TestFault\w+)\(`)
	for _, dir := range []string{".", "internal/sim", "internal/campaign"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range re.FindAllStringSubmatch(string(src), -1) {
				if !strings.Contains(text, m[1]) {
					t.Errorf("docs/ROBUSTNESS.md does not mention fault test %s", m[1])
				}
			}
		}
	}
}

// groupDigits renders n with comma thousands separators, matching the
// prose style of the docs (e.g. 2000000 -> "2,000,000").
func groupDigits(n int64) string {
	s := fmt.Sprintf("%d", n)
	for i := len(s) - 3; i > 0; i -= 3 {
		s = s[:i] + "," + s[i:]
	}
	return s
}
