package ropsim

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestFaultSigintKillAndResume drives the real ropexp binary through
// the full graceful-shutdown story: a campaign is interrupted with
// SIGINT mid-flight, must exit with code 3 after flushing its journal
// and partial stats artifact, and a -resume rerun must complete the
// campaign with a final artifact byte-identical to an uninterrupted
// one.
func TestFaultSigintKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the ropexp binary; skipped in -short")
	}
	dir := t.TempDir()
	exe := filepath.Join(dir, "ropexp")
	build := exec.Command("go", "build", "-o", exe, "./cmd/ropexp")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	journal := filepath.Join(dir, "campaign.jsonl")
	refOut := filepath.Join(dir, "ref.json")
	partOut := filepath.Join(dir, "part.json")
	finalOut := filepath.Join(dir, "final.json")

	// The campaign is sized so a worker pool takes a few seconds: long
	// enough to interrupt reliably, short enough for CI.
	args := []string{"-exp", "fig1", "-insts", "20000000", "-jobs", "2"}

	// Reference: the same campaign, uninterrupted.
	ref := exec.Command(exe, append(args, "-stats-out", refOut)...)
	if out, err := ref.CombinedOutput(); err != nil {
		t.Fatalf("reference campaign: %v\n%s", err, out)
	}

	// Interrupted pass: SIGINT once the journal shows completed runs.
	var stderr bytes.Buffer
	interrupted := exec.Command(exe, append(args, "-journal", journal, "-stats-out", partOut)...)
	interrupted.Stderr = &stderr
	if err := interrupted.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if st, err := os.Stat(journal); err == nil && st.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			interrupted.Process.Kill()
			t.Fatalf("journal never appeared; stderr:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := interrupted.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := interrupted.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Fatalf("interrupted campaign exited %v (stderr:\n%s), want exit code 3",
			err, stderr.String())
	}
	if st, err := os.Stat(partOut); err != nil || st.Size() == 0 {
		t.Fatalf("partial stats artifact not flushed: %v", err)
	}
	j, err := OpenJournal(journal)
	if err != nil {
		t.Fatalf("flushed journal unreadable: %v", err)
	}
	checkpointed := j.Len()
	j.Close()
	if checkpointed == 0 {
		t.Fatal("journal flushed with zero complete entries")
	}
	t.Logf("interrupted with %d runs checkpointed; stderr:\n%s", checkpointed, stderr.String())

	// Resume: must finish cleanly, serving the checkpointed runs.
	resume := exec.Command(exe, append(args, "-resume", "-journal", journal, "-stats-out", finalOut)...)
	if out, err := resume.CombinedOutput(); err != nil {
		t.Fatalf("resumed campaign: %v\n%s", err, out)
	}

	want, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(finalOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Error("resumed artifact differs from the uninterrupted reference")
	}
}
