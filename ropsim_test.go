package ropsim

import (
	"strconv"
	"strings"
	"testing"
)

// tinyOptions is the smallest scale that still produces non-degenerate
// statistics for integration tests.
func tinyOptions() ExpOptions {
	o := QuickOptions()
	o.Benches = []string{"libquantum", "bzip2"}
	o.Mixes = []Mix{{Name: "WLt", Members: []string{"libquantum", "lbm", "bzip2", "gobmk"}}}
	o.SRAMSizes = []int{16, 64}
	o.LLCSizesMiB = []int{1, 4}
	return o
}

func cellFloat(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Cell(row, col), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) of %s = %q: %v", row, col, tb.ID, tb.Cell(row, col), err)
	}
	return v
}

func TestFacadeRun(t *testing.T) {
	cfg := Default("libquantum")
	cfg.Mode = ModeROP
	cfg.Instructions = 200_000
	cfg.ROPTrainRefreshes = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cores[0].IPC <= 0 {
		t.Error("no IPC")
	}
	if len(Benchmarks()) != 12 || len(Mixes()) != 6 {
		t.Error("benchmark/mix registry wrong")
	}
}

func TestFig1Shape(t *testing.T) {
	o := tinyOptions()
	tb, err := Fig1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != len(o.Benches)+1 {
		t.Fatalf("rows = %d, want %d", len(tb.Rows), len(o.Benches)+1)
	}
	// libquantum (intensive) must degrade more than bzip2 (not).
	lq := cellFloat(t, tb, 0, 3)
	bz := cellFloat(t, tb, 1, 3)
	if lq <= bz {
		t.Errorf("libquantum degradation %.2f%% not above bzip2 %.2f%%", lq, bz)
	}
	// Refresh must cost energy.
	if extra := cellFloat(t, tb, 0, 6); extra <= 0 {
		t.Errorf("refresh extra energy = %.2f%%, want positive", extra)
	}
}

func TestRefreshBehaviourShape(t *testing.T) {
	o := tinyOptions()
	// Long enough that bzip2 cycles through several ON/OFF phases.
	o.Instructions = 2_500_000
	f2, f3, f4, t1, err := RefreshBehaviour(o)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 2: non-blocking fraction decreases (or stays) as the window
	// grows, and bzip2 (bursty, row 1) has more non-blocking refreshes
	// than libquantum (row 0).
	nb1 := cellFloat(t, f2, 0, 1)
	nb4 := cellFloat(t, f2, 0, 3)
	if nb4 > nb1 {
		t.Errorf("non-blocking grew with window: %g -> %g", nb1, nb4)
	}
	if cellFloat(t, f2, 1, 1) <= cellFloat(t, f2, 0, 1) {
		t.Error("bursty benchmark not more non-blocking than streaming one")
	}
	// Fig 3: blocked counts are small positive numbers for libquantum.
	if mean := cellFloat(t, f3, 0, 1); mean <= 0 || mean > 64 {
		t.Errorf("mean blocked = %g, implausible", mean)
	}
	// Fig 4: the two dominant events must cover most refreshes.
	if cov := cellFloat(t, f4, 0, 3); cov < 0.5 {
		t.Errorf("coverage = %g, want ≥0.5", cov)
	}
	// Table I: libquantum streams, so λ≈1.
	if l := cellFloat(t, t1, 0, 1); l < 0.9 {
		t.Errorf("libquantum lambda = %g, want ≥0.9", l)
	}
}

func TestFig7to9Shape(t *testing.T) {
	o := tinyOptions()
	o.Benches = []string{"libquantum"}
	o.Instructions = 700_000
	f7, f8, f9, err := Fig7to9(o)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized no-refresh IPC (last column) bounds ROP from above and
	// both exceed the baseline (1.0) for a streaming benchmark.
	rop := cellFloat(t, f7, 0, 2) // ROP-64
	ideal := cellFloat(t, f7, 0, 3)
	if rop < 1.0 {
		t.Errorf("ROP normalized IPC %.4f below baseline", rop)
	}
	if ideal < rop-0.005 {
		t.Errorf("no-refresh %.4f not above ROP %.4f", ideal, rop)
	}
	// Energy: ROP must not cost more than baseline by much.
	if e := cellFloat(t, f8, 0, 2); e > 1.02 {
		t.Errorf("ROP energy %.4f well above baseline", e)
	}
	// Hit rate within [0,1].
	if h := cellFloat(t, f9, 0, 2); h < 0 || h > 1 {
		t.Errorf("hit rate %g outside [0,1]", h)
	}
}

func TestFig10and11Shape(t *testing.T) {
	o := tinyOptions()
	f10, f11, err := Fig10and11(o)
	if err != nil {
		t.Fatal(err)
	}
	// Rank partitioning must help an intensive mix.
	if rp := cellFloat(t, f10, 0, 2); rp < 1.0 {
		t.Errorf("Baseline-RP speedup %.4f below baseline", rp)
	}
	if ws := cellFloat(t, f10, 0, 3); ws < 0.9 {
		t.Errorf("ROP weighted speedup %.4f implausibly low", ws)
	}
	if en := cellFloat(t, f11, 0, 3); en > 1.1 {
		t.Errorf("ROP energy %.4f far above baseline", en)
	}
}

func TestFig12to14Shape(t *testing.T) {
	o := tinyOptions()
	f12, f13, f14, err := Fig12to14(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Rows) != 1 || len(f12.Rows[0]) != 3 {
		t.Fatalf("fig12 shape wrong: %v", f12.Rows)
	}
	for col := 1; col <= 2; col++ {
		if ws := cellFloat(t, f12, 0, col); ws < 0.8 || ws > 3 {
			t.Errorf("fig12 col %d = %g implausible", col, ws)
		}
		if en := cellFloat(t, f13, 0, col); en < 0.3 || en > 1.2 {
			t.Errorf("fig13 col %d = %g implausible", col, en)
		}
		if h := cellFloat(t, f14, 0, col); h < 0 || h > 1 {
			t.Errorf("fig14 col %d = %g outside [0,1]", col, h)
		}
	}
}

func TestAblations(t *testing.T) {
	o := tinyOptions()
	o.Benches = []string{"libquantum"}
	g, err := AblationGate(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 1 || len(g.Rows[0]) != 4 {
		t.Fatalf("gate ablation shape: %v", g.Rows)
	}
	p, err := AblationPredictor(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 1 || len(p.Rows[0]) != 7 {
		t.Fatalf("predictor ablation shape: %v", p.Rows)
	}
	f, err := AblationFGR(o)
	if err != nil {
		t.Fatal(err)
	}
	// FGR 1x baseline must lose IPC vs its ideal; values in (0.5, 1.01].
	for col := 1; col <= 6; col++ {
		v := cellFloat(t, f, 0, col)
		if v < 0.5 || v > 1.01 {
			t.Errorf("fgr col %d = %g implausible", col, v)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("r1", 0.123456)
	tb.AddRow("row2", 7)
	s := tb.String()
	if !strings.Contains(s, "== x: demo ==") {
		t.Errorf("missing title: %q", s)
	}
	if !strings.Contains(s, "0.1235") {
		t.Errorf("float not formatted: %q", s)
	}
	if tb.Cell(1, 1) != "7" {
		t.Errorf("Cell = %q", tb.Cell(1, 1))
	}
	if tb.Cell(9, 9) != "" {
		t.Error("out-of-range Cell not empty")
	}
}

func TestQuickAndFullOptions(t *testing.T) {
	q, f := QuickOptions(), FullOptions()
	if q.Instructions >= f.Instructions {
		t.Error("quick not smaller than full")
	}
	if len(f.SRAMSizes) != 4 || len(f.LLCSizesMiB) != 4 {
		t.Error("full sweep sizes wrong")
	}
}

func TestPolicyComparison(t *testing.T) {
	o := tinyOptions()
	o.Benches = []string{"lbm"}
	o.Instructions = 500_000
	tb, err := PolicyComparison(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 6 {
		t.Fatalf("policy table shape: %v", tb.Rows)
	}
	base := cellFloat(t, tb, 0, 1)
	noref := cellFloat(t, tb, 0, 5)
	if base != 1 {
		t.Errorf("baseline column = %g, want 1", base)
	}
	// The no-refresh ideal dominates every policy on a streaming
	// benchmark.
	for col := 2; col <= 4; col++ {
		if v := cellFloat(t, tb, 0, col); v > noref+1e-9 {
			t.Errorf("policy col %d (%g) above no-refresh (%g)", col, v, noref)
		}
	}
}

func TestFutureBankRefresh(t *testing.T) {
	o := tinyOptions()
	o.Benches = []string{"libquantum"}
	o.Instructions = 600_000
	tb, err := FutureBankRefresh(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 6 {
		t.Fatalf("future-bank table shape: %v", tb.Rows)
	}
	bank := cellFloat(t, tb, 0, 2)
	ropBank := cellFloat(t, tb, 0, 3)
	noref := cellFloat(t, tb, 0, 5)
	// Bank-level refresh must not lose to the rank baseline, and ROP on
	// top must not exceed the ideal.
	if bank < 0.995 {
		t.Errorf("bank refresh normalized IPC %g below baseline", bank)
	}
	if ropBank > noref+0.002 {
		t.Errorf("rop-bank %g above no-refresh %g", ropBank, noref)
	}
}

func TestAblationPagePolicy(t *testing.T) {
	o := tinyOptions()
	o.Benches = []string{"libquantum"}
	tb, err := AblationPagePolicy(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Rows[0]) != 5 {
		t.Fatalf("abl-page shape: %v", tb.Rows)
	}
	for col := 1; col <= 4; col++ {
		if v := cellFloat(t, tb, 0, col); v <= 0 || v > 1 {
			t.Errorf("abl-page col %d = %g outside (0,1]", col, v)
		}
	}
}
