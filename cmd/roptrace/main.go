// Command roptrace converts, inspects, validates and clones memory
// traces in the repo's two interchange formats: Ramulator/DRAMSim2
// style text ("<cycle> <R|W> <hex-addr>") and the compact binary .ropt
// format. It also regenerates the committed workload zoo under
// testdata/traces/ through the simulator's capture path.
// docs/TRACES.md is the format spec and recipe book.
//
// Usage:
//
//	roptrace convert -in trace.txt -out trace.ropt [-block 4096]
//	roptrace inspect -in trace.ropt [-n 5]
//	roptrace validate -in trace.ropt
//	roptrace clone -in trace.ropt [-seed 1] [-window 25000] [-stats-out fit.json]
//	roptrace zoo -dir testdata/traces [-insts 600000]
//
// convert picks the output format from the -out extension (.ropt is
// binary, anything else text) and sniffs the input by content.
// validate exits 1 on any malformed input. clone fits a synthetic
// workload profile to the trace and prints the fitted parameters and
// the fit error; -stats-out writes the trace.fit.* metric snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ropsim"
	"ropsim/internal/stats"
	"ropsim/internal/trace"
	"ropsim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "clone":
		err = cmdClone(os.Args[2:])
	case "zoo":
		err = cmdZoo(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "roptrace: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "roptrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: roptrace <subcommand> [flags]

subcommands:
  convert   convert between text and .ropt trace formats
  inspect   print a trace's header, counts and leading records
  validate  fully decode a trace, exit 1 if malformed
  clone     fit a synthetic workload profile to a trace
  zoo       regenerate the committed workload zoo (testdata/traces)

See docs/TRACES.md for formats and recipes.
`)
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (text or .ropt, sniffed by content)")
	out := fs.String("out", "", "output file (.ropt extension selects binary, else text)")
	block := fs.Int("block", trace.DefaultBlockRecords, "records per .ropt block")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("convert: -in and -out are required")
	}
	recs, err := trace.LoadFile(*in)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if filepath.Ext(*out) == ".ropt" {
		err = trace.EncodeRoptBlocked(f, recs, *block)
	} else {
		err = trace.WriteTraceText(f, recs)
	}
	if err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s: %d records -> %s\n", *in, len(recs), *out)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (text or .ropt)")
	n := fs.Int("n", 5, "leading records to print")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("inspect: -in is required")
	}
	if t, err := trace.ReadRoptFile(*in); err == nil {
		fmt.Printf("%s: ropt v%d, %d records, %d blocks of %d\n",
			*in, trace.Version, t.Records(), t.Blocks(), t.BlockRecords())
		s := t.Stream()
		printHead(s, *n)
		return s.Err()
	}
	recs, err := trace.LoadFile(*in)
	if err != nil {
		return err
	}
	fmt.Printf("%s: text, %d records\n", *in, len(recs))
	printHead(workload.NewSliceStream(recs), *n)
	return nil
}

func printHead(s workload.Stream, n int) {
	for i, r := range workload.Take(s, n) {
		op := "R"
		if r.Write {
			op = "W"
		}
		fmt.Printf("  [%d] gap=%d line=%#x %s\n", i, r.Gap, r.Line, op)
	}
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (text or .ropt)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("validate: -in is required")
	}
	recs, err := trace.LoadFile(*in)
	if err != nil {
		return err
	}
	reads := 0
	for _, r := range recs {
		if !r.Write {
			reads++
		}
	}
	fmt.Printf("%s: OK, %d records (%d reads, %d writes)\n", *in, len(recs), reads, len(recs)-reads)
	return nil
}

func cmdClone(args []string) error {
	fs := flag.NewFlagSet("clone", flag.ExitOnError)
	in := fs.String("in", "", "input trace file (text or .ropt)")
	seed := fs.Int64("seed", 1, "generation seed for the clone's validation trace")
	window := fs.Int("window", trace.DefaultCloneWindow, "burstiness window in instructions")
	statsOut := fs.String("stats-out", "", "write the trace.fit.* metric snapshot to this file (JSON)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("clone: -in is required")
	}
	recs, err := trace.LoadFile(*in)
	if err != nil {
		return err
	}
	fit, err := trace.CloneWindow(recs, *seed, *window)
	if err != nil {
		return err
	}
	p := fit.Profile
	fmt.Printf("fitted profile for %s (%d records):\n", *in, len(recs))
	fmt.Printf("  OnGapMean=%.1f OnMeanInsts=%.0f OffMeanInsts=%.0f\n",
		p.OnGapMean, p.OnMeanInsts, p.OffMeanInsts)
	fmt.Printf("  StreamFrac=%.3f ReadFrac=%.3f WSLines=%d FootprintLines=%d\n",
		p.StreamFrac, p.ReadFrac, p.WSLines, p.FootprintLines)
	fmt.Printf("  target:   APKI=%.2f seq=%.3f lambda=%.3f beta=%.3f\n",
		fit.Target.APKI, fit.Target.SeqFrac, fit.Target.Lambda, fit.Target.Beta)
	fmt.Printf("  achieved: APKI=%.2f seq=%.3f lambda=%.3f beta=%.3f\n",
		fit.Achieved.APKI, fit.Achieved.SeqFrac, fit.Achieved.Lambda, fit.Achieved.Beta)
	fmt.Printf("  fit error: %.4f\n", fit.FitError())
	if *statsOut != "" {
		reg := stats.NewRegistry()
		fit.RegisterMetrics(reg.Sub("trace.fit"))
		f, err := os.Create(*statsOut)
		if err != nil {
			return err
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// zooInstructions is the pinned per-core budget the committed zoo
// traces are captured with; changing it changes the committed bytes.
const zooInstructions = 600_000

func cmdZoo(args []string) error {
	fs := flag.NewFlagSet("zoo", flag.ExitOnError)
	dir := fs.String("dir", "testdata/traces", "output directory for the zoo .ropt files")
	insts := fs.Int64("insts", zooInstructions, "per-core instruction budget for the capture runs")
	fs.Parse(args)
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	for _, name := range ropsim.ZooBenchmarks() {
		cfg := ropsim.Default(name)
		cfg.Instructions = *insts
		cfg.CaptureTraces = true
		res, err := ropsim.Run(cfg)
		if err != nil {
			return fmt.Errorf("zoo %s: %w", name, err)
		}
		recs := res.CoreTraces[0]
		out := filepath.Join(*dir, name+".ropt")
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := trace.EncodeRopt(f, recs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%-10s %6d records -> %s\n", name, len(recs), out)
	}
	fmt.Println("zoo:", strings.Join(ropsim.ZooBenchmarks(), " "))
	return nil
}
