// Command ropworker executes simulation runs leased to it by a
// campaign coordinator (ropexp -serve). It attaches over TCP, executes
// runs on -jobs worker goroutines, heartbeats on the interval the
// coordinator dictates, and reconnects with jittered exponential
// backoff when the coordinator goes away.
//
//	ropworker -connect host:7490
//	ropworker -connect host:7490 -jobs 4 -name rack3-a -v
//
// The exit-code contract is shared with ropexp (internal/campaign,
// documented in docs/ROBUSTNESS.md): 0 after a clean campaign drain,
// 1 on an unrecoverable error (coordinator unreachable past the
// -reconnect-for window, protocol mismatch), 2 on a usage error, 3
// after a first SIGINT/SIGTERM (in-flight runs cancelled, leases
// returned to the coordinator via connection loss), and 130 on a
// second signal (immediate abort).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ropsim"
	"ropsim/internal/campaign"
	"ropsim/internal/runner"
)

func main() {
	var (
		connectF  = flag.String("connect", "", "host:port of the campaign coordinator (required)")
		jobsF     = flag.Int("jobs", 0, "concurrent simulation slots (0 = GOMAXPROCS, 1 = serial)")
		nameF     = flag.String("name", "", "worker name reported to the coordinator (default host-pid)")
		reconnect = flag.Duration("reconnect-for", campaign.DefaultReconnectWindow, "keep retrying an unreachable coordinator for this long before exiting")
		verbose   = flag.Bool("v", false, "log attach, reconnect, and run activity to stderr")
	)
	flag.Parse()
	if *connectF == "" {
		fmt.Fprintln(os.Stderr, "ropworker: -connect is required")
		os.Exit(campaign.ExitUsage)
	}

	// First SIGINT/SIGTERM cancels in-flight runs and detaches (the
	// coordinator re-dispatches the lost leases); a second signal
	// aborts immediately. Same two-stage contract as ropexp.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		fmt.Fprintf(os.Stderr, "ropworker: %v: cancelling in-flight runs (signal again to abort immediately)\n", s)
		cancel()
		<-sigCh
		os.Exit(campaign.ExitAborted)
	}()

	pool := runner.New(*jobsF)
	name := *nameF
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// Each leased run goes through the pool as a single-task batch:
	// panics become lease failures, transient errors retry, and the
	// pool accumulates the session's runner statistics.
	exec := ropsim.RemoteExec(func(ctx context.Context, label string, cfg ropsim.Config) (*ropsim.Result, error) {
		rs, err := runner.Run(ctx, pool, []runner.Task[*ropsim.Result]{{
			Label: label,
			Run:   func(ctx context.Context) (*ropsim.Result, error) { return ropsim.RunCtx(ctx, cfg) },
		}})
		if err != nil {
			return nil, err
		}
		return rs[0], nil
	})

	backoff := runner.Backoff{
		Base:       campaign.DefaultReconnectBase,
		Max:        campaign.DefaultReconnectMax,
		MaxElapsed: *reconnect,
		Jitter:     0.5,
		Seed:       1,
	}
	if *reconnect <= 0 {
		backoff.MaxElapsed = time.Nanosecond // retrying disabled: fail on first dial error
	}

	err := campaign.Work(ctx, campaign.WorkerOptions{
		Addr:      *connectF,
		Name:      name,
		Slots:     pool.Jobs(),
		Exec:      exec,
		Clock:     runner.WallClock{},
		Reconnect: backoff,
		Logf:      logf,
	})
	if s := pool.Stats(); s.Completed > 0 {
		fmt.Fprintf(os.Stderr, "runner: %s\n", s)
	}
	switch {
	case err == nil:
		os.Exit(campaign.ExitOK)
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "ropworker: interrupted")
		os.Exit(campaign.ExitInterrupted)
	default:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(campaign.ExitFailure)
	}
}
