// Command ropsim runs one memory-system simulation and prints its
// metrics: per-core IPC, elapsed time, refresh counts, SRAM buffer
// statistics and the energy breakdown. -stats-out additionally writes
// the run's full metric-registry snapshot as a machine-readable
// artifact (docs/METRICS.md documents the schema).
//
// Examples:
//
//	ropsim -bench libquantum -mode rop
//	ropsim -mix WL1 -mode baseline -insts 500000
//	ropsim -bench lbm,bzip2,gcc,astar -mode rop -partition -llc 4
//	ropsim -bench libquantum -mode rop -stats-out run.stats.json
//	ropsim -bench lbm -insts 8000000 -cpuprofile cpu.pprof
//	ropsim -bench libquantum -mode rop -check -run-timeout 5m
//	ropsim -bench trace:testdata/traces/pointer.ropt -mode rop
//	ropsim -bench scan -capture-trace out -insts 600000
//
// A benchmark name of the form "trace:<path>" replays the trace file
// at <path> (text or .ropt, sniffed by content) instead of a synthetic
// generator; -capture-trace records each core's request stream to
// <prefix>.core<N>.ropt for later byte-exact replay (docs/TRACES.md).
//
// -check validates every DRAM command the controller issues against
// the JEDEC timing checker; -run-timeout arms the in-run watchdog.
// SIGINT/SIGTERM cancels the run and exits with code 3 (a second
// signal aborts immediately); see docs/ROBUSTNESS.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"ropsim"
	"ropsim/internal/cache"
	"ropsim/internal/trace"
)

func main() {
	var (
		bench      = flag.String("bench", "libquantum", "benchmark name, or comma-separated list for multi-core")
		mix        = flag.String("mix", "", "workload mix name (WL1-WL6); overrides -bench")
		mode       = flag.String("mode", "baseline", "refresh mode: baseline | norefresh | rop | elastic | pausing | bankrefresh | rop-bank | subarray | ooo-bank | darp | sarp")
		standard   = flag.String("standard", "", "DRAM standard (see -list; default DDR4-1600)")
		density    = flag.Int("density", 0, "projected die density in Gbit for tRFC scaling (0 = datasheet 8 Gb)")
		insts      = flag.Int64("insts", 2_000_000, "instructions per core")
		sram       = flag.Int("sram", 64, "ROP SRAM buffer capacity in cache lines")
		llcMiB     = flag.Int("llc", 0, "LLC size in MiB (0 = paper default for core count)")
		seed       = flag.Int64("seed", 1, "simulation seed")
		partition  = flag.Bool("partition", false, "rank-aware (partitioned) address mapping")
		train      = flag.Int("train", 0, "ROP training refreshes (0 = paper's 50)")
		listFlag   = flag.Bool("list", false, "list benchmarks and mixes, then exit")
		checkF     = flag.Bool("check", false, "validate every DRAM command against the JEDEC timing checker")
		runTimeout = flag.Duration("run-timeout", 0, "wall-clock watchdog deadline for the run (0 = none)")
		statsOut   = flag.String("stats-out", "", "write the run's metric snapshot to this file (.csv selects CSV, else JSON; see docs/METRICS.md)")
		capTrace   = flag.String("capture-trace", "", "record each core's request stream to <prefix>.core<N>.ropt for byte-exact replay (see docs/TRACES.md)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *listFlag {
		fmt.Println("benchmarks:", strings.Join(ropsim.Benchmarks(), " "))
		fmt.Println("zoo:", strings.Join(ropsim.ZooBenchmarks(), " "))
		for _, m := range ropsim.Mixes() {
			fmt.Printf("%s: %s\n", m.Name, strings.Join(m.Members, " "))
		}
		fmt.Println("standards:", strings.Join(ropsim.DRAMStandards(), " "))
		return
	}

	benches := strings.Split(*bench, ",")
	if *mix != "" {
		found := false
		for _, m := range ropsim.Mixes() {
			if m.Name == *mix {
				benches = m.Members
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown mix %q\n", *mix)
			os.Exit(2)
		}
	}

	cfg := ropsim.Default(benches...)
	switch *mode {
	case "baseline":
		cfg.Mode = ropsim.ModeBaseline
	case "norefresh":
		cfg.Mode = ropsim.ModeNoRefresh
	case "rop":
		cfg.Mode = ropsim.ModeROP
	case "elastic":
		cfg.Mode = ropsim.ModeElastic
	case "pausing":
		cfg.Mode = ropsim.ModePausing
	case "bankrefresh":
		cfg.Mode = ropsim.ModeBankRefresh
	case "rop-bank":
		cfg.Mode = ropsim.ModeROPBank
	case "subarray":
		cfg.Mode = ropsim.ModeSubarrayRefresh
	case "ooo-bank":
		cfg.Mode = ropsim.ModeOutOfOrderBank
	case "darp":
		cfg.Mode = ropsim.ModeDARP
	case "sarp":
		cfg.Mode = ropsim.ModeSARP
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	cfg.Instructions = *insts
	cfg.SRAMLines = *sram
	cfg.Seed = *seed
	cfg.RankPartition = *partition
	cfg.ROPTrainRefreshes = *train
	cfg.Check = *checkF
	cfg.RunTimeout = *runTimeout
	cfg.Standard = *standard
	cfg.DensityGb = *density
	cfg.CaptureTraces = *capTrace != ""
	if *llcMiB > 0 {
		cfg.LLCBytes = *llcMiB * cache.MiB
	}

	// First SIGINT/SIGTERM cancels the run between events (exit code
	// 3); a second signal aborts the process immediately.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		fmt.Fprintf(os.Stderr, "ropsim: %v: cancelling run (signal again to abort immediately)\n", s)
		cancel()
		<-sigCh
		os.Exit(130)
	}()

	res, err := ropsim.RunCtx(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, context.Canceled) {
			os.Exit(3)
		}
		os.Exit(1)
	}

	fmt.Printf("mode=%s ranks=%d llc=%dMiB insts=%d seed=%d\n",
		cfg.Mode, cfg.Ranks, cfg.LLCBytes/cache.MiB, cfg.Instructions, cfg.Seed)
	if cfg.Standard != "" {
		fmt.Printf("standard=%s\n", cfg.Standard)
	}
	if cfg.DensityGb != 0 {
		fmt.Printf("density=%dGb\n", cfg.DensityGb)
	}
	for i, c := range res.Cores {
		fmt.Printf("core %d %-11s IPC=%.4f memReads=%d memWrites=%d llcHitReads=%d\n",
			i, c.Bench, c.IPC, c.MemReads, c.MemWrites, c.LLCHitReads)
	}
	fmt.Printf("elapsed=%d bus cycles (%.3f ms simulated)\n",
		res.ElapsedBus, float64(res.ElapsedBus)*1.25e-6)
	fmt.Printf("refreshes=%d meanReadLatency=%.1f cycles llcMissRate=%.3f\n",
		res.Refreshes, res.MeanReadLatency, res.LLCMissRate)
	if cfg.Mode == ropsim.ModeROP || cfg.Mode == ropsim.ModeROPBank {
		fmt.Printf("sram: served=%d lookups=%d hits=%d hitRate=%.3f\n",
			res.SRAMServed, res.SRAMLookups, res.SRAMHits, res.SRAMHitRate)
	}
	e := res.Energy
	fmt.Printf("energy: total=%.4g J (background=%.3g actpre=%.3g read=%.3g write=%.3g refresh=%.3g sram=%.3g)\n",
		e.Total(), e.BackgroundJ, e.ActPreJ, e.ReadJ, e.WriteJ, e.RefreshJ, e.SRAMJ)

	if *capTrace != "" {
		for i, recs := range res.CoreTraces {
			name := fmt.Sprintf("%s.core%d.ropt", *capTrace, i)
			f, err := os.Create(name)
			if err != nil {
				fail(err)
			}
			if err := trace.EncodeRopt(f, recs); err != nil {
				f.Close()
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "trace: %d records -> %s\n", len(recs), name)
		}
	}
	if *statsOut != "" {
		art := ropsim.NewArtifact()
		art.Record(fmt.Sprintf("%s/%s", cfg.Mode, strings.Join(benches, "+")), res.Metrics)
		if err := art.WriteFile(*statsOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "stats: snapshot -> %s\n", *statsOut)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		runtime.GC() // settle allocations so the heap profile is stable
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}
}
